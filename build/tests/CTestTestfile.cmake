# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pmem_test[1]_include.cmake")
include("/root/repo/build/tests/riv_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/upskiplist_test[1]_include.cmake")
include("/root/repo/build/tests/crash_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_pmdk_test[1]_include.cmake")
include("/root/repo/build/tests/bztree_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
include("/root/repo/build/tests/lincheck_test[1]_include.cmake")
include("/root/repo/build/tests/multipool_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_crash_test[1]_include.cmake")
include("/root/repo/build/tests/crash_matrix_test[1]_include.cmake")
