# Empty compiler generated dependencies file for upskiplist_test.
# This may be replaced when dependencies are built.
