file(REMOVE_RECURSE
  "CMakeFiles/upskiplist_test.dir/upskiplist_test.cpp.o"
  "CMakeFiles/upskiplist_test.dir/upskiplist_test.cpp.o.d"
  "upskiplist_test"
  "upskiplist_test.pdb"
  "upskiplist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upskiplist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
