file(REMOVE_RECURSE
  "CMakeFiles/baselines_pmdk_test.dir/baselines_pmdk_test.cpp.o"
  "CMakeFiles/baselines_pmdk_test.dir/baselines_pmdk_test.cpp.o.d"
  "baselines_pmdk_test"
  "baselines_pmdk_test.pdb"
  "baselines_pmdk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_pmdk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
