# Empty compiler generated dependencies file for baselines_pmdk_test.
# This may be replaced when dependencies are built.
