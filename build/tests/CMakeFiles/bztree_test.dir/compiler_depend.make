# Empty compiler generated dependencies file for bztree_test.
# This may be replaced when dependencies are built.
