file(REMOVE_RECURSE
  "CMakeFiles/bztree_test.dir/bztree_test.cpp.o"
  "CMakeFiles/bztree_test.dir/bztree_test.cpp.o.d"
  "bztree_test"
  "bztree_test.pdb"
  "bztree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bztree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
