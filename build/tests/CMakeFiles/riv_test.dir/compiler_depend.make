# Empty compiler generated dependencies file for riv_test.
# This may be replaced when dependencies are built.
