file(REMOVE_RECURSE
  "CMakeFiles/riv_test.dir/riv_test.cpp.o"
  "CMakeFiles/riv_test.dir/riv_test.cpp.o.d"
  "riv_test"
  "riv_test.pdb"
  "riv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
