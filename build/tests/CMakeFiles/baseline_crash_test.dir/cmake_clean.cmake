file(REMOVE_RECURSE
  "CMakeFiles/baseline_crash_test.dir/baseline_crash_test.cpp.o"
  "CMakeFiles/baseline_crash_test.dir/baseline_crash_test.cpp.o.d"
  "baseline_crash_test"
  "baseline_crash_test.pdb"
  "baseline_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
