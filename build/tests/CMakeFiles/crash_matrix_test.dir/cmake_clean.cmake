file(REMOVE_RECURSE
  "CMakeFiles/crash_matrix_test.dir/crash_matrix_test.cpp.o"
  "CMakeFiles/crash_matrix_test.dir/crash_matrix_test.cpp.o.d"
  "crash_matrix_test"
  "crash_matrix_test.pdb"
  "crash_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
