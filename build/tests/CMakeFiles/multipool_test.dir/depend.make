# Empty dependencies file for multipool_test.
# This may be replaced when dependencies are built.
