file(REMOVE_RECURSE
  "CMakeFiles/multipool_test.dir/multipool_test.cpp.o"
  "CMakeFiles/multipool_test.dir/multipool_test.cpp.o.d"
  "multipool_test"
  "multipool_test.pdb"
  "multipool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
