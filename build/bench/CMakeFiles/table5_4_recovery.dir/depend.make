# Empty dependencies file for table5_4_recovery.
# This may be replaced when dependencies are built.
