file(REMOVE_RECURSE
  "CMakeFiles/table5_4_recovery.dir/table5_4_recovery.cpp.o"
  "CMakeFiles/table5_4_recovery.dir/table5_4_recovery.cpp.o.d"
  "table5_4_recovery"
  "table5_4_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_4_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
