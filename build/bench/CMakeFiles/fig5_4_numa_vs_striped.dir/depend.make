# Empty dependencies file for fig5_4_numa_vs_striped.
# This may be replaced when dependencies are built.
