file(REMOVE_RECURSE
  "CMakeFiles/fig5_4_numa_vs_striped.dir/fig5_4_numa_vs_striped.cpp.o"
  "CMakeFiles/fig5_4_numa_vs_striped.dir/fig5_4_numa_vs_striped.cpp.o.d"
  "fig5_4_numa_vs_striped"
  "fig5_4_numa_vs_striped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_4_numa_vs_striped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
