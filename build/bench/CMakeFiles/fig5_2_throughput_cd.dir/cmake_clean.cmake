file(REMOVE_RECURSE
  "CMakeFiles/fig5_2_throughput_cd.dir/fig5_2_throughput_cd.cpp.o"
  "CMakeFiles/fig5_2_throughput_cd.dir/fig5_2_throughput_cd.cpp.o.d"
  "fig5_2_throughput_cd"
  "fig5_2_throughput_cd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2_throughput_cd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
