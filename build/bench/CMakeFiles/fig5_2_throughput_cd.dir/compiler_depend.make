# Empty compiler generated dependencies file for fig5_2_throughput_cd.
# This may be replaced when dependencies are built.
