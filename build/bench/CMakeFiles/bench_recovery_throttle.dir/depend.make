# Empty dependencies file for bench_recovery_throttle.
# This may be replaced when dependencies are built.
