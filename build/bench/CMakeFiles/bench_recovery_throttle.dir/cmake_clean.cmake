file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_throttle.dir/bench_recovery_throttle.cpp.o"
  "CMakeFiles/bench_recovery_throttle.dir/bench_recovery_throttle.cpp.o.d"
  "bench_recovery_throttle"
  "bench_recovery_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
