# Empty dependencies file for fig5_1_throughput_ab.
# This may be replaced when dependencies are built.
