file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_throughput_ab.dir/fig5_1_throughput_ab.cpp.o"
  "CMakeFiles/fig5_1_throughput_ab.dir/fig5_1_throughput_ab.cpp.o.d"
  "fig5_1_throughput_ab"
  "fig5_1_throughput_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_throughput_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
