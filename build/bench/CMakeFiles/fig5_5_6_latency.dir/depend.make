# Empty dependencies file for fig5_5_6_latency.
# This may be replaced when dependencies are built.
