
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_5_6_latency.cpp" "bench/CMakeFiles/fig5_5_6_latency.dir/fig5_5_6_latency.cpp.o" "gcc" "bench/CMakeFiles/fig5_5_6_latency.dir/fig5_5_6_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/upsl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bztree/CMakeFiles/upsl_bztree.dir/DependInfo.cmake"
  "/root/repo/build/src/lockskiplist/CMakeFiles/upsl_lockskiplist.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/upsl_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/upsl_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/riv/CMakeFiles/upsl_riv.dir/DependInfo.cmake"
  "/root/repo/build/src/pmwcas/CMakeFiles/upsl_pmwcas.dir/DependInfo.cmake"
  "/root/repo/build/src/pmdk/CMakeFiles/upsl_pmdk.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/upsl_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/upsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
