file(REMOVE_RECURSE
  "CMakeFiles/fig5_5_6_latency.dir/fig5_5_6_latency.cpp.o"
  "CMakeFiles/fig5_5_6_latency.dir/fig5_5_6_latency.cpp.o.d"
  "fig5_5_6_latency"
  "fig5_5_6_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_5_6_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
