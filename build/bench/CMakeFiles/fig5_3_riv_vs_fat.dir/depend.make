# Empty dependencies file for fig5_3_riv_vs_fat.
# This may be replaced when dependencies are built.
