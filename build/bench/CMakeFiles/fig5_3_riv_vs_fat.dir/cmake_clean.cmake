file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_riv_vs_fat.dir/fig5_3_riv_vs_fat.cpp.o"
  "CMakeFiles/fig5_3_riv_vs_fat.dir/fig5_3_riv_vs_fat.cpp.o.d"
  "fig5_3_riv_vs_fat"
  "fig5_3_riv_vs_fat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_riv_vs_fat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
