# Empty dependencies file for upsl_common.
# This may be replaced when dependencies are built.
