file(REMOVE_RECURSE
  "libupsl_common.a"
)
