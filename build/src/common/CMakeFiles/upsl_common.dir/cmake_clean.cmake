file(REMOVE_RECURSE
  "CMakeFiles/upsl_common.dir/thread_registry.cpp.o"
  "CMakeFiles/upsl_common.dir/thread_registry.cpp.o.d"
  "libupsl_common.a"
  "libupsl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
