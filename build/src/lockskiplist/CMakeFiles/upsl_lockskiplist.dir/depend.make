# Empty dependencies file for upsl_lockskiplist.
# This may be replaced when dependencies are built.
