file(REMOVE_RECURSE
  "libupsl_lockskiplist.a"
)
