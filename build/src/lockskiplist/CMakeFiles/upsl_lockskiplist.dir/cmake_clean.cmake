file(REMOVE_RECURSE
  "CMakeFiles/upsl_lockskiplist.dir/lock_skiplist.cpp.o"
  "CMakeFiles/upsl_lockskiplist.dir/lock_skiplist.cpp.o.d"
  "libupsl_lockskiplist.a"
  "libupsl_lockskiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_lockskiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
