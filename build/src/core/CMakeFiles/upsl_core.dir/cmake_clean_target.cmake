file(REMOVE_RECURSE
  "libupsl_core.a"
)
