# Empty compiler generated dependencies file for upsl_core.
# This may be replaced when dependencies are built.
