file(REMOVE_RECURSE
  "CMakeFiles/upsl_core.dir/upskiplist.cpp.o"
  "CMakeFiles/upsl_core.dir/upskiplist.cpp.o.d"
  "libupsl_core.a"
  "libupsl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
