file(REMOVE_RECURSE
  "libupsl_bztree.a"
)
