file(REMOVE_RECURSE
  "CMakeFiles/upsl_bztree.dir/bztree.cpp.o"
  "CMakeFiles/upsl_bztree.dir/bztree.cpp.o.d"
  "libupsl_bztree.a"
  "libupsl_bztree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_bztree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
