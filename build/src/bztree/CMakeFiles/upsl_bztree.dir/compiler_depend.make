# Empty compiler generated dependencies file for upsl_bztree.
# This may be replaced when dependencies are built.
