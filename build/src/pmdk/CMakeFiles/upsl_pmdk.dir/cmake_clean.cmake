file(REMOVE_RECURSE
  "CMakeFiles/upsl_pmdk.dir/objstore.cpp.o"
  "CMakeFiles/upsl_pmdk.dir/objstore.cpp.o.d"
  "libupsl_pmdk.a"
  "libupsl_pmdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_pmdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
