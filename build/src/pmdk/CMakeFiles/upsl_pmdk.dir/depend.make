# Empty dependencies file for upsl_pmdk.
# This may be replaced when dependencies are built.
