file(REMOVE_RECURSE
  "libupsl_pmdk.a"
)
