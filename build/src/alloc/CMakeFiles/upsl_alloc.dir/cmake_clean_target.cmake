file(REMOVE_RECURSE
  "libupsl_alloc.a"
)
