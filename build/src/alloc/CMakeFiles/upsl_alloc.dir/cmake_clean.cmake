file(REMOVE_RECURSE
  "CMakeFiles/upsl_alloc.dir/block_allocator.cpp.o"
  "CMakeFiles/upsl_alloc.dir/block_allocator.cpp.o.d"
  "CMakeFiles/upsl_alloc.dir/chunk_allocator.cpp.o"
  "CMakeFiles/upsl_alloc.dir/chunk_allocator.cpp.o.d"
  "libupsl_alloc.a"
  "libupsl_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
