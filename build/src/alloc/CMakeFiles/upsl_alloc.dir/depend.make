# Empty dependencies file for upsl_alloc.
# This may be replaced when dependencies are built.
