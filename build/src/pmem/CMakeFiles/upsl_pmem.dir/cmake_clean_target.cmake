file(REMOVE_RECURSE
  "libupsl_pmem.a"
)
