file(REMOVE_RECURSE
  "CMakeFiles/upsl_pmem.dir/pool.cpp.o"
  "CMakeFiles/upsl_pmem.dir/pool.cpp.o.d"
  "libupsl_pmem.a"
  "libupsl_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
