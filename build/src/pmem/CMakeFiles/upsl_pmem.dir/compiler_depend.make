# Empty compiler generated dependencies file for upsl_pmem.
# This may be replaced when dependencies are built.
