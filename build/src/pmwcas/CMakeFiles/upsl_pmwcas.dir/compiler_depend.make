# Empty compiler generated dependencies file for upsl_pmwcas.
# This may be replaced when dependencies are built.
