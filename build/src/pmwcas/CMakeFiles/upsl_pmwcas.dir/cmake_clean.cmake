file(REMOVE_RECURSE
  "CMakeFiles/upsl_pmwcas.dir/pmwcas.cpp.o"
  "CMakeFiles/upsl_pmwcas.dir/pmwcas.cpp.o.d"
  "libupsl_pmwcas.a"
  "libupsl_pmwcas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_pmwcas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
