file(REMOVE_RECURSE
  "libupsl_pmwcas.a"
)
