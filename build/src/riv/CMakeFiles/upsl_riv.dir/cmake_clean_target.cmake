file(REMOVE_RECURSE
  "libupsl_riv.a"
)
