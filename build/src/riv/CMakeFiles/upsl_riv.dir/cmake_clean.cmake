file(REMOVE_RECURSE
  "CMakeFiles/upsl_riv.dir/riv.cpp.o"
  "CMakeFiles/upsl_riv.dir/riv.cpp.o.d"
  "libupsl_riv.a"
  "libupsl_riv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_riv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
