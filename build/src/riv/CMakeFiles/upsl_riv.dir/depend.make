# Empty dependencies file for upsl_riv.
# This may be replaced when dependencies are built.
