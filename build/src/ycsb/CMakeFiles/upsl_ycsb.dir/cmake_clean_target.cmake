file(REMOVE_RECURSE
  "libupsl_ycsb.a"
)
