# Empty dependencies file for upsl_ycsb.
# This may be replaced when dependencies are built.
