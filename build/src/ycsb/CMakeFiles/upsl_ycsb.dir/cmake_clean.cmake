file(REMOVE_RECURSE
  "CMakeFiles/upsl_ycsb.dir/ycsb.cpp.o"
  "CMakeFiles/upsl_ycsb.dir/ycsb.cpp.o.d"
  "libupsl_ycsb.a"
  "libupsl_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
