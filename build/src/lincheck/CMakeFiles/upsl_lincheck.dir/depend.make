# Empty dependencies file for upsl_lincheck.
# This may be replaced when dependencies are built.
