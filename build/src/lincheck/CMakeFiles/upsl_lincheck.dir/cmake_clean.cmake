file(REMOVE_RECURSE
  "CMakeFiles/upsl_lincheck.dir/lincheck.cpp.o"
  "CMakeFiles/upsl_lincheck.dir/lincheck.cpp.o.d"
  "libupsl_lincheck.a"
  "libupsl_lincheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_lincheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
