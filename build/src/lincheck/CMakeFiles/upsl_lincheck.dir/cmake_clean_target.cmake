file(REMOVE_RECURSE
  "libupsl_lincheck.a"
)
