file(REMOVE_RECURSE
  "CMakeFiles/range_index.dir/range_index.cpp.o"
  "CMakeFiles/range_index.dir/range_index.cpp.o.d"
  "range_index"
  "range_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
