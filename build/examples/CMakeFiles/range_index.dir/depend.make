# Empty dependencies file for range_index.
# This may be replaced when dependencies are built.
