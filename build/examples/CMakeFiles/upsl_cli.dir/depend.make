# Empty dependencies file for upsl_cli.
# This may be replaced when dependencies are built.
