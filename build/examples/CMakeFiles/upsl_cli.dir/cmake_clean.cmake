file(REMOVE_RECURSE
  "CMakeFiles/upsl_cli.dir/upsl_cli.cpp.o"
  "CMakeFiles/upsl_cli.dir/upsl_cli.cpp.o.d"
  "upsl_cli"
  "upsl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
