file(REMOVE_RECURSE
  "CMakeFiles/ycsb_demo.dir/ycsb_demo.cpp.o"
  "CMakeFiles/ycsb_demo.dir/ycsb_demo.cpp.o.d"
  "ycsb_demo"
  "ycsb_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
