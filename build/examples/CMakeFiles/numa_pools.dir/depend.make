# Empty dependencies file for numa_pools.
# This may be replaced when dependencies are built.
