file(REMOVE_RECURSE
  "CMakeFiles/numa_pools.dir/numa_pools.cpp.o"
  "CMakeFiles/numa_pools.dir/numa_pools.cpp.o.d"
  "numa_pools"
  "numa_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
