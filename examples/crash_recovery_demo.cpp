// Crash-recovery demo: runs an insert workload, kills it at a random
// instrumented point mid-operation, simulates a power failure (all
// unflushed cache lines are dropped), reconnects and shows that
//  * every acknowledged operation survived,
//  * the structure repairs the interrupted operation on first touch,
//  * no memory was leaked.
//
//   ./examples/crash_recovery_demo [crash-step]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/crashpoint.hpp"
#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"

int main(int argc, char** argv) {
  using namespace upsl;
  const std::uint64_t crash_step =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 17;

  ThreadRegistry::instance().bind(0);
  core::Options opts;
  opts.keys_per_node = 4;  // small nodes -> lots of splits to interrupt
  opts.max_height = 12;
  opts.chunk.chunk_size = 64 << 10;
  opts.chunk.max_chunks = 96;
  const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                opts.chunk.max_chunks * opts.chunk.chunk_size;
  auto pool = pmem::Pool::create_anonymous(0, pool_size,
                                           {.crash_tracking = true});
  auto store = core::UPSkipList::create({pool.get()}, opts);
  pool->mark_all_persisted();

  // Run inserts until the armed crash point fires.
  std::map<std::uint64_t, std::uint64_t> acknowledged;
  CrashPoints::instance().arm(/*any point=*/0, crash_step);
  Xoshiro256 rng(7);
  try {
    for (int i = 0; i < 100000; ++i) {
      const std::uint64_t key = 1 + rng.next_below(500);
      const std::uint64_t value = 1 + (rng.next() >> 1);
      store->insert(key, value);
      acknowledged[key] = value;
    }
  } catch (const CrashException&) {
    std::printf("crash injected after %llu instrumented steps, "
                "%zu operations acknowledged\n",
                static_cast<unsigned long long>(crash_step),
                acknowledged.size());
  }
  CrashPoints::instance().disarm();

  // Power failure: unflushed lines are gone. Reconnect.
  store.reset();
  pool->simulate_crash();
  riv::Runtime::instance().reset();
  store = core::UPSkipList::open({pool.get()});
  std::printf("reopened in epoch %llu (recovery = reconnect + epoch bump)\n",
              static_cast<unsigned long long>(store->epoch()));

  std::size_t intact = 0;
  for (const auto& [k, v] : acknowledged) {
    auto got = store->search(k);
    if (got && *got == v) ++intact;
  }
  std::printf("acknowledged operations intact: %zu / %zu\n", intact,
              acknowledged.size());

  // Keep working; deferred recovery kicks in as nodes are touched.
  for (std::uint64_t k = 1000; k < 1100; ++k) store->insert(k, k);
  store->check_invariants();
  store->check_no_leaks();
  std::printf("post-crash inserts OK; invariants hold; no blocks leaked\n");
  return intact == acknowledged.size() ? 0 : 1;
}
