// NUMA-aware multi-pool example: one pool per (virtual) NUMA node, threads
// placed round-robin across nodes, allocation served from the local node's
// arenas, and one-word extended-RIV pointers crossing pools freely.
//
//   ./examples/numa_pools [num-pools] [threads]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"

int main(int argc, char** argv) {
  using namespace upsl;
  const unsigned num_pools =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  ThreadRegistry::instance().bind(0);
  core::Options opts;
  opts.keys_per_node = 32;
  opts.max_threads = threads;
  opts.chunk.chunk_size = 1 << 20;
  opts.chunk.max_chunks = 48;
  const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                opts.chunk.max_chunks * opts.chunk.chunk_size;

  std::vector<std::unique_ptr<pmem::Pool>> pools;
  std::vector<pmem::Pool*> raw;
  for (unsigned i = 0; i < num_pools; ++i) {
    pools.push_back(pmem::Pool::create_anonymous(
        static_cast<std::uint16_t>(i), pool_size));
    raw.push_back(pools.back().get());
  }
  auto store = core::UPSkipList::create(raw, opts);
  std::printf("store spans %u pools (virtual NUMA nodes); "
              "thread t allocates from pool t %% %u\n",
              num_pools, num_pools);

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadRegistry::instance().bind(static_cast<int>(t));
      const std::uint32_t my_node = store->allocator().node_of_current_thread();
      for (std::uint64_t i = 0; i < 2000; ++i) {
        const std::uint64_t key = 1 + i * threads + t;
        store->insert(key, (static_cast<std::uint64_t>(my_node) << 32) | i);
      }
    });
  }
  for (auto& w : workers) w.join();
  ThreadRegistry::instance().bind(0);

  std::printf("inserted %zu keys across all nodes\n", store->count_keys());

  // Show where nodes physically live: decode a few keys' RIV pool ids.
  std::vector<std::size_t> per_pool(num_pools, 0);
  std::vector<core::ScanEntry> all;
  store->scan(1, ~0ULL - 1, all);
  // The value's upper half records the inserting thread's node.
  for (const auto& e : all) per_pool[e.value >> 32]++;
  for (unsigned i = 0; i < num_pools; ++i)
    std::printf("  keys inserted by threads of node %u: %zu\n", i,
                per_pool[i]);

  store->check_invariants();
  std::printf("cross-pool one-word pointers verified by invariant walk\n");
  return 0;
}
