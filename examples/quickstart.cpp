// Quickstart: create a persistent pool, build a UPSkipList in it, do some
// inserts/searches/removes and a range scan, then reopen the pool as a
// restart would and show the data is still there.
//
//   ./examples/quickstart [pool-file]
#include <cstdio>
#include <filesystem>

#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"

int main(int argc, char** argv) {
  using namespace upsl;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/upsl_quickstart.pool";
  std::filesystem::remove(path);

  // Every thread that touches the store binds a stable id first.
  ThreadRegistry::instance().bind(0);

  // A pool is a file standing in for an app-direct PMEM device.
  core::Options opts;
  opts.keys_per_node = 64;
  opts.chunk.chunk_size = 1 << 20;
  opts.chunk.max_chunks = 64;
  const std::size_t pool_size =
      (8ull << 20) + opts.chunk.root_size +
      opts.chunk.max_chunks * opts.chunk.chunk_size;
  auto pool = pmem::Pool::create(path, /*pool_id=*/0, pool_size);

  {
    auto store = core::UPSkipList::create({pool.get()}, opts);
    std::printf("created store (epoch %llu)\n",
                static_cast<unsigned long long>(store->epoch()));

    for (std::uint64_t k = 1; k <= 100; ++k) store->insert(k, k * k);
    std::printf("inserted 100 keys; search(12) = %llu\n",
                static_cast<unsigned long long>(*store->search(12)));

    auto old = store->insert(12, 999);  // upsert returns the old value
    std::printf("upsert(12) replaced %llu\n",
                static_cast<unsigned long long>(*old));

    store->remove(13);
    std::printf("removed 13; contains(13) = %s\n",
                store->contains(13) ? "yes" : "no");

    std::vector<core::ScanEntry> range;
    store->scan(10, 15, range);
    std::printf("scan [10,15]:");
    for (const auto& e : range)
      std::printf(" %llu->%llu", static_cast<unsigned long long>(e.key),
                  static_cast<unsigned long long>(e.value));
    std::printf("\n");
  }  // store handle dropped — like a process exit

  // Reconnect: recovery is a single epoch bump; data is all there.
  riv::Runtime::instance().reset();
  auto store = core::UPSkipList::open({pool.get()});
  std::printf("reopened store (epoch %llu); search(12) = %llu, keys = %zu\n",
              static_cast<unsigned long long>(store->epoch()),
              static_cast<unsigned long long>(*store->search(12)),
              store->count_keys());
  return 0;
}
