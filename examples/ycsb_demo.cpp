// YCSB demo: runs all four thesis workloads (Table 5.1) against UPSkipList
// and prints throughput + median latency — a miniature of the chapter 5
// evaluation for a single structure.
//
//   ./examples/ycsb_demo [records] [ops] [threads]
#include <cstdio>
#include <cstdlib>

#include "core/upskiplist.hpp"
#include "ycsb/runner.hpp"

int main(int argc, char** argv) {
  using namespace upsl;
  const std::uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::uint64_t ops =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40000;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;

  class Adapter : public ycsb::KVAdapter {
   public:
    explicit Adapter(std::uint64_t records) {
      riv::Runtime::instance().reset();
      core::Options opts;
      opts.keys_per_node = 256;
      opts.max_threads = 16;
      opts.chunk.max_chunks = static_cast<std::uint32_t>(
          32 + records * 96 / opts.chunk.chunk_size);
      const std::size_t pool_size =
          (8ull << 20) + opts.chunk.root_size +
          opts.chunk.max_chunks * opts.chunk.chunk_size;
      pool_ = pmem::Pool::create_anonymous(0, pool_size);
      store_ = core::UPSkipList::create({pool_.get()}, opts);
    }
    std::optional<std::uint64_t> insert(std::uint64_t k, std::uint64_t v) override {
      return store_->insert(k, v);
    }
    std::optional<std::uint64_t> search(std::uint64_t k) override {
      return store_->search(k);
    }
    std::optional<std::uint64_t> remove(std::uint64_t k) override {
      return store_->remove(k);
    }

   private:
    std::unique_ptr<pmem::Pool> pool_;
    std::unique_ptr<core::UPSkipList> store_;
  };

  std::printf("%-18s %10s %12s %12s\n", "workload", "Mops/s", "p50 read(us)",
              "p99 read(us)");
  for (const auto& spec : {ycsb::kWorkloadA, ycsb::kWorkloadB,
                           ycsb::kWorkloadC, ycsb::kWorkloadD}) {
    Adapter adapter(records);
    const ycsb::Trace trace = ycsb::generate(spec, records, ops, threads, 1);
    ycsb::preload(adapter, trace);
    const ycsb::RunStats stats = ycsb::run_trace(adapter, trace, true);
    std::printf("%-18s %10.3f %12.2f %12.2f\n", spec.name, stats.mops(),
                stats.reads.percentile(50) / 1000.0,
                stats.reads.percentile(99) / 1000.0);
  }
  return 0;
}
