// Interactive command-line shell over a persistent UPSkipList store — the
// smallest "real application" shape: a durable ordered key-value store you
// can kill (Ctrl-C, kill -9, power cut) and reopen with zero data loss for
// acknowledged writes.
//
//   ./examples/upsl_cli /tmp/my.pool
//   > put 10 100
//   > get 10
//   > scan 1 100
//   > del 10
//   > stats
//   > quit
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"

int main(int argc, char** argv) {
  using namespace upsl;
  const std::string path = argc > 1 ? argv[1] : "/tmp/upsl_cli.pool";
  ThreadRegistry::instance().bind(0);

  core::Options opts;
  opts.keys_per_node = 64;
  opts.chunk.chunk_size = 1 << 20;
  opts.chunk.max_chunks = 256;
  const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                opts.chunk.max_chunks * opts.chunk.chunk_size;

  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<core::UPSkipList> store;
  if (std::filesystem::exists(path)) {
    pool = pmem::Pool::open(path, 0);
    store = core::UPSkipList::open({pool.get()});
    std::printf("reopened %s (epoch %llu, %zu keys)\n", path.c_str(),
                static_cast<unsigned long long>(store->epoch()),
                store->count_keys());
  } else {
    pool = pmem::Pool::create(path, 0, pool_size);
    store = core::UPSkipList::create({pool.get()}, opts);
    std::printf("created %s\n", path.c_str());
  }

  std::string line;
  std::printf("commands: put <k> <v> | get <k> | del <k> | scan <lo> <hi> | "
              "count | stats | quit\n");
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    try {
      if (cmd == "put") {
        std::uint64_t k = 0;
        std::uint64_t v = 0;
        if (!(is >> k >> v)) throw std::invalid_argument("put <k> <v>");
        auto old = store->insert(k, v);
        if (old) {
          std::printf("updated (was %llu)\n",
                      static_cast<unsigned long long>(*old));
        } else {
          std::printf("inserted\n");
        }
      } else if (cmd == "get") {
        std::uint64_t k = 0;
        if (!(is >> k)) throw std::invalid_argument("get <k>");
        auto v = store->search(k);
        if (v) {
          std::printf("%llu\n", static_cast<unsigned long long>(*v));
        } else {
          std::printf("(not found)\n");
        }
      } else if (cmd == "del") {
        std::uint64_t k = 0;
        if (!(is >> k)) throw std::invalid_argument("del <k>");
        auto v = store->remove(k);
        std::printf(v ? "removed\n" : "(not found)\n");
      } else if (cmd == "scan") {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        if (!(is >> lo >> hi)) throw std::invalid_argument("scan <lo> <hi>");
        std::vector<core::ScanEntry> out;
        store->scan(lo, hi, out);
        for (const auto& e : out)
          std::printf("  %llu -> %llu\n",
                      static_cast<unsigned long long>(e.key),
                      static_cast<unsigned long long>(e.value));
        std::printf("(%zu entries)\n", out.size());
      } else if (cmd == "count") {
        std::printf("%zu keys\n", store->count_keys());
      } else if (cmd == "stats") {
        auto& stats = pmem::Stats::instance();
        std::printf("epoch %llu, %zu keys, %llu persists, %llu lines\n",
                    static_cast<unsigned long long>(store->epoch()),
                    store->count_keys(),
                    static_cast<unsigned long long>(
                        stats.persist_calls.load()),
                    static_cast<unsigned long long>(
                        stats.persisted_lines.load()));
      } else if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (!cmd.empty()) {
        std::printf("unknown command '%s'\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
