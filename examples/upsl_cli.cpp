// Interactive command-line shell over a persistent UPSkipList store — the
// smallest "real application" shape: a durable ordered key-value store you
// can kill (Ctrl-C, kill -9, power cut) and reopen with zero data loss for
// acknowledged writes.
//
// Local mode (in-process store over a pool file):
//   ./examples/upsl_cli /tmp/my.pool
// Remote mode (same commands, served by a running `upsl-serve`):
//   ./examples/upsl_cli --remote 127.0.0.1:7707
//
//   > put 10 100
//   > get 10
//   > scan 1 100
//   > del 10
//   > stats
//   > quit
//
// One parser serves both modes: commands are dispatched through the
// CliBackend interface below, so verb handling cannot drift between the
// local and remote paths.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"
#include "server/client.hpp"

namespace {

using namespace upsl;

struct KV {
  std::uint64_t key;
  std::uint64_t value;
};

/// One RESOLVE answer (docs/detectability.md): did (client_id, seq) apply,
/// and what durable result did it return?
struct ResolveAnswer {
  std::uint32_t state;         // detect::ResolveResult::State numbering
  bool has_previous;
  std::uint64_t result;
};

/// What the shared command loop needs from a store, local or remote.
/// Transport/storage errors surface as exceptions (caught per command).
class CliBackend {
 public:
  virtual ~CliBackend() = default;
  /// Upsert; previous value if the key existed.
  virtual std::optional<std::uint64_t> put(std::uint64_t k,
                                           std::uint64_t v) = 0;
  virtual std::optional<std::uint64_t> get(std::uint64_t k) = 0;
  virtual std::optional<std::uint64_t> del(std::uint64_t k) = 0;
  virtual std::vector<KV> scan(std::uint64_t lo, std::uint64_t hi) = 0;
  virtual std::size_t count() = 0;
  virtual std::string stats() = 0;
  /// Queries the durable session table for one (client_id, seq); `key`
  /// routes to the owning shard in remote mode, ignored locally.
  virtual ResolveAnswer resolve(std::uint64_t client_id, std::uint64_t seq,
                                std::uint64_t key) = 0;
  /// Full structural check; returns a JSON report and sets *ok. Never
  /// throws for a failed check — that is a result, not an error.
  virtual std::string validate(bool* ok) = 0;
  /// Deep integrity check (docs/integrity.md): checksum-verifying re-walk
  /// plus the quarantine report. *ok = the store is NOT degraded. A
  /// degraded verdict is a result, not an error.
  virtual std::string fsck(bool* ok) = 0;
  virtual std::string banner() = 0;
};

class LocalBackend : public CliBackend {
 public:
  explicit LocalBackend(const std::string& path) : path_(path) {
    core::Options opts;
    opts.keys_per_node = 64;
    opts.chunk.chunk_size = 1 << 20;
    opts.chunk.max_chunks = 256;
    const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                  opts.chunk.max_chunks *
                                      opts.chunk.chunk_size;
    if (std::filesystem::exists(path)) {
      pool_ = pmem::Pool::open(path, 0);
      store_ = core::UPSkipList::open({pool_.get()});
      created_ = false;
    } else {
      pool_ = pmem::Pool::create(path, 0, pool_size);
      store_ = core::UPSkipList::create({pool_.get()}, opts);
      created_ = true;
    }
    session_t0_ = pmem::Stats::instance().snapshot();
  }

  std::optional<std::uint64_t> put(std::uint64_t k, std::uint64_t v) override {
    return store_->insert(k, v);
  }
  std::optional<std::uint64_t> get(std::uint64_t k) override {
    return store_->search(k);
  }
  std::optional<std::uint64_t> del(std::uint64_t k) override {
    return store_->remove(k);
  }
  std::vector<KV> scan(std::uint64_t lo, std::uint64_t hi) override {
    std::vector<core::ScanEntry> entries;
    store_->scan(lo, hi, entries);
    std::vector<KV> out;
    out.reserve(entries.size());
    for (const auto& e : entries) out.push_back({e.key, e.value});
    return out;
  }
  std::size_t count() override { return store_->count_keys(); }
  std::string stats() override {
    // This session's persists, not process-lifetime totals: the snapshot
    // delta, as everywhere else since the Stats::snapshot() API landed.
    const auto d = pmem::Stats::instance().snapshot() - session_t0_;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "epoch %llu, %zu keys, this session: %llu persists, "
                  "%llu lines, %llu fences",
                  static_cast<unsigned long long>(store_->epoch()),
                  store_->count_keys(),
                  static_cast<unsigned long long>(d.persist_calls),
                  static_cast<unsigned long long>(d.persisted_lines),
                  static_cast<unsigned long long>(d.fences));
    return buf;
  }
  ResolveAnswer resolve(std::uint64_t client_id, std::uint64_t seq,
                        std::uint64_t /*key*/) override {
    const detect::ResolveResult r = store_->sessions().resolve(client_id, seq);
    return {static_cast<std::uint32_t>(r.state), r.has_previous != 0,
            r.result};
  }
  std::string validate(bool* ok) override {
    // Mirror the server's VALIDATE JSON so scripts can parse either mode.
    try {
      store_->check_invariants();
      *ok = true;
      return "{\"valid\": true, \"nodes\": " +
             std::to_string(store_->count_nodes()) +
             ", \"epoch\": " + std::to_string(store_->epoch()) + "}";
    } catch (const std::exception& e) {
      *ok = false;
      std::string msg;
      for (const char* c = e.what(); *c != '\0'; ++c)
        msg += (*c == '"' || *c == '\\') ? ' ' : *c;
      return "{\"valid\": false, \"error\": \"" + msg + "\"}";
    }
  }
  std::string fsck(bool* ok) override {
    try {
      const core::IntegrityReport rep = store_->verify_deep();
      *ok = !rep.degraded();
      return rep.to_json();
    } catch (const std::exception& e) {
      *ok = false;
      std::string msg;
      for (const char* c = e.what(); *c != '\0'; ++c)
        msg += (*c == '"' || *c == '\\') ? ' ' : *c;
      return "{\"degraded\": true, \"error\": \"" + msg + "\"}";
    }
  }
  std::string banner() override {
    char buf[160];
    if (created_) {
      std::snprintf(buf, sizeof buf, "created %s", path_.c_str());
    } else {
      std::snprintf(buf, sizeof buf, "reopened %s (epoch %llu, %zu keys)",
                    path_.c_str(),
                    static_cast<unsigned long long>(store_->epoch()),
                    store_->count_keys());
    }
    return buf;
  }

 private:
  std::string path_;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<core::UPSkipList> store_;
  pmem::StatsSnapshot session_t0_;
  bool created_ = false;
};

class RemoteBackend : public CliBackend {
 public:
  RemoteBackend(const std::string& host, std::uint16_t port)
      : addr_(host + ":" + std::to_string(port)) {
    if (!client_.connect(host, port))
      throw std::runtime_error("cannot connect to " + addr_);
  }

  std::optional<std::uint64_t> put(std::uint64_t k, std::uint64_t v) override {
    const auto r = client_.put(k, v);
    if (r.created) return std::nullopt;
    return r.old_value;
  }
  std::optional<std::uint64_t> get(std::uint64_t k) override {
    return client_.get(k);
  }
  std::optional<std::uint64_t> del(std::uint64_t k) override {
    return client_.remove(k);
  }
  std::vector<KV> scan(std::uint64_t lo, std::uint64_t hi) override {
    std::vector<KV> out;
    for (const auto& [k, v] : client_.scan(lo, hi)) out.push_back({k, v});
    return out;
  }
  std::size_t count() override {
    // Full-range scan; the server caps one response at kMaxScanEntries, so
    // page through by restarting above the last key seen.
    std::size_t total = 0;
    std::uint64_t lo = 0;
    while (true) {
      const auto page = client_.scan(lo, ~0ull);
      total += page.size();
      if (page.size() < server::kMaxScanEntries) return total;
      lo = page.back().first + 1;
      if (lo == 0) return total;  // wrapped: last key was 2^64-1
    }
  }
  ResolveAnswer resolve(std::uint64_t client_id, std::uint64_t seq,
                        std::uint64_t key) override {
    const auto r = client_.resolve(client_id, seq, key);
    return {r.state, r.has_previous != 0, r.result};
  }
  std::string stats() override { return client_.stats_json(); }
  std::string validate(bool* ok) override { return client_.validate_json(ok); }
  std::string fsck(bool* ok) override {
    const std::string json = client_.fsck_json(ok);
    // The wire *ok means "the walk ran"; fold in the report's own verdict
    // so the CLI prints DEGRADED when quarantine found damage.
    if (*ok && json.find("\"degraded\": true") != std::string::npos)
      *ok = false;
    return json;
  }
  std::string banner() override { return "connected to " + addr_; }

 private:
  std::string addr_;
  server::Client client_;
};

/// The one command loop both modes run.
int command_loop(CliBackend& be) {
  std::printf("%s\n", be.banner().c_str());
  std::printf("commands: put <k> <v> | get <k> | del <k> | scan <lo> <hi> | "
              "resolve <client_id> <seq> [key] | count | stats | validate | "
              "fsck | quit\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    try {
      if (cmd == "put") {
        std::uint64_t k = 0;
        std::uint64_t v = 0;
        if (!(is >> k >> v)) throw std::invalid_argument("put <k> <v>");
        auto old = be.put(k, v);
        if (old) {
          std::printf("updated (was %llu)\n",
                      static_cast<unsigned long long>(*old));
        } else {
          std::printf("inserted\n");
        }
      } else if (cmd == "get") {
        std::uint64_t k = 0;
        if (!(is >> k)) throw std::invalid_argument("get <k>");
        auto v = be.get(k);
        if (v) {
          std::printf("%llu\n", static_cast<unsigned long long>(*v));
        } else {
          std::printf("(not found)\n");
        }
      } else if (cmd == "del") {
        std::uint64_t k = 0;
        if (!(is >> k)) throw std::invalid_argument("del <k>");
        auto v = be.del(k);
        std::printf(v ? "removed\n" : "(not found)\n");
      } else if (cmd == "scan") {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        if (!(is >> lo >> hi)) throw std::invalid_argument("scan <lo> <hi>");
        const auto entries = be.scan(lo, hi);
        for (const auto& e : entries)
          std::printf("  %llu -> %llu\n",
                      static_cast<unsigned long long>(e.key),
                      static_cast<unsigned long long>(e.value));
        std::printf("(%zu entries)\n", entries.size());
      } else if (cmd == "resolve") {
        // Exactly-once triage after a crash or dropped connection: did my
        // (client_id, seq) mutation land, and what did it return?
        std::uint64_t cid = 0;
        std::uint64_t seq = 0;
        std::uint64_t key = 0;
        if (!(is >> cid >> seq))
          throw std::invalid_argument("resolve <client_id> <seq> [key]");
        is >> key;  // optional shard-routing key; 0 = arrival shard
        const ResolveAnswer a = be.resolve(cid, seq, key);
        switch (a.state) {
          case 0:
            std::printf("unknown session\n");
            break;
          case 1:
            std::printf("not applied (safe to replay seq %llu)\n",
                        static_cast<unsigned long long>(seq));
            break;
          case 2:
            if (a.has_previous) {
              std::printf("applied, returned %llu\n",
                          static_cast<unsigned long long>(a.result));
            } else {
              std::printf("applied, no previous value\n");
            }
            break;
          default:
            std::printf("applied, result aged out of the ring\n");
            break;
        }
      } else if (cmd == "count") {
        std::printf("%zu keys\n", be.count());
      } else if (cmd == "stats") {
        std::printf("%s\n", be.stats().c_str());
      } else if (cmd == "validate") {
        bool ok = false;
        const std::string report = be.validate(&ok);
        std::printf("%s\n%s\n", ok ? "OK" : "INVALID", report.c_str());
      } else if (cmd == "fsck") {
        bool ok = false;
        const std::string report = be.fsck(&ok);
        std::printf("%s\n%s\n", ok ? "CLEAN" : "DEGRADED", report.c_str());
      } else if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (!cmd.empty()) {
        std::printf("unknown command '%s'\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ThreadRegistry::instance().bind(0);
  try {
    if (argc >= 2 && std::strcmp(argv[1], "--remote") == 0) {
      if (argc < 3) {
        std::fprintf(stderr, "usage: upsl_cli --remote host:port\n");
        return 2;
      }
      std::string host;
      std::uint16_t port = 0;
      if (!server::parse_addr(argv[2], &host, &port)) {
        std::fprintf(stderr, "bad address '%s' (want host:port)\n", argv[2]);
        return 2;
      }
      RemoteBackend be(host, port);
      return command_loop(be);
    }
    const std::string path = argc > 1 ? argv[1] : "/tmp/upsl_cli.pool";
    LocalBackend be(path);
    return command_loop(be);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
