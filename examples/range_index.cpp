// Database-index scenario (the thesis' motivating use case, §1.1): an
// "orders" table indexed by a composite (customer, timestamp) key packed
// into 64 bits, supporting per-customer range scans — the query pattern
// B+tree/skip-list indexes exist for, exercised over the persistent store
// with a restart in the middle.
//
//   ./examples/range_index
#include <cstdio>

#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"

namespace {

// Composite key: [customer:24][timestamp:40]. Keys order by customer first,
// then time, so one customer's orders are one contiguous key range.
std::uint64_t order_key(std::uint32_t customer, std::uint64_t ts) {
  return (static_cast<std::uint64_t>(customer) << 40) |
         (ts & ((1ULL << 40) - 1));
}

}  // namespace

int main() {
  using namespace upsl;
  ThreadRegistry::instance().bind(0);

  core::Options opts;
  opts.keys_per_node = 128;
  opts.chunk.chunk_size = 1 << 20;
  opts.chunk.max_chunks = 128;
  const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                opts.chunk.max_chunks * opts.chunk.chunk_size;
  auto pool = pmem::Pool::create(
      "/tmp/upsl_range_index.pool", 0, pool_size);
  auto index = core::UPSkipList::create({pool.get()}, opts);

  // Ingest 50k orders for 200 customers at random timestamps. The value
  // would be the row locator in a real system.
  Xoshiro256 rng(2024);
  for (std::uint64_t row = 1; row <= 50000; ++row) {
    const auto customer = static_cast<std::uint32_t>(1 + rng.next_below(200));
    const std::uint64_t ts = 1 + rng.next_below(1u << 20);
    index->insert(order_key(customer, ts), row);
  }
  std::printf("ingested %zu orders\n", index->count_keys());

  // Point query + range query for one customer.
  const std::uint32_t customer = 42;
  std::vector<core::ScanEntry> orders;
  index->scan(order_key(customer, 0), order_key(customer, ~0ULL), orders);
  std::printf("customer %u has %zu orders; first ts=%llu last ts=%llu\n",
              customer, orders.size(),
              static_cast<unsigned long long>(orders.front().key &
                                              ((1ULL << 40) - 1)),
              static_cast<unsigned long long>(orders.back().key &
                                              ((1ULL << 40) - 1)));

  // Time-windowed scan: orders in the first half of the time range.
  std::vector<core::ScanEntry> window;
  index->scan(order_key(customer, 0), order_key(customer, 1u << 19), window);
  std::printf("customer %u orders in window [0, 2^19): %zu\n", customer,
              window.size());

  // Restart the "database": the index needs no rebuild.
  index.reset();
  riv::Runtime::instance().reset();
  index = core::UPSkipList::open({pool.get()});
  std::vector<core::ScanEntry> again;
  index->scan(order_key(customer, 0), order_key(customer, ~0ULL), again);
  std::printf("after restart: customer %u still has %zu orders (no rebuild, "
              "epoch %llu)\n",
              customer, again.size(),
              static_cast<unsigned long long>(index->epoch()));
  return orders.size() == again.size() ? 0 : 1;
}
