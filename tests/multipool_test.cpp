// NUMA-aware multi-pool tests (thesis §4.3.1): the store spans several
// pools, threads allocate from their virtual node's arenas, one-word RIV
// pointers cross pools, and recovery works across all pools at once.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "test_util.hpp"

namespace upsl::core {
namespace {

using test::StoreHarness;
using test::small_options;

class MultiPool : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiPool, BasicOpsAcrossPools) {
  StoreHarness h(small_options(4, 10, 8), GetParam());
  for (std::uint64_t k = 1; k <= 300; ++k)
    ASSERT_FALSE(h.store().insert(k, k * 11).has_value());
  for (std::uint64_t k = 1; k <= 300; ++k)
    ASSERT_EQ(*h.store().search(k), k * 11);
  h.store().check_invariants();
  h.store().check_no_leaks();
}

TEST_P(MultiPool, ThreadsAllocateFromTheirOwnNode) {
  StoreHarness h(small_options(4, 10, 8), GetParam());
  const unsigned pools = GetParam();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < pools; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(static_cast<int>(t));
      EXPECT_EQ(h.store().allocator().node_of_current_thread(), t % pools);
      for (std::uint64_t i = 0; i < 200; ++i)
        h.store().insert(1 + i * pools + t, i);
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  EXPECT_EQ(h.store().count_keys(), 200u * pools);
  h.store().check_invariants();
}

TEST_P(MultiPool, CleanReopenAcrossPools) {
  StoreHarness h(small_options(4, 10, 8), GetParam());
  for (std::uint64_t k = 1; k <= 200; ++k) h.store().insert(k, k);
  h.clean_reopen();
  for (std::uint64_t k = 1; k <= 200; ++k) ASSERT_EQ(*h.store().search(k), k);
  h.store().insert(999, 999);
  EXPECT_TRUE(h.store().contains(999));
}

TEST_P(MultiPool, CrashRecoveryAcrossPools) {
  StoreHarness h(small_options(4, 10, 8), GetParam());
  std::map<std::uint64_t, std::uint64_t> acked;
  CrashPoints::instance().arm(/*any=*/0, 200);
  Xoshiro256 rng(13);
  // Detectable mutations (docs/detectability.md): every insert carries
  // (client_id, seq), so the op in flight at the crash is not an
  // either-outcome hole any more — the durable session table answers
  // exactly which outcome happened, and a not-applied op replays under the
  // same seq. Plain (non-detectable) ops keep the legacy either-outcome
  // tolerance; see CrashTorture.DiscardModeShard* for that campaign.
  test::ScopedDetect detect_on(true);
  constexpr std::uint64_t kClient = 77;
  const std::int32_t slot = h.store().sessions().open_session(kClient);
  ASSERT_GE(slot, 0);
  std::uint64_t seq = 0;
  std::uint64_t inflight_key = 0;
  std::uint64_t inflight_value = 0;
  try {
    for (int i = 0; i < 100000; ++i) {
      const std::uint64_t key = 1 + rng.next_below(400);
      const std::uint64_t value = 1 + (rng.next() >> 1);
      inflight_key = key;
      inflight_value = value;
      ++seq;
      h.store().insert_detect(key, value, slot, seq);
      acked[key] = value;
    }
  } catch (const CrashException&) {
  }
  CrashPoints::instance().disarm();
  h.crash_and_reopen();

  // Reconnect-and-resolve: the session survives the crash, and the resolve
  // answer decides the in-flight key's exact value.
  const std::int32_t rslot = h.store().sessions().open_session(kClient);
  ASSERT_EQ(rslot, slot) << "session lost its durable slot across the crash";
  const detect::ResolveResult r = h.store().sessions().resolve(kClient, seq);
  switch (r.state) {
    case detect::ResolveResult::State::kApplied:
      // The durable result must replay the key's previous acked value.
      if (const auto it = acked.find(inflight_key); it != acked.end()) {
        EXPECT_EQ(r.has_previous, 1u);
        EXPECT_EQ(r.result, it->second);
      } else {
        EXPECT_EQ(r.has_previous, 0u);
      }
      break;
    case detect::ResolveResult::State::kNotApplied: {
      // Replay with the same seq and payload; it must apply, not dedup.
      const auto d =
          h.store().insert_detect(inflight_key, inflight_value, rslot, seq);
      EXPECT_FALSE(d.duplicate);
      break;
    }
    default:
      FAIL() << "in-flight seq " << seq << " resolved to state "
             << static_cast<int>(r.state) << " with one op in flight";
  }
  // Either way the in-flight mutation has now been applied exactly once.
  acked[inflight_key] = inflight_value;
  for (const auto& [k, v] : acked) {
    auto got = h.store().search(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v) << k;
  }
  // A duplicate replay of the now-resolved seq must return the original
  // durable answer without mutating.
  const auto dup = h.store().insert_detect(inflight_key, 0xdead, rslot, seq);
  EXPECT_TRUE(dup.duplicate);
  EXPECT_EQ(*h.store().search(inflight_key), inflight_value);
  for (std::uint64_t k = 5001; k <= 5100; ++k) h.store().insert(k, k);
  h.store().check_invariants();
  h.store().check_no_leaks();
}

TEST_P(MultiPool, ConcurrentMixedWorkload) {
  StoreHarness h(small_options(8, 12, 8), GetParam());
  const unsigned nthreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(static_cast<int>(t));
      Xoshiro256 rng(t * 7 + 1);
      for (int i = 0; i < 1500; ++i) {
        const std::uint64_t key = 1 + rng.next_below(256);
        switch (rng.next_below(3)) {
          case 0:
            h.store().insert(key, rng.next() >> 1);
            break;
          case 1:
            h.store().search(key);
            break;
          default:
            h.store().remove(key);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  h.store().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(PoolCounts, MultiPool, ::testing::Values(2u, 4u),
                         [](const auto& info) {
                           return "pools" + std::to_string(info.param);
                         });

TEST(MultiPool, SinglePoolUsesFastPath) {
  StoreHarness h(small_options(), 1);
  EXPECT_TRUE(riv::Runtime::instance().single_pool_mode());
}

TEST(MultiPool, MultiPoolDisablesFastPath) {
  StoreHarness h(small_options(4, 10, 8), 2);
  EXPECT_FALSE(riv::Runtime::instance().single_pool_mode());
}

}  // namespace
}  // namespace upsl::core
