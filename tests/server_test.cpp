// upsl-serve tests: protocol codec round-trips, malformed-frame handling
// (truncated headers, oversized lengths, garbage opcodes must close the
// connection — never crash, never over-read), pipelined batches, graceful
// drain, and the headline property of the serving PR: recovery through
// restart — every acknowledged PUT is readable after SIGTERM + a
// process-level reopen of the pool, and an unacknowledged in-flight op is
// either absent or fully applied, never torn.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "test_util.hpp"

namespace upsl::server {
namespace {

// ---- codec ----------------------------------------------------------------

TEST(ServerProtocol, RequestRoundTrip) {
  const Request cases[] = {
      {Opcode::kGet, 42},
      {Opcode::kPut, 7, 700},
      {Opcode::kUpdate, 8, 800},
      {Opcode::kRemove, 9},
      {Opcode::kScan, 10, 99, 17},
      {Opcode::kStats},
      {Opcode::kPing},
  };
  for (const Request& in : cases) {
    std::vector<std::uint8_t> buf;
    encode_request(in, buf);
    Request out;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_request(buf.data(), buf.size(), &out, &consumed),
              ParseResult::kOk);
    EXPECT_EQ(consumed, buf.size());
    EXPECT_EQ(static_cast<int>(out.op), static_cast<int>(in.op));
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.value, in.value);
    EXPECT_EQ(out.limit, in.limit);
  }
}

TEST(ServerProtocol, ResponseRoundTrip) {
  {
    std::vector<std::uint8_t> buf;
    encode_response_value(Status::kOk, 12345, buf);
    Response r;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_response(buf.data(), buf.size(), &r, &consumed),
              ParseResult::kOk);
    EXPECT_EQ(r.status, Status::kOk);
    std::uint64_t v = 0;
    ASSERT_TRUE(r.value_u64(&v));
    EXPECT_EQ(v, 12345u);
  }
  {
    std::vector<std::uint8_t> buf;
    encode_response_empty(Status::kNotFound, buf);
    Response r;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_response(buf.data(), buf.size(), &r, &consumed),
              ParseResult::kOk);
    EXPECT_EQ(r.status, Status::kNotFound);
    EXPECT_TRUE(r.payload.empty());
  }
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> kv = {
        {1, 10}, {2, 20}, {3, 30}};
    std::vector<std::uint8_t> buf;
    encode_response_scan(kv.data(), 3, buf);
    Response r;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_response(buf.data(), buf.size(), &r, &consumed),
              ParseResult::kOk);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    ASSERT_TRUE(r.scan_entries(&got));
    EXPECT_EQ(got, kv);
  }
  {
    std::vector<std::uint8_t> buf;
    encode_response_blob(Status::kOk, "{\"x\": 1}", buf);
    Response r;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_response(buf.data(), buf.size(), &r, &consumed),
              ParseResult::kOk);
    std::string blob;
    ASSERT_TRUE(r.blob(&blob));
    EXPECT_EQ(blob, "{\"x\": 1}");
  }
}

TEST(ServerProtocol, PipelinedFramesParseBackToBack) {
  std::vector<std::uint8_t> buf;
  encode_request({Opcode::kPut, 1, 10}, buf);
  encode_request({Opcode::kGet, 1}, buf);
  encode_request({Opcode::kPing}, buf);
  std::size_t off = 0;
  int frames = 0;
  while (off < buf.size()) {
    Request r;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_request(buf.data() + off, buf.size() - off, &r, &consumed),
              ParseResult::kOk);
    off += consumed;
    ++frames;
  }
  EXPECT_EQ(frames, 3);
  EXPECT_EQ(off, buf.size());
}

TEST(ServerProtocol, TruncatedFramesNeedMore) {
  std::vector<std::uint8_t> buf;
  encode_request({Opcode::kPut, 1, 10}, buf);
  // Every strict prefix must parse as kNeedMore — never kOk, never kBad,
  // never a read past the supplied bytes.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    Request r;
    std::size_t consumed = 0;
    EXPECT_EQ(parse_request(buf.data(), n, &r, &consumed),
              ParseResult::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(ServerProtocol, OversizedLengthIsRejected) {
  std::vector<std::uint8_t> buf;
  put_u32(buf, kMaxBody + 1);
  buf.resize(buf.size() + 16, 0);
  Request r;
  std::size_t consumed = 0;
  EXPECT_EQ(parse_request(buf.data(), buf.size(), &r, &consumed),
            ParseResult::kBad);
  // 0xffffffff must not trigger a 4 GiB buffer wait either.
  buf.clear();
  put_u32(buf, 0xffffffffu);
  EXPECT_EQ(parse_request(buf.data(), buf.size(), &r, &consumed),
            ParseResult::kBad);
}

TEST(ServerProtocol, GarbageOpcodeAndWrongPayloadAreRejected) {
  {
    std::vector<std::uint8_t> buf;
    put_u32(buf, kBodyPrefixBytes + 8);
    buf.push_back(0xee);  // no such opcode
    buf.insert(buf.end(), 3, 0);
    put_u64(buf, 1);
    Request r;
    std::size_t consumed = 0;
    EXPECT_EQ(parse_request(buf.data(), buf.size(), &r, &consumed),
              ParseResult::kBad);
  }
  {
    // Right opcode, wrong payload size (GET with 16 payload bytes).
    std::vector<std::uint8_t> buf;
    put_u32(buf, kBodyPrefixBytes + 16);
    buf.push_back(static_cast<std::uint8_t>(Opcode::kGet));
    buf.insert(buf.end(), 3, 0);
    put_u64(buf, 1);
    put_u64(buf, 2);
    Request r;
    std::size_t consumed = 0;
    EXPECT_EQ(parse_request(buf.data(), buf.size(), &r, &consumed),
              ParseResult::kBad);
  }
  {
    // Body shorter than the opcode prefix itself.
    std::vector<std::uint8_t> buf;
    put_u32(buf, 2);
    buf.push_back(1);
    buf.push_back(0);
    Request r;
    std::size_t consumed = 0;
    EXPECT_EQ(parse_request(buf.data(), buf.size(), &r, &consumed),
              ParseResult::kBad);
  }
}

// ---- loopback integration -------------------------------------------------

/// Blocking raw IPv4 connect to the loopback server; -1 on failure.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// File-backed store + server harness. The store harness mirrors the crash
/// tests' procedure (tests/test_util.hpp); the server rides on top.
struct ServerFixture {
  explicit ServerFixture(unsigned workers = 2,
                         core::Options opts = test::small_options(16, 12, 16))
      : harness(opts) {
    start_server(workers);
  }

  ~ServerFixture() {
    stop_server();
    Server::reset_signal_stop_for_testing();
  }

  void start_server(unsigned workers = 2) {
    ServerOptions o;
    o.workers = workers;
    o.first_thread_id = 8;  // clear of the ids the test body itself binds
    srv = std::make_unique<Server>(harness.store(), o);
    ASSERT_TRUE(srv->start());
  }

  void stop_server() {
    if (srv != nullptr) {
      srv->stop();
      srv->wait();
      srv.reset();
    }
  }

  Client connect() {
    Client c;
    EXPECT_TRUE(c.connect("127.0.0.1", srv->port()));
    return c;
  }

  test::StoreHarness harness;
  std::unique_ptr<Server> srv;
};

TEST(ServerLoopback, BasicOpsAndStatuses) {
  ServerFixture f;
  Client c = f.connect();
  EXPECT_TRUE(c.ping());

  auto put1 = c.put(5, 50);
  EXPECT_TRUE(put1.created);
  auto put2 = c.put(5, 51);
  EXPECT_FALSE(put2.created);
  EXPECT_EQ(put2.old_value, 50u);

  EXPECT_EQ(c.get(5), std::optional<std::uint64_t>(51));
  EXPECT_EQ(c.get(404), std::nullopt);

  EXPECT_EQ(c.remove(5), std::optional<std::uint64_t>(51));
  EXPECT_EQ(c.remove(5), std::nullopt);
  EXPECT_EQ(c.get(5), std::nullopt);

  const std::string stats = c.stats_json();
  EXPECT_NE(stats.find("\"pmem\""), std::string::npos);
  EXPECT_NE(stats.find("\"epoch\""), std::string::npos);
}

TEST(ServerLoopback, ValidateRunsStructuralCheck) {
  ServerFixture f;
  Client c = f.connect();
  for (std::uint64_t k = 1; k <= 200; ++k) c.put(k * 3, k);
  for (std::uint64_t k = 1; k <= 50; ++k) c.remove(k * 6);

  bool ok = false;
  const std::string report = c.validate_json(&ok);
  EXPECT_TRUE(ok) << report;
  EXPECT_NE(report.find("\"valid\": true"), std::string::npos) << report;
  EXPECT_NE(report.find("\"epoch\""), std::string::npos) << report;

  // VALIDATE is an admin op, not a fence: the store keeps serving after it.
  EXPECT_EQ(c.get(3), std::optional<std::uint64_t>(1));
}

TEST(ServerLoopback, ScanWithLimitAndOrder) {
  ServerFixture f;
  Client c = f.connect();
  for (std::uint64_t k = 1; k <= 100; ++k) c.put(k, k * 10);
  const auto all = c.scan(10, 20);
  ASSERT_EQ(all.size(), 11u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].first, 10 + i);
    EXPECT_EQ(all[i].second, (10 + i) * 10);
  }
  const auto limited = c.scan(1, 100, 7);
  EXPECT_EQ(limited.size(), 7u);
  EXPECT_EQ(limited.front().first, 1u);
}

TEST(ServerLoopback, ChunkedScanReassemblesManyChunks) {
  ServerFixture f;
  Client c = f.connect();
  std::vector<Response> resp;
  for (std::uint64_t k = 1; k <= 3000; ++k) {
    c.queue({Opcode::kPut, k, k * 3});
    if (c.queued() == 256 || k == 3000) c.flush(&resp);
  }

  const auto want = c.scan_buffered(1, 3000);
  ASSERT_EQ(want.size(), 3000u);

  // A tiny chunk size forces dozens of frames; the callback sees them in
  // order and their concatenation must equal the single-frame reply.
  std::size_t chunks = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  const std::size_t n = c.scan_stream(
      1, 3000,
      [&](const std::vector<std::pair<std::uint64_t, std::uint64_t>>& part) {
        ++chunks;
        got.insert(got.end(), part.begin(), part.end());
        return true;
      },
      /*limit=*/0, /*chunk=*/64);
  EXPECT_EQ(n, 3000u);
  EXPECT_GT(chunks, 20u);
  ASSERT_EQ(got, want);

  // And the transparent reassembling scan() sees the same world.
  EXPECT_EQ(c.scan(1, 3000), want);
}

TEST(ServerLoopback, ScanStreamResumesAcrossTruncatedRequests) {
  // More live entries than kMaxScanEntries: the server truncates the first
  // SCANS exchange at the cap and hands back a resume key; the client must
  // continue transparently with a second request and lose nothing at the
  // seam. Preload through the store directly — 61k loopback PUTs would
  // dominate the test.
  core::Options opts = test::small_options(16, 12, 16);
  opts.chunk.max_chunks = 256;  // room for > kMaxScanEntries live keys
  ServerFixture f(2, opts);
  constexpr std::uint64_t kN = kMaxScanEntries + 1000;
  for (std::uint64_t k = 1; k <= kN; ++k) f.harness.store().insert(k, k + 5);

  Client c = f.connect();
  std::uint64_t expect_next = 1;
  const std::size_t n = c.scan_stream(
      1, kN,
      [&](const std::vector<std::pair<std::uint64_t, std::uint64_t>>& part) {
        for (const auto& [k, v] : part) {
          if (k != expect_next || v != k + 5) return false;  // fail fast
          ++expect_next;
        }
        return true;
      },
      /*limit=*/0, /*chunk=*/8192);
  EXPECT_EQ(n, kN);
  EXPECT_EQ(expect_next, kN + 1) << "gap or reorder at the resume seam";
  // The continuation is a separate SCANS request on the wire.
  EXPECT_GE(f.srv->stats().scans.load(), 2u);
}

TEST(ServerLoopback, ScanStreamEarlyStopLeavesConnectionUsable) {
  ServerFixture f;
  Client c = f.connect();
  std::vector<Response> resp;
  for (std::uint64_t k = 1; k <= 2000; ++k) {
    c.queue({Opcode::kPut, k, k});
    if (c.queued() == 256 || k == 2000) c.flush(&resp);
  }

  // Stop after the first chunk: the callback sees nothing further, and no
  // continuation request is issued. The in-flight exchange still drains in
  // full (the protocol is strictly pipelined — a request's chunks cannot be
  // abandoned mid-frame), so the return value counts the drained entries
  // and the connection stays frame-aligned.
  std::size_t calls = 0;
  const std::size_t n = c.scan_stream(
      1, 2000,
      [&](const std::vector<std::pair<std::uint64_t, std::uint64_t>>&) {
        ++calls;
        return false;
      },
      /*limit=*/0, /*chunk=*/32);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(n, 2000u);

  // Same connection keeps serving point ops and full scans.
  EXPECT_EQ(c.get(1234), std::optional<std::uint64_t>(1234));
  EXPECT_EQ(c.scan(1, 2000).size(), 2000u);
}

// ---- data planes (epoll / io_uring) ----------------------------------------

TEST(ServerLoopback, DataPlaneReportedInStats) {
  ServerFixture f;
  const std::string plane = f.srv->data_plane();
  EXPECT_TRUE(plane == "io_uring" || plane == "epoll") << plane;
  Client c = f.connect();
  const std::string stats = c.stats_json();
  EXPECT_NE(stats.find("\"data_plane\": \"" + plane + "\""), std::string::npos)
      << stats;
}

TEST(ServerLoopback, IoUringKillSwitchForcesEpoll) {
  test::ScopedEnv off("UPSL_DISABLE_IOURING", "1");
  ServerFixture f;
  EXPECT_STREQ(f.srv->data_plane(), "epoll");
  Client c = f.connect();
  ASSERT_TRUE(c.put(1, 10).created);
  EXPECT_EQ(c.get(1), std::optional<std::uint64_t>(10));
  for (std::uint64_t k = 2; k <= 500; ++k) c.put(k, k);
  EXPECT_EQ(c.scan(1, 500).size(), 500u);
}

/// Scan-heavy traffic racing a graceful drain, on each data plane: every
/// response the client already received must be durable across a crash
/// restart, and the drain must complete (no hung worker) even with chunked
/// scan exchanges in flight when stop() lands.
void scan_heavy_drain_cycle(const char* disable_uring) {
  test::ScopedEnv env("UPSL_DISABLE_IOURING", disable_uring);
  ServerFixture f(2);
  const std::string plane = f.srv->data_plane();
  for (std::uint64_t k = 1; k <= 2000; ++k) f.harness.store().insert(k, k);

  std::vector<std::vector<std::uint64_t>> acked(3);
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      Client c;
      if (!c.connect("127.0.0.1", f.srv->port())) return;
      std::vector<Response> resp;
      try {
        for (std::uint64_t i = 0; i < 400; ++i) {
          const std::uint64_t k = 10000 + static_cast<std::uint64_t>(t) * 1000 + i;
          c.queue({Opcode::kPut, k, k * 2});
          c.flush(&resp);
          if (resp.size() == 1 && resp[0].status == Status::kCreated)
            acked[static_cast<std::size_t>(t)].push_back(k);
          c.scan_stream(
              1, 2000,
              [](const std::vector<std::pair<std::uint64_t,
                                             std::uint64_t>>&) {
                return true;
              },
              /*limit=*/0, /*chunk=*/64);
        }
      } catch (const std::exception&) {
        // Drain closed the connection mid-exchange — expected.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  f.stop_server();  // drain with scans + puts in flight
  for (auto& th : clients) th.join();

  f.harness.crash_and_reopen();
  auto& store = f.harness.store();
  store.check_invariants();
  // Preloaded range is intact and scannable.
  std::vector<core::ScanEntry> out;
  EXPECT_EQ(store.scan(1, 2000, out), 2000u) << "plane " << plane;
  // Every write the clients saw acknowledged is durable.
  for (const auto& keys : acked)
    for (const std::uint64_t k : keys)
      EXPECT_EQ(store.search(k), std::optional<std::uint64_t>(k * 2))
          << "acked write lost on plane " << plane;
}

TEST(ServerLoopback, ScanHeavyDrainAndRecoverOnProbedPlane) {
  scan_heavy_drain_cycle("0");
}

TEST(ServerLoopback, ScanHeavyDrainAndRecoverOnEpoll) {
  scan_heavy_drain_cycle("1");
}

TEST(ServerLoopback, PipelinedBatchKeepsOrder) {
  ServerFixture f;
  Client c = f.connect();
  constexpr std::uint64_t kN = 300;  // several server-side batches deep
  for (std::uint64_t k = 0; k < kN; ++k)
    c.queue({Opcode::kPut, k + 1, k + 1000});
  std::vector<Response> resp;
  c.flush(&resp);
  ASSERT_EQ(resp.size(), kN);
  for (const Response& r : resp) EXPECT_EQ(r.status, Status::kCreated);

  for (std::uint64_t k = 0; k < kN; ++k) c.queue({Opcode::kGet, k + 1});
  c.flush(&resp);
  ASSERT_EQ(resp.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    std::uint64_t v = 0;
    ASSERT_EQ(resp[k].status, Status::kOk);
    ASSERT_TRUE(resp[k].value_u64(&v));
    EXPECT_EQ(v, k + 1000) << "response order must match request order";
  }
}

TEST(ServerLoopback, GarbageBytesCloseConnectionServerSurvives) {
  ServerFixture f;
  Client good = f.connect();
  EXPECT_TRUE(good.ping());

  // Raw socket spraying an oversized-length frame: the server must close
  // the connection (recv sees EOF) and keep serving everyone else.
  const int bad = raw_connect(f.srv->port());
  ASSERT_GE(bad, 0);
  std::vector<std::uint8_t> junk;
  put_u32(junk, 0xfffffff0u);
  junk.resize(junk.size() + 64, 0xab);
  ASSERT_EQ(::send(bad, junk.data(), junk.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  char buf[16];
  EXPECT_EQ(::recv(bad, buf, sizeof buf, 0), 0)
      << "server must close a connection after a malformed frame";
  ::close(bad);

  // Garbage opcode: same contract.
  const int bad2 = raw_connect(f.srv->port());
  ASSERT_GE(bad2, 0);
  junk.clear();
  put_u32(junk, kBodyPrefixBytes + 8);
  junk.push_back(0xee);
  junk.insert(junk.end(), 3, 0);
  put_u64(junk, 1);
  ASSERT_EQ(::send(bad2, junk.data(), junk.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  EXPECT_EQ(::recv(bad2, buf, sizeof buf, 0), 0);
  ::close(bad2);

  // The rest of the server is unaffected.
  EXPECT_TRUE(good.ping());
  EXPECT_TRUE(good.put(1, 2).created);
  EXPECT_GE(f.srv->stats().protocol_errors.load(), 2u);
}

/// Regression: a protocol error detected inside execute_batch closes the
/// connection from *within* the io_uring recv-CQE handler, which then still
/// touches the Conn (re-arm / FIN checks). The Conn must therefore outlive
/// close_conn until the event loop's top-of-loop sweep — an immediate erase
/// is a use-after-free. Hammering many close cycles (with live traffic
/// interleaved so freed heap gets reused) makes the stale access corrupt
/// visibly even without ASan; run it on both planes.
void protocol_error_close_storm(const char* disable_uring) {
  test::ScopedEnv env("UPSL_DISABLE_IOURING", disable_uring);
  ServerFixture f(2);
  Client good = f.connect();
  ASSERT_TRUE(good.ping());

  std::vector<std::uint8_t> junk;
  put_u32(junk, 0xfffffff0u);  // oversized frame length -> protocol error
  junk.resize(junk.size() + 64, 0xab);
  for (int i = 0; i < 64; ++i) {
    const int bad = raw_connect(f.srv->port());
    ASSERT_GE(bad, 0);
    ASSERT_EQ(::send(bad, junk.data(), junk.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(junk.size()));
    char buf[16];
    EXPECT_EQ(::recv(bad, buf, sizeof buf, 0), 0) << "iteration " << i;
    ::close(bad);
    // Interleaved real work churns the allocator and proves the worker that
    // just ran the close path still serves correctly.
    EXPECT_TRUE(good.ping()) << "iteration " << i;
    const std::uint64_t k = 1000 + static_cast<std::uint64_t>(i);
    EXPECT_TRUE(good.put(k, k * 3).created) << "iteration " << i;
  }
  EXPECT_GE(f.srv->stats().protocol_errors.load(), 64u);
  EXPECT_EQ(good.scan(1000, 1063).size(), 64u);
}

TEST(ServerLoopback, ProtocolErrorCloseStormOnProbedPlane) {
  protocol_error_close_storm("0");
}

TEST(ServerLoopback, ProtocolErrorCloseStormOnEpoll) {
  protocol_error_close_storm("1");
}

TEST(ServerLoopback, GracefulDrainThenRestartRecoversAllAckedWrites) {
  constexpr std::uint64_t kN = 500;
  ServerFixture f(2);
  {
    Client c = f.connect();
    std::vector<Response> resp;
    for (std::uint64_t k = 1; k <= kN; ++k) c.queue({Opcode::kPut, k, k * 7});
    c.flush(&resp);
    ASSERT_EQ(resp.size(), kN);  // every write acknowledged
  }

  // SIGTERM-driven drain, exactly as the binary would take it.
  Server::install_signal_handlers();
  std::raise(SIGTERM);
  f.srv->wait();
  EXPECT_TRUE(Server::signal_stop_requested());
  Server::reset_signal_stop_for_testing();
  f.srv.reset();

  // Power-cut + process-level reopen: unflushed lines are dropped, the pool
  // file is re-mapped at a new base address, the store recovers via open().
  f.harness.crash_and_reopen();

  f.start_server(2);
  {
    Client c = f.connect();
    std::vector<Response> resp;
    for (std::uint64_t k = 1; k <= kN; ++k) c.queue({Opcode::kGet, k});
    c.flush(&resp);
    ASSERT_EQ(resp.size(), kN);
    for (std::uint64_t k = 1; k <= kN; ++k) {
      std::uint64_t v = 0;
      ASSERT_EQ(resp[k - 1].status, Status::kOk)
          << "acknowledged PUT of key " << k << " lost across restart";
      ASSERT_TRUE(resp[k - 1].value_u64(&v));
      EXPECT_EQ(v, k * 7) << "torn value for key " << k;
    }
  }
}

TEST(ServerLoopback, UnackedInFlightWriteIsAtomicAcrossCrash) {
  ServerFixture f(1);
  constexpr std::uint64_t kKey = 777;
  constexpr std::uint64_t kValue = 0xdeadbeefcafeULL;
  {
    Client c = f.connect();
    ASSERT_TRUE(c.put(1, 11).created);  // acked baseline write
  }

  // Fire a PUT and vanish without ever reading the acknowledgement.
  const int fd = raw_connect(f.srv->port());
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> frame;
  encode_request({Opcode::kPut, kKey, kValue}, frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  ::close(fd);
  // Give the worker a moment to (maybe) execute it.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  f.stop_server();
  f.harness.crash_and_reopen();

  // The acked write must be there; the unacked one is absent or whole.
  auto& store = f.harness.store();
  EXPECT_EQ(store.search(1), std::optional<std::uint64_t>(11));
  const auto v = store.search(kKey);
  if (v.has_value())
    EXPECT_EQ(*v, kValue) << "in-flight PUT applied but torn";
}

// ---- cross-connection group commit ----------------------------------------

TEST(ServerLoopback, GroupCommitStatsSurfaceInStatsVerb) {
  if (std::getenv("UPSL_DISABLE_GROUP_COMMIT") != nullptr)
    GTEST_SKIP() << "group commit disabled by env";
  ServerFixture f;
  ASSERT_TRUE(f.srv->group_commit_enabled());
  Client c = f.connect();
  std::vector<Response> resp;
  for (std::uint64_t k = 1; k <= 64; ++k) c.queue({Opcode::kPut, k, k});
  c.flush(&resp);
  ASSERT_EQ(resp.size(), 64u);
  EXPECT_GE(f.srv->stats().group_commit_batches.load(), 1u)
      << "acked mutation batches must have gone through the committer";
  const std::string stats = c.stats_json();
  EXPECT_NE(stats.find("\"group_commit\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"enabled\": true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("group_commit_batches"), std::string::npos) << stats;
  EXPECT_NE(stats.find("group_commit_batch_hist"), std::string::npos)
      << stats;
}

TEST(ServerLoopback, GroupCommitKillSwitchFallsBackToBatchFences) {
  test::ScopedEnv off("UPSL_DISABLE_GROUP_COMMIT", "1");
  ServerFixture f;
  EXPECT_FALSE(f.srv->group_commit_enabled());
  Client c = f.connect();
  std::vector<Response> resp;
  for (std::uint64_t k = 1; k <= 32; ++k) c.queue({Opcode::kPut, k, k});
  c.flush(&resp);
  ASSERT_EQ(resp.size(), 32u);
  EXPECT_GE(f.srv->stats().batch_fences.load(), 1u);
  EXPECT_EQ(f.srv->stats().group_commit_batches.load(), 0u);
  const std::string stats = c.stats_json();
  EXPECT_NE(stats.find("\"enabled\": false"), std::string::npos) << stats;
}

TEST(ServerLoopback, CommitWindowEnvOverride) {
  test::ScopedEnv win("UPSL_COMMIT_WINDOW_US", "123");
  ServerFixture f;
  EXPECT_EQ(f.srv->commit_window_us(), 123u);
  Client c = f.connect();
  EXPECT_TRUE(c.put(1, 1).created);
  EXPECT_EQ(c.get(1), std::optional<std::uint64_t>(1));
}

TEST(ServerLoopback, ReadsParkedBehindPendingAcksKeepFifoOrder) {
  // With group commit on, a batch's responses park until the covering fence
  // retires; later read-only batches on the same connection must queue
  // behind the parked bytes (FIFO), and every read must see the write it
  // followed.
  if (std::getenv("UPSL_DISABLE_GROUP_COMMIT") != nullptr)
    GTEST_SKIP() << "group commit disabled by env";
  ServerFixture f(1);
  ASSERT_TRUE(f.srv->group_commit_enabled());
  Client c = f.connect();
  std::vector<Response> resp;
  for (std::uint64_t round = 0; round < 20; ++round) {
    for (std::uint64_t k = 1; k <= 10; ++k) {
      c.queue({Opcode::kPut, k, k + round * 100});
      c.queue({Opcode::kGet, k});
    }
    c.flush(&resp);
    ASSERT_EQ(resp.size(), 20u);
    for (std::uint64_t k = 1; k <= 10; ++k) {
      std::uint64_t v = 0;
      ASSERT_EQ(resp[k * 2 - 1].status, Status::kOk);
      ASSERT_TRUE(resp[k * 2 - 1].value_u64(&v));
      EXPECT_EQ(v, k + round * 100) << "round " << round << " key " << k;
    }
  }
}

TEST(ServerLoopback, GroupCommitDrainReleasesEveryParkedAck) {
  // A drain racing parked acks must not lose responses: the worker waits on
  // the committer barrier and flushes everything before exiting.
  ServerFixture f(2);
  Client a = f.connect();
  Client b = f.connect();
  std::vector<Response> ra, rb;
  for (std::uint64_t k = 1; k <= 100; ++k) {
    a.queue({Opcode::kPut, k, k});
    b.queue({Opcode::kPut, 1000 + k, k});
  }
  a.flush(&ra);
  b.flush(&rb);
  ASSERT_EQ(ra.size(), 100u);
  ASSERT_EQ(rb.size(), 100u);
  f.stop_server();
  f.harness.crash_and_reopen();
  for (std::uint64_t k = 1; k <= 100; ++k) {
    EXPECT_EQ(f.harness.store().search(k), std::optional<std::uint64_t>(k));
    EXPECT_EQ(f.harness.store().search(1000 + k),
              std::optional<std::uint64_t>(k));
  }
}

// ---- sharded server -------------------------------------------------------

/// ServerFixture's sharded sibling: a ShardSet over per-shard pools with the
/// server fronting all of them. Worker ids: first_thread_id 8, shards x
/// workers consecutive slots — clear of the ids test bodies bind and below
/// the stores' max_threads.
struct ShardedServerFixture {
  explicit ShardedServerFixture(unsigned shards = 4, unsigned workers = 1)
      : harness(shards, test::small_options(16, 12, 16)) {
    start_server(workers);
  }

  ~ShardedServerFixture() {
    stop_server();
    Server::reset_signal_stop_for_testing();
  }

  void start_server(unsigned workers = 1) {
    ServerOptions o;
    o.workers = workers;
    o.first_thread_id = 8;
    srv = std::make_unique<Server>(harness.set(), o);
    ASSERT_TRUE(srv->start());
  }

  void stop_server() {
    if (srv != nullptr) {
      srv->stop();
      srv->wait();
      srv.reset();
    }
  }

  test::ShardHarness harness;
  std::unique_ptr<Server> srv;
};

TEST(ShardedServer, TopologyVerbAnnouncesTheShardMap) {
  ShardedServerFixture f(4);
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  const Response::Topology topo = c.topology();
  EXPECT_EQ(topo.shard_count, 4u);
  EXPECT_EQ(topo.hash_kind, kShardHashKindFixed);
  ASSERT_EQ(topo.ports.size(), 4u);
  // Every announced port is this server's and actually serves.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(topo.ports[s], f.srv->port(s));
    Client per;
    ASSERT_TRUE(per.connect("127.0.0.1", topo.ports[s]));
    EXPECT_TRUE(per.ping());
  }
}

TEST(ShardedServer, UnshardedTopologyIsSingleEntry) {
  ServerFixture f;  // plain 1-store server
  Client c = f.connect();
  const Response::Topology topo = c.topology();
  EXPECT_EQ(topo.shard_count, 1u);
  EXPECT_EQ(topo.hash_kind, kShardHashKindFixed);
  ASSERT_EQ(topo.ports.size(), 1u);
  EXPECT_EQ(topo.ports[0], f.srv->port());
}

TEST(ShardedServer, EveryKeyReachesTheMappedShard) {
  ShardedServerFixture f(4);
  ShardedClient c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  ASSERT_EQ(c.shard_count(), 4u);

  constexpr std::uint64_t kN = 400;
  for (std::uint64_t k = 1; k <= kN; ++k)
    EXPECT_TRUE(c.put(k, k * 5).created);

  // A routed client never pays a cross-shard hop...
  EXPECT_EQ(f.srv->stats().cross_shard_ops.load(), 0u);
  // ...because each key landed in exactly the store the map names.
  for (std::uint64_t k = 1; k <= kN; ++k) {
    const std::uint32_t owner = c.shard_of(k);
    for (std::uint32_t s = 0; s < 4; ++s) {
      const auto v = f.harness.set().shard(s).search(k);
      if (s == owner)
        EXPECT_EQ(v, std::optional<std::uint64_t>(k * 5));
      else
        EXPECT_EQ(v, std::nullopt);
    }
  }
  for (std::uint64_t k = 1; k <= kN; ++k)
    EXPECT_EQ(c.get(k), std::optional<std::uint64_t>(k * 5));
}

TEST(ShardedServer, TopologyUnawareClientIsRoutedInProcess) {
  ShardedServerFixture f(4);
  // A pre-sharding client pointed at the base port: everything still works,
  // the server forwards by key and counts the hops.
  Client c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  for (std::uint64_t k = 1; k <= 200; ++k)
    EXPECT_TRUE(c.put(k, k + 9).created);
  for (std::uint64_t k = 1; k <= 200; ++k)
    EXPECT_EQ(c.get(k), std::optional<std::uint64_t>(k + 9));
  // ~3/4 of uniformly hashed keys belong to the other three shards.
  EXPECT_GT(f.srv->stats().cross_shard_ops.load(), 0u);
  const std::string stats = c.stats_json();
  EXPECT_NE(stats.find("\"cross_shard_ops\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"shard_count\": 4"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"shards\": ["), std::string::npos) << stats;
}

TEST(ShardedServer, ShardedPipelineKeepsSubmissionOrder) {
  ShardedServerFixture f(4);
  ShardedClient c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  constexpr std::uint64_t kN = 300;
  std::vector<Response> resp;
  // Interleave PUT and GET of the same key: both route to the same shard
  // connection, so per-shard FIFO guarantees the read sees the write, and
  // flush() must reassemble the global submission order across shards.
  for (std::uint64_t k = 1; k <= kN; ++k) {
    c.queue({Opcode::kPut, k, k * 2});
    c.queue({Opcode::kGet, k});
  }
  c.flush(&resp);
  ASSERT_EQ(resp.size(), 2 * kN);
  for (std::uint64_t k = 1; k <= kN; ++k) {
    EXPECT_EQ(resp[2 * (k - 1)].status, Status::kCreated) << "key " << k;
    std::uint64_t v = 0;
    ASSERT_EQ(resp[2 * (k - 1) + 1].status, Status::kOk) << "key " << k;
    ASSERT_TRUE(resp[2 * (k - 1) + 1].value_u64(&v));
    EXPECT_EQ(v, k * 2) << "response misordered for key " << k;
  }
}

TEST(ShardedServer, ScanMergesAcrossShardsInKeyOrder) {
  ShardedServerFixture f(4);
  ShardedClient c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  for (std::uint64_t k = 1; k <= 300; ++k) c.put(k, k * 11);
  // Tombstone a stripe so the merge must skip holes on every shard.
  for (std::uint64_t k = 5; k <= 300; k += 5) c.remove(k);

  const auto all = c.scan(1, 300);
  ASSERT_EQ(all.size(), 240u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_NE(all[i].first % 5, 0u);
    EXPECT_EQ(all[i].second, all[i].first * 11);
    if (i > 0) {
      EXPECT_LT(all[i - 1].first, all[i].first);
    }
  }

  // Any shard's socket answers for the whole key space, with the limit
  // applied to the merged stream.
  for (std::uint32_t s = 0; s < 4; ++s) {
    Client per;
    ASSERT_TRUE(per.connect("127.0.0.1", f.srv->port(s)));
    const auto limited = per.scan(1, 300, 10);
    ASSERT_EQ(limited.size(), 10u);
    EXPECT_EQ(limited.front().first, 1u);
    EXPECT_EQ(limited.back().first, 12u);  // 5 and 10 tombstoned
  }
}

TEST(ShardedServer, ValidateAggregatesAcrossShards) {
  ShardedServerFixture f(4);
  ShardedClient c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  for (std::uint64_t k = 1; k <= 200; ++k) c.put(k, k);
  bool ok = false;
  const std::string report = c.validate_json(&ok);
  EXPECT_TRUE(ok) << report;
  EXPECT_NE(report.find("\"valid\": true"), std::string::npos) << report;
  EXPECT_NE(report.find("\"shards\": 4"), std::string::npos) << report;
}

TEST(ShardedServer, DrainThenRestartRecoversAllAckedWritesPerShard) {
  constexpr std::uint64_t kN = 400;
  ShardedServerFixture f(4, 1);
  {
    ShardedClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
    std::vector<Response> resp;
    for (std::uint64_t k = 1; k <= kN; ++k) c.queue({Opcode::kPut, k, k * 13});
    c.flush(&resp);
    ASSERT_EQ(resp.size(), kN);  // every write acknowledged
  }

  f.stop_server();
  // Power-cut + reopen of the whole shard set: unflushed lines dropped,
  // pools re-mapped, parallel recovery re-validates the durable topology.
  f.harness.crash_and_reopen();

  f.start_server(1);
  {
    ShardedClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
    std::vector<Response> resp;
    for (std::uint64_t k = 1; k <= kN; ++k) c.queue({Opcode::kGet, k});
    c.flush(&resp);
    ASSERT_EQ(resp.size(), kN);
    for (std::uint64_t k = 1; k <= kN; ++k) {
      std::uint64_t v = 0;
      ASSERT_EQ(resp[k - 1].status, Status::kOk)
          << "acknowledged PUT of key " << k << " lost across restart";
      ASSERT_TRUE(resp[k - 1].value_u64(&v));
      EXPECT_EQ(v, k * 13) << "torn value for key " << k;
    }
  }
}

// ---- detectable sessions --------------------------------------------------

TEST(ServerProtocol, DetectRequestRoundTrip) {
  const Request cases[] = {
      {Opcode::kHello, 0, 0, 0, /*seq=*/0, /*client_id=*/42},
      {Opcode::kResolve, /*key=*/9, 0, 0, /*seq=*/3, /*client_id=*/42},
      {Opcode::kDPut, 7, 700, 0, /*seq=*/5},
      {Opcode::kDUpdate, 8, 800, 0, /*seq=*/6},
      {Opcode::kDRemove, 9, 0, 0, /*seq=*/7},
  };
  for (const Request& in : cases) {
    std::vector<std::uint8_t> buf;
    encode_request(in, buf);
    Request out;
    std::size_t consumed = 0;
    ASSERT_EQ(parse_request(buf.data(), buf.size(), &out, &consumed),
              ParseResult::kOk);
    EXPECT_EQ(consumed, buf.size());
    EXPECT_EQ(static_cast<int>(out.op), static_cast<int>(in.op));
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.value, in.value);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.client_id, in.client_id);
  }
}

TEST(ServerProtocol, ResolveResponseRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_response_resolve(2, 1, 123, buf);
  Response r;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_response(buf.data(), buf.size(), &r, &consumed),
            ParseResult::kOk);
  EXPECT_EQ(r.status, Status::kOk);
  Response::Resolve res;
  ASSERT_TRUE(r.resolve(&res));
  EXPECT_EQ(res.state, 2u);
  EXPECT_EQ(res.has_previous, 1u);
  EXPECT_EQ(res.result, 123u);
}

/// Reads one complete response frame off a raw socket.
Response recv_response(int fd) {
  std::vector<std::uint8_t> buf;
  std::uint8_t tmp[256];
  Response r;
  std::size_t consumed = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
    if (n <= 0) {
      ADD_FAILURE() << "connection closed while waiting for a response";
      return r;
    }
    buf.insert(buf.end(), tmp, tmp + n);
    const ParseResult pr = parse_response(buf.data(), buf.size(), &r, &consumed);
    if (pr == ParseResult::kOk) return r;
    if (pr == ParseResult::kBad) {
      ADD_FAILURE() << "malformed response frame";
      return r;
    }
  }
}

TEST(ServerLoopback, HelloDputDedupAndResolve) {
  test::ScopedDetect on(true);
  ServerFixture f;
  Client c = f.connect();
  EXPECT_GT(c.hello(42), 0u);
  EXPECT_EQ(c.session_client_id(), 42u);

  auto p1 = c.dput(5, 50);  // seq 1
  EXPECT_TRUE(p1.created);
  auto p2 = c.dput(5, 51);  // seq 2
  EXPECT_FALSE(p2.created);
  EXPECT_EQ(p2.old_value, 50u);
  EXPECT_EQ(c.last_issued_seq(), 2u);
  EXPECT_EQ(c.dremove(777), std::nullopt);  // seq 3: not-found is durable too

  // RESOLVE replays the durable answers.
  EXPECT_EQ(c.resolve(42, 1).state, 2u);  // applied, no previous
  EXPECT_EQ(c.resolve(42, 1).has_previous, 0u);
  const Response::Resolve r2 = c.resolve(42, 2);
  EXPECT_EQ(r2.state, 2u);
  EXPECT_EQ(r2.has_previous, 1u);
  EXPECT_EQ(r2.result, 50u);
  EXPECT_EQ(c.resolve(9999, 1).state, 0u);  // unknown session
  EXPECT_EQ(c.resolve(42, 50).state, 1u);   // never issued: not applied

  // A second connection with the same identity replays the same seqs: every
  // answer must be byte-identical to the original and nothing re-applies.
  Client d;
  ASSERT_TRUE(d.connect("127.0.0.1", f.srv->port()));
  EXPECT_GT(d.hello(42), 0u);
  auto q1 = d.dput(5, 999);  // seq 1 replay
  EXPECT_TRUE(q1.created);
  auto q2 = d.dput(5, 888);  // seq 2 replay
  EXPECT_FALSE(q2.created);
  EXPECT_EQ(q2.old_value, 50u);
  EXPECT_EQ(d.get(5), std::optional<std::uint64_t>(51));
  EXPECT_EQ(d.dremove(777), std::nullopt);  // seq 3 replay
  EXPECT_GE(f.srv->stats().detect_dups.load(), 3u);
  EXPECT_GE(f.srv->stats().hellos.load(), 2u);
  const std::string stats = c.stats_json();
  EXPECT_NE(stats.find("\"detect\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"dedup_hits\""), std::string::npos) << stats;
}

TEST(ServerLoopback, DetectFrameAbuseIsRejectedNotFatal) {
  test::ScopedDetect on(true);
  ServerFixture f;

  // Detectable mutation without a HELLO: error response, connection lives.
  const int fd = raw_connect(f.srv->port());
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> frame;
  encode_request({Opcode::kDPut, 1, 10, 0, /*seq=*/1}, frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  EXPECT_EQ(recv_response(fd).status, Status::kError);
  // HELLO with the reserved client_id 0: same contract.
  frame.clear();
  encode_request({Opcode::kHello, 0, 0, 0, 0, /*client_id=*/0}, frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  EXPECT_EQ(recv_response(fd).status, Status::kError);
  ::close(fd);

  // Malformed RESOLVE (payload too short for client_id+seq+key): protocol
  // error, the server closes the connection and keeps serving.
  const int bad = raw_connect(f.srv->port());
  ASSERT_GE(bad, 0);
  std::vector<std::uint8_t> junk;
  put_u32(junk, kBodyPrefixBytes + 8);
  junk.push_back(static_cast<std::uint8_t>(Opcode::kResolve));
  junk.insert(junk.end(), 3, 0);
  put_u64(junk, 42);
  ASSERT_EQ(::send(bad, junk.data(), junk.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  char buf[16];
  EXPECT_EQ(::recv(bad, buf, sizeof buf, 0), 0)
      << "server must close a connection after a malformed RESOLVE";
  ::close(bad);

  EXPECT_GE(f.srv->stats().protocol_errors.load(), 1u);
  Client good;
  ASSERT_TRUE(good.connect("127.0.0.1", f.srv->port()));
  EXPECT_TRUE(good.ping());
}

TEST(ServerLoopback, DetectSeqZeroIsRejectedNotExecuted) {
  test::ScopedDetect on(true);
  ServerFixture f;

  // seq 0 is the result ring's empty sentinel: a D* frame carrying it must
  // be rejected outright — executing it would ack a fabricated "duplicate"
  // answer (state applied, result 0) and silently drop the mutation.
  const int fd = raw_connect(f.srv->port());
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> frame;
  encode_request({Opcode::kHello, 0, 0, 0, 0, /*client_id=*/42}, frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  EXPECT_EQ(recv_response(fd).status, Status::kOk);
  frame.clear();
  encode_request({Opcode::kDPut, 1, 10, 0, /*seq=*/0, 42}, frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  EXPECT_EQ(recv_response(fd).status, Status::kError);
  frame.clear();
  encode_request({Opcode::kDRemove, 1, 0, 0, /*seq=*/0, 42}, frame);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  EXPECT_EQ(recv_response(fd).status, Status::kError);
  ::close(fd);

  Client c = f.connect();
  EXPECT_EQ(c.get(1), std::nullopt) << "rejected seq-0 DPUT must not apply";
  // And the table classifies seq 0 as not-applied, never applied-result-0.
  EXPECT_EQ(c.resolve(42, 0).state, 1u);
}

TEST(ServerLoopback, SessionEvictionInvalidatesCachedSlot) {
  test::ScopedDetect on(true);
  auto opts = test::small_options(16, 12, 16);
  opts.session_slots = 2;  // force churn with three live clients
  ServerFixture f(1, opts);

  Client a = f.connect();
  EXPECT_GT(a.hello(1), 0u);
  EXPECT_TRUE(a.dput(1, 10).created);  // a: seq 1, slot cached server-side

  // Two more identities exhaust the 2-slot table; a's session (oldest
  // claim epoch) is evicted and its slot handed to c.
  Client b = f.connect();
  EXPECT_GT(b.hello(2), 0u);
  Client c = f.connect();
  EXPECT_GT(c.hello(3), 0u);

  // a's connection is still open and still holds the stale slot index. Its
  // next detectable op must NOT touch c's slot: the server has to notice
  // the eviction and re-open a's session in a fresh slot.
  EXPECT_TRUE(a.dput(2, 20).created);  // a: seq 2
  EXPECT_EQ(a.get(2), std::optional<std::uint64_t>(20));

  // c's dedup state stays pristine: none of a's seqs may appear applied
  // under c's identity, and c's own ops still stamp from seq 1.
  EXPECT_EQ(c.resolve(3, 1).state, 1u) << "a's op leaked into c's slot";
  EXPECT_EQ(c.resolve(3, 2).state, 1u) << "a's op leaked into c's slot";
  EXPECT_TRUE(c.dput(100, 1000).created);  // c: seq 1
  EXPECT_EQ(c.resolve(3, 1).state, 2u);

  // a's re-opened session recorded its post-eviction op durably.
  EXPECT_EQ(a.resolve(1, 2).state, 2u);
  EXPECT_EQ(a.resolve(1, 2).has_previous, 0u);
}

TEST(ServerLoopback, MovedClientKeepsSessionStateAndSocket) {
  test::ScopedDetect on(true);
  ServerFixture f;
  Client c = f.connect();
  EXPECT_GT(c.hello(42), 0u);
  EXPECT_TRUE(c.dput(1, 10).created);  // seq 1

  // Move the client: identity, seq counter, and socket all transfer. A
  // move that dropped the counter would restamp seq 1 and the server
  // would dedup the "new" mutation into the old answer.
  Client d = std::move(c);
  EXPECT_FALSE(c.connected());
  EXPECT_EQ(c.session_client_id(), 0u);
  EXPECT_TRUE(d.connected());
  EXPECT_EQ(d.session_client_id(), 42u);
  EXPECT_EQ(d.last_issued_seq(), 1u);

  EXPECT_TRUE(d.dput(2, 20).created);  // seq 2 — fresh, not a replay
  EXPECT_EQ(d.get(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(d.resolve(42, 2).state, 2u);
}

TEST(ServerLoopback, DetectKillSwitchKeepsServing) {
  test::ScopedDetect off(false);
  ServerFixture f;
  Client c = f.connect();
  // HELLO still succeeds (epoch 0 = degraded) so a detect-aware client can
  // talk to a kill-switched server; mutations run as plain ops.
  EXPECT_EQ(c.hello(42), 0u);
  EXPECT_TRUE(c.dput(5, 50).created);   // seq 1
  auto again = c.dput(5, 51);           // seq 2 — but also no dedup state
  EXPECT_FALSE(again.created);
  EXPECT_EQ(again.old_value, 50u);
  EXPECT_EQ(c.resolve(42, 1).state, 0u);  // no sessions: unknown
  const std::string stats = c.stats_json();
  EXPECT_NE(stats.find("\"detect\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"enabled\": false"), std::string::npos) << stats;
}

TEST(ServerLoopback, DetectSessionsSurviveRestartAndDedupReplays) {
  test::ScopedDetect on(true);
  ServerFixture f(1);
  {
    Client c = f.connect();
    EXPECT_GT(c.hello(42), 0u);
    EXPECT_TRUE(c.dput(5, 50).created);   // seq 1
    EXPECT_FALSE(c.dput(5, 51).created);  // seq 2
  }
  f.stop_server();
  f.harness.crash_and_reopen();
  f.start_server(1);

  // A fresh client process with the same identity re-sends from seq 1 (the
  // classic at-least-once retry storm): the recovered session table turns
  // it into exactly-once.
  Client c = f.connect();
  EXPECT_GT(c.hello(42), 0u);
  auto q1 = c.dput(5, 999);  // seq 1 replay
  EXPECT_TRUE(q1.created);   // original durable answer
  auto q2 = c.dput(5, 888);  // seq 2 replay
  EXPECT_FALSE(q2.created);
  EXPECT_EQ(q2.old_value, 50u);
  EXPECT_EQ(c.get(5), std::optional<std::uint64_t>(51));
  const Response::Resolve r = c.resolve(42, 2);
  EXPECT_EQ(r.state, 2u);
  EXPECT_EQ(r.result, 50u);
}

TEST(ServerLoopback, DroppedPipelineReportsExactSplitAndResolves) {
  test::ScopedDetect on(true);
  ServerFixture f(1);
  Client c = f.connect();
  EXPECT_GT(c.hello(42), 0u);
  EXPECT_TRUE(c.dput(1, 10).created);  // seq 1, acked baseline

  // Queue a detectable pipeline, then take the server down before flushing:
  // the flush must fail with the exact acked/unresolved split, and the
  // un-answered ops must be recoverable through reconnect-and-resolve.
  c.queue_dput(2, 20);   // seq 2
  c.queue_dremove(1);    // seq 3
  c.queue_dput(3, 30);   // seq 4
  f.stop_server();
  std::vector<Response> resp;
  bool threw = false;
  try {
    c.flush(&resp);
  } catch (const PipelineError& e) {
    threw = true;
    EXPECT_EQ(e.acked, 0u);
    EXPECT_EQ(e.unresolved, 3u);
    EXPECT_EQ(c.unresolved_ops().size(), 3u);
  }
  ASSERT_TRUE(threw) << "flush into a dead server must raise PipelineError";

  // Restart over the same store; same identity keeps the seq counter and
  // the unresolved tail.
  f.harness.crash_and_reopen();
  f.start_server(1);
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  EXPECT_GT(c.hello(42), 0u);
  EXPECT_EQ(c.last_issued_seq(), 4u);

  auto resolved = c.resolve_unresolved();
  ASSERT_EQ(resolved.size(), 3u);
  for (const Client::ResolvedOp& ro : resolved) {
    ASSERT_TRUE(ro.resolvable);
    // The pipeline never left the client: the durable answer is not-applied
    // for each, and each replays under its original seq.
    EXPECT_EQ(ro.answer.state, 1u) << "seq " << ro.op.seq;
    c.requeue(ro.op);
  }
  c.flush(&resp);
  ASSERT_EQ(resp.size(), 3u);
  EXPECT_EQ(c.get(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(c.get(1), std::nullopt);  // the requeued dremove applied
  EXPECT_EQ(c.get(3), std::optional<std::uint64_t>(30));
  EXPECT_EQ(c.unresolved_ops().size(), 0u);
}

TEST(ShardedServer, DetectableSessionsRouteAndResolveAcrossShards) {
  test::ScopedDetect on(true);
  ShardedServerFixture f(4);
  ShardedClient c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  EXPECT_GT(c.hello(42), 0u);

  constexpr std::uint64_t kN = 100;
  for (std::uint64_t k = 1; k <= kN; ++k)
    EXPECT_TRUE(c.dput(k, k * 3).created);
  for (std::uint64_t k = 1; k <= kN; ++k)
    EXPECT_EQ(c.get(k), std::optional<std::uint64_t>(k * 3));

  // RESOLVE routes by key: the last op of every shard's stream is still in
  // that shard's result ring (earlier seqs have aged out of the 8-deep
  // ring, which is why the replay below uses a short stream).
  std::vector<std::uint64_t> seq_of_shard(4, 0);
  std::vector<std::uint64_t> last_key(4, 0);
  for (std::uint64_t k = 1; k <= kN; ++k) {
    const std::uint32_t s = c.shard_of(k);
    seq_of_shard[s] += 1;
    last_key[s] = k;
  }
  for (std::uint32_t s = 0; s < 4; ++s) {
    if (last_key[s] == 0) continue;
    const Response::Resolve r = c.resolve(42, seq_of_shard[s], last_key[s]);
    EXPECT_EQ(r.state, 2u) << "shard " << s;
  }

  // Replay storm on a second identity, kept within the result-ring window
  // (two keys per shard): a fresh connection re-sending the same key order
  // restamps identical per-shard seq streams, so every dput must dedup and
  // replay its original answer.
  std::vector<std::uint64_t> keys;
  std::vector<unsigned> per_shard(4, 0);
  for (std::uint64_t k = 1000; keys.size() < 8; ++k) {
    const std::uint32_t s = c.shard_of(k);
    if (per_shard[s] >= 2) continue;
    per_shard[s] += 1;
    keys.push_back(k);
  }
  ShardedClient e;
  ASSERT_TRUE(e.connect("127.0.0.1", f.srv->port()));
  EXPECT_GT(e.hello(43), 0u);
  for (const std::uint64_t k : keys) EXPECT_TRUE(e.dput(k, k * 7).created);
  ShardedClient g;
  ASSERT_TRUE(g.connect("127.0.0.1", f.srv->port()));
  EXPECT_GT(g.hello(43), 0u);
  for (const std::uint64_t k : keys)
    EXPECT_TRUE(g.dput(k, k * 7 + 1).created);  // original answers replayed
  for (const std::uint64_t k : keys)
    EXPECT_EQ(g.get(k), std::optional<std::uint64_t>(k * 7));
  EXPECT_GE(f.srv->stats().detect_dups.load(), keys.size());
}

TEST(ShardedServer, FailedShardedFlushStrandsNoShardAndResolves) {
  test::ScopedDetect on(true);
  ShardedServerFixture f(4, 1);
  ShardedClient c;
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  EXPECT_GT(c.hello(42), 0u);

  constexpr std::uint64_t kN = 8;
  std::vector<unsigned> per_shard(4, 0);
  for (std::uint64_t k = 1; k <= kN; ++k) {
    c.queue_dput(k, k * 10);
    per_shard[c.shard_of(k)] += 1;
  }
  unsigned shards_used = 0;
  for (const unsigned n : per_shard) shards_used += n > 0 ? 1 : 0;
  ASSERT_GE(shards_used, 2u) << "keys must span shards for this test";

  // Kill the whole fleet mid-pipeline: the flush must still visit EVERY
  // shard (a shard skipped after the first failure would strand its queued
  // ops — unsent, unacked, and invisible to the resolve path), report the
  // aggregate split, and leave the queue empty (a stale order book would
  // index out of bounds on the next flush).
  f.stop_server();
  std::vector<Response> resp;
  bool threw = false;
  try {
    c.flush(&resp);
  } catch (const PipelineError& e) {
    threw = true;
    EXPECT_EQ(e.acked + e.unresolved, kN);
    EXPECT_EQ(e.unresolved, kN);     // server was down: nothing acked
    EXPECT_EQ(resp.size(), e.acked);  // delivered == aggregate acked
  }
  ASSERT_TRUE(threw) << "flush into a dead fleet must raise PipelineError";
  EXPECT_EQ(c.queued(), 0u);

  // Reconnect-and-resolve must cover the union of every shard's tail.
  f.harness.crash_and_reopen();
  f.start_server(1);
  ASSERT_TRUE(c.connect("127.0.0.1", f.srv->port()));
  EXPECT_GT(c.hello(42), 0u);
  auto resolved = c.resolve_unresolved();
  ASSERT_EQ(resolved.size(), kN)
      << "every shard's unresolved tail must survive the failed flush";
  for (const Client::ResolvedOp& ro : resolved) {
    ASSERT_TRUE(ro.resolvable);
    EXPECT_EQ(ro.answer.state, 1u) << "key " << ro.op.key;
    c.requeue(ro.op);
  }
  c.flush(&resp);
  ASSERT_EQ(resp.size(), kN);
  for (std::uint64_t k = 1; k <= kN; ++k)
    EXPECT_EQ(c.get(k), std::optional<std::uint64_t>(k * 10));
}

}  // namespace
}  // namespace upsl::server
