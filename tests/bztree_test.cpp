// Tests for the PMwCAS library and the BzTree baseline: atomicity, helping,
// descriptor recovery, tree semantics against a reference model, SMOs, and
// descriptor-pool-proportional recovery (Table 5.4's mechanism).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>

#include "bztree/bztree.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"

namespace upsl {
namespace {

class PmwcasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ThreadRegistry::instance().bind(0);
    pool_ = pmem::Pool::create_anonymous(0, 16u << 20, {.crash_tracking = true});
    pmwcas::DescriptorPool::format(*pool_, 0, kDescs);
    descs_ = std::make_unique<pmwcas::DescriptorPool>(*pool_, 0, kDescs);
    words_ = reinterpret_cast<std::uint64_t*>(
        pool_->base() + sizeof(pmwcas::Descriptor) * kDescs + 4096);
    std::memset(words_, 0, 64 * sizeof(std::uint64_t));
    pool_->mark_all_persisted();
  }
  static constexpr std::uint32_t kDescs = 4096;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<pmwcas::DescriptorPool> descs_;
  std::uint64_t* words_;
};

TEST_F(PmwcasTest, SuccessSwapsAllWords) {
  words_[0] = 1;
  words_[1] = 2;
  words_[2] = 3;
  EXPECT_TRUE(descs_->mwcas(
      {{&words_[0], 1, 10}, {&words_[1], 2, 20}, {&words_[2], 3, 30}}));
  EXPECT_EQ(descs_->read(&words_[0]), 10u);
  EXPECT_EQ(descs_->read(&words_[1]), 20u);
  EXPECT_EQ(descs_->read(&words_[2]), 30u);
}

TEST_F(PmwcasTest, MismatchFailsAndRestoresEverything) {
  words_[0] = 1;
  words_[1] = 999;  // mismatch
  EXPECT_FALSE(descs_->mwcas({{&words_[0], 1, 10}, {&words_[1], 2, 20}}));
  EXPECT_EQ(descs_->read(&words_[0]), 1u) << "installed word rolled back";
  EXPECT_EQ(descs_->read(&words_[1]), 999u);
}

TEST_F(PmwcasTest, SingleWordDegeneratesToCas) {
  words_[5] = 7;
  EXPECT_TRUE(descs_->mwcas({{&words_[5], 7, 8}}));
  EXPECT_FALSE(descs_->mwcas({{&words_[5], 7, 9}}));
  EXPECT_EQ(descs_->read(&words_[5]), 8u);
}

TEST_F(PmwcasTest, ConcurrentDisjointAndOverlapping) {
  for (int i = 0; i < 8; ++i) words_[i] = 0;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> succeeded{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(t);
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 3);
      for (int i = 0; i < kOps; ++i) {
        // Each op increments two random counters atomically.
        const std::uint64_t a = rng.next_below(8);
        std::uint64_t b = rng.next_below(8);
        if (b == a) b = (b + 1) % 8;
        const std::uint64_t va = descs_->read(&words_[a]);
        const std::uint64_t vb = descs_->read(&words_[b]);
        if (descs_->mwcas({{&words_[a], va, va + 1}, {&words_[b], vb, vb + 1}}))
          succeeded.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  std::uint64_t total = 0;
  for (int i = 0; i < 8; ++i) total += descs_->read(&words_[i]);
  EXPECT_EQ(total, succeeded.load() * 2)
      << "every successful MwCAS incremented exactly two counters";
}

TEST_F(PmwcasTest, RecoveryRollsUndecidedBackAndSucceededForward) {
  // Hand-craft descriptor states as a crash would leave them.
  auto* d = reinterpret_cast<pmwcas::Descriptor*>(pool_->base());
  words_[0] = 5;
  // Descriptor 0: Undecided with its pointer installed in word 0.
  d[0].count = 1;
  d[0].words[0] = {static_cast<std::uint64_t>(
                       reinterpret_cast<char*>(&words_[0]) - pool_->base()),
                   5, 50};
  d[0].status = pmwcas::kUndecided;
  words_[0] = pmwcas::kDescBit | 0;
  // Descriptor 1: Succeeded with its pointer still installed in word 1.
  words_[1] = pmwcas::kDescBit | 1;
  d[1].count = 1;
  d[1].words[0] = {static_cast<std::uint64_t>(
                       reinterpret_cast<char*>(&words_[1]) - pool_->base()),
                   6, 60};
  d[1].status = pmwcas::kSucceeded;
  pool_->mark_all_persisted();
  pool_->simulate_crash();

  descs_->recover();
  EXPECT_EQ(words_[0], 5u) << "undecided rolled back";
  EXPECT_EQ(words_[1], 60u) << "succeeded rolled forward";
}

// ---- BzTree ---------------------------------------------------------------

class BzTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ThreadRegistry::instance().bind(0);
    pool_ = pmem::Pool::create_anonymous(0, 256u << 20, {.crash_tracking = true});
    bztree::BzTree::Config cfg;
    cfg.leaf_capacity = 16;
    cfg.internal_capacity = 8;
    cfg.descriptor_count = 8192;
    tree_ = bztree::BzTree::create(*pool_, cfg);
    pool_->mark_all_persisted();
  }
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<bztree::BzTree> tree_;
};

TEST_F(BzTreeTest, BasicOps) {
  EXPECT_FALSE(tree_->search(9).has_value());
  EXPECT_FALSE(tree_->insert(9, 90).has_value());
  EXPECT_EQ(*tree_->search(9), 90u);
  EXPECT_EQ(*tree_->insert(9, 91), 90u);
  EXPECT_EQ(*tree_->remove(9), 91u);
  EXPECT_FALSE(tree_->search(9).has_value());
}

TEST_F(BzTreeTest, FillForcesSplitsAndTreeGrowth) {
  for (std::uint64_t k = 1; k <= 2000; ++k)
    ASSERT_FALSE(tree_->insert(k, k * 2).has_value()) << k;
  EXPECT_GT(tree_->tree_height(), 1u);
  EXPECT_EQ(tree_->count_keys(), 2000u);
  for (std::uint64_t k = 1; k <= 2000; ++k)
    ASSERT_EQ(*tree_->search(k), k * 2) << k;
  tree_->check_invariants();
}

TEST_F(BzTreeTest, ReferenceModel) {
  std::map<std::uint64_t, std::uint64_t> model;
  Xoshiro256 rng(23);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = 1 + rng.next_below(600);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const std::uint64_t v = 1 + (rng.next() >> 2);
        auto old = tree_->insert(key, v);
        auto it = model.find(key);
        EXPECT_EQ(old.has_value(), it != model.end()) << key;
        if (old && it != model.end()) {
          EXPECT_EQ(*old, it->second);
        }
        model[key] = v;
        break;
      }
      case 2: {
        auto got = tree_->search(key);
        auto it = model.find(key);
        ASSERT_EQ(got.has_value(), it != model.end()) << key;
        if (got) {
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      default: {
        auto rem = tree_->remove(key);
        auto it = model.find(key);
        EXPECT_EQ(rem.has_value(), it != model.end());
        if (it != model.end()) model.erase(it);
        break;
      }
    }
  }
  EXPECT_EQ(tree_->count_keys(), model.size());
  tree_->check_invariants();
}

TEST_F(BzTreeTest, ConcurrentDisjointInserts) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(t);
      for (std::uint64_t i = 0; i < kPer; ++i) {
        const std::uint64_t key = 1 + i * kThreads + static_cast<std::uint64_t>(t);
        tree_->insert(key, key + 7);
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  EXPECT_EQ(tree_->count_keys(), kThreads * kPer);
  for (std::uint64_t k = 1; k <= kThreads * kPer; ++k)
    ASSERT_EQ(*tree_->search(k), k + 7) << k;
  tree_->check_invariants();
}

TEST_F(BzTreeTest, ReopenAfterCleanShutdownKeepsData) {
  for (std::uint64_t k = 1; k <= 500; ++k) tree_->insert(k, k);
  pool_->mark_all_persisted();
  tree_ = bztree::BzTree::open(*pool_);
  EXPECT_EQ(tree_->count_keys(), 500u);
  EXPECT_EQ(*tree_->search(123), 123u);
  tree_->insert(501, 501);
  EXPECT_EQ(*tree_->search(501), 501u);
}

TEST_F(BzTreeTest, CrashLosesNothingAcknowledged) {
  for (std::uint64_t k = 1; k <= 800; ++k)
    ASSERT_FALSE(tree_->insert(k, k * 3).has_value());
  pool_->simulate_crash();  // acknowledged inserts must be durable
  tree_ = bztree::BzTree::open(*pool_);
  for (std::uint64_t k = 1; k <= 800; ++k)
    ASSERT_EQ(*tree_->search(k), k * 3) << k;
  tree_->check_invariants();
  tree_->insert(9001, 1);
  EXPECT_EQ(*tree_->search(9001), 1u);
}

TEST_F(BzTreeTest, RecoveryScalesWithDescriptorPoolNotTree) {
  for (std::uint64_t k = 1; k <= 300; ++k) tree_->insert(k, k);
  pool_->mark_all_persisted();
  pmem::Stats::instance().reset();
  tree_ = bztree::BzTree::open(*pool_);
  // Recovery persisted on the order of the descriptor count (every status
  // word is re-persisted), far above UPSkipList's O(1) reconnect.
  EXPECT_GE(pmem::Stats::instance().persist_calls.load(), 8192u);
}

}  // namespace
}  // namespace upsl
