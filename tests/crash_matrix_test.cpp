// Crash matrix: a coarse exhaustive sweep over (workload shape x crash mode
// x crash step) for UPSkipList. Complements crash_test.cpp (which targets
// named crash points) with breadth: every Nth instrumented persist boundary
// under mixed workloads, in both power-failure models, with durability,
// consistency and leak checks after recovery — the in-process analogue of
// the thesis' overnight power-cycle campaign (§6.1.2).
#include <gtest/gtest.h>

#include <map>

#include "test_util.hpp"

namespace upsl::core {
namespace {

using test::StoreHarness;
using test::small_options;

struct MatrixParam {
  double update_ratio;   // vs insert-new-key
  double remove_ratio;
  pmem::CrashMode mode;
  std::uint64_t step_stride;
  const char* name;
};

class CrashMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CrashMatrix, RecoversFromEveryStride) {
  const MatrixParam p = GetParam();
  for (std::uint64_t step = 1; step <= 120; step += p.step_stride) {
    SCOPED_TRACE("step=" + std::to_string(step));
    StoreHarness h(small_options(/*keys_per_node=*/4, /*max_height=*/10));
    std::map<std::uint64_t, std::uint64_t> model;
    Xoshiro256 rng(step * 31 + 7);

    CrashPoints::instance().reset();
    CrashPoints::instance().arm(/*any point=*/0, step);
    bool fired = false;
    // The operation in flight at the crash may legally take effect (it was
    // invoked before the failure): exempt its key from post-crash asserts.
    std::uint64_t pending_key = 0;
    try {
      for (int i = 0; i < 3000; ++i) {
        const double dice = rng.next_double();
        if (dice < p.remove_ratio) {
          const std::uint64_t key = 1 + rng.next_below(300);
          pending_key = key;
          auto removed = h.store().remove(key);
          auto it = model.find(key);
          EXPECT_EQ(removed.has_value(), it != model.end());
          if (it != model.end()) model.erase(it);
        } else {
          // update_ratio of the writes hit hot existing keys; the rest
          // spread out and grow the structure (forcing splits).
          const std::uint64_t key =
              dice < p.remove_ratio + p.update_ratio
                  ? 1 + rng.next_below(40)
                  : 1 + rng.next_below(3000);
          const std::uint64_t value = 1 + (rng.next() >> 1);
          pending_key = key;
          h.store().insert(key, value);
          model[key] = value;
        }
      }
    } catch (const CrashException&) {
      fired = true;
    }
    CrashPoints::instance().disarm();
    if (!fired) break;  // workload finished before the armed step

    h.crash_and_reopen(p.mode, /*seed=*/step);

    // Durability of everything acknowledged (the pending operation's key
    // may hold either the old or the in-flight value).
    for (const auto& [k, v] : model) {
      auto got = h.store().search(k);
      if (k == pending_key) continue;
      ASSERT_TRUE(got.has_value()) << "acknowledged key " << k << " lost";
      ASSERT_EQ(*got, v) << "key " << k;
    }
    // Keys never inserted (or whose removal was acknowledged) stay absent.
    for (std::uint64_t k = 1; k <= 50; ++k) {
      if (k == pending_key) continue;
      if (model.count(k) == 0) {
        EXPECT_FALSE(h.store().search(k).has_value());
      }
    }
    // Consistency + usability + leak freedom.
    h.store().check_invariants();
    for (std::uint64_t k = 100001; k <= 100020; ++k) h.store().insert(k, k);
    h.store().check_no_leaks();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrashMatrix,
    ::testing::Values(
        MatrixParam{0.0, 0.0, pmem::CrashMode::kDiscardUnflushed, 7,
                    "insert_only_discard"},
        MatrixParam{0.5, 0.0, pmem::CrashMode::kDiscardUnflushed, 11,
                    "update_heavy_discard"},
        MatrixParam{0.3, 0.2, pmem::CrashMode::kDiscardUnflushed, 13,
                    "mixed_with_removes_discard"},
        MatrixParam{0.0, 0.0, pmem::CrashMode::kRandomEvict, 9,
                    "insert_only_evict"},
        MatrixParam{0.5, 0.0, pmem::CrashMode::kRandomEvict, 17,
                    "update_heavy_evict"},
        MatrixParam{0.3, 0.2, pmem::CrashMode::kRandomEvict, 19,
                    "mixed_with_removes_evict"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace upsl::core
