// Shared helpers for tests: small-footprint pool/store construction and a
// crash-and-reopen harness mirroring the thesis' test procedure (§6.1.2):
// run, kill at an injected point, drop unflushed lines, reconnect, recover.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/crashpoint.hpp"
#include "common/thread_registry.hpp"
#include "core/shard_set.hpp"
#include "core/upskiplist.hpp"
#include "pmem/pool.hpp"
#include "riv/riv.hpp"

namespace upsl::test {

/// RAII pin for kill-switch environment variables (UPSL_DISABLE_*): sets the
/// variable for the scope and restores the previous value (or unsets) on
/// exit, so mode-specific tests compose with the CI env matrix.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_, old_;
  bool had_ = false;
};

/// Pin the detect kill switch for a test scope regardless of the CI env
/// matrix (UPSL_DISABLE_DETECT): tests that assert detectable-session
/// behaviour force it on, the kill-switch test forces it off, and the
/// destructor restores env-driven behaviour either way.
class ScopedDetect {
 public:
  explicit ScopedDetect(bool on) { detect::set_detect_for_testing(on); }
  ~ScopedDetect() { detect::reset_detect_for_testing(); }
  ScopedDetect(const ScopedDetect&) = delete;
  ScopedDetect& operator=(const ScopedDetect&) = delete;
};

/// Pin the checksum kill switch for a test scope regardless of the CI env
/// matrix (UPSL_DISABLE_CHECKSUMS): corruption-detection tests force stamps
/// on, format-compatibility tests force them off per phase, and the
/// destructor restores env-driven behaviour either way.
class ScopedChecksums {
 public:
  explicit ScopedChecksums(bool on) { set_checksums_for_testing(on); }
  ~ScopedChecksums() { reset_checksums_for_testing(); }
  ScopedChecksums(const ScopedChecksums&) = delete;
  ScopedChecksums& operator=(const ScopedChecksums&) = delete;
};

inline core::Options small_options(std::uint32_t keys_per_node = 8,
                                   std::uint32_t max_height = 12,
                                   std::uint32_t max_threads = 8) {
  core::Options o;
  o.keys_per_node = keys_per_node;
  o.max_height = max_height;
  o.max_threads = max_threads;
  o.chunk.chunk_size = 64 << 10;
  o.chunk.max_chunks = 96;
  o.chunk.root_size = 1 << 20;
  return o;
}

inline std::size_t pool_size_for(const core::Options& o) {
  return (4u << 20) + o.chunk.root_size +
         o.chunk.max_chunks * o.chunk.chunk_size;
}

/// Owns pools + store and supports in-process "restarts" with crash
/// semantics. Each instance uses its own backing files so tests can run in
/// any order within one process.
class StoreHarness {
 public:
  explicit StoreHarness(core::Options opts = small_options(),
                        unsigned num_pools = 1, bool crash_tracking = true)
      : opts_(opts), tracking_(crash_tracking) {
    dir_ = std::filesystem::path("/tmp") /
           ("upsl_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
    for (unsigned i = 0; i < num_pools; ++i) {
      pools_.push_back(pmem::Pool::create(
          (dir_ / ("pool" + std::to_string(i))).string(),
          static_cast<std::uint16_t>(i), pool_size_for(opts_),
          {.crash_tracking = tracking_}));
    }
    ThreadRegistry::instance().bind(0);
    store_ = core::UPSkipList::create(raw_pools(), opts_);
    mark_persisted();
  }

  ~StoreHarness() {
    store_.reset();
    pools_.clear();
    riv::Runtime::instance().reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    CrashPoints::instance().reset();
  }

  core::UPSkipList& store() { return *store_; }
  std::vector<pmem::Pool*> raw_pools() {
    std::vector<pmem::Pool*> v;
    for (auto& p : pools_) v.push_back(p.get());
    return v;
  }

  /// Declare everything done so far durable (like a quiesced pre-crash
  /// preload phase).
  void mark_persisted() {
    for (auto& p : pools_) p->mark_all_persisted();
  }

  /// Power failure + restart: unflushed lines are lost, DRAM-side state is
  /// rebuilt, pools are re-mapped at new addresses, epoch is bumped.
  void crash_and_reopen(pmem::CrashMode mode = pmem::CrashMode::kDiscardUnflushed,
                        std::uint64_t seed = 1) {
    store_.reset();
    for (auto& p : pools_) p->simulate_crash(mode, seed);
    for (auto& p : pools_) p->remap();
    riv::Runtime::instance().reset();
    store_ = core::UPSkipList::open(raw_pools());
  }

  /// Clean restart (everything flushed first).
  void clean_reopen() {
    mark_persisted();
    store_.reset();
    for (auto& p : pools_) p->remap();
    riv::Runtime::instance().reset();
    store_ = core::UPSkipList::open(raw_pools());
  }

  /// Power failure + medium damage + restart: after the crash image settles,
  /// `strike(pools)` mutates durable bytes directly (bit flips, torn words,
  /// zeroed lines — common/corruption.hpp), the damage is folded into the
  /// shadow so it reads as genuinely durable, and the store reopens over it.
  /// Propagates whatever open() throws (e.g. upsl::CorruptionError); the
  /// harness then holds no store until the next successful reopen.
  template <typename Strike>
  void crash_corrupt_reopen(Strike&& strike,
                            pmem::CrashMode mode =
                                pmem::CrashMode::kDiscardUnflushed,
                            std::uint64_t seed = 1) {
    store_.reset();
    for (auto& p : pools_) p->simulate_crash(mode, seed);
    strike(raw_pools());
    mark_persisted();  // corruption is durable, not an unflushed line
    for (auto& p : pools_) p->remap();
    riv::Runtime::instance().reset();
    store_ = core::UPSkipList::open(raw_pools());
  }

  /// Whether a store is currently attached (false after a throwing reopen).
  bool has_store() const { return store_ != nullptr; }

 private:
  static inline std::atomic<int> counter_{0};
  core::Options opts_;
  bool tracking_;
  std::filesystem::path dir_;
  std::vector<std::unique_ptr<pmem::Pool>> pools_;
  std::unique_ptr<core::UPSkipList> store_;
};

/// StoreHarness's sharded sibling: one pool per shard, a ShardSet over them,
/// and the same in-process crash/restart semantics. Shard i's pool gets
/// pool id i so the set exercises real multi-pool RIV dispatch.
class ShardHarness {
 public:
  explicit ShardHarness(unsigned shards, core::Options opts = small_options(),
                        bool crash_tracking = true)
      : opts_(opts), tracking_(crash_tracking) {
    dir_ = std::filesystem::path("/tmp") /
           ("upsl_shard_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
    for (unsigned i = 0; i < shards; ++i) {
      pools_.push_back(pmem::Pool::create(
          (dir_ / ("shard" + std::to_string(i))).string(),
          static_cast<std::uint16_t>(i), pool_size_for(opts_),
          {.crash_tracking = tracking_}));
    }
    ThreadRegistry::instance().bind(0);
    set_ = core::ShardSet::create(shard_pools(), opts_);
    mark_persisted();
  }

  ~ShardHarness() {
    set_.reset();
    pools_.clear();
    riv::Runtime::instance().reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    CrashPoints::instance().reset();
  }

  core::ShardSet& set() { return *set_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(pools_.size());
  }
  /// Per-shard singleton pool sets, in shard order (for ShardSet::open).
  std::vector<std::vector<pmem::Pool*>> shard_pools() {
    std::vector<std::vector<pmem::Pool*>> v;
    for (auto& p : pools_) v.push_back({p.get()});
    return v;
  }

  void mark_persisted() {
    for (auto& p : pools_) p->mark_all_persisted();
  }

  /// Power failure + restart across every shard: unflushed lines are lost,
  /// DRAM-side state is rebuilt, pools are re-mapped at new addresses, each
  /// shard's epoch is bumped, and the durable topology is re-validated by
  /// the parallel ShardSet::open.
  void crash_and_reopen(pmem::CrashMode mode = pmem::CrashMode::kDiscardUnflushed,
                        std::uint64_t seed = 1) {
    set_.reset();
    for (auto& p : pools_) p->simulate_crash(mode, seed);
    for (auto& p : pools_) p->remap();
    riv::Runtime::instance().reset();
    set_ = core::ShardSet::open(shard_pools());
  }

  /// Clean restart (everything flushed first).
  void clean_reopen() { clean_reopen_with(shard_pools()); }

  /// Clean restart over an explicit pool arrangement — for topology-mismatch
  /// tests (swapped shard files, wrong count). Propagates whatever
  /// ShardSet::open throws; the harness then holds no set until the next
  /// successful reopen.
  void clean_reopen_with(std::vector<std::vector<pmem::Pool*>> pools) {
    mark_persisted();
    set_.reset();
    for (auto& p : pools_) p->remap();
    riv::Runtime::instance().reset();
    set_ = core::ShardSet::open(std::move(pools));
  }

 private:
  static inline std::atomic<int> counter_{0};
  core::Options opts_;
  bool tracking_;
  std::filesystem::path dir_;
  std::vector<std::unique_ptr<pmem::Pool>> pools_;
  std::unique_ptr<core::ShardSet> set_;
};

}  // namespace upsl::test
