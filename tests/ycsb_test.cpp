// YCSB generator tests: workload mixes match Table 5.1, zipfian skew and
// latest-recency properties hold, traces are deterministic and partition
// correctly across threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ycsb/ycsb.hpp"

namespace upsl::ycsb {
namespace {

std::map<OpType, std::uint64_t> op_mix(const Trace& t) {
  std::map<OpType, std::uint64_t> mix;
  for (const auto& slice : t.ops)
    for (const Op& op : slice) mix[op.type]++;
  return mix;
}

TEST(Ycsb, WorkloadMixesMatchTable51) {
  constexpr std::uint64_t kOps = 40000;
  {
    auto mix = op_mix(generate(kWorkloadA, 1000, kOps, 2, 1));
    EXPECT_NEAR(static_cast<double>(mix[OpType::kRead]) / kOps, 0.50, 0.02);
    EXPECT_NEAR(static_cast<double>(mix[OpType::kUpdate]) / kOps, 0.50, 0.02);
    EXPECT_EQ(mix[OpType::kInsert], 0u);
  }
  {
    auto mix = op_mix(generate(kWorkloadB, 1000, kOps, 2, 1));
    EXPECT_NEAR(static_cast<double>(mix[OpType::kRead]) / kOps, 0.95, 0.02);
    EXPECT_NEAR(static_cast<double>(mix[OpType::kUpdate]) / kOps, 0.05, 0.02);
  }
  {
    auto mix = op_mix(generate(kWorkloadC, 1000, kOps, 2, 1));
    EXPECT_EQ(static_cast<double>(mix[OpType::kRead]), kOps);
  }
  {
    auto mix = op_mix(generate(kWorkloadD, 1000, kOps, 2, 1));
    EXPECT_NEAR(static_cast<double>(mix[OpType::kRead]) / kOps, 0.95, 0.02);
    EXPECT_NEAR(static_cast<double>(mix[OpType::kInsert]) / kOps, 0.05, 0.02);
    EXPECT_EQ(mix[OpType::kUpdate], 0u);
  }
}

TEST(Ycsb, ZipfianIsSkewed) {
  ZipfianGenerator zipf(10000);
  Xoshiro256 rng(3);
  std::map<std::uint64_t, std::uint64_t> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.next(rng)]++;
  // YCSB zipfian theta=0.99: the hottest item draws a few percent of all
  // accesses; the top-10 ranks dominate any 10 cold ranks.
  EXPECT_GT(counts[0], kSamples / 50);
  std::uint64_t top10 = 0;
  std::uint64_t cold10 = 0;
  for (std::uint64_t r = 0; r < 10; ++r) top10 += counts[r];
  for (std::uint64_t r = 5000; r < 5010; ++r) cold10 += counts[r];
  EXPECT_GT(top10, cold10 * 20);
}

TEST(Ycsb, ScrambledZipfianSpreadsHotKeys) {
  ScrambledZipfian zipf(10000);
  Xoshiro256 rng(3);
  std::map<std::uint64_t, std::uint64_t> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.next(rng)]++;
  // Find the two hottest items: they must not be adjacent indices.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> byfreq;
  for (auto& [idx, n] : counts) byfreq.push_back({n, idx});
  std::sort(byfreq.rbegin(), byfreq.rend());
  const auto a = byfreq[0].second;
  const auto b = byfreq[1].second;
  EXPECT_GT(std::max(a, b) - std::min(a, b), 1u);
}

TEST(Ycsb, LatestSkewsToRecentInserts) {
  const Trace t = generate(kWorkloadD, 10000, 40000, 1, 5);
  // Reads in D target recent record indices: the average read key should
  // match keys from the high end of the record space. Track which record
  // indices reads map to by regenerating the key table.
  std::map<std::uint64_t, std::uint64_t> index_of_key;
  for (std::uint64_t i = 0; i < 12000; ++i) index_of_key[key_of(i)] = i;
  std::uint64_t reads = 0;
  std::uint64_t recent = 0;
  for (const Op& op : t.ops[0]) {
    if (op.type != OpType::kRead) continue;
    auto it = index_of_key.find(op.key);
    ASSERT_NE(it, index_of_key.end());
    ++reads;
    if (it->second > 9000) ++recent;  // top 10% of preloaded records
  }
  EXPECT_GT(static_cast<double>(recent) / static_cast<double>(reads), 0.5)
      << "latest distribution must strongly favour recent records";
}

TEST(Ycsb, DeterministicAndPartitioned) {
  const Trace a = generate(kWorkloadA, 500, 10000, 4, 9);
  const Trace b = generate(kWorkloadA, 500, 10000, 4, 9);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < a.ops.size(); ++t) {
    ASSERT_EQ(a.ops[t].size(), b.ops[t].size());
    total += a.ops[t].size();
    for (std::size_t i = 0; i < a.ops[t].size(); ++i) {
      EXPECT_EQ(a.ops[t][i].key, b.ops[t][i].key);
      EXPECT_EQ(static_cast<int>(a.ops[t][i].type),
                static_cast<int>(b.ops[t][i].type));
    }
  }
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ(a.preload_keys.size(), 500u);
}

TEST(Ycsb, KeysStayInEveryStructuresDomain) {
  for (std::uint64_t i = 0; i < 100000; ++i) {
    const std::uint64_t k = key_of(i);
    EXPECT_NE(k, 0u);
    EXPECT_LT(k, (1ULL << 62) - 1);
  }
}

TEST(Ycsb, InsertsUseFreshKeys) {
  const Trace t = generate(kWorkloadD, 1000, 20000, 1, 2);
  std::map<std::uint64_t, int> preloaded;
  for (const std::uint64_t k : t.preload_keys) preloaded[k] = 1;
  for (const Op& op : t.ops[0])
    if (op.type == OpType::kInsert) {
      EXPECT_EQ(preloaded.count(op.key), 0u) << "insert key already preloaded";
    }
}

}  // namespace
}  // namespace upsl::ycsb
