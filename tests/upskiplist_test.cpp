// UPSkipList functional tests: single-threaded semantics against a reference
// model, node splits, tower building, scans, invariants, and multi-threaded
// smoke tests. Crash-recovery behaviour has its own suite (crash_test.cpp).
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "test_util.hpp"

namespace upsl::core {
namespace {

using test::StoreHarness;
using test::small_options;

TEST(UPSkipList, EmptySearch) {
  StoreHarness h;
  EXPECT_FALSE(h.store().search(42).has_value());
  EXPECT_FALSE(h.store().contains(1));
  EXPECT_EQ(h.store().count_keys(), 0u);
}

TEST(UPSkipList, InsertThenSearch) {
  StoreHarness h;
  EXPECT_FALSE(h.store().insert(5, 500).has_value());
  auto v = h.store().search(5);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 500u);
}

TEST(UPSkipList, InsertIsUpsert) {
  StoreHarness h;
  EXPECT_FALSE(h.store().insert(5, 500).has_value());
  auto old = h.store().insert(5, 501);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, 500u);
  EXPECT_EQ(*h.store().search(5), 501u);
  EXPECT_EQ(h.store().count_keys(), 1u);
}

TEST(UPSkipList, RemoveTombstones) {
  StoreHarness h;
  h.store().insert(7, 70);
  auto removed = h.store().remove(7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 70u);
  EXPECT_FALSE(h.store().search(7).has_value());
  EXPECT_FALSE(h.store().remove(7).has_value()) << "second remove is a no-op";
  // Re-insert after removal.
  EXPECT_FALSE(h.store().insert(7, 71).has_value());
  EXPECT_EQ(*h.store().search(7), 71u);
}

TEST(UPSkipList, RemoveMissingKey) {
  StoreHarness h;
  h.store().insert(10, 1);
  EXPECT_FALSE(h.store().remove(11).has_value());
  EXPECT_FALSE(h.store().remove(9).has_value());
}

TEST(UPSkipList, RejectsReservedKeysAndValues) {
  StoreHarness h;
  EXPECT_THROW(h.store().insert(0, 1), std::invalid_argument);
  EXPECT_THROW(h.store().insert(kTailKey, 1), std::invalid_argument);
  EXPECT_THROW(h.store().insert(1, kTombstone), std::invalid_argument);
  EXPECT_THROW(h.store().search(0), std::invalid_argument);
  EXPECT_THROW(h.store().remove(kTailKey), std::invalid_argument);
}

TEST(UPSkipList, DescendingInsertsCreateHeadSuccessors) {
  StoreHarness h;
  for (std::uint64_t k = 100; k >= 1; --k) h.store().insert(k, k * 10);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    auto v = h.store().search(k);
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_EQ(*v, k * 10);
  }
  h.store().check_invariants();
}

TEST(UPSkipList, AscendingInsertsFillNodesAndSplit) {
  StoreHarness h(small_options(/*keys_per_node=*/4));
  for (std::uint64_t k = 1; k <= 200; ++k) h.store().insert(k, k);
  EXPECT_EQ(h.store().count_keys(), 200u);
  for (std::uint64_t k = 1; k <= 200; ++k) EXPECT_EQ(*h.store().search(k), k);
  h.store().check_invariants();
}

TEST(UPSkipList, SingleKeyPerNodeMode) {
  // keys_per_node = 1: every insert that lands in a full node splits it —
  // the degenerate configuration of Figure 5.3.
  StoreHarness h(small_options(/*keys_per_node=*/1));
  for (std::uint64_t k = 1; k <= 120; ++k) h.store().insert(k * 3, k);
  for (std::uint64_t k = 1; k <= 120; ++k)
    EXPECT_EQ(*h.store().search(k * 3), k);
  EXPECT_FALSE(h.store().search(4).has_value());
  h.store().check_invariants();
}

TEST(UPSkipList, ScanRange) {
  StoreHarness h(small_options(4));
  for (std::uint64_t k = 10; k <= 100; k += 10) h.store().insert(k, k + 1);
  std::vector<ScanEntry> out;
  EXPECT_EQ(h.store().scan(25, 75, out), 5u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front().key, 30u);
  EXPECT_EQ(out.back().key, 70u);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LT(out[i - 1].key, out[i].key) << "sorted output";
}

TEST(UPSkipList, ScanSkipsTombstones) {
  StoreHarness h(small_options(4));
  for (std::uint64_t k = 1; k <= 20; ++k) h.store().insert(k, k);
  for (std::uint64_t k = 2; k <= 20; k += 2) h.store().remove(k);
  std::vector<ScanEntry> out;
  EXPECT_EQ(h.store().scan(1, 20, out), 10u);
  for (const auto& e : out) EXPECT_EQ(e.key % 2, 1u);
}

TEST(UPSkipList, ScanEmptyAndInvertedRanges) {
  StoreHarness h;
  h.store().insert(5, 5);
  std::vector<ScanEntry> out;
  EXPECT_EQ(h.store().scan(6, 10, out), 0u);
  EXPECT_EQ(h.store().scan(10, 6, out), 0u);
}

TEST(UPSkipList, ScanChunkWalksRangeInDisjointResumableChunks) {
  StoreHarness h(small_options(4));
  for (std::uint64_t k = 1; k <= 300; ++k) h.store().insert(k * 3, k);

  std::vector<ScanEntry> reference;
  h.store().scan(1, 900, reference);
  ASSERT_EQ(reference.size(), 300u);

  std::vector<ScanEntry> all;
  std::vector<ScanEntry> chunk;
  std::uint64_t lo = 1;
  std::uint64_t resume = ~0ULL;
  std::size_t chunks = 0;
  while (true) {
    chunk.clear();
    h.store().scan_chunk(lo, 900, /*limit=*/5, chunk, &resume);
    // A chunk stops at a node boundary: at most limit + keys_per_node - 1.
    EXPECT_LE(chunk.size(), 5u + 4u - 1u);
    for (std::size_t i = 1; i < chunk.size(); ++i)
      EXPECT_LT(chunk[i - 1].key, chunk[i].key);
    if (!all.empty() && !chunk.empty())
      EXPECT_LT(all.back().key, chunk.front().key) << "chunks overlap";
    if (resume != 0 && !chunk.empty())
      EXPECT_LT(chunk.back().key, resume) << "resume key already covered";
    all.insert(all.end(), chunk.begin(), chunk.end());
    ++chunks;
    if (resume == 0) break;
    lo = resume;
  }
  EXPECT_GT(chunks, 10u) << "limit 5 over 300 keys must take many chunks";
  ASSERT_EQ(all.size(), reference.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].key, reference[i].key);
    EXPECT_EQ(all[i].value, reference[i].value);
  }
}

TEST(UPSkipList, ScanChunkLimitZeroMatchesScan) {
  StoreHarness h(small_options(8));
  for (std::uint64_t k = 5; k <= 500; k += 5) h.store().insert(k, k + 1);
  for (std::uint64_t k = 10; k <= 500; k += 10) h.store().remove(k);

  std::vector<ScanEntry> want;
  h.store().scan(7, 493, want);
  std::vector<ScanEntry> got;
  std::uint64_t resume = ~0ULL;
  EXPECT_EQ(h.store().scan_chunk(7, 493, 0, got, &resume), want.size());
  EXPECT_EQ(resume, 0u) << "unbounded chunk covers the whole range";
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].key, want[i].key);
}

TEST(UPSkipList, ScanChunkResumesPastTombstoneRuns) {
  StoreHarness h(small_options(4));
  for (std::uint64_t k = 1; k <= 200; ++k) h.store().insert(k, k);
  // Tombstone a long interior run; chunked walks must hop it and terminate.
  for (std::uint64_t k = 50; k <= 150; ++k) h.store().remove(k);

  std::vector<ScanEntry> all, chunk;
  std::uint64_t lo = 1, resume = ~0ULL;
  do {
    chunk.clear();
    h.store().scan_chunk(lo, 200, 8, chunk, &resume);
    all.insert(all.end(), chunk.begin(), chunk.end());
    lo = resume;
  } while (resume != 0);
  ASSERT_EQ(all.size(), 99u);
  for (const auto& e : all) EXPECT_TRUE(e.key < 50 || e.key > 150) << e.key;
}

TEST(UPSkipList, CleanReopenPreservesData) {
  StoreHarness h(small_options(4));
  for (std::uint64_t k = 1; k <= 50; ++k) h.store().insert(k, k * 2);
  const auto epoch_before = h.store().epoch();
  h.clean_reopen();
  EXPECT_EQ(h.store().epoch(), epoch_before + 1);
  for (std::uint64_t k = 1; k <= 50; ++k) EXPECT_EQ(*h.store().search(k), k * 2);
  h.store().check_invariants();
  // And the store remains writable.
  h.store().insert(1000, 1);
  EXPECT_TRUE(h.store().contains(1000));
}

// ---- property tests against a reference model -----------------------------

struct PropParam {
  std::uint32_t keys_per_node;
  std::uint32_t max_height;
  std::uint64_t key_space;
  std::uint64_t seed;
  bool sorted_splits = false;
};

class UPSkipListProperty : public ::testing::TestWithParam<PropParam> {};

TEST_P(UPSkipListProperty, MatchesReferenceModel) {
  const PropParam p = GetParam();
  auto opts = small_options(p.keys_per_node, p.max_height);
  opts.sorted_splits = p.sorted_splits;
  StoreHarness h(opts);
  std::map<std::uint64_t, std::uint64_t> model;
  Xoshiro256 rng(p.seed);

  for (int op = 0; op < 3000; ++op) {
    const std::uint64_t key = 1 + rng.next_below(p.key_space);
    const double dice = rng.next_double();
    if (dice < 0.5) {
      const std::uint64_t value = rng.next() >> 1;
      auto old = h.store().insert(key, value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(old.has_value()) << "key " << key;
      } else {
        ASSERT_TRUE(old.has_value()) << "key " << key;
        EXPECT_EQ(*old, it->second);
      }
      model[key] = value;
    } else if (dice < 0.8) {
      auto got = h.store().search(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << "key " << key;
      } else {
        ASSERT_TRUE(got.has_value()) << "key " << key;
        EXPECT_EQ(*got, it->second);
      }
    } else {
      auto removed = h.store().remove(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(removed.has_value()) << "key " << key;
      } else {
        ASSERT_TRUE(removed.has_value());
        EXPECT_EQ(*removed, it->second);
        model.erase(it);
      }
    }
  }
  EXPECT_EQ(h.store().count_keys(), model.size());
  std::vector<ScanEntry> out;
  h.store().scan(1, kTailKey - 1, out);
  ASSERT_EQ(out.size(), model.size());
  auto it = model.begin();
  for (const auto& e : out) {
    EXPECT_EQ(e.key, it->first);
    EXPECT_EQ(e.value, it->second);
    ++it;
  }
  h.store().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, UPSkipListProperty,
    ::testing::Values(PropParam{1, 8, 200, 1}, PropParam{2, 8, 200, 2},
                      PropParam{4, 12, 500, 3}, PropParam{8, 12, 500, 4},
                      PropParam{16, 12, 2000, 5}, PropParam{8, 4, 300, 6},
                      PropParam{32, 16, 10000, 7}, PropParam{4, 12, 50, 8}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.keys_per_node) + "_H" +
             std::to_string(info.param.max_height) + "_S" +
             std::to_string(info.param.key_space);
    });

// Same workloads with sorted splits + prefix block-search enabled: the §7
// extension (and its SIMD sorted kernel) must stay semantically invisible
// across every node geometry, not just the one config covered above.
INSTANTIATE_TEST_SUITE_P(
    SortedConfigs, UPSkipListProperty,
    ::testing::Values(PropParam{2, 8, 200, 12, true},
                      PropParam{4, 12, 500, 13, true},
                      PropParam{8, 12, 500, 14, true},
                      PropParam{16, 12, 2000, 15, true},
                      PropParam{32, 16, 10000, 17, true},
                      PropParam{4, 12, 50, 18, true}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.keys_per_node) + "_H" +
             std::to_string(info.param.max_height) + "_S" +
             std::to_string(info.param.key_space);
    });

// ---- concurrency smoke tests ----------------------------------------------

TEST(UPSkipListConcurrent, DisjointKeyInserts) {
  StoreHarness h(small_options(4, 12, /*max_threads=*/8));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t key = 1 + i * kThreads + static_cast<std::uint64_t>(t);
        ASSERT_FALSE(h.store().insert(key, key * 7).has_value());
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  EXPECT_EQ(h.store().count_keys(), kThreads * kPerThread);
  for (std::uint64_t k = 1; k <= kThreads * kPerThread; ++k)
    EXPECT_EQ(*h.store().search(k), k * 7) << k;
  h.store().check_invariants();
}

TEST(UPSkipListConcurrent, ContendedUpserts) {
  StoreHarness h(small_options(4, 12, 8));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeySpace = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(t);
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = 1 + rng.next_below(kKeySpace);
        switch (rng.next_below(3)) {
          case 0:
            h.store().insert(key, rng.next() >> 1);
            break;
          case 1:
            h.store().search(key);
            break;
          default:
            h.store().remove(key);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  h.store().check_invariants();
  EXPECT_LE(h.store().count_keys(), kKeySpace);
}

TEST(UPSkipListConcurrent, ReadersDuringSplits) {
  StoreHarness h(small_options(4, 12, 8));
  for (std::uint64_t k = 2; k <= 400; k += 2) h.store().insert(k, k);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    ThreadRegistry::instance().bind(1);
    while (!stop.load()) {
      for (std::uint64_t k = 2; k <= 400; k += 2) {
        auto v = h.store().search(k);
        ASSERT_TRUE(v.has_value()) << k;
        ASSERT_EQ(*v, k);
      }
    }
  });
  // Odd-key inserts force slot claims and splits under the reader's feet.
  ThreadRegistry::instance().bind(0);
  for (std::uint64_t k = 1; k <= 399; k += 2) h.store().insert(k, k);
  stop.store(true);
  reader.join();
  ThreadRegistry::instance().bind(0);
  EXPECT_EQ(h.store().count_keys(), 400u);
  h.store().check_invariants();
}

/// Scans racing splits and removes, differentially checked against what a
/// single-threaded model can guarantee: output strictly ascending (no dupes,
/// no reordering), every stable key present with its value, and nothing ever
/// returned that was never inserted. Runs in both search-layer modes — the
/// DRAM index and persistent towers walk different level structures over the
/// same data level.
void scan_differential_under_churn(bool dram_index) {
  test::ScopedEnv pin("UPSL_DISABLE_DRAM_INDEX", dram_index ? "0" : "1");
  core::Options o = small_options(4, 12, 8);
  o.dram_index = dram_index;
  StoreHarness h(o);
  ASSERT_EQ(h.store().dram_index_enabled(), dram_index);

  // Stable keys: odd in [1, 1199], never touched by the writers.
  for (std::uint64_t k = 1; k < 1200; k += 2) h.store().insert(k, k * 7);

  std::atomic<bool> stop{false};
  // Writer 1: ascending even inserts — continuous node splits.
  std::thread splitter([&] {
    ThreadRegistry::instance().bind(1);
    std::uint64_t k = 2;
    while (!stop.load(std::memory_order_relaxed) && k < 1200) {
      h.store().insert(k, k * 7);
      k += 2;
    }
  });
  // Writer 2: churns a fixed even subset with remove/reinsert cycles.
  std::thread churner([&] {
    ThreadRegistry::instance().bind(2);
    Xoshiro256 rng(17);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = 600 + 2 * rng.next_below(100);  // evens 600..798
      if (rng.next_below(2) == 0)
        h.store().remove(k);
      else
        h.store().insert(k, k * 7);
    }
  });

  ThreadRegistry::instance().bind(0);
  std::vector<ScanEntry> out, chunk;
  for (int iter = 0; iter < 40; ++iter) {
    // Full scan and chunked walk alternate so both paths race the writers.
    out.clear();
    if (iter % 2 == 0) {
      h.store().scan(1, 1200, out);
    } else {
      std::uint64_t lo = 1, resume = ~0ULL;
      do {
        chunk.clear();
        h.store().scan_chunk(lo, 1200, 16, chunk, &resume);
        out.insert(out.end(), chunk.begin(), chunk.end());
        lo = resume;
      } while (resume != 0);
    }
    for (std::size_t i = 1; i < out.size(); ++i)
      ASSERT_LT(out[i - 1].key, out[i].key) << "iter " << iter;
    std::size_t odd = 0;
    for (const auto& e : out) {
      ASSERT_EQ(e.value, e.key * 7) << "iter " << iter;
      if (e.key % 2 == 1) ++odd;
    }
    ASSERT_EQ(odd, 600u) << "stable keys missing, iter " << iter;
  }
  stop.store(true);
  splitter.join();
  churner.join();
  ThreadRegistry::instance().bind(0);
  h.store().check_invariants();
}

TEST(UPSkipListConcurrent, ScanDifferentialUnderChurnDramIndex) {
  scan_differential_under_churn(true);
}

TEST(UPSkipListConcurrent, ScanDifferentialUnderChurnPersistentTowers) {
  scan_differential_under_churn(false);
}

TEST(UPSkipList, SortedSplitsMatchesReferenceModel) {
  // The §7 sorted-splits + binary-search extension must be semantically
  // invisible: run the same randomized workload with it on and off.
  auto opts = small_options(/*keys_per_node=*/16, /*max_height=*/12);
  opts.sorted_splits = true;
  StoreHarness h(opts);
  std::map<std::uint64_t, std::uint64_t> model;
  Xoshiro256 rng(77);
  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t key = 1 + rng.next_below(800);
    if (rng.next_below(2) == 0) {
      const std::uint64_t v = rng.next() >> 1;
      auto old = h.store().insert(key, v);
      auto it = model.find(key);
      EXPECT_EQ(old.has_value(), it != model.end()) << key;
      model[key] = v;
    } else {
      auto got = h.store().search(key);
      auto it = model.find(key);
      ASSERT_EQ(got.has_value(), it != model.end()) << key;
      if (got) {
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(h.store().count_keys(), model.size());
  h.store().check_invariants();
  // Survives a crash like the default configuration.
  h.crash_and_reopen();
  for (const auto& [k, v] : model) EXPECT_EQ(*h.store().search(k), v);
}

TEST(UPSkipList, SortedSplitsPrefixStaysWellFormedUnderHeavySplits) {
  // Regression for the sorted_count/kNullKey inconsistency: removals punch
  // tombstones into nodes, and a later split must clamp the surviving nodes'
  // sorted_count to the actually-populated ascending prefix — otherwise the
  // prefix block-search can binary-search over null slots and miss keys.
  // check_invariants() asserts the prefix invariant on every bottom node.
  auto opts = small_options(/*keys_per_node=*/8, /*max_height=*/12);
  opts.sorted_splits = true;
  StoreHarness h(opts);
  std::map<std::uint64_t, std::uint64_t> model;
  Xoshiro256 rng(4242);
  // Descending then interleaved inserts with bursts of removals: maximizes
  // splits of nodes whose key slots contain tombstoned/null gaps.
  for (std::uint64_t k = 2000; k >= 1; --k) {
    h.store().insert(k, k * 3);
    model[k] = k * 3;
  }
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t key = 1 + rng.next_below(2500);
      if (rng.next_below(3) == 0) {
        auto removed = h.store().remove(key);
        auto it = model.find(key);
        ASSERT_EQ(removed.has_value(), it != model.end()) << key;
        if (it != model.end()) model.erase(it);
      } else {
        const std::uint64_t v = rng.next() >> 1;
        h.store().insert(key, v);
        model[key] = v;
      }
    }
    h.store().check_invariants();
  }
  EXPECT_EQ(h.store().count_keys(), model.size());
  for (const auto& [k, v] : model) {
    auto got = h.store().search(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v);
  }
  h.crash_and_reopen();
  EXPECT_EQ(h.store().count_keys(), model.size());
  h.store().check_invariants();
}

TEST(UPSkipList, NodeLayoutOffsets) {
  NodeLayout layout{8, 12};
  EXPECT_EQ(NodeLayout::kKeysOffset, 56u);
  EXPECT_EQ(layout.values_offset(), 56u + 64u);
  EXPECT_EQ(layout.next_offset(), 56u + 128u);
  EXPECT_EQ(layout.node_size() % kCacheLineSize, 0u);
  EXPECT_GE(layout.node_size(), layout.next_offset() + 8 * 12);
}

}  // namespace
}  // namespace upsl::core
