// Corruption-aware recovery (docs/integrity.md): CRC32C kernels and stamp
// conventions, the seeded corruption injector, and quarantine-and-continue
// repair across every stamped durable surface — node headers, the StoreRoot,
// magazine descriptors, session slots, and the PMDK tx log — in both crash
// modes. The invariant under test throughout: every acked key is recovered
// intact or explicitly reported lost, never silently wrong.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/corruption.hpp"
#include "core/node.hpp"
#include "pmdk/objstore.hpp"
#include "pmem/persist.hpp"
#include "pmem/pool.hpp"
#include "riv/riv.hpp"
#include "test_util.hpp"

namespace upsl {
namespace {

using core::IntegrityReport;
using core::UPSkipList;
using test::ScopedChecksums;
using test::ScopedDetect;
using test::StoreHarness;

// ---------------------------------------------------------------------------
// CRC32C kernels and stamp conventions
// ---------------------------------------------------------------------------

TEST(Crc32c, KnownVector) {
  // The canonical CRC32C check value (RFC 3720 / every Castagnoli impl).
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, SoftwareMatchesDispatchedKernel) {
  unsigned char buf[257];
  for (std::size_t i = 0; i < sizeof(buf); ++i)
    buf[i] = static_cast<unsigned char>(i * 131 + 7);
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{63}, std::size_t{64},
                          std::size_t{257}}) {
    EXPECT_EQ(crc32c(buf, len), detail::crc32c_software(buf, len, 0))
        << "len=" << len;
  }
}

TEST(Crc32c, KernelResolution) {
  EXPECT_EQ(resolve_crc32c_kernel(true), Crc32cKernel::kSse42);
  EXPECT_EQ(resolve_crc32c_kernel(false), Crc32cKernel::kSoftware);
}

TEST(Crc32c, StampIsNeverZeroAndZeroRegionsHaveNonzeroCrc) {
  ScopedChecksums on(true);
  const std::uint64_t zeros[8] = {};
  // CRC32C of an all-zero region is nonzero for any nonzero length — a
  // zeroed line under a real stamp is always caught.
  EXPECT_NE(crc32c(zeros, sizeof(zeros)), 0u);
  EXPECT_NE(checksum_stamp(zeros, sizeof(zeros)), 0u);
  EXPECT_TRUE(checksum_verify(zeros, sizeof(zeros),
                              checksum_stamp(zeros, sizeof(zeros))));
  EXPECT_FALSE(checksum_verify(zeros, sizeof(zeros), 0xdeadbeefu));
}

TEST(Crc32c, KillSwitchStampsZeroAndVerifyAlwaysPasses) {
  const std::uint64_t data[2] = {1, 2};
  {
    ScopedChecksums off(false);
    EXPECT_FALSE(checksums_enabled());
    EXPECT_EQ(checksum_stamp(data, sizeof(data)), 0u);
    EXPECT_TRUE(checksum_verify(data, sizeof(data), 0x12345678u));
  }
  {
    ScopedChecksums on(true);
    // Stamp 0 reads as "unstamped" — the checksums-on reader accepts state
    // written by a checksums-off writer.
    EXPECT_TRUE(checksum_verify(data, sizeof(data), 0));
  }
}

// ---------------------------------------------------------------------------
// Corruption injector
// ---------------------------------------------------------------------------

TEST(CorruptionInjector, StrikesAreDeterministicFromSeed) {
  char a[512] = {}, b[512] = {};
  auto& cp = CorruptionPoints::instance();
  cp.arm({.seed = 42, .strikes = 5});
  const auto ha = cp.strike(a, sizeof(a));
  cp.arm({.seed = 42, .strikes = 5});
  const auto hb = cp.strike(b, sizeof(b));
  cp.reset();
  ASSERT_EQ(ha.size(), 5u);
  ASSERT_EQ(hb.size(), 5u);
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].kind, hb[i].kind);
    EXPECT_EQ(ha[i].offset, hb[i].offset);
    EXPECT_EQ(ha[i].after, hb[i].after);
  }
  EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0);
}

TEST(CorruptionInjector, PrimitivesHaveTheirShapes) {
  char buf[256] = {};
  for (std::size_t i = 0; i < sizeof(buf); ++i)
    buf[i] = static_cast<char>(i ^ 0x5a);
  char orig[256];
  std::memcpy(orig, buf, sizeof(buf));

  // Bit flip: exactly one bit differs.
  CorruptionPoints::bit_flip(buf, sizeof(buf), 0x1234567890abcdefull);
  unsigned diff_bits = 0;
  for (std::size_t i = 0; i < sizeof(buf); ++i)
    diff_bits += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned char>(buf[i] ^ orig[i])));
  EXPECT_EQ(diff_bits, 1u);

  // Torn word: 1..7 bytes of one aligned word differ.
  std::memcpy(buf, orig, sizeof(buf));
  const auto torn =
      CorruptionPoints::torn_word(buf, sizeof(buf), 0x9999999999999999ull);
  EXPECT_EQ(torn.offset % 8, 0u);
  unsigned torn_bytes = 0;
  for (std::size_t i = 0; i < sizeof(buf); ++i)
    if (buf[i] != orig[i]) {
      EXPECT_GE(i, torn.offset);
      EXPECT_LT(i, torn.offset + 8);
      ++torn_bytes;
    }
  EXPECT_GE(torn_bytes, 1u);
  EXPECT_LE(torn_bytes, 7u);

  // Zero line: one aligned 64B line is all-zero.
  std::memcpy(buf, orig, sizeof(buf));
  const auto zl = CorruptionPoints::zero_line(buf, sizeof(buf), 77);
  EXPECT_EQ(zl.offset % 64, 0u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(buf[zl.offset + i], 0);
}

// ---------------------------------------------------------------------------
// Store-level quarantine harness
// ---------------------------------------------------------------------------

constexpr std::uint64_t kVal = 0xabc0000000000000ull;

void preload(StoreHarness& h, std::uint64_t n) {
  for (std::uint64_t i = 1; i <= n; ++i)
    h.store().insert(i * 10 + 1, kVal + i);
  h.mark_persisted();  // quiesced: everything above is acked & durable
}

/// The oracle invariant: every preloaded key reads back with its exact
/// value, or falls in a reported lost range. Returns how many were lost.
std::uint64_t check_never_silently_wrong(UPSkipList& store,
                                         const IntegrityReport& rep,
                                         std::uint64_t n) {
  std::uint64_t lost = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    const std::uint64_t key = i * 10 + 1;
    const auto got = store.search(key);
    if (got.has_value()) {
      EXPECT_EQ(*got, kVal + i) << "key " << key << " silently wrong";
    } else {
      EXPECT_TRUE(rep.covers(key))
          << "key " << key << " lost but not reported";
      ++lost;
    }
  }
  return lost;
}

TEST(NodeQuarantine, BitFlippedHeaderIsBridgedAndReported) {
  ScopedChecksums on(true);
  constexpr std::uint64_t kN = 300;
  StoreHarness h;
  preload(h, kN);

  const std::uint64_t victim_key = (kN / 2) * 10 + 1;
  const std::uint64_t riv = h.store().debug_node_riv_for(victim_key);
  ASSERT_NE(riv, 0u);
  char* node = static_cast<char*>(riv::Runtime::instance().to_ptr(riv));

  h.crash_corrupt_reopen([&](std::vector<pmem::Pool*>) {
    // Flip one bit in the meta word (offset 24: packed stamp | height).
    CorruptionPoints::bit_flip(node + 24, 8, 5);
  });

  const IntegrityReport& rep = h.store().integrity();
  EXPECT_TRUE(rep.degraded());
  EXPECT_GE(rep.nodes_quarantined, 1u);
  ASSERT_FALSE(rep.lost.empty());
  EXPECT_GT(rep.nodes_checked, 0u);

  const std::uint64_t lost = check_never_silently_wrong(h.store(), rep, kN);
  EXPECT_GE(lost, 1u);
  EXPECT_TRUE(rep.covers(victim_key));

  // The store continues: writes into and around the lost range work.
  h.store().insert(victim_key, 42);
  EXPECT_EQ(h.store().search(victim_key).value(), 42u);
  h.store().check_invariants();
}

TEST(NodeQuarantine, FsckRoundTripAndCleanReopenAfterRepair) {
  ScopedChecksums on(true);
  constexpr std::uint64_t kN = 200;
  StoreHarness h;
  preload(h, kN);

  const std::uint64_t victim_key = 501;
  const std::uint64_t riv = h.store().debug_node_riv_for(victim_key);
  ASSERT_NE(riv, 0u);
  char* node = static_cast<char*>(riv::Runtime::instance().to_ptr(riv));

  h.crash_corrupt_reopen([&](std::vector<pmem::Pool*>) {
    CorruptionPoints::torn_word(node + 56, 8, 0xfeedfacefeedfaceull);  // key0
  });

  // fsck view: verify_deep re-walks the (already repaired) chain and carries
  // the open-time verdict.
  IntegrityReport deep = h.store().verify_deep();
  EXPECT_TRUE(deep.degraded());
  EXPECT_GE(deep.nodes_quarantined, 1u);
  const std::string json = deep.to_json();
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("lost_ranges"), std::string::npos);
  check_never_silently_wrong(h.store(), deep, kN);

  // The repair was durable: a clean reopen finds no damage and keeps every
  // surviving key.
  std::map<std::uint64_t, std::uint64_t> survivors;
  for (std::uint64_t i = 1; i <= kN; ++i) {
    const auto got = h.store().search(i * 10 + 1);
    if (got.has_value()) survivors[i * 10 + 1] = *got;
  }
  h.clean_reopen();
  EXPECT_FALSE(h.store().integrity().degraded());
  for (const auto& [k, v] : survivors)
    EXPECT_EQ(h.store().search(k).value_or(~0ull), v);
  h.store().check_invariants();
}

TEST(NodeQuarantine, SeededSweepBothCrashModes) {
  ScopedChecksums on(true);
  constexpr std::uint64_t kN = 120;
  // Stamp-covered words of the node header: meta@24, self_riv@40, key0@56.
  const std::size_t offs[] = {24, 40, 56};
  for (const auto mode : {pmem::CrashMode::kDiscardUnflushed,
                          pmem::CrashMode::kRandomEvict}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      StoreHarness h;
      preload(h, kN);
      const std::uint64_t victim_key = ((seed * 37) % kN + 1) * 10 + 1;
      const std::uint64_t riv = h.store().debug_node_riv_for(victim_key);
      ASSERT_NE(riv, 0u);
      char* node = static_cast<char*>(riv::Runtime::instance().to_ptr(riv));

      h.crash_corrupt_reopen(
          [&](std::vector<pmem::Pool*>) {
            switch (seed % 3) {
              case 0:
                CorruptionPoints::bit_flip(node + offs[seed % 3], 8, seed);
                break;
              case 1:
                CorruptionPoints::torn_word(node + offs[seed % 3], 8, seed);
                break;
              default:
                CorruptionPoints::zero_line(node, 64, 0);  // whole header line
            }
          },
          mode, seed);

      const IntegrityReport& rep = h.store().integrity();
      check_never_silently_wrong(h.store(), rep, kN);
      h.store().check_invariants();
    }
  }
}

// ---------------------------------------------------------------------------
// StoreRoot
// ---------------------------------------------------------------------------

TEST(StoreRootIntegrity, DamagedSentinelRivIsDetectedFatal) {
  ScopedChecksums on(true);
  StoreHarness h;
  preload(h, 50);
  const auto map = h.store().debug_durable_map();
  EXPECT_THROW(h.crash_corrupt_reopen([&](std::vector<pmem::Pool*> pools) {
    // head_riv lives at root offset 80 — damage there is unrepairable.
    CorruptionPoints::bit_flip(pools[0]->base() + map.root_off + 80, 8, 3);
  }),
               CorruptionError);
  EXPECT_FALSE(h.has_store());
}

TEST(StoreRootIntegrity, ZeroedRootLineIsDetectedFatal) {
  ScopedChecksums on(true);
  StoreHarness h;
  preload(h, 50);
  const auto map = h.store().debug_durable_map();
  // Zeroing the whole second line also zeroes the stamp — the 0-means-
  // unstamped convention would pass, so the null-sentinel check must catch
  // it instead.
  EXPECT_THROW(h.crash_corrupt_reopen([&](std::vector<pmem::Pool*> pools) {
    CorruptionPoints::zero_line(pools[0]->base() + map.root_off + 64, 64, 0);
  }),
               CorruptionError);
}

TEST(StoreRootIntegrity, DamagedIndexModeIsRestoredFromStamp) {
  ScopedChecksums on(true);
  constexpr std::uint64_t kN = 80;
  StoreHarness h;
  preload(h, kN);
  const auto map = h.store().debug_durable_map();
  h.crash_corrupt_reopen([&](std::vector<pmem::Pool*> pools) {
    // index_mode is at root offset 96; the stamp pins its true value, so
    // the substitution fallback repairs instead of refusing.
    auto* mode = reinterpret_cast<std::uint64_t*>(pools[0]->base() +
                                                  map.root_off + 96);
    *mode ^= 1;
  });
  EXPECT_TRUE(h.store().integrity().root_mode_repaired);
  EXPECT_TRUE(h.store().integrity().degraded());
  for (std::uint64_t i = 1; i <= kN; ++i)
    EXPECT_EQ(h.store().search(i * 10 + 1).value_or(0), kVal + i);
  h.store().check_invariants();
}

// ---------------------------------------------------------------------------
// Magazine descriptors
// ---------------------------------------------------------------------------

TEST(MagazineIntegrity, TornDescriptorIsQuarantinedNotTrusted) {
  ScopedChecksums on(true);
  test::ScopedEnv mag_on("UPSL_DISABLE_MAGAZINES", "0");
  constexpr std::uint64_t kN = 400;  // enough inserts to cycle magazines
  StoreHarness h;
  preload(h, kN);
  const auto map = h.store().debug_durable_map();
  h.crash_corrupt_reopen([&](std::vector<pmem::Pool*> pools) {
    // Thread 0's descriptor: epoch@0, packed count@8, alloc_rivs from @16.
    CorruptionPoints::torn_word(pools[0]->base() + map.magazines_off + 16, 8,
                                0xbadbadbadbadbad1ull);
  });
  // Quarantine leaks the descriptor's blocks on purpose; the data must be
  // fully intact either way.
  for (std::uint64_t i = 1; i <= kN; ++i)
    EXPECT_EQ(h.store().search(i * 10 + 1).value_or(0), kVal + i);
  // The magazine scan is deferred to the thread's first allocator call in
  // the new epoch (sync_thread_epoch) — force it with fresh allocations.
  for (std::uint64_t i = 1; i <= 64; ++i)
    h.store().insert(1000000 + i * 10, i);
  const IntegrityReport deep = h.store().verify_deep();
  EXPECT_GE(deep.magazines_quarantined, 1u);
  h.store().check_invariants();
}

// ---------------------------------------------------------------------------
// Session slots
// ---------------------------------------------------------------------------

TEST(SessionIntegrity, DamagedSlotHeaderIsQuarantinedToUnknownSession) {
  ScopedChecksums on(true);
  ScopedDetect detect_on(true);
  constexpr std::uint64_t kClient = 0xc11e47u;
  StoreHarness h;
  preload(h, 30);
  ASSERT_TRUE(h.store().sessions().valid());
  const std::int32_t slot = h.store().sessions().open_session(kClient);
  ASSERT_GE(slot, 0);
  h.store().sessions().record(static_cast<std::uint32_t>(slot), 1, 1, 42);
  h.mark_persisted();

  const auto map = h.store().debug_durable_map();
  const std::size_t slot_off = map.sessions_off + 64 +
                               static_cast<std::size_t>(slot) * (64 + 8 * 32);
  h.crash_corrupt_reopen([&](std::vector<pmem::Pool*> pools) {
    // last_seq lives at slot-header offset 16.
    CorruptionPoints::bit_flip(pools[0]->base() + slot_off + 16, 8, 9);
  });

  EXPECT_EQ(h.store().integrity().sessions_quarantined, 1u);
  EXPECT_TRUE(h.store().integrity().degraded());
  // The damaged session was reported lost, not trusted: the client is
  // unknown and re-handshakes instead of deduplicating over bad state.
  const auto r = h.store().sessions().resolve(kClient, 1);
  EXPECT_EQ(r.state, detect::ResolveResult::State::kUnknownSession);
}

TEST(SessionIntegrity, IntactSlotsSurviveCrashWithChecksumsOn) {
  ScopedChecksums on(true);
  ScopedDetect detect_on(true);
  constexpr std::uint64_t kClient = 0x5e551u;
  StoreHarness h;
  preload(h, 30);
  ASSERT_TRUE(h.store().sessions().valid());
  const std::int32_t slot = h.store().sessions().open_session(kClient);
  ASSERT_GE(slot, 0);
  h.store().sessions().record(static_cast<std::uint32_t>(slot), 7, 1, 99);
  h.mark_persisted();
  h.crash_and_reopen();
  EXPECT_EQ(h.store().integrity().sessions_quarantined, 0u);
  const auto r = h.store().sessions().resolve(kClient, 7);
  EXPECT_EQ(r.state, detect::ResolveResult::State::kApplied);
  EXPECT_EQ(r.result, 99u);
}

// ---------------------------------------------------------------------------
// PMDK tx undo log
// ---------------------------------------------------------------------------

TEST(PmdkIntegrity, CorruptUndoLogRefusesRollback) {
  ScopedChecksums on(true);
  ThreadRegistry::instance().bind(0);
  auto pool = pmem::Pool::create_anonymous(60, 32u << 20);
  pmdk::ObjStore::format(*pool, {});
  {
    pmdk::ObjStore store(*pool);
    const pmdk::Oid obj = store.alloc(64);
    auto* p = reinterpret_cast<std::uint64_t*>(store.direct(obj));
    *p = 111;
    pmem::persist(p, 8);
    store.tx_begin();
    store.tx_add(p, 8);
    *p = 222;
    // Crash with the tx open: reopen must roll back — unless the log is
    // damaged, in which case applying it would spray garbage.
  }
  // Find the live undo entry (kind=1, len=8) and corrupt its payload.
  bool corrupted = false;
  auto* words = reinterpret_cast<std::uint64_t*>(pool->base());
  for (std::size_t w = 0; w < (32u << 20) / 8 - 4 && !corrupted; ++w) {
    if (words[w] == 1 && words[w + 2] == 8 && words[w + 3] == 111) {
      words[w + 3] = 0xdead;  // saved undo bytes no longer match the stamp
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(pmdk::ObjStore reopened(*pool), CorruptionError);
}

TEST(PmdkIntegrity, IntactUndoLogStillRollsBack) {
  ScopedChecksums on(true);
  ThreadRegistry::instance().bind(0);
  auto pool = pmem::Pool::create_anonymous(61, 32u << 20);
  pmdk::ObjStore::format(*pool, {});
  std::uint64_t* p = nullptr;
  {
    pmdk::ObjStore store(*pool);
    const pmdk::Oid obj = store.alloc(64);
    p = reinterpret_cast<std::uint64_t*>(store.direct(obj));
    *p = 111;
    pmem::persist(p, 8);
    store.tx_begin();
    store.tx_add(p, 8);
    *p = 222;
  }
  pmdk::ObjStore reopened(*pool);
  EXPECT_EQ(*p, 111u);
}

// ---------------------------------------------------------------------------
// Kill-switch format compatibility, both directions
// ---------------------------------------------------------------------------

TEST(ChecksumKillSwitch, StoreWrittenOffOpensCleanWithChecksumsOn) {
  constexpr std::uint64_t kN = 60;
  auto h = [] {
    ScopedChecksums off(false);
    auto harness = std::make_unique<StoreHarness>();
    preload(*harness, kN);
    return harness;
  }();
  {
    ScopedChecksums on(true);
    h->clean_reopen();
    EXPECT_FALSE(h->store().integrity().degraded());
    for (std::uint64_t i = 1; i <= kN; ++i)
      EXPECT_EQ(h->store().search(i * 10 + 1).value_or(0), kVal + i);
    // New writes stamp; another checksummed reopen still verifies clean.
    h->store().insert(999983, 7);
    h->clean_reopen();
    EXPECT_FALSE(h->store().integrity().degraded());
    EXPECT_EQ(h->store().search(999983).value_or(0), 7u);
  }
}

TEST(ChecksumKillSwitch, StoreWrittenOnOpensCleanWithChecksumsOff) {
  constexpr std::uint64_t kN = 60;
  auto h = [] {
    ScopedChecksums on(true);
    auto harness = std::make_unique<StoreHarness>();
    preload(*harness, kN);
    return harness;
  }();
  {
    ScopedChecksums off(false);
    h->clean_reopen();
    EXPECT_FALSE(h->store().integrity().degraded());
    for (std::uint64_t i = 1; i <= kN; ++i)
      EXPECT_EQ(h->store().search(i * 10 + 1).value_or(0), kVal + i);
    h->store().check_invariants();
  }
}

// ---------------------------------------------------------------------------
// Stats plumbing
// ---------------------------------------------------------------------------

TEST(IntegrityStats, CountersAndJsonCarryTheNewFields) {
  ScopedChecksums on(true);
  pmem::Stats::instance().reset();
  StoreHarness h;
  preload(h, 120);
  const std::uint64_t riv = h.store().debug_node_riv_for(601);
  ASSERT_NE(riv, 0u);
  char* node = static_cast<char*>(riv::Runtime::instance().to_ptr(riv));
  h.crash_corrupt_reopen([&](std::vector<pmem::Pool*>) {
    CorruptionPoints::bit_flip(node + 24, 8, 11);
  });
  const auto snap = pmem::Stats::instance().snapshot();
  EXPECT_GE(snap.checksum_failures, 1u);
  EXPECT_GE(snap.quarantined_nodes, 1u);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("checksum_failures"), std::string::npos);
  EXPECT_NE(json.find("quarantined_nodes"), std::string::npos);
  EXPECT_NE(json.find("quarantined_sessions"), std::string::npos);
}

}  // namespace
}  // namespace upsl
