// ShardSet tests: durable topology validation, parallel recovery, key
// routing, and the cross-shard k-way scan merge (docs/server.md).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "core/shard_set.hpp"
#include "test_util.hpp"

namespace upsl::core {
namespace {

using test::ShardHarness;
using test::small_options;

class ShardSetTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardSetTest, RoutedOpsLandOnTheMappedShard) {
  ShardHarness h(GetParam());
  ShardSet& set = h.set();
  for (std::uint64_t k = 1; k <= 500; ++k)
    ASSERT_FALSE(set.insert(k, k * 3).has_value());
  for (std::uint64_t k = 1; k <= 500; ++k)
    ASSERT_EQ(*set.search(k), k * 3);

  // Every key must live on exactly the shard the fixed hash names — probe
  // each member store directly.
  for (std::uint64_t k = 1; k <= 500; ++k) {
    const std::uint32_t owner = set.shard_of(k);
    for (std::uint32_t s = 0; s < set.shard_count(); ++s) {
      if (s == owner)
        EXPECT_EQ(*set.shard(s).search(k), k * 3);
      else
        EXPECT_FALSE(set.shard(s).search(k).has_value());
    }
  }
  EXPECT_EQ(set.count_keys(), 500u);
  set.check_invariants();
}

TEST_P(ShardSetTest, KeysSpreadAcrossAllShards) {
  ShardHarness h(GetParam());
  if (GetParam() < 2) GTEST_SKIP() << "needs >= 2 shards";
  ShardSet& set = h.set();
  // Sequential keys — the worst case for a range partition — must hit every
  // shard under the avalanche hash.
  std::set<std::uint32_t> hit;
  for (std::uint64_t k = 1; k <= 256; ++k) hit.insert(set.shard_of(k));
  EXPECT_EQ(hit.size(), set.shard_count());
}

TEST_P(ShardSetTest, TopologyPersistsAcrossReopen) {
  ShardHarness h(GetParam());
  for (std::uint64_t k = 1; k <= 200; ++k) h.set().insert(k, k);
  h.clean_reopen();
  EXPECT_EQ(h.set().shard_count(), GetParam());
  for (std::uint32_t s = 0; s < h.set().shard_count(); ++s) {
    EXPECT_EQ(h.set().shard(s).shard_count(), GetParam());
    EXPECT_EQ(h.set().shard(s).shard_index(), s);
  }
  for (std::uint64_t k = 1; k <= 200; ++k) ASSERT_EQ(*h.set().search(k), k);
}

TEST(ShardSetTopology, SwappedShardPoolsAreRefused) {
  ShardHarness h(4);
  for (std::uint64_t k = 1; k <= 100; ++k) h.set().insert(k, k);

  // Reassemble with shards 1 and 2 swapped: every store opens fine on its
  // own, but position != durable shard_index, so the set must refuse —
  // otherwise those shards would serve each other's key partitions.
  auto pools = h.shard_pools();
  std::swap(pools[1], pools[2]);
  EXPECT_THROW(h.clean_reopen_with(std::move(pools)), std::runtime_error);

  // The correct arrangement still opens and serves everything.
  h.clean_reopen_with(h.shard_pools());
  for (std::uint64_t k = 1; k <= 100; ++k) ASSERT_EQ(*h.set().search(k), k);
}

TEST(ShardSetTopology, WrongShardCountIsRefused) {
  ShardHarness h(4);
  for (std::uint64_t k = 1; k <= 100; ++k) h.set().insert(k, k);

  // Opening a 2-member subset of a durable 4-way topology must throw: each
  // root records shard_count = 4, which disagrees with the 2-way set being
  // assembled.
  auto pools = h.shard_pools();
  pools.resize(2);
  EXPECT_THROW(h.clean_reopen_with(std::move(pools)), std::runtime_error);

  h.clean_reopen_with(h.shard_pools());
  EXPECT_EQ(h.set().shard_count(), 4u);
  for (std::uint64_t k = 1; k <= 100; ++k) ASSERT_EQ(*h.set().search(k), k);
}

TEST_P(ShardSetTest, ParallelCrashRecovery) {
  ShardHarness h(GetParam());
  std::map<std::uint64_t, std::uint64_t> acked;
  for (std::uint64_t k = 1; k <= 400; ++k) {
    h.set().insert(k, k * 7);
    acked[k] = k * 7;
  }
  h.mark_persisted();
  h.crash_and_reopen();
  for (const auto& [k, v] : acked) ASSERT_EQ(*h.set().search(k), v);
  for (std::uint32_t s = 0; s < h.set().shard_count(); ++s) {
    EXPECT_GE(h.set().shard(s).epoch(), 2u);
    EXPECT_GT(h.set().open_ns(s), 0u);
  }
  h.set().check_invariants();
}

// ---- cross-shard scan merge ------------------------------------------------

TEST_P(ShardSetTest, ScanMergesInGlobalKeyOrderAcrossShardBoundaries) {
  ShardHarness h(GetParam());
  ShardSet& set = h.set();
  // Non-contiguous keys so shard runs interleave arbitrarily.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 5; k <= 1200; k += 7) {
    set.insert(k, k + 1);
    keys.push_back(k);
  }
  std::vector<ScanEntry> out;
  const std::size_t n = set.scan(1, 2000, 0, out);
  ASSERT_EQ(n, keys.size());
  ASSERT_EQ(out.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i].key, keys[i]);
    EXPECT_EQ(out[i].value, keys[i] + 1);
    if (i > 0) {
      EXPECT_LT(out[i - 1].key, out[i].key);
    }
  }

  // Sub-range + limit: first 10 keys >= 40.
  out.clear();
  const std::size_t m = set.scan(40, 2000, 10, out);
  ASSERT_EQ(m, 10u);
  std::vector<std::uint64_t> expect;
  for (const std::uint64_t k : keys)
    if (k >= 40 && expect.size() < 10) expect.push_back(k);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].key, expect[i]);
}

TEST_P(ShardSetTest, ScanSkipsTombstonedKeys) {
  ShardHarness h(GetParam());
  ShardSet& set = h.set();
  for (std::uint64_t k = 1; k <= 300; ++k) set.insert(k, k);
  // Tombstone every third key — removals land on whatever shard owns them,
  // so the merge must drop holes from every run.
  for (std::uint64_t k = 3; k <= 300; k += 3)
    ASSERT_TRUE(set.remove(k).has_value());
  std::vector<ScanEntry> out;
  set.scan(1, 300, 0, out);
  ASSERT_EQ(out.size(), 200u);
  for (const auto& e : out) EXPECT_NE(e.key % 3, 0u);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LT(out[i - 1].key, out[i].key);
}

TEST_P(ShardSetTest, ScanWithEmptyShards) {
  ShardHarness h(GetParam());
  ShardSet& set = h.set();
  // Insert exactly one key: every other shard is empty, and the merge must
  // neither block on nor invent entries for the empty runs.
  set.insert(42, 4242);
  std::vector<ScanEntry> out;
  EXPECT_EQ(set.scan(1, 1000, 0, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 42u);
  EXPECT_EQ(out[0].value, 4242u);

  // Fully empty set (the key removed): zero entries, no throw.
  set.remove(42);
  out.clear();
  EXPECT_EQ(set.scan(1, 1000, 0, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST_P(ShardSetTest, MergedScanCursorPropertyDifferential) {
  // Property test for the incremental k-way merge: against a randomized
  // keyset with tombstones, any sequence of random-sized next() pulls with a
  // tiny per-shard refill must reproduce the one-shot scan_merged output
  // exactly — globally ordered, duplicate-free, tombstone-free — and
  // resume_key must support continuing from a *fresh* cursor at any cut.
  ShardHarness h(GetParam(), small_options(4));
  ShardSet& set = h.set();
  Xoshiro256 rng(GetParam() * 101 + 7);
  std::map<std::uint64_t, std::uint64_t> model;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = 1 + rng.next_below(5000);
    if (rng.next_below(4) == 0) {
      set.remove(k);
      model.erase(k);
    } else {
      const std::uint64_t v = rng.next() >> 1;
      set.insert(k, v == 0 ? 1 : v);
      model[k] = v == 0 ? 1 : v;
    }
  }

  std::vector<UPSkipList*> shards;
  for (std::uint32_t s = 0; s < set.shard_count(); ++s)
    shards.push_back(&set.shard(s));

  std::vector<ScanEntry> want;
  scan_merged(shards.data(), set.shard_count(), 1, 5000, 0, want);
  ASSERT_EQ(want.size(), model.size());

  for (int round = 0; round < 3; ++round) {
    MergedScanCursor cur(shards.data(), set.shard_count(), 1, 5000,
                         /*refill=*/3 + round * 5);
    std::vector<ScanEntry> got;
    while (!cur.exhausted()) {
      const std::size_t pull = 1 + rng.next_below(97);
      const std::size_t before = got.size();
      const std::size_t n = cur.next(pull, got);
      ASSERT_EQ(got.size(), before + n);
      if (n == 0) ASSERT_TRUE(cur.exhausted());
    }
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].key, want[i].key) << i;
      ASSERT_EQ(got[i].value, want[i].value) << i;
      if (i > 0) ASSERT_LT(got[i - 1].key, got[i].key) << "dupe at " << i;
    }
  }

  // Truncation + resume from a brand-new cursor (the server's cross-request
  // continuation): cut at random points, restart at resume_key, and require
  // the concatenation to equal the reference with no seam artifacts.
  std::vector<ScanEntry> stitched;
  std::uint64_t lo = 1;
  while (true) {
    MergedScanCursor cur(shards.data(), set.shard_count(), lo, 5000, 4);
    const std::size_t pull = 1 + rng.next_below(200);
    std::size_t n = 0;
    while (n < pull) {
      const std::size_t step = cur.next(pull - n, stitched);
      if (step == 0) break;
      n += step;
    }
    if (cur.exhausted()) break;
    const std::uint64_t resume = cur.resume_key();
    ASSERT_GT(resume, stitched.empty() ? 0 : stitched.back().key);
    lo = resume;
  }
  ASSERT_EQ(stitched.size(), want.size());
  for (std::size_t i = 0; i < stitched.size(); ++i)
    ASSERT_EQ(stitched[i].key, want[i].key) << "stitched seam at " << i;
}

TEST_P(ShardSetTest, ConcurrentRoutedInsertsAcrossShards) {
  ShardHarness h(GetParam(), small_options(8, 12, 16));
  ShardSet& set = h.set();
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 300;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(static_cast<int>(t + 1));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t k = 1 + t * kPerThread + i;
        set.insert(k, k * 2);
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  EXPECT_EQ(set.count_keys(), kThreads * kPerThread);
  for (std::uint64_t k = 1; k <= kThreads * kPerThread; ++k)
    ASSERT_EQ(*set.search(k), k * 2);
  set.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardSetTest, ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace upsl::core
