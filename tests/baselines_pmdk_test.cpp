// Tests for the mini-libpmemobj object store (transactions, allocator,
// crash rollback, pmemlog) and the lock-based skip list baseline built on it.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "lockskiplist/lock_skiplist.hpp"
#include "pmdk/pmemlog.hpp"

namespace upsl {
namespace {

class ObjStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ThreadRegistry::instance().bind(0);
    pool_ = pmem::Pool::create_anonymous(0, 32u << 20, {.crash_tracking = true});
    pmdk::ObjStore::format(*pool_);
    store_ = std::make_unique<pmdk::ObjStore>(*pool_);
    pool_->mark_all_persisted();
  }
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<pmdk::ObjStore> store_;
};

TEST_F(ObjStoreTest, AllocZeroedAndAddressable) {
  const pmdk::Oid oid = store_->alloc(128);
  EXPECT_FALSE(oid.is_null());
  auto* p = store_->as<char>(oid);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(p[i], 0);
  EXPECT_EQ(store_->oid_of(p), oid);
}

TEST_F(ObjStoreTest, FreeListReuse) {
  const pmdk::Oid a = store_->alloc(100);
  store_->free_obj(a, 100);
  const pmdk::Oid b = store_->alloc(100);  // same 128B class
  EXPECT_EQ(a.off, b.off) << "freed block reused";
}

TEST_F(ObjStoreTest, CommittedTxPersists) {
  const pmdk::Oid oid = store_->alloc(64);
  auto* w = store_->as<std::uint64_t>(oid);
  {
    pmdk::ObjStore::Tx tx(*store_);
    store_->tx_add(w, 8);
    pmem::pm_store(*w, std::uint64_t{77});
    tx.commit();
  }
  pool_->simulate_crash();
  EXPECT_EQ(pmem::pm_load(*w), 77u) << "committed writes are durable";
}

TEST_F(ObjStoreTest, AbortRestoresOldData) {
  const pmdk::Oid oid = store_->alloc(64);
  auto* w = store_->as<std::uint64_t>(oid);
  pmem::pm_store(*w, std::uint64_t{1});
  pmem::persist(w, 8);
  {
    pmdk::ObjStore::Tx tx(*store_);
    store_->tx_add(w, 8);
    pmem::pm_store(*w, std::uint64_t{2});
    // no commit: RAII abort
  }
  EXPECT_EQ(pmem::pm_load(*w), 1u);
}

TEST_F(ObjStoreTest, CrashMidTxRollsBackOnRecover) {
  const pmdk::Oid oid = store_->alloc(64);
  auto* w = store_->as<std::uint64_t>(oid);
  pmem::pm_store(*w, std::uint64_t{10});
  pmem::persist(w, 8);
  pool_->mark_all_persisted();

  store_->tx_begin();
  store_->tx_add(w, 8);
  pmem::pm_store(*w, std::uint64_t{20});
  pmem::persist(w, 8);  // new value even persisted — still not committed
  // crash: no commit
  pool_->simulate_crash();
  store_ = std::make_unique<pmdk::ObjStore>(*pool_);  // runs recover()
  EXPECT_EQ(pmem::pm_load(*w), 10u) << "in-flight tx rolled back";
  EXPECT_FALSE(store_->in_tx());
}

TEST_F(ObjStoreTest, TxAllocRolledBackOnAbort) {
  const std::uint64_t used0 = store_->heap_used();
  store_->tx_begin();
  const pmdk::Oid oid = store_->alloc(64);
  store_->tx_abort();
  // The freed block is reusable.
  const pmdk::Oid again = store_->alloc(64);
  EXPECT_EQ(oid.off, again.off);
  store_->free_obj(again, 64);
  EXPECT_GE(store_->heap_used(), used0);
}

TEST_F(ObjStoreTest, RootSlot) {
  const pmdk::Oid oid = store_->alloc(64);
  store_->set_root(oid);
  EXPECT_EQ(store_->root(), oid);
}

TEST(PmemLogTest, AppendAndRecoverCommittedPrefix) {
  auto pool = pmem::Pool::create_anonymous(0, 1 << 20, {.crash_tracking = true});
  auto log = pmdk::PmemLog::format(pool->base(), 64 << 10);
  struct Rec {
    std::uint64_t a, b;
  };
  for (std::uint64_t i = 0; i < 10; ++i) {
    Rec r{i, i * i};
    log.append(&r, sizeof(r));
  }
  // An unflushed append after the crash point is lost; committed prefix kept.
  pool->mark_all_persisted();
  Rec torn{99, 99};
  std::memcpy(log.data() + log.size(), &torn, sizeof(torn));  // no tail bump
  pool->simulate_crash();
  pmdk::PmemLog reopened(pool->base());
  EXPECT_EQ(reopened.size(), 10 * sizeof(Rec));
  std::uint64_t n = 0;
  reopened.for_each<Rec>([&](const Rec& r) {
    EXPECT_EQ(r.b, r.a * r.a);
    ++n;
  });
  EXPECT_EQ(n, 10u);
}

// ---- lock-based skip list ---------------------------------------------------

class LockSkipListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ThreadRegistry::instance().bind(0);
    pool_ = pmem::Pool::create_anonymous(0, 64u << 20, {.crash_tracking = true});
    list_ = lsl::LockSkipList::create(*pool_);
    pool_->mark_all_persisted();
  }
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<lsl::LockSkipList> list_;
};

TEST_F(LockSkipListTest, BasicOps) {
  EXPECT_FALSE(list_->search(5).has_value());
  EXPECT_FALSE(list_->insert(5, 50).has_value());
  EXPECT_EQ(*list_->search(5), 50u);
  EXPECT_EQ(*list_->insert(5, 51), 50u);
  EXPECT_EQ(*list_->remove(5), 51u);
  EXPECT_FALSE(list_->search(5).has_value());
  EXPECT_FALSE(list_->remove(5).has_value());
}

TEST_F(LockSkipListTest, ReferenceModel) {
  std::map<std::uint64_t, std::uint64_t> model;
  Xoshiro256 rng(11);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = 1 + rng.next_below(300);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next() >> 1;
        auto old = list_->insert(key, v);
        auto it = model.find(key);
        EXPECT_EQ(old.has_value(), it != model.end());
        if (old && it != model.end()) {
          EXPECT_EQ(*old, it->second);
        }
        model[key] = v;
        break;
      }
      case 1: {
        auto got = list_->search(key);
        auto it = model.find(key);
        ASSERT_EQ(got.has_value(), it != model.end()) << key;
        if (got) {
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      default: {
        auto rem = list_->remove(key);
        auto it = model.find(key);
        EXPECT_EQ(rem.has_value(), it != model.end());
        if (it != model.end()) model.erase(it);
        break;
      }
    }
  }
  EXPECT_EQ(list_->count_keys(), model.size());
  list_->check_invariants();
}

TEST_F(LockSkipListTest, CrashMidInsertRollsBack) {
  for (std::uint64_t k = 1; k <= 100; ++k) list_->insert(k * 2, k);
  pool_->mark_all_persisted();
  // Simulate a crash with a dangling transaction: begin one manually and
  // mutate a next pointer, as a crashed insert would have.
  auto& store = list_->store();
  store.tx_begin();
  // (the tx log holds nothing destructive; rollback must still clear it)
  pool_->simulate_crash();
  list_ = lsl::LockSkipList::open(*pool_);
  EXPECT_EQ(list_->count_keys(), 100u);
  for (std::uint64_t k = 1; k <= 100; ++k) EXPECT_EQ(*list_->search(k * 2), k);
  list_->check_invariants();
  EXPECT_FALSE(list_->insert(1001, 1).has_value());
}

TEST_F(LockSkipListTest, ConcurrentMixedOps) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(t);
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 5);
      for (int i = 0; i < 1500; ++i) {
        const std::uint64_t key = 1 + rng.next_below(128);
        switch (rng.next_below(4)) {
          case 0:
            list_->insert(key, key * 3);
            break;
          case 1: {
            auto v = list_->search(key);
            if (v) {
              ASSERT_EQ(*v, key * 3);
            }
            break;
          }
          default:
            if (rng.next_below(4) == 0) {
              list_->remove(key);
            } else {
              list_->insert(key, key * 3);
            }
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
  list_->check_invariants();
}

}  // namespace
}  // namespace upsl
