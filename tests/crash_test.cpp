// Crash-recovery tests for UPSkipList (thesis §6.1): inject a crash at every
// instrumented point of every operation, drop all unflushed cache lines
// (full-power-failure semantics), reconnect, and verify
//  (1) durability: every operation acknowledged before the crash is intact,
//  (2) consistency: structural invariants hold after recovery runs,
//  (3) completeness: interrupted inserts/splits are finished on discovery,
//  (4) no leaks: every block is accounted for after deferred log recovery.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "pmem/ack_batch.hpp"
#include "test_util.hpp"

namespace upsl::core {
namespace {

using test::StoreHarness;
using test::small_options;

/// All crash points reachable from insert-heavy workloads.
const char* const kCorePoints[] = {
    "core.head_succ_made",     "core.head_succ_linked",
    "core.slot_claimed",       "core.updated_value",
    "core.split_locked",       "core.split_node_made",
    "core.split_linked",       "core.split_erased",
    "core.linked_level",       "alloc.after_log",
    "alloc.after_pop",         "alloc.mag_refill_logged",
    "alloc.mag_refill_popped", "core.mod_built",
    "core.mod_prepublish",     "core.mod_published",
};

/// Points on the legacy per-block allocation path, which the magazine fast
/// path bypasses: run their workloads with magazines disabled so they still
/// fire.
bool needs_legacy_allocator(const char* point) {
  return std::string(point) == "alloc.after_pop";
}

/// Points on the persistent-tower linking path, which the DRAM search layer
/// bypasses: pin those workloads to UPSL_DISABLE_DRAM_INDEX=1 so they still
/// fire (the DRAM-mode insert/recovery paths are covered by
/// dram_index_test and the torture shards).
bool needs_persistent_towers(const char* point) {
  return std::string(point) == "core.linked_level";
}

/// The one operation in flight when a crash fired. Unacknowledged, so
/// under strict linearizability it may take effect or not (§2.2) — e.g. a
/// crash right after update_value's persist leaves its value durable.
struct InflightOp {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

/// Runs inserts until the armed crash point fires (or ops run out).
/// Returns the acknowledged key->value map; `inflight` (when non-null)
/// receives the operation interrupted by the crash.
std::map<std::uint64_t, std::uint64_t> insert_until_crash(
    core::UPSkipList& store, std::uint64_t tag, std::uint64_t skip,
    int max_ops, std::uint64_t seed, bool* fired,
    InflightOp* inflight = nullptr) {
  CrashPoints::instance().reset();
  CrashPoints::instance().arm(tag, skip);
  std::map<std::uint64_t, std::uint64_t> acked;
  Xoshiro256 rng(seed);
  *fired = false;
  try {
    for (int i = 0; i < max_ops; ++i) {
      const std::uint64_t key = 1 + rng.next_below(500);
      const std::uint64_t value = 1 + (rng.next() >> 1);
      if (inflight != nullptr) *inflight = {key, value};
      store.insert(key, value);
      acked[key] = value;  // acknowledged: must survive any later crash
    }
  } catch (const CrashException&) {
    *fired = true;
  }
  CrashPoints::instance().disarm();
  return acked;
}

void verify_recovered(StoreHarness& h,
                      const std::map<std::uint64_t, std::uint64_t>& acked,
                      const InflightOp* inflight = nullptr) {
  // Durability of acknowledged operations (strict linearizability: the
  // crash is the deadline by which completed operations must have taken
  // effect, §2.2). The in-flight operation's key admits both outcomes.
  for (const auto& [k, v] : acked) {
    auto got = h.store().search(k);
    ASSERT_TRUE(got.has_value()) << "acknowledged key " << k << " lost";
    if (inflight != nullptr && k == inflight->key) {
      EXPECT_TRUE(*got == v || *got == inflight->value)
          << "key " << k << ": got " << *got << ", want acked " << v
          << " or in-flight " << inflight->value;
    } else {
      EXPECT_EQ(*got, v) << "acknowledged value lost for key " << k;
    }
  }
  // The store must remain fully usable: mixed follow-up workload.
  for (std::uint64_t k = 10001; k <= 10100; ++k)
    EXPECT_FALSE(h.store().insert(k, k).has_value());
  for (std::uint64_t k = 10001; k <= 10100; ++k)
    EXPECT_EQ(*h.store().search(k), k);
  for (std::uint64_t k = 10001; k <= 10100; k += 2) h.store().remove(k);
  h.store().check_invariants();
  // After this thread id allocated again, its stale log has been resolved —
  // nothing may be leaked (§4.1.4).
  h.store().check_no_leaks();
}

class CrashAtPoint : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashAtPoint, InsertWorkloadRecovers) {
  // Several skip counts per point: hit the point in different structural
  // contexts (first occurrence, mid-churn occurrence). Rare points (e.g.
  // head-successor creation, which happens only ~ln(keyspace) times) simply
  // stop firing at higher skips.
  bool fired_any = false;
  const bool legacy = needs_legacy_allocator(GetParam());
  const bool env_was_set = std::getenv("UPSL_DISABLE_MAGAZINES") != nullptr;
  if (legacy) ::setenv("UPSL_DISABLE_MAGAZINES", "1", 1);
  std::optional<test::ScopedEnv> tower_pin;
  if (needs_persistent_towers(GetParam()))
    tower_pin.emplace("UPSL_DISABLE_DRAM_INDEX", "1");
  for (std::uint64_t skip : {0u, 5u, 23u}) {
    SCOPED_TRACE(std::string(GetParam()) + " skip=" + std::to_string(skip));
    StoreHarness h(small_options(/*keys_per_node=*/4, /*max_height=*/10));
    bool fired = false;
    InflightOp inflight;
    auto acked = insert_until_crash(h.store(), crash_tag(GetParam()), skip,
                                    4000, /*seed=*/skip + 7, &fired, &inflight);
    if (!fired) break;
    fired_any = true;
    h.crash_and_reopen();
    verify_recovered(h, acked, &inflight);
  }
  if (legacy && !env_was_set) ::unsetenv("UPSL_DISABLE_MAGAZINES");
  if (!fired_any) GTEST_SKIP() << "crash point not reached by this workload";
}

INSTANTIATE_TEST_SUITE_P(AllPoints, CrashAtPoint,
                         ::testing::ValuesIn(kCorePoints),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s)
                             if (c == '.') c = '_';
                           return s;
                         });

TEST(Crash, AnyNthPersistBoundary) {
  // Tag 0 matches every crash point: crash at the Nth instrumented step,
  // sweeping N — a coarse-grained analogue of exhaustive crash-state
  // enumeration.
  for (std::uint64_t n = 0; n < 60; n += 3) {
    SCOPED_TRACE("nth=" + std::to_string(n));
    StoreHarness h(small_options(4, 10));
    bool fired = false;
    InflightOp inflight;
    auto acked =
        insert_until_crash(h.store(), 0, n, 4000, n + 1, &fired, &inflight);
    if (!fired) break;
    h.crash_and_reopen();
    verify_recovered(h, acked, &inflight);
  }
}

TEST(Crash, RandomEvictionSurvival) {
  // Random-eviction crashes: an arbitrary subset of unflushed lines became
  // durable anyway (real caches evict without being asked). Acknowledged
  // operations must still be intact, recovery must still converge.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    StoreHarness h(small_options(4, 10));
    bool fired = false;
    auto acked = insert_until_crash(h.store(), crash_tag("core.split_linked"),
                                    seed, 4000, seed, &fired);
    if (!fired) GTEST_SKIP();
    h.crash_and_reopen(pmem::CrashMode::kRandomEvict, seed);
    verify_recovered(h, acked);
  }
}

TEST(Crash, InterruptedSplitLeavesNoDuplicates) {
  StoreHarness h(small_options(4, 10));
  bool fired = false;
  auto acked = insert_until_crash(h.store(), crash_tag("core.split_linked"), 0,
                                  4000, 3, &fired);
  ASSERT_TRUE(fired);
  h.crash_and_reopen();
  // Scanning forces traversal over the half-split node; split recovery must
  // erase the duplicated upper half before any key can be seen twice.
  std::vector<ScanEntry> out;
  h.store().scan(1, kTailKey - 1, out);
  for (std::size_t i = 1; i < out.size(); ++i)
    ASSERT_LT(out[i - 1].key, out[i].key) << "duplicate key after recovery";
  verify_recovered(h, acked);
}

TEST(Crash, InterruptedTowerIsRebuiltOnTraversal) {
  // Exercises the persistent tower-linking repair, which only exists with
  // the DRAM index off (its DRAM-mode analogue lives in dram_index_test).
  test::ScopedEnv tower_pin("UPSL_DISABLE_DRAM_INDEX", "1");
  StoreHarness h(small_options(4, 10));
  bool fired = false;
  auto acked = insert_until_crash(h.store(), crash_tag("core.linked_level"), 2,
                                  4000, 11, &fired);
  ASSERT_TRUE(fired);
  h.crash_and_reopen();
  // Touch every key so traversals discover and repair every stale node
  // (search budget = 1 repair per traversal; repeat to drain).
  for (int round = 0; round < 64; ++round)
    for (const auto& [k, v] : acked) h.store().search(k);
  for (const auto& [k, v] : acked)
    EXPECT_TRUE(h.store().tower_complete(k)) << "key " << k;
  verify_recovered(h, acked);
}

TEST(Crash, RepeatedCrashesAcrossEpochs) {
  // Crash, recover a little, crash again — five failure-free epochs. The
  // epoch mechanism must keep recoveries of recoveries sound (idempotent
  // DeleteLinkedObject, §4.3.3).
  StoreHarness h(small_options(4, 10));
  std::map<std::uint64_t, std::uint64_t> acked;
  for (std::uint64_t round = 0; round < 5; ++round) {
    bool fired = false;
    InflightOp inflight;
    auto more = insert_until_crash(h.store(), 0, 10 + round * 7, 2000,
                                   round + 21, &fired, &inflight);
    for (const auto& [k, v] : more) acked[k] = v;
    h.crash_and_reopen();
    EXPECT_EQ(h.store().epoch(), 2 + round);
    if (!fired) continue;
    // Resolve this round's in-flight op before the next round can bury it:
    // either outcome is legal, and the read persists whichever value
    // survived (reader-forced persistence), pinning it for later rounds.
    auto got = h.store().search(inflight.key);
    const auto it = acked.find(inflight.key);
    if (got.has_value() && *got == inflight.value) {
      acked[inflight.key] = inflight.value;
    } else if (it != acked.end()) {
      ASSERT_TRUE(got.has_value()) << "acked key " << inflight.key << " lost";
      EXPECT_EQ(*got, it->second) << "key " << inflight.key;
    } else {
      EXPECT_FALSE(got.has_value())
          << "key " << inflight.key << " recovered to a value that was "
          << "neither absent nor the in-flight write";
    }
  }
  verify_recovered(h, acked);
}

TEST(Crash, CrashDuringRecoveryItself) {
  // First crash interrupts a split; second crash interrupts the *recovery*
  // of that split. Recovery must be re-runnable (§4.3.3: "allowing recovery
  // from a failed recovery").
  StoreHarness h(small_options(4, 10));
  bool fired = false;
  auto acked = insert_until_crash(h.store(), crash_tag("core.split_linked"), 0,
                                  4000, 5, &fired);
  ASSERT_TRUE(fired);
  h.crash_and_reopen();
  CrashPoints::instance().arm(crash_tag("core.split_recovered"));
  try {
    for (const auto& [k, v] : acked) h.store().search(k);
    // The recovery point may legitimately not fire if the split completed.
  } catch (const CrashException&) {
  }
  CrashPoints::instance().disarm();
  h.crash_and_reopen();
  verify_recovered(h, acked);
}

/// Crash points on the recovery paths themselves: the nested-crash sweep
/// arms each of these while the recovery of an earlier crash is being
/// driven, so recovery is interrupted *inside* recovery.
const char* const kRecoveryPoints[] = {
    "core.recovery_draining",     "core.recovery_claimed",
    "core.split_recover_scan",    "core.split_recovered",
    "core.insert_recovered",      "core.node_recovered",
    "alloc.mag_recover_mid",      "alloc.mag_reclaim_block",
    "alloc.mag_recover_retiring", "alloc.stale_log_resolved",
    "alloc.recover_converted",    "alloc.sweep_pending",
};

class CrashDuringRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashDuringRecovery, NestedRecoveryCrashesConverge) {
  // First crash lands mid-workload (anywhere); recovery is then re-crashed
  // at the parameterized recovery point three times in a row, alternating
  // crash modes. However many times recovery is interrupted, the next pass
  // must converge: acked writes intact, invariants hold, and exact block
  // conservation (no leak, no double-free) — i.e. every recovery step is
  // idempotent. The point may legitimately stop firing once the repair it
  // guards has completed.
  for (std::uint64_t skip : {0u, 2u}) {
    SCOPED_TRACE(std::string(GetParam()) + " skip=" + std::to_string(skip));
    StoreHarness h(small_options(/*keys_per_node=*/4, /*max_height=*/10));
    bool fired = false;
    InflightOp inflight;
    auto acked = insert_until_crash(h.store(), 0, 150 + skip * 77, 4000,
                                    11 + skip, &fired, &inflight);
    ASSERT_TRUE(fired);
    h.crash_and_reopen();
    for (int round = 0; round < 3; ++round) {
      CrashPoints::instance().arm(crash_tag(GetParam()), skip);
      try {
        // Searches claim and repair stale nodes; the fresh-range inserts
        // additionally run the deferred allocator recovery (magazine scan,
        // stale log, pending-chunk sweep) and allocate new blocks.
        for (const auto& [k, v] : acked) h.store().search(k);
        const std::uint64_t base = 20000 + static_cast<std::uint64_t>(round) * 100;
        for (std::uint64_t k = base; k < base + 8; ++k) h.store().insert(k, k);
      } catch (const CrashException&) {
      }
      CrashPoints::instance().disarm();
      h.crash_and_reopen(round % 2 == 0 ? pmem::CrashMode::kRandomEvict
                                        : pmem::CrashMode::kDiscardUnflushed,
                         static_cast<std::uint64_t>(round) + 3);
    }
    verify_recovered(h, acked, &inflight);
  }
}

INSTANTIATE_TEST_SUITE_P(RecoverySweep, CrashDuringRecovery,
                         ::testing::ValuesIn(kRecoveryPoints));

TEST(Crash, MagazineRecoveryCrashConservesBlocks) {
  // Crash while the magazine fast path has live descriptor slots, then
  // crash again *inside* the magazine descriptor recovery
  // (alloc.mag_recover_mid sits between the alloc-side and return-side
  // scans). After the second recovery pass, every block must be accounted
  // for: reclaim guards must tolerate the half-scanned descriptor without
  // leaking or double-freeing (§4.1.4 extended to the magazine layer).
  if (std::getenv("UPSL_DISABLE_MAGAZINES") != nullptr)
    GTEST_SKIP() << "magazine fast path disabled; refill points cannot fire";
  StoreHarness h(small_options(/*keys_per_node=*/4, /*max_height=*/10));
  bool fired = false;
  auto acked = insert_until_crash(
      h.store(), crash_tag("alloc.mag_refill_popped"), 2, 4000, 17, &fired);
  ASSERT_TRUE(fired) << "magazine refill never happened";
  h.crash_and_reopen();
  CrashPoints::instance().arm(crash_tag("alloc.mag_recover_mid"));
  try {
    // First allocation by this thread id triggers the deferred magazine
    // recovery, which the armed point interrupts mid-scan.
    for (std::uint64_t k = 30000; k < 30016; ++k) h.store().insert(k, k);
  } catch (const CrashException&) {
  }
  EXPECT_TRUE(CrashPoints::instance().fired());
  CrashPoints::instance().disarm();
  h.crash_and_reopen();
  // Second (uninterrupted) recovery pass, then exact conservation.
  verify_recovered(h, acked);
  // A third recovery epoch must converge to the same accounting.
  h.crash_and_reopen();
  for (std::uint64_t k = 31000; k < 31008; ++k) h.store().insert(k, k);
  h.store().check_invariants();
  h.store().check_no_leaks();
}

TEST(Crash, DanglingArenaTailRepairedBeforeReuse) {
  // A crash inside LinkInTail between the chain CAS and the tail advance
  // can leave the CAS line durable on its own under partial-eviction
  // crashes, so ah.tail lags mid-list. Pops never consult the tail, so a
  // later refill can pop the lagging tail block itself — after which every
  // chain recovery links through ah.tail is orphaned, unreachable from the
  // head. The per-epoch tail repair must re-anchor the tail before any pop.
  // Sweep eviction seeds: each gives a different surviving-line pattern.
  for (std::uint64_t evict_seed = 1; evict_seed <= 6; ++evict_seed) {
    SCOPED_TRACE("evict_seed " + std::to_string(evict_seed));
    StoreHarness h(small_options(/*keys_per_node=*/4, /*max_height=*/10));
    // Wide keyspace: enough nodes to exhaust the bootstrap chunk so chunk
    // provisioning (and with it LinkInTail) is guaranteed to run.
    CrashPoints::instance().reset();
    CrashPoints::instance().arm(crash_tag("alloc.link_after_cas"));
    bool fired = false;
    std::map<std::uint64_t, std::uint64_t> acked;
    try {
      for (std::uint64_t k = 1; k <= 4000; ++k) {
        h.store().insert(k * 7, k);
        acked[k * 7] = k;
      }
    } catch (const CrashException&) {
      fired = true;
    }
    CrashPoints::instance().disarm();
    ASSERT_TRUE(fired) << "workload never reached LinkInTail";
    h.crash_and_reopen(pmem::CrashMode::kRandomEvict, evict_seed);
    // Recovery + refills: without the repair these pops could consume the
    // lagging tail block.
    for (std::uint64_t k = 100000; k < 100100; ++k) h.store().insert(k, k);
    // Crash again mid-magazine so the next epoch's recovery must reclaim
    // blocks via LinkInTail — exactly the links a dangling tail orphans.
    CrashPoints::instance().arm(crash_tag("alloc.mag_refill_popped"));
    try {
      for (std::uint64_t k = 200000; k < 204000; ++k) h.store().insert(k, k);
    } catch (const CrashException&) {
    }
    CrashPoints::instance().disarm();
    h.crash_and_reopen(pmem::CrashMode::kDiscardUnflushed, evict_seed + 100);
    verify_recovered(h, acked);
  }
}

TEST(Crash, DeferredAckLinesLostBeforeTheGroupFence) {
  // MOD write path + group commit (docs/write-path.md): a batch's
  // ack-gating lines are handed off via take_lines() and only become
  // durable at the committer's fence. Crashing after the handoff but
  // before that fence (modeled by dropping the lines) must leave every op
  // in the batch unacked-in-flight: each may have taken effect or not,
  // but never partially, and recovery must converge.
  if (!pmem::mod_writes_enabled())
    GTEST_SKIP() << "legacy ordered write path: nothing defers";
  StoreHarness h(small_options(4, 10));
  for (std::uint64_t k = 1; k <= 40; ++k) h.store().insert(k, k);
  h.mark_persisted();
  {
    pmem::AckBatch ab;
    h.store().insert(7, 100);    // update of a durable value
    h.store().insert(1000, 5);   // fresh insert (out-of-place publish)
    h.store().remove(9);         // tombstone write
    auto lines = ab.take_lines();  // the ticket the fence never covered
    EXPECT_GT(lines.size(), 0u);
  }
  h.crash_and_reopen();
  auto v7 = h.store().search(7);
  ASSERT_TRUE(v7.has_value());
  EXPECT_TRUE(*v7 == 7 || *v7 == 100) << *v7;
  auto v1000 = h.store().search(1000);
  EXPECT_TRUE(!v1000.has_value() || *v1000 == 5);
  auto v9 = h.store().search(9);
  EXPECT_TRUE(!v9.has_value() || *v9 == 9);
  // The untouched preload must be fully intact, and the store usable.
  for (std::uint64_t k = 1; k <= 40; ++k) {
    if (k == 7 || k == 9) continue;
    EXPECT_EQ(*h.store().search(k), k);
  }
  // Fresh allocations run the deferred allocator recovery for this thread
  // id; only then is exact block conservation checkable.
  for (std::uint64_t k = 2000; k < 2050; ++k) h.store().insert(k, k);
  h.store().check_invariants();
  h.store().check_no_leaks();
}

TEST(Crash, ModPublishSurvivesRandomEviction) {
  // Partial-eviction crashes at the publish boundary: an arbitrary subset
  // of the out-of-place node's unordered writebacks may have retired on
  // their own. The epoch guard (stale-epoch claim + torn-slot scrub) must
  // make every surviving combination recoverable.
  for (const char* point : {"core.mod_built", "core.mod_published"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string(point) + " seed=" + std::to_string(seed));
      StoreHarness h(small_options(4, 10));
      bool fired = false;
      auto acked = insert_until_crash(h.store(), crash_tag(point), seed, 4000,
                                      seed + 40, &fired);
      if (!fired) GTEST_SKIP() << "mod write path disabled";
      h.crash_and_reopen(pmem::CrashMode::kRandomEvict, seed);
      verify_recovered(h, acked);
    }
  }
}

TEST(Crash, UpdateDurabilityAcknowledged) {
  // An acknowledged update must survive; an unacknowledged one may or may
  // not, but the store must return one of the two values, never garbage.
  StoreHarness h(small_options(4, 10));
  h.store().insert(42, 1);
  h.mark_persisted();
  CrashPoints::instance().arm(crash_tag("core.updated_value"));
  try {
    h.store().insert(42, 2);  // crashes right after the CAS+persist
  } catch (const CrashException&) {
  }
  CrashPoints::instance().disarm();
  h.crash_and_reopen();
  auto got = h.store().search(42);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(*got == 1 || *got == 2) << *got;
}

TEST(Crash, RemoveDurability) {
  StoreHarness h(small_options(4, 10));
  for (std::uint64_t k = 1; k <= 50; ++k) h.store().insert(k, k);
  for (std::uint64_t k = 1; k <= 50; k += 2) {
    auto removed = h.store().remove(k);
    ASSERT_TRUE(removed.has_value());
  }
  h.crash_and_reopen();  // removals were acknowledged -> durable
  for (std::uint64_t k = 1; k <= 50; ++k) {
    if (k % 2 == 1) {
      EXPECT_FALSE(h.store().search(k).has_value()) << k;
    } else {
      EXPECT_EQ(*h.store().search(k), k);
    }
  }
}

TEST(Crash, EpochBumpIsTheOnlyRecoveryCost) {
  // Table 5.4's claim: reconnect + one persisted epoch increment, no scan.
  StoreHarness h(small_options(8, 12));
  for (std::uint64_t k = 1; k <= 2000; ++k) h.store().insert(k, k);
  pmem::Stats::instance().reset();
  h.crash_and_reopen();
  // Opening persisted only O(1) lines regardless of the 2000 keys.
  EXPECT_LE(pmem::Stats::instance().persist_calls.load(), 8u);
  EXPECT_EQ(*h.store().search(1234), 1234u);
}

}  // namespace
}  // namespace upsl::core
