// Durable client-session table tests (docs/detectability.md): format /
// recover roundtrips, (client_id, seq) dedup semantics, result-ring aging,
// session churn under a tiny slot cap with epoch-ordered eviction, the
// UPSL_DISABLE_DETECT kill switch, and crash sweeps of the two session
// crash points — detect.slot_claimed (mid-claim) and detect.slot_published
// (mid-record) — under both crash modes.
#include <gtest/gtest.h>

#include <optional>

#include "common/crashpoint.hpp"
#include "core/upskiplist.hpp"
#include "pmem/ack_batch.hpp"
#include "test_util.hpp"

namespace upsl::core {
namespace {

using detect::ResolveResult;
using detect::SessionTable;
using test::ScopedDetect;
using test::small_options;
using test::StoreHarness;
using State = ResolveResult::State;

TEST(Detect, FormatRecoverRoundtrip) {
  ScopedDetect on(true);
  StoreHarness h;
  SessionTable& t = h.store().sessions();
  ASSERT_TRUE(t.valid());
  EXPECT_GT(t.slot_count(), 0u);
  EXPECT_EQ(t.recovered_sessions(), 0u);

  const std::int32_t slot = t.open_session(42);
  ASSERT_GE(slot, 0);
  auto r = h.store().insert_detect(10, 100, slot, /*seq=*/1);
  EXPECT_FALSE(r.duplicate);
  EXPECT_EQ(r.previous, std::nullopt);
  r = h.store().insert_detect(10, 200, slot, /*seq=*/2);
  EXPECT_FALSE(r.duplicate);
  EXPECT_EQ(r.previous, std::optional<std::uint64_t>(100));

  h.clean_reopen();
  SessionTable& t2 = h.store().sessions();
  ASSERT_TRUE(t2.valid());
  EXPECT_EQ(t2.recovered_sessions(), 1u);
  // Reconnect lands on the same durable slot with its dedup state intact.
  EXPECT_EQ(t2.open_session(42), slot);
  const ResolveResult res = t2.resolve(42, 2);
  EXPECT_EQ(res.state, State::kApplied);
  EXPECT_EQ(res.has_previous, 1u);
  EXPECT_EQ(res.result, 100u);
}

TEST(Detect, DedupReplaysOriginalResult) {
  ScopedDetect on(true);
  StoreHarness h;
  const std::int32_t slot = h.store().sessions().open_session(7);
  ASSERT_GE(slot, 0);

  auto first = h.store().insert_detect(5, 55, slot, 1);
  EXPECT_FALSE(first.duplicate);
  // Same seq, different payload: the mutation must NOT run again and the
  // answer must be byte-identical to the original.
  auto dup = h.store().insert_detect(5, 999, slot, 1);
  EXPECT_TRUE(dup.duplicate);
  EXPECT_TRUE(dup.result_known);
  EXPECT_EQ(dup.previous, first.previous);
  EXPECT_EQ(*h.store().search(5), 55u);

  auto rm = h.store().remove_detect(5, slot, 2);
  EXPECT_FALSE(rm.duplicate);
  EXPECT_EQ(rm.previous, std::optional<std::uint64_t>(55));
  auto rmdup = h.store().remove_detect(5, slot, 2);
  EXPECT_TRUE(rmdup.duplicate);
  EXPECT_EQ(rmdup.previous, std::optional<std::uint64_t>(55));
  EXPECT_FALSE(h.store().contains(5));

  // A detectable remove of an absent key still dirties the session slot:
  // its not-found answer must dedup like any other result.
  auto miss = h.store().remove_detect(777, slot, 3);
  EXPECT_FALSE(miss.duplicate);
  EXPECT_EQ(miss.previous, std::nullopt);
  auto missdup = h.store().remove_detect(777, slot, 3);
  EXPECT_TRUE(missdup.duplicate);
  EXPECT_EQ(missdup.previous, std::nullopt);

  EXPECT_EQ(h.store().sessions().resolve(9999, 1).state,
            State::kUnknownSession);
  EXPECT_EQ(h.store().sessions().resolve(7, 50).state, State::kNotApplied);
}

TEST(Detect, SeqZeroIsReservedNeverAppliedNeverRecorded) {
  ScopedDetect on(true);
  StoreHarness h;
  SessionTable& t = h.store().sessions();
  const std::int32_t slot = t.open_session(7);
  ASSERT_GE(slot, 0);
  const auto uslot = static_cast<std::uint32_t>(slot);

  // On a fresh slot, seq 0 aliases the ring's all-zero empty entries: it
  // must answer not-applied, never a fabricated "applied with result 0".
  EXPECT_EQ(t.resolve(7, 0).state, State::kNotApplied);

  // Recording under the reserved seq says nothing durable.
  t.record(uslot, 0, 1, 123);
  EXPECT_EQ(t.last_seq(uslot), 0u);
  EXPECT_EQ(t.resolve(7, 0).state, State::kNotApplied);

  // Real seqs are unaffected, and seq 0 stays not-applied beside them.
  EXPECT_FALSE(h.store().insert_detect(1, 10, slot, 1).duplicate);
  EXPECT_EQ(t.resolve(7, 1).state, State::kApplied);
  EXPECT_EQ(t.resolve(7, 0).state, State::kNotApplied);
}

TEST(Detect, ResultRingAgesOutToAppliedUnknown) {
  ScopedDetect on(true);
  StoreHarness h;
  const std::int32_t slot = h.store().sessions().open_session(7);
  ASSERT_GE(slot, 0);
  for (std::uint64_t seq = 1; seq <= SessionTable::kRingSize + 2; ++seq)
    h.store().insert_detect(seq, seq * 10, slot, seq);

  // seq 1's ring entry was overwritten by seq 1 + kRingSize: known applied,
  // result gone. The mutation still must not re-run.
  EXPECT_EQ(h.store().sessions().resolve(7, 1).state, State::kAppliedUnknown);
  auto d = h.store().insert_detect(1, 424242, slot, 1);
  EXPECT_TRUE(d.duplicate);
  EXPECT_FALSE(d.result_known);
  EXPECT_EQ(*h.store().search(1), 10u);

  // Recent seqs still replay exact results.
  const auto r =
      h.store().sessions().resolve(7, SessionTable::kRingSize + 2);
  EXPECT_EQ(r.state, State::kApplied);
  EXPECT_EQ(r.has_previous, 0u);
}

TEST(Detect, SessionChurnEvictsOldestEpochAndResetsDedup) {
  ScopedDetect on(true);
  core::Options o = small_options();
  o.session_slots = 2;  // tiny cap so three clients churn the table
  StoreHarness h(o);
  SessionTable& t = h.store().sessions();
  ASSERT_TRUE(t.valid());
  ASSERT_EQ(t.slot_count(), 2u);

  const std::int32_t a = t.open_session(1);
  const std::int32_t b = t.open_session(2);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_NE(a, b);
  h.store().insert_detect(100, 1000, a, /*seq=*/1);

  // Client 3 must evict the oldest claim (client 1), not client 2.
  const std::int32_t c = t.open_session(3);
  EXPECT_EQ(c, a);
  EXPECT_EQ(t.resolve(1, 1).state, State::kUnknownSession);
  EXPECT_EQ(t.resolve(2, 1).state, State::kNotApplied);

  // Client 1 reconnects onto a freshly claimed slot (evicting client 2 now):
  // its old seqs are gone — the new session starts a clean dedup window, so
  // seq 1 is "not applied" again rather than a stale kApplied hit.
  const std::int32_t a2 = t.open_session(1);
  EXPECT_EQ(a2, b);
  EXPECT_EQ(t.resolve(1, 1).state, State::kNotApplied);
  auto d = h.store().insert_detect(100, 2000, a2, /*seq=*/1);
  EXPECT_FALSE(d.duplicate);
  EXPECT_EQ(d.previous, std::optional<std::uint64_t>(1000));

  // Claim stamps survive recovery: a post-reopen claim must not reuse an
  // epoch that would invert the eviction order.
  const std::uint64_t pre =
      t.session_epoch(static_cast<std::uint32_t>(a2));
  h.clean_reopen();
  SessionTable& t2 = h.store().sessions();
  EXPECT_EQ(t2.recovered_sessions(), 2u);
  const std::int32_t e = t2.open_session(9);
  ASSERT_GE(e, 0);
  EXPECT_GT(t2.session_epoch(static_cast<std::uint32_t>(e)), pre);
}

TEST(Detect, KillSwitchDegradesToPlainOps) {
  ScopedDetect off(false);
  StoreHarness h;
  // Table may exist durably, but the switch turns every entry point into
  // the plain path: no sessions, no dedup, no resolve answers.
  EXPECT_EQ(h.store().sessions().open_session(42), -1);
  auto r1 = h.store().insert_detect(10, 100, /*slot=*/-1, /*seq=*/1);
  EXPECT_FALSE(r1.duplicate);
  auto r2 = h.store().insert_detect(10, 200, /*slot=*/-1, /*seq=*/1);
  EXPECT_FALSE(r2.duplicate);  // same seq applied twice: plain semantics
  EXPECT_EQ(r2.previous, std::optional<std::uint64_t>(100));
  EXPECT_EQ(*h.store().search(10), 200u);
  EXPECT_EQ(h.store().sessions().resolve(42, 1).state,
            State::kUnknownSession);
}

/// Crash mid-claim (detect.slot_claimed fires after the victim was retired
/// and the slot reset, before the new client_id is published): after
/// recovery the slot must be free, neither the evictee nor the claimant may
/// resolve, and both can open fresh sessions.
class DetectClaimCrash : public ::testing::TestWithParam<pmem::CrashMode> {};

TEST_P(DetectClaimCrash, MidClaimLeavesNoOwner) {
  ScopedDetect on(true);
  core::Options o = small_options();
  o.session_slots = 1;  // every new client evicts the incumbent
  StoreHarness h(o);
  const std::int32_t a = h.store().sessions().open_session(1);
  ASSERT_EQ(a, 0);
  h.store().insert_detect(100, 1000, a, /*seq=*/1);
  h.mark_persisted();

  CrashPoints::instance().arm(crash_tag("detect.slot_claimed"));
  EXPECT_THROW(h.store().sessions().open_session(2), CrashException);
  CrashPoints::instance().reset();
  h.crash_and_reopen(GetParam());

  SessionTable& t = h.store().sessions();
  ASSERT_TRUE(t.valid());
  // The incumbent was durably retired before the crash point and the new
  // owner never published: the table holds no session for either client.
  EXPECT_EQ(t.recovered_sessions(), 0u);
  EXPECT_EQ(t.resolve(1, 1).state, State::kUnknownSession);
  EXPECT_EQ(t.resolve(2, 1).state, State::kUnknownSession);
  // Both clients can claim fresh sessions with clean dedup windows.
  const std::int32_t b = t.open_session(2);
  ASSERT_GE(b, 0);
  auto d = h.store().insert_detect(200, 2000, b, /*seq=*/1);
  EXPECT_FALSE(d.duplicate);
}

INSTANTIATE_TEST_SUITE_P(Modes, DetectClaimCrash,
                         ::testing::Values(pmem::CrashMode::kDiscardUnflushed,
                                           pmem::CrashMode::kRandomEvict),
                         [](const auto& info) {
                           return info.param ==
                                          pmem::CrashMode::kDiscardUnflushed
                                      ? "discard"
                                      : "evict";
                         });

/// Crash mid-record, eager path (no AckBatch open): ring entry and last_seq
/// persist before detect.slot_published fires, so in discard mode the op is
/// exactly-once *applied* — sweep the firing across several seqs.
TEST(DetectPublishCrash, EagerPathRecordIsDurable) {
  for (std::uint64_t fire_at = 0; fire_at < 4; ++fire_at) {
    SCOPED_TRACE("fire_at=" + std::to_string(fire_at));
    ScopedDetect on(true);
    StoreHarness h;
    const std::int32_t slot = h.store().sessions().open_session(7);
    ASSERT_GE(slot, 0);
    h.mark_persisted();

    CrashPoints::instance().arm(crash_tag("detect.slot_published"), fire_at);
    std::uint64_t seq = 0;
    std::optional<std::uint64_t> results[8];
    try {
      for (;;) {
        ++seq;
        results[seq] = h.store()
                           .insert_detect(seq, seq * 10, slot, seq)
                           .previous;
      }
    } catch (const CrashException&) {
    }
    CrashPoints::instance().reset();
    ASSERT_EQ(seq, fire_at + 1);
    h.crash_and_reopen(pmem::CrashMode::kDiscardUnflushed);

    SessionTable& t = h.store().sessions();
    ASSERT_TRUE(t.valid());
    ASSERT_EQ(t.open_session(7), slot);
    // Every seq — including the one whose ack was interrupted — recorded
    // eagerly before the crash point: all resolve applied, exact results.
    for (std::uint64_t s = 1; s <= seq; ++s) {
      const ResolveResult r = t.resolve(7, s);
      EXPECT_EQ(r.state, State::kApplied) << "seq " << s;
      EXPECT_EQ(r.has_previous, 0u) << "seq " << s;
      EXPECT_EQ(*h.store().search(s), s * 10) << "seq " << s;
    }
    EXPECT_EQ(t.resolve(7, seq + 1).state, State::kNotApplied);
  }
}

/// Crash mid-record, deferred path (AckBatch open, the server's MOD/group-
/// commit arrangement): the record lines die with the un-fenced batch, so
/// in discard mode the interrupted op resolves *not applied* and the replay
/// under the same seq must run. In random-evict mode the record and the
/// publish can survive independently — only structural recovery and a legal
/// resolve answer are asserted (this is why the exactly-once torture shard
/// pins discard mode).
class DetectPublishCrashDeferred
    : public ::testing::TestWithParam<pmem::CrashMode> {};

TEST_P(DetectPublishCrashDeferred, UnfencedRecordResolvesExactlyOnce) {
  if (!pmem::mod_writes_enabled())
    GTEST_SKIP() << "legacy ordered write path: nothing defers";
  ScopedDetect on(true);
  StoreHarness h;
  const std::int32_t slot = h.store().sessions().open_session(7);
  ASSERT_GE(slot, 0);
  // An acked op before the crash: its record must survive regardless.
  h.store().insert_detect(1, 10, slot, /*seq=*/1);
  h.mark_persisted();

  CrashPoints::instance().arm(crash_tag("detect.slot_published"));
  try {
    pmem::AckBatch ab;  // deferred: lines die un-fenced, like a dead server
    h.store().insert_detect(2, 20, slot, /*seq=*/2);
    FAIL() << "detect.slot_published did not fire";
  } catch (const CrashException&) {
  }
  CrashPoints::instance().reset();
  h.crash_and_reopen(GetParam());

  SessionTable& t = h.store().sessions();
  ASSERT_TRUE(t.valid());
  ASSERT_EQ(t.open_session(7), slot);
  EXPECT_EQ(t.resolve(7, 1).state, State::kApplied);
  const ResolveResult r = t.resolve(7, 2);
  if (GetParam() == pmem::CrashMode::kDiscardUnflushed) {
    // Both the record and the op's ack lines rode the abandoned batch:
    // exactly-once says not applied, and the replay must not dedup.
    ASSERT_EQ(r.state, State::kNotApplied);
    auto d = h.store().insert_detect(2, 20, slot, /*seq=*/2);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(*h.store().search(2), 20u);
    EXPECT_EQ(t.resolve(7, 2).state, State::kApplied);
  } else {
    // Random eviction may persist either side independently; the table must
    // still answer one of the two legal states and accept a replay cycle.
    EXPECT_TRUE(r.state == State::kNotApplied || r.state == State::kApplied);
    if (r.state == State::kNotApplied)
      h.store().insert_detect(2, 20, slot, /*seq=*/2);
    EXPECT_EQ(t.resolve(7, 2).state, State::kApplied);
  }
  h.store().check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Modes, DetectPublishCrashDeferred,
                         ::testing::Values(pmem::CrashMode::kDiscardUnflushed,
                                           pmem::CrashMode::kRandomEvict),
                         [](const auto& info) {
                           return info.param ==
                                          pmem::CrashMode::kDiscardUnflushed
                                      ? "discard"
                                      : "evict";
                         });

}  // namespace
}  // namespace upsl::core
