// Tests for the volatile DRAM search layer (src/core/dram_index.*).
//
//   * Differential: a seeded mixed workload (inserts, updates, removes,
//     scans — small nodes, so plenty of splits) replayed on a DRAM-index
//     store and on a persistent-towers store produces identical results op
//     by op, and both agree with a std::map model.
//   * Recovery equivalence: crash mid-insert / mid-split, reopen (which
//     rebuilds the index — asserted via the index_rebuilds counter), then
//     flip to persistent towers and back; every mode transition must expose
//     the same full key range through search and scan.
//   * Durable index_mode protocol: a crash *inside* the persistent-tower
//     rebuild leaves index_mode=1, so the next open redoes the rebuild.
//   * Rebuild determinism across worker counts (the stripe merge stitches a
//     worker-count-independent result; check_invariants compares the index
//     against a full level-0 walk).
//   * Kill switch: UPSL_DISABLE_DRAM_INDEX pins persistent towers, flipping
//     it between reopens migrates the store in both directions losslessly.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/crashpoint.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"
#include "pmem/persist.hpp"
#include "test_util.hpp"

namespace upsl {
namespace {

// ---- differential replay ---------------------------------------------------

/// One op's observable outcome. Scans are folded to an FNV signature of the
/// returned (key, value) sequence so the trace stays one word per op.
using OpResult = std::optional<std::uint64_t>;

std::uint64_t scan_signature(const std::vector<core::ScanEntry>& out) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const core::ScanEntry& e : out) {
    h = (h ^ e.key) * 1099511628211ULL;
    h = (h ^ e.value) * 1099511628211ULL;
  }
  return h;
}

/// Replays the seeded workload on a fresh store; when `model` is non-null,
/// every result is additionally checked against it inline.
std::vector<OpResult> replay(std::uint64_t seed, std::uint64_t ops,
                             std::map<std::uint64_t, std::uint64_t>* model) {
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4));
  std::vector<OpResult> results;
  results.reserve(ops);
  Xoshiro256 rng(seed);
  const std::uint64_t keyspace = 500;
  std::uint64_t value_seq = 1;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t key = 1 + rng.next_below(keyspace);
    const std::uint64_t dice = rng.next_below(100);
    OpResult r;
    if (dice < 45) {
      const std::uint64_t val = value_seq++;
      r = h.store().insert(key, val);
      if (model != nullptr) {
        const auto it = model->find(key);
        const OpResult want =
            it != model->end() ? OpResult(it->second) : std::nullopt;
        EXPECT_EQ(r, want) << "insert key " << key << " op " << i;
        (*model)[key] = val;
      }
    } else if (dice < 70) {
      r = h.store().search(key);
      if (model != nullptr) {
        const auto it = model->find(key);
        const OpResult want =
            it != model->end() ? OpResult(it->second) : std::nullopt;
        EXPECT_EQ(r, want) << "search key " << key << " op " << i;
      }
    } else if (dice < 90) {
      r = h.store().remove(key);
      if (model != nullptr) {
        const auto it = model->find(key);
        const OpResult want =
            it != model->end() ? OpResult(it->second) : std::nullopt;
        EXPECT_EQ(r, want) << "remove key " << key << " op " << i;
        model->erase(key);
      }
    } else {
      const std::uint64_t lo = 1 + rng.next_below(keyspace);
      const std::uint64_t hi = lo + rng.next_below(40);
      std::vector<core::ScanEntry> out;
      h.store().scan(lo, hi, out);
      r = scan_signature(out);
      if (model != nullptr) {
        std::vector<core::ScanEntry> want;
        for (auto it = model->lower_bound(lo);
             it != model->end() && it->first <= hi; ++it)
          want.push_back({it->first, it->second});
        EXPECT_EQ(*r, scan_signature(want))
            << "scan [" << lo << ", " << hi << "] op " << i;
      }
    }
    results.push_back(r);
    if (::testing::Test::HasFailure()) break;  // don't cascade a mismatch
  }
  h.store().check_invariants();
  return results;
}

TEST(DramIndexDifferential, ReplayMatchesPersistentTowersAndModel) {
  // Pin DRAM mode: this test is about the DRAM layer itself, so it must
  // hold even when the CI matrix exports UPSL_DISABLE_DRAM_INDEX=1.
  test::ScopedEnv pin_dram("UPSL_DISABLE_DRAM_INDEX", "0");
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::map<std::uint64_t, std::uint64_t> model;
    const std::vector<OpResult> with_index = replay(seed, 4000, &model);
    if (::testing::Test::HasFailure()) return;
    test::ScopedEnv off("UPSL_DISABLE_DRAM_INDEX", "1");
    const std::vector<OpResult> without_index = replay(seed, 4000, nullptr);
    ASSERT_EQ(with_index, without_index);
  }
}

// ---- recovery equivalence --------------------------------------------------

/// Full observable state: one search per key over the touched universe plus
/// a whole-range scan signature.
struct KeyRangeView {
  std::vector<OpResult> by_key;
  std::uint64_t scan_sig = 0;

  bool operator==(const KeyRangeView&) const = default;
};

KeyRangeView observe(core::UPSkipList& store, std::uint64_t key_hi) {
  KeyRangeView v;
  v.by_key.reserve(key_hi);
  for (std::uint64_t k = 1; k <= key_hi; ++k)
    v.by_key.push_back(store.search(k));
  std::vector<core::ScanEntry> out;
  store.scan(1, key_hi, out);
  v.scan_sig = scan_signature(out);
  return v;
}

class DramIndexRecovery : public ::testing::TestWithParam<const char*> {};

/// Crash an insert workload at the parameterized point with the DRAM index
/// live, reopen (rebuild), and require the DRAM-index traversal and the
/// persistent-towers traversal to expose the same key range.
TEST_P(DramIndexRecovery, CrashRebuildMatchesPersistentTowers) {
  // Pin DRAM mode: this test is about the DRAM layer itself, so it must
  // hold even when the CI matrix exports UPSL_DISABLE_DRAM_INDEX=1.
  test::ScopedEnv pin_dram("UPSL_DISABLE_DRAM_INDEX", "0");
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4));
  ASSERT_TRUE(h.store().dram_index_enabled());
  Xoshiro256 rng(7);
  const std::uint64_t keyspace = 400;
  for (std::uint64_t i = 0; i < 150; ++i)
    h.store().insert(1 + rng.next_below(keyspace), i + 1);
  h.mark_persisted();

  CrashPoints::ArmSpec spec;
  spec.tag = crash_tag(GetParam());
  spec.skip = 3;
  CrashPoints::instance().arm(spec);
  bool fired = false;
  try {
    for (std::uint64_t i = 0; i < 2000; ++i)
      h.store().insert(1 + rng.next_below(keyspace), 1000 + i);
  } catch (const CrashException&) {
    fired = true;
  }
  CrashPoints::instance().reset();
  if (!fired) GTEST_SKIP() << GetParam() << " did not fire";

  const std::uint64_t rebuilds0 =
      pmem::Stats::instance().snapshot().index_rebuilds;
  h.crash_and_reopen();
  ASSERT_TRUE(h.store().dram_index_enabled());
  EXPECT_GT(pmem::Stats::instance().snapshot().index_rebuilds, rebuilds0)
      << "reopen did not rebuild the DRAM index";

  // Drain lazy repairs so both traversal paths see a settled store.
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t k = 1; k <= keyspace; ++k) h.store().search(k);
  h.store().check_invariants();
  const KeyRangeView dram_view = observe(h.store(), keyspace);

  {
    // Flip to persistent towers: this open must rewrite the (stale) PMEM
    // index levels before serving, per the durable index_mode protocol.
    test::ScopedEnv off("UPSL_DISABLE_DRAM_INDEX", "1");
    h.clean_reopen();
    ASSERT_FALSE(h.store().dram_index_enabled());
    h.store().check_invariants();
    EXPECT_EQ(observe(h.store(), keyspace), dram_view);
  }

  // And back: the next open rebuilds the DRAM layer from the data level.
  h.clean_reopen();
  ASSERT_TRUE(h.store().dram_index_enabled());
  h.store().check_invariants();
  EXPECT_EQ(observe(h.store(), keyspace), dram_view);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, DramIndexRecovery,
                         ::testing::Values("core.slot_claimed",
                                           "core.split_locked",
                                           "core.split_node_made",
                                           "core.split_linked",
                                           "core.split_erased",
                                           "core.updated_value"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '.') c = '_';
                           return n;
                         });

TEST(DramIndexRecovery, CrashDuringPersistentTowerRebuildIsRedone) {
  // Pin DRAM mode: this test is about the DRAM layer itself, so it must
  // hold even when the CI matrix exports UPSL_DISABLE_DRAM_INDEX=1.
  test::ScopedEnv pin_dram("UPSL_DISABLE_DRAM_INDEX", "0");
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4));
  Xoshiro256 rng(13);
  const std::uint64_t keyspace = 300;
  for (std::uint64_t i = 0; i < 200; ++i)
    h.store().insert(1 + rng.next_below(keyspace), i + 1);
  const KeyRangeView before = observe(h.store(), keyspace);

  test::ScopedEnv off("UPSL_DISABLE_DRAM_INDEX", "1");
  CrashPoints::ArmSpec spec;
  spec.tag = crash_tag("core.tower_rebuild");
  spec.skip = 3;
  CrashPoints::instance().arm(spec);
  bool fired = false;
  try {
    // The open under the kill switch finds index_mode=1 and starts the
    // persistent-tower rebuild; the armed point kills it partway through.
    h.clean_reopen();
  } catch (const CrashException&) {
    fired = true;
  }
  CrashPoints::instance().reset();
  ASSERT_TRUE(fired) << "core.tower_rebuild never fired";

  // index_mode only flips after a *complete* rebuild, so this open must
  // redo it from scratch over the half-written towers.
  h.crash_and_reopen();
  ASSERT_FALSE(h.store().dram_index_enabled());
  h.store().check_invariants();
  EXPECT_EQ(observe(h.store(), keyspace), before);
}

// ---- rebuild determinism and kill switch -----------------------------------

TEST(DramIndex, RebuildDeterministicAcrossWorkerCounts) {
  // Pin DRAM mode: this test is about the DRAM layer itself, so it must
  // hold even when the CI matrix exports UPSL_DISABLE_DRAM_INDEX=1.
  test::ScopedEnv pin_dram("UPSL_DISABLE_DRAM_INDEX", "0");
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4));
  Xoshiro256 rng(29);
  for (std::uint64_t i = 0; i < 1500; ++i)
    h.store().insert(1 + rng.next_below(5000), i + 1);
  const std::size_t entries = h.store().index_entries();
  ASSERT_GT(entries, 0u);
  for (const unsigned workers : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    h.store().rebuild_dram_index(workers);
    // check_invariants compares the index entry-by-entry (key, riv, height)
    // against a sequential level-0 walk — the worker-count-independent
    // ground truth — so passing here means the stripe merge is exact.
    h.store().check_invariants();
    EXPECT_EQ(h.store().index_entries(), entries);
  }
}

TEST(DramIndex, KillSwitchPinsPersistentTowersAcrossReopens) {
  // Pin DRAM mode: this test is about the DRAM layer itself, so it must
  // hold even when the CI matrix exports UPSL_DISABLE_DRAM_INDEX=1.
  test::ScopedEnv pin_dram("UPSL_DISABLE_DRAM_INDEX", "0");
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4));
  ASSERT_TRUE(h.store().dram_index_enabled());
  const std::uint64_t keyspace = 300;
  for (std::uint64_t k = 1; k <= keyspace; k += 2) h.store().insert(k, k * 7);

  {
    test::ScopedEnv off("UPSL_DISABLE_DRAM_INDEX", "1");
    h.clean_reopen();
    ASSERT_FALSE(h.store().dram_index_enabled());
    EXPECT_EQ(h.store().index_entries(), 0u);
    // Mutations in persistent mode must keep the PMEM towers live.
    for (std::uint64_t k = 2; k <= keyspace; k += 2) h.store().insert(k, k * 7);
    h.store().check_invariants();
    for (std::uint64_t k = 1; k <= keyspace; ++k)
      ASSERT_EQ(h.store().search(k), std::optional<std::uint64_t>(k * 7));
  }

  h.clean_reopen();
  ASSERT_TRUE(h.store().dram_index_enabled());
  h.store().check_invariants();
  for (std::uint64_t k = 1; k <= keyspace; ++k)
    ASSERT_EQ(h.store().search(k), std::optional<std::uint64_t>(k * 7));
}

TEST(DramIndex, TraversalCountersSplitByMode) {
  // Pin DRAM mode: this test is about the DRAM layer itself, so it must
  // hold even when the CI matrix exports UPSL_DISABLE_DRAM_INDEX=1.
  test::ScopedEnv pin_dram("UPSL_DISABLE_DRAM_INDEX", "0");
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4));
  Xoshiro256 rng(31);
  for (std::uint64_t i = 0; i < 800; ++i)
    h.store().insert(1 + rng.next_below(2000), i + 1);

  pmem::StatsSnapshot t0 = pmem::Stats::instance().snapshot();
  for (std::uint64_t i = 0; i < 200; ++i)
    h.store().search(1 + rng.next_below(2000));
  pmem::StatsSnapshot d = pmem::Stats::instance().snapshot() - t0;
  EXPECT_GT(d.index_hops, 0u);
  // Every index-level hop was served from DRAM: zero PMEM index reads.
  EXPECT_EQ(d.index_hops, d.dram_node_visits);
  EXPECT_GT(d.pmem_node_visits, 0u);  // the data level is still PMEM

  test::ScopedEnv off("UPSL_DISABLE_DRAM_INDEX", "1");
  h.clean_reopen();
  t0 = pmem::Stats::instance().snapshot();
  for (std::uint64_t i = 0; i < 200; ++i)
    h.store().search(1 + rng.next_below(2000));
  d = pmem::Stats::instance().snapshot() - t0;
  EXPECT_GT(d.index_hops, 0u);
  EXPECT_EQ(d.dram_node_visits, 0u);
}

}  // namespace
}  // namespace upsl
