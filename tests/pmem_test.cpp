// Unit tests for the emulated persistent-memory substrate: shadow
// persistence-domain semantics, crash modes, registry lookups, remapping.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>

#include "pmem/ack_batch.hpp"
#include "pmem/flush_set.hpp"
#include "pmem/pool.hpp"

namespace upsl::pmem {
namespace {

std::string tmp_file(const char* name) {
  return (std::filesystem::path("/tmp") /
          (std::string("upsl_pmem_") + name + "_" + std::to_string(::getpid())))
      .string();
}

TEST(Pool, CreateZeroed) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  for (std::size_t i = 0; i < 4096; ++i) EXPECT_EQ(p->base()[i], 0);
  EXPECT_EQ(p->size(), 4096u);
  EXPECT_TRUE(p->tracking());
}

TEST(Pool, UnpersistedStoresAreLostOnCrash) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  auto* words = reinterpret_cast<std::uint64_t*>(p->base());
  words[0] = 11;
  persist(&words[0], 8);
  words[1] = 22;  // never persisted
  p->simulate_crash();
  EXPECT_EQ(words[0], 11u);
  EXPECT_EQ(words[1], 0u);
}

TEST(Pool, PersistCoversWholeCacheLines) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  auto* words = reinterpret_cast<std::uint64_t*>(p->base());
  words[0] = 1;
  words[7] = 7;   // same 64-byte line as words[0]
  words[8] = 8;   // next line
  persist(&words[0], 8);
  p->simulate_crash();
  EXPECT_EQ(words[0], 1u);
  EXPECT_EQ(words[7], 7u) << "flush granularity is the cache line";
  EXPECT_EQ(words[8], 0u);
}

TEST(Pool, PersistRangeSpanningLines) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  std::memset(p->base(), 0xab, 300);
  persist(p->base() + 10, 200);  // covers lines 0..3
  p->simulate_crash();
  EXPECT_EQ(static_cast<unsigned char>(p->base()[10]), 0xabu);
  EXPECT_EQ(static_cast<unsigned char>(p->base()[209]), 0xabu);
  EXPECT_EQ(static_cast<unsigned char>(p->base()[299]), 0u);
}

TEST(Pool, SecondCrashKeepsDurableState) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  auto* words = reinterpret_cast<std::uint64_t*>(p->base());
  words[0] = 5;
  persist(&words[0], 8);
  p->simulate_crash();
  words[8] = 9;  // unpersisted after first crash
  p->simulate_crash();
  EXPECT_EQ(words[0], 5u);
  EXPECT_EQ(words[8], 0u);
}

TEST(Pool, MarkAllPersisted) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  std::memset(p->base(), 0x5a, 4096);
  p->mark_all_persisted();
  p->simulate_crash();
  EXPECT_EQ(static_cast<unsigned char>(p->base()[1234]), 0x5au);
}

TEST(Pool, RandomEvictCrashKeepsSubsetOfLines) {
  auto p = Pool::create_anonymous(0, 1 << 16, {.crash_tracking = true});
  std::memset(p->base(), 0x11, p->size());  // nothing flushed
  p->simulate_crash(CrashMode::kRandomEvict, /*seed=*/42, /*evict_prob=*/0.5);
  std::size_t survivors = 0;
  for (std::size_t line = 0; line < p->size(); line += kCacheLineSize)
    if (static_cast<unsigned char>(p->base()[line]) == 0x11) ++survivors;
  const std::size_t lines = p->size() / kCacheLineSize;
  EXPECT_GT(survivors, lines / 4);
  EXPECT_LT(survivors, lines * 3 / 4);
}

TEST(Pool, NonTrackingPoolPersistIsNoop) {
  auto p = Pool::create_anonymous(0, 4096, {});
  auto* words = reinterpret_cast<std::uint64_t*>(p->base());
  words[0] = 3;
  persist(&words[0], 8);  // must not crash
  EXPECT_THROW(p->simulate_crash(), std::logic_error);
}

TEST(Pool, FileBackedSurvivesReopen) {
  const std::string path = tmp_file("reopen");
  {
    auto p = Pool::create(path, 3, 8192, {});
    reinterpret_cast<std::uint64_t*>(p->base())[5] = 77;
  }
  {
    auto p = Pool::open(path, 3, {.crash_tracking = true});
    EXPECT_EQ(reinterpret_cast<std::uint64_t*>(p->base())[5], 77u);
    // open() treats file contents as durable.
    p->simulate_crash();
    EXPECT_EQ(reinterpret_cast<std::uint64_t*>(p->base())[5], 77u);
  }
  std::filesystem::remove(path);
}

TEST(Pool, RemapMovesMappingKeepsContents) {
  const std::string path = tmp_file("remap");
  auto p = Pool::create(path, 4, 1 << 20, {});
  reinterpret_cast<std::uint64_t*>(p->base())[9] = 99;
  p->remap();
  EXPECT_EQ(reinterpret_cast<std::uint64_t*>(p->base())[9], 99u);
  std::filesystem::remove(path);
}

TEST(PoolRegistry, FindByAddressAndId) {
  auto a = Pool::create_anonymous(10, 4096, {});
  auto b = Pool::create_anonymous(11, 4096, {});
  EXPECT_EQ(PoolRegistry::instance().by_id(10), a.get());
  EXPECT_EQ(PoolRegistry::instance().by_id(11), b.get());
  EXPECT_EQ(PoolRegistry::instance().find(a->base() + 100), a.get());
  EXPECT_EQ(PoolRegistry::instance().find(b->base() + 100), b.get());
  int local = 0;
  EXPECT_EQ(PoolRegistry::instance().find(&local), nullptr);
}

TEST(PoolRegistry, UnregisteredOnDestruction) {
  {
    auto p = Pool::create_anonymous(20, 4096, {});
    EXPECT_NE(PoolRegistry::instance().by_id(20), nullptr);
  }
  EXPECT_EQ(PoolRegistry::instance().by_id(20), nullptr);
}

TEST(Persist, StatsCount) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  Stats::instance().reset();
  persist(p->base(), 8);
  persist(p->base() + 64, 128);
  EXPECT_EQ(Stats::instance().persist_calls.load(), 2u);
  EXPECT_EQ(Stats::instance().persisted_lines.load(), 3u);
}

TEST(Persist, AtomicHelpers) {
  auto p = Pool::create_anonymous(0, 4096, {});
  auto& w = *reinterpret_cast<std::uint64_t*>(p->base());
  pm_store(w, std::uint64_t{41});
  EXPECT_EQ(pm_load(w), 41u);
  EXPECT_TRUE(pm_cas_value(w, std::uint64_t{41}, std::uint64_t{42}));
  EXPECT_FALSE(pm_cas_value(w, std::uint64_t{41}, std::uint64_t{43}));
  EXPECT_EQ(pm_fetch_add(w, std::uint64_t{8}), 42u);
  EXPECT_EQ(pm_load(w), 50u);
}

TEST(Pool, RejectsBadSizes) {
  EXPECT_THROW(Pool::create_anonymous(0, 0, {}), std::invalid_argument);
  EXPECT_THROW(Pool::create_anonymous(0, 100, {}), std::invalid_argument);
}

class FlushSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_flush_coalescing_for_testing(true);
    pool_ = Pool::create_anonymous(0, 1 << 16, {.crash_tracking = true});
    words_ = reinterpret_cast<std::uint64_t*>(pool_->base());
    Stats::instance().reset();
  }
  void TearDown() override { reset_flush_coalescing_for_testing(); }

  std::unique_ptr<Pool> pool_;
  std::uint64_t* words_ = nullptr;
};

TEST_F(FlushSetTest, OneFencePerCommitAndLineDedupe) {
  // Eight adds spanning two cache lines (words 0..7 share a line, word 8
  // starts the next): one batched flush, one fence.
  {
    FlushSet fs;
    for (int i = 0; i < 9; ++i) {
      words_[i] = 100 + i;
      fs.add(&words_[i], 8);
    }
    fs.commit();
  }
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  EXPECT_EQ(Stats::instance().persist_calls.load(), 1u);
  EXPECT_EQ(Stats::instance().persisted_lines.load(), 2u);
  EXPECT_EQ(Stats::instance().coalesced_fences_saved.load(), 8u);
  EXPECT_EQ(Stats::instance().coalesced_lines_saved.load(), 7u);
}

TEST_F(FlushSetTest, CommittedStoresSurviveCrash) {
  {
    FlushSet fs;
    words_[0] = 1;
    fs.add(&words_[0], 8);
    words_[64] = 2;  // a different line
    fs.add(&words_[64], 8);
    fs.commit();
  }
  words_[128] = 3;  // never added
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 1u);
  EXPECT_EQ(words_[64], 2u);
  EXPECT_EQ(words_[128], 0u);
}

TEST_F(FlushSetTest, DestructorCommitsAsSafetyNet) {
  {
    FlushSet fs;
    words_[0] = 9;
    fs.add(&words_[0], 8);
    // no explicit commit()
  }
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 9u);
}

TEST_F(FlushSetTest, CommitIsIdempotentAndEmptyCommitIsFree) {
  FlushSet fs;
  fs.commit();  // nothing recorded: no flush, no fence
  EXPECT_EQ(Stats::instance().fences.load(), 0u);
  words_[0] = 4;
  fs.add(&words_[0], 8);
  fs.commit();
  fs.commit();  // second commit has nothing left to do
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  EXPECT_EQ(Stats::instance().persist_calls.load(), 1u);
}

TEST_F(FlushSetTest, RangeSpanningLinesIsCovered) {
  std::memset(words_, 0x7c, 300);
  {
    FlushSet fs;
    fs.add(words_, 300);  // lines 0..4
    fs.commit();
  }
  EXPECT_EQ(Stats::instance().persisted_lines.load(), 5u);
  pool_->simulate_crash();
  EXPECT_EQ(reinterpret_cast<unsigned char*>(words_)[299], 0x7cu);
}

TEST_F(FlushSetTest, OverflowDegradesToImmediateFlushNotDataLoss) {
  // Touch kMaxLines + 8 distinct lines in one set: the excess lines are
  // flushed immediately (unfenced) and the commit fence still covers them.
  const std::size_t lines = FlushSet::kMaxLines + 8;
  {
    FlushSet fs;
    for (std::size_t i = 0; i < lines; ++i) {
      words_[i * 8] = i + 1;
      fs.add(&words_[i * 8], 8);
    }
    fs.commit();
  }
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  pool_->simulate_crash();
  for (std::size_t i = 0; i < lines; ++i) EXPECT_EQ(words_[i * 8], i + 1);
}

TEST_F(FlushSetTest, KillSwitchRestoresLegacyPersistSequence) {
  set_flush_coalescing_for_testing(false);
  {
    FlushSet fs;
    words_[0] = 6;
    fs.add(&words_[0], 8);  // behaves exactly like persist()
    words_[1] = 7;
    fs.add(&words_[1], 8);
    fs.commit();  // no-op
  }
  EXPECT_EQ(Stats::instance().persist_calls.load(), 2u);
  EXPECT_EQ(Stats::instance().fences.load(), 2u);
  EXPECT_EQ(Stats::instance().coalesced_fences_saved.load(), 0u);
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 6u);
  EXPECT_EQ(words_[1], 7u);
}

class AckBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_mod_writes_for_testing(true);
    pool_ = Pool::create_anonymous(0, 1 << 16, {.crash_tracking = true});
    words_ = reinterpret_cast<std::uint64_t*>(pool_->base());
    Stats::instance().reset();
  }
  void TearDown() override { reset_mod_writes_for_testing(); }

  std::unique_ptr<Pool> pool_;
  std::uint64_t* words_ = nullptr;
};

TEST_F(AckBatchTest, LinesDedupeAcrossOpsOneFencePerBatch) {
  // Three "pipelined operations" in one batch scope: ops 1 and 2 dirty the
  // same cache line (two values in one node), op 3 a different line. The
  // whole batch must cost one flush call over two lines and one fence.
  {
    AckBatch ab;
    words_[0] = 1;
    ack_persist(&words_[0], 8);  // op 1
    words_[3] = 2;
    ack_persist(&words_[3], 8);  // op 2: same line as op 1
    words_[8] = 3;
    ack_persist(&words_[8], 8);  // op 3: next line
    EXPECT_EQ(ab.adds(), 3u);
    EXPECT_EQ(ab.lines(), 2u) << "same-line acks must dedupe across ops";
    ab.commit_fenced();
  }
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  EXPECT_EQ(Stats::instance().persist_calls.load(), 1u);
  EXPECT_EQ(Stats::instance().persisted_lines.load(), 2u);
  EXPECT_EQ(Stats::instance().coalesced_fences_saved.load(), 2u);
  EXPECT_EQ(Stats::instance().coalesced_lines_saved.load(), 1u);
}

TEST_F(AckBatchTest, CommittedAcksSurviveCrash) {
  {
    AckBatch ab;
    words_[0] = 11;
    ack_persist(&words_[0], 8);
    words_[64] = 22;
    ack_persist(&words_[64], 8);
    ab.commit_fenced();
  }
  words_[128] = 33;  // never acked
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 11u);
  EXPECT_EQ(words_[64], 22u);
  EXPECT_EQ(words_[128], 0u);
}

TEST_F(AckBatchTest, TakenLinesAreNotDurableUntilTheGroupFence) {
  // take_lines() models handing the batch to a group-commit ticket: the
  // scope no longer owes durability, so a crash before the committer's
  // fence drops the writes — exactly the unacked-op-in-flight semantics.
  std::vector<const void*> lines;
  {
    AckBatch ab;
    words_[0] = 5;
    ack_persist(&words_[0], 8);
    lines = ab.take_lines();
  }
  EXPECT_EQ(lines.size(), 1u);
  EXPECT_EQ(Stats::instance().fences.load(), 0u) << "no fence before commit";
  auto copy = lines;  // the committer's side of the handoff
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 0u) << "un-fenced ticket lines must not survive";
  // After the committer flushes + fences, the line is durable.
  words_[0] = 5;
  flush_lines(copy.data(), copy.size());
  fence();
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 5u);
}

TEST_F(AckBatchTest, NoOpenScopeFallsBackToImmediatePersist) {
  // The embedded API path: without a scope, ack_persist IS persist, so
  // every mutation is durable at return.
  words_[0] = 7;
  ack_persist(&words_[0], 8);
  EXPECT_EQ(Stats::instance().persist_calls.load(), 1u);
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 7u);
}

TEST_F(AckBatchTest, KillSwitchBypassesAnOpenScope) {
  // UPSL_DISABLE_MOD_WRITES restores the legacy ordered write path even if
  // a batch scope is open: nothing defers, nothing is recorded.
  set_mod_writes_for_testing(false);
  {
    AckBatch ab;
    words_[0] = 9;
    ack_persist(&words_[0], 8);
    EXPECT_EQ(ab.lines(), 0u);
    EXPECT_EQ(Stats::instance().persist_calls.load(), 1u);
    EXPECT_EQ(Stats::instance().fences.load(), 1u);
  }
  EXPECT_EQ(Stats::instance().fences.load(), 1u) << "empty scope: no fence";
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 9u);
}

TEST_F(AckBatchTest, EmptyCommitStillFencesAsTheAckGate) {
  // A batch whose ops all persisted eagerly (e.g. MOD off) still uses
  // commit_fenced() as the acknowledgement gate: the fence must be issued.
  AckBatch ab;
  ab.commit_fenced();
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  EXPECT_EQ(Stats::instance().persist_calls.load(), 0u);
}

TEST_F(AckBatchTest, DestructorIsTheSafetyNet) {
  {
    AckBatch ab;
    words_[0] = 13;
    ack_persist(&words_[0], 8);
    // no explicit commit; normal (non-crash) exit must still flush+fence
  }
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
  pool_->simulate_crash();
  EXPECT_EQ(words_[0], 13u);
}

TEST_F(AckBatchTest, NestedScopesRestoreTheOuterOne) {
  AckBatch outer;
  EXPECT_EQ(AckBatch::current(), &outer);
  {
    AckBatch inner;
    EXPECT_EQ(AckBatch::current(), &inner);
    words_[0] = 1;
    ack_persist(&words_[0], 8);
    EXPECT_EQ(inner.lines(), 1u);
    inner.commit_fenced();
  }
  EXPECT_EQ(AckBatch::current(), &outer);
  words_[8] = 2;
  ack_persist(&words_[8], 8);
  EXPECT_EQ(outer.lines(), 1u);
  outer.commit_fenced();
}

TEST(Persist, GroupCommitHistogramBuckets) {
  Stats::instance().reset();
  Stats::instance().note_group_commit(1);
  Stats::instance().note_group_commit(2);
  Stats::instance().note_group_commit(5);
  Stats::instance().note_group_commit(16);
  Stats::instance().note_group_commit(40);
  const StatsSnapshot s = Stats::instance().snapshot();
  EXPECT_EQ(s.group_commits, 5u);
  EXPECT_EQ(s.group_commit_mutations, 64u);
  EXPECT_EQ(s.group_commit_hist[0], 1u);  // <=1
  EXPECT_EQ(s.group_commit_hist[1], 1u);  // <=2
  EXPECT_EQ(s.group_commit_hist[3], 1u);  // <=8 (5 lands here)
  EXPECT_EQ(s.group_commit_hist[4], 1u);  // <=16
  EXPECT_EQ(s.group_commit_hist[5], 1u);  // >16
  EXPECT_NEAR(s.fences_per_mutation(), 5.0 / 64.0, 1e-9);
  EXPECT_NE(s.to_json().find("group_commit_batch_hist"), std::string::npos);
}

TEST(Persist, PersistCountsItsFence) {
  auto p = Pool::create_anonymous(0, 4096, {.crash_tracking = true});
  Stats::instance().reset();
  persist(p->base(), 8);
  EXPECT_EQ(Stats::instance().fences.load(), 1u);
}

}  // namespace
}  // namespace upsl::pmem
