// Unit tests for extended RIV persistent pointers: codec round-trips,
// two-stage lookup, lazy cache rebuild, single-pool fast path.
#include <gtest/gtest.h>

#include "riv/riv.hpp"

namespace upsl::riv {
namespace {

TEST(RivCodec, RoundTrip) {
  const std::uint64_t r = encode(0x1234, 0xabcde, 0x0fedcba);
  const Decoded d = decode(r);
  EXPECT_EQ(d.pool, 0x1234);
  EXPECT_EQ(d.chunk, 0xabcdeu);
  EXPECT_EQ(d.offset, 0x0fedcbau);
}

TEST(RivCodec, NullIsZero) {
  EXPECT_EQ(encode(0, 0, 0), kNull);
  EXPECT_TRUE(RivPtr<int>{}.is_null());
}

TEST(RivCodec, FieldBoundaries) {
  const Decoded d = decode(encode(0xffff, (1u << kChunkBits) - 1, kMaxOffset));
  EXPECT_EQ(d.pool, 0xffff);
  EXPECT_EQ(d.chunk, (1u << kChunkBits) - 1);
  EXPECT_EQ(d.offset, kMaxOffset);
}

class RivRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_ = pmem::Pool::create_anonymous(7, 1 << 20, {});
    Runtime::instance().reset();
    Runtime::instance().configure_pool(
        7, /*max_chunks=*/16, [](std::uint32_t chunk) -> std::int64_t {
          if (chunk >= 4) return -1;                    // unallocated
          return 4096 + chunk * 65536;                  // deterministic bases
        });
  }
  void TearDown() override { Runtime::instance().reset(); }
  std::unique_ptr<pmem::Pool> pool_;
};

TEST_F(RivRuntimeTest, TwoStageLookup) {
  void* p = Runtime::instance().to_ptr(encode(7, 2, 100));
  EXPECT_EQ(static_cast<char*>(p), pool_->base() + 4096 + 2 * 65536 + 100);
}

TEST_F(RivRuntimeTest, CacheIsLazy) {
  int resolves = 0;
  Runtime::instance().reset();
  Runtime::instance().configure_pool(7, 16,
                                     [&resolves](std::uint32_t) -> std::int64_t {
                                       ++resolves;
                                       return 4096;
                                     });
  Runtime::instance().to_ptr(encode(7, 1, 0));
  Runtime::instance().to_ptr(encode(7, 1, 8));
  Runtime::instance().to_ptr(encode(7, 1, 16));
  EXPECT_EQ(resolves, 1) << "chunk base resolved once, then cached";
}

TEST_F(RivRuntimeTest, InvalidateForcesReResolve) {
  int resolves = 0;
  Runtime::instance().reset();
  Runtime::instance().configure_pool(7, 16,
                                     [&resolves](std::uint32_t) -> std::int64_t {
                                       ++resolves;
                                       return 4096;
                                     });
  Runtime::instance().to_ptr(encode(7, 1, 0));
  Runtime::instance().invalidate_pool(7);
  Runtime::instance().to_ptr(encode(7, 1, 0));
  EXPECT_EQ(resolves, 2);
}

TEST_F(RivRuntimeTest, UnallocatedChunkThrows) {
  EXPECT_THROW(Runtime::instance().to_ptr(encode(7, 9, 0)), std::logic_error);
}

TEST_F(RivRuntimeTest, OutOfRangeChunkThrows) {
  EXPECT_THROW(Runtime::instance().to_ptr(encode(7, 17, 0)), std::out_of_range);
}

TEST_F(RivRuntimeTest, SinglePoolModeSkipsPoolStage) {
  Runtime::instance().set_single_pool_mode(true, 7);
  // Deliberately encode a *wrong* pool id: single-pool mode must ignore it.
  void* p = Runtime::instance().to_ptr(encode(123, 2, 4));
  EXPECT_EQ(static_cast<char*>(p), pool_->base() + 4096 + 2 * 65536 + 4);
  Runtime::instance().set_single_pool_mode(false);
}

TEST_F(RivRuntimeTest, TypedPtr) {
  auto* target = reinterpret_cast<std::uint64_t*>(pool_->base() + 4096 + 24);
  *target = 4242;
  RivPtr<std::uint64_t> ptr{encode(7, 0, 24)};
  EXPECT_EQ(*ptr, 4242u);
}

TEST(RivRuntime, MultiplePools) {
  auto p0 = pmem::Pool::create_anonymous(0, 1 << 20, {});
  auto p1 = pmem::Pool::create_anonymous(1, 1 << 20, {});
  Runtime::instance().reset();
  Runtime::instance().configure_pool(0, 4, [](std::uint32_t) { return std::int64_t{64}; });
  Runtime::instance().configure_pool(1, 4, [](std::uint32_t) { return std::int64_t{128}; });
  EXPECT_EQ(Runtime::instance().to_ptr(encode(0, 0, 0)), p0->base() + 64);
  EXPECT_EQ(Runtime::instance().to_ptr(encode(1, 0, 0)), p1->base() + 128);
  Runtime::instance().reset();
}

}  // namespace
}  // namespace upsl::riv
