// Linearizability analyzer tests (thesis chapter 6):
//  * unit tests of check_strict on hand-built histories, including every
//    violation class it must detect,
//  * the thesis' analyzer-validation methodology: take a real linearizable
//    log and mutate read values at random — all mutations must be flagged
//    (§6.3),
//  * end-to-end crash trials: concurrent upserts/reads on UPSkipList with
//    persistent history logging, a mid-operation crash, recovery, a second
//    execution phase, then strict-linearizability analysis of the combined
//    cross-crash history (the thesis ran 30+ power-cycle trials and found
//    none non-linearizable once its two bugs were fixed).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lincheck/lincheck.hpp"
#include "pmdk/pmemlog.hpp"
#include "test_util.hpp"

namespace upsl::lincheck {
namespace {

Operation write_op(std::uint32_t tid, std::uint64_t key, std::uint64_t arg,
                   std::uint64_t ret, std::uint64_t inv, std::uint64_t resp,
                   std::uint64_t epoch = 1, bool completed = true) {
  Operation op{};
  op.kind = OpKind::kWrite;
  op.completed = completed;
  op.tid = tid;
  op.key = key;
  op.arg = arg;
  op.ret = ret;
  op.inv_ts = inv;
  op.resp_ts = resp;
  op.epoch = epoch;
  return op;
}

Operation read_op(std::uint32_t tid, std::uint64_t key, std::uint64_t ret,
                  std::uint64_t inv, std::uint64_t resp,
                  std::uint64_t epoch = 1) {
  Operation op{};
  op.kind = OpKind::kRead;
  op.completed = true;
  op.tid = tid;
  op.key = key;
  op.ret = ret;
  op.inv_ts = inv;
  op.resp_ts = resp;
  op.epoch = epoch;
  return op;
}

TEST(LinCheck, EmptyAndTrivialHistories) {
  EXPECT_TRUE(check_strict({}).linearizable);
  EXPECT_TRUE(check_strict({write_op(0, 1, 10, kInitialValue, 1, 2)})
                  .linearizable);
  EXPECT_TRUE(check_strict({read_op(0, 1, kInitialValue, 1, 2)}).linearizable);
}

TEST(LinCheck, SequentialChainIsLinearizable) {
  EXPECT_TRUE(check_strict({
                               write_op(0, 1, 10, kInitialValue, 1, 2),
                               write_op(0, 1, 20, 10, 3, 4),
                               read_op(1, 1, 20, 5, 6),
                               write_op(1, 1, 30, 20, 7, 8),
                           })
                  .linearizable);
}

TEST(LinCheck, ReadOfNeverWrittenValue) {
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 1, 2),
      read_op(1, 1, 77, 3, 4),
  });
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.reason.find("never written"), std::string::npos);
}

TEST(LinCheck, ForkedSwapChain) {
  // Two completed swaps claim to have replaced the same previous value.
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 1, 2),
      write_op(1, 1, 20, kInitialValue, 3, 4),
  });
  EXPECT_FALSE(r.linearizable);
}

TEST(LinCheck, UnreachableCompletedSwap) {
  // A completed swap observed a previous value that never existed.
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 1, 2),
      write_op(1, 1, 20, 99, 3, 4),
  });
  EXPECT_FALSE(r.linearizable);
}

TEST(LinCheck, ChainContradictsRealTime) {
  // w(20) is chained after w(10) but completed before w(10) was invoked.
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 10, 12),
      write_op(1, 1, 20, 10, 1, 2),
  });
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.reason.find("real-time"), std::string::npos);
}

TEST(LinCheck, StaleReadAfterReplacement) {
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 1, 2),
      write_op(0, 1, 20, 10, 3, 4),
      read_op(1, 1, 10, 5, 6),  // starts after w(20) completed
  });
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.reason.find("stale"), std::string::npos);
}

TEST(LinCheck, ReadBeforeWriteInvoked) {
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 10, 11),
      read_op(1, 1, 10, 1, 2),  // completed before the write was invoked
  });
  EXPECT_FALSE(r.linearizable);
}

TEST(LinCheck, ConcurrentReadOfInFlightWriteIsFine) {
  EXPECT_TRUE(check_strict({
                               write_op(0, 1, 10, kInitialValue, 1, 10),
                               read_op(1, 1, 10, 2, 3),  // overlaps the write
                           })
                  .linearizable);
}

TEST(LinCheck, PendingWriteMayOrMayNotTakeEffect) {
  // Pending write never observed: fine.
  EXPECT_TRUE(check_strict({
                               write_op(0, 1, 10, kInitialValue, 1, 2),
                               write_op(1, 1, 20, 0, 3, 0, 1, false),
                           })
                  .linearizable);
  // Pending write observed by a later read in the same epoch: fine.
  EXPECT_TRUE(check_strict({
                               write_op(1, 1, 20, 0, 1, 0, 1, false),
                               read_op(0, 1, 20, 2, 3, 1),
                           })
                  .linearizable);
}

TEST(LinCheck, StrictViolationEffectAfterCrash) {
  // A write pending at the epoch-1 crash is observed as coming *after* an
  // epoch-2 write — it took effect after the crash: strict violation.
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 5, 0, 1, false),  // pending, epoch 1
      write_op(1, 1, 20, kInitialValue, 1, 2, 2),         // epoch 2
      write_op(1, 1, 30, 20, 3, 4, 2),
      write_op(1, 1, 40, 10, 5, 6, 2),  // observed the pending write's value
  });
  // The chain init->20->30 and init->10 forks; either way it's flagged.
  EXPECT_FALSE(r.linearizable);
}

TEST(LinCheck, CrossEpochChainOrder) {
  EXPECT_TRUE(check_strict({
                               write_op(0, 1, 10, kInitialValue, 1, 2, 1),
                               write_op(0, 1, 20, 10, 1, 2, 2),  // after crash
                               read_op(1, 1, 20, 3, 4, 2),
                           })
                  .linearizable);
  const auto r = check_strict({
      write_op(0, 1, 10, kInitialValue, 1, 2, 2),
      write_op(0, 1, 20, 10, 1, 2, 1),  // epoch goes backwards along chain
  });
  EXPECT_FALSE(r.linearizable);
}

// ---- end-to-end crash trials over UPSkipList ------------------------------

/// Persistent per-thread history recorder over PmemLog.
class Recorder {
 public:
  static constexpr std::size_t kThreads = 3;
  static constexpr std::size_t kRegion = 1 << 20;

  explicit Recorder(pmem::Pool& pool, bool fresh) : pool_(pool) {
    for (std::size_t t = 0; t < kThreads; ++t) {
      char* region = pool.base() + t * kRegion;
      logs_.emplace_back(fresh ? pmdk::PmemLog::format(region, kRegion)
                               : pmdk::PmemLog(region));
    }
  }

  std::uint32_t next_seq(std::uint32_t tid) {
    std::uint32_t max_seq = 0;
    logs_[tid].for_each<LogRecord>([&](const LogRecord& r) {
      if (r.seq > max_seq) max_seq = r.seq;
    });
    return max_seq + 1;
  }

  void invoke(std::uint32_t tid, std::uint32_t seq, OpKind kind,
              std::uint64_t key, std::uint64_t arg, std::uint64_t epoch) {
    LogRecord rec{1, static_cast<std::uint32_t>(kind), tid, seq,
                  key, arg, ts_.fetch_add(1), epoch};
    logs_[tid].append(&rec, sizeof(rec));
  }
  void respond(std::uint32_t tid, std::uint32_t seq, OpKind kind,
               std::uint64_t key, std::uint64_t ret, std::uint64_t epoch) {
    LogRecord rec{0, static_cast<std::uint32_t>(kind), tid, seq,
                  key, ret, ts_.fetch_add(1), epoch};
    logs_[tid].append(&rec, sizeof(rec));
  }

  std::vector<std::vector<LogRecord>> dump() {
    std::vector<std::vector<LogRecord>> out(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t)
      logs_[t].for_each<LogRecord>(
          [&](const LogRecord& r) { out[t].push_back(r); });
    return out;
  }

 private:
  pmem::Pool& pool_;
  std::vector<pmdk::PmemLog> logs_;
  std::atomic<std::uint64_t> ts_{1};
};

/// One phase of recorded concurrent operations; stops early if a crash
/// point fires in any thread.
void run_phase(test::StoreHarness& h, Recorder& rec, std::uint64_t epoch,
               std::atomic<std::uint64_t>& value_seq, int ops_per_thread,
               std::uint64_t seed) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < Recorder::kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadRegistry::instance().bind(static_cast<int>(t));
      Xoshiro256 rng(seed * 97 + t);
      std::uint32_t seq = rec.next_seq(t);
      for (int i = 0; i < ops_per_thread && !stop.load(); ++i, ++seq) {
        const std::uint64_t key = 1 + rng.next_below(40);
        try {
          if (rng.next_below(2) == 0) {
            const std::uint64_t v = value_seq.fetch_add(1);
            rec.invoke(t, seq, OpKind::kWrite, key, v, epoch);
            auto old = h.store().insert(key, v);
            rec.respond(t, seq, OpKind::kWrite, key,
                        old.value_or(kInitialValue), epoch);
          } else {
            rec.invoke(t, seq, OpKind::kRead, key, 0, epoch);
            auto got = h.store().search(key);
            rec.respond(t, seq, OpKind::kRead, key,
                        got.value_or(kInitialValue), epoch);
          }
        } catch (const CrashException&) {
          stop.store(true);  // this thread dies mid-operation
          break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ThreadRegistry::instance().bind(0);
}

TEST(LinCheckCrashTrials, UPSkipListIsStrictlyLinearizable) {
  for (std::uint64_t trial = 1; trial <= 10; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    test::StoreHarness h(test::small_options(4, 10, 4));
    auto history_pool = pmem::Pool::create_anonymous(
        60, Recorder::kThreads * Recorder::kRegion, {.crash_tracking = true});
    Recorder rec(*history_pool, /*fresh=*/true);
    std::atomic<std::uint64_t> value_seq{1000 * trial};

    // Phase 1: run until a crash fires somewhere inside the store. Quiesce
    // on fire: survivors die at their next crash point / spin-guard poll
    // instead of wedging on a lock the crashed thread still holds.
    CrashPoints::instance().reset();
    CrashPoints::ArmSpec spec;
    spec.skip = 40 + trial * 13;
    spec.quiesce = true;
    CrashPoints::instance().arm(spec);
    run_phase(h, rec, h.store().epoch(), value_seq, 500, trial);
    CrashPoints::instance().disarm();

    // Power failure on both the store and the history pools.
    history_pool->simulate_crash();
    h.crash_and_reopen(trial % 2 == 0 ? pmem::CrashMode::kRandomEvict
                                      : pmem::CrashMode::kDiscardUnflushed,
                       trial);
    Recorder rec2(*history_pool, /*fresh=*/false);

    // Phase 2: post-crash threads reuse the ids and re-touch all keys.
    run_phase(h, rec2, h.store().epoch(), value_seq, 200, trial + 77);

    const auto ops = assemble(rec2.dump());
    const CheckResult result = check_strict(ops);
    EXPECT_TRUE(result.linearizable) << result.reason;
    EXPECT_GT(result.ops_checked, 100u);
  }
}

TEST(LinCheckCrashTrials, SeededBugsAreDetected) {
  // §6.3's analyzer validation: record a real history, then corrupt read
  // return values at random — the analyzer must flag every corruption.
  test::StoreHarness h(test::small_options(4, 10, 4));
  auto history_pool = pmem::Pool::create_anonymous(
      60, Recorder::kThreads * Recorder::kRegion, {.crash_tracking = true});
  Recorder rec(*history_pool, true);
  std::atomic<std::uint64_t> value_seq{1};
  run_phase(h, rec, h.store().epoch(), value_seq, 400, 5);

  auto base_records = rec.dump();
  ASSERT_TRUE(check_strict(assemble(base_records)).linearizable);

  int detected = 0;
  Xoshiro256 rng(9);
  for (int mutation = 0; mutation < 20; ++mutation) {
    auto records = base_records;
    // Corrupt one random read response.
    auto& stream = records[rng.next_below(records.size())];
    std::vector<std::size_t> read_resps;
    for (std::size_t i = 0; i < stream.size(); ++i)
      if (stream[i].kind_invoke == 0 &&
          stream[i].op == static_cast<std::uint32_t>(OpKind::kRead) &&
          stream[i].value != kInitialValue)
        read_resps.push_back(i);
    if (read_resps.empty()) continue;
    auto& rec_to_break = stream[read_resps[rng.next_below(read_resps.size())]];
    rec_to_break.value += 1000000 + rng.next_below(1000);
    if (!check_strict(assemble(records)).linearizable) ++detected;
  }
  EXPECT_GE(detected, 15) << "mutated histories must be flagged";
}

}  // namespace
}  // namespace upsl::lincheck
