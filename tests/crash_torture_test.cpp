// Concurrent crash–recovery torture: the in-process analogue of the thesis'
// overnight power-cycle campaign (§6.1.2). Each seeded iteration runs ≥4
// worker threads of mixed inserts/reads/removes/scans against one store,
// fires an injected crash in one (or a random) worker while the others are
// genuinely mid-operation, quiesces the survivors at their next crash point,
// snapshots the persistence domain under one of the two crash modes, and
// then re-crashes the *recovery itself* up to three nested times before the
// final verification:
//
//   * the durable-linearizability oracle (lincheck/oracle.hpp) replays the
//     DRAM invoke/ack history against the recovered store — every acked
//     write durable, every in-flight write atomic;
//   * check_invariants() — structural health;
//   * check_no_leaks() — exact block conservation, after every thread id
//     has re-allocated once so all deferred allocator recovery has run.
//
// Reproduction: every failure message carries the iteration seed; re-run
// with UPSL_TORTURE_SEED0=<seed> UPSL_TORTURE_ITERS=1 and the same shard
// filter (see docs/crash-testing.md).
//
// Knobs: UPSL_TORTURE_ITERS (iterations per shard, default 50),
// UPSL_TORTURE_THREADS (workers, default 4, min 4),
// UPSL_TORTURE_SEED0 (base seed, default 1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "common/corruption.hpp"
#include "common/crashpoint.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"
#include "lincheck/oracle.hpp"
#include "pmem/ack_batch.hpp"
#include "server/group_commit.hpp"
#include "test_util.hpp"

namespace upsl {
namespace {

using lincheck::DurableOracle;
using EvKind = DurableOracle::EvKind;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

int torture_threads() {
  const auto t = static_cast<int>(env_u64("UPSL_TORTURE_THREADS", 4));
  return t < 4 ? 4 : (t > 8 ? 8 : t);
}

/// Crash points that sit on the recovery paths themselves; the nested phase
/// arms one of these so a crash lands *inside* recovery.
constexpr const char* kRecoveryPoints[] = {
    "core.recovery_draining",  "core.recovery_claimed",
    "core.split_recover_scan", "core.split_recovered",
    "core.insert_recovered",   "core.node_recovered",
    "alloc.mag_recover_mid",   "alloc.mag_reclaim_block",
    "alloc.mag_recover_retiring", "alloc.stale_log_resolved",
    "alloc.recover_converted", "alloc.sweep_pending",
};

struct IterOutcome {
  bool main_crash_fired = false;
  int nested_crashes_fired = 0;
};

/// One complete torture iteration. Everything random derives from `seed`.
/// With `group_commit`, phase-1 mutations run the server's commit protocol:
/// each op defers its ack lines into an AckBatch, hands them to a shared
/// GroupCommit ticket and acks only after the covering cross-thread fence
/// retires — so the injected crash lands while acked durability was
/// provided by group fences, and the oracle still demands every acked
/// write survive.
IterOutcome run_iteration(std::uint64_t seed, pmem::CrashMode first_mode,
                          bool group_commit = false) {
  const int threads = torture_threads();
  Xoshiro256 rng(seed);
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4,
                                           /*max_height=*/10,
                                           /*max_threads=*/8));
  DurableOracle oracle(static_cast<std::uint32_t>(threads));
  std::atomic<std::uint64_t> next_value{1};
  const std::uint64_t keyspace = 120 + rng.next_below(200);

  // Preload a third of the keyspace (acked writes by thread 0) so removes
  // and splits have material from the first armed operation onward.
  for (std::uint64_t i = 0; i < keyspace / 3; ++i) {
    const std::uint64_t key = 1 + rng.next_below(keyspace);
    const std::uint64_t val = next_value.fetch_add(1);
    oracle.invoke(0, EvKind::kWrite, key, val);
    oracle.ack(0, h.store().insert(key, val));
  }

  // Group committer shared by every worker (short window so batches span
  // threads without stretching the test): used in phase 1 only — it dies
  // with the crash (abandon) like the server process would.
  std::unique_ptr<server::GroupCommit> gc;
  if (group_commit) gc = std::make_unique<server::GroupCommit>(20);
  // Run one mutation under the commit protocol: defer ack lines, submit,
  // wait for the covering fence. wait_durable throws CrashException when a
  // simulated crash quiesces the run, leaving the op unacked (in-flight).
  auto mutate = [&](auto&& op) -> std::optional<std::uint64_t> {
    if (gc == nullptr) return op();
    std::optional<std::uint64_t> r;
    std::uint64_t ticket;
    {
      pmem::AckBatch ab;
      r = op();
      ticket = gc->submit(ab.take_lines(), 1);
    }
    gc->wait_durable(ticket);
    return r;
  };

  // ---- phase 1: concurrent workload, one injected crash, quiesce --------
  CrashPoints::ArmSpec spec;
  spec.quiesce = true;
  // A worker's 600 ops pass a few hundred to ~2000 crash points (reads hit
  // none, updates ~2, splits ~10), so keep the fire window inside that.
  if (rng.next_below(3) == 0) {
    spec.probability = 1.0 / 128.0;  // probabilistic arming
    spec.seed = seed;
  } else {
    spec.skip = 10 + rng.next_below(250);
  }
  // Usually target one worker (the crash fires in it while the other N-1
  // are mid-operation); sometimes let any thread win the race.
  spec.thread = rng.next_below(4) == 0
                    ? -1
                    : static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(threads)));
  CrashPoints::instance().arm(spec);

  auto worker = [&](int t) {
    ThreadRegistry::instance().bind(t);
    Xoshiro256 trng(seed * 1000003 + static_cast<std::uint64_t>(t));
    const auto tid = static_cast<std::uint32_t>(t);
    try {
      for (int op = 0; op < 600; ++op) {
        CrashPoints::instance().poll();
        const std::uint64_t key = 1 + trng.next_below(keyspace);
        const std::uint64_t dice = trng.next_below(100);
        if (dice < 50) {
          const std::uint64_t val = next_value.fetch_add(1);
          oracle.invoke(tid, EvKind::kWrite, key, val);
          oracle.ack(tid, mutate([&] { return h.store().insert(key, val); }));
        } else if (dice < 80) {
          oracle.invoke(tid, EvKind::kRead, key);
          oracle.ack(tid, h.store().search(key));
        } else if (dice < 95) {
          oracle.invoke(tid, EvKind::kRemove, key);
          oracle.ack(tid, mutate([&] { return h.store().remove(key); }));
        } else {
          std::vector<core::ScanEntry> out;  // unrecorded structural stress
          h.store().scan(1, keyspace, out);
        }
      }
    } catch (const CrashException&) {
      // Died at a crash point — either as "the crash" or as a quiesced
      // survivor; its open op stays pending in the oracle.
    }
  };
  {
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) ws.emplace_back(worker, t);
    for (auto& w : ws) w.join();
  }
  // The crash takes the committer down with the workers: pending (un-fenced)
  // submissions are dropped exactly like un-retired flushes in a power
  // failure. Their waiters are already dead (quiesced at wait_durable).
  if (gc != nullptr) gc->abandon();
  IterOutcome out;
  out.main_crash_fired = CrashPoints::instance().fired();
  CrashPoints::instance().reset();
  oracle.on_crash();

  // Every reopen must rebuild the DRAM search layer before serving (when
  // the index is enabled) — the torture campaign exercises the rebuild on
  // every cycle, not just in dedicated tests.
  const auto reopen_checked = [&](pmem::CrashMode mode, std::uint64_t s) {
    const std::uint64_t rebuilds0 =
        pmem::Stats::instance().snapshot().index_rebuilds;
    h.crash_and_reopen(mode, s);
    if (h.store().dram_index_enabled()) {
      EXPECT_GT(pmem::Stats::instance().snapshot().index_rebuilds, rebuilds0)
          << "reopen did not rebuild the DRAM index [seed=" << seed << "]";
    }
  };
  reopen_checked(first_mode, seed ^ 0x9e3779b97f4a7c15ULL);

  // ---- phase 2: re-crash the recovery itself, up to 3 nested times ------
  const int nested = static_cast<int>(rng.next_below(4));
  for (int round = 0; round < nested; ++round) {
    CrashPoints::ArmSpec rspec;
    rspec.tag = crash_tag(
        kRecoveryPoints[rng.next_below(std::size(kRecoveryPoints))]);
    rspec.skip = rng.next_below(20);
    rspec.quiesce = true;
    CrashPoints::instance().arm(rspec);

    // Drive the deferred recovery from every thread id: searches claim and
    // repair stale nodes, inserts additionally run the per-thread allocator
    // recovery (magazines, stale logs, pending-chunk sweeps).
    auto driver = [&](int t) {
      ThreadRegistry::instance().bind(t);
      Xoshiro256 trng(seed * 7919 + static_cast<std::uint64_t>(round * 131 + t));
      const auto tid = static_cast<std::uint32_t>(t);
      try {
        for (int op = 0; op < 40; ++op) {
          CrashPoints::instance().poll();
          const std::uint64_t key = 1 + trng.next_below(keyspace);
          if (trng.next_below(2) == 0) {
            const std::uint64_t val = next_value.fetch_add(1);
            oracle.invoke(tid, EvKind::kWrite, key, val);
            oracle.ack(tid, h.store().insert(key, val));
          } else {
            oracle.invoke(tid, EvKind::kRead, key);
            oracle.ack(tid, h.store().search(key));
          }
        }
      } catch (const CrashException&) {
      }
    };
    std::vector<std::thread> ds;
    for (int t = 0; t < threads; ++t) ds.emplace_back(driver, t);
    for (auto& d : ds) d.join();

    if (CrashPoints::instance().fired()) ++out.nested_crashes_fired;
    CrashPoints::instance().reset();
    oracle.on_crash();
    // Alternate the crash mode across nested rounds for mixed coverage.
    const pmem::CrashMode mode =
        (round % 2 == 0) ? pmem::CrashMode::kRandomEvict : first_mode;
    reopen_checked(mode, seed + static_cast<std::uint64_t>(round) + 1);
  }

  // ---- phase 3: quiesced verification -----------------------------------
  CrashPoints::instance().reset();
  // Force the deferred per-thread allocator recovery for every worker id:
  // each inserts a run of fresh keys into its own empty key range, which
  // must split a node (keys_per_node=4 < 8 fresh keys through one gap) and
  // therefore allocate under that id. Sequential threads, distinct ids.
  for (int t = 0; t < threads; ++t) {
    std::thread tickler([&, t] {
      ThreadRegistry::instance().bind(t);
      const std::uint64_t base =
          1'000'000 + static_cast<std::uint64_t>(t) * 10'000;
      for (std::uint64_t i = 0; i < 8; ++i)
        h.store().insert(base + i, next_value.fetch_add(1));
    });
    tickler.join();
  }
  // Drain remaining lazy repairs so the structural checks see a settled
  // store (recovery is budgeted per traversal).
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t k = 1; k <= keyspace; ++k) h.store().search(k);

  const DurableOracle::Verdict verdict = oracle.verify(
      [&](std::uint64_t key) { return h.store().search(key); });
  EXPECT_TRUE(verdict.ok) << "oracle: " << verdict.reason
                          << " [seed=" << seed << "]";
  EXPECT_NO_THROW(h.store().check_invariants()) << "[seed=" << seed << "]";
  try {
    h.store().check_no_leaks();
  } catch (const std::exception& e) {
    ADD_FAILURE() << e.what() << " [seed=" << seed << "]\n"
                  << h.store().leak_report();
  }
  return out;
}

/// Sharded torture iteration: the same three-phase campaign against a 4-way
/// ShardSet. Mutations route by key, so the injected crash lands while
/// in-flight ops are spread across every shard; with `group_commit`, each
/// shard runs its own committer (the server's per-shard arrangement) and an
/// op waits on the committer of the shard that owns its key. Reopen is the
/// parallel ShardSet::open, which re-validates the durable topology every
/// cycle; verification is the global oracle (each key lives on exactly one
/// shard, so per-key durable linearizability is per-shard durable
/// linearizability) plus per-shard structural and leak checks.
IterOutcome run_sharded_iteration(std::uint64_t seed, pmem::CrashMode first_mode,
                                  bool group_commit = false) {
  constexpr std::uint32_t kShards = 4;
  const int threads = torture_threads();
  Xoshiro256 rng(seed);
  test::ShardHarness h(kShards, test::small_options(/*keys_per_node=*/4,
                                                    /*max_height=*/10,
                                                    /*max_threads=*/8));
  DurableOracle oracle(static_cast<std::uint32_t>(threads));
  std::atomic<std::uint64_t> next_value{1};
  const std::uint64_t keyspace = 120 + rng.next_below(200);

  for (std::uint64_t i = 0; i < keyspace / 3; ++i) {
    const std::uint64_t key = 1 + rng.next_below(keyspace);
    const std::uint64_t val = next_value.fetch_add(1);
    oracle.invoke(0, EvKind::kWrite, key, val);
    oracle.ack(0, h.set().insert(key, val));
  }
  h.mark_persisted();

  // One committer per shard, like the server: a mutation's ack lines go to
  // the committer of the shard that owns the key. SFENCE is CPU-global, so
  // each committer's fence is a valid covering fence for its batch even
  // while sibling shards mutate concurrently.
  std::vector<std::unique_ptr<server::GroupCommit>> gcs;
  if (group_commit)
    for (std::uint32_t s = 0; s < kShards; ++s)
      gcs.push_back(std::make_unique<server::GroupCommit>(20));
  auto mutate = [&](std::uint64_t key,
                    auto&& op) -> std::optional<std::uint64_t> {
    if (gcs.empty()) return op();
    server::GroupCommit* gc = gcs[h.set().shard_of(key)].get();
    std::optional<std::uint64_t> r;
    std::uint64_t ticket;
    {
      pmem::AckBatch ab;
      r = op();
      ticket = gc->submit(ab.take_lines(), 1);
    }
    gc->wait_durable(ticket);
    return r;
  };

  // ---- phase 1: concurrent routed workload, one injected crash -----------
  CrashPoints::ArmSpec spec;
  spec.quiesce = true;
  if (rng.next_below(3) == 0) {
    spec.probability = 1.0 / 128.0;
    spec.seed = seed;
  } else {
    spec.skip = 10 + rng.next_below(250);
  }
  spec.thread = rng.next_below(4) == 0
                    ? -1
                    : static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(threads)));
  CrashPoints::instance().arm(spec);

  auto worker = [&](int t) {
    ThreadRegistry::instance().bind(t);
    Xoshiro256 trng(seed * 1000003 + static_cast<std::uint64_t>(t));
    const auto tid = static_cast<std::uint32_t>(t);
    try {
      for (int op = 0; op < 600; ++op) {
        CrashPoints::instance().poll();
        const std::uint64_t key = 1 + trng.next_below(keyspace);
        const std::uint64_t dice = trng.next_below(100);
        if (dice < 50) {
          const std::uint64_t val = next_value.fetch_add(1);
          oracle.invoke(tid, EvKind::kWrite, key, val);
          oracle.ack(tid, mutate(key, [&] { return h.set().insert(key, val); }));
        } else if (dice < 80) {
          oracle.invoke(tid, EvKind::kRead, key);
          oracle.ack(tid, h.set().search(key));
        } else if (dice < 95) {
          oracle.invoke(tid, EvKind::kRemove, key);
          oracle.ack(tid, mutate(key, [&] { return h.set().remove(key); }));
        } else {
          std::vector<core::ScanEntry> out;  // cross-shard merge stress
          h.set().scan(1, keyspace, 0, out);
        }
      }
    } catch (const CrashException&) {
    }
  };
  {
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) ws.emplace_back(worker, t);
    for (auto& w : ws) w.join();
  }
  for (auto& gc : gcs) gc->abandon();
  IterOutcome out;
  out.main_crash_fired = CrashPoints::instance().fired();
  CrashPoints::instance().reset();
  oracle.on_crash();

  // Every cycle re-runs the parallel recovery and re-validates the durable
  // shard topology (a mismatch throws out of ShardSet::open and fails the
  // test via the harness).
  const auto reopen_checked = [&](pmem::CrashMode mode, std::uint64_t s) {
    const std::uint64_t rebuilds0 =
        pmem::Stats::instance().snapshot().index_rebuilds;
    h.crash_and_reopen(mode, s);
    if (h.set().shard(0).dram_index_enabled()) {
      EXPECT_GE(pmem::Stats::instance().snapshot().index_rebuilds,
                rebuilds0 + kShards)
          << "reopen did not rebuild every shard's DRAM index [seed=" << seed
          << "]";
    }
  };
  reopen_checked(first_mode, seed ^ 0x9e3779b97f4a7c15ULL);

  // ---- phase 2: re-crash the recovery itself ----------------------------
  const int nested = static_cast<int>(rng.next_below(4));
  for (int round = 0; round < nested; ++round) {
    CrashPoints::ArmSpec rspec;
    rspec.tag = crash_tag(
        kRecoveryPoints[rng.next_below(std::size(kRecoveryPoints))]);
    rspec.skip = rng.next_below(20);
    rspec.quiesce = true;
    CrashPoints::instance().arm(rspec);

    auto driver = [&](int t) {
      ThreadRegistry::instance().bind(t);
      Xoshiro256 trng(seed * 7919 + static_cast<std::uint64_t>(round * 131 + t));
      const auto tid = static_cast<std::uint32_t>(t);
      try {
        for (int op = 0; op < 40; ++op) {
          CrashPoints::instance().poll();
          const std::uint64_t key = 1 + trng.next_below(keyspace);
          if (trng.next_below(2) == 0) {
            const std::uint64_t val = next_value.fetch_add(1);
            oracle.invoke(tid, EvKind::kWrite, key, val);
            oracle.ack(tid, h.set().insert(key, val));
          } else {
            oracle.invoke(tid, EvKind::kRead, key);
            oracle.ack(tid, h.set().search(key));
          }
        }
      } catch (const CrashException&) {
      }
    };
    std::vector<std::thread> ds;
    for (int t = 0; t < threads; ++t) ds.emplace_back(driver, t);
    for (auto& d : ds) d.join();

    if (CrashPoints::instance().fired()) ++out.nested_crashes_fired;
    CrashPoints::instance().reset();
    oracle.on_crash();
    const pmem::CrashMode mode =
        (round % 2 == 0) ? pmem::CrashMode::kRandomEvict : first_mode;
    reopen_checked(mode, seed + static_cast<std::uint64_t>(round) + 1);
  }

  // ---- phase 3: quiesced verification -----------------------------------
  CrashPoints::instance().reset();
  // check_no_leaks needs every (thread id, shard) pair to have re-allocated
  // once: any worker may have allocated on any shard pre-crash (routed
  // ops), so each tickler thread inserts a run of fresh keys *owned by each
  // shard* — scan a disjoint candidate range for keys the map sends to s.
  for (int t = 0; t < threads; ++t) {
    std::thread tickler([&, t] {
      ThreadRegistry::instance().bind(t);
      for (std::uint32_t s = 0; s < kShards; ++s) {
        std::uint64_t k = 1'000'000 + static_cast<std::uint64_t>(t) * 100'000;
        for (int placed = 0; placed < 8; ++k) {
          if (h.set().shard_of(k) != s) continue;
          h.set().insert(k, next_value.fetch_add(1));
          ++placed;
        }
      }
    });
    tickler.join();
  }
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t k = 1; k <= keyspace; ++k) h.set().search(k);

  const DurableOracle::Verdict verdict =
      oracle.verify([&](std::uint64_t key) { return h.set().search(key); });
  EXPECT_TRUE(verdict.ok) << "oracle: " << verdict.reason
                          << " [seed=" << seed << "]";
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_NO_THROW(h.set().shard(s).check_invariants())
        << "shard " << s << " [seed=" << seed << "]";
    try {
      h.set().shard(s).check_no_leaks();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "shard " << s << ": " << e.what() << " [seed=" << seed
                    << "]\n"
                    << h.set().shard(s).leak_report();
    }
  }
  return out;
}

/// Detectable-sessions iteration (docs/detectability.md): workers are
/// durable client sessions pipelining 1–4 detectable mutations per
/// group-commit ticket. After the crash the harness replays the server's
/// reconnect-and-resolve protocol and holds the campaign to *exactly-once*
/// instead of either-outcome: every un-acked detectable op is resolved
/// through the session table, the per-session answers must form an applied
/// prefix of the issued seq order, resolved-applied ops feed the oracle
/// their durable results, resolved not-applied ops are cancelled and
/// replayed with the *same* seq (the replay must not dedup), and every op
/// still inside the result ring is probed with a duplicate replay that must
/// return the original result without re-applying. Discard mode only: a
/// detectable op's session record and its publish/ack lines ride one commit
/// ticket, so dropping un-fenced lines keeps them in agreement; random
/// eviction can persist one side without the other — the table stays
/// structurally sound there (detect_test sweeps those crash points), but the
/// strict op/record coupling this shard asserts does not hold.
IterOutcome run_detect_iteration(std::uint64_t seed) {
  // The shard *is* the detect campaign: pin the kill switch on so the CI's
  // UPSL_DISABLE_DETECT matrix leg doesn't silently degrade it to plain ops.
  test::ScopedDetect detect_on(true);
  const int threads = torture_threads();
  Xoshiro256 rng(seed);
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4,
                                           /*max_height=*/10,
                                           /*max_threads=*/8));
  DurableOracle oracle(static_cast<std::uint32_t>(threads));
  std::atomic<std::uint64_t> next_value{1};
  const std::uint64_t keyspace = 120 + rng.next_below(200);

  for (std::uint64_t i = 0; i < keyspace / 3; ++i) {
    const std::uint64_t key = 1 + rng.next_below(keyspace);
    const std::uint64_t val = next_value.fetch_add(1);
    oracle.invoke(0, EvKind::kWrite, key, val);
    oracle.ack(0, h.store().insert(key, val));
  }
  h.mark_persisted();

  // One issued detectable op: the seq stamped on the wire, its oracle event
  // index, and — once the covering fence retires or a post-crash RESOLVE
  // answers — the result the client holds for it.
  struct IssuedOp {
    std::uint64_t seq = 0;
    std::size_t ev = 0;
    bool is_insert = true;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::optional<std::uint64_t> prev;
  };
  struct SessionLog {
    std::uint64_t client_id = 0;
    std::vector<IssuedOp> ops;  // issue order == seq order
    std::size_t acked = 0;      // ops[0..acked) fence-covered and acked
  };
  std::vector<SessionLog> logs(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    logs[static_cast<std::size_t>(t)].client_id =
        1000 + static_cast<std::uint64_t>(t);

  auto gc = std::make_unique<server::GroupCommit>(20);

  // ---- phase 1: pipelined detectable workload, one injected crash --------
  CrashPoints::ArmSpec spec;
  spec.quiesce = true;
  if (rng.next_below(3) == 0) {
    spec.probability = 1.0 / 128.0;
    spec.seed = seed;
  } else {
    spec.skip = 10 + rng.next_below(250);
  }
  spec.thread = rng.next_below(4) == 0
                    ? -1
                    : static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(threads)));
  CrashPoints::instance().arm(spec);

  auto worker = [&](int t) {
    ThreadRegistry::instance().bind(t);
    SessionLog& log = logs[static_cast<std::size_t>(t)];
    Xoshiro256 trng(seed * 1000003 + static_cast<std::uint64_t>(t));
    const auto tid = static_cast<std::uint32_t>(t);
    try {
      const std::int32_t slot = h.store().sessions().open_session(log.client_id);
      if (slot < 0) {
        ADD_FAILURE() << "session table refused client " << log.client_id
                      << " [seed=" << seed << "]";
        return;
      }
      std::uint64_t seq = 0;
      for (int batch = 0; batch < 150; ++batch) {
        CrashPoints::instance().poll();
        // Pipeline k ops under one AckBatch/ticket; keep k well below the
        // result-ring depth (8) so no pending result can age out.
        const int k = 1 + static_cast<int>(trng.next_below(4));
        const std::size_t first = log.ops.size();
        std::uint64_t ticket;
        {
          pmem::AckBatch ab;
          for (int i = 0; i < k; ++i) {
            IssuedOp op;
            op.seq = ++seq;
            op.key = 1 + trng.next_below(keyspace);
            op.is_insert = trng.next_below(100) < 70;
            if (op.is_insert) {
              op.value = next_value.fetch_add(1);
              op.ev = oracle.invoke(tid, EvKind::kWrite, op.key, op.value);
            } else {
              op.ev = oracle.invoke(tid, EvKind::kRemove, op.key);
            }
            // Log before the call: dying mid-op leaves it issued-unresolved.
            log.ops.push_back(op);
            const core::UPSkipList::DetectOutcome r =
                op.is_insert
                    ? h.store().insert_detect(op.key, op.value, slot, op.seq)
                    : h.store().remove_detect(op.key, slot, op.seq);
            EXPECT_FALSE(r.duplicate)
                << "fresh seq " << op.seq << " deduped [seed=" << seed << "]";
            log.ops.back().prev = r.previous;
          }
          ticket = gc->submit(ab.take_lines(), static_cast<std::uint64_t>(k));
        }
        gc->wait_durable(ticket);
        for (std::size_t i = first; i < log.ops.size(); ++i)
          oracle.ack_at(tid, log.ops[i].ev, log.ops[i].prev);
        log.acked = log.ops.size();
      }
    } catch (const CrashException&) {
      // Died at a crash point; its un-acked tail stays issued-unresolved.
    }
  };
  {
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) ws.emplace_back(worker, t);
    for (auto& w : ws) w.join();
  }
  gc->abandon();
  IterOutcome out;
  out.main_crash_fired = CrashPoints::instance().fired();
  CrashPoints::instance().reset();
  oracle.on_crash();

  {
    const std::uint64_t rebuilds0 =
        pmem::Stats::instance().snapshot().index_rebuilds;
    h.crash_and_reopen(pmem::CrashMode::kDiscardUnflushed,
                       seed ^ 0x9e3779b97f4a7c15ULL);
    if (h.store().dram_index_enabled()) {
      EXPECT_GT(pmem::Stats::instance().snapshot().index_rebuilds, rebuilds0)
          << "reopen did not rebuild the DRAM index [seed=" << seed << "]";
    }
  }
  EXPECT_TRUE(h.store().sessions().valid())
      << "session table did not recover [seed=" << seed << "]";

  // ---- phase 2: reconnect-and-resolve, exactly-once ----------------------
  for (int t = 0; t < threads; ++t) {
    std::thread resolver([&, t] {
      ThreadRegistry::instance().bind(t);
      SessionLog& log = logs[static_cast<std::size_t>(t)];
      if (log.ops.empty()) return;
      const auto tid = static_cast<std::uint32_t>(t);
      const std::int32_t slot = h.store().sessions().open_session(log.client_id);
      if (slot < 0) {
        ADD_FAILURE() << "session " << log.client_id
                      << " vanished across the crash [seed=" << seed << "]";
        return;
      }
      bool not_applied_seen = false;
      for (std::size_t i = log.acked; i < log.ops.size(); ++i) {
        IssuedOp& op = log.ops[i];
        const detect::ResolveResult r =
            h.store().sessions().resolve(log.client_id, op.seq);
        switch (r.state) {
          case detect::ResolveResult::State::kApplied:
            // Exactly-once: per-session answers must be an applied prefix of
            // the issued order (a later op durable while an earlier one was
            // dropped would mean an op outran its predecessor's fence).
            EXPECT_FALSE(not_applied_seen)
                << "seq " << op.seq << " applied after an earlier seq was "
                << "not [seed=" << seed << "]";
            op.prev = r.has_previous != 0
                          ? std::optional<std::uint64_t>(r.result)
                          : std::nullopt;
            oracle.resolve_applied(tid, op.ev, op.prev);
            break;
          case detect::ResolveResult::State::kNotApplied: {
            not_applied_seen = true;
            oracle.resolve_not_applied(tid, op.ev);
            // Replay with the same seq and a fresh payload — the durable
            // answer said the original never took effect, so the replay must
            // apply (a dedup here would be a lost mutation).
            core::UPSkipList::DetectOutcome d;
            std::size_t ev;
            if (op.is_insert) {
              op.value = next_value.fetch_add(1);
              ev = oracle.invoke(tid, EvKind::kWrite, op.key, op.value);
              d = h.store().insert_detect(op.key, op.value, slot, op.seq);
            } else {
              ev = oracle.invoke(tid, EvKind::kRemove, op.key);
              d = h.store().remove_detect(op.key, slot, op.seq);
            }
            EXPECT_FALSE(d.duplicate)
                << "replay of not-applied seq " << op.seq
                << " deduped [seed=" << seed << "]";
            oracle.ack_at(tid, ev, d.previous);
            op.prev = d.previous;
            break;
          }
          case detect::ResolveResult::State::kAppliedUnknown:
            ADD_FAILURE() << "seq " << op.seq << " aged out of the result "
                          << "ring with <= 4 ops in flight [seed=" << seed
                          << "]";
            oracle.resolve_not_applied(tid, op.ev);
            break;
          case detect::ResolveResult::State::kUnknownSession:
            ADD_FAILURE() << "session " << log.client_id
                          << " unknown though it issued ops [seed=" << seed
                          << "]";
            oracle.resolve_not_applied(tid, op.ev);
            break;
        }
      }
      // Duplicate probes: every op still inside the ring window must dedup —
      // same seq, different payload, byte-identical original result, and no
      // second application (a re-applied payload would surface as a
      // never-written value in the oracle's readback).
      const std::uint64_t highest = log.ops.back().seq;
      for (const IssuedOp& op : log.ops) {
        if (op.seq + detect::SessionTable::kRingSize <= highest) continue;
        const core::UPSkipList::DetectOutcome d =
            op.is_insert ? h.store().insert_detect(
                               op.key, next_value.fetch_add(1), slot, op.seq)
                         : h.store().remove_detect(op.key, slot, op.seq);
        EXPECT_TRUE(d.duplicate)
            << "probe of seq " << op.seq << " re-applied [seed=" << seed
            << "]";
        EXPECT_TRUE(d.result_known)
            << "probe of seq " << op.seq << " lost its result [seed=" << seed
            << "]";
        EXPECT_TRUE(d.previous == op.prev)
            << "probe of seq " << op.seq
            << " returned a different result [seed=" << seed << "]";
      }
    });
    resolver.join();
  }

  // ---- phase 3: quiesced verification -----------------------------------
  CrashPoints::instance().reset();
  for (int t = 0; t < threads; ++t) {
    std::thread tickler([&, t] {
      ThreadRegistry::instance().bind(t);
      const std::uint64_t base =
          1'000'000 + static_cast<std::uint64_t>(t) * 10'000;
      for (std::uint64_t i = 0; i < 8; ++i)
        h.store().insert(base + i, next_value.fetch_add(1));
    });
    tickler.join();
  }
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t k = 1; k <= keyspace; ++k) h.store().search(k);

  const DurableOracle::Verdict verdict = oracle.verify(
      [&](std::uint64_t key) { return h.store().search(key); });
  EXPECT_TRUE(verdict.ok) << "oracle: " << verdict.reason
                          << " [seed=" << seed << "]";
  EXPECT_NO_THROW(h.store().check_invariants()) << "[seed=" << seed << "]";
  try {
    h.store().check_no_leaks();
  } catch (const std::exception& e) {
    ADD_FAILURE() << e.what() << " [seed=" << seed << "]\n"
                  << h.store().leak_report();
  }
  return out;
}

/// Corruption-torture iteration (docs/integrity.md): the usual concurrent
/// workload and injected crash, then — between the crash and the reopen —
/// a seeded medium strike against a stamp-covered durable surface of one
/// victim node (header words meta/self_riv/key0, or the whole header line
/// zeroed). The reopen's quarantine scan must detect the damage, bridge
/// around it, and report the lost key range; the oracle then holds the
/// campaign to the corruption contract: every acked key is recovered intact
/// or explicitly reported lost — never silently wrong. Leak checks are
/// skipped by design: quarantine leaks the damaged node's blocks on
/// purpose rather than trusting its contents.
struct CorruptionOutcome {
  bool main_crash_fired = false;
  bool struck = false;
  bool quarantined = false;
  std::string strike_desc;
};

CorruptionOutcome run_corruption_iteration(std::uint64_t seed,
                                           pmem::CrashMode mode) {
  // The shard *is* the integrity campaign: pin stamps on so the CI's
  // UPSL_DISABLE_CHECKSUMS matrix leg doesn't degrade detection to noise.
  test::ScopedChecksums checksums_on(true);
  const int threads = torture_threads();
  Xoshiro256 rng(seed);
  test::StoreHarness h(test::small_options(/*keys_per_node=*/4,
                                           /*max_height=*/10,
                                           /*max_threads=*/8));
  DurableOracle oracle(static_cast<std::uint32_t>(threads));
  std::atomic<std::uint64_t> next_value{1};
  const std::uint64_t keyspace = 120 + rng.next_below(200);

  for (std::uint64_t i = 0; i < keyspace / 3; ++i) {
    const std::uint64_t key = 1 + rng.next_below(keyspace);
    const std::uint64_t val = next_value.fetch_add(1);
    oracle.invoke(0, EvKind::kWrite, key, val);
    oracle.ack(0, h.store().insert(key, val));
  }

  // ---- phase 1: concurrent workload, one injected crash ------------------
  CrashPoints::ArmSpec spec;
  spec.quiesce = true;
  if (rng.next_below(3) == 0) {
    spec.probability = 1.0 / 128.0;
    spec.seed = seed;
  } else {
    spec.skip = 10 + rng.next_below(250);
  }
  spec.thread = rng.next_below(4) == 0
                    ? -1
                    : static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(threads)));
  CrashPoints::instance().arm(spec);

  auto worker = [&](int t) {
    ThreadRegistry::instance().bind(t);
    Xoshiro256 trng(seed * 1000003 + static_cast<std::uint64_t>(t));
    const auto tid = static_cast<std::uint32_t>(t);
    try {
      for (int op = 0; op < 600; ++op) {
        CrashPoints::instance().poll();
        const std::uint64_t key = 1 + trng.next_below(keyspace);
        const std::uint64_t dice = trng.next_below(100);
        if (dice < 50) {
          const std::uint64_t val = next_value.fetch_add(1);
          oracle.invoke(tid, EvKind::kWrite, key, val);
          oracle.ack(tid, h.store().insert(key, val));
        } else if (dice < 85) {
          oracle.invoke(tid, EvKind::kRead, key);
          oracle.ack(tid, h.store().search(key));
        } else {
          oracle.invoke(tid, EvKind::kRemove, key);
          oracle.ack(tid, h.store().remove(key));
        }
      }
    } catch (const CrashException&) {
    }
  };
  {
    std::vector<std::thread> ws;
    for (int t = 0; t < threads; ++t) ws.emplace_back(worker, t);
    for (auto& w : ws) w.join();
  }
  CorruptionOutcome out;
  out.main_crash_fired = CrashPoints::instance().fired();
  CrashPoints::instance().reset();
  oracle.on_crash();

  // ---- phase 2: strike a stamp-covered surface, then reopen --------------
  // Victim: the level-0 node (in the pre-crash mapping, still valid until
  // the remap inside crash_corrupt_reopen) owning a random workload key.
  // Only stamp-covered header words are struck — meta@24, self_riv@40,
  // key0@56, or the whole header line — so detection is guaranteed by
  // design rather than probabilistic (in-node key/value payload is
  // deliberately uncovered, docs/integrity.md).
  const std::uint64_t victim_key = 1 + rng.next_below(keyspace);
  const std::uint64_t victim_riv = h.store().debug_node_riv_for(victim_key);
  char* victim = victim_riv != 0
                     ? static_cast<char*>(
                           riv::Runtime::instance().to_ptr(victim_riv))
                     : nullptr;
  const std::uint64_t shape = rng.next_below(4);
  const std::uint64_t draw = rng.next() | 1;
  h.crash_corrupt_reopen(
      [&](std::vector<pmem::Pool*>) {
        if (victim == nullptr) return;
        CorruptionHit hit{};
        switch (shape) {
          case 0:
            hit = CorruptionPoints::bit_flip(victim + 24, 8, draw);
            break;
          case 1:
            hit = CorruptionPoints::bit_flip(victim + 40, 8, draw);
            break;
          case 2:
            hit = CorruptionPoints::torn_word(victim + 56, 8, draw);
            break;
          default:
            hit = CorruptionPoints::zero_line(victim, 64, 0);
        }
        out.struck = true;
        std::ostringstream os;
        os << corruption_kind_name(hit.kind) << " on node riv 0x" << std::hex
           << victim_riv << " header word +" << std::dec
           << (shape == 0 ? 24 : shape == 1 ? 40 : shape == 2 ? 56 : 0)
           << " (before=0x" << std::hex << hit.before << " after=0x"
           << hit.after << std::dec << ")";
        out.strike_desc = os.str();
      },
      mode, seed ^ 0x9e3779b97f4a7c15ULL);

  // The report must be captured before phase 3: verify_deep() would also
  // work, but the open-time verdict is what a restarting server acts on.
  const core::IntegrityReport report = h.store().integrity();
  out.quarantined = report.degraded();
  if (out.struck && out.quarantined) {
    EXPECT_GE(report.nodes_quarantined + (report.root_mode_repaired ? 1 : 0),
              1u)
        << "[seed=" << seed << " " << out.strike_desc << "]";
  }

  // ---- phase 3: quiesced verification ------------------------------------
  CrashPoints::instance().reset();
  for (int t = 0; t < threads; ++t) {
    std::thread tickler([&, t] {
      ThreadRegistry::instance().bind(t);
      const std::uint64_t base =
          1'000'000 + static_cast<std::uint64_t>(t) * 10'000;
      for (std::uint64_t i = 0; i < 8; ++i)
        h.store().insert(base + i, next_value.fetch_add(1));
    });
    tickler.join();
  }
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t k = 1; k <= keyspace; ++k) h.store().search(k);

  const DurableOracle::Verdict verdict = oracle.verify(
      [&](std::uint64_t key) { return h.store().search(key); },
      [&](std::uint64_t key) { return report.covers(key); });
  EXPECT_TRUE(verdict.ok) << "oracle: " << verdict.reason << " [seed=" << seed
                          << (out.struck ? " " + out.strike_desc : "") << "]";
  EXPECT_NO_THROW(h.store().check_invariants())
      << "[seed=" << seed << (out.struck ? " " + out.strike_desc : "") << "]";
  // No check_no_leaks: quarantine leaks the victim's blocks on purpose.
  return out;
}

/// Runs `iters` seeded iterations under `mode` and reports the failing seed
/// (the CI greps for "failing seed" on error).
void run_shard(const char* shard, std::uint64_t seed_base,
               pmem::CrashMode mode, bool group_commit = false,
               bool sharded_store = false) {
  const std::uint64_t iters = env_u64("UPSL_TORTURE_ITERS", 50);
  // An explicit UPSL_TORTURE_SEED0 is an absolute seed (what a failure
  // message printed); the default campaign offsets each shard so the eight
  // shards cover disjoint seed ranges.
  const bool explicit_seed = std::getenv("UPSL_TORTURE_SEED0") != nullptr;
  const std::uint64_t seed0 =
      explicit_seed ? env_u64("UPSL_TORTURE_SEED0", 1) : 1 + seed_base;
  std::uint64_t fired = 0;
  std::uint64_t nested_fired = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = seed0 + i;
    SCOPED_TRACE(std::string(shard) + " iteration " + std::to_string(i) +
                 " seed " + std::to_string(seed));
    const IterOutcome out = sharded_store
                                ? run_sharded_iteration(seed, mode, group_commit)
                                : run_iteration(seed, mode, group_commit);
    fired += out.main_crash_fired ? 1 : 0;
    nested_fired += static_cast<std::uint64_t>(out.nested_crashes_fired);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "\n*** crash_torture failing seed: %llu (shard %s, "
                   "reproduce with UPSL_TORTURE_SEED0=%llu "
                   "UPSL_TORTURE_ITERS=1) ***\n\n",
                   static_cast<unsigned long long>(seed), shard,
                   static_cast<unsigned long long>(seed));
      return;
    }
  }
  // The campaign is only meaningful if crashes actually land mid-workload:
  // require the injected crash to fire in the large majority of iterations
  // (a miss — the fire window outrunning a read-heavy worker's hits — is
  // still a valid clean-crash iteration) and the nested recovery re-crash
  // to fire at least sometimes.
  EXPECT_GE(fired * 5, iters * 4)
      << "main crash fired in only " << fired << "/" << iters
      << " iterations";
  if (iters >= 20) {
    EXPECT_GT(nested_fired, 0u)
        << "recovery-path crash never fired across " << iters
        << " iterations";
  }
}

TEST(CrashTorture, DiscardModeShardA) {
  run_shard("discard-a", 0, pmem::CrashMode::kDiscardUnflushed);
}

TEST(CrashTorture, DiscardModeShardB) {
  run_shard("discard-b", 100'000, pmem::CrashMode::kDiscardUnflushed);
}

TEST(CrashTorture, EvictModeShardA) {
  run_shard("evict-a", 200'000, pmem::CrashMode::kRandomEvict);
}

TEST(CrashTorture, EvictModeShardB) {
  run_shard("evict-b", 300'000, pmem::CrashMode::kRandomEvict);
}

// The four shards above run with the DRAM search layer on (the default), so
// the durable-linearizability oracle gates the index path and every cycle
// exercises the rebuild. This shard pins the legacy persistent-towers mode
// so both traversal/recovery paths stay under the campaign.
TEST(CrashTorture, DiscardModePersistentTowers) {
  test::ScopedEnv off("UPSL_DISABLE_DRAM_INDEX", "1");
  run_shard("discard-towers", 400'000, pmem::CrashMode::kDiscardUnflushed);
}

// Group-commit shard: acked durability in phase 1 is provided by shared
// cross-thread fences (the server's commit protocol, docs/write-path.md)
// instead of per-op persists; the oracle's acked-writes-survive check now
// gates the MOD write path + AckBatch + GroupCommit combination under
// injected crashes, including crashes that strand waiters mid-window.
TEST(CrashTorture, DiscardModeGroupCommit) {
  run_shard("discard-groupcommit", 500'000,
            pmem::CrashMode::kDiscardUnflushed, /*group_commit=*/true);
}

// Sharded-store shard: the whole campaign against a 4-way ShardSet with
// per-shard group committers — crashes land with in-flight mutations spread
// across shards, every reopen runs the parallel recovery and re-validates
// the durable topology, and the leak/invariant checks run per shard.
TEST(CrashTorture, DiscardModeShardedStore) {
  run_shard("discard-sharded", 600'000, pmem::CrashMode::kDiscardUnflushed,
            /*group_commit=*/true, /*sharded_store=*/true);
}

// Detectable-sessions shard: phase 1 runs pipelined detectable mutations
// through the group committer, and the post-crash phase upgrades the oracle
// from either-outcome to exactly-once — every un-acked op is resolved
// through the durable session table, not-applied ops replay under the same
// seq, and duplicate probes must return original results without
// re-applying. No nested recovery re-crash: the resolve/replay protocol
// itself is the recovery under test (run_detect_iteration for the details).
TEST(CrashTorture, DiscardModeDetectableSessions) {
  const std::uint64_t iters = env_u64("UPSL_TORTURE_ITERS", 50);
  const bool explicit_seed = std::getenv("UPSL_TORTURE_SEED0") != nullptr;
  const std::uint64_t seed0 =
      explicit_seed ? env_u64("UPSL_TORTURE_SEED0", 1) : 1 + 700'000;
  std::uint64_t fired = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = seed0 + i;
    SCOPED_TRACE("discard-detect iteration " + std::to_string(i) + " seed " +
                 std::to_string(seed));
    const IterOutcome out = run_detect_iteration(seed);
    fired += out.main_crash_fired ? 1 : 0;
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "\n*** crash_torture failing seed: %llu (shard "
                   "discard-detect, reproduce with UPSL_TORTURE_SEED0=%llu "
                   "UPSL_TORTURE_ITERS=1) ***\n\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      return;
    }
  }
  EXPECT_GE(fired * 5, iters * 4)
      << "main crash fired in only " << fired << "/" << iters
      << " iterations";
}

// Corruption-torture shard: crash + seeded medium strike on a stamp-covered
// node-header surface + reopen, verified against the corruption contract
// (intact or explicitly reported lost, never silently wrong) in both crash
// modes. A failure prints the seed AND the exact strike (kind, riv, word,
// before/after) for one-command reproduction.
TEST(CrashTorture, CorruptionQuarantine) {
  const std::uint64_t iters = env_u64("UPSL_TORTURE_ITERS", 50);
  const bool explicit_seed = std::getenv("UPSL_TORTURE_SEED0") != nullptr;
  const std::uint64_t seed0 =
      explicit_seed ? env_u64("UPSL_TORTURE_SEED0", 1) : 1 + 800'000;
  std::uint64_t fired = 0;
  std::uint64_t struck = 0;
  std::uint64_t quarantined = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = seed0 + i;
    const pmem::CrashMode mode = (seed % 2 == 0)
                                     ? pmem::CrashMode::kRandomEvict
                                     : pmem::CrashMode::kDiscardUnflushed;
    SCOPED_TRACE("discard-corrupt iteration " + std::to_string(i) + " seed " +
                 std::to_string(seed));
    const CorruptionOutcome out = run_corruption_iteration(seed, mode);
    fired += out.main_crash_fired ? 1 : 0;
    struck += out.struck ? 1 : 0;
    quarantined += out.quarantined ? 1 : 0;
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "\n*** crash_torture failing seed: %llu (shard "
                   "discard-corrupt, strike: %s, reproduce with "
                   "UPSL_TORTURE_SEED0=%llu UPSL_TORTURE_ITERS=1) ***\n\n",
                   static_cast<unsigned long long>(seed),
                   out.struck ? out.strike_desc.c_str() : "none",
                   static_cast<unsigned long long>(seed));
      return;
    }
  }
  EXPECT_GE(fired * 5, iters * 4)
      << "main crash fired in only " << fired << "/" << iters
      << " iterations";
  // The campaign is only meaningful if strikes actually land on durable
  // reachable nodes and the quarantine path actually runs.
  EXPECT_GE(struck * 2, iters)
      << "medium strike landed in only " << struck << "/" << iters
      << " iterations";
  if (iters >= 20) {
    EXPECT_GT(quarantined, 0u)
        << "corruption was never detected/quarantined across " << iters
        << " iterations";
  }
}

}  // namespace
}  // namespace upsl
