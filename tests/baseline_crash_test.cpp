// Crash-durability tests for the two baseline structures: crashes injected
// at every instrumented point of BzTree/PMwCAS and the PMDK lock-based skip
// list must never lose an acknowledged operation nor leave the structure
// unusable after recovery. These are the baselines' equivalents of the
// UPSkipList crash suite (crash_test.cpp).
#include <gtest/gtest.h>

#include <map>

#include "bztree/bztree.hpp"
#include "common/crashpoint.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "lockskiplist/lock_skiplist.hpp"

namespace upsl {
namespace {

// ---- BzTree ---------------------------------------------------------------

const char* const kBzPoints[] = {
    "pmwcas.installed",     "pmwcas.decided",  "pmwcas.propagated",
    "bztree.slot_reserved", "bztree.payload_written", "bztree.visible",
    "bztree.smo_built",     "bztree.smo_published",
};

class BzCrash : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ThreadRegistry::instance().bind(0);
    CrashPoints::instance().reset();
    pool_ = pmem::Pool::create_anonymous(0, 128u << 20, {.crash_tracking = true});
    bztree::BzTree::Config cfg;
    cfg.leaf_capacity = 16;
    cfg.internal_capacity = 8;
    cfg.descriptor_count = 4096;
    tree_ = bztree::BzTree::create(*pool_, cfg);
    pool_->mark_all_persisted();
  }
  void TearDown() override { CrashPoints::instance().reset(); }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<bztree::BzTree> tree_;
};

TEST_P(BzCrash, AcknowledgedOperationsSurvive) {
  bool fired_any = false;
  for (std::uint64_t skip : {0u, 9u, 33u}) {
    SCOPED_TRACE(std::string(GetParam()) + " skip=" + std::to_string(skip));
    SetUp();
    std::map<std::uint64_t, std::uint64_t> acked;
    CrashPoints::instance().arm(crash_tag(GetParam()), skip);
    Xoshiro256 rng(skip + 3);
    bool fired = false;
    try {
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = 1 + rng.next_below(400);
        const std::uint64_t value = 1 + (rng.next() >> 3);
        tree_->insert(key, value);
        acked[key] = value;
      }
    } catch (const CrashException&) {
      fired = true;
    }
    CrashPoints::instance().disarm();
    if (!fired) break;
    fired_any = true;

    pool_->simulate_crash();
    tree_ = bztree::BzTree::open(*pool_);  // descriptor-pool recovery
    for (const auto& [k, v] : acked) {
      auto got = tree_->search(k);
      ASSERT_TRUE(got.has_value()) << "acknowledged key " << k << " lost";
      EXPECT_EQ(*got, v);
    }
    // Still fully usable.
    for (std::uint64_t k = 10001; k <= 10050; ++k)
      EXPECT_FALSE(tree_->insert(k, k).has_value());
    for (std::uint64_t k = 10001; k <= 10050; ++k)
      EXPECT_EQ(*tree_->search(k), k);
    tree_->check_invariants();
  }
  if (!fired_any) GTEST_SKIP() << "point not reached";
}

INSTANTIATE_TEST_SUITE_P(Points, BzCrash, ::testing::ValuesIn(kBzPoints),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s)
                             if (c == '.') c = '_';
                           return s;
                         });

// ---- PMDK lock-based skip list ---------------------------------------------

const char* const kLslPoints[] = {"pmdk.tx_added", "pmdk.pre_commit",
                                  "pmdk.committed"};

class LslCrash : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ThreadRegistry::instance().bind(0);
    CrashPoints::instance().reset();
    pool_ = pmem::Pool::create_anonymous(0, 64u << 20, {.crash_tracking = true});
    list_ = lsl::LockSkipList::create(*pool_);
    pool_->mark_all_persisted();
  }
  void TearDown() override { CrashPoints::instance().reset(); }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<lsl::LockSkipList> list_;
};

TEST_P(LslCrash, AcknowledgedOperationsSurvive) {
  bool fired_any = false;
  for (std::uint64_t skip : {0u, 7u, 29u}) {
    SCOPED_TRACE(std::string(GetParam()) + " skip=" + std::to_string(skip));
    SetUp();
    std::map<std::uint64_t, std::uint64_t> acked;
    CrashPoints::instance().arm(crash_tag(GetParam()), skip);
    Xoshiro256 rng(skip + 11);
    bool fired = false;
    try {
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = 1 + rng.next_below(400);
        const std::uint64_t value = 1 + (rng.next() >> 1);
        list_->insert(key, value);
        acked[key] = value;
      }
    } catch (const CrashException&) {
      fired = true;
    }
    CrashPoints::instance().disarm();
    if (!fired) break;
    fired_any = true;

    pool_->simulate_crash();
    list_ = lsl::LockSkipList::open(*pool_);  // rolls back in-flight txs
    for (const auto& [k, v] : acked) {
      auto got = list_->search(k);
      ASSERT_TRUE(got.has_value()) << "acknowledged key " << k << " lost";
      EXPECT_EQ(*got, v);
    }
    for (std::uint64_t k = 20001; k <= 20050; ++k)
      EXPECT_FALSE(list_->insert(k, k).has_value());
    for (std::uint64_t k = 20001; k <= 20050; ++k)
      EXPECT_EQ(*list_->search(k), k);
    list_->check_invariants();
  }
  if (!fired_any) GTEST_SKIP() << "point not reached";
}

INSTANTIATE_TEST_SUITE_P(Points, LslCrash, ::testing::ValuesIn(kLslPoints),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s)
                             if (c == '.') c = '_';
                           return s;
                         });

// The PMwCAS crash points also matter for pure-PMwCAS users: the aborted
// operation must be invisible (rolled back) or fully applied after recovery.
TEST(PmwcasCrash, InterruptedMwcasIsAtomicAcrossRecovery) {
  ThreadRegistry::instance().bind(0);
  for (const char* point : {"pmwcas.installed", "pmwcas.decided",
                            "pmwcas.propagated"}) {
    for (std::uint64_t skip : {0u, 1u, 2u}) {
      SCOPED_TRACE(std::string(point) + " skip=" + std::to_string(skip));
      CrashPoints::instance().reset();
      auto pool =
          pmem::Pool::create_anonymous(0, 8u << 20, {.crash_tracking = true});
      pmwcas::DescriptorPool::format(*pool, 0, 2048);
      pmwcas::DescriptorPool descs(*pool, 0, 2048);
      auto* words = reinterpret_cast<std::uint64_t*>(
          pool->base() + sizeof(pmwcas::Descriptor) * 2048 + 4096);
      words[0] = 1;
      words[1] = 2;
      words[2] = 3;
      pool->mark_all_persisted();

      CrashPoints::instance().arm(crash_tag(point), skip);
      try {
        descs.mwcas({{&words[0], 1, 10}, {&words[1], 2, 20},
                     {&words[2], 3, 30}});
      } catch (const CrashException&) {
      }
      CrashPoints::instance().disarm();
      pool->simulate_crash();
      descs.recover();

      const std::uint64_t a = words[0];
      const std::uint64_t b = words[1];
      const std::uint64_t c = words[2];
      const bool all_old = a == 1 && b == 2 && c == 3;
      const bool all_new = a == 10 && b == 20 && c == 30;
      EXPECT_TRUE(all_old || all_new)
          << "torn MwCAS after recovery: " << a << "," << b << "," << c;
    }
  }
  CrashPoints::instance().reset();
}

}  // namespace
}  // namespace upsl
