// Tests for the common utilities: latency histogram accuracy/merging, RNG
// distributions and determinism, crash-point arming, thread registry.
#include <gtest/gtest.h>

#include <thread>

#include "common/compiler.hpp"
#include "common/crashpoint.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"

namespace upsl {
namespace {

TEST(Histogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.percentile(50), 16u);
  EXPECT_EQ(h.max(), 31u);
}

TEST(Histogram, RelativeErrorBounded) {
  LatencyHistogram h;
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = 100 + rng.next_below(1000000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const auto exact =
        values[static_cast<std::size_t>(p / 100 * values.size())];
    const auto approx = h.percentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05)
        << "p" << p;
  }
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram both;
  Xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_below(1 << 20);
    ((i % 2 != 0) ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  for (double p : {10.0, 50.0, 99.0})
    EXPECT_EQ(a.percentile(p), both.percentile(p));
}

TEST(Histogram, MeanAndReset) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_NEAR(h.mean(), 1000.0, 1000.0 * 0.05);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, GeometricHeightDistribution) {
  Xoshiro256 rng(3);
  std::vector<int> counts(33, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) counts[rng.geometric_height(32)]++;
  // P(h=1) ~ 1/2, P(h=2) ~ 1/4, ...
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kSamples, 0.125, 0.01);
  // Every sample respects the cap.
  Xoshiro256 rng2(4);
  for (int i = 0; i < 1000; ++i) {
    const int h = rng2.geometric_height(4);
    EXPECT_GE(h, 1);
    EXPECT_LE(h, 4);
  }
}

TEST(Rng, NextBelowAndDouble) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Alignment, Helpers) {
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_down(127, 64), 64u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(96));
  EXPECT_FALSE(is_pow2(0));
}

TEST(CrashPoints, SkipCountsMatchingTagsOnly) {
  auto& cp = CrashPoints::instance();
  cp.reset();
  cp.arm(crash_tag("x"), 2);
  EXPECT_NO_THROW(cp.hit(crash_tag("y")));  // non-matching: not counted
  EXPECT_NO_THROW(cp.hit(crash_tag("x")));  // skip 2
  EXPECT_NO_THROW(cp.hit(crash_tag("x")));  // skip 1
  EXPECT_THROW(cp.hit(crash_tag("x")), CrashException);
  EXPECT_TRUE(cp.fired());
  EXPECT_NO_THROW(cp.hit(crash_tag("x")));  // disarmed after firing
  cp.reset();
}

TEST(CrashPoints, WildcardTagMatchesEverything) {
  auto& cp = CrashPoints::instance();
  cp.reset();
  cp.arm(0, 1);
  EXPECT_NO_THROW(cp.hit(crash_tag("a")));
  EXPECT_THROW(cp.hit(crash_tag("b")), CrashException);
  cp.reset();
}

TEST(CrashPoints, PerThreadArmingFiresOnlyInTargetThread) {
  auto& cp = CrashPoints::instance();
  cp.reset();
  ThreadRegistry::instance().bind(0);
  CrashPoints::ArmSpec spec;
  spec.thread = 3;
  cp.arm(spec);
  EXPECT_NO_THROW(cp.hit(crash_tag("x")));  // wrong thread: not even counted
  EXPECT_FALSE(cp.fired());
  std::thread t([&] {
    ThreadRegistry::instance().bind(3);
    EXPECT_THROW(cp.hit(crash_tag("x")), CrashException);
  });
  t.join();
  EXPECT_TRUE(cp.fired());
  cp.reset();
}

TEST(CrashPoints, ProbabilisticArmingIsSeedReproducible) {
  auto& cp = CrashPoints::instance();
  auto first_fire = [&](std::uint64_t seed) {
    cp.reset();
    CrashPoints::ArmSpec spec;
    spec.probability = 0.05;
    spec.seed = seed;
    cp.arm(spec);
    for (int i = 0; i < 10000; ++i) {
      try {
        cp.hit(crash_tag("p"));
      } catch (const CrashException&) {
        return i;
      }
    }
    return -1;
  };
  const int a = first_fire(42);
  const int b = first_fire(42);
  EXPECT_GE(a, 0) << "p=0.05 over 10000 hits must fire";
  EXPECT_EQ(a, b) << "same seed, same thread: same firing hit";
  // Different seeds should give distinct streams. Any single pair can
  // legitimately collide on the first firing index (P ~ p/(2-p)), so
  // require only that a batch of seeds is not all identical.
  bool any_differs = false;
  for (std::uint64_t s = 43; s < 51 && !any_differs; ++s)
    any_differs = first_fire(s) != a;
  EXPECT_TRUE(any_differs) << "8 other seeds all fired at hit " << a;
  cp.reset();
}

TEST(CrashPoints, QuiesceKillsEveryThreadAfterTheFire) {
  auto& cp = CrashPoints::instance();
  cp.reset();
  CrashPoints::ArmSpec spec;
  spec.quiesce = true;
  cp.arm(spec);
  EXPECT_FALSE(cp.crashing());
  EXPECT_THROW(cp.hit(crash_tag("a")), CrashException);  // the crash
  EXPECT_TRUE(cp.fired());
  EXPECT_TRUE(cp.crashing());
  // Survivors die at their next crash point or poll, in any thread.
  EXPECT_THROW(cp.hit(crash_tag("b")), CrashException);
  EXPECT_THROW(cp.poll(), CrashException);
  std::thread t([&] { EXPECT_THROW(cp.hit(crash_tag("c")), CrashException); });
  t.join();
  cp.reset();
  EXPECT_FALSE(cp.crashing());
  EXPECT_NO_THROW(cp.hit(crash_tag("d")));
  EXPECT_NO_THROW(cp.poll());
}

TEST(CrashPoints, ConcurrentHitsFireExactlyOnceAndNeverRearm) {
  // The legacy counter was unsigned: concurrent decrements could wrap past
  // zero and re-enter the firing window ~2^64 hits later; the fire itself
  // was not single-shot under races. Hammer one arming from many threads
  // and require exactly one CrashException total.
  auto& cp = CrashPoints::instance();
  cp.reset();
  cp.arm(/*tag=*/0, /*skip=*/1000);
  std::atomic<int> fires{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 200000; ++i) {
        try {
          cp.hit(crash_tag("h"));
        } catch (const CrashException&) {
          fires.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(fires.load(), 1);
  EXPECT_TRUE(cp.fired());
  cp.reset();
}

TEST(ThreadRegistry, BindAndPerThreadIds) {
  ThreadRegistry::instance().bind(5);
  EXPECT_EQ(ThreadRegistry::id(), 5);
  std::thread other([] {
    EXPECT_EQ(ThreadRegistry::id(), 0) << "unbound threads default to 0";
    ThreadRegistry::instance().bind(9);
    EXPECT_EQ(ThreadRegistry::id(), 9);
  });
  other.join();
  EXPECT_EQ(ThreadRegistry::id(), 5) << "other thread's bind is private";
  ThreadRegistry::instance().bind(0);
}

TEST(CrashTag, CompileTimeHashStable) {
  constexpr auto a = crash_tag("alloc.after_pop");
  constexpr auto b = crash_tag("alloc.after_pop");
  constexpr auto c = crash_tag("alloc.after_log");
  static_assert(a == b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace upsl
