// Differential tests for the SIMD intra-node search kernels (common/simd.hpp).
//
// Every ISA variant must agree with the portable scalar kernel on every
// input — first-match index or -1, byte-for-byte. The suites sweep target
// position {first, second, mid, last, absent} across node widths
// {8, 64, 256} plus ragged widths that exercise the vector tails, then fuzz
// randomized arrays, then check the runtime dispatch plumbing (CPUID
// resolution, the UPSL_DISABLE_SIMD kill switch, in-process reset).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/simd.hpp"

namespace upsl::simd {
namespace {

struct NamedKernel {
  const char* name;
  FindFn fn;
};

/// All compiled-in unsorted kernels runnable on this host, scalar first.
std::vector<NamedKernel> runnable_find_kernels() {
  std::vector<NamedKernel> out{{"scalar", &find_u64_scalar}};
#ifdef UPSL_SIMD_X86
  if (upsl::detail::cpu_has_sse2()) out.push_back({"sse2", &find_u64_sse2});
  if (upsl::detail::cpu_has_avx2()) out.push_back({"avx2", &find_u64_avx2});
#endif
  return out;
}

std::vector<NamedKernel> runnable_sorted_kernels() {
  std::vector<NamedKernel> out{{"scalar", &find_sorted_u64_scalar}};
#ifdef UPSL_SIMD_X86
  if (upsl::detail::cpu_has_avx2()) out.push_back({"avx2", &find_sorted_u64_avx2});
#endif
  return out;
}

/// Run every runnable kernel plus the dispatched entry point on one input
/// and require bit-identical answers to the scalar reference.
void expect_all_agree(const std::vector<std::uint64_t>& keys,
                      std::uint32_t begin, std::uint32_t end,
                      std::uint64_t target) {
  const std::int32_t want = find_u64_scalar(keys.data(), begin, end, target);
  for (const auto& k : runnable_find_kernels())
    EXPECT_EQ(k.fn(keys.data(), begin, end, target), want)
        << k.name << " K=" << keys.size() << " begin=" << begin
        << " end=" << end << " target=" << target;
  EXPECT_EQ(find_u64(keys.data(), begin, end, target), want)
      << "dispatched K=" << keys.size() << " target=" << target;
}

void expect_sorted_agree(const std::vector<std::uint64_t>& keys,
                         std::uint32_t begin, std::uint32_t end,
                         std::uint64_t target) {
  const std::int32_t want =
      find_sorted_u64_scalar(keys.data(), begin, end, target);
  for (const auto& k : runnable_sorted_kernels())
    EXPECT_EQ(k.fn(keys.data(), begin, end, target), want)
        << k.name << " K=" << keys.size() << " begin=" << begin
        << " end=" << end << " target=" << target;
  EXPECT_EQ(find_sorted_u64(keys.data(), begin, end, target), want)
      << "dispatched sorted K=" << keys.size() << " target=" << target;
}

// ---- unsorted kernel: position sweep ---------------------------------------

class SimdFindWidth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimdFindWidth, TargetAtEveryProbePosition) {
  const std::uint32_t K = GetParam();
  // Distinct even keys so odd targets are guaranteed absent.
  std::vector<std::uint64_t> keys(K);
  for (std::uint32_t i = 0; i < K; ++i) keys[i] = 2ull * (i + 1);

  std::vector<std::uint32_t> positions{0};
  if (K > 1) positions.push_back(1);
  if (K > 2) positions.push_back(K / 2);
  positions.push_back(K - 1);
  for (std::uint32_t pos : positions) {
    expect_all_agree(keys, 0, K, keys[pos]);
    expect_all_agree(keys, 1, K, keys[pos]);  // node scans start at slot 1
  }
  // Absent targets: below min, interior odd, above max, and the extremes.
  for (std::uint64_t absent :
       {std::uint64_t{1}, std::uint64_t{2ull * K + 1}, std::uint64_t{2ull * K + 2},
        std::uint64_t{0}, ~std::uint64_t{0}})
    expect_all_agree(keys, 0, K, absent);
}

TEST_P(SimdFindWidth, FirstMatchWinsWithDuplicates) {
  const std::uint32_t K = GetParam();
  std::vector<std::uint64_t> keys(K, 42);  // every slot matches
  expect_all_agree(keys, 0, K, 42);
  for (const auto& k : runnable_find_kernels())
    EXPECT_EQ(k.fn(keys.data(), 0, K, 42), 0) << k.name;
  if (K >= 3) {
    // Duplicates straddling a vector boundary: still the first one.
    std::fill(keys.begin(), keys.end(), 7ull);
    keys[K / 2] = 9;
    keys[K - 1] = 9;
    for (const auto& k : runnable_find_kernels())
      EXPECT_EQ(k.fn(keys.data(), 0, K, 9),
                static_cast<std::int32_t>(K / 2))
          << k.name;
  }
}

TEST_P(SimdFindWidth, RaggedBeginOffsets) {
  // Every begin offset: the SIMD kernels' unaligned heads and scalar tails
  // must cover all residues mod the vector width.
  const std::uint32_t K = GetParam();
  std::vector<std::uint64_t> keys(K);
  for (std::uint32_t i = 0; i < K; ++i) keys[i] = 3ull * i + 5;
  const std::uint32_t step = K > 32 ? 3 : 1;
  for (std::uint32_t begin = 0; begin < K; begin += step) {
    expect_all_agree(keys, begin, K, keys[begin]);            // at begin
    expect_all_agree(keys, begin, K, keys[K - 1]);            // at end-1
    if (begin > 0) expect_all_agree(keys, begin, K, keys[begin - 1]);  // excluded
    expect_all_agree(keys, begin, K, 4);                      // absent
    expect_all_agree(keys, begin, begin, keys[0]);            // empty range
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SimdFindWidth,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u, 9u, 13u,
                                           16u, 63u, 64u, 65u, 255u, 256u),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

// ---- unsorted kernel: randomized fuzz --------------------------------------

TEST(SimdFind, RandomizedDifferential) {
  std::mt19937_64 rng(20210706);  // SPAA'21 vintage
  for (int iter = 0; iter < 2000; ++iter) {
    const std::uint32_t K = 1 + static_cast<std::uint32_t>(rng() % 256);
    std::vector<std::uint64_t> keys(K);
    // Small value range so present/absent and duplicates all occur.
    for (auto& k : keys) k = rng() % (K + 8);
    const std::uint32_t begin = static_cast<std::uint32_t>(rng() % (K + 1));
    const std::uint64_t target = rng() % (K + 8);
    expect_all_agree(keys, begin, K, target);
  }
}

// ---- sorted-prefix kernel --------------------------------------------------

class SimdSortedWidth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimdSortedWidth, EveryPresentAndAbsentTarget) {
  const std::uint32_t K = GetParam();
  std::vector<std::uint64_t> keys(K);
  for (std::uint32_t i = 0; i < K; ++i) keys[i] = 2ull * (i + 1);  // ascending
  for (std::uint32_t pos = 0; pos < K; ++pos)
    expect_sorted_agree(keys, 0, K, keys[pos]);
  for (std::uint64_t absent = 1; absent <= 2ull * K + 1; absent += 2)
    expect_sorted_agree(keys, 0, K, absent);  // between every pair + beyond
  expect_sorted_agree(keys, 0, K, ~std::uint64_t{0});  // kTailKey magnitude
}

TEST_P(SimdSortedWidth, ToleratesNullHoles) {
  // The block search must treat kNullKey (0) slots as "keep going" wherever
  // they appear — this is exactly the sorted_count/null inconsistency the
  // old binary search tripped over.
  const std::uint32_t K = GetParam();
  std::vector<std::uint64_t> keys(K);
  for (std::uint32_t i = 0; i < K; ++i) keys[i] = 10ull * (i + 1);
  // Null suffix (the common shape: prefix shorter than sorted_count).
  for (std::uint32_t suffix = 0; suffix <= K; ++suffix) {
    std::vector<std::uint64_t> holed = keys;
    for (std::uint32_t i = K - suffix; i < K; ++i) holed[i] = 0;
    expect_sorted_agree(holed, 0, K, 10);           // first key
    expect_sorted_agree(holed, 0, K, 10ull * K);    // last (maybe nulled)
    expect_sorted_agree(holed, 0, K, 15);           // absent interior
  }
  // Interior holes at every single position.
  for (std::uint32_t hole = 0; hole < K; ++hole) {
    std::vector<std::uint64_t> holed = keys;
    holed[hole] = 0;
    for (std::uint32_t pos = 0; pos < K; ++pos)
      expect_sorted_agree(holed, 0, K, keys[pos]);
    expect_sorted_agree(holed, 0, K, 5);
    expect_sorted_agree(holed, 0, K, 10ull * K + 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SimdSortedWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u,
                                           16u, 64u, 256u),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

TEST(SimdSorted, RandomizedDifferential) {
  std::mt19937_64 rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::uint32_t K = 1 + static_cast<std::uint32_t>(rng() % 256);
    std::vector<std::uint64_t> keys(K);
    std::uint64_t next = 1 + rng() % 4;
    for (auto& k : keys) {
      k = (rng() % 4 == 0) ? 0 : next;  // 25% null holes
      next += 1 + rng() % 6;
    }
    const std::uint32_t begin = static_cast<std::uint32_t>(rng() % (K + 1));
    const std::uint64_t target = 1 + rng() % (next + 4);
    expect_sorted_agree(keys, begin, K, target);
  }
}

// ---- range-mask kernel (the SCAN filter) -----------------------------------

std::vector<std::pair<const char*, RangeMaskFn>> runnable_range_kernels() {
  std::vector<std::pair<const char*, RangeMaskFn>> out{
      {"scalar", &range_mask_u64_scalar}};
#ifdef UPSL_SIMD_X86
  if (upsl::detail::cpu_has_avx2())
    out.push_back({"avx2", &range_mask_u64_avx2});
#endif
  return out;
}

/// Every runnable kernel plus the dispatched entry point must produce the
/// scalar reference's mask words and popcount, bit for bit.
void expect_range_agree(const std::vector<std::uint64_t>& keys,
                        std::uint32_t count, std::uint64_t lo,
                        std::uint64_t hi) {
  const std::uint32_t words = (count + 63) / 64;
  std::vector<std::uint64_t> want_mask(std::max(words, 1u), ~0ULL);
  const std::uint32_t want =
      range_mask_u64_scalar(keys.data(), count, lo, hi, want_mask.data());
  std::uint32_t check = 0;
  for (std::uint32_t w = 0; w < words; ++w)
    check += static_cast<std::uint32_t>(__builtin_popcountll(want_mask[w]));
  ASSERT_EQ(want, check) << "scalar popcount disagrees with its own mask";
  for (const auto& [name, fn] : runnable_range_kernels()) {
    std::vector<std::uint64_t> mask(std::max(words, 1u), ~0ULL);
    EXPECT_EQ(fn(keys.data(), count, lo, hi, mask.data()), want)
        << name << " count=" << count << " lo=" << lo << " hi=" << hi;
    for (std::uint32_t w = 0; w < words; ++w)
      EXPECT_EQ(mask[w], want_mask[w])
          << name << " mask word " << w << " count=" << count << " lo=" << lo
          << " hi=" << hi;
  }
  std::vector<std::uint64_t> mask(std::max(words, 1u), ~0ULL);
  EXPECT_EQ(range_mask_u64(keys.data(), count, lo, hi, mask.data()), want)
      << "dispatched count=" << count;
  for (std::uint32_t w = 0; w < words; ++w) EXPECT_EQ(mask[w], want_mask[w]);
}

class SimdRangeWidth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimdRangeWidth, BoundaryRanges) {
  const std::uint32_t K = GetParam();
  std::vector<std::uint64_t> keys(K);
  for (std::uint32_t i = 0; i < K; ++i)
    keys[i] = (i % 5 == 4) ? 0 : (i + 1) * 3;  // nulls sprinkled in
  const std::uint64_t top = K * 3 + 1;
  // Everything, nothing, single key, half-open-ish edges, inverted.
  expect_range_agree(keys, K, 1, ~0ULL);
  expect_range_agree(keys, K, 1, top);
  expect_range_agree(keys, K, top, top + 100);
  expect_range_agree(keys, K, 3, 3);
  expect_range_agree(keys, K, 2, 4);
  expect_range_agree(keys, K, top / 2, top / 2 + 9);
  expect_range_agree(keys, K, 50, 10);  // inverted -> empty
}

INSTANTIATE_TEST_SUITE_P(Widths, SimdRangeWidth,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u,
                                           63u, 64u, 65u, 128u, 256u),
                         [](const auto& info) {
                           return "K" + std::to_string(info.param);
                         });

TEST(SimdRange, RandomizedDifferential) {
  std::mt19937_64 rng(777);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::uint32_t K = 1 + static_cast<std::uint32_t>(rng() % 256);
    std::vector<std::uint64_t> keys(K);
    for (auto& k : keys) k = (rng() % 4 == 0) ? 0 : 1 + rng() % 997;
    std::uint64_t lo = 1 + rng() % 1024;
    std::uint64_t hi = 1 + rng() % 1024;
    if (rng() % 8 != 0 && lo > hi) std::swap(lo, hi);  // mostly valid ranges
    expect_range_agree(keys, K, lo, hi);
  }
}

// ---- dispatch resolution ---------------------------------------------------

TEST(SimdDispatch, ResolveLevelCoversAllCombinations) {
  using enum SimdLevel;
  // Kill switch dominates everything.
  EXPECT_EQ(resolve_simd_level(true, true, true), kScalar);
  EXPECT_EQ(resolve_simd_level(true, false, true), kScalar);
  EXPECT_EQ(resolve_simd_level(true, false, false), kScalar);
  // Best available ISA wins.
  EXPECT_EQ(resolve_simd_level(false, true, true), kAvx2);
  EXPECT_EQ(resolve_simd_level(false, true, false), kAvx2);
  EXPECT_EQ(resolve_simd_level(false, false, true), kSse2);
  EXPECT_EQ(resolve_simd_level(false, false, false), kScalar);
}

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
}

/// Scoped env var setter that restores the previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_, old_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(SimdDispatch, EnvKillSwitchParsing) {
  {
    ScopedEnv e("UPSL_DISABLE_SIMD", nullptr);
    EXPECT_FALSE(simd_disabled_by_env());
  }
  {
    ScopedEnv e("UPSL_DISABLE_SIMD", "");
    EXPECT_FALSE(simd_disabled_by_env());
  }
  {
    ScopedEnv e("UPSL_DISABLE_SIMD", "0");
    EXPECT_FALSE(simd_disabled_by_env());
  }
  {
    ScopedEnv e("UPSL_DISABLE_SIMD", "1");
    EXPECT_TRUE(simd_disabled_by_env());
  }
  {
    ScopedEnv e("UPSL_DISABLE_SIMD", "true");
    EXPECT_TRUE(simd_disabled_by_env());
  }
}

TEST(SimdDispatch, KillSwitchDemotesToScalarInProcess) {
  // Acceptance check: UPSL_DISABLE_SIMD=1 must fall back to scalar kernels
  // with identical results, and the dispatch must recover when cleared.
  std::vector<std::uint64_t> keys(256);
  for (std::uint32_t i = 0; i < 256; ++i) keys[i] = i + 1;

  {
    // With the kill switch cleared, dispatch matches the CPUID resolution.
    ScopedEnv e("UPSL_DISABLE_SIMD", nullptr);
    reset_dispatch_for_testing();
    const SimdLevel native = dispatched_level();
    EXPECT_EQ(native, active_simd_level());
#ifdef UPSL_SIMD_X86
    if (native == SimdLevel::kAvx2) {
      EXPECT_EQ(kernels().find, &find_u64_avx2);
      EXPECT_EQ(kernels().find_sorted, &find_sorted_u64_avx2);
    }
#endif
  }
  {
    ScopedEnv e("UPSL_DISABLE_SIMD", "1");
    reset_dispatch_for_testing();
    EXPECT_EQ(dispatched_level(), SimdLevel::kScalar);
    EXPECT_EQ(kernels().find, &find_u64_scalar);
    EXPECT_EQ(kernels().find_sorted, &find_sorted_u64_scalar);
    for (std::uint64_t t : {1ull, 128ull, 256ull, 300ull}) {
      EXPECT_EQ(find_u64(keys.data(), 0, 256, t),
                find_u64_scalar(keys.data(), 0, 256, t));
      EXPECT_EQ(find_sorted_u64(keys.data(), 0, 256, t),
                find_sorted_u64_scalar(keys.data(), 0, 256, t));
    }
  }
  // Env restored to whatever the harness set; reset re-detects from it, so
  // this test is stable whether or not UPSL_DISABLE_SIMD is set outside.
  reset_dispatch_for_testing();
  EXPECT_EQ(dispatched_level(), active_simd_level());
}

}  // namespace
}  // namespace upsl::simd
