// Unit tests for the coarse chunk allocator and the fine-grained recoverable
// block allocator: directory transitions, free-list conservation, chunk
// provisioning, allocation logging, and crash recovery of interrupted
// allocations (thesis §4.1.4, §4.3).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "alloc/block_allocator.hpp"
#include "common/crashpoint.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"

namespace upsl::alloc {
namespace {

constexpr std::uint64_t kBlockSize = 128;

class AllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    riv::Runtime::instance().reset();
    CrashPoints::instance().reset();
    ThreadRegistry::instance().bind(0);
    ChunkAllocatorConfig ccfg;
    ccfg.chunk_size = 16 << 10;  // 16 KiB chunks -> ~127 blocks each
    ccfg.max_chunks = 16;
    ccfg.root_size = 64 << 10;
    pool_ = pmem::Pool::create_anonymous(0, 8u << 20, {.crash_tracking = true});
    ChunkAllocator::format(*pool_, ccfg);
    chunk_alloc_ = std::make_unique<ChunkAllocator>(*pool_);

    char* root = chunk_alloc_->root_area();
    epoch_ = reinterpret_cast<std::uint64_t*>(root);
    *epoch_ = 1;
    logs_ = reinterpret_cast<ThreadLog*>(root + 64);
    arenas_ = reinterpret_cast<ArenaHeader*>(root + 64 + sizeof(ThreadLog) * kMaxThreads);
    pmem::persist(root, 64 + sizeof(ThreadLog) * kMaxThreads + 4096);

    BlockAllocator::Config bcfg;
    bcfg.block_size = kBlockSize;
    bcfg.arenas_per_pool = 4;
    balloc_ = std::make_unique<BlockAllocator>(
        std::vector<ChunkAllocator*>{chunk_alloc_.get()}, arenas_, logs_,
        epoch_, bcfg);
    balloc_->bootstrap();
    pool_->mark_all_persisted();
  }

  void TearDown() override {
    riv::Runtime::instance().reset();
    CrashPoints::instance().reset();
  }

  /// Simulated power failure + reconnect: unflushed lines dropped, DRAM
  /// caches rebuilt, epoch bumped.
  void crash_and_reopen() {
    pool_->simulate_crash();
    riv::Runtime::instance().reset();
    chunk_alloc_ = std::make_unique<ChunkAllocator>(*pool_);
    pmem::pm_store(*epoch_, pmem::pm_load(*epoch_) + 1);
    pmem::persist(epoch_, 8);
    BlockAllocator::Config bcfg;
    bcfg.block_size = kBlockSize;
    bcfg.arenas_per_pool = 4;
    balloc_ = std::make_unique<BlockAllocator>(
        std::vector<ChunkAllocator*>{chunk_alloc_.get()}, arenas_, logs_,
        epoch_, bcfg);
  }

  std::size_t allocated_chunks() const {
    std::size_t n = 0;
    for (std::uint32_t c = 0; c < chunk_alloc_->header().max_chunks; ++c)
      if (chunk_alloc_->dir_entry(c).state == ChunkState::kAllocated) ++n;
    return n;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<ChunkAllocator> chunk_alloc_;
  std::unique_ptr<BlockAllocator> balloc_;
  std::uint64_t* epoch_ = nullptr;
  ThreadLog* logs_ = nullptr;
  ArenaHeader* arenas_ = nullptr;
};

TEST_F(AllocTest, BootstrapSeedsEveryArena) {
  for (std::uint32_t a = 0; a < 4; ++a)
    EXPECT_GE(balloc_->count_free_blocks(0, a), 1u) << "arena " << a;
  EXPECT_EQ(allocated_chunks(), 1u);
}

TEST_F(AllocTest, AllocateReturnsZeroStampedBlocks) {
  std::uint64_t riv = 0;
  auto* p = static_cast<char*>(balloc_->allocate(0, 42, &riv));
  ASSERT_NE(p, nullptr);
  EXPECT_NE(riv, 0u);
  auto* b = reinterpret_cast<MemBlock*>(p);
  EXPECT_EQ(b->epoch_id, 1u);
  EXPECT_EQ(b->owner_tag, 1u);  // tid 0 + 1
  EXPECT_EQ(b->state, 0u);
  for (std::size_t i = 5 * 8; i < kBlockSize; ++i) EXPECT_EQ(p[i], 0);
  // The RIV resolves back to the same pointer.
  EXPECT_EQ(riv::Runtime::instance().to_ptr(riv), p);
  EXPECT_EQ(balloc_->riv_of(p), riv);
}

TEST_F(AllocTest, AllocateDistinctBlocks) {
  std::set<std::uint64_t> rivs;
  for (int i = 0; i < 20; ++i) {
    std::uint64_t riv = 0;
    balloc_->allocate(0, static_cast<std::uint64_t>(i), &riv);
    EXPECT_TRUE(rivs.insert(riv).second) << "duplicate allocation";
  }
}

TEST_F(AllocTest, DeallocateReturnsBlocksToList) {
  const std::size_t before = balloc_->count_free_blocks(0, 0);
  std::uint64_t riv = 0;
  auto* p = static_cast<MemBlock*>(balloc_->allocate(0, 1, &riv));
  p->state = 123;  // pretend it became a live object
  EXPECT_EQ(balloc_->count_free_blocks(0, 0), before - 1);
  balloc_->deallocate(riv);
  EXPECT_EQ(balloc_->count_free_blocks(0, 0), before);
  // Deallocation is idempotent.
  balloc_->deallocate(riv);
  EXPECT_EQ(balloc_->count_free_blocks(0, 0), before);
}

TEST_F(AllocTest, ExhaustionProvisionsNewChunk) {
  const std::size_t start_chunks = allocated_chunks();
  const std::size_t initial = balloc_->count_free_blocks(0, 0);
  std::uint64_t riv = 0;
  for (std::size_t i = 0; i < initial + 5; ++i)
    balloc_->allocate(0, static_cast<std::uint64_t>(i), &riv);
  EXPECT_GT(allocated_chunks(), start_chunks);
}

TEST_F(AllocTest, PoolExhaustionThrowsBadAlloc) {
  EXPECT_THROW(
      {
        std::uint64_t riv = 0;
        for (std::size_t i = 0; i < 100000; ++i)
          balloc_->allocate(0, static_cast<std::uint64_t>(i), &riv);
      },
      std::bad_alloc);
}

TEST_F(AllocTest, FifoReuseOrder) {
  // Pops come from the head, pushes go to the tail: a freed block must not
  // be immediately re-handed out (ABA mitigation).
  std::uint64_t a = 0;
  auto* pa = static_cast<MemBlock*>(balloc_->allocate(0, 1, &a));
  pa->state = 1;
  balloc_->deallocate(a);
  std::uint64_t b = 0;
  balloc_->allocate(0, 2, &b);
  EXPECT_NE(a, b);
}

TEST_F(AllocTest, BlocksConservedAcrossChurn) {
  const std::size_t total0 = balloc_->count_all_free_blocks();
  std::vector<std::uint64_t> live;
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    if (live.empty() || rng.next_double() < 0.6) {
      std::uint64_t riv = 0;
      auto* p = static_cast<MemBlock*>(balloc_->allocate(0, 1, &riv));
      p->state = 7;
      live.push_back(riv);
    } else {
      const std::size_t j = rng.next_below(live.size());
      balloc_->deallocate(live[j]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(j));
    }
  }
  const std::size_t extra_chunks = allocated_chunks() - 1;
  const std::size_t expected = total0 +
                               extra_chunks * balloc_->blocks_per_chunk(0) -
                               live.size();
  EXPECT_EQ(balloc_->count_all_free_blocks(), expected);
}

TEST_F(AllocTest, ChunkDirectoryTransitions) {
  const std::int64_t c = chunk_alloc_->claim_chunk(1, 3);
  ASSERT_GE(c, 0);
  DirEntry e = chunk_alloc_->dir_entry(static_cast<std::uint32_t>(c));
  EXPECT_EQ(e.state, ChunkState::kPending);
  EXPECT_EQ(e.epoch, 1u);
  EXPECT_EQ(e.thread, 3);
  chunk_alloc_->commit_chunk(static_cast<std::uint32_t>(c));
  EXPECT_EQ(chunk_alloc_->dir_entry(static_cast<std::uint32_t>(c)).state,
            ChunkState::kAllocated);
  chunk_alloc_->release_chunk(static_cast<std::uint32_t>(c));
  EXPECT_EQ(chunk_alloc_->dir_entry(static_cast<std::uint32_t>(c)).state,
            ChunkState::kFree);
}

TEST_F(AllocTest, DirEntryCodecRoundTrip) {
  const std::uint64_t w = dir_pack(ChunkState::kPending, 0x123456789abULL, 0xbeef);
  const DirEntry e = dir_unpack(w);
  EXPECT_EQ(e.state, ChunkState::kPending);
  EXPECT_EQ(e.epoch, 0x123456789abULL);
  EXPECT_EQ(e.thread, 0xbeef);
}

// ---- crash recovery -------------------------------------------------------

TEST_F(AllocTest, PopLostInCrashKeepsBlockInList) {
  // Crash right after the (unpersisted) pop CAS: the head pointer reverts,
  // the block is still on the list, and recovery must not double-insert it.
  const std::size_t before = balloc_->count_all_free_blocks();
  CrashPoints::instance().arm(crash_tag("alloc.after_pop"));
  std::uint64_t riv = 0;
  EXPECT_THROW(balloc_->allocate(0, 9, &riv), CrashException);
  crash_and_reopen();
  // Next allocation by the same thread id resolves the stale log.
  balloc_->allocate(0, 10, &riv);
  EXPECT_EQ(balloc_->count_all_free_blocks(), before - 1);
}

TEST_F(AllocTest, PopDurableButUnusedIsReclaimed) {
  // Crash after the pop became durable but before the object was linked
  // anywhere: without the log this block would be leaked forever (Fig 4.1).
  std::uint64_t riv = 0;
  auto* p = static_cast<MemBlock*>(balloc_->allocate(0, 9, &riv));
  p->state = 99;
  pmem::persist(p, kBlockSize);  // object initialized (but never linked)
  const std::size_t free_now = balloc_->count_all_free_blocks();
  crash_and_reopen();
  balloc_->set_reachability_fn([](const ThreadLog&) { return false; });
  std::uint64_t riv2 = 0;
  balloc_->allocate(0, 10, &riv2);
  EXPECT_EQ(balloc_->count_all_free_blocks(), free_now)
      << "leaked block reclaimed, new block handed out";
}

TEST_F(AllocTest, ReachableBlockIsNotReclaimed) {
  std::uint64_t riv = 0;
  auto* p = static_cast<MemBlock*>(balloc_->allocate(0, 9, &riv));
  p->state = 99;
  pmem::persist(p, kBlockSize);
  const std::size_t free_now = balloc_->count_all_free_blocks();
  crash_and_reopen();
  balloc_->set_reachability_fn([](const ThreadLog&) { return true; });
  std::uint64_t riv2 = 0;
  balloc_->allocate(0, 10, &riv2);
  EXPECT_EQ(balloc_->count_all_free_blocks(), free_now - 1)
      << "reachable block must stay allocated";
}

TEST_F(AllocTest, CrashAfterChunkClaimReleasesChunk) {
  // Drain arena 0 until provisioning starts, crashing right after the claim.
  CrashPoints::instance().arm(crash_tag("alloc.chunk_claimed"));
  std::uint64_t riv = 0;
  try {
    for (std::size_t i = 0; i < 100000; ++i)
      balloc_->allocate(0, static_cast<std::uint64_t>(i), &riv);
    FAIL() << "crash point never fired";
  } catch (const CrashException&) {
  }
  crash_and_reopen();
  const std::size_t chunks_after_crash = allocated_chunks();
  balloc_->allocate(0, 1, &riv);  // triggers stale-log + pending sweep
  std::size_t pending = 0;
  for (std::uint32_t c = 0; c < chunk_alloc_->header().max_chunks; ++c)
    if (chunk_alloc_->dir_entry(c).state == ChunkState::kPending) ++pending;
  EXPECT_EQ(pending, 0u) << "claimed-but-unprovisioned chunk reclaimed";
  EXPECT_GE(allocated_chunks(), chunks_after_crash);
}

TEST_F(AllocTest, CrashMidProvisionRecoversChunk) {
  for (const char* point :
       {"alloc.chunk_logged", "alloc.chunk_formatted", "alloc.chunk_linked",
        "alloc.chunk_committed"}) {
    SCOPED_TRACE(point);
    CrashPoints::instance().arm(crash_tag(point));
    std::uint64_t riv = 0;
    try {
      for (std::size_t i = 0; i < 100000; ++i)
        balloc_->allocate(0, static_cast<std::uint64_t>(i), &riv);
      FAIL() << "crash point never fired";
    } catch (const CrashException&) {
    }
    crash_and_reopen();
    // Recovery happens on this thread id's next allocation; afterwards no
    // chunk may be stuck in kPending.
    balloc_->allocate(0, 1, &riv);
    for (std::uint32_t c = 0; c < chunk_alloc_->header().max_chunks; ++c)
      EXPECT_NE(chunk_alloc_->dir_entry(c).state, ChunkState::kPending)
          << "chunk " << c;
  }
}

// ---- thread-local magazines ----------------------------------------------

constexpr std::uint32_t kMagCap = 4;

/// Fixture with per-thread magazine descriptors in the root area (after the
/// arena headers). The root is 128 KiB here: kMaxThreads descriptors alone
/// are 64 KiB and the legacy fixture's 64 KiB root cannot fit them.
class MagazineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Under the CI kill-switch leg the fast path under test doesn't exist.
    if (const char* e = std::getenv("UPSL_DISABLE_MAGAZINES");
        e != nullptr && e[0] != '\0' && e[0] != '0')
      GTEST_SKIP() << "magazine fast path disabled via environment";
    riv::Runtime::instance().reset();
    CrashPoints::instance().reset();
    ThreadRegistry::instance().bind(0);
    ChunkAllocatorConfig ccfg;
    ccfg.chunk_size = 16 << 10;
    ccfg.max_chunks = 16;
    ccfg.root_size = 128 << 10;
    pool_ = pmem::Pool::create_anonymous(0, 8u << 20, {.crash_tracking = true});
    ChunkAllocator::format(*pool_, ccfg);
    chunk_alloc_ = std::make_unique<ChunkAllocator>(*pool_);

    char* root = chunk_alloc_->root_area();
    epoch_ = reinterpret_cast<std::uint64_t*>(root);
    *epoch_ = 1;
    logs_ = reinterpret_cast<ThreadLog*>(root + 64);
    arenas_ =
        reinterpret_cast<ArenaHeader*>(root + 64 + sizeof(ThreadLog) * kMaxThreads);
    mags_ = reinterpret_cast<MagazineDesc*>(
        reinterpret_cast<char*>(arenas_) + sizeof(ArenaHeader) * 4);
    pmem::persist(root, 64 + sizeof(ThreadLog) * kMaxThreads +
                            sizeof(ArenaHeader) * 4 +
                            sizeof(MagazineDesc) * kMaxThreads);
    make_allocator();
    balloc_->bootstrap();
    pool_->mark_all_persisted();
  }

  void TearDown() override {
    riv::Runtime::instance().reset();
    CrashPoints::instance().reset();
  }

  void make_allocator() {
    BlockAllocator::Config bcfg;
    bcfg.block_size = kBlockSize;
    bcfg.arenas_per_pool = 4;
    bcfg.magazine_capacity = kMagCap;
    balloc_ = std::make_unique<BlockAllocator>(
        std::vector<ChunkAllocator*>{chunk_alloc_.get()}, arenas_, logs_,
        epoch_, bcfg, mags_);
  }

  void crash_and_reopen() {
    pool_->simulate_crash();
    riv::Runtime::instance().reset();
    chunk_alloc_ = std::make_unique<ChunkAllocator>(*pool_);
    pmem::pm_store(*epoch_, pmem::pm_load(*epoch_) + 1);
    pmem::persist(epoch_, 8);
    make_allocator();
  }

  /// Allocate one block and make it a durable object (the store's contract:
  /// a handed-out block is durably initialized before the thread's next
  /// allocator call can recycle its descriptor slot).
  std::uint64_t alloc_object() {
    std::uint64_t riv = 0;
    auto* p = static_cast<MemBlock*>(balloc_->allocate(0, 1, &riv));
    p->state = 99;
    pmem::persist(p, kBlockSize);
    return riv;
  }

  std::size_t allocated_chunks() const {
    std::size_t n = 0;
    for (std::uint32_t c = 0; c < chunk_alloc_->header().max_chunks; ++c)
      if (chunk_alloc_->dir_entry(c).state == ChunkState::kAllocated) ++n;
    return n;
  }

  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<ChunkAllocator> chunk_alloc_;
  std::unique_ptr<BlockAllocator> balloc_;
  std::uint64_t* epoch_ = nullptr;
  ThreadLog* logs_ = nullptr;
  ArenaHeader* arenas_ = nullptr;
  MagazineDesc* mags_ = nullptr;
};

TEST_F(MagazineTest, RefillBatchesPopsUnderOneDescriptorWrite) {
  ASSERT_TRUE(balloc_->magazines_enabled());
  const std::size_t total0 = balloc_->count_all_free_blocks();
  alloc_object();
  // One refill popped kMagCap blocks; one was handed out, the rest are
  // cached in DRAM but still counted as free.
  EXPECT_EQ(balloc_->counters().refills.load(), 1u);
  EXPECT_EQ(balloc_->magazine_cached(0), kMagCap - 1);
  EXPECT_EQ(balloc_->count_all_free_blocks(), total0 - 1);
  EXPECT_EQ(mag_count_of(pmem::pm_load(balloc_->magazine_of(0).alloc_count)),
            kMagCap);

  // The cached blocks are handed out with zero persist calls and zero
  // fences: the descriptor write at refill time already covers them.
  pmem::Stats::instance().reset();
  for (std::uint32_t i = 1; i < kMagCap; ++i) alloc_object();
  // Each alloc_object persists the object itself (1 call + 1 fence); the
  // allocator must add nothing on top.
  EXPECT_EQ(pmem::Stats::instance().persist_calls.load(), kMagCap - 1);
  EXPECT_EQ(balloc_->counters().refills.load(), 1u);
}

TEST_F(MagazineTest, ReturnsAccumulateAndFlushAsOneChain) {
  std::vector<std::uint64_t> rivs;
  for (std::uint32_t i = 0; i < 2 * kMagCap; ++i) rivs.push_back(alloc_object());
  const std::size_t list0 = balloc_->count_free_blocks(0, 0);
  // First kMagCap frees stay in the return magazine: no arena traffic.
  for (std::uint32_t i = 0; i < kMagCap; ++i) balloc_->deallocate(rivs[i]);
  EXPECT_EQ(balloc_->count_free_blocks(0, 0), list0);
  EXPECT_EQ(balloc_->magazine_cached(0), static_cast<std::size_t>(kMagCap));
  // The next free overflows the magazine: the whole chain links in at once.
  balloc_->deallocate(rivs[kMagCap]);
  EXPECT_EQ(balloc_->count_free_blocks(0, 0), list0 + kMagCap);
  EXPECT_EQ(balloc_->counters().return_flushes.load(), 1u);
  // Freeing an already-freed pending return is idempotent.
  balloc_->deallocate(rivs[kMagCap]);
  EXPECT_EQ(balloc_->magazine_cached(0), 1u);
}

TEST_F(MagazineTest, ConservationAcrossChurn) {
  const std::size_t total0 = balloc_->count_all_free_blocks();
  std::vector<std::uint64_t> live;
  Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    if (live.empty() || rng.next_double() < 0.6) {
      live.push_back(alloc_object());
    } else {
      const std::size_t j = rng.next_below(live.size());
      balloc_->deallocate(live[j]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(j));
    }
  }
  std::size_t extra_chunks = 0;
  for (std::uint32_t c = 0; c < chunk_alloc_->header().max_chunks; ++c)
    if (chunk_alloc_->dir_entry(c).state == ChunkState::kAllocated) ++extra_chunks;
  --extra_chunks;  // bootstrap chunk
  EXPECT_EQ(balloc_->count_all_free_blocks(),
            total0 + extra_chunks * balloc_->blocks_per_chunk(0) - live.size());
}

TEST_F(MagazineTest, KillSwitchRoutesThroughLegacyPath) {
  ::setenv("UPSL_DISABLE_MAGAZINES", "1", 1);
  make_allocator();
  ::unsetenv("UPSL_DISABLE_MAGAZINES");
  EXPECT_FALSE(balloc_->magazines_enabled());
  std::uint64_t riv = 0;
  balloc_->allocate(0, 1, &riv);
  EXPECT_EQ(balloc_->counters().legacy_allocs.load(), 1u);
  EXPECT_EQ(balloc_->counters().magazine_allocs.load(), 0u);
  EXPECT_EQ(balloc_->magazine_cached(0), 0u);
}

TEST_F(MagazineTest, CrashMidRefillLeaksAtMostOneMagazineAndRecovers) {
  for (const char* point :
       {"alloc.mag_refill_logged", "alloc.mag_refill_popped"}) {
    SCOPED_TRACE(point);
    // Consume the current batch so the next allocation must refill; every
    // handed-out block becomes a durable, "reachable" object first.
    while (balloc_->magazine_cached(0) > 0) alloc_object();
    std::uint64_t riv = 0;
    if (balloc_->counters().refills.load() == 0) {
      alloc_object();
      while (balloc_->magazine_cached(0) > 0) alloc_object();
    }
    const std::size_t before = balloc_->count_all_free_blocks();
    CrashPoints::instance().arm(crash_tag(point));
    EXPECT_THROW(balloc_->allocate(0, 9, &riv), CrashException);
    CrashPoints::instance().disarm();
    crash_and_reopen();
    // Handed-out objects from previous batches are durably linked as far as
    // this test is concerned.
    balloc_->set_block_reachability_fn([](std::uint64_t) { return true; });
    // The crash can have detached up to one magazine's worth of blocks.
    const std::size_t leaked = before - balloc_->count_all_free_blocks();
    EXPECT_LE(leaked, static_cast<std::size_t>(kMagCap));
    // First allocator call by this thread id reclaims every leaked block.
    alloc_object();
    EXPECT_EQ(balloc_->counters().magazine_recoveries.load(), 1u);
    EXPECT_EQ(balloc_->count_all_free_blocks(), before - 1);
  }
}

TEST_F(MagazineTest, CrashDuringReturnIsRecovered) {
  for (const char* point :
       {"alloc.mag_ret_recorded", "alloc.mag_ret_converted",
        "alloc.mag_ret_linked"}) {
    SCOPED_TRACE(point);
    std::vector<std::uint64_t> rivs;
    for (std::uint32_t i = 0; i <= kMagCap; ++i) rivs.push_back(alloc_object());
    CrashPoints::instance().arm(crash_tag(point));
    std::size_t freed = 0;
    bool crashed = false;
    try {
      for (std::uint64_t r : rivs) {
        balloc_->deallocate(r);
        ++freed;
      }
    } catch (const CrashException&) {
      crashed = true;
    }
    CrashPoints::instance().disarm();
    ASSERT_TRUE(crashed) << "crash point never fired";
    crash_and_reopen();
    // Blocks whose free never even started (plus the one interrupted before
    // its conversion) are still live objects — recovery must keep them.
    std::set<std::uint64_t> live(rivs.begin() + static_cast<std::ptrdiff_t>(freed),
                                 rivs.end());
    balloc_->set_block_reachability_fn(
        [live](std::uint64_t r) { return live.count(r) > 0; });
    const std::uint64_t trigger = alloc_object();  // triggers recovery
    EXPECT_EQ(balloc_->counters().magazine_recoveries.load(), 1u);
    // Re-free the survivors (idempotent for any the recovery already
    // returned); afterwards every carved block must be free — on a list or
    // cached in a magazine. This is the no-permanent-leak check.
    for (std::uint64_t r : live) balloc_->deallocate(r);
    balloc_->deallocate(trigger);
    balloc_->deallocate(rivs[0]);  // double-free of a freed block: no-op
    EXPECT_EQ(balloc_->count_all_free_blocks(),
              allocated_chunks() * balloc_->blocks_per_chunk(0));
  }
}

TEST_F(MagazineTest, UnreachableObjectInStaleDescriptorIsReclaimed) {
  // A block handed out and durably initialized, but never linked anywhere:
  // after a crash only the descriptor entry names it.
  alloc_object();
  const std::size_t before = balloc_->count_all_free_blocks();
  crash_and_reopen();
  balloc_->set_block_reachability_fn([](std::uint64_t) { return false; });
  std::uint64_t riv = 0;
  balloc_->allocate(0, 10, &riv);
  // The whole stale batch (orphan included) went back to the lists, then a
  // fresh batch was popped and one block handed out — net: one block live.
  EXPECT_EQ(balloc_->counters().magazine_recoveries.load(), 1u);
  EXPECT_EQ(balloc_->count_all_free_blocks(), before);
  EXPECT_EQ(balloc_->count_all_free_blocks(),
            allocated_chunks() * balloc_->blocks_per_chunk(0) - 1);
}

TEST_F(MagazineTest, ReachableObjectInStaleDescriptorIsKept) {
  const std::uint64_t kept = alloc_object();
  const std::size_t before = balloc_->count_all_free_blocks();
  crash_and_reopen();
  balloc_->set_block_reachability_fn(
      [kept](std::uint64_t riv) { return riv == kept; });
  std::uint64_t riv = 0;
  balloc_->allocate(0, 10, &riv);
  EXPECT_NE(riv, kept) << "reachable block must not be recycled";
  // Two blocks live now (the kept object + the fresh allocation).
  EXPECT_EQ(balloc_->count_all_free_blocks(), before - 1);
  EXPECT_EQ(balloc_->count_all_free_blocks(),
            allocated_chunks() * balloc_->blocks_per_chunk(0) - 2);
}

TEST_F(MagazineTest, RecoveryIsIdempotentAcrossCrashedRecovery) {
  // Crash mid-way through the magazine recovery itself, reopen, recover
  // again: reclaim guards must tolerate the re-run with no double-frees.
  alloc_object();
  const std::size_t before = balloc_->count_all_free_blocks();
  crash_and_reopen();
  balloc_->set_block_reachability_fn([](std::uint64_t) { return false; });
  CrashPoints::instance().arm(crash_tag("alloc.mag_recover_mid"));
  std::uint64_t riv = 0;
  EXPECT_THROW(balloc_->allocate(0, 10, &riv), CrashException);
  CrashPoints::instance().disarm();
  crash_and_reopen();
  balloc_->set_block_reachability_fn([](std::uint64_t) { return false; });
  balloc_->allocate(0, 11, &riv);  // full recovery this time
  EXPECT_EQ(balloc_->count_all_free_blocks(), before);
  // A third recovery pass (next epoch) must converge to the same total.
  const std::size_t settled = balloc_->count_all_free_blocks();
  crash_and_reopen();
  balloc_->set_block_reachability_fn([](std::uint64_t) { return false; });
  balloc_->allocate(0, 12, &riv);
  EXPECT_EQ(balloc_->count_all_free_blocks(), settled);
  EXPECT_EQ(balloc_->count_all_free_blocks(),
            allocated_chunks() * balloc_->blocks_per_chunk(0) - 1);
}

TEST_F(AllocTest, CrashDuringDeallocateIsRecovered) {
  std::uint64_t riv = 0;
  auto* p = static_cast<MemBlock*>(balloc_->allocate(0, 9, &riv));
  p->state = 99;
  pmem::persist(p, kBlockSize);
  CrashPoints::instance().arm(crash_tag("alloc.recover_converted"));
  EXPECT_THROW(balloc_->deallocate(riv), CrashException);
  crash_and_reopen();
  balloc_->set_reachability_fn([](const ThreadLog&) { return false; });
  const std::size_t before = balloc_->count_all_free_blocks();
  std::uint64_t riv2 = 0;
  balloc_->allocate(0, 10, &riv2);  // stale log -> finish the deallocation
  EXPECT_EQ(balloc_->count_all_free_blocks(), before)
      << "block returned to list (+1) and new block popped (-1)";
}

}  // namespace
}  // namespace upsl::alloc
