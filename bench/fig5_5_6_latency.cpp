// Table 5.3 + Figures 5.5/5.6: per-operation-type latency for every YCSB
// workload across the three structures — medians (Table 5.3) and the
// percentile series (50/90/99/99.9/99.99, the x-axes of Figures 5.5-5.6).
//
// Paper shape to reproduce:
//  * BzTree has the lowest read medians but its update tail explodes from
//    p90 upward in update-heavy workloads (PMwCAS helping),
//  * the PMDK lock-based list's medians are ~3x UPSkipList's across the
//    board (transactional write amplification), with comparable tails,
//  * UPSkipList's reads are essentially unaffected by the update ratio.
#include "bench_common.hpp"

namespace {

using upsl::LatencyHistogram;

void print_percentiles(const char* structure, const char* workload,
                       const char* op, const LatencyHistogram& h) {
  if (h.count() == 0) return;
  std::printf("%-18s %-14s %-8s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
              workload, structure, op, h.percentile(50) / 1000.0,
              h.percentile(90) / 1000.0, h.percentile(99) / 1000.0,
              h.percentile(99.9) / 1000.0, h.percentile(99.99) / 1000.0);
}

}  // namespace

int main() {
  using namespace upsl;
  using namespace upsl::bench;
  apply_persist_delay();
  const BenchScale scale;
  const unsigned threads = scale.threads.empty() ? 4 : scale.threads.back();

  print_header("Table 5.3 / Figures 5.5-5.6 — latency percentiles (us)",
               "BzTree update tail explodes >= p90 under contention; "
               "PMDK-SL medians ~3x UPSkipList");
  std::printf("%-18s %-14s %-8s %10s %10s %10s %10s %10s\n", "workload",
              "structure", "op", "p50", "p90", "p99", "p99.9", "p99.99");

  for (const auto& spec : {ycsb::kWorkloadA, ycsb::kWorkloadB,
                           ycsb::kWorkloadC, ycsb::kWorkloadD}) {
    auto run_one = [&](const char* name, auto make) {
      auto adapter = make();
      const ycsb::Trace trace =
          ycsb::generate(spec, scale.records, scale.ops, threads, 7);
      ycsb::preload(*adapter, trace);
      const ycsb::RunStats stats = ycsb::run_trace(*adapter, trace, true);
      print_percentiles(name, spec.name, "read", stats.reads);
      print_percentiles(name, spec.name, "update", stats.updates);
      print_percentiles(name, spec.name, "insert", stats.inserts);
      std::fflush(stdout);
    };
    run_one("UPSkipList",
            [&] { return std::make_unique<UPSLAdapter>(scale.records); });
    run_one("BzTree",
            [&] { return std::make_unique<BzAdapter>(scale.records); });
    run_one("PMDK-lock-SL",
            [&] { return std::make_unique<LSLAdapter>(scale.records); });
  }
  return 0;
}
