// Machine-readable benchmark emission shared by the bench harnesses.
//
// Each harness that wants a durable perf record collects entries — variant
// name, flat config key/values, throughput, optional p50/p99 latency from
// common/histogram.hpp — and writes one BENCH_<name>.json next to the
// working directory, so the perf trajectory across PRs is diffable data
// instead of scraped stdout.
//
// Schema (version 1; p999_ns added later, additively):
//   {
//     "bench": "<harness name>",
//     "schema": 1,
//     "entries": [
//       {
//         "name": "<variant>",
//         "config": {"key": "value", ...},
//         "ops_per_sec": <double>,
//         "p50_ns": <int>,        // only when a histogram was supplied
//         "p99_ns": <int>,
//         "p999_ns": <int>
//       }, ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"

namespace upsl::bench {

class JsonBenchWriter {
 public:
  using Config = std::vector<std::pair<std::string, std::string>>;

  explicit JsonBenchWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(std::string name, Config config, double ops_per_sec) {
    entries_.push_back(
        {std::move(name), std::move(config), ops_per_sec, {}, {}, {}});
  }

  void add(std::string name, Config config, double ops_per_sec,
           const LatencyHistogram& latency) {
    entries_.push_back({std::move(name), std::move(config), ops_per_sec,
                        latency.percentile(50.0), latency.percentile(99.0),
                        latency.percentile(99.9)});
  }

  /// Write BENCH_<bench name>.json in the current directory (or an explicit
  /// path). Returns false on I/O failure — benches report but don't abort.
  bool write(const std::string& path = "") const {
    const std::string out =
        path.empty() ? "BENCH_" + bench_name_ + ".json" : path;
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema\": 1,\n  \"entries\": [",
                 escaped(bench_name_).c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"config\": {",
                   i == 0 ? "" : ",", escaped(e.name).c_str());
      for (std::size_t c = 0; c < e.config.size(); ++c)
        std::fprintf(f, "%s\"%s\": \"%s\"", c == 0 ? "" : ", ",
                     escaped(e.config[c].first).c_str(),
                     escaped(e.config[c].second).c_str());
      std::fprintf(f, "}, \"ops_per_sec\": %.1f", e.ops_per_sec);
      if (e.p50_ns.has_value())
        std::fprintf(f, ", \"p50_ns\": %llu, \"p99_ns\": %llu",
                     static_cast<unsigned long long>(*e.p50_ns),
                     static_cast<unsigned long long>(*e.p99_ns));
      if (e.p999_ns.has_value())
        std::fprintf(f, ", \"p999_ns\": %llu",
                     static_cast<unsigned long long>(*e.p999_ns));
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("wrote %s (%zu entries)\n", out.c_str(), entries_.size());
    return ok;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Config config;
    double ops_per_sec;
    std::optional<std::uint64_t> p50_ns;
    std::optional<std::uint64_t> p99_ns;
    std::optional<std::uint64_t> p999_ns;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(ch) < 0x20) continue;  // drop control chars
      out.push_back(ch);
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Entry> entries_;
};

}  // namespace upsl::bench
