// Table 5.4: recovery time — the time from "reconnect to the pools" until
// the structure can serve new requests, after an insert-heavy run is cut
// short.
//
// Paper shape to reproduce (absolute numbers depend on the machine):
//   UPSkipList        83.7 ms   (reconnect + one persisted epoch bump;
//                                repair is deferred into run time)
//   BzTree 500K desc   760 ms   (full descriptor-pool scan)
//   BzTree 100K desc   239 ms   (≈ linear in the descriptor count)
//   PMDK lock-based SL 55.5 ms  (reconnect + rollback of <= #threads txs)
// i.e. BzTree ≈ 9x UPSkipList at 500K descriptors, and BzTree's recovery
// scales with its descriptor pool, not with the data.
#include <chrono>

#include "bench_common.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace upsl;
  using namespace upsl::bench;
  apply_persist_delay();
  const BenchScale scale;
  constexpr int kTrials = 3;

  print_header("Table 5.4 — recovery time (average of 3 trials, ms)",
               "UPSkipList ~84ms ≈ PMDK-SL ~56ms << BzTree 239ms@100K / "
               "760ms@500K descriptors");
  std::printf("%-26s %14s\n", "structure", "recovery (ms)");

  // --- UPSkipList: reconnect + epoch bump -------------------------------
  {
    double total = 0;
    for (int t = 0; t < kTrials; ++t) {
      UPSLAdapter adapter(scale.records);
      const auto trace = ycsb::generate(ycsb::WorkloadSpec{"ins", 0, 0, 1.0,
                                                           ycsb::Distribution::kUniform},
                                        scale.records, scale.ops, 2, 3);
      ycsb::preload(adapter, trace);
      // "Crash": rebuild all DRAM-side state from the pools.
      auto& store = adapter.store();
      std::vector<pmem::Pool*> pools;
      for (std::uint32_t i = 0; i < store.num_pools(); ++i)
        pools.push_back(pmem::PoolRegistry::instance().by_id(
            static_cast<std::uint16_t>(i)));
      const auto t0 = std::chrono::steady_clock::now();
      riv::Runtime::instance().reset();
      auto reopened = core::UPSkipList::open(pools);
      reopened->search(ycsb::key_of(1));  // first request served
      total += ms_since(t0);
    }
    std::printf("%-26s %14.2f   (paper: 83.7)\n", "UPSkipList", total / kTrials);
  }

  // --- BzTree at two descriptor-pool sizes ------------------------------
  for (const std::uint32_t descs : {500000u, 100000u}) {
    double total = 0;
    for (int t = 0; t < kTrials; ++t) {
      BzAdapter adapter(scale.records, descs);
      const auto trace = ycsb::generate(ycsb::WorkloadSpec{"ins", 0, 0, 1.0,
                                                           ycsb::Distribution::kUniform},
                                        scale.records, scale.ops, 2, 3);
      ycsb::preload(adapter, trace);
      const auto t0 = std::chrono::steady_clock::now();
      auto reopened = bztree::BzTree::open(adapter.pool());
      reopened->search(ycsb::key_of(1));
      total += ms_since(t0);
    }
    std::printf("BzTree (%6u desc.)       %14.2f   (paper: %s)\n", descs,
                total / kTrials, descs == 500000u ? "760" : "239");
  }

  // --- PMDK lock-based skip list: reconnect + tx rollback ----------------
  {
    double total = 0;
    for (int t = 0; t < kTrials; ++t) {
      LSLAdapter adapter(scale.records);
      const auto trace = ycsb::generate(ycsb::WorkloadSpec{"ins", 0, 0, 1.0,
                                                           ycsb::Distribution::kUniform},
                                        scale.records, scale.ops, 2, 3);
      ycsb::preload(adapter, trace);
      // Leave in-flight transactions on a few thread ids, as a mid-run
      // crash would.
      for (int tid = 0; tid < 8; ++tid) {
        ThreadRegistry::instance().bind(tid);
        adapter.list().store().tx_begin();
      }
      ThreadRegistry::instance().bind(0);
      const auto t0 = std::chrono::steady_clock::now();
      auto reopened = lsl::LockSkipList::open(adapter.pool());
      reopened->search(ycsb::key_of(1));
      total += ms_since(t0);
    }
    std::printf("%-26s %14.2f   (paper: 55.5)\n", "PMDK lock-based SL",
                total / kTrials);
  }
  return 0;
}
