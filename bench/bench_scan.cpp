// Streaming-scan A/B harness (BENCH_scan.json) — the tentpole's measurement.
//
// Three experiments, all over the same preloaded key set:
//
//   1. Core loop: pulls the whole range through UPSkipList::scan_chunk with a
//      reused buffer and asserts the steady state performs ZERO heap
//      allocations (the per-scan `snapshot` vector this PR removed). The
//      binary's global operator new is instrumented; a nonzero delta fails
//      the bench.
//   2. Workload-E wire mix: 64 closed-loop clients (UPSL_SCAN_CLIENTS) play
//      the kWorkloadE op stream (95% short zipfian-length scans, 5% inserts)
//      against a self-hosted server, once over the buffered single-frame
//      SCAN verb and once over chunked streamed SCANS. Reported per leg:
//      scanned entries/s plus p50/p99/p999 time-to-first-chunk (TTFC) and
//      time-to-last-chunk (TTLC).
//   3. Long-scan leg: few clients, full-range scans with a large limit —
//      where chunked streaming separates TTFC from TTLC (first entries are
//      delivered while the tail is still being merged) and the buffered path
//      pays for materializing the entire reply before byte one.
//
// Experiments 2 and 3 run on both data planes — io_uring when the kernel
// offers it, then epoll (UPSL_DISABLE_IOURING is the user-facing kill
// switch; here the option toggles directly). On kernels without io_uring the
// uring legs are skipped with a notice and a marker entry so CI artifacts
// stay self-describing.
//
// Knobs: UPSL_BENCH_RECORDS (default 20000), UPSL_BENCH_OPS (ops per mix
// leg, default 20000), UPSL_SCAN_CLIENTS (default 64), UPSL_SHARDS
// (default 1).
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/histogram.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "ycsb/workload.hpp"

// ---- allocation instrumentation (experiment 1) -----------------------------
// Counting replacements for the global allocator. Deliberately minimal: every
// path funnels through malloc/free, and the counter is relaxed — the bench
// only reads it around a single-threaded loop.
static std::atomic<std::uint64_t> g_heap_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace upsl;
using bench::JsonBenchWriter;

std::uint64_t now_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// ---- experiment 1: allocation-free core loop -------------------------------

bool core_scan_loop(JsonBenchWriter& out, std::uint64_t records) {
  ThreadRegistry::instance().bind(0);
  bench::UPSLAdapter adapter(records, 1, 64);
  for (std::uint64_t i = 0; i < records; ++i)
    adapter.insert(ycsb::key_of(i), i + 1);

  std::vector<core::ScanEntry> buf;
  buf.reserve(8192);
  // Warm up: one full pass settles every lazily-grown capacity (buf itself,
  // the DRAM index's internals, thread-local state).
  std::uint64_t resume = 0;
  std::uint64_t total = 0;
  auto full_pass = [&] {
    std::uint64_t lo = 1;
    std::uint64_t pass = 0;
    do {
      buf.clear();
      adapter.store().scan_chunk(lo, core::kTailKey, 4096, buf, &resume);
      pass += buf.size();
      lo = resume;
    } while (resume != 0);
    return pass;
  };
  full_pass();

  const int kPasses = 10;
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < kPasses; ++p) total += full_pass();
  const double secs = static_cast<double>(now_ns(t0)) / 1e9;
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;

  const double entries_s =
      secs > 0 ? static_cast<double>(total) / secs : 0;
  std::printf("  core scan_chunk loop: %.0f entries/s, %llu steady-state "
              "heap allocations over %d passes%s\n",
              entries_s, static_cast<unsigned long long>(allocs), kPasses,
              allocs == 0 ? "" : "  ** FAIL: scan loop allocates **");

  JsonBenchWriter::Config cfg;
  cfg.emplace_back("records", std::to_string(records));
  cfg.emplace_back("steady_state_allocs", std::to_string(allocs));
  bench::append_build_config(cfg);
  out.add("scan_core_chunk_loop", std::move(cfg), entries_s);
  return allocs == 0;
}

// ---- wire experiments ------------------------------------------------------

struct Target {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct MixResult {
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t scan_entries = 0;
  bench::LatencyRecorder ttfc;  // submit -> first chunk decoded
  bench::LatencyRecorder ttlc;  // submit -> final chunk decoded
  bool ok = true;
};

/// Plays `total_ops` of the workload-E mix over `clients` connections.
/// `chunked` selects Client::scan_stream (TTFC at the first callback) vs the
/// buffered single-frame scan (TTFC == TTLC by construction — the whole
/// result lands in one reply).
MixResult run_mix(const Target& t, std::uint64_t records,
                  std::uint64_t total_ops, unsigned clients, bool chunked,
                  std::uint32_t scan_limit_override = 0,
                  double insert_fraction = -1) {
  ycsb::WorkloadSpec spec = ycsb::kWorkloadE;
  if (insert_fraction >= 0) {
    spec.insert = insert_fraction;
    spec.scan = 1.0 - insert_fraction;
  }
  std::vector<MixResult> per_thread(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      MixResult& r = per_thread[i];
      server::Client c;
      if (!c.connect(t.host, t.port)) {
        r.ok = false;
        return;
      }
      ycsb::OpGenerator gen(spec, records, /*seed=*/7000 + i, i, clients);
      std::vector<server::Response> resp;
      try {
        for (std::uint64_t n = total_ops / clients; n > 0; --n) {
          const ycsb::Op op = gen.next();
          if (op.type == ycsb::OpType::kScan) {
            const std::uint32_t limit =
                scan_limit_override != 0 ? scan_limit_override : op.scan_len;
            const std::uint64_t lo =
                scan_limit_override != 0 ? 1 : op.key;
            const auto s = std::chrono::steady_clock::now();
            if (chunked) {
              bool first = true;
              std::uint64_t first_ns = 0;
              const std::size_t got = c.scan_stream(
                  lo, ~0ULL,
                  [&](const std::vector<std::pair<std::uint64_t,
                                                  std::uint64_t>>&) {
                    if (first) {
                      first_ns = now_ns(s);
                      first = false;
                    }
                    return true;
                  },
                  limit);
              const std::uint64_t last_ns = now_ns(s);
              r.ttfc.record_ns(first ? last_ns : first_ns);
              r.ttlc.record_ns(last_ns);
              r.scan_entries += got;
            } else {
              const auto entries = c.scan_buffered(lo, ~0ULL, limit);
              const std::uint64_t ns = now_ns(s);
              r.ttfc.record_ns(ns);
              r.ttlc.record_ns(ns);
              r.scan_entries += entries.size();
            }
            ++r.ops;
          } else {
            c.queue({server::Opcode::kPut, op.key, op.value});
            c.flush(&resp);
            ++r.ops;
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %u: %s\n", i, e.what());
        r.ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();

  MixResult total;
  total.seconds = static_cast<double>(now_ns(t0)) / 1e9;
  for (const MixResult& r : per_thread) {
    total.ops += r.ops;
    total.scan_entries += r.scan_entries;
    total.ttfc.merge(r.ttfc);
    total.ttlc.merge(r.ttlc);
    total.ok = total.ok && r.ok;
  }
  return total;
}

void report(JsonBenchWriter& out, const char* name, const char* plane,
            const char* mode, unsigned clients, const MixResult& r,
            bool* all_ok) {
  *all_ok = *all_ok && r.ok;
  const double entries_s =
      r.seconds > 0 ? static_cast<double>(r.scan_entries) / r.seconds : 0;
  std::printf("  %-28s %10.0f entries/s   TTFC p50 %8llu p99 %8llu   "
              "TTLC p50 %8llu p99 %8llu ns\n",
              name, entries_s,
              static_cast<unsigned long long>(r.ttfc.p50_ns()),
              static_cast<unsigned long long>(r.ttfc.p99_ns()),
              static_cast<unsigned long long>(r.ttlc.p50_ns()),
              static_cast<unsigned long long>(r.ttlc.p99_ns()));
  JsonBenchWriter::Config cfg;
  cfg.emplace_back("plane", plane);
  cfg.emplace_back("mode", mode);
  cfg.emplace_back("clients", std::to_string(clients));
  cfg.emplace_back("scans", std::to_string(r.ttlc.count()));
  cfg.emplace_back("scan_entries", std::to_string(r.scan_entries));
  cfg.emplace_back("ttfc_p50_ns", std::to_string(r.ttfc.p50_ns()));
  cfg.emplace_back("ttfc_p99_ns", std::to_string(r.ttfc.p99_ns()));
  cfg.emplace_back("ttfc_p999_ns", std::to_string(r.ttfc.p999_ns()));
  bench::append_build_config(cfg);
  // The JSON latency fields carry TTLC; TTFC rides in config above.
  out.add(name, std::move(cfg), entries_s, r.ttlc.histogram());
}

}  // namespace

int main() {
  bench::apply_persist_delay();
  const std::uint64_t records = bench::env_u64("UPSL_BENCH_RECORDS", 20000);
  const std::uint64_t ops = bench::env_u64("UPSL_BENCH_OPS", 20000);
  const auto clients =
      static_cast<unsigned>(bench::env_u64("UPSL_SCAN_CLIENTS", 64));
  const auto shards = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, bench::env_u64("UPSL_SHARDS", 1)));

  bench::print_header("streaming scan A/B",
                      "scan PR: SIMD chunked scans over epoll vs io_uring");

  JsonBenchWriter out("scan");
  bool all_ok = true;

  // 1. Core loop + zero-allocation assertion.
  all_ok = core_scan_loop(out, records) && all_ok;

  // 2+3. Wire mixes on each data plane.
  for (const bool want_uring : {true, false}) {
    ThreadRegistry::instance().bind(0);
    server::ServerOptions sopts;
    sopts.port = 0;
    sopts.workers = 4;
    sopts.io_uring = want_uring;
    bench::UPSLShardedAdapter adapter(
        records, shards, 64,
        /*max_threads=*/sopts.first_thread_id + shards * sopts.workers + 4);
    // Preload in-process (cheaper than the wire; stores must be live before
    // the sockets anyway).
    std::uint64_t v = 1;
    for (std::uint64_t i = 0; i < records; ++i)
      adapter.insert(ycsb::key_of(i), v++);
    server::Server srv(adapter.set(), sopts);
    if (!srv.start()) {
      std::fprintf(stderr, "cannot start in-process server\n");
      return 1;
    }
    const std::string plane = srv.data_plane();
    if (want_uring && plane != "io_uring") {
      // Old kernel / seccomp: record the skip so the artifact says why the
      // uring rows are missing, and keep the suite green.
      std::printf("  io_uring unavailable on this kernel -- skipping uring "
                  "legs (epoll still measured)\n");
      JsonBenchWriter::Config cfg;
      cfg.emplace_back("plane", "io_uring");
      cfg.emplace_back("skipped", "kernel lacks io_uring");
      out.add("scan_iouring_skipped", std::move(cfg), 0);
      srv.stop();
      srv.wait();
      continue;
    }
    Target t{"127.0.0.1", srv.port()};
    std::printf("  [%s] %u clients, %llu records, %llu ops per leg\n",
                plane.c_str(), clients,
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(ops));

    // Workload-E mix, buffered vs chunked.
    std::array<MixResult, 2> e_legs;
    for (const bool chunked : {false, true}) {
      const MixResult r = run_mix(t, records, ops, clients, chunked);
      e_legs[chunked ? 1 : 0] = r;
      report(out,
             (std::string("scan_E_") + (chunked ? "chunked_" : "buffered_") +
              plane)
                 .c_str(),
             plane.c_str(), chunked ? "chunked" : "buffered", clients, r,
             &all_ok);
    }

    // Long-scan leg: full-range scans, streaming TTFC vs buffered
    // whole-reply latency. Few clients; scans only.
    const std::uint32_t long_limit = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(records, 50000));
    const unsigned long_clients = std::min(clients, 4u);
    std::array<MixResult, 2> long_legs;
    for (const bool chunked : {false, true}) {
      const MixResult r =
          run_mix(t, records, /*total_ops=*/long_clients * 8, long_clients,
                  chunked, long_limit, /*insert_fraction=*/0.0);
      long_legs[chunked ? 1 : 0] = r;
      report(out,
             (std::string("scan_long_") + (chunked ? "chunked_" : "buffered_") +
              plane)
                 .c_str(),
             plane.c_str(), chunked ? "chunked-long" : "buffered-long",
             long_clients, r, &all_ok);
    }

    // Acceptance gate (same arming rule as bench_shard's scaling gate):
    // the 2x entries/s and TTFC-p99 targets are contention/streaming
    // effects that need real parallelism — on a small box the E mix is
    // pure loopback RTT and both modes ship one frame per short scan, so
    // the ratio is meaningless there. Armed at >=16 clients on >=8 cores
    // with >=20000 ops; below that the ratios are still recorded.
    const auto rate = [](const MixResult& r) {
      return r.seconds > 0
                 ? static_cast<double>(r.scan_entries) / r.seconds
                 : 0.0;
    };
    const double e_ratio =
        rate(e_legs[0]) > 0 ? rate(e_legs[1]) / rate(e_legs[0]) : 0.0;
    const bool ttfc_better =
        e_legs[1].ttfc.p99_ns() <= e_legs[0].ttfc.p99_ns() ||
        long_legs[1].ttfc.p99_ns() <= long_legs[0].ttfc.p99_ns();
    const bool armed = clients >= 16 && ops >= 20000 &&
                       std::thread::hardware_concurrency() >= 8;
    std::printf("  [%s] chunked/buffered E entries/s ratio %.2fx, "
                "TTFC p99 %s (gate %s)\n",
                plane.c_str(), e_ratio, ttfc_better ? "improved" : "WORSE",
                armed ? "armed" : "disarmed: needs >=16 clients, >=8 cores, "
                                  ">=20000 ops");
    if (armed && (e_ratio < 2.0 || !ttfc_better)) {
      std::fprintf(stderr,
                   "  GATE FAILED on %s: chunked must be >=2x buffered "
                   "entries/s on the E mix with TTFC p99 no worse\n",
                   plane.c_str());
      all_ok = false;
    }

    srv.stop();
    srv.wait();
  }

  out.write();
  return all_ok ? 0 : 1;
}
