// Table 2.1 sanity: skip list operations are expected O(log n) — search
// cost should grow logarithmically (roughly +constant per doubling), not
// linearly, across two orders of magnitude of structure size. Also sweeps
// keys-per-node, the thesis' main structural tuning knob (§5.1.2 chose 256
// "through trial and error").
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"
#include "ycsb/ycsb.hpp"

namespace {

using namespace upsl;

std::unique_ptr<core::UPSkipList> make_store(
    std::vector<std::unique_ptr<pmem::Pool>>& pools, std::uint32_t keys_per_node,
    bool sorted_splits = false) {
  ThreadRegistry::instance().bind(0);
  riv::Runtime::instance().reset();
  core::Options opts;
  opts.sorted_splits = sorted_splits;
  opts.keys_per_node = keys_per_node;
  opts.max_height = 32;
  opts.max_threads = 4;
  opts.chunk.chunk_size = 4 << 20;
  opts.chunk.max_chunks = 100;
  pools.clear();
  pools.push_back(pmem::Pool::create_anonymous(
      0, (8ull << 20) + 100ull * (4 << 20), {}));
  return core::UPSkipList::create({pools[0].get()}, opts);
}

void BM_SearchVsSize(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::unique_ptr<pmem::Pool>> pools;
  auto store = make_store(pools, 64);
  for (std::uint64_t i = 0; i < n; ++i) store->insert(ycsb::key_of(i), i + 1);
  Xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->search(ycsb::key_of(rng.next_below(n))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  store.reset();
  riv::Runtime::instance().reset();
}
BENCHMARK(BM_SearchVsSize)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_KeysPerNodeSweep(benchmark::State& state) {
  const auto kpn = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint64_t kN = 1 << 14;
  std::vector<std::unique_ptr<pmem::Pool>> pools;
  auto store = make_store(pools, kpn);
  for (std::uint64_t i = 0; i < kN; ++i) store->insert(ycsb::key_of(i), i + 1);
  Xoshiro256 rng(6);
  for (auto _ : state) {
    const std::uint64_t key = ycsb::key_of(rng.next_below(kN));
    if (rng.next_below(2) == 0) {
      benchmark::DoNotOptimize(store->search(key));
    } else {
      benchmark::DoNotOptimize(store->insert(key, rng.next() >> 2));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  store.reset();
  riv::Runtime::instance().reset();
}
BENCHMARK(BM_KeysPerNodeSweep)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_SortedSplitLookup(benchmark::State& state) {
  // §7 future-work ablation: binary search over the sorted prefix of
  // split-produced nodes vs the default linear scan, read-only at 256
  // keys/node (where scans are longest).
  const bool sorted = state.range(0) != 0;
  constexpr std::uint64_t kN = 1 << 15;
  std::vector<std::unique_ptr<pmem::Pool>> pools;
  auto store = make_store(pools, 256, sorted);
  for (std::uint64_t i = 0; i < kN; ++i) store->insert(ycsb::key_of(i), i + 1);
  Xoshiro256 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->search(ycsb::key_of(rng.next_below(kN))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(sorted ? "sorted_splits" : "linear_scan");
  store.reset();
  riv::Runtime::instance().reset();
}
BENCHMARK(BM_SortedSplitLookup)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
