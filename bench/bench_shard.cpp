// Shard-scaling sweep for the sharded server (BENCH_shard.json).
//
// Three self-hosted legs — 1, 2, and 4 shards — under the SAME total load:
// N topology-aware clients (server::ShardedClient) drive a mixed YCSB-B
// workload with per-shard pipelining, so each request goes straight to the
// shard that owns its key and the legs differ only in how many independent
// stores/worker-groups/committers the key space is spread across.
//
// The headline metric is the throughput ratio of the 4-shard leg over the
// 1-shard leg. Acceptance gate (sharding PR): >= 2.5x at 16+ clients. The
// gate arms only at meaningful scale — enough clients to congest one shard,
// enough cores that four worker groups can actually run in parallel, and a
// non-smoke op count; tiny CI smoke runs just exercise the wiring.
//
// Knobs: UPSL_BENCH_RECORDS (default 20000), UPSL_BENCH_OPS (default 40000),
// UPSL_SERVER_CLIENTS (default 16), UPSL_SERVER_DEPTH (default 8),
// UPSL_SHARD_SWEEP (space-separated shard counts, default "1 2 4").
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/histogram.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "ycsb/workload.hpp"

namespace {

using namespace upsl;
using bench::JsonBenchWriter;

std::vector<std::uint32_t> sweep_from_env() {
  std::vector<std::uint32_t> sweep;
  const char* v = std::getenv("UPSL_SHARD_SWEEP");
  std::string s = v != nullptr ? v : "1 2 4";
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t end = s.find(' ', pos);
    const std::string tok = s.substr(pos, end - pos);
    if (!tok.empty())
      sweep.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return sweep.empty() ? std::vector<std::uint32_t>{1, 2, 4} : sweep;
}

bool connect_with_retry(server::ShardedClient& c, std::uint16_t port,
                        int attempts = 50) {
  for (int i = 0; i < attempts; ++i) {
    if (c.connect("127.0.0.1", port)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

/// Routed pipelined preload: each record goes down its owning shard's
/// connection directly.
bool preload(std::uint16_t port, std::uint64_t records) {
  server::ShardedClient c;
  if (!connect_with_retry(c, port)) return false;
  constexpr std::size_t kDepth = 128;
  std::vector<server::Response> resp;
  std::uint64_t v = 1;
  for (std::uint64_t i = 0; i < records; ++i) {
    c.queue({server::Opcode::kPut, ycsb::key_of(i), v++});
    if (c.queued() >= kDepth || i + 1 == records) c.flush(&resp);
  }
  return true;
}

struct LegResult {
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t cross_shard_ops = 0;
  bench::LatencyRecorder latency;
  bool ok = true;
  double ops_s() const {
    return seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  }
};

/// One leg: fresh sharded store + server, routed preload, timed run of the
/// same total op count through `clients` ShardedClients.
LegResult run_leg(std::uint32_t shards, std::uint64_t records,
                  std::uint64_t total_ops, unsigned clients,
                  std::uint32_t depth) {
  LegResult total;
  server::ServerOptions sopts;
  sopts.port = 0;
  sopts.workers = 2;
  bench::UPSLShardedAdapter adapter(
      records, shards, 64,
      /*max_threads=*/sopts.first_thread_id + shards * sopts.workers + 4);
  server::Server srv(adapter.set(), sopts);
  if (!srv.start()) {
    std::fprintf(stderr, "cannot start %u-shard server\n", shards);
    total.ok = false;
    return total;
  }
  if (!preload(srv.port(), records)) {
    std::fprintf(stderr, "preload failed (%u shards)\n", shards);
    total.ok = false;
    srv.stop();
    srv.wait();
    return total;
  }

  std::vector<LegResult> per_thread(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      LegResult& r = per_thread[i];
      server::ShardedClient c;
      if (!connect_with_retry(c, srv.port(), 30)) {
        r.ok = false;
        return;
      }
      ycsb::OpGenerator gen(ycsb::kWorkloadB, records, /*seed=*/3000 + i, i,
                            clients);
      std::uint64_t remaining = total_ops / clients;
      std::vector<server::Response> resp;
      try {
        while (remaining > 0) {
          const std::size_t batch =
              static_cast<std::size_t>(std::min<std::uint64_t>(depth,
                                                               remaining));
          for (std::size_t b = 0; b < batch; ++b) {
            const ycsb::Op op = gen.next();
            if (op.type == ycsb::OpType::kRead)
              c.queue({server::Opcode::kGet, op.key});
            else
              c.queue({server::Opcode::kPut, op.key, op.value});
          }
          const auto s = std::chrono::steady_clock::now();
          c.flush(&resp);
          const auto ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - s)
                  .count());
          for (std::size_t b = 0; b < batch; ++b) r.latency.record_ns(ns);
          r.ops += batch;
          remaining -= batch;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %u: %s\n", i, e.what());
        r.ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();
  total.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const LegResult& r : per_thread) {
    total.ops += r.ops;
    total.latency.merge(r.latency);
    total.ok = total.ok && r.ok;
  }
  // Routed clients should never force in-process cross-shard hops.
  total.cross_shard_ops = srv.stats().cross_shard_ops.load();
  srv.stop();
  srv.wait();
  return total;
}

}  // namespace

int main() {
  bench::apply_persist_delay();
  const std::uint64_t records = bench::env_u64("UPSL_BENCH_RECORDS", 20000);
  const std::uint64_t ops = bench::env_u64("UPSL_BENCH_OPS", 40000);
  const auto clients =
      static_cast<unsigned>(bench::env_u64("UPSL_SERVER_CLIENTS", 16));
  const auto depth =
      static_cast<std::uint32_t>(bench::env_u64("UPSL_SERVER_DEPTH", 8));
  const std::vector<std::uint32_t> sweep = sweep_from_env();

  ThreadRegistry::instance().bind(0);
  bench::print_header("shard scaling sweep",
                      "horizontal sharding: independent stores per shard");
  std::printf("  records=%llu ops=%llu clients=%u depth=%u\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(ops), clients, depth);

  JsonBenchWriter out("shard");
  bool all_ok = true;
  double base_ops_s = 0;
  double speedup_at_4 = 0;
  for (const std::uint32_t shards : sweep) {
    const LegResult leg = run_leg(shards, records, ops, clients, depth);
    all_ok = all_ok && leg.ok;
    const double speedup =
        base_ops_s > 0 ? leg.ops_s() / base_ops_s : 1.0;
    if (shards == 1 && base_ops_s == 0) base_ops_s = leg.ops_s();
    if (shards == 4) speedup_at_4 = speedup;
    std::printf(
        "  %u shard%s %9.0f ops/s  %5.2fx vs 1  p50 %7llu ns  p99 %7llu ns  "
        "cross-shard %llu\n",
        shards, shards == 1 ? " " : "s", leg.ops_s(), speedup,
        static_cast<unsigned long long>(leg.latency.p50_ns()),
        static_cast<unsigned long long>(leg.latency.p99_ns()),
        static_cast<unsigned long long>(leg.cross_shard_ops));
    if (leg.cross_shard_ops != 0) {
      std::fprintf(stderr,
                   "FAIL: routed clients forced %llu cross-shard hops\n",
                   static_cast<unsigned long long>(leg.cross_shard_ops));
      all_ok = false;
    }

    char buf[32];
    JsonBenchWriter::Config cfg;
    cfg.emplace_back("shards", std::to_string(shards));
    std::snprintf(buf, sizeof buf, "%.3f", speedup);
    cfg.emplace_back("speedup_vs_1shard", buf);
    cfg.emplace_back("clients", std::to_string(clients));
    cfg.emplace_back("depth", std::to_string(depth));
    cfg.emplace_back("records", std::to_string(records));
    cfg.emplace_back("ops", std::to_string(ops));
    cfg.emplace_back("workload", ycsb::kWorkloadB.name);
    bench::append_build_config(cfg);
    out.add("shard_" + std::to_string(shards), std::move(cfg), leg.ops_s(),
            leg.latency.histogram());
  }
  out.write();

  // Near-linear-scaling gate: >= 2.5x at 4 shards vs 1. Armed only when the
  // measurement can be meaningful — enough clients to congest a single
  // shard, enough hardware parallelism that four shard worker groups do not
  // time-slice one core, and a non-smoke op count.
  const unsigned hw = std::thread::hardware_concurrency();
  if (clients >= 16 && hw >= 8 && ops >= 20000 && speedup_at_4 > 0) {
    if (speedup_at_4 < 2.5) {
      std::fprintf(stderr,
                   "FAIL: 4-shard speedup %.2fx < 2.5x acceptance floor\n",
                   speedup_at_4);
      all_ok = false;
    }
  } else if (speedup_at_4 > 0) {
    std::printf(
        "  scaling gate skipped (clients=%u hw=%u ops=%llu; needs >=16 "
        "clients, >=8 cores, >=20000 ops)\n",
        clients, hw, static_cast<unsigned long long>(ops));
  }
  return all_ok ? 0 : 1;
}
