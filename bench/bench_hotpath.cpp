// Hot-path microbenchmark harness: isolates the three costs a traversal is
// made of — the intra-node key scan (§4.4), full traverse hops (search), and
// the RIV dereference (§4.3.1) — and records machine-readable results in
// BENCH_hotpath.json so the scalar-vs-SIMD perf trajectory has data.
//
// Sections:
//   scan/<kernel>     find_u64 over one node's key array, keys_per_node in
//                     {8, 64, 256}, 75% present / 25% absent targets; every
//                     compiled kernel (scalar, sse2, avx2) plus the runtime
//                     dispatch. Prints the SIMD-vs-scalar speedup.
//   sorted/<kernel>   find_sorted_u64 over a sorted prefix (same mix).
//   search/<variant>  end-to-end UPSkipList::search on a preloaded store —
//                     the traverse + prefetch + scan composite — A/B'd
//                     in-process by toggling UPSL_DISABLE_SIMD and resetting
//                     the dispatch. p50/p99 from common/histogram.hpp.
//   riv/<mode>        pointer-chase through BlockAllocator-owned blocks via
//                     Runtime::to_ptr, single-pool vs multi-pool dispatch.
//
// Knobs: UPSL_BENCH_RECORDS / UPSL_BENCH_OPS (store scale),
// UPSL_PERSIST_DELAY_NS (default 0 here: this harness measures CPU paths,
// not the PMEM write model), UPSL_DISABLE_SIMD=1 (forces every dispatched
// path scalar; the explicit per-kernel rows are always measured).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/cpu_features.hpp"
#include "common/simd.hpp"
#include "common/thread_registry.hpp"

namespace {

using namespace upsl;
using namespace upsl::bench;
using Clock = std::chrono::steady_clock;

volatile std::uint64_t g_sink = 0;
void sink(std::uint64_t v) { g_sink = g_sink + v; }  // defeats dead-code elimination

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Run `op(i)` in batches until ~min_time elapsed; returns ops/sec.
template <typename Op>
double measure_ops_per_sec(Op&& op, double min_time = 0.25,
                           std::uint64_t batch = 4096) {
  // Warmup one batch.
  for (std::uint64_t i = 0; i < batch; ++i) op(i);
  std::uint64_t done = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    for (std::uint64_t i = 0; i < batch; ++i) op(done + i);
    done += batch;
    elapsed = seconds_since(t0);
  } while (elapsed < min_time);
  return static_cast<double>(done) / elapsed;
}

// ---- section 1+2: intra-node scan kernels ---------------------------------

struct KernelRow {
  const char* name;
  simd::FindFn fn;
};

/// Every kernel compiled into this binary that the host can execute.
std::vector<KernelRow> runnable_kernels(bool sorted) {
  std::vector<KernelRow> rows;
  if (sorted) {
    rows.push_back({"scalar", &simd::find_sorted_u64_scalar});
  } else {
    rows.push_back({"scalar", &simd::find_u64_scalar});
  }
#ifdef UPSL_SIMD_X86
  if (!sorted) rows.push_back({"sse2", &simd::find_u64_sse2});
  if (upsl::detail::cpu_has_avx2()) {
    rows.push_back(sorted ? KernelRow{"avx2", &simd::find_sorted_u64_avx2}
                          : KernelRow{"avx2", &simd::find_u64_avx2});
  }
#endif
  return rows;
}

void bench_scan_kernels(JsonBenchWriter& json, bool sorted) {
  std::printf("\n-- %s intra-node scan (ops/sec, higher is better) --\n",
              sorted ? "sorted-prefix" : "unsorted");
  std::printf("%-8s %-10s %14s %10s\n", "K", "kernel", "ops/sec",
              "vs scalar");
  for (std::uint32_t K : {8u, 64u, 256u}) {
    std::mt19937_64 rng(42 + K);
    // One node's key array: slot 0 is the node's first key; the rest are
    // distinct keys, sorted when exercising the sorted-prefix kernel.
    std::vector<std::uint64_t> keys(K);
    for (std::uint32_t i = 0; i < K; ++i) keys[i] = 2 * (i + 1);
    if (!sorted)
      std::shuffle(keys.begin() + 1, keys.end(), rng);
    std::swap(keys[0], *std::min_element(keys.begin(), keys.end()));
    // Target mix: 75% present (uniform over slots), 25% absent (odd keys).
    std::vector<std::uint64_t> targets(4096);
    for (auto& t : targets)
      t = (rng() % 4 != 0) ? keys[rng() % K] : (2 * (rng() % K) + 1);

    double scalar_ops = 0.0;
    for (const KernelRow& row : runnable_kernels(sorted)) {
      // Indirect call through a volatile pointer: all kernels pay the same
      // call overhead, as they do behind the runtime dispatch.
      volatile simd::FindFn fn = row.fn;
      const double ops = measure_ops_per_sec([&](std::uint64_t i) {
        sink(static_cast<std::uint64_t>(
            fn(keys.data(), 1, K, targets[i % targets.size()])));
      });
      if (scalar_ops == 0.0) scalar_ops = ops;  // scalar is always first
      const double speedup = scalar_ops > 0.0 ? ops / scalar_ops : 1.0;
      std::printf("%-8u %-10s %14.0f %9.2fx\n", K, row.name, ops, speedup);
      json.add(std::string(sorted ? "sorted/" : "scan/") + row.name,
               {{"keys_per_node", std::to_string(K)},
                {"targets", "75% present / 25% absent"},
                {"speedup_vs_scalar",
                 std::to_string(speedup).substr(0, 4)}},
               ops);
    }
    // The dispatched entry records what production code actually runs.
    const double ops = measure_ops_per_sec([&](std::uint64_t i) {
      const std::uint64_t t = targets[i % targets.size()];
      sink(static_cast<std::uint64_t>(
          sorted ? simd::find_sorted_u64(keys.data(), 1, K, t)
                 : simd::find_u64(keys.data(), 1, K, t)));
    });
    std::printf("%-8u %-10s %14.0f %9.2fx  (dispatch)\n", K,
                simd_level_name(simd::dispatched_level()), ops,
                scalar_ops > 0.0 ? ops / scalar_ops : 1.0);
    json.add(std::string(sorted ? "sorted/" : "scan/") + "dispatched",
             {{"keys_per_node", std::to_string(K)},
              {"level", simd_level_name(simd::dispatched_level())}},
             ops);
  }
}

// ---- section 3: end-to-end search (traverse + prefetch + scan) ------------

void bench_search(JsonBenchWriter& json) {
  const BenchScale scale;
  std::printf("\n-- UPSkipList::search, %llu records, keys_per_node=256 --\n",
              static_cast<unsigned long long>(scale.records));
  std::printf("%-10s %14s %10s %10s %10s\n", "variant", "ops/sec", "p50 ns",
              "p99 ns", "p999 ns");

  const auto run_variant = [&](const char* variant) {
    UPSLAdapter store(scale.records);
    Xoshiro256 load_rng(7);
    std::vector<std::uint64_t> keyset(scale.records);
    for (std::uint64_t i = 0; i < scale.records; ++i) keyset[i] = i + 1;
    for (std::uint64_t i = scale.records - 1; i > 0; --i)
      std::swap(keyset[i], keyset[load_rng.next_below(i + 1)]);
    for (const std::uint64_t k : keyset) store.insert(k, k * 3);

    LatencyRecorder lat;
    Xoshiro256 rng(11);
    // Warmup.
    for (std::uint64_t i = 0; i < 2048; ++i)
      sink(store.search(1 + rng.next_below(scale.records)).value_or(0));
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < scale.ops; ++i) {
      const std::uint64_t k = 1 + rng.next_below(scale.records);
      sink(lat.time([&] { return store.search(k); }).value_or(0));
    }
    const double ops = static_cast<double>(scale.ops) / seconds_since(t0);
    std::printf("%-10s %14.0f %10llu %10llu %10llu\n", variant, ops,
                static_cast<unsigned long long>(lat.p50_ns()),
                static_cast<unsigned long long>(lat.p99_ns()),
                static_cast<unsigned long long>(lat.p999_ns()));
    JsonBenchWriter::Config cfg{{"records", std::to_string(scale.records)},
                                {"keys_per_node", "256"}};
    append_build_config(cfg);
    json.add(std::string("search/") + variant, std::move(cfg), ops,
             lat.histogram());
  };

  // A/B the dispatched kernels in-process: the reset makes the next use
  // re-read UPSL_DISABLE_SIMD (single-threaded here, so the reset is safe).
  run_variant("simd");
  setenv("UPSL_DISABLE_SIMD", "1", 1);
  simd::reset_dispatch_for_testing();
  run_variant("scalar");
  unsetenv("UPSL_DISABLE_SIMD");
  simd::reset_dispatch_for_testing();
}

// ---- section 4: RIV dereference -------------------------------------------

void bench_riv_deref(JsonBenchWriter& json) {
  std::printf("\n-- RIV to_ptr dereference (shuffled chase over 32K blocks) --\n");
  ThreadRegistry::instance().bind(0);
  riv::Runtime::instance().reset();
  auto pool = pmem::Pool::create_anonymous(0, 96u << 20, {});
  alloc::ChunkAllocatorConfig ccfg;
  ccfg.chunk_size = 4 << 20;
  ccfg.max_chunks = 20;
  ccfg.root_size = 1 << 20;
  alloc::ChunkAllocator::format(*pool, ccfg);
  auto chunks = std::make_unique<alloc::ChunkAllocator>(*pool);
  char* root = chunks->root_area();
  auto* epoch = reinterpret_cast<std::uint64_t*>(root);
  *epoch = 1;
  auto* logs = reinterpret_cast<alloc::ThreadLog*>(root + 64);
  auto* arenas = reinterpret_cast<alloc::ArenaHeader*>(
      root + 64 + sizeof(alloc::ThreadLog) * kMaxThreads);
  alloc::BlockAllocator::Config bcfg;
  bcfg.block_size = 512;
  bcfg.arenas_per_pool = 1;
  alloc::BlockAllocator blocks(
      std::vector<alloc::ChunkAllocator*>{chunks.get()}, arenas, logs, epoch,
      bcfg);
  blocks.bootstrap();

  std::vector<std::uint64_t> rivs;
  rivs.reserve(1u << 15);
  for (std::size_t i = 0; i < (1u << 15); ++i) {
    std::uint64_t riv = 0;
    auto* b = static_cast<alloc::MemBlock*>(blocks.allocate(0, 1, &riv));
    b->state = 7;  // live object
    rivs.push_back(riv);
  }
  std::mt19937_64 rng(5);
  std::shuffle(rivs.begin(), rivs.end(), rng);

  std::printf("%-12s %14s\n", "mode", "derefs/sec");
  for (const bool single : {true, false}) {
    riv::Runtime::instance().set_single_pool_mode(single, pool->id());
    const double ops = measure_ops_per_sec([&](std::uint64_t i) {
      const void* p = riv::Runtime::instance().to_ptr(rivs[i % rivs.size()]);
      sink(*static_cast<const volatile std::uint64_t*>(p));
    });
    const char* mode = single ? "single_pool" : "multi_pool";
    std::printf("%-12s %14.0f\n", mode, ops);
    json.add(std::string("riv/") + mode,
             {{"blocks", "32768"}, {"block_size", "512"}}, ops);
  }
  riv::Runtime::instance().reset();
}

}  // namespace

int main() {
  pmem::Config::instance().persist_delay_ns =
      static_cast<std::uint32_t>(env_u64("UPSL_PERSIST_DELAY_NS", 0));
  print_header("Hot paths — intra-node scan, traverse, RIV dereference",
               "§4.4 multi-key scan + §4.3.1 one-word pointers are where "
               "traversal time goes");
  const char* kill_switch = std::getenv("UPSL_DISABLE_SIMD");
  std::printf("simd dispatch: %s (UPSL_DISABLE_SIMD=%s)\n",
              simd_level_name(simd::dispatched_level()),
              kill_switch != nullptr ? kill_switch : "unset");

  JsonBenchWriter json("hotpath");
  bench_scan_kernels(json, /*sorted=*/false);
  bench_scan_kernels(json, /*sorted=*/true);
  bench_search(json);
  bench_riv_deref(json);
  json.write();
  return 0;
}
