// Figure 5.3 / §5.2.2: read-only throughput of UPSkipList configured with a
// single key per node (so its structure matches the baseline's) and RIV
// one-word pointers, against the lock-based skip list with libpmemobj-style
// two-word fat pointers.
//
// Paper shape to reproduce: the fat-pointer list reaches only ~70% of the
// RIV list's throughput — half as many next-pointers fit per cache line.
// To isolate the pointer representation, the lock-based list's transactional
// machinery is idle here (read-only workload, same as the thesis' setup).
#include "bench_common.hpp"

int main() {
  using namespace upsl;
  using namespace upsl::bench;
  apply_persist_delay();
  const BenchScale scale;

  print_header("Figure 5.3 — RIV pointers vs libpmemobj fat pointers "
               "(read-only, 1 key/node)",
               "fat pointers reach only ~70% of RIV throughput");
  std::printf("%-8s %16s %16s %8s\n", "threads", "RIV (Mops/s)",
              "fat (Mops/s)", "fat/RIV");

  for (unsigned threads : scale.threads) {
    const double riv = measure_mops(
        [&] {
          return std::make_unique<UPSLAdapter>(scale.records, 1,
                                               /*keys_per_node=*/1);
        },
        ycsb::kWorkloadC, scale.records, scale.ops, threads);
    const double fat = measure_mops(
        [&] { return std::make_unique<LSLAdapter>(scale.records); },
        ycsb::kWorkloadC, scale.records, scale.ops, threads);
    std::printf("%-8u %16.3f %16.3f %7.1f%%\n", threads, riv, fat,
                riv > 0 ? fat / riv * 100.0 : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
