// Figure 5.1: throughput vs thread count for YCSB workloads A (update-heavy,
// 50/50, zipfian) and B (read-mostly, 95/5, zipfian) across UPSkipList,
// BzTree and the PMDK lock-based skip list.
//
// Paper shape to reproduce: UPSkipList beats BzTree by ~76% on A (BzTree's
// PMwCAS becomes the bottleneck as update contention grows) and by ~3% on B;
// the lock-based skip list trails UPSkipList everywhere (roughly half its
// throughput) but overtakes BzTree at high concurrency on A.
#include "bench_common.hpp"
#include "bench_json.hpp"

int main() {
  using namespace upsl;
  using namespace upsl::bench;
  apply_persist_delay();
  const BenchScale scale;

  print_header("Figure 5.1 — YCSB A and B throughput (Mops/s)",
               "UPSkipList > lock-based SL everywhere; BzTree collapses on A "
               "at high concurrency");
  std::printf("%-18s %-14s %8s %12s\n", "workload", "structure", "threads",
              "Mops/s");

  JsonBenchWriter json("fig5_1");
  const auto record = [&](const char* workload, const char* structure,
                          unsigned threads, double mops) {
    std::printf("%-18s %-14s %8u %12.3f\n", workload, structure, threads,
                mops);
    json.add(std::string(workload) + "/" + structure,
             {{"threads", std::to_string(threads)},
              {"records", std::to_string(scale.records)},
              {"ops", std::to_string(scale.ops)}},
             mops * 1e6);
  };

  for (const auto& spec : {ycsb::kWorkloadA, ycsb::kWorkloadB}) {
    for (unsigned threads : scale.threads) {
      record(spec.name, "UPSkipList", threads,
             measure_mops(
                 [&] { return std::make_unique<UPSLAdapter>(scale.records); },
                 spec, scale.records, scale.ops, threads));
      record(spec.name, "BzTree", threads,
             measure_mops(
                 [&] { return std::make_unique<BzAdapter>(scale.records); },
                 spec, scale.records, scale.ops, threads));
      record(spec.name, "PMDK-lock-SL", threads,
             measure_mops(
                 [&] { return std::make_unique<LSLAdapter>(scale.records); },
                 spec, scale.records, scale.ops, threads));
      std::fflush(stdout);
    }
  }
  json.write();
  return 0;
}
