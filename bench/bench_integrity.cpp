// Checksum-tax A/B for corruption-aware recovery (BENCH_integrity.json).
//
// Two direct-store legs over an identical write-heavy trace (10% read /
// 60% update / 30% insert, zipfian):
//
//   checksums-off — UPSL_DISABLE_CHECKSUMS behaviour: durable stamps are
//                   written as 0 and never verified (the legacy format).
//   checksums-on  — default build: CRC32C stamped on every node seal /
//                   split / publish, magazine claim and session record,
//                   riding the already-dirty ack lines.
//
// The headline metric is mutation-heavy throughput; the acceptance gate for
// the corruption-aware-recovery PR is a <= 5% throughput tax with checksums
// on. Legs run best-of-N trials (fresh store each trial) so one cold trial
// does not fail the gate; persists/op deltas are recorded per leg to show
// the stamps ride existing lines rather than adding persist calls.
//
// Knobs: UPSL_BENCH_RECORDS (default 20000), UPSL_BENCH_OPS (default 40000),
// UPSL_INTEGRITY_THREADS (default 4), UPSL_INTEGRITY_TRIALS (default 3).
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/checksum.hpp"
#include "common/thread_registry.hpp"
#include "ycsb/workload.hpp"

namespace {

using namespace upsl;
using bench::JsonBenchWriter;

constexpr ycsb::WorkloadSpec kMixedWrite{"mixed-write", 0.10, 0.60, 0.30,
                                         ycsb::Distribution::kZipfian};

struct LegResult {
  double mops = 0;  // best trial
  ycsb::RunStats best;
  JsonBenchWriter::Config persist_cfg;  // persists/fences per op, best trial
};

/// One leg: `trials` fresh stores under the given checksum setting, each
/// playing back the same generated trace; keep the fastest trial (the gate
/// compares steady-state cost, not allocator warm-up noise).
LegResult run_leg(bool checksums, std::uint64_t records, std::uint64_t ops,
                  unsigned threads, unsigned trials) {
  set_checksums_for_testing(checksums);
  LegResult leg;
  const ycsb::Trace trace =
      ycsb::generate(kMixedWrite, records, ops, threads, /*seed=*/77);
  for (unsigned trial = 0; trial < trials; ++trial) {
    bench::UPSLAdapter adapter(records, 1, 64, threads + 4);
    ycsb::preload(adapter, trace);
    bench::StatsDelta delta;
    delta.begin();
    const ycsb::RunStats stats =
        ycsb::run_trace(adapter, trace, /*measure_latency=*/true);
    if (stats.mops() > leg.mops) {
      leg.mops = stats.mops();
      leg.best = stats;
      leg.persist_cfg = delta.per_op(stats.ops);
    }
  }
  reset_checksums_for_testing();
  return leg;
}

void add_entry(JsonBenchWriter& out, const char* name, const LegResult& leg,
               std::uint64_t records, std::uint64_t ops, unsigned threads,
               JsonBenchWriter::Config extra) {
  JsonBenchWriter::Config cfg;
  cfg.emplace_back("records", std::to_string(records));
  cfg.emplace_back("ops", std::to_string(ops));
  cfg.emplace_back("threads", std::to_string(threads));
  cfg.emplace_back("workload", kMixedWrite.name);
  for (auto& kv : leg.persist_cfg) cfg.push_back(kv);
  for (auto& kv : extra) cfg.push_back(std::move(kv));
  bench::append_build_config(cfg);
  LatencyHistogram lat = leg.best.updates;
  lat.merge(leg.best.inserts);
  out.add(name, std::move(cfg), leg.mops * 1e6, lat);
}

}  // namespace

int main() {
  bench::apply_persist_delay();
  const std::uint64_t records = bench::env_u64("UPSL_BENCH_RECORDS", 20000);
  const std::uint64_t ops = bench::env_u64("UPSL_BENCH_OPS", 40000);
  const auto threads =
      static_cast<unsigned>(bench::env_u64("UPSL_INTEGRITY_THREADS", 4));
  const auto trials =
      static_cast<unsigned>(bench::env_u64("UPSL_INTEGRITY_TRIALS", 3));

  ThreadRegistry::instance().bind(0);
  bench::print_header("integrity: checksum tax A/B",
                      "CRC32C stamps on the durable write path");
  std::printf("  records=%llu ops=%llu threads=%u trials=%u kernel=%s\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(ops), threads, trials,
              crc32c_kernel_name(dispatched_crc32c_kernel()));

  const LegResult off = run_leg(false, records, ops, threads, trials);
  const LegResult on = run_leg(true, records, ops, threads, trials);

  const double tax =
      off.mops > 0 ? (off.mops - on.mops) / off.mops * 100.0 : 0.0;
  std::printf("  %-13s %7.3f Mops/s\n", "checksums-off", off.mops);
  std::printf("  %-13s %7.3f Mops/s\n", "checksums-on", on.mops);
  std::printf("  checksum tax: %+.2f%%\n", tax);

  JsonBenchWriter out("integrity");
  add_entry(out, "checksums-off", off, records, ops, threads,
            {{"checksums", "off"}});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", tax);
  add_entry(out, "checksums-on", on, records, ops, threads,
            {{"checksums", "on"},
             {"tax_pct", buf},
             {"crc32c_kernel", crc32c_kernel_name(dispatched_crc32c_kernel())}});
  out.write();

  // Gate (only at meaningful scale — smoke runs with tiny op counts verify
  // wiring, not statistics): checksums may cost at most 5% of write-heavy
  // throughput.
  if (ops >= 20000 && tax > 5.0) {
    std::fprintf(stderr, "FAIL: checksum tax %.2f%% > 5%% acceptance gate\n",
                 tax);
    return 1;
  }
  return 0;
}
