// Figure 5.4 + Table 5.2: UPSkipList on a single "striped" pool (the RIV
// pool-lookup stage is skipped) vs on four NUMA-aware pools (full two-stage
// lookup, allocation spread across virtual nodes by thread id).
//
// Paper shape to reproduce: NUMA awareness costs only a little — an average
// 5.6% throughput reduction (A 5.1%, B 5.6%, C 5.9%, D 6.0%) in exchange
// for making locality-aware algorithms possible.
#include "bench_common.hpp"

int main() {
  using namespace upsl;
  using namespace upsl::bench;
  apply_persist_delay();
  const BenchScale scale;
  const unsigned threads = scale.threads.empty() ? 4 : scale.threads.back();

  print_header("Figure 5.4 / Table 5.2 — striped single pool vs NUMA-aware "
               "multi-pool",
               "multi-pool averages ~5.6% slower (A 5.1 / B 5.6 / C 5.9 / "
               "D 6.0 %)");
  std::printf("%-18s %16s %16s %12s\n", "workload", "striped (Mops/s)",
              "4 pools (Mops/s)", "reduction");

  double sum_reduction = 0;
  int n = 0;
  for (const auto& spec : {ycsb::kWorkloadA, ycsb::kWorkloadB,
                           ycsb::kWorkloadC, ycsb::kWorkloadD}) {
    const double striped = measure_mops(
        [&] { return std::make_unique<UPSLAdapter>(scale.records, 1); }, spec,
        scale.records, scale.ops, threads);
    const double numa = measure_mops(
        [&] { return std::make_unique<UPSLAdapter>(scale.records, 4); }, spec,
        scale.records, scale.ops, threads);
    const double reduction =
        striped > 0 ? (striped - numa) / striped * 100.0 : 0.0;
    sum_reduction += reduction;
    ++n;
    std::printf("%-18s %16.3f %16.3f %11.1f%%\n", spec.name, striped, numa,
                reduction);
    std::fflush(stdout);
  }
  std::printf("%-18s %16s %16s %11.1f%%   (paper: 5.6%%)\n", "average", "",
              "", sum_reduction / n);
  return 0;
}
