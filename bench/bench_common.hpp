// Shared benchmark infrastructure: adapters binding the three evaluated
// structures to the YCSB driver, environment-variable scaling, and
// table-style output helpers.
//
// Scale defaults are sized for a small machine; the thesis ran 100M records
// on an 80-core 4-socket box. Override with:
//   UPSL_BENCH_RECORDS   preloaded key count        (default 20000)
//   UPSL_BENCH_OPS       operations per measurement (default 40000)
//   UPSL_BENCH_THREADS   space-separated list       (default "1 2 4")
//   UPSL_PERSIST_DELAY_NS  extra latency per persist, models the PMEM
//                          write path (default 50, ~Optane's 94ns store
//                          latency minus DRAM's; set 0 to disable)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_json.hpp"
#include "bztree/bztree.hpp"
#include "common/cpu_features.hpp"
#include "common/histogram.hpp"
#include "common/simd.hpp"
#include "core/shard_set.hpp"
#include "core/upskiplist.hpp"
#include "lockskiplist/lock_skiplist.hpp"
#include "ycsb/runner.hpp"

namespace upsl::bench {

/// Per-operation latency recorder shared by every harness that reports a
/// percentile row. Owns the log-bucketed histogram plus the steady_clock
/// plumbing, so the p50/p99/p999 fields in every BENCH_*.json come from one
/// implementation instead of per-bench copies of the duration_cast dance.
/// Mergeable across threads when each thread records into its own instance.
class LatencyRecorder {
 public:
  /// Record an externally measured sample (e.g. a batch round-trip time
  /// attributed to every operation that rode in the batch).
  void record_ns(std::uint64_t ns) { hist_.record(ns); }

  /// Run `op`, record its wall time, and pass through its result.
  template <typename Op>
  auto time(Op&& op) {
    const auto t0 = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(op())>) {
      op();
      record_ns(elapsed_ns(t0));
    } else {
      auto result = op();
      record_ns(elapsed_ns(t0));
      return result;
    }
  }

  void merge(const LatencyRecorder& other) { hist_.merge(other.hist_); }
  void reset() { hist_.reset(); }

  std::uint64_t count() const { return hist_.count(); }
  std::uint64_t p50_ns() const { return hist_.percentile(50); }
  std::uint64_t p99_ns() const { return hist_.percentile(99); }
  std::uint64_t p999_ns() const { return hist_.percentile(99.9); }
  const LatencyHistogram& histogram() const { return hist_; }

 private:
  static std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  LatencyHistogram hist_;
};

/// Stamp a result row with the list's build configuration so every JSON
/// entry records which fast paths were live when it was measured: the
/// dispatched SIMD level and the DRAM search-layer mode (each governed by
/// its kill switch, UPSL_DISABLE_SIMD / UPSL_DISABLE_DRAM_INDEX).
inline void append_build_config(JsonBenchWriter::Config& cfg) {
  cfg.emplace_back("simd", simd_level_name(simd::dispatched_level()));
  const char* v = std::getenv("UPSL_DISABLE_DRAM_INDEX");
  const bool index_off = v != nullptr && v[0] != '\0' && v[0] != '0';
  cfg.emplace_back("dram_index", index_off ? "off" : "on");
}

/// Per-phase persistence counters via pmem::Stats snapshots. begin() marks a
/// phase start; per_op() reports the deltas since then, normalized per
/// operation. Phases never reset the live global counters (which would
/// corrupt any concurrent observer — the pattern the snapshot API replaces),
/// they just subtract two snapshots.
struct StatsDelta {
  pmem::StatsSnapshot t0;

  void begin() { t0 = pmem::Stats::instance().snapshot(); }

  JsonBenchWriter::Config per_op(std::uint64_t ops) const {
    const pmem::StatsSnapshot d = pmem::Stats::instance().snapshot() - t0;
    char buf[32];
    JsonBenchWriter::Config cfg;
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(d.persist_calls) /
                      static_cast<double>(ops));
    cfg.emplace_back("persists_per_op", buf);
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(d.fences) / static_cast<double>(ops));
    cfg.emplace_back("fences_per_op", buf);
    return cfg;
  }
};

inline std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : def;
}

inline std::vector<unsigned> env_threads() {
  std::vector<unsigned> threads;
  const char* v = std::getenv("UPSL_BENCH_THREADS");
  std::string s = v != nullptr ? v : "1 2 4";
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t end = s.find(' ', pos);
    const std::string tok = s.substr(pos, end - pos);
    if (!tok.empty()) threads.push_back(static_cast<unsigned>(std::stoul(tok)));
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return threads;
}

struct BenchScale {
  std::uint64_t records = env_u64("UPSL_BENCH_RECORDS", 20000);
  std::uint64_t ops = env_u64("UPSL_BENCH_OPS", 40000);
  std::vector<unsigned> threads = env_threads();
};

inline void apply_persist_delay() {
  pmem::Config::instance().persist_delay_ns =
      static_cast<std::uint32_t>(env_u64("UPSL_PERSIST_DELAY_NS", 50));
}

inline std::string bench_dir() {
  auto dir = std::filesystem::path("/tmp") /
             ("upsl_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ---- adapters --------------------------------------------------------------

class UPSLAdapter : public ycsb::KVAdapter {
 public:
  /// num_pools > 1 = NUMA-aware multi-pool mode; 1 = "striped device".
  explicit UPSLAdapter(std::uint64_t records, unsigned num_pools = 1,
                       std::uint32_t keys_per_node = 256,
                       unsigned max_threads = 16) {
    riv::Runtime::instance().reset();
    core::Options opts;
    opts.keys_per_node = keys_per_node;
    opts.max_height = 32;
    opts.max_threads = max_threads;
    opts.chunk.chunk_size = 4ull << 20;
    // Size the pools for the record count with ample slack.
    const std::uint64_t node_bytes =
        core::NodeLayout{keys_per_node, opts.max_height}.node_size();
    const std::uint64_t need =
        records * 3 * node_bytes / std::max(1u, keys_per_node / 2) +
        (opts.chunk.chunk_size * (max_threads + 4)) + (256ull << 20) / 4;
    opts.chunk.max_chunks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(32, need / opts.chunk.chunk_size / num_pools));
    const std::uint64_t pool_bytes = (4ull << 20) + opts.chunk.root_size +
                                     opts.chunk.max_chunks *
                                         opts.chunk.chunk_size;
    for (unsigned i = 0; i < num_pools; ++i) {
      pools_.push_back(pmem::Pool::create_anonymous(
          static_cast<std::uint16_t>(i), pool_bytes, {}));
    }
    std::vector<pmem::Pool*> raw;
    for (auto& p : pools_) raw.push_back(p.get());
    store_ = core::UPSkipList::create(raw, opts);
  }
  ~UPSLAdapter() override {
    store_.reset();
    pools_.clear();
    riv::Runtime::instance().reset();
  }

  std::optional<std::uint64_t> insert(std::uint64_t k, std::uint64_t v) override {
    return store_->insert(k, v);
  }
  std::optional<std::uint64_t> search(std::uint64_t k) override {
    return store_->search(k);
  }
  std::optional<std::uint64_t> remove(std::uint64_t k) override {
    return store_->remove(k);
  }
  std::size_t scan(std::uint64_t start, std::uint32_t count) override {
    // thread_local so concurrent run_trace threads don't share the buffer
    // and the steady state allocates nothing (clear() keeps capacity).
    thread_local std::vector<core::ScanEntry> buf;
    buf.clear();
    std::uint64_t resume = 0;
    store_->scan_chunk(start, core::kTailKey, count, buf, &resume);
    return buf.size();
  }
  core::UPSkipList& store() { return *store_; }

 private:
  std::vector<std::unique_ptr<pmem::Pool>> pools_;
  std::unique_ptr<core::UPSkipList> store_;
};

/// N-shard variant of UPSLAdapter: one anonymous pool per shard (pool id =
/// shard index) behind a core::ShardSet, with each member's chunk budget
/// sized for its SHARE of the record count (records / shards, plus slack for
/// hash imbalance) — not the full key space per shard. Backs the sharded
/// server benches; shards = 1 is the unsharded baseline.
class UPSLShardedAdapter : public ycsb::KVAdapter {
 public:
  explicit UPSLShardedAdapter(std::uint64_t records, std::uint32_t shards,
                              std::uint32_t keys_per_node = 256,
                              unsigned max_threads = 16) {
    riv::Runtime::instance().reset();
    core::Options opts;
    opts.keys_per_node = keys_per_node;
    opts.max_height = 32;
    opts.max_threads = max_threads;
    opts.chunk.chunk_size = 4ull << 20;
    // Per-shard key-space share: uniform hashing lands records/shards keys
    // on each member (50% slack covers the binomial spread and growth).
    const std::uint64_t shard_records =
        (records / std::max(1u, shards)) * 3 / 2 + 1024;
    const std::uint64_t node_bytes =
        core::NodeLayout{keys_per_node, opts.max_height}.node_size();
    const std::uint64_t need =
        shard_records * 3 * node_bytes / std::max(1u, keys_per_node / 2) +
        (opts.chunk.chunk_size * (max_threads + 4)) + (256ull << 20) / 8;
    opts.chunk.max_chunks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(32, need / opts.chunk.chunk_size));
    const std::uint64_t pool_bytes = (4ull << 20) + opts.chunk.root_size +
                                     opts.chunk.max_chunks *
                                         opts.chunk.chunk_size;
    std::vector<std::vector<pmem::Pool*>> shard_pools;
    for (std::uint32_t i = 0; i < shards; ++i) {
      pools_.push_back(pmem::Pool::create_anonymous(
          static_cast<std::uint16_t>(i), pool_bytes, {}));
      shard_pools.push_back({pools_.back().get()});
    }
    set_ = core::ShardSet::create(std::move(shard_pools), opts);
  }
  ~UPSLShardedAdapter() override {
    set_.reset();
    pools_.clear();
    riv::Runtime::instance().reset();
  }

  std::optional<std::uint64_t> insert(std::uint64_t k, std::uint64_t v) override {
    return set_->insert(k, v);
  }
  std::optional<std::uint64_t> search(std::uint64_t k) override {
    return set_->search(k);
  }
  std::optional<std::uint64_t> remove(std::uint64_t k) override {
    return set_->remove(k);
  }
  std::size_t scan(std::uint64_t start, std::uint32_t count) override {
    thread_local std::vector<core::ScanEntry> buf;
    buf.clear();
    return set_->scan(start, core::kTailKey, count, buf);
  }
  core::ShardSet& set() { return *set_; }

 private:
  std::vector<std::unique_ptr<pmem::Pool>> pools_;
  std::unique_ptr<core::ShardSet> set_;
};

class BzAdapter : public ycsb::KVAdapter {
 public:
  explicit BzAdapter(std::uint64_t records, std::uint32_t descriptors = 100000) {
    const std::uint64_t pool_bytes =
        (64ull << 20) + records * 200 +
        sizeof(pmwcas::Descriptor) * descriptors;
    pool_ = pmem::Pool::create_anonymous(40, align_up(pool_bytes, 4096), {});
    bztree::BzTree::Config cfg;
    cfg.leaf_capacity = 64;
    cfg.internal_capacity = 64;
    cfg.descriptor_count = descriptors;
    tree_ = bztree::BzTree::create(*pool_, cfg);
  }

  std::optional<std::uint64_t> insert(std::uint64_t k, std::uint64_t v) override {
    return tree_->insert(k, v);
  }
  std::optional<std::uint64_t> search(std::uint64_t k) override {
    return tree_->search(k);
  }
  std::optional<std::uint64_t> remove(std::uint64_t k) override {
    return tree_->remove(k);
  }
  bztree::BzTree& tree() { return *tree_; }
  pmem::Pool& pool() { return *pool_; }

 private:
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<bztree::BzTree> tree_;
};

class LSLAdapter : public ycsb::KVAdapter {
 public:
  explicit LSLAdapter(std::uint64_t records) {
    const std::uint64_t pool_bytes = (64ull << 20) + records * 1400;
    pool_ = pmem::Pool::create_anonymous(41, align_up(pool_bytes, 4096), {});
    list_ = lsl::LockSkipList::create(*pool_);
  }

  std::optional<std::uint64_t> insert(std::uint64_t k, std::uint64_t v) override {
    return list_->insert(k, v);
  }
  std::optional<std::uint64_t> search(std::uint64_t k) override {
    return list_->search(k);
  }
  std::optional<std::uint64_t> remove(std::uint64_t k) override {
    return list_->remove(k);
  }
  lsl::LockSkipList& list() { return *list_; }
  pmem::Pool& pool() { return *pool_; }

 private:
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<lsl::LockSkipList> list_;
};

// ---- measurement helpers ----------------------------------------------------

/// One throughput measurement: fresh store, preload, timed playback.
template <typename MakeAdapter>
double measure_mops(MakeAdapter&& make, const ycsb::WorkloadSpec& spec,
                    std::uint64_t records, std::uint64_t ops, unsigned threads,
                    std::uint64_t seed = 42) {
  auto adapter = make();
  const ycsb::Trace trace = ycsb::generate(spec, records, ops, threads, seed);
  ycsb::preload(*adapter, trace);
  const ycsb::RunStats stats = ycsb::run_trace(*adapter, trace, false);
  return stats.mops();
}

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("    (paper reference: %s)\n", paper_note);
}

}  // namespace upsl::bench
