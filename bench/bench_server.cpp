// Closed-loop network load generator for upsl-serve (BENCH_server.json).
//
// Drives the binary protocol end-to-end: N client threads, each with its own
// connection and its own ycsb::OpGenerator (the same op-mix engine the
// in-process trace builder uses — satellite of the serving PR), pipelining
// `depth` requests per round trip. Latency is recorded per operation as the
// round-trip time of the batch the operation rode in — the time from submit
// to response a closed-loop caller actually observes.
//
// Three YCSB mixes are measured at the configured client count: workload B
// (read-mostly, 95/5), workload A (update-heavy, 50/50), and workload E
// (scan-heavy, 95% short range scans / 5% inserts). Point ops pipeline
// `depth` deep; a scan flushes whatever is queued first (the streamed SCANS
// exchange owns the connection until its final chunk) and is timed as its
// own round trip, first byte to last chunk.
//
// Target selection:
//   UPSL_SERVER_ADDR=host:port  drive an already-running server (CI smoke);
//   otherwise the bench self-hosts: it spins up an in-process Server over an
//   anonymous pool, measures, then drains it — and can report server-side
//   persist/fence counts per op, since the pmem::Stats instance is shared.
//
// Knobs: UPSL_BENCH_RECORDS (preload size, default 20000), UPSL_BENCH_OPS
// (ops per workload, default 40000), UPSL_SERVER_CLIENTS (threads, default
// 4), UPSL_SERVER_DEPTH (pipeline depth, default 16), UPSL_SHARDS
// (self-hosted shard count, default 1; each shard's store is sized for its
// share of the key space).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/histogram.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "ycsb/workload.hpp"

namespace {

using namespace upsl;
using bench::JsonBenchWriter;

struct Target {
  std::string host;
  std::uint16_t port = 0;
  bool self_hosted = false;
  // Self-hosted backing (empty when driving an external server).
  std::unique_ptr<bench::UPSLShardedAdapter> adapter;
  std::unique_ptr<server::Server> server;
};

/// Connect with retries so CI can launch server and bench concurrently.
bool connect_with_retry(server::Client& c, const Target& t, int attempts = 100) {
  for (int i = 0; i < attempts; ++i) {
    if (c.connect(t.host, t.port)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

/// Pipelined preload of the YCSB record set through the wire.
bool preload(const Target& t, std::uint64_t records) {
  server::Client c;
  if (!connect_with_retry(c, t)) return false;
  constexpr std::uint32_t kDepth = 128;
  std::vector<server::Response> resp;
  std::uint64_t v = 1;
  for (std::uint64_t i = 0; i < records; ++i) {
    c.queue({server::Opcode::kPut, ycsb::key_of(i), v++});
    if (c.queued() == kDepth || i + 1 == records) c.flush(&resp);
  }
  return true;
}

struct WorkloadResult {
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t scan_entries = 0;
  bench::LatencyRecorder latency;
  bool ok = true;
};

WorkloadResult run_workload(const Target& t, const ycsb::WorkloadSpec& spec,
                            std::uint64_t records, std::uint64_t total_ops,
                            unsigned clients, std::uint32_t depth) {
  std::vector<WorkloadResult> per_thread(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      WorkloadResult& r = per_thread[i];
      server::Client c;
      if (!connect_with_retry(c, t, 30)) {
        r.ok = false;
        return;
      }
      // Disjoint insert residue classes per thread (see workload.hpp).
      ycsb::OpGenerator gen(spec, records, /*seed=*/1000 + i, i, clients);
      std::uint64_t remaining = total_ops / clients;
      std::vector<server::Response> resp;
      std::uint32_t queued = 0;
      // Batch round-trip time attributed to every op that rode in the batch.
      const auto flush_queued = [&] {
        if (queued == 0) return;
        const auto s = std::chrono::steady_clock::now();
        c.flush(&resp);
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - s)
                .count());
        for (std::uint32_t b = 0; b < queued; ++b) r.latency.record_ns(ns);
        r.ops += queued;
        remaining -= queued;
        queued = 0;
      };
      try {
        while (remaining > 0) {
          const std::uint32_t batch =
              static_cast<std::uint32_t>(std::min<std::uint64_t>(depth,
                                                                 remaining));
          for (std::uint32_t b = 0; b < batch; ++b) {
            const ycsb::Op op = gen.next();
            if (op.type == ycsb::OpType::kScan) {
              flush_queued();  // scan_stream needs an empty pipeline
              const auto s = std::chrono::steady_clock::now();
              r.scan_entries += c.scan_stream(
                  op.key, ~0ULL,
                  [](const std::vector<std::pair<std::uint64_t,
                                                 std::uint64_t>>&) {
                    return true;
                  },
                  op.scan_len);
              const auto ns = static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - s)
                      .count());
              r.latency.record_ns(ns);
              r.ops += 1;
              remaining -= 1;
            } else if (op.type == ycsb::OpType::kRead) {
              c.queue({server::Opcode::kGet, op.key});
              ++queued;
            } else {
              c.queue({server::Opcode::kPut, op.key, op.value});
              ++queued;
            }
          }
          flush_queued();
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %u: %s\n", i, e.what());
        r.ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();

  WorkloadResult total;
  total.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  for (const WorkloadResult& r : per_thread) {
    total.ops += r.ops;
    total.scan_entries += r.scan_entries;
    total.latency.merge(r.latency);
    total.ok = total.ok && r.ok;
  }
  return total;
}

}  // namespace

int main() {
  bench::apply_persist_delay();
  const std::uint64_t records = bench::env_u64("UPSL_BENCH_RECORDS", 20000);
  const std::uint64_t ops = bench::env_u64("UPSL_BENCH_OPS", 40000);
  const auto clients =
      static_cast<unsigned>(bench::env_u64("UPSL_SERVER_CLIENTS", 4));
  const auto depth =
      static_cast<std::uint32_t>(bench::env_u64("UPSL_SERVER_DEPTH", 16));
  const auto shards = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, bench::env_u64("UPSL_SHARDS", 1)));

  Target target;
  const char* addr = std::getenv("UPSL_SERVER_ADDR");
  if (addr != nullptr && addr[0] != '\0') {
    if (!server::parse_addr(addr, &target.host, &target.port)) {
      std::fprintf(stderr, "bad UPSL_SERVER_ADDR '%s' (want host:port)\n",
                   addr);
      return 2;
    }
    std::printf("driving external server at %s\n", addr);
  } else {
    target.self_hosted = true;
    ThreadRegistry::instance().bind(0);
    // UPSL_SHARDS legs self-host the sharded server; each member store is
    // sized for its per-shard share of the key space, and every shard must
    // have thread slots for every worker id (routed ops run anywhere).
    server::ServerOptions sopts;
    sopts.port = 0;  // ephemeral (per shard)
    sopts.workers = 4;
    target.adapter = std::make_unique<bench::UPSLShardedAdapter>(
        records, shards, 64,
        /*max_threads=*/sopts.first_thread_id + shards * sopts.workers + 4);
    target.server =
        std::make_unique<server::Server>(target.adapter->set(), sopts);
    if (!target.server->start()) {
      std::fprintf(stderr, "cannot start in-process server\n");
      return 1;
    }
    target.host = "127.0.0.1";
    target.port = target.server->port();
    std::printf("self-hosted server on 127.0.0.1:%u (%u shard%s x 4 workers)\n",
                target.port, shards, shards == 1 ? "" : "s");
  }

  bench::print_header("upsl-serve closed-loop load",
                      "serving PR: batched pipelines over epoll");
  if (!preload(target, records)) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", target.host.c_str(),
                 target.port);
    return 1;
  }
  std::printf("  preloaded %llu records (clients=%u depth=%u)\n",
              static_cast<unsigned long long>(records), clients, depth);

  JsonBenchWriter out("server");
  bool all_ok = true;
  for (const ycsb::WorkloadSpec& spec :
       {ycsb::kWorkloadB, ycsb::kWorkloadA, ycsb::kWorkloadE}) {
    bench::StatsDelta delta;
    delta.begin();
    const WorkloadResult r =
        run_workload(target, spec, records, ops, clients, depth);
    all_ok = all_ok && r.ok;
    const double ops_s =
        r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0;
    std::printf(
        "  %-16s %8.0f ops/s   p50 %7llu ns  p99 %7llu ns  p999 %7llu ns\n",
        spec.name, ops_s,
        static_cast<unsigned long long>(r.latency.p50_ns()),
        static_cast<unsigned long long>(r.latency.p99_ns()),
        static_cast<unsigned long long>(r.latency.p999_ns()));
    if (r.scan_entries > 0)
      std::printf("  %-16s %8.0f scanned entries/s\n", "",
                  r.seconds > 0
                      ? static_cast<double>(r.scan_entries) / r.seconds
                      : 0);

    JsonBenchWriter::Config cfg;
    if (target.self_hosted) cfg = delta.per_op(std::max<std::uint64_t>(r.ops, 1));
    cfg.emplace_back("workload", spec.name);
    cfg.emplace_back("clients", std::to_string(clients));
    cfg.emplace_back("depth", std::to_string(depth));
    cfg.emplace_back("records", std::to_string(records));
    cfg.emplace_back("mode", target.self_hosted ? "self-hosted" : "external");
    if (r.scan_entries > 0)
      cfg.emplace_back("scan_entries", std::to_string(r.scan_entries));
    if (target.self_hosted) cfg.emplace_back("shards", std::to_string(shards));
    bench::append_build_config(cfg);
    out.add(std::string("server_") + spec.name, std::move(cfg), ops_s,
            r.latency.histogram());
  }

  // Server-side view of the run (and a STATS protocol exercise).
  {
    server::Client c;
    if (connect_with_retry(c, target, 10)) {
      try {
        std::printf("  server stats: %s\n", c.stats_json().c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "STATS failed: %s\n", e.what());
        all_ok = false;
      }
    }
  }

  if (target.self_hosted) {
    target.server->stop();
    target.server->wait();
  }

  out.write();
  return all_ok ? 0 : 1;
}
