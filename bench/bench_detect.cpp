// Detectability tax A/B: what do exactly-once mutations cost on the wire
// path (BENCH_detect.json)?
//
// Two self-hosted legs over identical mixed-write load, both on the PR 6
// fast path (MOD writes + cross-connection group commit):
//
//   baseline — plain PUT mutations: durable data, but a replayed request
//              after a dropped connection applies twice.
//   detect   — DPUT mutations carrying (client_id, seq): the server records
//              the durable result in the client's session slot inside the
//              same AckBatch the publish rides, so replays deduplicate and
//              return the original answer.
//
// The detect leg adds two ack lines per mutation (result-ring entry +
// last_seq word) to a batch that already fences once per commit window, so
// the marginal fence cost must be noise. Acceptance gate (at >= 20000 ops):
// detect fences/mutation within 10% of the plain group-commit baseline.
//
// Knobs: UPSL_BENCH_RECORDS (default 20000), UPSL_BENCH_OPS (default 40000),
// UPSL_SERVER_CLIENTS (default 16), UPSL_SERVER_DEPTH (default 8, also the
// per-session un-acked cap — must stay <= the result ring depth),
// UPSL_COMMIT_WINDOW_US (committer window, default 50).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/histogram.hpp"
#include "detect/session_table.hpp"
#include "pmem/ack_batch.hpp"
#include "server/client.hpp"
#include "server/group_commit.hpp"
#include "server/server.hpp"
#include "ycsb/workload.hpp"

namespace {

using namespace upsl;
using bench::JsonBenchWriter;

constexpr ycsb::WorkloadSpec kMixedWrite{"mixed-write", 0.10, 0.60, 0.30,
                                         ycsb::Distribution::kZipfian};

struct Target {
  std::string host;
  std::uint16_t port = 0;
};

bool connect_with_retry(server::Client& c, const Target& t, int attempts = 50) {
  for (int i = 0; i < attempts; ++i) {
    if (c.connect(t.host, t.port)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

bool preload(const Target& t, std::uint64_t records) {
  server::Client c;
  if (!connect_with_retry(c, t)) return false;
  constexpr std::uint32_t kDepth = 128;
  std::vector<server::Response> resp;
  std::uint64_t v = 1;
  for (std::uint64_t i = 0; i < records; ++i) {
    c.queue({server::Opcode::kPut, ycsb::key_of(i), v++});
    if (c.queued() == kDepth || i + 1 == records) c.flush(&resp);
  }
  return true;
}

struct WorkloadResult {
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t mutations = 0;
  bench::LatencyRecorder latency;
  bool ok = true;
};

/// Mixed-write run; `detectable` switches mutations from PUT to session-
/// stamped DPUT (one durable identity per client thread).
WorkloadResult run_workload(const Target& t, std::uint64_t records,
                            std::uint64_t total_ops, unsigned clients,
                            std::uint32_t depth, bool detectable) {
  std::vector<WorkloadResult> per_thread(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      WorkloadResult& r = per_thread[i];
      server::Client c;
      if (!connect_with_retry(c, t, 30)) {
        r.ok = false;
        return;
      }
      ycsb::OpGenerator gen(kMixedWrite, records, /*seed=*/9000 + i, i,
                            clients);
      std::uint64_t remaining = total_ops / clients;
      std::vector<server::Response> resp;
      try {
        if (detectable) c.hello(1000 + i);
        while (remaining > 0) {
          const std::uint32_t batch = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(depth, remaining));
          std::uint32_t muts = 0;
          for (std::uint32_t b = 0; b < batch; ++b) {
            const ycsb::Op op = gen.next();
            if (op.type == ycsb::OpType::kRead) {
              c.queue({server::Opcode::kGet, op.key});
            } else {
              if (detectable) {
                c.queue_dput(op.key, op.value);
              } else {
                c.queue({server::Opcode::kPut, op.key, op.value});
              }
              ++muts;
            }
          }
          const auto s = std::chrono::steady_clock::now();
          c.flush(&resp);
          const auto ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - s)
                  .count());
          for (std::uint32_t b = 0; b < batch; ++b) r.latency.record_ns(ns);
          r.ops += batch;
          r.mutations += muts;
          remaining -= batch;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %u: %s\n", i, e.what());
        r.ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();

  WorkloadResult total;
  total.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const WorkloadResult& r : per_thread) {
    total.ops += r.ops;
    total.mutations += r.mutations;
    total.latency.merge(r.latency);
    total.ok = total.ok && r.ok;
  }
  return total;
}

struct LegResult {
  WorkloadResult wl;
  double fences_per_mutation = 0;
  std::uint64_t dedup_hits = 0;
  bool started = true;
};

/// One self-hosted leg on the group-commit fast path; `detectable` selects
/// the mutation opcode the clients issue.
LegResult run_leg(bool detectable, std::uint64_t records, std::uint64_t ops,
                  unsigned clients, std::uint32_t depth) {
  LegResult leg;
  bench::UPSLAdapter adapter(records, 1, 64, /*max_threads=*/clients + 8);
  server::ServerOptions sopts;
  sopts.port = 0;
  sopts.workers = 4;
  sopts.group_commit = true;
  server::Server srv(adapter.store(), sopts);
  if (!srv.start()) {
    std::fprintf(stderr, "cannot start in-process server\n");
    leg.started = false;
    return leg;
  }
  const Target t{"127.0.0.1", srv.port()};
  if (!preload(t, records)) {
    std::fprintf(stderr, "preload failed\n");
    leg.started = false;
    srv.stop();
    srv.wait();
    return leg;
  }
  bench::StatsDelta delta;
  delta.begin();
  leg.wl = run_workload(t, records, ops, clients, depth, detectable);
  const pmem::StatsSnapshot d = pmem::Stats::instance().snapshot() - delta.t0;
  leg.dedup_hits = srv.stats().detect_dups.load();
  srv.stop();
  srv.wait();
  leg.fences_per_mutation =
      leg.wl.mutations > 0
          ? static_cast<double>(d.fences) /
                static_cast<double>(leg.wl.mutations)
          : 0;
  return leg;
}

void print_leg(const char* name, const LegResult& leg) {
  const double ops_s = leg.wl.seconds > 0
                           ? static_cast<double>(leg.wl.ops) / leg.wl.seconds
                           : 0;
  std::printf(
      "  %-12s %8.0f ops/s  %7.3f fences/mutation  p50 %7llu ns  "
      "p99 %7llu ns  p999 %7llu ns\n",
      name, ops_s, leg.fences_per_mutation,
      static_cast<unsigned long long>(leg.wl.latency.p50_ns()),
      static_cast<unsigned long long>(leg.wl.latency.p99_ns()),
      static_cast<unsigned long long>(leg.wl.latency.p999_ns()));
}

void add_entry(JsonBenchWriter& out, const char* name, const LegResult& leg,
               unsigned clients, std::uint32_t depth, std::uint64_t records,
               std::uint32_t window_us, JsonBenchWriter::Config extra) {
  char buf[32];
  JsonBenchWriter::Config cfg;
  std::snprintf(buf, sizeof buf, "%.4f", leg.fences_per_mutation);
  cfg.emplace_back("fences_per_mutation", buf);
  cfg.emplace_back("mutations", std::to_string(leg.wl.mutations));
  cfg.emplace_back("dedup_hits", std::to_string(leg.dedup_hits));
  cfg.emplace_back("clients", std::to_string(clients));
  cfg.emplace_back("depth", std::to_string(depth));
  cfg.emplace_back("records", std::to_string(records));
  cfg.emplace_back("window_us", std::to_string(window_us));
  cfg.emplace_back("workload", kMixedWrite.name);
  for (auto& kv : extra) cfg.push_back(std::move(kv));
  bench::append_build_config(cfg);
  const double ops_s = leg.wl.seconds > 0
                           ? static_cast<double>(leg.wl.ops) / leg.wl.seconds
                           : 0;
  out.add(name, std::move(cfg), ops_s, leg.wl.latency.histogram());
}

}  // namespace

int main() {
  bench::apply_persist_delay();
  const std::uint64_t records = bench::env_u64("UPSL_BENCH_RECORDS", 20000);
  const std::uint64_t ops = bench::env_u64("UPSL_BENCH_OPS", 40000);
  const auto clients =
      static_cast<unsigned>(bench::env_u64("UPSL_SERVER_CLIENTS", 16));
  auto depth =
      static_cast<std::uint32_t>(bench::env_u64("UPSL_SERVER_DEPTH", 8));
  // A batch deeper than the result ring would age its own head out of the
  // dedup window before the ack; cap instead of measuring a broken config.
  depth = std::min<std::uint32_t>(depth, detect::SessionTable::kRingSize);
  const std::uint32_t window_us = server::commit_window_us_from_env(50);

  // Both legs need the session table; the kill switch would silently turn
  // the detect leg into the baseline and the A/B would measure nothing.
  detect::set_detect_for_testing(true);

  ThreadRegistry::instance().bind(0);
  bench::print_header("detectability tax: fences per mutation A/B",
                      "durable sessions + request dedup on the wire path");
  std::printf("  records=%llu ops=%llu clients=%u depth=%u window=%uus\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(ops), clients, depth, window_us);

  const LegResult base =
      run_leg(/*detectable=*/false, records, ops, clients, depth);
  const LegResult det =
      run_leg(/*detectable=*/true, records, ops, clients, depth);
  detect::reset_detect_for_testing();
  if (!base.started || !det.started) return 1;

  print_leg("baseline", base);
  print_leg("detect", det);

  const double tax = base.fences_per_mutation > 0
                         ? det.fences_per_mutation / base.fences_per_mutation
                         : 0;
  std::printf("  detect fence tax: %.3fx baseline\n", tax);

  JsonBenchWriter out("detect");
  add_entry(out, "baseline", base, clients, depth, records, window_us,
            {{"detect", "off"}});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", tax);
  add_entry(out, "detect", det, clients, depth, records, window_us,
            {{"detect", "on"}, {"fence_tax_x", buf}});
  out.write();

  bool all_ok = base.wl.ok && det.wl.ok;
  // Gate only at meaningful scale — smoke runs are for wiring.
  if (ops >= 20000) {
    if (tax > 1.10) {
      std::fprintf(stderr,
                   "FAIL: detect fences/mutation %.4f is %.3fx the plain "
                   "group-commit baseline %.4f (allowed 1.10x)\n",
                   det.fences_per_mutation, tax, base.fences_per_mutation);
      all_ok = false;
    }
    if (det.dedup_hits != 0) {
      // Nothing replays in this workload: a dedup hit means seq streams
      // collided, i.e. the bench measured the wrong thing.
      std::fprintf(stderr, "FAIL: %llu unexpected dedup hits\n",
                   static_cast<unsigned long long>(det.dedup_hits));
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
