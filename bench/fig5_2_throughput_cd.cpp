// Figure 5.2: throughput vs thread count for YCSB workloads C (read-only,
// zipfian) and D (read-latest, 95/5 inserts, latest distribution).
//
// Paper shape to reproduce: BzTree wins C (~+93% on average) and D (~+56%)
// thanks to binary search inside sorted leaf regions, while UPSkipList's
// unsorted multi-key nodes need a linear scan; UPSkipList still more than
// doubles the PMDK lock-based skip list.
#include "bench_common.hpp"

int main() {
  using namespace upsl;
  using namespace upsl::bench;
  apply_persist_delay();
  const BenchScale scale;

  print_header("Figure 5.2 — YCSB C and D throughput (Mops/s)",
               "BzTree wins read-only (~1.9x) and read-latest (~1.5x); "
               "UPSkipList > 2x the lock-based SL");
  std::printf("%-18s %-14s %8s %12s\n", "workload", "structure", "threads",
              "Mops/s");

  for (const auto& spec : {ycsb::kWorkloadC, ycsb::kWorkloadD}) {
    for (unsigned threads : scale.threads) {
      const double upsl_mops = measure_mops(
          [&] { return std::make_unique<UPSLAdapter>(scale.records); }, spec,
          scale.records, scale.ops, threads);
      std::printf("%-18s %-14s %8u %12.3f\n", spec.name, "UPSkipList",
                  threads, upsl_mops);
      const double bz_mops = measure_mops(
          [&] { return std::make_unique<BzAdapter>(scale.records); }, spec,
          scale.records, scale.ops, threads);
      std::printf("%-18s %-14s %8u %12.3f\n", spec.name, "BzTree", threads,
                  bz_mops);
      const double lsl_mops = measure_mops(
          [&] { return std::make_unique<LSLAdapter>(scale.records); }, spec,
          scale.records, scale.ops, threads);
      std::printf("%-18s %-14s %8u %12.3f\n", spec.name, "PMDK-lock-SL",
                  threads, lsl_mops);
      std::fflush(stdout);
    }
  }
  return 0;
}
