// §4.4.1 ablation — "Preventing Low Throughput After Recovery": after a
// crash every node carries a stale epoch, and a traversal that eagerly
// claimed + repaired (and flushed) every node it crosses would collapse
// post-recovery read throughput. UPSkipList throttles searches to
// `recovery_budget` incomplete-insert repairs per traversal.
//
// This bench crashes a populated store and measures read throughput in the
// first moments after reconnecting, for several values of the budget k
// (k = 1 is the thesis' choice; "unlimited" approximates the naive eager
// strategy).
#include <chrono>

#include "bench_common.hpp"
#include "common/crashpoint.hpp"

int main() {
  using namespace upsl;
  using namespace upsl::bench;
  apply_persist_delay();
  const std::uint64_t records = env_u64("UPSL_BENCH_RECORDS", 20000);
  const std::uint64_t ops = env_u64("UPSL_BENCH_OPS", 40000);

  print_header("§4.4.1 ablation — post-crash read throughput vs recovery "
               "budget k",
               "k=1 keeps post-crash searches fast; eager repair pays a "
               "flush per visited stale node");
  std::printf("%-12s %20s\n", "budget k", "post-crash Mops/s");

  for (const std::uint32_t budget : {1u, 4u, 16u, ~0u}) {
    riv::Runtime::instance().reset();
    ThreadRegistry::instance().bind(0);
    core::Options opts;
    opts.keys_per_node = 64;
    opts.max_threads = 8;
    opts.recovery_budget = budget;
    opts.chunk.max_chunks = static_cast<std::uint32_t>(
        64 + records * 64 / opts.chunk.chunk_size);
    const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                  opts.chunk.max_chunks *
                                      opts.chunk.chunk_size;
    auto pool =
        pmem::Pool::create_anonymous(0, pool_size, {.crash_tracking = true});
    auto store = core::UPSkipList::create({pool.get()}, opts);
    for (std::uint64_t i = 0; i < records; ++i)
      store->insert(ycsb::key_of(i), i + 1);

    // Power failure and reconnect: every node is now from a dead epoch.
    store.reset();
    pool->simulate_crash();
    riv::Runtime::instance().reset();
    store = core::UPSkipList::open({pool.get()});

    Xoshiro256 rng(3);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
      store->search(ycsb::key_of(rng.next_below(records)));
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (budget == ~0u) {
      std::printf("%-12s %20.3f\n", "unlimited",
                  static_cast<double>(ops) / secs / 1e6);
    } else {
      std::printf("%-12u %20.3f\n", budget,
                  static_cast<double>(ops) / secs / 1e6);
    }
    std::fflush(stdout);
    store.reset();
    riv::Runtime::instance().reset();
  }
  return 0;
}
