// Fences-per-mutation A/B for the MOD write path + cross-connection group
// commit (BENCH_groupcommit.json).
//
// Two self-hosted legs over identical mixed-write load (10% read / 60%
// update / 30% insert, zipfian), 16 client threads by default:
//
//   baseline    — legacy ordered write path (mod writes off), per-batch ack
//                 fence in the server (group commit off): every mutation
//                 pays its own persist fences at the store sites.
//   groupcommit — out-of-place build + single publish fence in the core,
//                 ack lines deferred through AckBatch and fenced once per
//                 commit window across all connections.
//
// The headline metric is total pmem fences divided by client-issued
// mutations (reader-forced persists included — it is the honest whole-store
// number). The PR's acceptance gate: >= 5x fewer fences per mutation at 16
// clients, with p999 batch latency not regressed beyond the commit window.
//
// Knobs: UPSL_BENCH_RECORDS (default 20000), UPSL_BENCH_OPS (default 40000),
// UPSL_SERVER_CLIENTS (default 16), UPSL_SERVER_DEPTH (default 8),
// UPSL_COMMIT_WINDOW_US (committer window, default 50).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/histogram.hpp"
#include "pmem/ack_batch.hpp"
#include "server/client.hpp"
#include "server/group_commit.hpp"
#include "server/server.hpp"
#include "ycsb/workload.hpp"

namespace {

using namespace upsl;
using bench::JsonBenchWriter;

// Write-heavy mix: enough mutations that fences-per-mutation is a stable
// quotient, enough reads to keep reader-forced persists in the picture.
constexpr ycsb::WorkloadSpec kMixedWrite{"mixed-write", 0.10, 0.60, 0.30,
                                         ycsb::Distribution::kZipfian};

struct Target {
  std::string host;
  std::uint16_t port = 0;
};

bool connect_with_retry(server::Client& c, const Target& t, int attempts = 50) {
  for (int i = 0; i < attempts; ++i) {
    if (c.connect(t.host, t.port)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

bool preload(const Target& t, std::uint64_t records) {
  server::Client c;
  if (!connect_with_retry(c, t)) return false;
  constexpr std::uint32_t kDepth = 128;
  std::vector<server::Response> resp;
  std::uint64_t v = 1;
  for (std::uint64_t i = 0; i < records; ++i) {
    c.queue({server::Opcode::kPut, ycsb::key_of(i), v++});
    if (c.queued() == kDepth || i + 1 == records) c.flush(&resp);
  }
  return true;
}

struct WorkloadResult {
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t mutations = 0;
  bench::LatencyRecorder latency;
  bool ok = true;
};

WorkloadResult run_workload(const Target& t, std::uint64_t records,
                            std::uint64_t total_ops, unsigned clients,
                            std::uint32_t depth) {
  std::vector<WorkloadResult> per_thread(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      WorkloadResult& r = per_thread[i];
      server::Client c;
      if (!connect_with_retry(c, t, 30)) {
        r.ok = false;
        return;
      }
      ycsb::OpGenerator gen(kMixedWrite, records, /*seed=*/9000 + i, i,
                            clients);
      std::uint64_t remaining = total_ops / clients;
      std::vector<server::Response> resp;
      try {
        while (remaining > 0) {
          const std::uint32_t batch = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(depth, remaining));
          std::uint32_t muts = 0;
          for (std::uint32_t b = 0; b < batch; ++b) {
            const ycsb::Op op = gen.next();
            if (op.type == ycsb::OpType::kRead) {
              c.queue({server::Opcode::kGet, op.key});
            } else {
              c.queue({server::Opcode::kPut, op.key, op.value});
              ++muts;
            }
          }
          const auto s = std::chrono::steady_clock::now();
          c.flush(&resp);
          const auto ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - s)
                  .count());
          for (std::uint32_t b = 0; b < batch; ++b) r.latency.record_ns(ns);
          r.ops += batch;
          r.mutations += muts;
          remaining -= batch;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %u: %s\n", i, e.what());
        r.ok = false;
      }
    });
  }
  for (auto& th : threads) th.join();

  WorkloadResult total;
  total.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const WorkloadResult& r : per_thread) {
    total.ops += r.ops;
    total.mutations += r.mutations;
    total.latency.merge(r.latency);
    total.ok = total.ok && r.ok;
  }
  return total;
}

struct LegResult {
  WorkloadResult wl;
  double fences_per_mutation = 0;
  std::uint64_t group_commits = 0;
  std::uint64_t group_commit_mutations = 0;
  bool started = true;
};

/// One self-hosted leg: fresh store + server with the requested write-path
/// configuration, wire preload, measured mixed-write run.
LegResult run_leg(bool mod_writes, bool group_commit, std::uint64_t records,
                  std::uint64_t ops, unsigned clients, std::uint32_t depth) {
  LegResult leg;
  pmem::set_mod_writes_for_testing(mod_writes);
  bench::UPSLAdapter adapter(records, 1, 64, /*max_threads=*/clients + 8);
  server::ServerOptions sopts;
  sopts.port = 0;
  sopts.workers = 4;
  sopts.group_commit = group_commit;
  server::Server srv(adapter.store(), sopts);
  if (!srv.start()) {
    std::fprintf(stderr, "cannot start in-process server\n");
    leg.started = false;
    return leg;
  }
  const Target t{"127.0.0.1", srv.port()};
  if (!preload(t, records)) {
    std::fprintf(stderr, "preload failed\n");
    leg.started = false;
    srv.stop();
    srv.wait();
    return leg;
  }
  bench::StatsDelta delta;
  delta.begin();
  leg.wl = run_workload(t, records, ops, clients, depth);
  const pmem::StatsSnapshot d = pmem::Stats::instance().snapshot() - delta.t0;
  srv.stop();
  srv.wait();
  leg.fences_per_mutation =
      leg.wl.mutations > 0
          ? static_cast<double>(d.fences) /
                static_cast<double>(leg.wl.mutations)
          : 0;
  leg.group_commits = d.group_commits;
  leg.group_commit_mutations = d.group_commit_mutations;
  return leg;
}

void print_leg(const char* name, const LegResult& leg) {
  const double ops_s = leg.wl.seconds > 0
                           ? static_cast<double>(leg.wl.ops) / leg.wl.seconds
                           : 0;
  std::printf(
      "  %-12s %8.0f ops/s  %7.3f fences/mutation  p50 %7llu ns  "
      "p99 %7llu ns  p999 %7llu ns\n",
      name, ops_s, leg.fences_per_mutation,
      static_cast<unsigned long long>(leg.wl.latency.p50_ns()),
      static_cast<unsigned long long>(leg.wl.latency.p99_ns()),
      static_cast<unsigned long long>(leg.wl.latency.p999_ns()));
}

void add_entry(JsonBenchWriter& out, const char* name, const LegResult& leg,
               unsigned clients, std::uint32_t depth, std::uint64_t records,
               std::uint32_t window_us, JsonBenchWriter::Config extra) {
  char buf[32];
  JsonBenchWriter::Config cfg;
  std::snprintf(buf, sizeof buf, "%.4f", leg.fences_per_mutation);
  cfg.emplace_back("fences_per_mutation", buf);
  cfg.emplace_back("mutations", std::to_string(leg.wl.mutations));
  cfg.emplace_back("group_commits", std::to_string(leg.group_commits));
  if (leg.group_commits > 0) {
    std::snprintf(buf, sizeof buf, "%.2f",
                  static_cast<double>(leg.group_commit_mutations) /
                      static_cast<double>(leg.group_commits));
    cfg.emplace_back("gc_batch_avg", buf);
  }
  cfg.emplace_back("clients", std::to_string(clients));
  cfg.emplace_back("depth", std::to_string(depth));
  cfg.emplace_back("records", std::to_string(records));
  cfg.emplace_back("window_us", std::to_string(window_us));
  cfg.emplace_back("workload", kMixedWrite.name);
  for (auto& kv : extra) cfg.push_back(std::move(kv));
  bench::append_build_config(cfg);
  const double ops_s = leg.wl.seconds > 0
                           ? static_cast<double>(leg.wl.ops) / leg.wl.seconds
                           : 0;
  out.add(name, std::move(cfg), ops_s, leg.wl.latency.histogram());
}

}  // namespace

int main() {
  bench::apply_persist_delay();
  const std::uint64_t records = bench::env_u64("UPSL_BENCH_RECORDS", 20000);
  const std::uint64_t ops = bench::env_u64("UPSL_BENCH_OPS", 40000);
  const auto clients =
      static_cast<unsigned>(bench::env_u64("UPSL_SERVER_CLIENTS", 16));
  const auto depth =
      static_cast<std::uint32_t>(bench::env_u64("UPSL_SERVER_DEPTH", 8));
  const std::uint32_t window_us = server::commit_window_us_from_env(50);

  ThreadRegistry::instance().bind(0);
  bench::print_header("group commit: fences per mutation A/B",
                      "MOD write path + cross-connection ack fences");
  std::printf("  records=%llu ops=%llu clients=%u depth=%u window=%uus\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(ops), clients, depth, window_us);

  const LegResult base = run_leg(/*mod_writes=*/false, /*group_commit=*/false,
                                 records, ops, clients, depth);
  const LegResult gc = run_leg(/*mod_writes=*/true, /*group_commit=*/true,
                               records, ops, clients, depth);
  pmem::reset_mod_writes_for_testing();
  if (!base.started || !gc.started) return 1;

  print_leg("baseline", base);
  print_leg("groupcommit", gc);

  const double reduction = gc.fences_per_mutation > 0
                               ? base.fences_per_mutation /
                                     gc.fences_per_mutation
                               : 0;
  std::printf("  fence reduction: %.1fx (%llu group commits, avg batch "
              "%.2f mutations)\n",
              reduction, static_cast<unsigned long long>(gc.group_commits),
              gc.group_commits > 0
                  ? static_cast<double>(gc.group_commit_mutations) /
                        static_cast<double>(gc.group_commits)
                  : 0.0);

  JsonBenchWriter out("groupcommit");
  add_entry(out, "baseline", base, clients, depth, records, window_us,
            {{"mod_writes", "off"}, {"group_commit", "off"}});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", reduction);
  add_entry(out, "groupcommit", gc, clients, depth, records, window_us,
            {{"mod_writes", "on"},
             {"group_commit", "on"},
             {"fence_reduction_x", buf}});
  out.write();

  bool all_ok = base.wl.ok && gc.wl.ok;
  // Gates (only at meaningful scale — smoke runs with tiny op counts are
  // for wiring, not statistics).
  if (ops >= 20000) {
    if (reduction < 5.0) {
      std::fprintf(stderr,
                   "FAIL: fence reduction %.2fx < 5x acceptance floor\n",
                   reduction);
      all_ok = false;
    }
    // p999 must not regress beyond noise + the commit window the batches
    // deliberately wait out.
    const double p999_base = static_cast<double>(base.wl.latency.p999_ns());
    const double p999_gc = static_cast<double>(gc.wl.latency.p999_ns());
    const double allowed = p999_base * 1.5 + 2.0 * 1000.0 * window_us;
    if (p999_gc > allowed) {
      std::fprintf(stderr,
                   "FAIL: groupcommit p999 %.0f ns vs baseline %.0f ns "
                   "(allowed %.0f)\n",
                   p999_gc, p999_base, allowed);
      all_ok = false;
    }
    if (gc.group_commits == 0) {
      std::fprintf(stderr, "FAIL: group committer never fenced\n");
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
