// DRAM search-layer A/B harness (BENCH_index.json).
//
// The volatile-index PR keeps only the data level in PMEM and moves every
// index level into DRAM (see docs/dram-index.md); this harness measures what
// that buys and what it costs:
//
//   ycsb/<mix>/<mode>   single-thread closed-loop over ycsb::OpGenerator —
//                       workload B (read-mostly, 95/5) and workload A
//                       (update-heavy, 50/50) — A/B'd in-process by toggling
//                       UPSL_DISABLE_DRAM_INDEX around store construction
//                       (the switch is read per attach). Each row records
//                       traversal counter deltas per op; in DRAM mode the
//                       harness *asserts* index_hops == dram_node_visits,
//                       i.e. zero index-level reads touched PMEM, and exits
//                       nonzero otherwise.
//   rebuild/size/<n>    Pool-open rebuild wall time vs list size (the
//                       restart-latency trade the design makes).
//   rebuild/workers/<w> Parallel stripe-rebuild scaling at 1/2/4 workers on
//                       the full-size store.
//
// Knobs: UPSL_BENCH_RECORDS (default 100000 here — deep enough structure
// that traversal cost is index-bound), UPSL_BENCH_OPS (default 200000),
// UPSL_INDEX_KEYS_PER_NODE (default 16: small nodes = tall towers = the
// regime the DRAM layer targets), UPSL_PERSIST_DELAY_NS (default 50).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "ycsb/workload.hpp"

namespace {

using namespace upsl;
using namespace upsl::bench;
using Clock = std::chrono::steady_clock;

volatile std::uint64_t g_sink = 0;
void sink(std::uint64_t v) { g_sink = g_sink + v; }

std::uint32_t keys_per_node() {
  return static_cast<std::uint32_t>(env_u64("UPSL_INDEX_KEYS_PER_NODE", 16));
}

std::unique_ptr<UPSLAdapter> make_store(std::uint64_t records) {
  auto store = std::make_unique<UPSLAdapter>(records, 1, keys_per_node());
  // Preload in key_of's hashed (pseudorandom) order, as the YCSB driver does.
  for (std::uint64_t i = 0; i < records; ++i)
    store->insert(ycsb::key_of(i), i + 1);
  return store;
}

struct MixResult {
  double ops_per_sec = 0;
  LatencyRecorder lat;
  pmem::StatsSnapshot delta;
};

MixResult run_mix(UPSLAdapter& store, const ycsb::WorkloadSpec& spec,
                  std::uint64_t records, std::uint64_t ops) {
  ycsb::OpGenerator gen(spec, records, /*seed=*/97);
  const auto apply = [&](const ycsb::Op& op) {
    if (op.type == ycsb::OpType::kRead)
      sink(store.search(op.key).value_or(0));
    else
      sink(store.insert(op.key, op.value).value_or(0));
  };
  for (std::uint64_t i = 0; i < 4096; ++i) apply(gen.next());  // warmup

  MixResult r;
  const pmem::StatsSnapshot t0 = pmem::Stats::instance().snapshot();
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const ycsb::Op op = gen.next();
    r.lat.time([&] { apply(op); });
  }
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  r.delta = pmem::Stats::instance().snapshot() - t0;
  r.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  return r;
}

std::string per_op(std::uint64_t total, std::uint64_t ops) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f",
                static_cast<double>(total) / static_cast<double>(ops));
  return buf;
}

}  // namespace

int main() {
  apply_persist_delay();
  ThreadRegistry::instance().bind(0);
  const std::uint64_t records = env_u64("UPSL_BENCH_RECORDS", 100000);
  const std::uint64_t ops = env_u64("UPSL_BENCH_OPS", 200000);

  print_header("DRAM search layer A/B",
               "volatile index levels, PMEM data level; rebuild on open");
  std::printf("records=%llu ops=%llu keys_per_node=%u\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(ops), keys_per_node());

  JsonBenchWriter json("index");
  bool counters_ok = true;
  // ops_per_sec per (workload, mode) for the closing speedup summary.
  std::vector<std::pair<std::string, double>> throughput;

  std::printf("\n%-18s %-6s %12s %9s %9s %9s %11s\n", "workload", "index",
              "ops/sec", "p50 ns", "p99 ns", "p999 ns", "hops/op");
  for (const bool dram : {true, false}) {
    if (!dram) ::setenv("UPSL_DISABLE_DRAM_INDEX", "1", 1);
    auto store = make_store(records);
    for (const ycsb::WorkloadSpec& spec :
         {ycsb::kWorkloadB, ycsb::kWorkloadA}) {
      const MixResult r = run_mix(*store, spec, records, ops);
      const std::uint64_t pmem_index_reads =
          r.delta.index_hops - r.delta.dram_node_visits;
      std::printf("%-18s %-6s %12.0f %9llu %9llu %9llu %11s\n", spec.name,
                  dram ? "dram" : "pmem", r.ops_per_sec,
                  static_cast<unsigned long long>(r.lat.p50_ns()),
                  static_cast<unsigned long long>(r.lat.p99_ns()),
                  static_cast<unsigned long long>(r.lat.p999_ns()),
                  per_op(r.delta.index_hops, ops).c_str());
      if (dram && pmem_index_reads != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu index-level reads hit PMEM in DRAM mode "
                     "(index_hops=%llu dram_node_visits=%llu)\n",
                     static_cast<unsigned long long>(pmem_index_reads),
                     static_cast<unsigned long long>(r.delta.index_hops),
                     static_cast<unsigned long long>(r.delta.dram_node_visits));
        counters_ok = false;
      }
      if (!dram && r.delta.dram_node_visits != 0) {
        std::fprintf(stderr,
                     "FAIL: dram_node_visits=%llu with the index disabled\n",
                     static_cast<unsigned long long>(r.delta.dram_node_visits));
        counters_ok = false;
      }

      JsonBenchWriter::Config cfg{
          {"workload", spec.name},
          {"records", std::to_string(records)},
          {"keys_per_node", std::to_string(keys_per_node())},
          {"index_hops_per_op", per_op(r.delta.index_hops, ops)},
          {"pmem_node_visits_per_op", per_op(r.delta.pmem_node_visits, ops)},
          {"pmem_index_reads", std::to_string(pmem_index_reads)}};
      append_build_config(cfg);
      json.add(std::string("ycsb/") + (spec.name[0] == 'B' ? "B" : "A") +
                   (dram ? "/dram" : "/pmem"),
               std::move(cfg), r.ops_per_sec, r.lat.histogram());
      throughput.emplace_back(std::string(spec.name) +
                                  (dram ? "/dram" : "/pmem"),
                              r.ops_per_sec);
    }

    if (dram) {
      // Worker scaling of the stripe rebuild, on the store we already have.
      std::printf("\n-- rebuild scaling, %llu records --\n",
                  static_cast<unsigned long long>(records));
      std::printf("%-8s %10s %14s\n", "workers", "ms", "keys/sec");
      for (const unsigned w : {1u, 2u, 4u}) {
        // Best of three: a full rebuild is sub-millisecond at bench scale,
        // so a single sample is dominated by scheduler noise.
        std::uint64_t ns = store->store().rebuild_dram_index(w);
        for (int rep = 0; rep < 2; ++rep)
          ns = std::min(ns, store->store().rebuild_dram_index(w));
        const double keys_s =
            ns > 0 ? static_cast<double>(records) * 1e9 /
                         static_cast<double>(ns)
                   : 0;
        std::printf("%-8u %10.3f %14.0f\n", w,
                    static_cast<double>(ns) / 1e6, keys_s);
        JsonBenchWriter::Config cfg{
            {"workers", std::to_string(w)},
            {"records", std::to_string(records)},
            {"rebuild_ms", std::to_string(static_cast<double>(ns) / 1e6)
                               .substr(0, 8)}};
        append_build_config(cfg);
        json.add("rebuild/workers/" + std::to_string(w), std::move(cfg),
                 keys_s);
      }
    }
    store.reset();
    if (!dram) ::unsetenv("UPSL_DISABLE_DRAM_INDEX");
  }

  // Rebuild wall time vs list size (default worker count, fresh stores).
  std::printf("\n-- rebuild time vs list size --\n");
  std::printf("%-10s %10s %14s\n", "records", "ms", "keys/sec");
  for (const std::uint64_t n : {records / 4, records / 2, records}) {
    if (n == 0) continue;
    auto store = make_store(n);
    const std::uint64_t ns = store->store().rebuild_dram_index(0);
    const double keys_s =
        ns > 0 ? static_cast<double>(n) * 1e9 / static_cast<double>(ns) : 0;
    std::printf("%-10llu %10.3f %14.0f\n", static_cast<unsigned long long>(n),
                static_cast<double>(ns) / 1e6, keys_s);
    JsonBenchWriter::Config cfg{
        {"records", std::to_string(n)},
        {"keys_per_node", std::to_string(keys_per_node())},
        {"rebuild_ms",
         std::to_string(static_cast<double>(ns) / 1e6).substr(0, 8)}};
    append_build_config(cfg);
    json.add("rebuild/size/" + std::to_string(n), std::move(cfg), keys_s);
  }

  // Headline: read-mostly and mixed speedups of dram over pmem towers.
  std::printf("\n-- speedup (dram / pmem towers) --\n");
  for (std::size_t i = 0; i + 2 < throughput.size(); ++i) {
    const auto& [name, dram_ops] = throughput[i];
    if (name.find("/dram") == std::string::npos) continue;
    const std::string base = name.substr(0, name.find("/dram"));
    for (std::size_t j = 0; j < throughput.size(); ++j) {
      const auto& [other, pmem_ops] = throughput[j];
      if (other == base + "/pmem" && pmem_ops > 0) {
        std::printf("  %-18s %.2fx\n", base.c_str(), dram_ops / pmem_ops);
      }
    }
  }

  json.write();
  return counters_ok ? 0 : 1;
}
