// §5.2.2 ablation (abstract: "Using the extended RIV pointers to dynamically
// allocate memory resulted in a 40% performance increase over using the
// PMDK's fat pointers"): microbenchmarks of the two allocation/pointer
// stacks in isolation —
//  * allocate/deallocate cost: UPSkipList's per-arena free-list allocator
//    (one log flush per allocation) vs the mini-libpmemobj allocator,
//  * pointer-chase cost: dereferencing a chain of one-word RIV pointers vs
//    a chain of two-word fat pointers (the Fig 5.3 effect, isolated).
#include <benchmark/benchmark.h>

#include "alloc/block_allocator.hpp"
#include "common/thread_registry.hpp"
#include "pmdk/objstore.hpp"

namespace {

using namespace upsl;

struct RivAllocFixture {
  RivAllocFixture() {
    ThreadRegistry::instance().bind(0);
    riv::Runtime::instance().reset();
    pool = pmem::Pool::create_anonymous(0, 512u << 20, {});
    alloc::ChunkAllocatorConfig ccfg;
    ccfg.chunk_size = 4 << 20;
    ccfg.max_chunks = 120;
    ccfg.root_size = 1 << 20;
    alloc::ChunkAllocator::format(*pool, ccfg);
    chunks = std::make_unique<alloc::ChunkAllocator>(*pool);
    char* root = chunks->root_area();
    epoch = reinterpret_cast<std::uint64_t*>(root);
    *epoch = 1;
    auto* logs = reinterpret_cast<alloc::ThreadLog*>(root + 64);
    auto* arenas = reinterpret_cast<alloc::ArenaHeader*>(
        root + 64 + sizeof(alloc::ThreadLog) * kMaxThreads);
    alloc::BlockAllocator::Config bcfg;
    bcfg.block_size = 512;
    bcfg.arenas_per_pool = 4;
    blocks = std::make_unique<alloc::BlockAllocator>(
        std::vector<alloc::ChunkAllocator*>{chunks.get()}, arenas, logs, epoch,
        bcfg);
    blocks->bootstrap();
  }
  ~RivAllocFixture() { riv::Runtime::instance().reset(); }

  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<alloc::ChunkAllocator> chunks;
  std::unique_ptr<alloc::BlockAllocator> blocks;
  std::uint64_t* epoch = nullptr;
};

void BM_RivAllocateFree(benchmark::State& state) {
  RivAllocFixture f;
  for (auto _ : state) {
    std::uint64_t riv = 0;
    auto* b = static_cast<alloc::MemBlock*>(f.blocks->allocate(0, 1, &riv));
    b->state = 7;  // live object
    f.blocks->deallocate(riv);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RivAllocateFree);

void BM_PmdkAllocateFree(benchmark::State& state) {
  ThreadRegistry::instance().bind(0);
  auto pool = pmem::Pool::create_anonymous(10, 512u << 20, {});
  pmdk::ObjStore::format(*pool);
  pmdk::ObjStore store(*pool);
  for (auto _ : state) {
    const pmdk::Oid oid = store.alloc(512);
    store.free_obj(oid, 512);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PmdkAllocateFree);

constexpr std::size_t kChainLen = 1 << 16;

void BM_RivPointerChase(benchmark::State& state) {
  RivAllocFixture f;
  // Build a chain of blocks linked by one-word RIV pointers.
  std::uint64_t head = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < kChainLen; ++i) {
    std::uint64_t riv = 0;
    auto* b = static_cast<std::uint64_t*>(f.blocks->allocate(0, 1, &riv));
    b[0] = 0;
    if (prev != 0) {
      *riv::Runtime::instance().as<std::uint64_t>(prev) = riv;
    } else {
      head = riv;
    }
    prev = riv;
  }
  for (auto _ : state) {
    std::uint64_t cur = head;
    std::uint64_t hops = 0;
    while (cur != 0) {
      cur = *riv::Runtime::instance().as<std::uint64_t>(cur);
      ++hops;
    }
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChainLen));
}
BENCHMARK(BM_RivPointerChase);

void BM_FatPointerChase(benchmark::State& state) {
  ThreadRegistry::instance().bind(0);
  auto pool = pmem::Pool::create_anonymous(10, 512u << 20, {});
  pmdk::ObjStore::format(*pool);
  pmdk::ObjStore store(*pool);
  pmdk::Oid head{};
  pmdk::Oid prev{};
  for (std::size_t i = 0; i < kChainLen; ++i) {
    const pmdk::Oid oid = store.alloc(512);
    if (!prev.is_null()) {
      *store.as<pmdk::Oid>(prev) = oid;
    } else {
      head = oid;
    }
    prev = oid;
  }
  for (auto _ : state) {
    pmdk::Oid cur = head;
    std::uint64_t hops = 0;
    while (!cur.is_null()) {
      cur = *store.as<pmdk::Oid>(cur);
      ++hops;
    }
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChainLen));
}
BENCHMARK(BM_FatPointerChase);

}  // namespace

BENCHMARK_MAIN();
