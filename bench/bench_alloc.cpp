// Allocation/write-path microbenchmarks, two questions:
//
// 1. §5.2.2 ablation (abstract: "Using the extended RIV pointers to
//    dynamically allocate memory resulted in a 40% performance increase over
//    using the PMDK's fat pointers"): allocate/free cost and pointer-chase
//    cost of the RIV stack vs the mini-libpmemobj stack.
//
// 2. The allocation fast path A/B: thread-local magazines + flush/fence
//    coalescing on vs off, at two levels — the raw BlockAllocator
//    (alloc/free pairs) and the full UPSkipList insert path. Each entry
//    records persist calls and fences per operation next to throughput, so
//    the "fewer persists" claim is checkable data, not vibes.
//
// Emits BENCH_alloc.json (bench_json.hpp schema) in the working directory.
// Scale via UPSL_BENCH_OPS / UPSL_BENCH_RECORDS; persist latency model via
// UPSL_PERSIST_DELAY_NS (default 50ns, see bench_common.hpp).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "alloc/block_allocator.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "common/thread_registry.hpp"
#include "pmdk/objstore.hpp"
#include "pmem/flush_set.hpp"

namespace {

using namespace upsl;
using bench::JsonBenchWriter;

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

using bench::StatsDelta;  // snapshot-based per-phase counters (bench_common)

/// RIV allocator stack on one anonymous pool, with magazine descriptors in
/// the root area so the fast path can be toggled per instance.
struct RivAllocFixture {
  explicit RivAllocFixture(bool magazines_on) {
    ThreadRegistry::instance().bind(0);
    riv::Runtime::instance().reset();
    pool = pmem::Pool::create_anonymous(0, 512u << 20, {});
    alloc::ChunkAllocatorConfig ccfg;
    ccfg.chunk_size = 4 << 20;
    ccfg.max_chunks = 120;
    ccfg.root_size = 1 << 20;
    alloc::ChunkAllocator::format(*pool, ccfg);
    chunks = std::make_unique<alloc::ChunkAllocator>(*pool);
    char* root = chunks->root_area();
    epoch = reinterpret_cast<std::uint64_t*>(root);
    *epoch = 1;
    auto* logs = reinterpret_cast<alloc::ThreadLog*>(root + 64);
    auto* arenas = reinterpret_cast<alloc::ArenaHeader*>(
        root + 64 + sizeof(alloc::ThreadLog) * kMaxThreads);
    auto* mags = reinterpret_cast<alloc::MagazineDesc*>(
        reinterpret_cast<char*>(arenas) + sizeof(alloc::ArenaHeader) * 4);
    alloc::BlockAllocator::Config bcfg;
    bcfg.block_size = 512;
    bcfg.arenas_per_pool = 4;
    if (!magazines_on) ::setenv("UPSL_DISABLE_MAGAZINES", "1", 1);
    blocks = std::make_unique<alloc::BlockAllocator>(
        std::vector<alloc::ChunkAllocator*>{chunks.get()}, arenas, logs, epoch,
        bcfg, mags);
    if (!magazines_on) ::unsetenv("UPSL_DISABLE_MAGAZINES");
    blocks->bootstrap();
  }
  ~RivAllocFixture() { riv::Runtime::instance().reset(); }

  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<alloc::ChunkAllocator> chunks;
  std::unique_ptr<alloc::BlockAllocator> blocks;
  std::uint64_t* epoch = nullptr;
};

void alloc_free_pairs(alloc::BlockAllocator& a, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t riv = 0;
    auto* b = static_cast<alloc::MemBlock*>(a.allocate(0, 1, &riv));
    b->state = 7;  // live object (DRAM store; durability is the caller's job)
    a.deallocate(riv);
  }
}

/// Raw allocator A/B: steady-state alloc/free pair cost with the magazine
/// fast path on vs off (coalescing follows the same switch at this level:
/// the magazine refill/return batching IS the flush coalescing here).
void bench_raw_allocator(JsonBenchWriter& out, std::uint64_t ops) {
  for (const bool magazines : {true, false}) {
    RivAllocFixture f(magazines);
    alloc_free_pairs(*f.blocks, 2000);  // warm: prime magazines + free lists
    StatsDelta d;
    d.begin();
    const auto t0 = std::chrono::steady_clock::now();
    alloc_free_pairs(*f.blocks, ops);
    const double dt = seconds_since(t0);
    auto cfg = d.per_op(ops);
    cfg.emplace_back("magazines", magazines ? "on" : "off");
    cfg.emplace_back("block_size", "512");
    const double mops = double(ops) / dt / 1e6;
    std::printf("  riv alloc/free   magazines=%-3s  %7.2f Mops  (%s/op %s)\n",
                magazines ? "on" : "off", mops, cfg[0].second.c_str(),
                "persists");
    out.add(std::string("riv_alloc_free_magazines_") +
                (magazines ? "on" : "off"),
            std::move(cfg), double(ops) / dt);
  }
}

/// Full-structure A/B: UPSkipList insert throughput with the entire
/// allocation fast path (magazines + FlushSet coalescing) on vs off.
void bench_skiplist_inserts(JsonBenchWriter& out, std::uint64_t records) {
  for (const bool fast : {true, false}) {
    if (!fast) {
      ::setenv("UPSL_DISABLE_MAGAZINES", "1", 1);
      pmem::set_flush_coalescing_for_testing(false);
    }
    {
      // Small nodes -> frequent splits, so the allocating path (the thing
      // being A/B'd) actually runs; big nodes would bury it in key copies.
      bench::UPSLAdapter adapter(records, 1, 8, 4);
      Xoshiro256 rng(7);
      StatsDelta d;
      d.begin();
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t i = 0; i < records; ++i)
        adapter.insert(1 + (rng.next() >> 16), i);
      const double dt = seconds_since(t0);
      auto cfg = d.per_op(records);
      cfg.emplace_back("fastpath", fast ? "on" : "off");
      cfg.emplace_back("records", std::to_string(records));
      std::printf(
          "  upsl insert      fastpath=%-3s   %7.2f Mops  (persists/op %s, "
          "fences/op %s)\n",
          fast ? "on" : "off", double(records) / dt / 1e6,
          cfg[0].second.c_str(), cfg[1].second.c_str());
      out.add(std::string("upsl_insert_fastpath_") + (fast ? "on" : "off"),
              std::move(cfg), double(records) / dt);
    }
    if (!fast) {
      ::unsetenv("UPSL_DISABLE_MAGAZINES");
      pmem::reset_flush_coalescing_for_testing();
    }
  }
}

/// §5.2.2 baseline: the mini-libpmemobj transactional allocator.
void bench_pmdk_allocator(JsonBenchWriter& out, std::uint64_t ops) {
  ThreadRegistry::instance().bind(0);
  auto pool = pmem::Pool::create_anonymous(10, 512u << 20, {});
  pmdk::ObjStore::format(*pool);
  pmdk::ObjStore store(*pool);
  for (std::uint64_t i = 0; i < 2000; ++i)  // warm
    store.free_obj(store.alloc(512), 512);
  StatsDelta d;
  d.begin();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const pmdk::Oid oid = store.alloc(512);
    store.free_obj(oid, 512);
  }
  const double dt = seconds_since(t0);
  auto cfg = d.per_op(ops);
  cfg.emplace_back("block_size", "512");
  std::printf("  pmdk alloc/free                 %7.2f Mops\n",
              double(ops) / dt / 1e6);
  out.add("pmdk_alloc_free", std::move(cfg), double(ops) / dt);
}

constexpr std::size_t kChainLen = 1 << 16;

/// Pointer-chase cost of one-word RIVs vs two-word fat pointers (the
/// Fig 5.3 effect isolated from the skip list).
void bench_pointer_chase(JsonBenchWriter& out, std::uint64_t rounds) {
  {
    RivAllocFixture f(true);
    std::uint64_t head = 0, prev = 0;
    for (std::size_t i = 0; i < kChainLen; ++i) {
      std::uint64_t riv = 0;
      auto* b = static_cast<std::uint64_t*>(f.blocks->allocate(0, 1, &riv));
      b[0] = 0;
      if (prev != 0)
        *riv::Runtime::instance().as<std::uint64_t>(prev) = riv;
      else
        head = riv;
      prev = riv;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      std::uint64_t cur = head, hops = 0;
      while (cur != 0) {
        cur = *riv::Runtime::instance().as<std::uint64_t>(cur);
        ++hops;
      }
      g_sink = hops;
    }
    const double dt = seconds_since(t0);
    const double hops_s = double(rounds) * double(kChainLen) / dt;
    std::printf("  riv pointer chase               %7.2f Mhops\n", hops_s / 1e6);
    out.add("riv_pointer_chase", {{"chain", std::to_string(kChainLen)}},
            hops_s);
  }
  {
    ThreadRegistry::instance().bind(0);
    auto pool = pmem::Pool::create_anonymous(10, 512u << 20, {});
    pmdk::ObjStore::format(*pool);
    pmdk::ObjStore store(*pool);
    pmdk::Oid head{}, prev{};
    for (std::size_t i = 0; i < kChainLen; ++i) {
      const pmdk::Oid oid = store.alloc(512);
      if (!prev.is_null())
        *store.as<pmdk::Oid>(prev) = oid;
      else
        head = oid;
      prev = oid;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      pmdk::Oid cur = head;
      std::uint64_t hops = 0;
      while (!cur.is_null()) {
        cur = *store.as<pmdk::Oid>(cur);
        ++hops;
      }
      g_sink = hops;
    }
    const double dt = seconds_since(t0);
    const double hops_s = double(rounds) * double(kChainLen) / dt;
    std::printf("  fat pointer chase               %7.2f Mhops\n", hops_s / 1e6);
    out.add("fat_pointer_chase", {{"chain", std::to_string(kChainLen)}},
            hops_s);
  }
}

}  // namespace

int main() {
  bench::apply_persist_delay();
  const bench::BenchScale scale;
  JsonBenchWriter out("alloc");

  bench::print_header("allocation fast path A/B",
                      "§5.2.2 + magazine/coalescing ablation");
  bench_raw_allocator(out, scale.ops);
  bench_pmdk_allocator(out, scale.ops);
  bench_skiplist_inserts(out, scale.records);
  bench_pointer_chase(out, 64);

  out.write();
  return 0;
}
