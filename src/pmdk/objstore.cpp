#include "pmdk/objstore.hpp"

#include <cstring>

#include "common/checksum.hpp"
#include "common/crashpoint.hpp"

namespace upsl::pmdk {

using pmem::persist;
using pmem::pm_cas_value;
using pmem::pm_fetch_add;
using pmem::pm_load;
using pmem::pm_store;

namespace {
constexpr std::uint64_t kMagic = 0x504d444b53544f52ULL;  // "PMDKSTOR"
}

/// Undo-log record: header + saved bytes, 8-byte aligned.
struct LogEntry {
  std::uint64_t kind;  // 1 = undo range, 2 = allocation
  std::uint64_t off;   // pool offset of the range / allocated block
  std::uint64_t len;   // saved bytes / allocation size
  // payload follows (kind 1 only)
};

struct ObjStore::TxLog {
  std::uint64_t active;   // nonzero while a tx is open (durable)
  std::uint64_t used;     // bytes of valid entries
  std::uint64_t checksum; // CRC32C stamp over entry bytes [0, used); 0 =
                          // unstamped (docs/integrity.md). Shares `used`'s
                          // cache line, so every advance commits atomically
                          // with the stamp that covers it.
  std::uint64_t pad;
  // entry bytes follow up to tx_log_bytes - 32
};

struct ObjStore::Header {
  std::uint64_t magic;
  std::uint64_t version;
  std::uint64_t tx_log_bytes;
  std::uint64_t heap_start;
  std::uint64_t heap_next;  // bump pointer (pool offset)
  std::uint64_t heap_end;
  Oid root;
  std::uint64_t free_heads[kNumClasses];  // Treiber stacks of freed blocks
  std::uint64_t logs_start;
};

std::uint32_t ObjStore::class_of(std::uint64_t size) {
  std::uint32_t c = 0;
  std::uint64_t cap = 64;
  while (cap < size && c < kNumClasses - 1) {
    cap <<= 1;
    ++c;
  }
  if (cap < size) throw std::invalid_argument("allocation too large");
  return c;
}

ObjStore::Header* ObjStore::header() const {
  return reinterpret_cast<Header*>(pool_.base());
}

ObjStore::TxLog* ObjStore::log_of(int tid) const {
  Header* h = header();
  return reinterpret_cast<TxLog*>(pool_.base() + h->logs_start +
                                  static_cast<std::uint64_t>(tid) *
                                      h->tx_log_bytes);
}

void ObjStore::format(pmem::Pool& pool, Config cfg) {
  const std::uint64_t logs_start = align_up(sizeof(Header), kCacheLineSize);
  const std::uint64_t heap_start =
      align_up(logs_start + cfg.tx_log_bytes * kMaxThreads, 4096);
  if (heap_start + 4096 > pool.size())
    throw std::invalid_argument("pool too small for ObjStore");
  std::memset(pool.base(), 0, heap_start);
  auto* h = reinterpret_cast<Header*>(pool.base());
  h->version = 1;
  h->tx_log_bytes = cfg.tx_log_bytes;
  h->logs_start = logs_start;
  h->heap_start = heap_start;
  h->heap_next = heap_start + 64;  // offset 0 stays the null Oid
  h->heap_end = pool.size();
  persist(pool.base(), heap_start);
  pm_store(h->magic, kMagic);
  persist(&h->magic, sizeof(h->magic));
}

ObjStore::ObjStore(pmem::Pool& pool) : pool_(pool) {
  if (pm_load(header()->magic) != kMagic)
    throw std::runtime_error("pool is not an ObjStore");
  recover();
}

void ObjStore::recover() {
  for (int t = 0; t < kMaxThreads; ++t) {
    TxLog* log = log_of(t);
    if (pm_load(log->active) != 0) rollback(log);
  }
}

Oid ObjStore::root() const { return header()->root; }

void ObjStore::set_root(Oid oid) {
  Header* h = header();
  h->root = oid;
  persist(&h->root, sizeof(h->root));
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

Oid ObjStore::alloc(std::uint64_t size) {
  Header* h = header();
  const std::uint32_t cls = class_of(size);
  const std::uint64_t cap = 64ull << cls;

  std::uint64_t off = 0;
  // Try the size class' free list first.
  while (true) {
    const std::uint64_t head = pm_load(h->free_heads[cls]);
    if (head == 0) break;
    const std::uint64_t next =
        pm_load(*reinterpret_cast<std::uint64_t*>(pool_.base() + head));
    if (pm_cas_value(h->free_heads[cls], head, next)) {
      persist(&h->free_heads[cls], sizeof(std::uint64_t));
      off = head;
      break;
    }
  }
  if (off == 0) {
    off = pm_fetch_add(h->heap_next, cap);
    if (off + cap > h->heap_end) throw std::bad_alloc();
    // Make the bump durable before the block can become reachable; see
    // DESIGN.md for the crash analysis of this allocator.
    persist(&h->heap_next, sizeof(h->heap_next));
  }
  std::memset(pool_.base() + off, 0, cap);

  // If a transaction is open, record the allocation so an abort releases it.
  TxLog* log = log_of(ThreadRegistry::id());
  if (pm_load(log->active) != 0) {
    char* base = reinterpret_cast<char*>(log + 1);
    const std::uint64_t used = pm_load(log->used);
    if (used + sizeof(LogEntry) > header()->tx_log_bytes - sizeof(TxLog))
      throw std::runtime_error("tx log overflow");
    auto* e = reinterpret_cast<LogEntry*>(base + used);
    e->kind = 2;
    e->off = off;
    e->len = cap;
    persist(e, sizeof(*e));
    const std::uint64_t grown = used + sizeof(LogEntry);
    pm_store(log->checksum, std::uint64_t{upsl::checksum_stamp(base, grown)});
    pm_store(log->used, grown);
    persist(&log->used, sizeof(log->used));  // line covers checksum too
  }
  return Oid{pool_.id(), off};
}

void ObjStore::free_obj(Oid oid, std::uint64_t size) {
  Header* h = header();
  const std::uint32_t cls = class_of(size);
  auto* next_word = reinterpret_cast<std::uint64_t*>(pool_.base() + oid.off);
  while (true) {
    const std::uint64_t head = pm_load(h->free_heads[cls]);
    pm_store(*next_word, head);
    persist(next_word, sizeof(std::uint64_t));
    if (pm_cas_value(h->free_heads[cls], head, oid.off)) {
      persist(&h->free_heads[cls], sizeof(std::uint64_t));
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

bool ObjStore::in_tx() const {
  return pm_load(log_of(ThreadRegistry::id())->active) != 0;
}

void ObjStore::tx_begin() {
  TxLog* log = log_of(ThreadRegistry::id());
  if (pm_load(log->active) != 0)
    throw std::logic_error("nested transactions are not supported");
  pm_store(log->used, std::uint64_t{0});
  pm_store(log->checksum, std::uint64_t{0});  // empty log is unstamped
  persist(&log->used, sizeof(log->used));
  pm_store(log->active, std::uint64_t{1});
  persist(&log->active, sizeof(log->active));
}

void ObjStore::tx_add(void* addr, std::uint64_t len) {
  TxLog* log = log_of(ThreadRegistry::id());
  if (pm_load(log->active) == 0) throw std::logic_error("tx_add outside tx");
  char* base = reinterpret_cast<char*>(log + 1);
  const std::uint64_t used = pm_load(log->used);
  const std::uint64_t need = sizeof(LogEntry) + align_up(len, 8);
  if (used + need > header()->tx_log_bytes - sizeof(TxLog))
    throw std::runtime_error("tx log overflow");
  auto* e = reinterpret_cast<LogEntry*>(base + used);
  e->kind = 1;
  e->off = static_cast<std::uint64_t>(static_cast<char*>(addr) - pool_.base());
  e->len = len;
  std::memcpy(e + 1, addr, len);
  // Zero the alignment pad so the bytes under the log checksum are fully
  // deterministic and persisted (stale pad in an unflushed line would make
  // a legitimate crash look like corruption).
  std::memset(reinterpret_cast<char*>(e + 1) + len, 0,
              align_up(len, 8) - len);
  persist(e, sizeof(LogEntry) + align_up(len, 8));
  // The entry only becomes part of the log once `used` covers it — a crash
  // between the two leaves a well-formed shorter log.
  pm_store(log->checksum,
           std::uint64_t{upsl::checksum_stamp(base, used + need)});
  pm_store(log->used, used + need);
  persist(&log->used, sizeof(log->used));  // line covers checksum too
  UPSL_CRASH_POINT("pmdk.tx_added");
}

void ObjStore::tx_commit() {
  TxLog* log = log_of(ThreadRegistry::id());
  if (pm_load(log->active) == 0) throw std::logic_error("commit outside tx");
  // Persist the new contents of every logged range, then discard the log.
  // The commit point is the persisted reset of `active`.
  char* base = reinterpret_cast<char*>(log + 1);
  std::uint64_t pos = 0;
  const std::uint64_t used = pm_load(log->used);
  while (pos < used) {
    auto* e = reinterpret_cast<LogEntry*>(base + pos);
    if (e->kind == 1) {
      persist(pool_.base() + e->off, e->len);
      pos += sizeof(LogEntry) + align_up(e->len, 8);
    } else {
      pos += sizeof(LogEntry);
    }
  }
  UPSL_CRASH_POINT("pmdk.pre_commit");
  pm_store(log->active, std::uint64_t{0});
  persist(&log->active, sizeof(log->active));
  UPSL_CRASH_POINT("pmdk.committed");
}

void ObjStore::tx_abort() {
  TxLog* log = log_of(ThreadRegistry::id());
  if (pm_load(log->active) == 0) throw std::logic_error("abort outside tx");
  rollback(log);
}

void ObjStore::rollback(TxLog* log) {
  // Apply undo entries newest-first so overlapping ranges restore the
  // oldest (pre-transaction) data; release transactional allocations.
  char* base = reinterpret_cast<char*>(log + 1);
  const std::uint64_t used = pm_load(log->used);
  // Validate before applying: replaying a damaged undo log would spray
  // garbage over committed heap state. A mismatch is detected-fatal — the
  // interrupted transaction's atomicity cannot be restored, and silently
  // skipping the rollback would leave partial writes visible.
  if (!upsl::checksum_verify(
          base, used,
          static_cast<std::uint32_t>(pm_load(log->checksum)))) {
    pmem::Stats::instance().checksum_failures.fetch_add(
        1, std::memory_order_relaxed);
    throw upsl::CorruptionError("pmdk tx undo log failed its checksum");
  }
  std::vector<LogEntry*> entries;
  std::uint64_t pos = 0;
  while (pos < used) {
    auto* e = reinterpret_cast<LogEntry*>(base + pos);
    entries.push_back(e);
    pos += sizeof(LogEntry) + (e->kind == 1 ? align_up(e->len, 8) : 0);
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    LogEntry* e = *it;
    if (e->kind == 1) {
      std::memcpy(pool_.base() + e->off, e + 1, e->len);
      persist(pool_.base() + e->off, e->len);
    } else {
      free_obj(Oid{pool_.id(), e->off}, e->len);
    }
  }
  pm_store(log->active, std::uint64_t{0});
  persist(&log->active, sizeof(log->active));
}

std::uint64_t ObjStore::heap_used() const {
  return pm_load(header()->heap_next) - header()->heap_start;
}

}  // namespace upsl::pmdk
