// libpmemlog analogue: a single-writer append-only persistent log (used to
// record operation histories for crash-linearizability analysis, §6.1.1 —
// "logging the start, end, and return values of operations to DRAM is not
// enough" when real power failures are involved).
//
// Append protocol: write the record bytes past the committed tail, persist
// them, then advance and persist the tail. A crash mid-append leaves the
// tail untouched, so readers never see a torn record.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <stdexcept>

#include "pmem/persist.hpp"

namespace upsl::pmdk {

class PmemLog {
 public:
  struct Header {
    std::uint64_t magic;
    std::uint64_t capacity;  // data bytes available
    std::uint64_t tail;      // committed bytes
  };
  static constexpr std::uint64_t kMagic = 0x504d454d4c4f4721ULL;

  /// Formats a log in-place over [region, region+size).
  static PmemLog format(void* region, std::uint64_t size) {
    if (size <= sizeof(Header)) throw std::invalid_argument("log too small");
    auto* h = static_cast<Header*>(region);
    h->capacity = size - sizeof(Header);
    h->tail = 0;
    h->magic = kMagic;
    pmem::persist(h, sizeof(Header));
    return PmemLog(region);
  }

  /// Attaches to an existing log (post-crash: tail is the committed prefix).
  explicit PmemLog(void* region) : h_(static_cast<Header*>(region)) {
    if (pmem::pm_load(h_->magic) != kMagic)
      throw std::runtime_error("not a pmem log");
  }

  void append(const void* buf, std::uint64_t len) {
    const std::uint64_t tail = pmem::pm_load(h_->tail);
    if (tail + len > h_->capacity) throw std::runtime_error("pmem log full");
    std::memcpy(data() + tail, buf, len);
    pmem::persist(data() + tail, len);
    pmem::pm_store(h_->tail, tail + len);
    pmem::persist(&h_->tail, sizeof(h_->tail));
  }

  std::uint64_t size() const { return pmem::pm_load(h_->tail); }
  std::uint64_t capacity() const { return h_->capacity; }
  const char* data() const {
    return reinterpret_cast<const char*>(h_ + 1);
  }
  char* data() { return reinterpret_cast<char*>(h_ + 1); }

  /// Iterate over fixed-size records of type T committed to the log.
  template <typename T>
  void for_each(const std::function<void(const T&)>& fn) const {
    const std::uint64_t n = size() / sizeof(T);
    const T* recs = reinterpret_cast<const T*>(data());
    for (std::uint64_t i = 0; i < n; ++i) fn(recs[i]);
  }

 private:
  Header* h_;
};

}  // namespace upsl::pmdk
