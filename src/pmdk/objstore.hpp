// Mini-libpmemobj: a transactional persistent object store (thesis §2.1.2,
// §3.1). This is the substrate for the lock-based baseline skip list — the
// "what the PMDK gives you out of the box" point of comparison:
//
//  * two-word fat pointers (Oid = pool id + offset), the cache-inefficiency
//    measured against RIV pointers in Figure 5.3 and §5.2.2,
//  * undo-log transactions: before a range is modified it is copied into a
//    per-thread persistent undo log; a crash rolls incomplete transactions
//    back on the next attach — the write amplification behind the baseline's
//    ~3x median latency (Table 5.3),
//  * recovery = reconnect + roll back at most one in-flight transaction per
//    thread (the ~55 ms row of Table 5.4).
//
// The allocator is a persistent bump allocator with per-size-class free
// lists for explicit frees; allocations made inside a transaction are rolled
// back with it.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/compiler.hpp"
#include "common/thread_registry.hpp"
#include "pmem/pool.hpp"

namespace upsl::pmdk {

/// Fat persistent pointer: 16 bytes, as in libpmemobj's PMEMoid.
struct Oid {
  std::uint64_t pool = 0;
  std::uint64_t off = 0;

  bool is_null() const { return off == 0; }
  friend bool operator==(const Oid& a, const Oid& b) {
    return a.pool == b.pool && a.off == b.off;
  }
};

class ObjStore {
 public:
  struct Config {
    std::uint64_t tx_log_bytes = 16 << 10;  // per-thread undo log
  };

  static void format(pmem::Pool& pool, Config cfg);
  static void format(pmem::Pool& pool) { format(pool, Config()); }
  explicit ObjStore(pmem::Pool& pool);

  pmem::Pool& pool() const { return pool_; }

  /// Rolls back any transaction that was in flight at crash time. Called by
  /// the constructor; exposed so recovery-time benchmarks can time it.
  void recover();

  /// Fat-pointer dereference: pool-registry lookup + base + offset.
  void* direct(Oid oid) const {
    pmem::Pool* p = pmem::PoolRegistry::instance().by_id(
        static_cast<std::uint16_t>(oid.pool));
    return p->base() + oid.off;
  }
  template <typename T>
  T* as(Oid oid) const {
    return static_cast<T*>(direct(oid));
  }
  Oid oid_of(const void* p) const {
    return Oid{pool_.id(),
               static_cast<std::uint64_t>(static_cast<const char*>(p) -
                                          pool_.base())};
  }

  /// Persistent user root slot (stores e.g. the skip list head's Oid).
  Oid root() const;
  void set_root(Oid oid);

  /// Allocate `size` bytes (transactional when a tx is open on this thread:
  /// rolled back if the tx aborts). Zeroed.
  Oid alloc(std::uint64_t size);
  /// Return a block to its size-class free list. Must not be reachable.
  void free_obj(Oid oid, std::uint64_t size);

  // ---- transactions ------------------------------------------------------

  /// Begin a transaction on the calling thread (no nesting).
  void tx_begin();
  /// Undo-log [addr, addr+len) before modifying it.
  void tx_add(void* addr, std::uint64_t len);
  /// Persist all logged ranges' new contents and discard the log.
  void tx_commit();
  /// Restore all logged ranges and release tx allocations.
  void tx_abort();
  bool in_tx() const;

  /// RAII transaction scope committing on success, aborting on exception.
  class Tx {
   public:
    explicit Tx(ObjStore& store) : store_(store) { store_.tx_begin(); }
    ~Tx() {
      // Abort only if the transaction is still open: an exception thrown
      // after the durable commit point (e.g. an injected crash) must not
      // roll a committed transaction back.
      if (!done_ && store_.in_tx()) store_.tx_abort();
    }
    void commit() {
      store_.tx_commit();
      done_ = true;
    }

   private:
    ObjStore& store_;
    bool done_ = false;
  };

  std::uint64_t heap_used() const;

 private:
  struct Header;
  struct TxLog;

  static constexpr std::uint32_t kNumClasses = 16;  // 64B .. 2MB
  static std::uint32_t class_of(std::uint64_t size);

  Header* header() const;
  TxLog* log_of(int tid) const;
  void rollback(TxLog* log);

  pmem::Pool& pool_;
};

}  // namespace upsl::pmdk
