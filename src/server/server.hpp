// upsl-serve: a multi-threaded TCP front-end over a sharded store, with two
// interchangeable data planes — classic epoll readiness polling, and an
// io_uring completion loop (multishot accept, registered-buffer receives,
// asynchronous sends) selected at runtime when the kernel offers it
// (docs/scan.md). Everything above the socket layer — batching, routing,
// group commit, drain — is shared between the planes.
//
// Sharding (docs/server.md): the key space is hash-partitioned across N
// independent UPSkipList shards (common/shardmap.hpp). Shard s gets its own
// listen socket (base port + s, or its own ephemeral port), its own group of
// worker threads, and its own group committer — shards share nothing but
// the process. Worker groups are pinned, best-effort, to disjoint CPU
// groups approximating one (virtual) NUMA node per shard, so each shard's
// threads stay local to the node its pools were placed on.
//
// Routing: the dispatch layer routes every single-key request by its key to
// the owning shard, whatever socket it arrived on — so a topology-unaware
// (pre-sharding) client talking only to the base port is still served
// correctly, just with cross-shard hops (counted in stats). A routed client
// fetches the shard map once via the TOPOLOGY verb and sends each key to
// its owner directly (ShardedClient in client.hpp). SCAN answers with a
// cross-shard k-way merge in global key order from any shard. N=1 is
// bit-compatible with the pre-sharding server.
//
// Threading model (per shard): W worker threads, each with its own epoll
// instance. The (non-blocking) listen socket is registered level-triggered
// in every worker's epoll set with EPOLLEXCLUSIVE, so the kernel wakes one
// worker per pending connection; the accepting worker owns the connection
// for its whole life — per-connection state is never shared between threads.
//
// Pipelining: a wakeup drains the socket, parses every complete frame that
// arrived, executes the whole batch back-to-back against the store, and only
// then writes the concatenated responses with one send(). Each mutating
// operation is individually durable before it returns (the store persists
// internally), and the server issues one extra pmem::fence() per batch that
// contained a mutation before any response byte leaves — acknowledgements
// are ordered after durability with one fence per batch, not one per op.
//
// Lifecycle: construct over already-recovered stores (the caller runs
// Pool::open + UPSkipList/ShardSet::open first — the listen sockets must not
// exist before recovery has run), start(), then wait(). stop() — or a
// SIGTERM/SIGINT routed through install_signal_handlers() — triggers a
// graceful drain: the listen sockets close (no new connections), every
// worker executes the requests already buffered on its connections, flushes
// pending responses, fences, and exits. wait() returns once all workers are
// done.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/shard_set.hpp"
#include "core/upskiplist.hpp"

namespace upsl::server {

class GroupCommit;

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// Base port: shard s listens on port + s. 0 = let the kernel pick an
  /// ephemeral port per shard (query them via port(shard)).
  std::uint16_t port = 0;
  /// Worker threads per shard.
  unsigned workers = 4;
  /// ThreadRegistry slot of shard 0's worker 0; shard s's worker i binds
  /// first_thread_id + s * workers + i. Keep the whole range distinct from
  /// the ids other threads in the process use, and below every shard's
  /// Options::max_threads — a routed request may execute against any shard
  /// under any worker's id.
  unsigned first_thread_id = 1;
  /// Most frames executed per connection per wakeup; a connection with more
  /// buffered input is revisited before the next epoll_wait so one noisy
  /// pipeliner cannot starve its worker's other connections.
  unsigned max_batch = 64;
  /// Seconds a draining worker will wait for blocked response bytes.
  unsigned drain_timeout_sec = 5;
  /// Cross-connection group commit (docs/write-path.md): mutation batches
  /// from all connections within a commit window share one ack fence issued
  /// by a dedicated committer thread (one per shard); responses park until
  /// the covering fence retires. UPSL_DISABLE_GROUP_COMMIT=1 overrides this
  /// to off.
  bool group_commit = true;
  /// How long the committer accumulates batches before fencing, in
  /// microseconds. UPSL_COMMIT_WINDOW_US overrides.
  std::uint32_t commit_window_us = 50;
  /// Pin each shard's workers to that shard's CPU group (hardware threads
  /// split evenly across shards, approximating one NUMA node per shard).
  /// Skipped automatically when the machine is too small to give every
  /// shard at least one CPU; UPSL_DISABLE_SHARD_PIN=1 overrides to off.
  bool pin_shards = true;
  /// Use the io_uring data plane when the kernel supports it (docs/scan.md):
  /// multishot accept, registered-buffer receives, and completion-driven
  /// sends — selected at start() by a runtime probe, falling back to epoll
  /// on kernels (or seccomp policies) that refuse the ring.
  /// UPSL_DISABLE_IOURING=1 overrides to off. Batch execution, group-commit
  /// parking, and the single-owner-connection model are identical on both
  /// planes.
  bool io_uring = true;
};

/// Monotonic serving counters, exposed through the STATS command.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batch_fences{0};
  /// Mutation batches handed to the group committer (their fences are
  /// counted in pmem::Stats::group_commits, not batch_fences).
  std::atomic<std::uint64_t> group_commit_batches{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> removes{0};
  std::atomic<std::uint64_t> scans{0};
  /// Detectable-session traffic (docs/detectability.md): HELLO handshakes,
  /// RESOLVE queries, and replayed (deduplicated) detectable mutations.
  std::atomic<std::uint64_t> hellos{0};
  std::atomic<std::uint64_t> resolves{0};
  std::atomic<std::uint64_t> detect_dups{0};
  /// Single-key ops that arrived on one shard's socket but were owned by
  /// another shard (topology-unaware client, or a stale map). Routed
  /// in-process — correct, just not NUMA-local.
  std::atomic<std::uint64_t> cross_shard_ops{0};
};

class Server {
 public:
  /// Unsharded (N=1) server over one store — the pre-sharding configuration.
  Server(core::UPSkipList& store, ServerOptions opts);
  /// Sharded server: one listen socket + worker group + committer per shard.
  /// The ShardSet must outlive the server.
  Server(core::ShardSet& shards, ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the workers. False (with errno intact) if a
  /// socket could not be set up; no threads are running then.
  bool start();

  /// Port actually bound for shard 0 (resolves port 0). Valid after start().
  std::uint16_t port() const { return bound_ports_.empty() ? 0 : bound_ports_[0]; }
  /// Port shard `s` listens on. Valid after start().
  std::uint16_t port(std::uint32_t s) const { return bound_ports_[s]; }

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(stores_.size());
  }

  /// Request a graceful drain. Safe to call from any thread, repeatedly.
  void stop() { stop_.store(true, std::memory_order_release); }

  /// Blocks until every worker has drained and exited.
  void wait();

  bool running() const { return started_ && !stopped_; }

  const ServerStats& stats() const { return stats_; }

  /// True iff this server runs with the cross-connection group committers
  /// (option on and not killed by UPSL_DISABLE_GROUP_COMMIT). Valid after
  /// start().
  bool group_commit_enabled() const { return !gcs_.empty(); }

  /// Effective commit window (env override applied). Valid after start().
  std::uint32_t commit_window_us() const { return window_us_; }

  /// The data plane the workers actually run ("io_uring" or "epoll" — the
  /// probe's verdict, not the option). Valid after start().
  const char* data_plane() const { return use_uring_ ? "io_uring" : "epoll"; }

  /// Route SIGTERM/SIGINT to a process-wide stop flag every running Server
  /// polls (the handler only stores to an atomic — async-signal-safe).
  static void install_signal_handlers();
  /// The process-wide flag, for tests and for main()'s exit message.
  static bool signal_stop_requested();
  static void reset_signal_stop_for_testing();

 private:
  struct Conn;
  struct Worker;

  void worker_main(unsigned global_index);
  void handle_readable(Worker& w, Conn& c);
  bool execute_batch(Worker& w, Conn& c);
  /// `allow_stream` permits SCANS to release+flush each chunk frame as soon
  /// as it is encoded (nothing ahead of it in c.out is waiting on a fence).
  void execute_one(Worker& w, Conn& c, const struct Request& req,
                   std::vector<std::uint8_t>& out, bool* mutated,
                   bool allow_stream);
  void flush_out(Worker& w, Conn& c);
  void close_conn(Worker& w, Conn& c);
  void drain_worker(Worker& w);
  // io_uring plane (docs/scan.md); only called when use_uring_ is set.
  void worker_main_uring(unsigned global_index);
  void drain_worker_uring(Worker& w);
  void uring_handle_cqe(Worker& w, std::uint64_t user_data, int res,
                        unsigned flags);
  void uring_arm_recv(Worker& w, Conn& c);
  void uring_flush(Worker& w, Conn& c);
  void uring_close(Worker& w, Conn& c);
  void uring_reap(Worker& w, Conn& c);
  /// Destroys reaped Conns; only called at top-of-loop points where no Conn
  /// reference is live up the stack.
  void uring_sweep_dead(Worker& w);
  /// Re-posts ASYNC_CANCELs that uring_close skipped on a full SQ.
  void uring_retry_cancels(Worker& w);
  /// Release every parked ack covered by the committer's progress and push
  /// the freed bytes out (eventfd wakeup path).
  void release_committed(Worker& w);
  GroupCommit* shard_gc(const Worker& w) const;
  void maybe_pin_to_shard(unsigned shard) const;
  std::string stats_json() const;

  std::vector<core::UPSkipList*> stores_;  // one per shard; non-owning
  ServerOptions opts_;
  std::vector<int> listen_fds_;            // one per shard
  std::vector<std::uint16_t> bound_ports_; // one per shard
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
  bool use_uring_ = false;  // decided once in start(); all workers agree
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Worker>> workers_;  // shard-major order
  std::vector<std::unique_ptr<GroupCommit>> gcs_;  // empty = per-batch fencing
  std::uint32_t window_us_ = 0;
  ServerStats stats_;
  /// Requests executed against each shard (wherever they arrived).
  std::unique_ptr<std::atomic<std::uint64_t>[]> shard_ops_;
};

}  // namespace upsl::server
