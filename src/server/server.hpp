// upsl-serve: a multi-threaded epoll TCP front-end over one UPSkipList.
//
// Threading model: N worker threads, each with its own epoll instance. The
// (non-blocking) listen socket is registered level-triggered in every
// worker's epoll set with EPOLLEXCLUSIVE, so the kernel wakes one worker per
// pending connection; the accepting worker owns the connection for its whole
// life — per-connection state is never shared between threads.
//
// Pipelining: a wakeup drains the socket, parses every complete frame that
// arrived, executes the whole batch back-to-back against the store, and only
// then writes the concatenated responses with one send(). Each mutating
// operation is individually durable before it returns (the store persists
// internally), and the server issues one extra pmem::fence() per batch that
// contained a mutation before any response byte leaves — acknowledgements
// are ordered after durability with one fence per batch, not one per op.
//
// Lifecycle: construct over an already-recovered store (the caller runs
// Pool::open + UPSkipList::open first — the listen socket must not exist
// before recovery has run), start(), then wait(). stop() — or a SIGTERM/
// SIGINT routed through install_signal_handlers() — triggers a graceful
// drain: the listen socket closes (no new connections), every worker
// executes the requests already buffered on its connections, flushes
// pending responses, fences, and exits. wait() returns once all workers are
// done.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/upskiplist.hpp"

namespace upsl::server {

class GroupCommit;

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = let the kernel pick an ephemeral port (query it via port()).
  std::uint16_t port = 0;
  unsigned workers = 4;
  /// ThreadRegistry slot of worker 0; workers bind first_thread_id..+workers.
  /// Keep distinct from the ids other threads in the process use, and below
  /// the store's Options::max_threads.
  unsigned first_thread_id = 1;
  /// Most frames executed per connection per wakeup; a connection with more
  /// buffered input is revisited before the next epoll_wait so one noisy
  /// pipeliner cannot starve its worker's other connections.
  unsigned max_batch = 64;
  /// Seconds a draining worker will wait for blocked response bytes.
  unsigned drain_timeout_sec = 5;
  /// Cross-connection group commit (docs/write-path.md): mutation batches
  /// from all connections within a commit window share one ack fence issued
  /// by a dedicated committer thread; responses park until the covering
  /// fence retires. UPSL_DISABLE_GROUP_COMMIT=1 overrides this to off.
  bool group_commit = true;
  /// How long the committer accumulates batches before fencing, in
  /// microseconds. UPSL_COMMIT_WINDOW_US overrides.
  std::uint32_t commit_window_us = 50;
};

/// Monotonic serving counters, exposed through the STATS command.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batch_fences{0};
  /// Mutation batches handed to the group committer (their fences are
  /// counted in pmem::Stats::group_commits, not batch_fences).
  std::atomic<std::uint64_t> group_commit_batches{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> removes{0};
  std::atomic<std::uint64_t> scans{0};
};

class Server {
 public:
  Server(core::UPSkipList& store, ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the workers. False (with errno intact) if the
  /// socket could not be set up; no threads are running then.
  bool start();

  /// Port actually bound (resolves port 0). Valid after start().
  std::uint16_t port() const { return bound_port_; }

  /// Request a graceful drain. Safe to call from any thread, repeatedly.
  void stop() { stop_.store(true, std::memory_order_release); }

  /// Blocks until every worker has drained and exited.
  void wait();

  bool running() const { return started_ && !stopped_; }

  const ServerStats& stats() const { return stats_; }

  /// True iff this server runs with the cross-connection group committer
  /// (option on and not killed by UPSL_DISABLE_GROUP_COMMIT). Valid after
  /// start().
  bool group_commit_enabled() const { return gc_ != nullptr; }

  /// Effective commit window (env override applied). Valid after start().
  std::uint32_t commit_window_us() const { return window_us_; }

  /// Route SIGTERM/SIGINT to a process-wide stop flag every running Server
  /// polls (the handler only stores to an atomic — async-signal-safe).
  static void install_signal_handlers();
  /// The process-wide flag, for tests and for main()'s exit message.
  static bool signal_stop_requested();
  static void reset_signal_stop_for_testing();

 private:
  struct Conn;
  struct Worker;

  void worker_main(unsigned index);
  void handle_readable(Worker& w, Conn& c);
  bool execute_batch(Worker& w, Conn& c);
  void execute_one(const struct Request& req, std::vector<std::uint8_t>& out,
                   bool* mutated);
  void flush_out(Worker& w, Conn& c);
  void close_conn(Worker& w, Conn& c);
  void drain_worker(Worker& w);
  /// Release every parked ack covered by the committer's progress and push
  /// the freed bytes out (eventfd wakeup path).
  void release_committed(Worker& w);
  std::string stats_json() const;

  core::UPSkipList& store_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<GroupCommit> gc_;  // null = per-batch fencing
  std::uint32_t window_us_ = 0;
  ServerStats stats_;
};

}  // namespace upsl::server
