// upsl-serve wire protocol: compact length-prefixed binary frames.
//
// Every frame, in either direction, is
//
//   [ u32 body_len (LE) ][ body: body_len bytes ]
//
// A request body is  [ u8 opcode ][ u8 pad x3 ][ opcode-specific payload ]
// A response body is [ u8 status ][ u8 pad x3 ][ opcode-specific payload ]
//
// Payload layouts (all integers little-endian):
//
//   GET     req: u64 key                 resp kOk: u64 value; kNotFound: empty
//   PUT     req: u64 key, u64 value     resp kOk: u64 old value (updated);
//                                            kCreated: empty (new key)
//   UPDATE  req: u64 key, u64 value     same as PUT (upsert; status tells
//                                            the caller which case happened)
//   REMOVE  req: u64 key                 resp kOk: u64 removed value;
//                                            kNotFound: empty
//   SCAN    req: u64 lo, u64 hi, u32 max resp kOk: u32 count,
//                                            count x (u64 key, u64 value)
//   SCANS   req: u64 lo, u64 hi,         resp: 1..N chunk frames, each
//                u32 max, u32 chunk           kOk: u32 count, u32 flags,
//                                             u64 resume_key, count x
//                                             (u64 key, u64 value).
//                                             flags bit0 set marks the final
//                                             frame of the response; on it,
//                                             resume_key 0 means [lo, hi] is
//                                             exhausted, nonzero means the
//                                             scan was truncated (per-request
//                                             cap) and a follow-up SCANS with
//                                             lo = resume_key continues
//                                             exactly where it stopped.
//                                             Non-final frames carry
//                                             resume_key 0. max caps total
//                                             entries for this request
//                                             (0 or > kMaxScanEntries =
//                                             kMaxScanEntries); chunk sizes
//                                             the individual frames (0 =
//                                             kDefaultScanChunk, clamped to
//                                             kMaxScanChunkEntries). See
//                                             docs/scan.md.
//   STATS   req: empty                   resp kOk: u32 len, len JSON bytes
//   PING    req: empty                   resp kOk: empty
//   VALIDATE req: empty                  resp kOk: u32 len, len JSON bytes
//                                             (structural check report);
//                                             kError: same blob, check threw
//   TOPOLOGY req: empty                  resp kOk: u32 shard_count,
//                                             u32 hash_kind,
//                                             shard_count x u32 port
//                                             (the durable shard map: key k
//                                             lives on shard
//                                             shard_of_key(k, shard_count),
//                                             reachable on the given port of
//                                             the same host; hash_kind names
//                                             the hash — see
//                                             common/shardmap.hpp)
//
// Detectable exactly-once extension (docs/detectability.md):
//
//   HELLO   req: u64 client_id           resp kOk: u64 session_epoch
//                                             (opens/reattaches the durable
//                                             session on the serving shard;
//                                             client_id 0 is invalid ->
//                                             kError)
//   DPUT    req: u64 seq, u64 key,       same responses as PUT; a replayed
//                u64 value                    seq is deduplicated and answers
//   DUPDATE req: u64 seq, u64 key,       with the original durable result
//                u64 value                    (kError empty = applied but the
//   DREMOVE req: u64 seq, u64 key        result aged out of the ring — only
//                                             possible when replaying beyond
//                                             the session's result window)
//   RESOLVE req: u64 client_id, u64 seq, resp kOk: u32 state, u32 has_prev,
//                u64 key                      u64 result. state: 0 = unknown
//                                             session, 1 = not applied,
//                                             2 = applied (result follows),
//                                             3 = applied, result unknown.
//                                             key routes the query to the
//                                             owning shard (0 = this shard).
//
// DPUT/DUPDATE/DREMOVE take the session the connection last opened with
// HELLO; issuing them before a HELLO is kError. Sequence numbers are chosen
// by the client, strictly increasing per session.
//
// Corruption-aware recovery extension (docs/integrity.md):
//
//   FSCK    req: empty                   resp kOk: JSON blob — the deep
//                                             integrity re-check
//                                             (verify_deep) merged across
//                                             every shard: checksum census,
//                                             quarantine counters, and the
//                                             explicitly-lost key ranges.
//                                             kOk means the check ran; read
//                                             "degraded" in the JSON for the
//                                             verdict. kError: the walk
//                                             itself failed (blob has the
//                                             error).
//
// Framing rules (enforced by the parser, tested in tests/server_test.cpp):
// a body length larger than kMaxBody, an unknown opcode, or a payload whose
// size does not match the opcode is a protocol violation — the server closes
// the connection without a response. A short read is simply "need more
// bytes"; the parser never reads past the bytes it was given.
//
// Responses carry no opcode: the protocol is strictly pipelined, responses
// are returned in request order, and the client interprets payloads by the
// order of the requests it sent.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace upsl::server {

/// Largest accepted frame body. Bounds per-connection buffering and makes
/// "length = 0xffffffff" attacks a close, not an allocation.
inline constexpr std::uint32_t kMaxBody = 1u << 20;

/// Cap on entries in one SCAN response so the reply always fits kMaxBody
/// (8-byte count header + 16 bytes per entry, with slack). Also the
/// per-request entry cap for SCANS — but there truncation is resumable via
/// the final frame's resume_key instead of silent.
inline constexpr std::uint32_t kMaxScanEntries = 60000;

/// Per-frame entry bounds for chunked SCANS responses. The max keeps one
/// chunk frame comfortably inside kMaxBody (20-byte header + 16 bytes per
/// entry = 512 KiB + 20 at the cap).
inline constexpr std::uint32_t kMaxScanChunkEntries = 32768;
inline constexpr std::uint32_t kDefaultScanChunk = 2048;

/// SCANS chunk-frame flags.
inline constexpr std::uint32_t kScanChunkFinal = 1u << 0;

using ScanEntryPair = std::pair<std::uint64_t, std::uint64_t>;

inline constexpr std::size_t kHeaderBytes = 4;  // the u32 length prefix
inline constexpr std::size_t kBodyPrefixBytes = 4;  // opcode/status + pad

enum class Opcode : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kUpdate = 3,
  kRemove = 4,
  kScan = 5,
  kStats = 6,
  kPing = 7,
  kValidate = 8,
  kTopology = 9,
  kHello = 10,
  kResolve = 11,
  kDPut = 12,
  kDUpdate = 13,
  kDRemove = 14,
  kFsck = 15,
  kScanStream = 16,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kCreated = 1,
  kNotFound = 2,
  kError = 3,
};

struct Request {
  Opcode op = Opcode::kPing;
  std::uint64_t key = 0;    // GET/PUT/UPDATE/REMOVE/D* key; SCAN lo; RESOLVE route
  std::uint64_t value = 0;  // PUT/UPDATE/DPUT/DUPDATE value; SCAN hi
  std::uint32_t limit = 0;  // SCAN/SCANS max entries
  std::uint64_t seq = 0;        // D* / RESOLVE sequence number
  std::uint64_t client_id = 0;  // HELLO / RESOLVE session identity
  // Appended last so existing positional aggregate initializers keep their
  // meaning.
  std::uint32_t chunk = 0;  // SCANS per-frame entry count (0 = default)
};

/// A parsed response: status plus the raw opcode-specific payload. Typed
/// extraction helpers below validate payload shape on the client side too.
struct Response {
  Status status = Status::kError;
  std::vector<std::uint8_t> payload;

  bool value_u64(std::uint64_t* out) const {
    if (payload.size() != 8) return false;
    std::memcpy(out, payload.data(), 8);
    return true;
  }

  bool scan_entries(std::vector<std::pair<std::uint64_t, std::uint64_t>>* out)
      const {
    if (payload.size() < 4) return false;
    std::uint32_t count = 0;
    std::memcpy(&count, payload.data(), 4);
    if (payload.size() != 4 + 16ull * count) return false;
    out->clear();
    out->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint64_t k = 0;
      std::uint64_t v = 0;
      std::memcpy(&k, payload.data() + 4 + 16ull * i, 8);
      std::memcpy(&v, payload.data() + 4 + 16ull * i + 8, 8);
      out->emplace_back(k, v);
    }
    return true;
  }

  /// One SCANS chunk frame, decoded.
  struct ScanChunk {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    bool final_chunk = false;
    std::uint64_t resume_key = 0;  // final frame only: 0 = exhausted
  };

  bool scan_chunk(ScanChunk* out) const {
    if (payload.size() < 16) return false;
    std::uint32_t count = 0;
    std::uint32_t flags = 0;
    std::memcpy(&count, payload.data(), 4);
    std::memcpy(&flags, payload.data() + 4, 4);
    std::memcpy(&out->resume_key, payload.data() + 8, 8);
    if (payload.size() != 16 + 16ull * count) return false;
    out->final_chunk = (flags & kScanChunkFinal) != 0;
    out->entries.clear();
    out->entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint64_t k = 0;
      std::uint64_t v = 0;
      std::memcpy(&k, payload.data() + 16 + 16ull * i, 8);
      std::memcpy(&v, payload.data() + 16 + 16ull * i + 8, 8);
      out->entries.emplace_back(k, v);
    }
    return true;
  }

  bool blob(std::string* out) const {
    if (payload.size() < 4) return false;
    std::uint32_t len = 0;
    std::memcpy(&len, payload.data(), 4);
    if (payload.size() != 4ull + len) return false;
    out->assign(reinterpret_cast<const char*>(payload.data()) + 4, len);
    return true;
  }

  /// TOPOLOGY payload: the durable shard map plus where each shard listens.
  struct Topology {
    std::uint32_t shard_count = 0;
    std::uint32_t hash_kind = 0;
    std::vector<std::uint16_t> ports;  // one per shard, same host
  };

  /// RESOLVE payload: the session table's answer for one (client_id, seq).
  struct Resolve {
    std::uint32_t state = 0;  // detect::ResolveResult::State numeric values
    std::uint32_t has_previous = 0;
    std::uint64_t result = 0;
  };

  bool resolve(Resolve* out) const {
    if (payload.size() != 16) return false;
    std::memcpy(&out->state, payload.data(), 4);
    std::memcpy(&out->has_previous, payload.data() + 4, 4);
    std::memcpy(&out->result, payload.data() + 8, 8);
    return true;
  }

  bool topology(Topology* out) const {
    if (payload.size() < 8) return false;
    std::uint32_t count = 0;
    std::memcpy(&count, payload.data(), 4);
    std::memcpy(&out->hash_kind, payload.data() + 4, 4);
    if (count == 0 || payload.size() != 8 + 4ull * count) return false;
    out->shard_count = count;
    out->ports.clear();
    out->ports.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t port = 0;
      std::memcpy(&port, payload.data() + 8 + 4ull * i, 4);
      if (port > 0xffff) return false;
      out->ports.push_back(static_cast<std::uint16_t>(port));
    }
    return true;
  }
};

enum class ParseResult {
  kNeedMore,  // buffer holds a prefix of a valid frame; read more bytes
  kOk,        // one frame decoded; *consumed bytes were used
  kBad,       // protocol violation; close the connection
};

// ---- little-endian scribblers ---------------------------------------------

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

/// Bytes of opcode-specific request payload, or -1 for an unknown opcode.
inline int request_payload_bytes(Opcode op) {
  switch (op) {
    case Opcode::kGet:
    case Opcode::kRemove:
      return 8;
    case Opcode::kPut:
    case Opcode::kUpdate:
      return 16;
    case Opcode::kScan:
      return 20;
    case Opcode::kScanStream:
      return 24;
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kValidate:
    case Opcode::kTopology:
    case Opcode::kFsck:
      return 0;
    case Opcode::kHello:
      return 8;
    case Opcode::kResolve:
      return 24;
    case Opcode::kDPut:
    case Opcode::kDUpdate:
      return 24;
    case Opcode::kDRemove:
      return 16;
  }
  return -1;
}

// ---- request codec --------------------------------------------------------

inline void encode_request(const Request& req, std::vector<std::uint8_t>& out) {
  const int payload = request_payload_bytes(req.op);
  put_u32(out, static_cast<std::uint32_t>(kBodyPrefixBytes + payload));
  out.push_back(static_cast<std::uint8_t>(req.op));
  out.insert(out.end(), 3, 0);
  switch (req.op) {
    case Opcode::kGet:
    case Opcode::kRemove:
      put_u64(out, req.key);
      break;
    case Opcode::kPut:
    case Opcode::kUpdate:
      put_u64(out, req.key);
      put_u64(out, req.value);
      break;
    case Opcode::kScan:
      put_u64(out, req.key);
      put_u64(out, req.value);
      put_u32(out, req.limit);
      break;
    case Opcode::kScanStream:
      put_u64(out, req.key);
      put_u64(out, req.value);
      put_u32(out, req.limit);
      put_u32(out, req.chunk);
      break;
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kValidate:
    case Opcode::kTopology:
    case Opcode::kFsck:
      break;
    case Opcode::kHello:
      put_u64(out, req.client_id);
      break;
    case Opcode::kResolve:
      put_u64(out, req.client_id);
      put_u64(out, req.seq);
      put_u64(out, req.key);
      break;
    case Opcode::kDPut:
    case Opcode::kDUpdate:
      put_u64(out, req.seq);
      put_u64(out, req.key);
      put_u64(out, req.value);
      break;
    case Opcode::kDRemove:
      put_u64(out, req.seq);
      put_u64(out, req.key);
      break;
  }
}

inline ParseResult parse_request(const std::uint8_t* data, std::size_t n,
                                 Request* out, std::size_t* consumed) {
  if (n < kHeaderBytes) return ParseResult::kNeedMore;
  const std::uint32_t body = get_u32(data);
  if (body > kMaxBody || body < kBodyPrefixBytes) return ParseResult::kBad;
  if (n < kHeaderBytes + body) return ParseResult::kNeedMore;
  const std::uint8_t* p = data + kHeaderBytes;
  const auto op = static_cast<Opcode>(p[0]);
  const int payload = request_payload_bytes(op);
  if (payload < 0) return ParseResult::kBad;
  if (body != kBodyPrefixBytes + static_cast<std::uint32_t>(payload))
    return ParseResult::kBad;
  p += kBodyPrefixBytes;
  out->op = op;
  out->key = 0;
  out->value = 0;
  out->limit = 0;
  out->chunk = 0;
  out->seq = 0;
  out->client_id = 0;
  switch (op) {
    case Opcode::kGet:
    case Opcode::kRemove:
      out->key = get_u64(p);
      break;
    case Opcode::kPut:
    case Opcode::kUpdate:
      out->key = get_u64(p);
      out->value = get_u64(p + 8);
      break;
    case Opcode::kScan:
      out->key = get_u64(p);
      out->value = get_u64(p + 8);
      out->limit = get_u32(p + 16);
      break;
    case Opcode::kScanStream:
      out->key = get_u64(p);
      out->value = get_u64(p + 8);
      out->limit = get_u32(p + 16);
      out->chunk = get_u32(p + 20);
      break;
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kValidate:
    case Opcode::kTopology:
    case Opcode::kFsck:
      break;
    case Opcode::kHello:
      out->client_id = get_u64(p);
      break;
    case Opcode::kResolve:
      out->client_id = get_u64(p);
      out->seq = get_u64(p + 8);
      out->key = get_u64(p + 16);
      break;
    case Opcode::kDPut:
    case Opcode::kDUpdate:
      out->seq = get_u64(p);
      out->key = get_u64(p + 8);
      out->value = get_u64(p + 16);
      break;
    case Opcode::kDRemove:
      out->seq = get_u64(p);
      out->key = get_u64(p + 8);
      break;
  }
  *consumed = kHeaderBytes + body;
  return ParseResult::kOk;
}

// ---- response codec -------------------------------------------------------

inline void encode_response_empty(Status st, std::vector<std::uint8_t>& out) {
  put_u32(out, kBodyPrefixBytes);
  out.push_back(static_cast<std::uint8_t>(st));
  out.insert(out.end(), 3, 0);
}

inline void encode_response_value(Status st, std::uint64_t value,
                                  std::vector<std::uint8_t>& out) {
  put_u32(out, kBodyPrefixBytes + 8);
  out.push_back(static_cast<std::uint8_t>(st));
  out.insert(out.end(), 3, 0);
  put_u64(out, value);
}

inline void encode_response_scan(
    const std::pair<std::uint64_t, std::uint64_t>* entries, std::uint32_t count,
    std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kBodyPrefixBytes + 4 + 16ull * count));
  out.push_back(static_cast<std::uint8_t>(Status::kOk));
  out.insert(out.end(), 3, 0);
  put_u32(out, count);
  for (std::uint32_t i = 0; i < count; ++i) {
    put_u64(out, entries[i].first);
    put_u64(out, entries[i].second);
  }
}

/// One SCANS chunk frame. `final_chunk` sets kScanChunkFinal; `resume_key`
/// is only meaningful on the final frame (0 = range exhausted).
inline void encode_response_scan_chunk(
    const ScanEntryPair* entries, std::uint32_t count, bool final_chunk,
    std::uint64_t resume_key, std::vector<std::uint8_t>& out) {
  put_u32(out,
          static_cast<std::uint32_t>(kBodyPrefixBytes + 16 + 16ull * count));
  out.push_back(static_cast<std::uint8_t>(Status::kOk));
  out.insert(out.end(), 3, 0);
  put_u32(out, count);
  put_u32(out, final_chunk ? kScanChunkFinal : 0u);
  put_u64(out, final_chunk ? resume_key : 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    put_u64(out, entries[i].first);
    put_u64(out, entries[i].second);
  }
}

inline void encode_response_topology(std::uint32_t shard_count,
                                     std::uint32_t hash_kind,
                                     const std::uint16_t* ports,
                                     std::vector<std::uint8_t>& out) {
  put_u32(out,
          static_cast<std::uint32_t>(kBodyPrefixBytes + 8 + 4ull * shard_count));
  out.push_back(static_cast<std::uint8_t>(Status::kOk));
  out.insert(out.end(), 3, 0);
  put_u32(out, shard_count);
  put_u32(out, hash_kind);
  for (std::uint32_t i = 0; i < shard_count; ++i)
    put_u32(out, static_cast<std::uint32_t>(ports[i]));
}

inline void encode_response_resolve(std::uint32_t state,
                                    std::uint32_t has_previous,
                                    std::uint64_t result,
                                    std::vector<std::uint8_t>& out) {
  put_u32(out, kBodyPrefixBytes + 16);
  out.push_back(static_cast<std::uint8_t>(Status::kOk));
  out.insert(out.end(), 3, 0);
  put_u32(out, state);
  put_u32(out, has_previous);
  put_u64(out, result);
}

inline void encode_response_blob(Status st, const std::string& blob,
                                 std::vector<std::uint8_t>& out) {
  const auto len = static_cast<std::uint32_t>(blob.size());
  put_u32(out, static_cast<std::uint32_t>(kBodyPrefixBytes + 4 + len));
  out.push_back(static_cast<std::uint8_t>(st));
  out.insert(out.end(), 3, 0);
  put_u32(out, len);
  out.insert(out.end(), blob.begin(), blob.end());
}

inline ParseResult parse_response(const std::uint8_t* data, std::size_t n,
                                  Response* out, std::size_t* consumed) {
  if (n < kHeaderBytes) return ParseResult::kNeedMore;
  const std::uint32_t body = get_u32(data);
  if (body > kMaxBody || body < kBodyPrefixBytes) return ParseResult::kBad;
  if (n < kHeaderBytes + body) return ParseResult::kNeedMore;
  const std::uint8_t* p = data + kHeaderBytes;
  if (p[0] > static_cast<std::uint8_t>(Status::kError)) return ParseResult::kBad;
  out->status = static_cast<Status>(p[0]);
  out->payload.assign(p + kBodyPrefixBytes, p + body);
  *consumed = kHeaderBytes + body;
  return ParseResult::kOk;
}

}  // namespace upsl::server
