// upsl-serve — the network front-end binary.
//
//   upsl-serve [--pool PATH] [--host H] [--port P] [--workers N]
//              [--pool-mb MB] [--keys-per-node K] [--shards S]
//
// Sharding: --shards S (or UPSL_SHARDS; default 1) partitions the key space
// across S independent stores. Shard 0 keeps the exact legacy pool path, so
// S=1 is bit-compatible with a pre-sharding deployment; S>1 uses
// "<pool>.shard<i>" per member and listens on port..port+S-1. A reopen
// validates the durable topology recorded in every shard's root — changing
// S over an existing store is refused rather than mis-routed.
//
// Startup order is the recovery contract made visible: open (or create) the
// pools, run ShardSet::open — which recovers every shard in parallel, bumps
// each failure-free epoch and arms the deferred repair/allocator-recovery
// machinery — and only then bind the listen sockets. A client that can
// connect is therefore guaranteed to be talking to a recovered store.
//
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, execute the
// requests already received, flush their responses, fence, exit 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/thread_registry.hpp"
#include "core/shard_set.hpp"
#include "core/upskiplist.hpp"
#include "pmem/ack_batch.hpp"
#include "server/group_commit.hpp"
#include "server/server.hpp"

namespace {

struct Args {
  std::string pool = "/tmp/upsl_serve.pool";
  std::string host = "127.0.0.1";
  std::uint16_t port = 7707;
  unsigned workers = 4;
  std::size_t pool_mb = 512;
  std::uint32_t keys_per_node = 64;
  std::uint32_t shards = 0;  // 0 = UPSL_SHARDS env, else 1
};

std::uint32_t shards_from_env() {
  if (const char* v = std::getenv("UPSL_SHARDS")) {
    const unsigned long n = std::strtoul(v, nullptr, 10);
    if (n >= 1 && n <= 64) return static_cast<std::uint32_t>(n);
  }
  return 1;
}

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--pool" && (v = next()) != nullptr) {
      a->pool = v;
    } else if (flag == "--host" && (v = next()) != nullptr) {
      a->host = v;
    } else if (flag == "--port" && (v = next()) != nullptr) {
      a->port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--workers" && (v = next()) != nullptr) {
      a->workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--pool-mb" && (v = next()) != nullptr) {
      a->pool_mb = std::strtoull(v, nullptr, 10);
    } else if (flag == "--keys-per-node" && (v = next()) != nullptr) {
      a->keys_per_node = static_cast<std::uint32_t>(
          std::strtoul(v, nullptr, 10));
    } else if (flag == "--shards" && (v = next()) != nullptr) {
      a->shards = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: upsl-serve [--pool PATH] [--host H] [--port P] "
                   "[--workers N] [--pool-mb MB] [--keys-per-node K] "
                   "[--shards S]\n");
      return false;
    }
  }
  if (a->shards == 0) a->shards = shards_from_env();
  return a->workers > 0 && a->shards >= 1 && a->shards <= 64;
}

/// Shard i's pool file: the bare legacy path for a 1-shard deployment (so
/// existing stores keep working), "<pool>.shard<i>" otherwise.
std::string shard_pool_path(const Args& a, std::uint32_t i) {
  if (a.shards == 1) return a.pool;
  return a.pool + ".shard" + std::to_string(i);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upsl;
  Args args;
  if (!parse_args(argc, argv, &args)) return 2;

  ThreadRegistry::instance().bind(0);

  core::Options opts;
  opts.keys_per_node = args.keys_per_node;
  // Any worker may execute a routed op against any shard, so every shard
  // must have arena room for every worker id (plus main and committers).
  opts.max_threads = args.shards * args.workers + 4;
  opts.chunk.chunk_size = 1 << 20;
  // --pool-mb is the TOTAL data budget: split it across the shards.
  const std::size_t budget = (args.pool_mb << 20) / args.shards;
  opts.chunk.max_chunks = static_cast<std::uint32_t>(
      std::max<std::size_t>(32, budget / opts.chunk.chunk_size));
  const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                std::size_t{opts.chunk.max_chunks} *
                                    opts.chunk.chunk_size;

  // Phase 1: open the pools and recover BEFORE any socket exists. All
  // shards must agree on existence — a half-present set is a config error.
  std::vector<std::unique_ptr<pmem::Pool>> pools;
  std::vector<std::vector<pmem::Pool*>> shard_pools;
  unsigned existing = 0;
  for (std::uint32_t i = 0; i < args.shards; ++i)
    if (std::filesystem::exists(shard_pool_path(args, i))) ++existing;
  if (existing != 0 && existing != args.shards) {
    std::fprintf(stderr,
                 "upsl-serve: %u of %u shard pools exist; refusing a "
                 "partial shard set\n",
                 existing, args.shards);
    return 1;
  }

  const bool create = existing == 0;
  for (std::uint32_t i = 0; i < args.shards; ++i) {
    const std::string path = shard_pool_path(args, i);
    pools.push_back(create ? pmem::Pool::create(path, i, pool_size)
                           : pmem::Pool::open(path, i));
    shard_pools.push_back({pools.back().get()});
  }

  std::unique_ptr<core::ShardSet> set;
  try {
    set = create ? core::ShardSet::create(std::move(shard_pools), opts)
                 : core::ShardSet::open(std::move(shard_pools));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "upsl-serve: cannot open shard set: %s\n", e.what());
    return 1;
  }

  if (create) {
    std::printf("upsl-serve: created %s (%u shard%s x %zu MiB)\n",
                args.pool.c_str(), args.shards, args.shards == 1 ? "" : "s",
                pool_size >> 20);
  } else {
    std::printf("upsl-serve: recovered %s (%u shard%s, parallel open)\n",
                args.pool.c_str(), args.shards, args.shards == 1 ? "" : "s");
    // Recovery-before-bind includes each shard's search-layer rebuild:
    // report the per-shard costs so restart-latency regressions (and shard
    // imbalance) are visible in the startup log.
    for (std::uint32_t i = 0; i < args.shards; ++i) {
      core::UPSkipList& s = set->shard(i);
      if (s.dram_index_enabled()) {
        std::printf(
            "upsl-serve: shard %u: epoch %llu, open %.3f ms, dram index "
            "rebuilt (%zu entries, %.3f ms)\n",
            i, static_cast<unsigned long long>(s.epoch()),
            static_cast<double>(set->open_ns(i)) / 1e6, s.index_entries(),
            static_cast<double>(s.last_index_rebuild_ns()) / 1e6);
      } else {
        std::printf(
            "upsl-serve: shard %u: epoch %llu, open %.3f ms, dram index "
            "disabled (persistent towers)\n",
            i, static_cast<unsigned long long>(s.epoch()),
            static_cast<double>(set->open_ns(i)) / 1e6);
      }
    }
  }

  // Degraded-mode startup report (docs/integrity.md): merge the open-time
  // integrity verdicts across shards. A degraded store still serves — the
  // quarantine machinery bridged around the damage — but the operator must
  // see what was lost before the first client connects.
  {
    core::IntegrityReport integ;
    for (std::uint32_t i = 0; i < args.shards; ++i)
      integ.merge(set->shard(i).integrity());
    if (integ.degraded()) {
      std::fprintf(stderr,
                   "upsl-serve: DEGRADED: corruption quarantined during "
                   "recovery; serving around the damage\n"
                   "upsl-serve: integrity: %s\n",
                   integ.to_json().c_str());
    }
  }

  // Phase 2: serve.
  server::ServerOptions sopts;
  sopts.host = args.host;
  sopts.port = args.port;
  sopts.workers = args.workers;
  server::Server srv(*set, sopts);
  server::Server::install_signal_handlers();
  if (!srv.start()) {
    std::fprintf(stderr, "upsl-serve: cannot listen on %s:%u: %s\n",
                 args.host.c_str(), args.port, std::strerror(errno));
    return 1;
  }
  if (args.shards == 1) {
    std::printf("upsl-serve: listening on %s:%u (%u workers)\n",
                args.host.c_str(), srv.port(), args.workers);
  } else {
    std::printf(
        "upsl-serve: listening on %s:%u-%u (%u shards x %u workers)\n",
        args.host.c_str(), srv.port(0), srv.port(args.shards - 1),
        args.shards, args.workers);
  }
  // Data-plane report (docs/scan.md): the probe's verdict, not the option —
  // "epoll" here on a kernel that refused the ring or under the kill switch.
  std::printf("upsl-serve: data plane %s\n", srv.data_plane());
  // Write-path report (docs/write-path.md): which ordering mode the store
  // runs with and whether acks share fences across connections.
  std::printf("upsl-serve: mod write path %s, group commit %s (window %u us)\n",
              pmem::mod_writes_enabled() ? "on" : "off",
              srv.group_commit_enabled() ? "on" : "off",
              srv.commit_window_us());
  std::fflush(stdout);

  srv.wait();  // returns after a signal-triggered drain

  const auto& st = srv.stats();
  std::printf("upsl-serve: drained (%llu frames, %llu batches, %llu conns, "
              "%llu cross-shard ops); bye\n",
              static_cast<unsigned long long>(st.frames.load()),
              static_cast<unsigned long long>(st.batches.load()),
              static_cast<unsigned long long>(st.connections_accepted.load()),
              static_cast<unsigned long long>(st.cross_shard_ops.load()));
  const auto pm = pmem::Stats::instance().snapshot();
  if (pm.scan_chunks > 0) {
    std::printf("upsl-serve: scans streamed %llu chunks / %llu entries "
                "(%llu nodes visited, %llu simd filters)\n",
                static_cast<unsigned long long>(pm.scan_chunks),
                static_cast<unsigned long long>(pm.scan_entries_returned),
                static_cast<unsigned long long>(pm.scan_nodes_visited),
                static_cast<unsigned long long>(pm.simd_scan_filters));
  }
  if (pm.group_commits > 0) {
    std::printf("upsl-serve: %llu group commits covered %llu mutations "
                "(%.3f fences/mutation)\n",
                static_cast<unsigned long long>(pm.group_commits),
                static_cast<unsigned long long>(pm.group_commit_mutations),
                pm.fences_per_mutation());
  }
  return 0;
}
