// upsl-serve — the network front-end binary.
//
//   upsl-serve [--pool PATH] [--host H] [--port P] [--workers N]
//              [--pool-mb MB] [--keys-per-node K]
//
// Startup order is the recovery contract made visible: open (or create) the
// pool, run UPSkipList::open — which bumps the failure-free epoch and arms
// the deferred repair/allocator-recovery machinery — and only then bind the
// listen socket. A client that can connect is therefore guaranteed to be
// talking to a recovered store.
//
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, execute the
// requests already received, flush their responses, fence, exit 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/thread_registry.hpp"
#include "core/upskiplist.hpp"
#include "pmem/ack_batch.hpp"
#include "server/group_commit.hpp"
#include "server/server.hpp"

namespace {

struct Args {
  std::string pool = "/tmp/upsl_serve.pool";
  std::string host = "127.0.0.1";
  std::uint16_t port = 7707;
  unsigned workers = 4;
  std::size_t pool_mb = 512;
  std::uint32_t keys_per_node = 64;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--pool" && (v = next()) != nullptr) {
      a->pool = v;
    } else if (flag == "--host" && (v = next()) != nullptr) {
      a->host = v;
    } else if (flag == "--port" && (v = next()) != nullptr) {
      a->port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--workers" && (v = next()) != nullptr) {
      a->workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--pool-mb" && (v = next()) != nullptr) {
      a->pool_mb = std::strtoull(v, nullptr, 10);
    } else if (flag == "--keys-per-node" && (v = next()) != nullptr) {
      a->keys_per_node = static_cast<std::uint32_t>(
          std::strtoul(v, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: upsl-serve [--pool PATH] [--host H] [--port P] "
                   "[--workers N] [--pool-mb MB] [--keys-per-node K]\n");
      return false;
    }
  }
  return a->workers > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upsl;
  Args args;
  if (!parse_args(argc, argv, &args)) return 2;

  ThreadRegistry::instance().bind(0);

  core::Options opts;
  opts.keys_per_node = args.keys_per_node;
  opts.max_threads = args.workers + 4;
  opts.chunk.chunk_size = 1 << 20;
  const std::size_t budget = args.pool_mb << 20;
  opts.chunk.max_chunks = static_cast<std::uint32_t>(
      std::max<std::size_t>(32, budget / opts.chunk.chunk_size));
  const std::size_t pool_size = (8ull << 20) + opts.chunk.root_size +
                                std::size_t{opts.chunk.max_chunks} *
                                    opts.chunk.chunk_size;

  // Phase 1: open the pool and recover BEFORE any socket exists.
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<core::UPSkipList> store;
  if (std::filesystem::exists(args.pool)) {
    pool = pmem::Pool::open(args.pool, 0);
    store = core::UPSkipList::open({pool.get()});
    std::printf("upsl-serve: recovered %s (epoch %llu)\n", args.pool.c_str(),
                static_cast<unsigned long long>(store->epoch()));
    // Recovery-before-bind includes the search-layer rebuild: report its
    // cost so restart-latency regressions are visible in the startup log.
    if (store->dram_index_enabled()) {
      std::printf("upsl-serve: dram index rebuilt (%zu entries, %.3f ms)\n",
                  store->index_entries(),
                  static_cast<double>(store->last_index_rebuild_ns()) / 1e6);
    } else {
      std::printf("upsl-serve: dram index disabled (persistent towers)\n");
    }
  } else {
    pool = pmem::Pool::create(args.pool, 0, pool_size);
    store = core::UPSkipList::create({pool.get()}, opts);
    std::printf("upsl-serve: created %s (%zu MiB)\n", args.pool.c_str(),
                pool_size >> 20);
  }

  // Phase 2: serve.
  server::ServerOptions sopts;
  sopts.host = args.host;
  sopts.port = args.port;
  sopts.workers = args.workers;
  server::Server srv(*store, sopts);
  server::Server::install_signal_handlers();
  if (!srv.start()) {
    std::fprintf(stderr, "upsl-serve: cannot listen on %s:%u: %s\n",
                 args.host.c_str(), args.port, std::strerror(errno));
    return 1;
  }
  std::printf("upsl-serve: listening on %s:%u (%u workers)\n",
              args.host.c_str(), srv.port(), args.workers);
  // Write-path report (docs/write-path.md): which ordering mode the store
  // runs with and whether acks share fences across connections.
  std::printf("upsl-serve: mod write path %s, group commit %s (window %u us)\n",
              pmem::mod_writes_enabled() ? "on" : "off",
              srv.group_commit_enabled() ? "on" : "off",
              srv.commit_window_us());
  std::fflush(stdout);

  srv.wait();  // returns after a signal-triggered drain

  const auto& st = srv.stats();
  std::printf("upsl-serve: drained (%llu frames, %llu batches, %llu conns); "
              "bye\n",
              static_cast<unsigned long long>(st.frames.load()),
              static_cast<unsigned long long>(st.batches.load()),
              static_cast<unsigned long long>(st.connections_accepted.load()));
  const auto pm = pmem::Stats::instance().snapshot();
  if (pm.group_commits > 0) {
    std::printf("upsl-serve: %llu group commits covered %llu mutations "
                "(%.3f fences/mutation)\n",
                static_cast<unsigned long long>(pm.group_commits),
                static_cast<unsigned long long>(pm.group_commit_mutations),
                pm.fences_per_mutation());
  }
  return 0;
}
