// Blocking client for the upsl-serve wire protocol (header-only).
//
// Two usage styles:
//   * one-shot calls (get/put/remove/scan/stats/ping) — one request frame
//     out, one response frame in;
//   * explicit pipelining — queue() any number of requests, then flush()
//     writes them as one contiguous byte stream and reads exactly that many
//     responses back, in order. This is what bench_server and the batched
//     CLI paths use; the server executes such a burst as one batch with a
//     single ack fence.
//
// All methods throw std::runtime_error on transport errors (connection
// refused/reset, short reads, malformed responses); kNotFound is not an
// error, it is a result.
//
// Against a sharded server, a plain Client pointed at any shard's port still
// works (the server routes in-process); ShardedClient below fetches the
// shard map once via TOPOLOGY and routes each key to its owning shard
// locally — saving the cross-shard hop — while pipelining per shard and
// reassembling responses in submission order.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/shardmap.hpp"
#include "server/protocol.hpp"

namespace upsl::server {

/// A dropped connection mid-pipeline, with the precise split the resolve
/// path needs: `acked` responses were fully received (those ops are durable
/// and their results delivered), the remaining `unresolved` requests have no
/// response — each may or may not have been applied. Client::unresolved_ops()
/// returns exactly those, in order, and resolve_unresolved() answers them
/// through the session table. Subclasses std::runtime_error so legacy
/// catch sites keep working.
struct PipelineError : std::runtime_error {
  std::size_t acked;
  std::size_t unresolved;
  PipelineError(const std::string& what, std::size_t acked_in,
                std::size_t unresolved_in)
      : std::runtime_error(what + " (" + std::to_string(acked_in) +
                           " acked, " + std::to_string(unresolved_in) +
                           " unresolved)"),
        acked(acked_in),
        unresolved(unresolved_in) {}
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  /// Moves the socket AND the whole session state — identity, sequence
  /// counter, queued/unresolved ops. Leaving any of those behind would let
  /// the moved-to client restamp already-recorded seqs, which the server
  /// dedups into stale answers instead of applying fresh mutations.
  Client(Client&& other) noexcept
      : fd_(other.fd_),
        sendbuf_(std::move(other.sendbuf_)),
        queued_(other.queued_),
        recvbuf_(std::move(other.recvbuf_)),
        client_id_(other.client_id_),
        seq_(other.seq_),
        inflight_(std::move(other.inflight_)),
        unresolved_(std::move(other.unresolved_)) {
    other.fd_ = -1;
    other.queued_ = 0;
    other.client_id_ = 0;
    other.seq_ = 0;
  }

  /// Connects (IPv4). Returns false on failure, errno intact.
  bool connect(const std::string& host, std::uint16_t port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  /// Closes the socket and drops the unsent queue. Session identity, the
  /// sequence counter, and any unresolved ops from a failed flush survive —
  /// they are exactly what reconnect-and-resolve needs.
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    sendbuf_.clear();
    queued_ = 0;
    recvbuf_.clear();
    inflight_.clear();
  }

  // ---- pipelining ---------------------------------------------------------

  /// One request queued in the current pipeline, as remembered for the
  /// resolve path. Detectable ops carry their stamped seq; plain ops are
  /// remembered too (to keep the acked/unresolved split exact) but cannot
  /// be resolved after a drop.
  struct QueuedOp {
    Opcode op = Opcode::kPing;
    bool detectable = false;
    std::uint64_t seq = 0;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
  };

  void queue(const Request& req) {
    encode_request(req, sendbuf_);
    ++queued_;
    inflight_.push_back(QueuedOp{req.op, false, req.seq, req.key, req.value});
  }

  std::size_t queued() const { return queued_; }

  /// Sends every queued request, reads exactly as many responses. Clears the
  /// queue. A transport or framing failure throws PipelineError carrying the
  /// exact acked/unresolved split; the responses received before the failure
  /// are left in *out, and unresolved_ops() returns the rest of the pipeline.
  void flush(std::vector<Response>* out) {
    const std::size_t n = queued_;
    out->clear();
    out->reserve(n);
    try {
      send_all(sendbuf_.data(), sendbuf_.size());
    } catch (const std::runtime_error& e) {
      fail_pipeline(e.what(), 0, n);
    }
    sendbuf_.clear();
    queued_ = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Response resp;
      try {
        read_response(&resp);
      } catch (const std::runtime_error& e) {
        fail_pipeline(e.what(), i, n);
      }
      out->push_back(std::move(resp));
    }
    inflight_.clear();
  }

  struct PutResult {
    bool created = false;
    std::uint64_t old_value = 0;  // valid iff !created
  };

  // ---- detectable sessions (docs/detectability.md) ------------------------

  /// Opens (or reattaches) the durable session for `client_id` on this
  /// connection and returns its claim epoch. A new identity resets the
  /// sequence counter and forgets prior unresolved ops; re-HELLOing the
  /// same identity after a reconnect keeps both, so the resolve path works.
  std::uint64_t hello(std::uint64_t client_id) {
    const Response r = roundtrip({Opcode::kHello, 0, 0, 0, 0, client_id});
    expect_ok(r, "HELLO");
    if (client_id != client_id_) {
      seq_ = 0;
      unresolved_.clear();
    }
    client_id_ = client_id;
    return extract_u64(r, "HELLO");
  }

  std::uint64_t session_client_id() const { return client_id_; }
  std::uint64_t last_issued_seq() const { return seq_; }

  /// Queue detectable mutations with automatic sequence stamping. Requires
  /// a prior hello(). Keep no more than SessionTable::kRingSize (8) of
  /// these un-acked per session, or a replayed op's original result may age
  /// out of the durable result ring.
  void queue_dput(std::uint64_t key, std::uint64_t value) {
    queue_detect({Opcode::kDPut, key, value, 0, ++seq_, 0});
  }
  void queue_dupdate(std::uint64_t key, std::uint64_t value) {
    queue_detect({Opcode::kDUpdate, key, value, 0, ++seq_, 0});
  }
  void queue_dremove(std::uint64_t key) {
    queue_detect({Opcode::kDRemove, key, 0, 0, ++seq_, 0});
  }

  /// Replays an op from unresolved_ops()/resolve_unresolved() with its
  /// ORIGINAL seq: if it landed before the drop after all, the server
  /// deduplicates and answers with the original durable result.
  void requeue(const QueuedOp& op) {
    queue_detect({op.op, op.key, op.value, 0, op.seq, 0});
  }

  /// One-shot detectable upsert; exactly-once under replay.
  PutResult dput(std::uint64_t key, std::uint64_t value) {
    queue_dput(key, value);
    std::vector<Response> r;
    flush(&r);
    if (r[0].status == Status::kCreated) return {true, 0};
    expect_ok(r[0], "DPUT");
    return {false, extract_u64(r[0], "DPUT")};
  }

  /// One-shot detectable remove; exactly-once under replay.
  std::optional<std::uint64_t> dremove(std::uint64_t key) {
    queue_dremove(key);
    std::vector<Response> r;
    flush(&r);
    if (r[0].status == Status::kNotFound) return std::nullopt;
    expect_ok(r[0], "DREMOVE");
    return extract_u64(r[0], "DREMOVE");
  }

  /// Queries the durable result slot for one (client_id, seq); `key` routes
  /// to the owning shard (0 = the connected shard).
  Response::Resolve resolve(std::uint64_t client_id, std::uint64_t seq,
                            std::uint64_t key = 0) {
    Request req{Opcode::kResolve, key, 0, 0, seq, client_id};
    const Response r = roundtrip(req);
    expect_ok(r, "RESOLVE");
    Response::Resolve res;
    if (!r.resolve(&res))
      throw std::runtime_error("upsl client: malformed RESOLVE payload");
    return res;
  }

  /// The pipeline tail a failed flush() left without responses, in send
  /// order. Valid until the next flush()/resolve_unresolved().
  const std::vector<QueuedOp>& unresolved_ops() const { return unresolved_; }

  /// The answer for one formerly-unresolved op.
  struct ResolvedOp {
    QueuedOp op;
    bool resolvable = false;   // false: plain op, no durable identity
    Response::Resolve answer;  // valid iff resolvable
  };

  /// Reconnect-and-resolve: queries the session table for every op the last
  /// failed flush() left unresolved, in order, and consumes the list. Call
  /// after connect() + hello(same client_id). Detectable ops get a
  /// definitive applied / not-applied answer with the original result;
  /// plain ops come back with resolvable=false (their fate is unknowable —
  /// that is what the detectable variants exist for).
  std::vector<ResolvedOp> resolve_unresolved() {
    std::vector<ResolvedOp> out;
    out.reserve(unresolved_.size());
    for (const QueuedOp& op : unresolved_) {
      ResolvedOp r;
      r.op = op;
      if (op.detectable) {
        r.resolvable = true;
        r.answer = resolve(client_id_, op.seq, op.key);
      }
      out.push_back(r);
    }
    unresolved_.clear();
    return out;
  }

  // ---- one-shot operations ------------------------------------------------

  bool ping() {
    const Response r = roundtrip({Opcode::kPing});
    return r.status == Status::kOk;
  }

  std::optional<std::uint64_t> get(std::uint64_t key) {
    const Response r = roundtrip({Opcode::kGet, key});
    if (r.status == Status::kNotFound) return std::nullopt;
    expect_ok(r, "GET");
    return extract_u64(r, "GET");
  }

  PutResult put(std::uint64_t key, std::uint64_t value) {
    const Response r = roundtrip({Opcode::kPut, key, value});
    if (r.status == Status::kCreated) return {true, 0};
    expect_ok(r, "PUT");
    return {false, extract_u64(r, "PUT")};
  }

  std::optional<std::uint64_t> remove(std::uint64_t key) {
    const Response r = roundtrip({Opcode::kRemove, key});
    if (r.status == Status::kNotFound) return std::nullopt;
    expect_ok(r, "REMOVE");
    return extract_u64(r, "REMOVE");
  }

  /// Scan [lo, hi]; limit 0 = everything in range. Runs over the chunked
  /// SCANS verb (docs/scan.md): the response arrives as a stream of frames
  /// reassembled here, and when the server truncates at its per-request cap
  /// the scan resumes transparently from the final frame's resume_key — so,
  /// unlike the legacy buffered verb, limit 0 really is the whole range.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> scan(
      std::uint64_t lo, std::uint64_t hi, std::uint32_t limit = 0) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    scan_stream(
        lo, hi,
        [&out](const std::vector<std::pair<std::uint64_t, std::uint64_t>>& e) {
          out.insert(out.end(), e.begin(), e.end());
          return true;
        },
        limit);
    return out;
  }

  /// Streaming scan: `cb` is invoked once per (non-empty) chunk, in global
  /// key order, as the frames arrive off the wire — the first entries are
  /// delivered before the server has finished walking the range. Returning
  /// false from `cb` stops the scan early (the current response is still
  /// drained to keep the connection's framing intact, but no follow-up
  /// request is issued). `chunk` requests a per-frame entry count (0 =
  /// server default). Returns the total number of entries delivered.
  std::size_t scan_stream(
      std::uint64_t lo, std::uint64_t hi,
      const std::function<
          bool(const std::vector<std::pair<std::uint64_t, std::uint64_t>>&)>&
          cb,
      std::uint32_t limit = 0, std::uint32_t chunk = 0) {
    if (queued_ != 0)
      throw std::logic_error(
          "upsl client: one-shot call with requests still queued");
    std::size_t total = 0;
    std::uint64_t cur = lo;
    bool keep = true;
    while (true) {
      Request req{Opcode::kScanStream, cur, hi};
      req.limit =
          limit == 0 ? 0 : static_cast<std::uint32_t>(limit - total);
      req.chunk = chunk;
      std::vector<std::uint8_t> frame;
      encode_request(req, frame);
      send_all(frame.data(), frame.size());
      std::uint64_t resume = 0;
      while (true) {
        Response r;
        read_response(&r);
        expect_ok(r, "SCANS");
        Response::ScanChunk ck;
        if (!r.scan_chunk(&ck))
          throw std::runtime_error("upsl client: malformed SCANS chunk");
        total += ck.entries.size();
        if (keep && !ck.entries.empty()) keep = cb(ck.entries);
        if (ck.final_chunk) {
          resume = ck.resume_key;
          break;
        }
      }
      if (!keep || resume == 0 || (limit != 0 && total >= limit)) break;
      cur = resume;  // server hit its per-request cap: continue from there
    }
    return total;
  }

  /// Legacy single-frame SCAN (the pre-chunking verb, kept for A/B
  /// comparison and old servers): the server buffers the whole response
  /// before sending, and truncation at kMaxScanEntries is silent —
  /// size()==limit (or the cap) may mean "more".
  std::vector<std::pair<std::uint64_t, std::uint64_t>> scan_buffered(
      std::uint64_t lo, std::uint64_t hi, std::uint32_t limit = 0) {
    Request req{Opcode::kScan, lo, hi};
    req.limit = limit;
    const Response r = roundtrip(req);
    expect_ok(r, "SCAN");
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    if (!r.scan_entries(&out))
      throw std::runtime_error("upsl client: malformed SCAN payload");
    return out;
  }

  std::string stats_json() {
    const Response r = roundtrip({Opcode::kStats});
    expect_ok(r, "STATS");
    std::string json;
    if (!r.blob(&json))
      throw std::runtime_error("upsl client: malformed STATS payload");
    return json;
  }

  /// Fetches the server's shard map: shard count, hash kind, and the port
  /// each shard listens on (same host). ShardedClient uses this to route.
  Response::Topology topology() {
    const Response r = roundtrip({Opcode::kTopology});
    expect_ok(r, "TOPOLOGY");
    Response::Topology topo;
    if (!r.topology(&topo))
      throw std::runtime_error("upsl client: malformed TOPOLOGY payload");
    return topo;
  }

  /// Runs the server-side structural check. Returns the JSON report; *ok
  /// (when non-null) says whether the check passed. Both the pass and the
  /// fail report come back as a blob — only a malformed frame throws.
  std::string validate_json(bool* ok = nullptr) {
    const Response r = roundtrip({Opcode::kValidate});
    if (r.status != Status::kOk && r.status != Status::kError)
      throw std::runtime_error("upsl client: unexpected VALIDATE status");
    if (ok != nullptr) *ok = r.status == Status::kOk;
    std::string json;
    if (!r.blob(&json))
      throw std::runtime_error("upsl client: malformed VALIDATE payload");
    return json;
  }

  /// Runs the server-side deep integrity check (docs/integrity.md): a
  /// checksum-verifying re-walk of every shard merged into one report.
  /// Returns the JSON report; *ok (when non-null) says whether the walk ran
  /// (read "degraded" inside the JSON for the verdict). Only a malformed
  /// frame throws.
  std::string fsck_json(bool* ok = nullptr) {
    const Response r = roundtrip({Opcode::kFsck});
    if (r.status != Status::kOk && r.status != Status::kError)
      throw std::runtime_error("upsl client: unexpected FSCK status");
    if (ok != nullptr) *ok = r.status == Status::kOk;
    std::string json;
    if (!r.blob(&json))
      throw std::runtime_error("upsl client: malformed FSCK payload");
    return json;
  }

 private:
  void queue_detect(const Request& req) {
    if (client_id_ == 0)
      throw std::logic_error(
          "upsl client: detectable op without a hello() session");
    encode_request(req, sendbuf_);
    ++queued_;
    inflight_.push_back(QueuedOp{req.op, true, req.seq, req.key, req.value});
  }

  [[noreturn]] void fail_pipeline(const char* what, std::size_t acked,
                                  std::size_t n) {
    unresolved_.assign(inflight_.begin() + static_cast<std::ptrdiff_t>(acked),
                       inflight_.end());
    inflight_.clear();
    sendbuf_.clear();
    queued_ = 0;
    throw PipelineError(what, acked, n - acked);
  }

  Response roundtrip(const Request& req) {
    if (queued_ != 0)
      throw std::logic_error(
          "upsl client: one-shot call with requests still queued");
    std::vector<std::uint8_t> frame;
    encode_request(req, frame);
    send_all(frame.data(), frame.size());
    Response resp;
    read_response(&resp);
    return resp;
  }

  static void expect_ok(const Response& r, const char* what) {
    if (r.status != Status::kOk)
      throw std::runtime_error(std::string("upsl client: ") + what +
                               " failed with status " +
                               std::to_string(static_cast<int>(r.status)));
  }

  static std::uint64_t extract_u64(const Response& r, const char* what) {
    std::uint64_t v = 0;
    if (!r.value_u64(&v))
      throw std::runtime_error(std::string("upsl client: malformed ") + what +
                               " payload");
    return v;
  }

  void send_all(const std::uint8_t* data, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t s = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (s > 0) {
        off += static_cast<std::size_t>(s);
        continue;
      }
      if (s < 0 && errno == EINTR) continue;
      throw std::runtime_error("upsl client: send failed (server gone?)");
    }
  }

  /// Reads one full response frame (buffering any pipelined successors).
  void read_response(Response* out) {
    while (true) {
      std::size_t consumed = 0;
      const ParseResult pr =
          parse_response(recvbuf_.data(), recvbuf_.size(), out, &consumed);
      if (pr == ParseResult::kOk) {
        recvbuf_.erase(recvbuf_.begin(),
                       recvbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return;
      }
      if (pr == ParseResult::kBad)
        throw std::runtime_error("upsl client: malformed response frame");
      std::uint8_t buf[64 * 1024];
      const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
      if (r > 0) {
        recvbuf_.insert(recvbuf_.end(), buf, buf + r);
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      throw std::runtime_error(
          "upsl client: connection closed while awaiting response");
    }
  }

  int fd_ = -1;
  std::vector<std::uint8_t> sendbuf_;
  std::size_t queued_ = 0;
  std::vector<std::uint8_t> recvbuf_;
  // Detectable-session state. Survives close()/reconnect on purpose: the
  // identity and counter are durable concepts, the socket is not.
  std::uint64_t client_id_ = 0;
  std::uint64_t seq_ = 0;  // last issued seq (never reused, even replayed)
  std::vector<QueuedOp> inflight_;    // one entry per currently queued frame
  std::vector<QueuedOp> unresolved_;  // tail of the last failed flush()
};

/// Topology-aware client: one Client per shard, each key routed locally by
/// the fixed hash the TOPOLOGY verb announced. One-shot ops go straight to
/// the owning shard; queue()/flush() pipelines per shard and reassembles
/// the responses in submission order, so callers see exactly the Client
/// contract with the cross-shard hops removed.
///
/// Key-less verbs (SCAN, STATS, VALIDATE, PING) go to shard 0 — any shard
/// answers them for the whole store (SCAN is merged server-side).
class ShardedClient {
 public:
  ShardedClient() = default;
  ShardedClient(const ShardedClient&) = delete;
  ShardedClient& operator=(const ShardedClient&) = delete;

  /// Connects to `port` (any shard), fetches the shard map, then opens one
  /// connection per shard. False on connect failure; throws on a malformed
  /// or unsupported topology. Reconnecting against the same topology reuses
  /// the per-shard Client objects, so their detectable-session state (seq
  /// counters, unresolved ops) survives for the resolve path.
  bool connect(const std::string& host, std::uint16_t port) {
    Client probe;
    if (!probe.connect(host, port)) return false;
    topo_ = probe.topology();
    if (topo_.hash_kind != kShardHashKindFixed)
      throw std::runtime_error("upsl client: unknown shard hash kind " +
                               std::to_string(topo_.hash_kind));
    if (clients_.size() != topo_.shard_count)
      clients_ = std::vector<Client>(topo_.shard_count);
    order_.clear();
    for (std::uint32_t s = 0; s < topo_.shard_count; ++s)
      if (!clients_[s].connect(host, topo_.ports[s])) {
        close();
        return false;
      }
    return true;
  }

  bool connected() const { return !clients_.empty(); }

  void close() {
    clients_.clear();
    order_.clear();
    topo_ = {};
  }

  std::uint32_t shard_count() const { return topo_.shard_count; }
  const Response::Topology& topology() const { return topo_; }

  /// The shard that owns `key`, per the announced map.
  std::uint32_t shard_of(std::uint64_t key) const {
    return shard_of_key(key, topo_.shard_count);
  }

  /// Direct access to one shard's connection (tests, admin fan-out).
  Client& shard(std::uint32_t s) { return clients_[s]; }

  // ---- pipelining (same contract as Client::queue/flush) ------------------

  void queue(const Request& req) {
    const std::uint32_t s = route(req);
    clients_[s].queue(req);
    order_.push_back(s);
  }

  std::size_t queued() const { return order_.size(); }

  /// Flushes every shard's pipeline and reassembles the responses in the
  /// order the requests were queued. Each per-shard stream is FIFO, so the
  /// i-th queued request on shard s is shard s's i-th response.
  ///
  /// Failure contract (mirrors Client::flush, per shard): every shard is
  /// flushed even when one fails — a shard skipped after another's error
  /// would strand its queued ops unsent, unacked, and invisible to the
  /// resolve path. A failed shard parks its unanswered tail in that
  /// Client's unresolved_ops() (resolve_unresolved() covers the union).
  /// *out receives every response that did arrive, in submission order
  /// with the lost ones absent — the requests missing from *out are
  /// exactly those in the per-shard unresolved lists. The aggregate
  /// PipelineError carries acked = responses delivered, unresolved = ops
  /// parked for resolution, and the queue is left empty either way.
  void flush(std::vector<Response>* out) {
    const std::size_t n = order_.size();
    std::vector<std::vector<Response>> per_shard(clients_.size());
    std::size_t failures = 0;
    std::size_t unresolved = 0;
    std::string first_error;
    for (std::uint32_t s = 0; s < clients_.size(); ++s) {
      if (clients_[s].queued() == 0) continue;
      try {
        clients_[s].flush(&per_shard[s]);
      } catch (const PipelineError& e) {
        // The shard's acked prefix is already in per_shard[s]; its tail
        // sits in that Client's unresolved_ops() for the resolve path.
        if (failures++ == 0) first_error = e.what();
        unresolved += e.unresolved;
      }
    }
    out->clear();
    out->reserve(n);
    std::vector<std::size_t> cursor(clients_.size(), 0);
    for (const std::uint32_t s : order_) {
      const std::size_t i = cursor[s]++;
      if (i < per_shard[s].size()) out->push_back(std::move(per_shard[s][i]));
    }
    order_.clear();
    if (failures > 0)
      throw PipelineError("upsl client: " + std::to_string(failures) +
                              " shard pipeline(s) failed; first: " +
                              first_error,
                          n - unresolved, unresolved);
  }

  // ---- one-shot operations (forwarded to the owning shard) ----------------

  bool ping() { return clients_[0].ping(); }

  std::optional<std::uint64_t> get(std::uint64_t key) {
    return clients_[shard_of(key)].get(key);
  }

  Client::PutResult put(std::uint64_t key, std::uint64_t value) {
    return clients_[shard_of(key)].put(key, value);
  }

  std::optional<std::uint64_t> remove(std::uint64_t key) {
    return clients_[shard_of(key)].remove(key);
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> scan(
      std::uint64_t lo, std::uint64_t hi, std::uint32_t limit = 0) {
    return clients_[0].scan(lo, hi, limit);
  }

  std::size_t scan_stream(
      std::uint64_t lo, std::uint64_t hi,
      const std::function<
          bool(const std::vector<std::pair<std::uint64_t, std::uint64_t>>&)>&
          cb,
      std::uint32_t limit = 0, std::uint32_t chunk = 0) {
    return clients_[0].scan_stream(lo, hi, cb, limit, chunk);
  }

  std::string stats_json() { return clients_[0].stats_json(); }

  std::string validate_json(bool* ok = nullptr) {
    return clients_[0].validate_json(ok);
  }

  // ---- detectable sessions ------------------------------------------------

  /// Opens the session on every shard (each connection HELLOs the same
  /// client identity; slots live per shard). Returns shard 0's epoch.
  std::uint64_t hello(std::uint64_t client_id) {
    std::uint64_t epoch0 = 0;
    for (std::uint32_t s = 0; s < clients_.size(); ++s) {
      const std::uint64_t e = clients_[s].hello(client_id);
      if (s == 0) epoch0 = e;
    }
    return epoch0;
  }

  /// Detectable mutations route by key; each shard connection stamps seqs
  /// from its own counter, keeping every per-shard stream monotonic.
  void queue_dput(std::uint64_t key, std::uint64_t value) {
    const std::uint32_t s = shard_of(key);
    clients_[s].queue_dput(key, value);
    order_.push_back(s);
  }
  void queue_dupdate(std::uint64_t key, std::uint64_t value) {
    const std::uint32_t s = shard_of(key);
    clients_[s].queue_dupdate(key, value);
    order_.push_back(s);
  }
  void queue_dremove(std::uint64_t key) {
    const std::uint32_t s = shard_of(key);
    clients_[s].queue_dremove(key);
    order_.push_back(s);
  }

  /// Replays an op from resolve_unresolved() under its original seq, on the
  /// shard that owns its key (mirrors Client::requeue, keeping the
  /// submission-order bookkeeping for the next flush()).
  void requeue(const Client::QueuedOp& op) {
    const std::uint32_t s = shard_of(op.key);
    clients_[s].requeue(op);
    order_.push_back(s);
  }

  Client::PutResult dput(std::uint64_t key, std::uint64_t value) {
    return clients_[shard_of(key)].dput(key, value);
  }

  std::optional<std::uint64_t> dremove(std::uint64_t key) {
    return clients_[shard_of(key)].dremove(key);
  }

  Response::Resolve resolve(std::uint64_t client_id, std::uint64_t seq,
                            std::uint64_t key) {
    return clients_[shard_of(key)].resolve(client_id, seq, key);
  }

  /// Reconnect-and-resolve across the fleet: after a reconnect() + hello(),
  /// collects each shard connection's unresolved detectable ops and answers
  /// them from the shard's session table. Order within a shard is send
  /// order; shards are concatenated in shard order.
  std::vector<Client::ResolvedOp> resolve_unresolved() {
    std::vector<Client::ResolvedOp> out;
    for (auto& c : clients_) {
      auto part = c.resolve_unresolved();
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }

 private:
  std::uint32_t route(const Request& req) const {
    switch (req.op) {
      case Opcode::kGet:
      case Opcode::kPut:
      case Opcode::kUpdate:
      case Opcode::kRemove:
      case Opcode::kDPut:
      case Opcode::kDUpdate:
      case Opcode::kDRemove:
        return shard_of(req.key);
      case Opcode::kResolve:
        return req.key == 0 ? 0 : shard_of(req.key);
      default:
        return 0;  // key-less verbs: any shard answers for the whole store
    }
  }

  Response::Topology topo_;
  std::vector<Client> clients_;
  std::vector<std::uint32_t> order_;  // owning shard of each queued request
};

/// Parses "host:port" (e.g. "127.0.0.1:7707"). Returns false on bad input.
inline bool parse_addr(const std::string& addr, std::string* host,
                       std::uint16_t* port) {
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
    return false;
  const unsigned long p = std::strtoul(addr.c_str() + colon + 1, nullptr, 10);
  if (p == 0 || p > 65535) return false;
  *host = addr.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace upsl::server
