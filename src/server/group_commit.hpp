// Cross-connection group commit (docs/write-path.md).
//
// Every mutation batch the server executes defers its ack-gating line
// flushes into an AckBatch (pmem/ack_batch.hpp). Instead of fencing per
// batch, the worker hands the lines to this committer with submit() and
// receives a monotonically increasing ticket. A dedicated committer thread
// accumulates submissions for a short window (UPSL_COMMIT_WINDOW_US),
// dedupes the cache lines across *all* of them, flushes once and issues one
// fence; committed() then covers every ticket up to the batch's highest.
// Acks release only after the covering fence retires — so N connections'
// mutations share one SFENCE instead of paying N.
//
// The class is deliberately standalone (no epoll types) so the crash-torture
// harness can drive the same commit protocol against a simulated-crash
// store: wait_durable() polls the crash-injection quiesce flag and throws
// CrashException so a waiter whose fence will never retire dies like any
// other surviving thread.
#pragma once

#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/crashpoint.hpp"
#include "pmem/ack_batch.hpp"
#include "pmem/flush_set.hpp"
#include "pmem/persist.hpp"

namespace upsl::server {

/// UPSL_DISABLE_GROUP_COMMIT kill switch (read per server start, not
/// cached: the server already constructs rarely, and tests flip it with
/// ScopedEnv between starts).
inline bool group_commit_disabled_by_env() {
  const char* v = std::getenv("UPSL_DISABLE_GROUP_COMMIT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Commit window from UPSL_COMMIT_WINDOW_US, else `fallback`.
inline std::uint32_t commit_window_us_from_env(std::uint32_t fallback) {
  if (const char* v = std::getenv("UPSL_COMMIT_WINDOW_US")) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(v, &end, 10);
    if (end != v) return static_cast<std::uint32_t>(n);
  }
  return fallback;
}

class GroupCommit {
 public:
  explicit GroupCommit(std::uint32_t window_us)
      : window_us_(window_us), committer_([this] { committer_main(); }) {}

  GroupCommit(const GroupCommit&) = delete;
  GroupCommit& operator=(const GroupCommit&) = delete;
  ~GroupCommit() { shutdown(); }

  /// Commit everything pending, then stop the committer. Idempotent.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_) return;
      stop_ = true;
    }
    cv_.notify_all();
    if (committer_.joinable()) committer_.join();
  }

  /// Stop WITHOUT committing what is pending — the crash-simulation path:
  /// un-fenced submissions are dropped exactly like un-retired flushes in a
  /// power failure. Their waiters must already be dead (quiesced).
  void abandon() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      pending_.clear();
    }
    cv_.notify_all();
    if (committer_.joinable()) committer_.join();
  }

  /// Enqueue `mutations` operations whose ack waits on `lines` being
  /// durable. Returns the ticket the caller's acks must wait for.
  std::uint64_t submit(std::vector<const void*> lines,
                       std::uint64_t mutations) {
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lk(mu_);
      seq = ++submitted_;
      pending_.push_back({std::move(lines), mutations, seq});
    }
    cv_.notify_all();
    return seq;
  }

  /// Highest ticket whose covering fence has retired.
  std::uint64_t committed() const {
    return committed_.load(std::memory_order_acquire);
  }

  /// Block until `seq` is durable. Polls the crash-injection quiesce flag:
  /// if a simulated crash fires while we wait, the fence we are waiting for
  /// will never retire — die like every other surviving thread.
  void wait_durable(std::uint64_t seq) {
    std::unique_lock<std::mutex> lk(mu_);
    while (committed_.load(std::memory_order_acquire) < seq) {
      if (CrashPoints::instance().crashing()) throw CrashException{};
      done_cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }

  /// Wait until everything submitted so far is durable (drain path).
  void barrier() {
    std::uint64_t target;
    {
      std::lock_guard<std::mutex> lk(mu_);
      target = submitted_;
    }
    if (target > 0) wait_durable(target);
  }

  /// Register an eventfd poked (one write) after every commit, so epoll
  /// workers parked in epoll_wait learn that acks became releasable.
  void add_notify_fd(int fd) {
    std::lock_guard<std::mutex> lk(mu_);
    notify_fds_.push_back(fd);
  }

 private:
  struct Pending {
    std::vector<const void*> lines;
    std::uint64_t mutations;
    std::uint64_t seq;
  };

  void committer_main() {
    std::vector<Pending> batch;
    while (true) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !pending_.empty(); });
        if (pending_.empty()) return;  // stop_ set and nothing left
      }
      if (window_us_ > 0) {
        // Accumulation window: let other connections' batches pile onto
        // this fence. A pending shutdown skips the wait.
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait_for(lk, std::chrono::microseconds(window_us_),
                     [this] { return stop_; });
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        batch.swap(pending_);
      }
      if (!batch.empty()) commit_batch(batch);
      batch.clear();
    }
  }

  void commit_batch(std::vector<Pending>& batch) {
    // Cross-connection line dedupe: two clients updating values in the same
    // node within one window flush that line once.
    std::vector<const void*> lines;
    std::unordered_set<const void*> seen;
    std::uint64_t mutations = 0;
    std::uint64_t deduped = 0;
    for (const Pending& p : batch) {
      mutations += p.mutations;
      for (const void* l : p.lines) {
        if (seen.insert(l).second)
          lines.push_back(l);
        else
          ++deduped;
      }
    }
    if (!lines.empty()) pmem::flush_lines(lines.data(), lines.size());
    pmem::fence();
    auto& st = pmem::Stats::instance();
    st.note_group_commit(mutations);
    if (deduped > 0)
      st.coalesced_lines_saved.fetch_add(deduped, std::memory_order_relaxed);
    committed_.store(batch.back().seq, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(mu_);
      const std::uint64_t one = 1;
      for (int fd : notify_fds_)
        [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof(one));
    }
    done_cv_.notify_all();
  }

  const std::uint32_t window_us_;
  std::mutex mu_;
  std::condition_variable cv_;       // submit/stop -> committer
  std::condition_variable done_cv_;  // commit -> waiters
  std::vector<Pending> pending_;
  std::vector<int> notify_fds_;
  std::uint64_t submitted_ = 0;
  std::atomic<std::uint64_t> committed_{0};
  bool stop_ = false;
  std::thread committer_;
};

}  // namespace upsl::server
