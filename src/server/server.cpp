#include "server/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <pthread.h>
#include <sched.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/shardmap.hpp"
#include "common/thread_registry.hpp"
#include "pmem/ack_batch.hpp"
#include "pmem/persist.hpp"
#include "server/group_commit.hpp"
#include "server/protocol.hpp"
#include "server/uring.hpp"

namespace upsl::server {

namespace {

std::atomic<bool> g_signal_stop{false};

void on_stop_signal(int) { g_signal_stop.store(true, std::memory_order_release); }

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool shard_pin_disabled_by_env() {
  const char* v = std::getenv("UPSL_DISABLE_SHARD_PIN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool iouring_disabled_by_env() {
  const char* v = std::getenv("UPSL_DISABLE_IOURING");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

#ifndef EPOLLEXCLUSIVE
#define EPOLLEXCLUSIVE (1u << 28)
#endif

}  // namespace

/// One TCP connection, owned by exactly one worker. `in` accumulates raw
/// bytes until complete frames can be parsed; `out` holds encoded responses
/// not yet accepted by the kernel (out_off bytes already sent).
///
/// Group commit parks response bytes: only [out_off, sendable_end) may be
/// handed to the kernel. A mutation batch whose fence has not retired yet
/// registers (ticket, end-of-its-responses) in pending_acks; the committer's
/// eventfd wakeup advances sendable_end as tickets commit, preserving FIFO
/// response order per connection.
struct Server::Conn {
  int fd = -1;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  std::size_t sendable_end = 0;  // bytes released for sending
  std::deque<std::pair<std::uint64_t, std::size_t>> pending_acks;
  bool want_write = false;  // EPOLLOUT currently registered
  /// Detectable session (docs/detectability.md): the client identity the
  /// connection last opened with HELLO (0 = none), plus this client's
  /// session slot on each shard, opened lazily as detectable mutations
  /// route there. Slots are per-shard because the session table lives in
  /// each shard's own pool — routing stays shard-local.
  std::uint64_t client_id = 0;
  std::vector<std::int32_t> session_slots;

  // io_uring plane only (docs/scan.md). Sends must not point into `out`
  // (it reallocs while the SQE is in flight), so the releasable window is
  // staged into `sbuf` for the kernel. `pending_ops` counts this
  // connection's in-flight SQEs (recv/send/cancel); a closed Conn is only
  // destroyed once it reaches zero — ops hold kernel references to the
  // buffers they were posted with.
  std::vector<std::uint8_t> sbuf;
  std::vector<std::uint8_t> rbuf;  // plain-recv fallback (no fixed slot free)
  int buf_idx = -1;                // registered recv buffer slot, -1 = none
  bool recv_armed = false;
  bool send_armed = false;
  bool closing = false;            // fd closed; waiting for pending_ops == 0
  bool close_after_flush = false;  // peer sent FIN: close once out drains
  bool reaped = false;             // already on the worker's dead list
  // uring_close could not post the ASYNC_CANCEL for an armed op (SQ full
  // even after a submit); retried from the event loop until it posts, so the
  // in-flight op — which holds a kernel reference to the closed file — is
  // not left to linger indefinitely.
  bool need_cancel_recv = false;
  bool need_cancel_send = false;
  unsigned pending_ops = 0;

  bool has_pending_out() const { return out_off < sendable_end; }
};

struct Server::Worker {
  unsigned shard = 0;  // which shard's listen socket / committer this serves
  int epoll_fd = -1;
  int event_fd = -1;  // poked by the shard's group committer after each fence
  std::unordered_map<int, Conn> conns;
#if UPSL_HAVE_IOURING
  // io_uring plane state. Connections are keyed by their heap address (not
  // fd — io_uring completions outlive a close, and the kernel reuses fd
  // numbers immediately), and SQE user_data carries that address with a
  // low-bit op tag, so every CQE resolves to a live Conn by construction.
  Uring ring;
  bool draining = false;  // suppress re-arms during the graceful drain
  unsigned inflight = 0;  // SQEs posted whose CQE has not been reaped yet
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> uconns;
  // Conns whose last in-flight op completed after close: destruction is
  // deferred to uring_sweep_dead at the top of the event/drain loop, so a
  // close_conn triggered deep inside uring_handle_cqe (via execute_batch)
  // never frees a Conn that callers up the stack still reference, and never
  // invalidates a loop iterating uconns.
  std::vector<std::uint64_t> dead_uconns;
  std::vector<std::uint64_t> cancel_retry;  // Conn keys with need_cancel_*
  std::vector<std::vector<std::uint8_t>> fixed_bufs;  // registered recv pool
  std::vector<int> free_bufs;
  std::uint64_t efd_val = 0;  // eventfd read target (stable address)
#endif
};

#if UPSL_HAVE_IOURING
namespace {

// SQE user_data layout: either a sentinel (< 8) for per-worker ops, or a
// Conn* (heap-allocated, so 8-byte aligned) with an op tag in the low bits.
constexpr std::uint64_t kUdAccept = 1;  // multishot accept
constexpr std::uint64_t kUdEvent = 2;   // group-committer eventfd read
constexpr std::uint64_t kUdMisc = 3;    // cancels of the two above
constexpr std::uint64_t kTagRecv = 1;
constexpr std::uint64_t kTagSend = 2;
constexpr std::uint64_t kTagCancel = 3;
constexpr std::uint64_t kTagMask = 3;
constexpr unsigned kUringEntries = 1024;
constexpr unsigned kRecvBufBytes = 64 * 1024;
constexpr unsigned kFixedBufCount = 16;

std::uint64_t conn_ud(const void* c, std::uint64_t tag) {
  return reinterpret_cast<std::uint64_t>(c) | tag;
}

io_uring_sqe* sqe_or_flush(Uring& ring) {
  io_uring_sqe* sqe = ring.get_sqe();
  if (sqe == nullptr) {
    // SQ full: publish what is queued (the kernel consumes SQEs at submit
    // time) and retry.
    ring.submit_and_wait(0, 0);
    sqe = ring.get_sqe();
  }
  return sqe;
}

}  // namespace
#endif  // UPSL_HAVE_IOURING

Server::Server(core::UPSkipList& store, ServerOptions opts)
    : stores_{&store}, opts_(std::move(opts)) {
  if (opts_.workers == 0) opts_.workers = 1;
}

Server::Server(core::ShardSet& shards, ServerOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.workers == 0) opts_.workers = 1;
  stores_.reserve(shards.shard_count());
  for (std::uint32_t i = 0; i < shards.shard_count(); ++i)
    stores_.push_back(&shards.shard(i));
}

Server::~Server() {
  stop();
  wait();
}

void Server::install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_stop_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

bool Server::signal_stop_requested() {
  return g_signal_stop.load(std::memory_order_acquire);
}

void Server::reset_signal_stop_for_testing() {
  g_signal_stop.store(false, std::memory_order_release);
}

bool Server::start() {
  const auto shards = static_cast<std::uint32_t>(stores_.size());
  auto fail = [&] {
    for (auto& w : workers_) {
      if (w->event_fd >= 0) ::close(w->event_fd);
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    }
    workers_.clear();
    gcs_.clear();
    for (const int fd : listen_fds_)
      if (fd >= 0) ::close(fd);
    listen_fds_.clear();
    bound_ports_.clear();
    return false;
  };

  // One listen socket per shard: shard s on base port + s, or each on its
  // own ephemeral port when the base is 0.
  for (std::uint32_t s = 0; s < shards; ++s) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return fail();
    listen_fds_.push_back(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(opts_.port == 0 ? 0
                              : static_cast<std::uint16_t>(opts_.port + s));
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1 ||
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 256) != 0) {
      return fail();
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_ports_.push_back(ntohs(addr.sin_port));
  }

  window_us_ = commit_window_us_from_env(opts_.commit_window_us);
  if (opts_.group_commit && !group_commit_disabled_by_env()) {
    // One committer per shard, so commit traffic scales with the shards
    // instead of funneling through one thread. Correctness does not depend
    // on which committer fences a batch — SFENCE is CPU-global, so any
    // shard's fence also retires the flushes a cross-shard routed op left
    // behind in the same batch.
    gcs_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s)
      gcs_.push_back(std::make_unique<GroupCommit>(window_us_));
  }

  shard_ops_ = std::make_unique<std::atomic<std::uint64_t>[]>(shards);
  for (std::uint32_t s = 0; s < shards; ++s)
    shard_ops_[s].store(0, std::memory_order_relaxed);

#if UPSL_HAVE_IOURING
  // Data-plane selection: option on, no env kill switch, and the kernel
  // passes the feature probe. Per-worker ring setup below can still fail
  // (e.g. RLIMIT_MEMLOCK); any failure reverts every worker to epoll — the
  // planes never mix within one server.
  use_uring_ = opts_.io_uring && !iouring_disabled_by_env() &&
               io_uring_available();
#endif

  for (std::uint32_t s = 0; s < shards; ++s) {
    for (unsigned i = 0; i < opts_.workers; ++i) {
      auto w = std::make_unique<Worker>();
      w->shard = s;
      w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (w->epoll_fd >= 0 && !gcs_.empty())
        w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (w->epoll_fd < 0 || (!gcs_.empty() && w->event_fd < 0)) {
        if (w->epoll_fd >= 0) ::close(w->epoll_fd);
        return fail();
      }
      epoll_event ev = {};
      ev.events = EPOLLIN | EPOLLEXCLUSIVE;
      ev.data.fd = listen_fds_[s];
      ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, listen_fds_[s], &ev);
      if (w->event_fd >= 0) {
        epoll_event eev = {};
        eev.events = EPOLLIN;
        eev.data.fd = w->event_fd;
        ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &eev);
        gcs_[s]->add_notify_fd(w->event_fd);
      }
      workers_.push_back(std::move(w));
    }
  }

#if UPSL_HAVE_IOURING
  if (use_uring_) {
    for (auto& w : workers_) {
      if (!w->ring.init(kUringEntries)) {
        use_uring_ = false;
        break;
      }
      // The eventfd is read through the ring in this mode; clear O_NONBLOCK
      // so kernels whose eventfd lacks nowait support poll-arm the read
      // instead of completing it with -EAGAIN (a re-arm busy loop).
      if (w->event_fd >= 0) {
        const int fl = ::fcntl(w->event_fd, F_GETFL, 0);
        if (fl >= 0) ::fcntl(w->event_fd, F_SETFL, fl & ~O_NONBLOCK);
      }
      // Registered recv buffers: fixed slots the kernel reads into without
      // per-op page pinning. Registration failing (memlock limits) is not
      // fatal — connections beyond the pool fall back to plain RECV anyway.
      w->fixed_bufs.assign(kFixedBufCount,
                           std::vector<std::uint8_t>(kRecvBufBytes));
      std::vector<iovec> iov(kFixedBufCount);
      for (unsigned b = 0; b < kFixedBufCount; ++b)
        iov[b] = {w->fixed_bufs[b].data(), kRecvBufBytes};
      if (w->ring.register_buffers(iov.data(), kFixedBufCount)) {
        for (int b = kFixedBufCount - 1; b >= 0; --b) w->free_bufs.push_back(b);
      } else {
        w->fixed_bufs.clear();
      }
    }
    if (!use_uring_) {
      // Revert to epoll: tear the rings down and restore the nonblocking
      // eventfds its loop expects.
      for (auto& w : workers_) {
        w->ring.destroy();
        w->fixed_bufs.clear();
        w->free_bufs.clear();
        if (w->event_fd >= 0) set_nonblocking(w->event_fd);
      }
    }
  }
#endif

  started_ = true;
  for (unsigned i = 0; i < shards * opts_.workers; ++i)
    threads_.emplace_back([this, i] {
#if UPSL_HAVE_IOURING
      if (use_uring_) {
        worker_main_uring(i);
        return;
      }
#endif
      worker_main(i);
    });
  return true;
}

void Server::wait() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
  if (started_ && !stopped_) {
    stopped_ = true;
    // Workers have drained (every parked ack released via barrier), so the
    // committers have nothing pending; stop them before tearing down their
    // notification fds.
    for (auto& gc : gcs_) gc->shutdown();
    for (auto& w : workers_) {
      if (w->event_fd >= 0) ::close(w->event_fd);
      ::close(w->epoll_fd);
    }
    workers_.clear();
    for (int& fd : listen_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    // Drain complete: everything executed is already durable (the store
    // persists per operation); a final fence orders the shutdown for any
    // unfenced trailing flushes before the process exits.
    pmem::fence();
  }
}

GroupCommit* Server::shard_gc(const Worker& w) const {
  return gcs_.empty() ? nullptr : gcs_[w.shard].get();
}

/// Best-effort NUMA-style pinning: split the hardware threads into
/// shard_count equal contiguous groups and confine this shard's workers to
/// its group, keeping them (and their allocations) local to the node the
/// shard's pools were placed on. Contiguous CPU ranges approximate nodes the
/// same way the "virtual NUMA node" pools do; a real libnuma topology walk
/// would slot in here. No-op when the machine cannot give every shard at
/// least one CPU, or when disabled (option / UPSL_DISABLE_SHARD_PIN).
void Server::maybe_pin_to_shard(unsigned shard) const {
  if (!opts_.pin_shards || stores_.size() <= 1 || shard_pin_disabled_by_env())
    return;
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned per = hw / static_cast<unsigned>(stores_.size());
  if (per == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (unsigned c = shard * per; c < (shard + 1) * per; ++c)
    CPU_SET(c, &set);
  ::pthread_setaffinity_np(::pthread_self(), sizeof set, &set);
}

void Server::worker_main(unsigned global_index) {
  Worker& w = *workers_[global_index];
  ThreadRegistry::instance().bind(static_cast<int>(
      opts_.first_thread_id + w.shard * opts_.workers +
      (global_index % opts_.workers)));
  maybe_pin_to_shard(w.shard);
  const int listen_fd = listen_fds_[w.shard];
  epoll_event events[64];
  bool draining = false;

  while (true) {
    if (!draining &&
        (stop_.load(std::memory_order_acquire) || signal_stop_requested())) {
      draining = true;
      // Every worker sees the same flag; each deregisters its shard's listen
      // fd from its own epoll set. shutdown() on the listen fds is left to
      // wait() — workers may still be mid-accept.
      ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      drain_worker(w);
      return;
    }
    const int n = ::epoll_wait(w.epoll_fd, events, 64, 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd) {
        while (true) {
          const int cfd = ::accept4(listen_fd, nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;  // EAGAIN (or a raced accept) — done for now
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          epoll_event ev = {};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, cfd, &ev) != 0) {
            ::close(cfd);
            continue;
          }
          w.conns[cfd].fd = cfd;
          stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (fd == w.event_fd) {
        // The committer fenced: some parked responses became releasable.
        std::uint64_t ticks;
        while (::read(w.event_fd, &ticks, sizeof ticks) > 0) {
        }
        release_committed(w);
        continue;
      }
      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;  // already closed this sweep
      Conn& c = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(w, c);
      } else {
        if ((events[i].events & EPOLLOUT) != 0) flush_out(w, c);
        if (c.fd >= 0 && (events[i].events & EPOLLIN) != 0)
          handle_readable(w, c);
      }
      // close_conn() only marks the connection dead (the reference stays
      // valid through the handlers above); reap it here.
      if (c.fd < 0) w.conns.erase(it);
    }
  }
}

void Server::handle_readable(Worker& w, Conn& c) {
  // Drain the socket into the connection's input buffer.
  char buf[64 * 1024];
  bool peer_closed = false;
  while (true) {
    const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
    if (r > 0) {
      c.in.insert(c.in.end(), buf, buf + r);
      // Refuse to buffer unboundedly: a peer that streams more than a full
      // frame's worth without ever completing one is misbehaving.
      if (c.in.size() > kHeaderBytes + kMaxBody + sizeof buf) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(w, c);
        return;
      }
      continue;
    }
    if (r == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(w, c);
    return;
  }

  // Execute everything that arrived; keep going while full batches keep
  // parsing so a deep pipeline completes before the next epoll_wait.
  while (execute_batch(w, c)) {
  }
  if (c.fd < 0) return;
  if (peer_closed) {
    // Deliver any responses for frames that were complete, then close.
    flush_out(w, c);
    if (c.fd >= 0) close_conn(w, c);
  }
}

/// Parses and executes up to max_batch frames from c.in, encodes responses
/// into c.out, then commits the batch: one fence if anything mutated, one
/// send() for all responses. Returns true if a full batch was executed and
/// more complete frames may still be buffered.
bool Server::execute_batch(Worker& w, Conn& c) {
  std::size_t off = 0;
  unsigned executed = 0;
  unsigned mutations = 0;
  // Batch-wide deferred-ack scope (docs/write-path.md): every mutation's
  // ack-gating line flushes are collected here — deduped across the whole
  // pipelined batch, not per op — and commit below under a single fence, or
  // ride a group-commit ticket that shares that fence across connections.
  // Cross-shard routed mutations land here too; the fence that retires the
  // batch is CPU-global, so durability does not depend on which shard's
  // committer issues it.
  pmem::AckBatch ab;
  while (executed < opts_.max_batch) {
    Request req;
    std::size_t consumed = 0;
    const ParseResult pr =
        parse_request(c.in.data() + off, c.in.size() - off, &req, &consumed);
    if (pr == ParseResult::kBad) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      close_conn(w, c);
      return false;
    }
    if (pr == ParseResult::kNeedMore) break;
    off += consumed;
    ++executed;
    bool op_mutated = false;
    // A SCANS response may stream each chunk frame out as soon as it is
    // encoded — but only when nothing already in c.out is parked behind an
    // unretired fence: no mutation earlier in this batch, no outstanding
    // group-commit ticket. Everything before this op is then read-only
    // responses, releasable by definition.
    const bool allow_stream = mutations == 0 && c.pending_acks.empty();
    execute_one(w, c, req, c.out, &op_mutated, allow_stream);
    if (op_mutated) ++mutations;
    if (c.fd < 0) return false;  // a streaming flush hit a dead socket
  }
  if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + off);
  if (executed == 0) return false;

  stats_.frames.fetch_add(executed, std::memory_order_relaxed);
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  GroupCommit* gc = shard_gc(w);
  if (mutations > 0) {
    if (gc != nullptr) {
      // Group commit: hand the deferred lines to the committer and park
      // this batch's response bytes behind the returned ticket. The
      // eventfd wakeup releases them once the covering fence retires.
      const std::uint64_t ticket = gc->submit(ab.take_lines(), mutations);
      c.pending_acks.emplace_back(ticket, c.out.size());
      stats_.group_commit_batches.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Per-batch ack gate: flush the batch's deferred lines and fence once
      // before any response byte leaves — the coalesced equivalent of
      // fencing per acknowledgement.
      ab.commit_fenced();
      stats_.batch_fences.fetch_add(1, std::memory_order_relaxed);
      c.sendable_end = c.out.size();
    }
  } else {
    // Read-only batch: releasable immediately — unless earlier batches on
    // this connection are still parked; responses must stay FIFO, so these
    // bytes ride the newest outstanding ticket.
    if (c.pending_acks.empty())
      c.sendable_end = c.out.size();
    else
      c.pending_acks.back().second = c.out.size();
  }
  flush_out(w, c);
  return c.fd >= 0 && executed == opts_.max_batch && !c.in.empty();
}

void Server::execute_one(Worker& w, Conn& c, const Request& req,
                         std::vector<std::uint8_t>& out, bool* mutated,
                         bool allow_stream) {
  const auto shards = static_cast<std::uint32_t>(stores_.size());
  // Dispatch-layer routing: the key, not the arrival socket, picks the
  // store. A request that arrived on the wrong shard's port is still served
  // (topology-unaware clients keep working); it is just counted as a
  // cross-shard hop.
  auto route_idx = [&](std::uint64_t key) -> std::uint32_t {
    const std::uint32_t s = shard_of_key(key, shards);
    shard_ops_[s].fetch_add(1, std::memory_order_relaxed);
    if (s != w.shard)
      stats_.cross_shard_ops.fetch_add(1, std::memory_order_relaxed);
    return s;
  };
  auto route = [&](std::uint64_t key) -> core::UPSkipList& {
    return *stores_[route_idx(key)];
  };
  // The connection's session slot on shard s, opened on first use. The slot
  // index is a pure cache — the durable identity is (client_id, seq); a
  // reconnect re-finds the same slot through open_session. Revalidate the
  // cache against the slot's current owner on every use: with more live
  // clients than slots, another connection's open_session can evict this
  // session and hand the slot to a new identity, and a stale index must
  // never read or write the new owner's dedup state. (Eviction racing the
  // op itself is then confined to the instants between this check and the
  // slot write — versus an unbounded stale cache.)
  auto session_slot = [&](std::uint32_t s) -> std::int32_t {
    if (c.session_slots.size() != shards) c.session_slots.assign(shards, -1);
    std::int32_t slot = c.session_slots[s];
    if (slot >= 0 && stores_[s]->sessions().client_id(
                         static_cast<std::uint32_t>(slot)) != c.client_id)
      slot = -1;  // evicted since cached: reclaim through open_session
    if (slot < 0) slot = stores_[s]->sessions().open_session(c.client_id);
    c.session_slots[s] = slot;
    return slot;
  };
  // Shared tail of DPUT/DUPDATE/DREMOVE: count a dedup hit, encode the
  // (original or fresh) result with PUT/REMOVE response shapes.
  auto finish_detect = [&](const core::UPSkipList::DetectOutcome& r,
                           Status fresh_empty_status) {
    *mutated = !r.duplicate;  // a fresh op always dirtied the session slot
    if (r.duplicate)
      stats_.detect_dups.fetch_add(1, std::memory_order_relaxed);
    if (!r.result_known) {
      // Applied, but the answer aged out of the session's result ring —
      // only reachable by replaying past the ring window.
      encode_response_empty(Status::kError, out);
    } else if (r.previous) {
      encode_response_value(Status::kOk, *r.previous, out);
    } else {
      encode_response_empty(fresh_empty_status, out);
    }
  };
  switch (req.op) {
    case Opcode::kGet: {
      stats_.gets.fetch_add(1, std::memory_order_relaxed);
      const auto v = route(req.key).search(req.key);
      if (v)
        encode_response_value(Status::kOk, *v, out);
      else
        encode_response_empty(Status::kNotFound, out);
      break;
    }
    case Opcode::kPut:
    case Opcode::kUpdate: {
      stats_.puts.fetch_add(1, std::memory_order_relaxed);
      const auto old = route(req.key).insert(req.key, req.value);
      *mutated = true;
      if (old)
        encode_response_value(Status::kOk, *old, out);
      else
        encode_response_empty(Status::kCreated, out);
      break;
    }
    case Opcode::kRemove: {
      stats_.removes.fetch_add(1, std::memory_order_relaxed);
      const auto old = route(req.key).remove(req.key);
      if (old) {
        *mutated = true;
        encode_response_value(Status::kOk, *old, out);
      } else {
        encode_response_empty(Status::kNotFound, out);
      }
      break;
    }
    case Opcode::kScan: {
      stats_.scans.fetch_add(1, std::memory_order_relaxed);
      const std::uint32_t limit =
          std::min(req.limit == 0 ? kMaxScanEntries : req.limit,
                   kMaxScanEntries);
      // Cross-shard k-way merge: any shard answers a SCAN over the whole
      // key space, in global key order (core::scan_merged).
      std::vector<core::ScanEntry> entries;
      core::scan_merged(stores_.data(), shards, req.key, req.value, limit,
                        entries);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> kv;
      kv.reserve(entries.size());
      for (const auto& e : entries) kv.emplace_back(e.key, e.value);
      encode_response_scan(kv.data(), static_cast<std::uint32_t>(kv.size()),
                           out);
      break;
    }
    case Opcode::kScanStream: {
      stats_.scans.fetch_add(1, std::memory_order_relaxed);
      const std::uint32_t limit =
          std::min(req.limit == 0 ? kMaxScanEntries : req.limit,
                   kMaxScanEntries);
      const std::uint32_t chunk =
          std::min(req.chunk == 0 ? kDefaultScanChunk : req.chunk,
                   kMaxScanChunkEntries);
      // Streaming chunked scan (docs/scan.md): an incremental k-way merge
      // pulls bounded per-shard chunks, and each protocol frame is encoded
      // (and, when allow_stream permits, flushed) as soon as its entries are
      // merged — the first frame leaves before any shard has been fully
      // scanned. Truncation at the per-request cap is resumable: the final
      // frame carries the smallest un-emitted key.
      core::MergedScanCursor cursor(stores_.data(), shards, req.key, req.value,
                                    std::min<std::size_t>(chunk, limit));
      std::vector<core::ScanEntry> entries;
      std::vector<ScanEntryPair> kv;
      std::uint32_t produced = 0;
      while (true) {
        entries.clear();
        kv.clear();
        const std::size_t want = std::min<std::size_t>(chunk, limit - produced);
        cursor.next(want, entries);
        produced += static_cast<std::uint32_t>(entries.size());
        kv.reserve(entries.size());
        for (const auto& e : entries) kv.emplace_back(e.key, e.value);
        const bool exhausted = cursor.exhausted();
        const bool truncated = produced >= limit && !exhausted;
        const bool final_chunk = exhausted || truncated;
        encode_response_scan_chunk(kv.data(),
                                   static_cast<std::uint32_t>(kv.size()),
                                   final_chunk,
                                   truncated ? cursor.resume_key() : 0, out);
        if (allow_stream && &out == &c.out) {
          c.sendable_end = out.size();
          flush_out(w, c);
          if (c.fd < 0) return;
        }
        if (final_chunk) break;
      }
      break;
    }
    case Opcode::kStats:
      encode_response_blob(Status::kOk, stats_json(), out);
      break;
    case Opcode::kPing:
      encode_response_empty(Status::kOk, out);
      break;
    case Opcode::kTopology:
      // The durable shard map, straight from the stores' roots: count,
      // hash kind, and where each shard listens. What ShardedClient routes
      // by.
      encode_response_topology(shards, kShardHashKindFixed,
                               bound_ports_.data(), out);
      break;
    case Opcode::kValidate: {
      // Admin op: full structural check (per-node sorting, level nesting,
      // bottom-level order) across every shard. Best run against a
      // quiescent store — a check racing live writers can report transient
      // states.
      std::string json;
      Status st = Status::kOk;
      try {
        std::size_t nodes = 0;
        for (core::UPSkipList* s : stores_) {
          s->check_invariants();
          nodes += s->count_nodes();
        }
        json = "{\"valid\": true, \"nodes\": " + std::to_string(nodes) +
               ", \"epoch\": " + std::to_string(stores_[0]->epoch()) +
               ", \"shards\": " + std::to_string(shards) + "}";
      } catch (const std::exception& e) {
        st = Status::kError;
        std::string msg;
        for (const char* c = e.what(); *c != '\0'; ++c)
          msg += (*c == '"' || *c == '\\') ? ' ' : *c;
        json = "{\"valid\": false, \"error\": \"" + msg + "\"}";
      }
      encode_response_blob(st, json, out);
      break;
    }
    case Opcode::kFsck: {
      // Admin op (docs/integrity.md): deep integrity re-check — re-walks
      // every shard's bottom level verifying checksum stamps, merges the
      // allocator quarantine counters and the open-time verdict, and
      // returns the full report (degraded flag, counters, lost key
      // ranges). Like VALIDATE, best run against a quiescent store.
      std::string json;
      Status st = Status::kOk;
      try {
        core::IntegrityReport rep;
        for (core::UPSkipList* s : stores_) rep.merge(s->verify_deep());
        json = rep.to_json();
      } catch (const std::exception& e) {
        st = Status::kError;
        std::string msg;
        for (const char* ch = e.what(); *ch != '\0'; ++ch)
          msg += (*ch == '"' || *ch == '\\') ? ' ' : *ch;
        json = "{\"degraded\": true, \"error\": \"" + msg + "\"}";
      }
      encode_response_blob(st, json, out);
      break;
    }
    case Opcode::kHello: {
      stats_.hellos.fetch_add(1, std::memory_order_relaxed);
      if (req.client_id == 0) {
        encode_response_empty(Status::kError, out);
        break;
      }
      c.client_id = req.client_id;
      c.session_slots.assign(shards, -1);
      // Open the session on the arrival shard eagerly (the common
      // single-shard case resolves everything here); other shards open
      // lazily as detectable mutations route to them. A slot of -1 (legacy
      // store, tiny root area, or UPSL_DISABLE_DETECT) still answers kOk
      // with epoch 0: the session is accepted but detectable ops degrade
      // to plain ones.
      const std::int32_t slot = session_slot(w.shard);
      encode_response_value(
          Status::kOk,
          slot >= 0 ? stores_[w.shard]->sessions().session_epoch(
                          static_cast<std::uint32_t>(slot))
                    : 0,
          out);
      break;
    }
    case Opcode::kResolve: {
      stats_.resolves.fetch_add(1, std::memory_order_relaxed);
      // key routes to the shard owning the op being asked about (sessions
      // are per shard); key 0 = the arrival shard.
      const std::uint32_t s =
          req.key == 0 ? w.shard : shard_of_key(req.key, shards);
      const detect::ResolveResult r =
          stores_[s]->sessions().resolve(req.client_id, req.seq);
      encode_response_resolve(static_cast<std::uint32_t>(r.state),
                              r.has_previous, r.result, out);
      break;
    }
    case Opcode::kDPut:
    case Opcode::kDUpdate: {
      stats_.puts.fetch_add(1, std::memory_order_relaxed);
      // Reject both the missing HELLO and the reserved seq 0 (the result
      // ring's empty sentinel — valid seqs start at 1).
      if (c.client_id == 0 || req.seq == 0) {
        encode_response_empty(Status::kError, out);
        break;
      }
      const std::uint32_t s = route_idx(req.key);
      finish_detect(stores_[s]->insert_detect(req.key, req.value,
                                              session_slot(s), req.seq),
                    Status::kCreated);
      break;
    }
    case Opcode::kDRemove: {
      stats_.removes.fetch_add(1, std::memory_order_relaxed);
      if (c.client_id == 0 || req.seq == 0) {
        encode_response_empty(Status::kError, out);
        break;
      }
      const std::uint32_t s = route_idx(req.key);
      finish_detect(stores_[s]->remove_detect(req.key, session_slot(s),
                                              req.seq),
                    Status::kNotFound);
      break;
    }
  }
}

void Server::flush_out(Worker& w, Conn& c) {
  if (c.fd < 0) return;
#if UPSL_HAVE_IOURING
  if (use_uring_) {
    if (!w.draining) {
      uring_flush(w, c);
      return;
    }
    // Draining: fall through to the synchronous path — but never while an
    // asynchronous send still owns the [out_off, sendable_end) window, or
    // the same bytes would leave twice.
    if (c.send_armed) return;
  }
#endif
  // Only released bytes ([out_off, sendable_end)) may leave; bytes parked
  // behind an uncommitted ticket wait for the committer's eventfd wakeup.
  while (c.has_pending_out()) {
    const ssize_t s = ::send(c.fd, c.out.data() + c.out_off,
                             c.sendable_end - c.out_off, MSG_NOSIGNAL);
    if (s > 0) {
      c.out_off += static_cast<std::size_t>(s);
      continue;
    }
    if (s < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (s < 0 && errno == EINTR) continue;
    close_conn(w, c);
    return;
  }
  if (c.out_off == c.out.size() && !c.out.empty()) {
    // Fully sent AND nothing parked (parked bytes sit above sendable_end,
    // which out_off cannot pass), so the buffer can be recycled.
    c.out.clear();
    c.out_off = 0;
    c.sendable_end = 0;
  }
  // EPOLLOUT covers kernel backpressure on released bytes only. (On the
  // io_uring plane this fd was never registered with epoll; the MOD is a
  // harmless ENOENT during its synchronous drain.)
  const bool want = c.has_pending_out();
  if (want != c.want_write) {
    epoll_event ev = {};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
    c.want_write = want;
  }
}

void Server::release_committed(Worker& w) {
  const std::uint64_t committed = shard_gc(w)->committed();
#if UPSL_HAVE_IOURING
  if (use_uring_) {
    // uring_flush never erases a Conn (teardown is completion-driven), so
    // iterating the map while flushing is safe.
    for (auto& [key, cp] : w.uconns) {
      Conn& c = *cp;
      if (c.fd < 0 || c.pending_acks.empty()) continue;
      while (!c.pending_acks.empty() &&
             c.pending_acks.front().first <= committed) {
        c.sendable_end = c.pending_acks.front().second;
        c.pending_acks.pop_front();
      }
      flush_out(w, c);
    }
    return;
  }
#endif
  for (auto it = w.conns.begin(); it != w.conns.end();) {
    Conn& c = it->second;
    if (c.fd >= 0 && !c.pending_acks.empty()) {
      while (!c.pending_acks.empty() &&
             c.pending_acks.front().first <= committed) {
        c.sendable_end = c.pending_acks.front().second;
        c.pending_acks.pop_front();
      }
      flush_out(w, c);
    }
    if (c.fd < 0)
      it = w.conns.erase(it);
    else
      ++it;
  }
}

/// Tears the socket down and marks the Conn dead (fd = -1). Deliberately
/// does NOT erase it from the worker's map — callers up the stack still hold
/// a reference; the event/drain loop reaps dead entries.
void Server::close_conn(Worker& w, Conn& c) {
#if UPSL_HAVE_IOURING
  if (use_uring_) {
    uring_close(w, c);
    return;
  }
#endif
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  c.fd = -1;
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

/// Graceful drain: execute what is already buffered on every connection,
/// push out the responses (blocking with a deadline — the sockets are
/// non-blocking, so poll for writability), close everything.
void Server::drain_worker(Worker& w) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(opts_.drain_timeout_sec);
  GroupCommit* gc = shard_gc(w);
  std::vector<int> fds;
  fds.reserve(w.conns.size());
  for (auto& [fd, conn] : w.conns) fds.push_back(fd);
  for (const int fd : fds) {
    auto it = w.conns.find(fd);
    if (it == w.conns.end()) continue;
    Conn& c = it->second;
    // Execute the requests the peer already sent (they may be unread in the
    // socket buffer: take one last non-blocking slurp).
    char buf[64 * 1024];
    while (true) {
      const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
      if (r > 0) {
        c.in.insert(c.in.end(), buf, buf + r);
        continue;
      }
      break;
    }
    while (execute_batch(w, c)) {
    }
    if (c.fd < 0) continue;
    if (gc != nullptr && !c.pending_acks.empty()) {
      // Every parked ticket is already submitted; wait for the covering
      // fence so the drain never sends an un-durable ack.
      gc->barrier();
      c.sendable_end = c.out.size();
      c.pending_acks.clear();
    }
    while (c.has_pending_out() &&
           std::chrono::steady_clock::now() < deadline) {
      pollfd pfd = {c.fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      flush_out(w, c);
      if (c.fd < 0) break;
    }
    if (c.fd >= 0) close_conn(w, c);
  }
}

#if UPSL_HAVE_IOURING

/// Arms (or re-arms) the connection's single outstanding receive: into its
/// registered fixed-buffer slot when one is held or free, else a plain RECV
/// into the per-connection fallback buffer.
void Server::uring_arm_recv(Worker& w, Conn& c) {
  if (c.fd < 0 || c.closing || c.recv_armed || w.draining) return;
  io_uring_sqe* sqe = sqe_or_flush(w.ring);
  if (sqe == nullptr) {
    close_conn(w, c);
    return;
  }
  if (c.buf_idx < 0 && !w.free_bufs.empty()) {
    c.buf_idx = w.free_bufs.back();
    w.free_bufs.pop_back();
  }
  if (c.buf_idx >= 0) {
    Uring::prep_read_fixed(sqe, c.fd, w.fixed_bufs[c.buf_idx].data(),
                           kRecvBufBytes, static_cast<unsigned>(c.buf_idx),
                           conn_ud(&c, kTagRecv));
  } else {
    if (c.rbuf.size() != kRecvBufBytes) c.rbuf.resize(kRecvBufBytes);
    Uring::prep_recv(sqe, c.fd, c.rbuf.data(), kRecvBufBytes,
                     conn_ud(&c, kTagRecv));
  }
  c.recv_armed = true;
  ++c.pending_ops;
  ++w.inflight;
}

/// Posts one asynchronous send for the releasable window. The window is
/// copied into c.sbuf first: c.out may realloc (new responses append) while
/// the kernel still reads the SQE's buffer.
void Server::uring_flush(Worker& w, Conn& c) {
  if (c.fd < 0 || c.closing || c.send_armed || !c.has_pending_out()) return;
  c.sbuf.assign(c.out.begin() + static_cast<std::ptrdiff_t>(c.out_off),
                c.out.begin() + static_cast<std::ptrdiff_t>(c.sendable_end));
  io_uring_sqe* sqe = sqe_or_flush(w.ring);
  if (sqe == nullptr) return;  // retried on the next completion/release
  Uring::prep_send(sqe, c.fd, c.sbuf.data(),
                   static_cast<unsigned>(c.sbuf.size()),
                   conn_ud(&c, kTagSend));
  c.send_armed = true;
  ++c.pending_ops;
  ++w.inflight;
}

/// io_uring teardown: in-flight ops hold kernel references to the file and
/// to the buffers they were posted with, so the fd is closed immediately but
/// the Conn lives on (closing = true) until every CQE — including the ones
/// the ASYNC_CANCELs generate — has come back.
void Server::uring_close(Worker& w, Conn& c) {
  if (c.fd < 0) return;
  if (c.recv_armed) {
    io_uring_sqe* sqe = sqe_or_flush(w.ring);
    if (sqe != nullptr) {
      Uring::prep_cancel(sqe, conn_ud(&c, kTagRecv), conn_ud(&c, kTagCancel));
      ++c.pending_ops;
      ++w.inflight;
    } else {
      c.need_cancel_recv = true;
    }
  }
  if (c.send_armed) {
    io_uring_sqe* sqe = sqe_or_flush(w.ring);
    if (sqe != nullptr) {
      Uring::prep_cancel(sqe, conn_ud(&c, kTagSend), conn_ud(&c, kTagCancel));
      ++c.pending_ops;
      ++w.inflight;
    } else {
      c.need_cancel_send = true;
    }
  }
  if (c.need_cancel_recv || c.need_cancel_send)
    w.cancel_retry.push_back(reinterpret_cast<std::uint64_t>(&c));
  ::close(c.fd);
  c.fd = -1;
  c.closing = true;
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  uring_reap(w, c);
}

/// Marks a closed Conn dead once its last in-flight op has completed,
/// returning its fixed-buffer slot to the pool. No-op until then. The Conn
/// itself is NOT destroyed here — close_conn's contract is that callers up
/// the stack still hold a reference (uring_handle_cqe touches the Conn after
/// execute_batch, and the drain loops iterate uconns while closing), so
/// destruction waits for uring_sweep_dead at the top of the loop.
void Server::uring_reap(Worker& w, Conn& c) {
  if (!c.closing || c.pending_ops > 0 || c.reaped) return;
  if (c.buf_idx >= 0) {
    w.free_bufs.push_back(c.buf_idx);
    c.buf_idx = -1;
  }
  c.reaped = true;
  w.dead_uconns.push_back(reinterpret_cast<std::uint64_t>(&c));
}

/// Destroys reaped Conns. Only called from the top of the event/drain loop,
/// never from inside a CQE handler or a loop over uconns: a reaped Conn has
/// pending_ops == 0, so no CQE still to be processed can reference it.
void Server::uring_sweep_dead(Worker& w) {
  for (const std::uint64_t key : w.dead_uconns) w.uconns.erase(key);
  w.dead_uconns.clear();
}

/// Re-posts the ASYNC_CANCELs uring_close had to skip because the SQ was
/// full. Cheap no-op in steady state (the retry list is almost always
/// empty); entries whose op completed on its own in the meantime are simply
/// dropped.
void Server::uring_retry_cancels(Worker& w) {
  if (w.cancel_retry.empty()) return;
  std::vector<std::uint64_t> keep;
  for (const std::uint64_t key : w.cancel_retry) {
    const auto it = w.uconns.find(key);
    if (it == w.uconns.end()) continue;
    Conn& c = *it->second;
    if (c.need_cancel_recv) {
      io_uring_sqe* sqe = sqe_or_flush(w.ring);
      if (sqe == nullptr) {
        keep.push_back(key);
        continue;
      }
      Uring::prep_cancel(sqe, conn_ud(&c, kTagRecv), conn_ud(&c, kTagCancel));
      ++c.pending_ops;
      ++w.inflight;
      c.need_cancel_recv = false;
    }
    if (c.need_cancel_send) {
      io_uring_sqe* sqe = sqe_or_flush(w.ring);
      if (sqe == nullptr) {
        keep.push_back(key);
        continue;
      }
      Uring::prep_cancel(sqe, conn_ud(&c, kTagSend), conn_ud(&c, kTagCancel));
      ++c.pending_ops;
      ++w.inflight;
      c.need_cancel_send = false;
    }
  }
  w.cancel_retry.swap(keep);
}

void Server::uring_handle_cqe(Worker& w, std::uint64_t user_data, int res,
                              unsigned flags) {
  if (user_data == kUdAccept) {
    // Multishot accept: one SQE produces CQEs until the kernel clears
    // F_MORE (resource pressure or an error); it stays "in flight" — and
    // counted once in w.inflight — until then, and is re-armed after.
    const bool more = (flags & IORING_CQE_F_MORE) != 0;
    if (!more) --w.inflight;
    if (res >= 0) {
      if (w.draining) {
        ::close(res);
      } else {
        const int one = 1;
        ::setsockopt(res, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_unique<Conn>();
        Conn& c = *conn;
        c.fd = res;
        w.uconns.emplace(reinterpret_cast<std::uint64_t>(conn.get()),
                         std::move(conn));
        stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        uring_arm_recv(w, c);
      }
    }
    if (!more && !w.draining) {
      // Never re-arm after a hard error: a kernel that rejects the accept
      // itself (e.g. -EINVAL from missing multishot support, which the
      // startup probe should have ruled out) would fail the re-armed SQE
      // instantly too, spinning the worker at 100% CPU. Transient resource
      // errors (EMFILE, ENOBUFS, ECONNABORTED, ...) re-arm as usual.
      if (res == -EINVAL || res == -EBADF || res == -ENOTSOCK ||
          res == -EOPNOTSUPP) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      io_uring_sqe* sqe = sqe_or_flush(w.ring);
      if (sqe != nullptr) {
        Uring::prep_accept_multishot(sqe, listen_fds_[w.shard], kUdAccept);
        ++w.inflight;
      }
    }
    return;
  }
  if (user_data == kUdEvent) {
    --w.inflight;
    if (res > 0) release_committed(w);
    if (!w.draining && w.event_fd >= 0) {
      io_uring_sqe* sqe = sqe_or_flush(w.ring);
      if (sqe != nullptr) {
        Uring::prep_read(sqe, w.event_fd, &w.efd_val, sizeof w.efd_val,
                         kUdEvent);
        ++w.inflight;
      }
    }
    return;
  }
  if (user_data == kUdMisc) {
    --w.inflight;
    return;
  }

  --w.inflight;
  const auto it = w.uconns.find(user_data & ~kTagMask);
  if (it == w.uconns.end()) return;  // unreachable: Conns outlive their ops
  Conn& c = *it->second;
  --c.pending_ops;
  const std::uint64_t tag = user_data & kTagMask;
  if (tag == kTagCancel) {
    uring_reap(w, c);
    return;
  }
  if (tag == kTagRecv) {
    c.recv_armed = false;
    c.need_cancel_recv = false;  // op completed; a queued retry is moot
    if (c.closing) {
      uring_reap(w, c);
      return;
    }
    if (res > 0) {
      const std::uint8_t* buf =
          c.buf_idx >= 0 ? w.fixed_bufs[c.buf_idx].data() : c.rbuf.data();
      c.in.insert(c.in.end(), buf, buf + res);
      if (c.in.size() > kHeaderBytes + kMaxBody + kRecvBufBytes) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(w, c);
        return;
      }
      while (execute_batch(w, c)) {
      }
      if (c.fd >= 0) uring_arm_recv(w, c);
      return;
    }
    if (res == 0) {
      // Peer sent FIN. Execute what it already sent; the responses (some
      // possibly parked behind a commit ticket) drain asynchronously, and
      // the send/release completions close the socket once out is empty.
      while (execute_batch(w, c)) {
      }
      if (c.fd < 0) return;
      c.close_after_flush = true;
      flush_out(w, c);
      if (c.fd >= 0 && !c.send_armed && !c.has_pending_out() &&
          c.pending_acks.empty()) {
        close_conn(w, c);
      }
      return;
    }
    if (res == -ECANCELED && w.draining) return;  // drain slurps the rest
    close_conn(w, c);
    return;
  }
  if (tag == kTagSend) {
    c.send_armed = false;
    c.need_cancel_send = false;  // op completed; a queued retry is moot
    if (c.closing) {
      uring_reap(w, c);
      return;
    }
    if (res > 0) {
      c.out_off += static_cast<std::size_t>(res);
      if (c.out_off == c.out.size() && !c.out.empty()) {
        c.out.clear();
        c.out_off = 0;
        c.sendable_end = 0;
      }
      if (c.has_pending_out()) {
        if (!w.draining) uring_flush(w, c);
        return;
      }
      if (c.close_after_flush && c.pending_acks.empty()) close_conn(w, c);
      return;
    }
    if (res == -ECANCELED && w.draining) return;
    close_conn(w, c);
    return;
  }
}

void Server::worker_main_uring(unsigned global_index) {
  Worker& w = *workers_[global_index];
  ThreadRegistry::instance().bind(static_cast<int>(
      opts_.first_thread_id + w.shard * opts_.workers +
      (global_index % opts_.workers)));
  maybe_pin_to_shard(w.shard);

  // The two long-lived ops: multishot accept on the shard's listen socket,
  // and a read on the group committer's eventfd (re-armed per firing).
  if (io_uring_sqe* sqe = sqe_or_flush(w.ring)) {
    Uring::prep_accept_multishot(sqe, listen_fds_[w.shard], kUdAccept);
    ++w.inflight;
  }
  if (w.event_fd >= 0) {
    if (io_uring_sqe* sqe = sqe_or_flush(w.ring)) {
      Uring::prep_read(sqe, w.event_fd, &w.efd_val, sizeof w.efd_val,
                       kUdEvent);
      ++w.inflight;
    }
  }

  io_uring_cqe cqes[256];
  while (true) {
    // Top of loop, no Conn reference live anywhere up the stack: destroy
    // the Conns the last pass reaped and re-post any skipped cancels.
    uring_sweep_dead(w);
    uring_retry_cancels(w);
    if (stop_.load(std::memory_order_acquire) || signal_stop_requested()) {
      drain_worker_uring(w);
      return;
    }
    // Same 50 ms stop-flag cadence as the epoll loop, via EXT_ARG timeout.
    const int r = w.ring.submit_and_wait(1, 50);
    if (r < 0 && r != -EINTR) return;  // ring unusable
    unsigned n;
    while ((n = w.ring.reap(cqes, 256)) > 0) {
      for (unsigned i = 0; i < n; ++i)
        uring_handle_cqe(w, cqes[i].user_data, cqes[i].res, cqes[i].flags);
    }
  }
}

/// Graceful drain, io_uring flavor: cancel the long-lived ops and every
/// armed receive, let in-flight sends finish delivering, then run the same
/// synchronous slurp-execute-flush pass as the epoll drain. The Conns are
/// only destroyed once the kernel holds no reference to their buffers.
void Server::drain_worker_uring(Worker& w) {
  w.draining = true;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(opts_.drain_timeout_sec);
  auto cancel = [&](std::uint64_t target, std::uint64_t as) {
    io_uring_sqe* sqe = sqe_or_flush(w.ring);
    if (sqe == nullptr) return false;
    Uring::prep_cancel(sqe, target, as);
    ++w.inflight;
    return true;
  };
  cancel(kUdAccept, kUdMisc);
  if (w.event_fd >= 0) cancel(kUdEvent, kUdMisc);
  for (auto& [key, cp] : w.uconns) {
    if (cp->recv_armed &&
        cancel(conn_ud(cp.get(), kTagRecv), conn_ud(cp.get(), kTagCancel)))
      ++cp->pending_ops;
  }

  io_uring_cqe cqes[256];
  // Safe to sweep here: reap_all is only called from the plain wait loops
  // below, never while a loop over uconns is in progress.
  auto reap_all = [&] {
    unsigned n;
    while ((n = w.ring.reap(cqes, 256)) > 0) {
      for (unsigned i = 0; i < n; ++i)
        uring_handle_cqe(w, cqes[i].user_data, cqes[i].res, cqes[i].flags);
    }
    uring_sweep_dead(w);
  };
  while (w.inflight > 0 && std::chrono::steady_clock::now() < deadline) {
    uring_retry_cancels(w);
    if (w.ring.submit_and_wait(1, 100) < 0 && errno != EINTR) break;
    reap_all();
  }

  // Synchronous tail (flush_out takes its epoll-style path now that
  // w.draining is set): one last slurp, execute, barrier, flush, close.
  GroupCommit* gc = shard_gc(w);
  for (auto& [key, cp] : w.uconns) {
    Conn& c = *cp;
    if (c.fd < 0) continue;
    char buf[64 * 1024];
    while (true) {
      const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
      if (r > 0) {
        c.in.insert(c.in.end(), buf, buf + r);
        continue;
      }
      break;
    }
    while (execute_batch(w, c)) {
    }
    if (c.fd < 0) continue;
    if (gc != nullptr && !c.pending_acks.empty()) {
      gc->barrier();
      c.sendable_end = c.out.size();
      c.pending_acks.clear();
    }
    while (c.has_pending_out() && !c.send_armed &&
           std::chrono::steady_clock::now() < deadline) {
      pollfd pfd = {c.fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      flush_out(w, c);
      if (c.fd < 0) break;
    }
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
      c.closing = true;
      stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Absolutely no kernel-held buffer references may outlive the Conns:
  // cancel whatever the deadline left behind and wait the CQEs out —
  // canceled ops always complete.
  for (auto& [key, cp] : w.uconns) {
    if (cp->send_armed) {
      if (cancel(conn_ud(cp.get(), kTagSend), conn_ud(cp.get(), kTagCancel))) {
        ++cp->pending_ops;
      } else if (!cp->need_cancel_send) {
        cp->need_cancel_send = true;
        w.cancel_retry.push_back(key);
      }
    }
    if (cp->recv_armed) {
      if (cancel(conn_ud(cp.get(), kTagRecv), conn_ud(cp.get(), kTagCancel))) {
        ++cp->pending_ops;
      } else if (!cp->need_cancel_recv) {
        cp->need_cancel_recv = true;
        w.cancel_retry.push_back(key);
      }
    }
  }
  while (w.inflight > 0) {
    uring_retry_cancels(w);
    const int r = w.ring.submit_and_wait(1, 1000);
    if (r < 0 && r != -EINTR) break;
    reap_all();
  }
  w.uconns.clear();
  w.dead_uconns.clear();
  w.cancel_retry.clear();
}

#endif  // UPSL_HAVE_IOURING

std::string Server::stats_json() const {
  auto u64 = [](const char* k, std::uint64_t v) {
    return "\"" + std::string(k) + "\": " + std::to_string(v);
  };
  const auto& s = stats_;
  std::string json = "{";
  json += "\"server\": {";
  json += std::string("\"data_plane\": \"") + data_plane() + "\", ";
  json += u64("connections_accepted",
              s.connections_accepted.load(std::memory_order_relaxed)) + ", ";
  json += u64("connections_closed",
              s.connections_closed.load(std::memory_order_relaxed)) + ", ";
  json += u64("frames", s.frames.load(std::memory_order_relaxed)) + ", ";
  json += u64("batches", s.batches.load(std::memory_order_relaxed)) + ", ";
  json += u64("batch_fences",
              s.batch_fences.load(std::memory_order_relaxed)) + ", ";
  json += u64("group_commit_batches",
              s.group_commit_batches.load(std::memory_order_relaxed)) + ", ";
  json += u64("protocol_errors",
              s.protocol_errors.load(std::memory_order_relaxed)) + ", ";
  json += u64("gets", s.gets.load(std::memory_order_relaxed)) + ", ";
  json += u64("puts", s.puts.load(std::memory_order_relaxed)) + ", ";
  json += u64("removes", s.removes.load(std::memory_order_relaxed)) + ", ";
  json += u64("scans", s.scans.load(std::memory_order_relaxed)) + ", ";
  json += u64("cross_shard_ops",
              s.cross_shard_ops.load(std::memory_order_relaxed));
  json += "}, ";
  json += "\"detect\": {";
  json += std::string("\"enabled\": ") +
          (detect::detect_enabled() && stores_[0]->sessions().valid()
               ? "true"
               : "false") + ", ";
  json += u64("session_slots", stores_[0]->sessions().slot_count()) + ", ";
  json += u64("recovered_sessions",
              stores_[0]->sessions().recovered_sessions()) + ", ";
  json += u64("hellos", s.hellos.load(std::memory_order_relaxed)) + ", ";
  json += u64("resolves", s.resolves.load(std::memory_order_relaxed)) + ", ";
  json += u64("dedup_hits",
              s.detect_dups.load(std::memory_order_relaxed));
  json += "}, ";
  // Shard 0's epoch/index stay at the top level for pre-sharding consumers;
  // the "shards" array is the full per-shard picture. The trailing "pmem"
  // rollup is process-global (pmem::Stats is one singleton), i.e. already
  // the merged view across every shard's pools and committers.
  json += u64("epoch", stores_[0]->epoch()) + ", ";
  json += "\"index\": {";
  json += std::string("\"dram\": ") +
          (stores_[0]->dram_index_enabled() ? "true" : "false") + ", ";
  json += u64("entries", stores_[0]->index_entries()) + ", ";
  json += u64("rebuild_ns", stores_[0]->last_index_rebuild_ns());
  json += "}, ";
  json += u64("shard_count", stores_.size()) + ", ";
  json += "\"shards\": [";
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    const core::UPSkipList* st = stores_[i];
    if (i > 0) json += ", ";
    json += "{";
    json += u64("port", bound_ports_.size() > i ? bound_ports_[i] : 0) + ", ";
    json += u64("epoch", st->epoch()) + ", ";
    json += u64("ops", shard_ops_ != nullptr
                           ? shard_ops_[i].load(std::memory_order_relaxed)
                           : 0) + ", ";
    json += u64("index_entries", st->index_entries()) + ", ";
    json += u64("index_rebuild_ns", st->last_index_rebuild_ns());
    json += "}";
  }
  json += "], ";
  json += "\"group_commit\": {";
  json += std::string("\"enabled\": ") + (!gcs_.empty() ? "true" : "false") +
          ", ";
  json += std::string("\"mod_writes\": ") +
          (pmem::mod_writes_enabled() ? "true" : "false") + ", ";
  json += u64("window_us", window_us_);
  json += "}, ";
  // Open-time integrity verdict, merged across shards (docs/integrity.md):
  // what recovery detected and quarantined when these stores attached. The
  // FSCK opcode re-walks the store for a fresh deep check; this section is
  // the cheap always-available summary.
  core::IntegrityReport integ;
  for (const core::UPSkipList* st : stores_) integ.merge(st->integrity());
  json += "\"integrity\": " + integ.to_json() + ", ";
  json += "\"pmem\": " + pmem::Stats::instance().snapshot().to_json();
  json += "}";
  return json;
}

}  // namespace upsl::server
