// Minimal raw-syscall io_uring wrapper for the server's io_uring data plane
// (docs/scan.md). The container/toolchain has the kernel UAPI header but no
// liburing, so this speaks the three syscalls (io_uring_setup / enter /
// register) and the SQ/CQ ring mmap protocol directly. Only what the server
// loop needs is wrapped: SQE acquisition with the prep_* helpers below,
// submit-and-wait with an EXT_ARG timeout (so the worker keeps its 50 ms
// stop-flag poll cadence without a timeout SQE), CQE reaping, and fixed
// buffer registration for READ_FIXED receives.
//
// Ring-memory ordering follows the documented protocol: the SQ tail is
// published with a release store after the SQE is written; CQEs are read
// after an acquire load of the CQ tail, and the CQ head is released back so
// the kernel can reuse entries. IORING_FEAT_SINGLE_MMAP maps both rings in
// one region when offered (always, on kernels >= 5.4); the probe refuses
// kernels without it rather than carrying the dual-mmap path.
#pragma once

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define UPSL_HAVE_IOURING 1

#include <errno.h>
#include <linux/io_uring.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>

namespace upsl::server {

namespace uring_detail {

inline int sys_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

inline int sys_enter(int fd, unsigned to_submit, unsigned min_complete,
                     unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

inline int sys_register(int fd, unsigned opcode, const void* arg,
                        unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// The ring head/tail words are shared with the kernel, not with other
// threads, so plain __atomic builtins (not std::atomic objects) are the
// right tool: the memory is kernel-mapped and must keep its layout.
inline unsigned acquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

inline void release(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace uring_detail

/// One io_uring instance: rings, SQE array, and just enough bookkeeping to
/// drive a single-threaded event loop. Not thread-safe (one ring per worker,
/// matching the single-owner-connection model).
class Uring {
 public:
  Uring() = default;
  ~Uring() { destroy(); }
  Uring(const Uring&) = delete;
  Uring& operator=(const Uring&) = delete;

  /// Creates the ring. False (errno intact) on any failure — including a
  /// kernel that lacks io_uring (ENOSYS) or a seccomp filter that denies it
  /// (EPERM); callers fall back to epoll then.
  bool init(unsigned entries) {
    io_uring_params p = {};
    ring_fd_ = uring_detail::sys_setup(entries, &p);
    if (ring_fd_ < 0) return false;
    if ((p.features & IORING_FEAT_SINGLE_MMAP) == 0) {
      destroy();
      errno = ENOTSUP;
      return false;
    }
    features_ = p.features;
    sq_entries_ = p.sq_entries;
    cq_entries_ = p.cq_entries;

    const std::size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    const std::size_t cq_sz =
        p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    rings_sz_ = sq_sz > cq_sz ? sq_sz : cq_sz;
    rings_ = ::mmap(nullptr, rings_sz_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (rings_ == MAP_FAILED) {
      rings_ = nullptr;
      destroy();
      return false;
    }
    sqes_sz_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      destroy();
      return false;
    }

    auto* base = static_cast<std::uint8_t*>(rings_);
    sq_head_ = reinterpret_cast<unsigned*>(base + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(base + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(base + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(base + p.sq_off.array);
    cq_head_ = reinterpret_cast<unsigned*>(base + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(base + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(base + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(base + p.cq_off.cqes);

    // Identity SQ index mapping, set up once: slot i of the array always
    // names SQE i.
    for (unsigned i = 0; i < sq_entries_; ++i) sq_array_[i] = i;
    return true;
  }

  void destroy() {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_sz_);
    if (rings_ != nullptr) ::munmap(rings_, rings_sz_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
    sqes_ = nullptr;
    rings_ = nullptr;
    ring_fd_ = -1;
  }

  bool valid() const { return ring_fd_ >= 0; }
  unsigned features() const { return features_; }

  /// Next free SQE, zeroed, or nullptr when the SQ is full (submit first).
  io_uring_sqe* get_sqe() {
    const unsigned head = uring_detail::acquire(sq_head_);
    if (pending_tail_ - head >= sq_entries_) return nullptr;
    io_uring_sqe* sqe = &sqes_[pending_tail_ & sq_mask_];
    ++pending_tail_;
    ::memset(sqe, 0, sizeof *sqe);
    return sqe;
  }

  /// Publishes queued SQEs and waits for at least `wait_nr` completions or
  /// `timeout_ms` (0 = do not wait). Returns submitted count or -errno.
  int submit_and_wait(unsigned wait_nr, unsigned timeout_ms) {
    const unsigned tail = uring_detail::acquire(sq_tail_);
    const unsigned to_submit = pending_tail_ - tail;
    uring_detail::release(sq_tail_, pending_tail_);
    unsigned flags = 0;
    io_uring_getevents_arg arg = {};
    __kernel_timespec ts = {};
    const void* argp = nullptr;
    std::size_t argsz = 0;
    if (wait_nr > 0) {
      flags |= IORING_ENTER_GETEVENTS;
      if ((features_ & IORING_FEAT_EXT_ARG) != 0 && timeout_ms > 0) {
        ts.tv_sec = timeout_ms / 1000;
        ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
        arg.ts = reinterpret_cast<std::uint64_t>(&ts);
        argp = &arg;
        argsz = sizeof arg;
        flags |= IORING_ENTER_EXT_ARG;
      }
    }
    while (true) {
      const int r = uring_detail::sys_enter(ring_fd_, to_submit, wait_nr,
                                            flags, argp, argsz);
      if (r >= 0) return r;
      if (errno == EINTR) continue;
      if (errno == ETIME) return 0;  // timeout elapsed, nothing completed
      return -errno;
    }
  }

  /// Copies up to `max` ready CQEs into `out` and consumes them.
  unsigned reap(io_uring_cqe* out, unsigned max) {
    const unsigned tail = uring_detail::acquire(cq_tail_);
    unsigned head = *cq_head_;
    unsigned n = 0;
    while (head != tail && n < max) {
      out[n++] = cqes_[head & cq_mask_];
      ++head;
    }
    if (n > 0) uring_detail::release(cq_head_, head);
    return n;
  }

  /// Registers `n` fixed buffers for READ_FIXED/WRITE_FIXED by buf_index.
  bool register_buffers(const iovec* iov, unsigned n) {
    return uring_detail::sys_register(ring_fd_, IORING_REGISTER_BUFFERS, iov,
                                      n) == 0;
  }

  // ---- SQE prep helpers (subset the server loop uses) ---------------------

  static void prep_accept_multishot(io_uring_sqe* sqe, int fd,
                                    std::uint64_t user_data) {
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = fd;
    sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
    sqe->user_data = user_data;
  }

  static void prep_recv(io_uring_sqe* sqe, int fd, void* buf, unsigned len,
                        std::uint64_t user_data) {
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = len;
    sqe->user_data = user_data;
  }

  /// RECV through a registered fixed buffer (IORING_REGISTER_BUFFERS slot
  /// `buf_index`): the kernel reads into pre-pinned pages — no per-op page
  /// pinning, the "registered buffers for batched reads" leg of the plane.
  static void prep_read_fixed(io_uring_sqe* sqe, int fd, void* buf,
                              unsigned len, unsigned buf_index,
                              std::uint64_t user_data) {
    sqe->opcode = IORING_OP_READ_FIXED;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = len;
    sqe->buf_index = static_cast<std::uint16_t>(buf_index);
    sqe->user_data = user_data;
  }

  static void prep_send(io_uring_sqe* sqe, int fd, const void* buf,
                        unsigned len, std::uint64_t user_data) {
    sqe->opcode = IORING_OP_SEND;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = len;
    sqe->msg_flags = MSG_NOSIGNAL;
    sqe->user_data = user_data;
  }

  static void prep_read(io_uring_sqe* sqe, int fd, void* buf, unsigned len,
                        std::uint64_t user_data) {
    sqe->opcode = IORING_OP_READ;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = len;
    sqe->user_data = user_data;
  }

  /// Cancel every pending op whose user_data matches `target`.
  static void prep_cancel(io_uring_sqe* sqe, std::uint64_t target,
                          std::uint64_t user_data) {
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = target;
    sqe->user_data = user_data;
  }

 private:
  int ring_fd_ = -1;
  unsigned features_ = 0;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  void* rings_ = nullptr;
  std::size_t rings_sz_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  /// Local (unpublished) SQ tail; published to *sq_tail_ on submit.
  unsigned pending_tail_ = 0;
};

/// One-shot probe: can this process create a ring with the features the
/// server plane needs? SINGLE_MMAP (checked by init), EXT_ARG — the worker
/// loop polls its stop flag on a timed wait, so a kernel without EXT_ARG
/// timeouts (< 5.11) falls back to epoll — and multishot accept (< 5.19
/// rejects the IORING_ACCEPT_MULTISHOT flag). The multishot check must be
/// functional: REGISTER_PROBE only reports opcodes, and IORING_OP_ACCEPT
/// itself predates the flag. So arm a multishot accept on a private loopback
/// listener nobody ever connects to: a supporting kernel parks the op (the
/// short wait times out with no CQE); an older one completes it immediately
/// with -EINVAL.
inline bool io_uring_available() {
  Uring probe;
  if (!probe.init(8) || (probe.features() & IORING_FEAT_EXT_ARG) == 0)
    return false;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  bool ok = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
            ::listen(fd, 1) == 0;
  if (ok) {
    io_uring_sqe* sqe = probe.get_sqe();  // fresh 8-entry ring: never null
    ok = sqe != nullptr;
    if (ok) {
      Uring::prep_accept_multishot(sqe, fd, 1);
      probe.submit_and_wait(1, 10);
      io_uring_cqe cqe;
      if (probe.reap(&cqe, 1) == 1 && cqe.res < 0) ok = false;
    }
  }
  // destroy() (~Uring) tears the ring down before the fd closes, so the
  // parked accept never dangles.
  probe.destroy();
  ::close(fd);
  return ok;
}

}  // namespace upsl::server

#else
#define UPSL_HAVE_IOURING 0

namespace upsl::server {
inline bool io_uring_available() { return false; }
}  // namespace upsl::server

#endif  // __linux__ && <linux/io_uring.h>
