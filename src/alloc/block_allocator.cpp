#include "alloc/block_allocator.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/checksum.hpp"
#include "common/crashpoint.hpp"

namespace upsl::alloc {

using pmem::persist;
using pmem::pm_cas_value;
using pmem::pm_load;
using pmem::pm_store;

namespace {
bool trace_on() {
  static const bool on = std::getenv("UPSL_ALLOC_TRACE") != nullptr;
  return on;
}
#define ATRACE(...) \
  do { \
    if (trace_on()) std::fprintf(stderr, __VA_ARGS__); \
  } while (0)

/// Integrity stamp over a descriptor's alloc side: (epoch, count,
/// alloc_rivs). Serialized through a local buffer so the stamp is a pure
/// function of the covered values, independent of the packed count word.
std::uint32_t mag_alloc_stamp(std::uint64_t epoch, std::uint32_t count,
                              const std::uint64_t* rivs) {
  std::uint64_t words[2 + kMagazineSlots];
  words[0] = epoch;
  words[1] = count;
  for (std::uint32_t i = 0; i < kMagazineSlots; ++i) words[2 + i] = rivs[i];
  return checksum_stamp(words, sizeof(words));
}
}  // namespace

BlockAllocator::BlockAllocator(std::vector<ChunkAllocator*> pools,
                               ArenaHeader* arenas, ThreadLog* logs,
                               const std::uint64_t* epoch_word, Config cfg,
                               MagazineDesc* magazines)
    : pools_(std::move(pools)),
      arenas_(arenas),
      logs_(logs),
      epoch_word_(epoch_word),
      cfg_(cfg),
      mags_(magazines) {
  if (pools_.empty()) throw std::invalid_argument("allocator needs >= 1 pool");
  if (cfg_.block_size < kCacheLineSize || cfg_.block_size % kCacheLineSize != 0)
    throw std::invalid_argument("block size must be a multiple of 64");
  for (ChunkAllocator* ca : pools_) {
    if (ca->chunk_data_size() < cfg_.block_size)
      throw std::invalid_argument("chunk too small for one block");
  }
  if (cfg_.magazine_capacity < 1) cfg_.magazine_capacity = 1;
  if (cfg_.magazine_capacity > kMagazineSlots)
    cfg_.magazine_capacity = kMagazineSlots;
  if (mags_ != nullptr) {
    // The env kill switch (mirrors UPSL_DISABLE_SIMD) only disables the
    // fast path; stale descriptors from a magazine-mode run are still
    // recovered, so the switch can be flipped across restarts for bisection.
    const char* kill = std::getenv("UPSL_DISABLE_MAGAZINES");
    magazines_on_ = !(kill != nullptr && kill[0] != '\0' && kill[0] != '0');
    dram_ = std::make_unique<DramMagazine[]>(kMaxThreads);
  }
}

std::uint32_t BlockAllocator::my_arena() const {
  const auto arena_idx =
      static_cast<std::uint32_t>(ThreadRegistry::id()) / num_pools();
  if (arena_idx >= cfg_.arenas_per_pool)
    throw std::logic_error(
        "thread id exceeds arenas_per_pool * num_pools; raise max_threads");
  return arena_idx;
}

std::size_t BlockAllocator::blocks_per_chunk(std::uint32_t pool_idx) const {
  return pools_[pool_idx]->chunk_data_size() / cfg_.block_size;
}

std::pair<std::uint64_t, std::uint64_t> BlockAllocator::format_chunk(
    std::uint32_t pool_idx, std::uint32_t c) {
  ChunkAllocator& ca = *pools_[pool_idx];
  const std::uint64_t epoch = current_epoch();
  char* data = ca.chunk_data(c);
  const std::size_t n = blocks_per_chunk(pool_idx);
  std::memset(ca.chunk_base(c), 0, ca.header().chunk_size);

  ChunkHeader* ch = ca.chunk_header(c);
  ch->magic = kChunkMagic;
  ch->chunk_id = c;
  ch->committed = 0;

  const std::uint16_t pool_id = ca.pool().id();
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto* b = reinterpret_cast<MemBlock*>(data + i * cfg_.block_size);
    const auto off = static_cast<std::uint32_t>(
        ChunkAllocator::kChunkHeaderSize + i * cfg_.block_size);
    b->self = riv::encode(pool_id, c, off);
    b->next = (i + 1 < n)
                  ? riv::encode(pool_id, c,
                                off + static_cast<std::uint32_t>(cfg_.block_size))
                  : 0;
    b->epoch_id = epoch;
    b->state = MemBlock::kFreeState;
    b->owner_tag = 0;
    if (i == 0) head = b->self;
    if (i + 1 == n) tail = b->self;
  }
  persist(ca.chunk_base(c), ca.header().chunk_size);
  return {head, tail};
}

void BlockAllocator::bootstrap() {
  const std::uint64_t epoch = current_epoch();
  const std::uint32_t A = cfg_.arenas_per_pool;
  for (std::uint32_t p = 0; p < num_pools(); ++p) {
    ChunkAllocator& ca = *pools_[p];
    const std::size_t n = blocks_per_chunk(p);
    if (n < A)
      throw std::invalid_argument(
          "chunk too small to seed one block per arena at bootstrap");
    const std::int64_t claimed = ca.claim_chunk(epoch, 0);
    if (claimed < 0) throw std::bad_alloc();
    const auto c = static_cast<std::uint32_t>(claimed);

    // Carve blocks and deal them round-robin: arena a gets blocks
    // a, a+A, a+2A, ... chained in order, so every arena starts non-empty
    // (the free-list anchor invariant: the last block is never popped).
    char* data = ca.chunk_data(c);
    std::memset(ca.chunk_base(c), 0, ca.header().chunk_size);
    ChunkHeader* ch = ca.chunk_header(c);
    ch->magic = kChunkMagic;
    ch->chunk_id = c;
    ch->owner_arena = 0;
    const std::uint16_t pool_id = ca.pool().id();
    auto riv_at = [&](std::size_t i) {
      return riv::encode(pool_id, c,
                         static_cast<std::uint32_t>(
                             ChunkAllocator::kChunkHeaderSize +
                             i * cfg_.block_size));
    };
    for (std::size_t i = 0; i < n; ++i) {
      auto* b = reinterpret_cast<MemBlock*>(data + i * cfg_.block_size);
      b->self = riv_at(i);
      b->next = (i + A < n) ? riv_at(i + A) : 0;
      b->epoch_id = epoch;
      b->state = MemBlock::kFreeState;
      b->owner_tag = 0;
    }
    ch->committed = 1;
    persist(ca.chunk_base(c), ca.header().chunk_size);
    ca.commit_chunk(c);

    for (std::uint32_t a = 0; a < A; ++a) {
      ArenaHeader& ah = arena(p, a);
      std::size_t last = a;
      while (last + A < n) last += A;
      pm_store(ah.head, riv_at(a));
      pm_store(ah.tail, riv_at(last));
    }
    persist(&arena(p, 0), A * sizeof(ArenaHeader));
  }
}

void BlockAllocator::repair_tail(std::uint32_t pool_idx,
                                 std::uint32_t arena_idx) {
  ArenaHeader& ah = arena(pool_idx, arena_idx);
  std::uint64_t anchor = pm_load(ah.head);
  if (anchor == 0) return;
  std::uint64_t spins = 0;
  while (true) {
    if (++spins > (64u << 20))
      throw std::logic_error("livelock detected in repair_tail");
    const std::uint64_t nxt = pm_load(block_at(anchor)->next);
    if (nxt == 0) break;
    anchor = nxt;
  }
  if (pm_load(ah.tail) != anchor) {
    ATRACE("[repair_tail p=%u a=%u tail %llu -> %llu]\n", pool_idx, arena_idx,
           (unsigned long long)pm_load(ah.tail), (unsigned long long)anchor);
    pm_store(ah.tail, anchor);
    persist(&ah.tail, sizeof(ah.tail));
    UPSL_CRASH_POINT("alloc.tail_repaired");
  }
}

void BlockAllocator::repair_tails() {
  for (std::uint32_t p = 0; p < num_pools(); ++p)
    for (std::uint32_t a = 0; a < cfg_.arenas_per_pool; ++a) repair_tail(p, a);
}

void BlockAllocator::log_attempt(LogKind kind, std::uint64_t block,
                                 std::uint64_t pred, std::uint64_t key,
                                 std::uint64_t aux0, std::uint64_t aux1) {
  ThreadLog& log = logs_[ThreadRegistry::id()];
  const std::uint64_t epoch = current_epoch();
  if (log.kind != static_cast<std::uint64_t>(LogKind::kNone) &&
      pm_load(log.epoch) != epoch) {
    handle_stale_log(log);
  }
  log.kind = static_cast<std::uint64_t>(kind);
  log.block = block;
  log.pred = pred;
  log.key = key;
  log.aux0 = aux0;
  log.aux1 = aux1;
  log.aux2 = 0;
  pm_store(log.epoch, epoch);
  persist(&log, sizeof(log));
  UPSL_CRASH_POINT("alloc.after_log");
}

void BlockAllocator::handle_stale_log(ThreadLog& log) {
  const std::uint64_t stale_epoch = pm_load(log.epoch);
  switch (static_cast<LogKind>(log.kind)) {
    case LogKind::kNodeAlloc:
      recover_node_alloc(log);
      break;
    case LogKind::kChunkProvision:
      recover_provision(log);
      break;
    case LogKind::kNone:
      break;
  }
  // A crash can also land between a chunk claim and the corresponding log
  // write; such chunks are PENDING with our thread id and an old epoch and
  // were certainly never linked — reclaim them.
  sweep_pending_chunks(stale_epoch);
  // Mark the log consumed so the recovery does not run twice in one epoch.
  // (A crash before this line re-runs the recovery, which is idempotent.)
  UPSL_CRASH_POINT("alloc.stale_log_resolved");
  log.kind = static_cast<std::uint64_t>(LogKind::kNone);
  pm_store(log.epoch, current_epoch());
  persist(&log, sizeof(log));
}

bool BlockAllocator::in_my_free_list(std::uint64_t riv) const {
  std::uint64_t cur = pm_load(arena(my_pool(), my_arena()).head);
  while (cur != 0) {
    if (cur == riv) return true;
    cur = pm_load(block_at(cur)->next);
  }
  return false;
}

void BlockAllocator::convert_and_link(std::uint64_t obj_riv) {
  MemBlock* b = block_at(obj_riv);
  std::memset(b, 0, cfg_.block_size);
  b->self = obj_riv;
  b->next = 0;
  b->epoch_id = current_epoch();
  b->owner_tag = 0;
  pm_store(b->state, MemBlock::kFreeState);
  persist(b, cfg_.block_size);
  UPSL_CRASH_POINT("alloc.recover_converted");
  link_in_tail(my_pool(), my_arena(), obj_riv, obj_riv, nullptr);
}

void BlockAllocator::recover_node_alloc(const ThreadLog& log) {
  MemBlock* b = block_at(log.block);
  const std::uint64_t state = pm_load(b->state);
  const std::uint64_t owner = pm_load(b->owner_tag);
  const std::uint64_t my_tag = owner_tag_of(ThreadRegistry::id());

  if (state != MemBlock::kFreeState && owner == my_tag) {
    // The pop and the object's initialization both became durable. The only
    // question is whether the object was linked into the structure.
    if (pm_load(b->epoch_id) == current_epoch()) return;  // re-stamped already
    if (!reach_fn_) return;  // no structure knowledge: leak-safe skip
    if (reach_fn_(log)) return;
    deallocate(log.block);
    return;
  }
  if (state != MemBlock::kFreeState && owner != 0) {
    // Someone else's durable object: our pop attempt lost the pre-crash race
    // and the block was claimed by another thread (whose own log covers it).
    return;
  }
  // Free-looking (or zeroed) content. Either our pop never became durable —
  // then the block is still on our (single-consumer) free list — or it did
  // and the initialization was lost, leaking the block.
  if (in_my_free_list(log.block)) return;
  convert_and_link(log.block);
}

void BlockAllocator::sweep_pending_chunks(std::uint64_t stale_epoch) {
  const auto tid = static_cast<std::uint16_t>(ThreadRegistry::id());
  ThreadLog& log = logs_[ThreadRegistry::id()];
  for (std::uint32_t p = 0; p < num_pools(); ++p) {
    ChunkAllocator& ca = *pools_[p];
    const auto n = static_cast<std::uint32_t>(ca.header().max_chunks);
    for (std::uint32_t c = 0; c < n; ++c) {
      const DirEntry e = ca.dir_entry(c);
      if (e.state != ChunkState::kPending || e.thread != tid ||
          e.epoch > stale_epoch)
        continue;
      // Skip the chunk the log itself describes; recover_provision owns it.
      if (static_cast<LogKind>(log.kind) == LogKind::kChunkProvision &&
          log.aux0 == c && (log.aux1 >> 32) == p)
        continue;
      UPSL_CRASH_POINT("alloc.sweep_pending");
      ca.release_chunk(c);
    }
  }
}

void BlockAllocator::recover_provision(const ThreadLog& log) {
  const auto c = static_cast<std::uint32_t>(log.aux0);
  const auto pool_idx = static_cast<std::uint32_t>(log.aux1 >> 32);
  ChunkAllocator& ca = *pools_[pool_idx];
  const DirEntry e = ca.dir_entry(c);
  if (e.state == ChunkState::kFree) return;  // already reclaimed
  ChunkHeader* ch = ca.chunk_header(c);
  if (e.state == ChunkState::kAllocated) {
    // Provisioning completed; at worst the committed flag lost its flush.
    if (pm_load(ch->committed) == 0) {
      pm_store(ch->committed, std::uint64_t{1});
      persist(&ch->committed, sizeof(ch->committed));
    }
    return;
  }
  // state == kPending.
  if (pm_load(ch->committed) == 1) {
    ca.commit_chunk(c);  // crashed between committed flag and dir update
    return;
  }
  const std::uint64_t chain_head = log.block;
  const std::uint64_t logged_tail = pm_load(log.aux2);
  if (logged_tail != 0) {
    MemBlock* tb = block_at(logged_tail);
    const std::uint64_t tb_next = pm_load(tb->next);
    if (tb_next == chain_head) {
      // The link CAS became durable: the chain is reachable. Finish.
      persist(&tb->next, sizeof(tb->next));
      pm_store(ch->committed, std::uint64_t{1});
      persist(&ch->committed, sizeof(ch->committed));
      ca.commit_chunk(c);
      return;
    }
    if (tb_next != 0) {
      // Defensive: with single-consumer arenas our link CAS cannot lose to
      // another writer, so this indicates the logged tail has been reused.
      // Freeing would risk freeing live memory; keep the chunk allocated
      // (at worst one chunk leaks — bounded, documented in DESIGN.md).
      pm_store(ch->committed, std::uint64_t{1});
      persist(&ch->committed, sizeof(ch->committed));
      ca.commit_chunk(c);
      return;
    }
  }
  // Link never became durable: the chain is unreachable; reclaim the chunk.
  ca.release_chunk(c);
}

void BlockAllocator::provision_new_chunk(std::uint32_t pool_idx,
                                         std::uint32_t arena_idx) {
  ChunkAllocator& ca = *pools_[pool_idx];
  // Resolve any stale log first: the leaked chunk it may describe could be
  // the last free chunk in the pool.
  ThreadLog& mylog = logs_[ThreadRegistry::id()];
  if (mylog.kind != static_cast<std::uint64_t>(LogKind::kNone) &&
      pm_load(mylog.epoch) != current_epoch()) {
    handle_stale_log(mylog);
  }
  const std::uint64_t epoch = current_epoch();
  const auto tid = static_cast<std::uint16_t>(ThreadRegistry::id());
  const std::int64_t claimed = ca.claim_chunk(epoch, tid);
  if (claimed < 0) throw std::bad_alloc();
  const auto c = static_cast<std::uint32_t>(claimed);
  UPSL_CRASH_POINT("alloc.chunk_claimed");

  const std::uint64_t chain_head =
      riv::encode(ca.pool().id(), c,
                  static_cast<std::uint32_t>(ChunkAllocator::kChunkHeaderSize));
  log_attempt(LogKind::kChunkProvision, chain_head, 0, 0, c,
              (static_cast<std::uint64_t>(pool_idx) << 32) | arena_idx);
  UPSL_CRASH_POINT("alloc.chunk_logged");

  auto [head, tail] = format_chunk(pool_idx, c);
  ChunkHeader* ch = ca.chunk_header(c);
  ch->owner_arena = arena_idx;
  persist(ch, sizeof(*ch));
  UPSL_CRASH_POINT("alloc.chunk_formatted");

  link_in_tail(pool_idx, arena_idx, head, tail, &logs_[ThreadRegistry::id()]);
  UPSL_CRASH_POINT("alloc.chunk_linked");

  pm_store(ch->committed, std::uint64_t{1});
  persist(&ch->committed, sizeof(ch->committed));
  UPSL_CRASH_POINT("alloc.chunk_committed");
  ca.commit_chunk(c);
}

void BlockAllocator::link_in_tail(std::uint32_t pool_idx, std::uint32_t arena_idx,
                                  std::uint64_t chain_head,
                                  std::uint64_t chain_tail,
                                  ThreadLog* provision_log) {
  // Function 6 (LinkInTail). We help advance a lagging tail pointer
  // unconditionally rather than only on an epoch mismatch: the thesis' epoch
  // check distinguishes "tail stale because of a crash" from "tail about to
  // be advanced by a live thread"; helping in both cases is safe (the CAS is
  // conditional) and removes the wait on the live thread.
  ArenaHeader& ah = arena(pool_idx, arena_idx);
  std::uint64_t tail_riv;
  std::uint64_t spins = 0;
  while (true) {
    if (++spins > (8u << 20))
      throw std::logic_error("livelock detected in link_in_tail");
    tail_riv = pm_load(ah.tail);
    MemBlock* tb = block_at(tail_riv);
    if (provision_log != nullptr) {
      // Record which block we are about to CAS so recovery can decide
      // whether the link became durable (recover_provision).
      pm_store(provision_log->aux2, tail_riv);
      persist(&provision_log->aux2, sizeof(provision_log->aux2));
    }
    UPSL_CRASH_POINT("alloc.link_before_cas");
    if (pm_cas_value(tb->next, std::uint64_t{0}, chain_head)) {
      UPSL_CRASH_POINT("alloc.link_after_cas");
      persist(&tb->next, sizeof(tb->next));
      break;
    }
    const std::uint64_t nxt = pm_load(tb->next);
    if (nxt != 0 && pm_cas_value(ah.tail, tail_riv, nxt)) {
      persist(&ah.tail, sizeof(ah.tail));
    }
  }
  if (pm_cas_value(ah.tail, tail_riv, chain_tail)) {
    persist(&ah.tail, sizeof(ah.tail));
  }
}

void* BlockAllocator::allocate(std::uint64_t pred_riv, std::uint64_t key,
                               std::uint64_t* out_riv) {
  const std::uint32_t pool_idx = my_pool();
  const std::uint32_t arena_idx = my_arena();
  if (mags_ != nullptr) sync_thread_epoch();
  if (magazines_on_) return allocate_from_magazine(pool_idx, arena_idx, out_riv);
  counters_.legacy_allocs.fetch_add(1, std::memory_order_relaxed);
  return allocate_legacy(pred_riv, key, out_riv);
}

void* BlockAllocator::allocate_legacy(std::uint64_t pred_riv, std::uint64_t key,
                                      std::uint64_t* out_riv) {
  const std::uint32_t pool_idx = my_pool();
  const std::uint32_t arena_idx = my_arena();
  ArenaHeader& ah = arena(pool_idx, arena_idx);

  std::uint64_t spins = 0;
  while (true) {
    if (++spins > (1u << 20))
      throw std::logic_error("livelock detected in allocate");
    const std::uint64_t head_riv = pm_load(ah.head);
    MemBlock* b = block_at(head_riv);
    const std::uint64_t next = pm_load(b->next);
    if (next == 0) {
      // Head is the last resident block; it stays as the LinkInTail anchor
      // (Function 4 line 34) and we grow the arena instead.
      provision_new_chunk(pool_idx, arena_idx);
      continue;
    }
    log_attempt(LogKind::kNodeAlloc, head_riv, pred_riv, key, 0, 0);
    // Crashes after this point cannot leak: the log names the block, and a
    // future allocation by this thread id reclaims it if unreachable.
    if (pm_cas_value(ah.head, head_riv, next)) {
      UPSL_CRASH_POINT("alloc.after_pop");
      persist(&ah.head, sizeof(ah.head));
      std::memset(b, 0, cfg_.block_size);
      b->epoch_id = current_epoch();
      b->owner_tag = owner_tag_of(ThreadRegistry::id());
      if (out_riv != nullptr) *out_riv = head_riv;
      return b;
    }
    // Single-consumer arenas make this unreachable in normal operation, but
    // a mis-bound thread id should fail loudly rather than spin.
    throw std::logic_error("free-list pop CAS failed on single-consumer arena");
  }
}

void BlockAllocator::deallocate(std::uint64_t obj_riv) {
  if (mags_ != nullptr) sync_thread_epoch();
  MemBlock* b = block_at(obj_riv);

  if (!b->looks_free()) {
    if (magazines_on_) {
      deallocate_to_magazine(obj_riv);
      return;
    }
    counters_.legacy_frees.fetch_add(1, std::memory_order_relaxed);
    // ConvertToMemoryBlock: de-initialize the object and re-arm it as a
    // free block (Function 5 lines 46-48), then push it.
    convert_and_link(obj_riv);
    return;
  }
  // Already a block: this deallocation is being re-run after a crash. If
  // the block is visible as our arena's tail or already has a successor, it
  // is linked in — done (Function 5 lines 49-52).
  if (magazines_on_ && in_my_return_chain(obj_riv)) return;
  if (pm_load(arena(my_pool(), my_arena()).tail) == obj_riv) return;
  if (pm_load(b->next) != 0) return;
  if (in_my_free_list(obj_riv)) return;  // it is the head or mid-list
  link_in_tail(my_pool(), my_arena(), obj_riv, obj_riv, nullptr);
}

// ---------------------------------------------------------------------------
// Thread-local magazines
// ---------------------------------------------------------------------------

void* BlockAllocator::allocate_from_magazine(std::uint32_t pool_idx,
                                             std::uint32_t arena_idx,
                                             std::uint64_t* out_riv) {
  DramMagazine& m = dram_[ThreadRegistry::id()];
  if (m.cursor >= m.count) refill_magazine(pool_idx, arena_idx);
  // Fast path: no PMEM metadata writes at all. The block stays covered by
  // the durable descriptor entry written at refill time until the caller's
  // own persist (node initialization) or a return entry takes over.
  const std::uint64_t riv = m.rivs[m.cursor++];
  MemBlock* b = block_at(riv);
  std::memset(b, 0, cfg_.block_size);
  b->epoch_id = current_epoch();
  b->owner_tag = owner_tag_of(ThreadRegistry::id());
  if (out_riv != nullptr) *out_riv = riv;
  counters_.magazine_allocs.fetch_add(1, std::memory_order_relaxed);
  return b;
}

void BlockAllocator::refill_magazine(std::uint32_t pool_idx,
                                     std::uint32_t arena_idx) {
  const int tid = ThreadRegistry::id();
  DramMagazine& m = dram_[tid];
  MagazineDesc& d = mags_[tid];
  // Returns first: their blocks become refill candidates immediately, and
  // an empty return side keeps the descriptor rewrite below the only
  // covering record for every block the thread caches.
  flush_returns(pool_idx, arena_idx);

  ArenaHeader& ah = arena(pool_idx, arena_idx);
  const std::uint32_t cap = cfg_.magazine_capacity;
  std::uint64_t batch[kMagazineSlots];
  std::uint64_t head_riv = 0;
  std::uint64_t new_head = 0;
  std::uint32_t n = 0;
  std::uint64_t spins = 0;
  while (true) {
    if (++spins > (1u << 20))
      throw std::logic_error("livelock detected in refill_magazine");
    head_riv = pm_load(ah.head);
    std::uint64_t cur = head_riv;
    n = 0;
    while (n < cap) {
      const std::uint64_t nxt = pm_load(block_at(cur)->next);
      if (nxt == 0) break;  // cur is the LinkInTail anchor; never pop it
      batch[n++] = cur;
      cur = nxt;
    }
    if (n > 0) {
      new_head = cur;
      break;
    }
    provision_new_chunk(pool_idx, arena_idx);
  }

  // Persist the whole batch into the descriptor before detaching it from
  // the free list — the magazine analogue of LogChangeAttempt, one log
  // entry (and one fence) covering up to `cap` pops. A crash at any later
  // point leaks at most these n blocks; the next epoch's magazine scan
  // (recover_magazine) reclaims each one.
  const std::uint64_t epoch = current_epoch();
  for (std::uint32_t i = 0; i < n; ++i) pm_store(d.alloc_rivs[i], batch[i]);
  for (std::uint32_t i = n; i < kMagazineSlots; ++i)
    pm_store(d.alloc_rivs[i], std::uint64_t{0});
  std::uint64_t stamped[kMagazineSlots] = {};
  std::memcpy(stamped, batch, n * sizeof(std::uint64_t));
  pm_store(d.alloc_count, mag_pack(n, mag_alloc_stamp(epoch, n, stamped)));
  pm_store(d.epoch, epoch);
  persist(&d, sizeof(d));
  UPSL_CRASH_POINT("alloc.mag_refill_logged");

  if (!pm_cas_value(ah.head, head_riv, new_head))
    throw std::logic_error("free-list pop CAS failed on single-consumer arena");
  persist(&ah.head, sizeof(ah.head));
  UPSL_CRASH_POINT("alloc.mag_refill_popped");

  std::memcpy(m.rivs, batch, n * sizeof(std::uint64_t));
  m.count = n;
  m.cursor = 0;
  if (trace_on()) {
    std::fprintf(stderr, "[refill tid=%d epoch=%llu n=%u]", tid,
                 (unsigned long long)epoch, n);
    for (std::uint32_t i = 0; i < n; ++i)
      std::fprintf(stderr, " %llu", (unsigned long long)batch[i]);
    std::fprintf(stderr, "\n");
  }
  counters_.refills.fetch_add(1, std::memory_order_relaxed);
}

void BlockAllocator::deallocate_to_magazine(std::uint64_t obj_riv) {
  const int tid = ThreadRegistry::id();
  DramMagazine& m = dram_[tid];
  MagazineDesc& d = mags_[tid];
  if (m.ret_count >= cfg_.magazine_capacity)
    flush_returns(my_pool(), my_arena());

  // Record the riv durably before de-initializing the object: from here
  // until flush_returns links the chain, the block is reachable from
  // neither the structure nor the free list, and only this entry lets
  // recovery find it. Flush without fence — the entry only needs to be
  // durable by the time the chain link commits, and flush_returns fences.
  ATRACE("[ret tid=%d slot=%u riv=%llu]\n", tid, m.ret_count,
         (unsigned long long)obj_riv);
  pm_store(d.ret_rivs[m.ret_count], obj_riv);
  pmem::flush(&d.ret_rivs[m.ret_count], sizeof(std::uint64_t));
  UPSL_CRASH_POINT("alloc.mag_ret_recorded");

  // ConvertToMemoryBlock, chained onto the thread's pending-return list
  // instead of the arena tail (no CAS, no fence).
  MemBlock* b = block_at(obj_riv);
  std::memset(b, 0, cfg_.block_size);
  b->self = obj_riv;
  b->next = m.ret_head;
  b->epoch_id = current_epoch();
  b->owner_tag = 0;
  pm_store(b->state, MemBlock::kFreeState);
  pmem::flush(b, cfg_.block_size);
  UPSL_CRASH_POINT("alloc.mag_ret_converted");

  if (m.ret_count == 0) m.ret_tail = obj_riv;
  m.ret_head = obj_riv;
  ++m.ret_count;
  counters_.magazine_frees.fetch_add(1, std::memory_order_relaxed);
}

void BlockAllocator::flush_returns(std::uint32_t pool_idx,
                                   std::uint32_t arena_idx) {
  const int tid = ThreadRegistry::id();
  DramMagazine& m = dram_[tid];
  if (m.ret_count == 0) return;
  MagazineDesc& d = mags_[tid];
  // One fence retires all the per-free CLWBs (return entries + converted
  // block contents); only then may the chain become reachable.
  pmem::fence();
  ATRACE("[flush_returns tid=%d n=%u head=%llu tail=%llu]\n", tid, m.ret_count,
         (unsigned long long)m.ret_head, (unsigned long long)m.ret_tail);
  link_in_tail(pool_idx, arena_idx, m.ret_head, m.ret_tail, nullptr);
  UPSL_CRASH_POINT("alloc.mag_ret_linked");
  // Clear the covering entries only after link_in_tail persisted the link:
  // cleared earlier, a crash between the clear and the link becoming
  // durable would leak the whole chain. (Stale non-zero entries in the
  // other direction are harmless — recovery's guards skip linked blocks.)
  for (std::uint32_t i = 0; i < m.ret_count; ++i)
    pm_store(d.ret_rivs[i], std::uint64_t{0});
  pmem::flush(&d.ret_rivs[0], m.ret_count * sizeof(std::uint64_t));
  m.ret_count = 0;
  m.ret_head = 0;
  m.ret_tail = 0;
  counters_.return_flushes.fetch_add(1, std::memory_order_relaxed);
}

bool BlockAllocator::in_my_return_chain(std::uint64_t riv) const {
  const DramMagazine& m = dram_[ThreadRegistry::id()];
  std::uint64_t cur = m.ret_head;
  for (std::uint32_t i = 0; i < m.ret_count && cur != 0; ++i) {
    if (cur == riv) return true;
    cur = pm_load(block_at(cur)->next);
  }
  return false;
}

void BlockAllocator::sync_thread_epoch() {
  const int tid = ThreadRegistry::id();
  DramMagazine& m = dram_[tid];
  const std::uint64_t epoch = current_epoch();
  if (UPSL_LIKELY(m.synced_epoch == epoch)) return;
  // First allocator call by this thread id in the current epoch: run the
  // deferred recovery walk (§4.1.4) extended with the magazine scan.
  //
  // Mark the epoch synced (and reset the DRAM mirror) *before* recovering:
  // stale-log recovery re-enters deallocate() to reclaim orphaned blocks,
  // and the nested call must not restart this sync. The flag is DRAM-only,
  // so a crash mid-recovery simply re-runs every (idempotent) step.
  m = DramMagazine{};
  m.synced_epoch = epoch;
  // Re-anchor the arena tail before anything pops or links: both recovery
  // scans below link reclaimed blocks through ah.tail, and a crash inside
  // LinkInTail can leave the tail pointing at a block a later refill pops
  // (the chain CAS can become durable on its own under partial-eviction
  // crashes while the tail advance was lost) — every chain linked through
  // such a dangling tail would be orphaned.
  repair_tail(my_pool(), my_arena());
  // Magazine scan first: it retires the descriptor, so frees issued by the
  // stale-log recovery below can safely take the magazine return path
  // without clobbering unscanned return entries.
  if (pm_load(mags_[tid].epoch) != epoch) recover_magazine(tid);
  ThreadLog& log = logs_[tid];
  if (log.kind != static_cast<std::uint64_t>(LogKind::kNone) &&
      pm_load(log.epoch) != epoch) {
    handle_stale_log(log);
  }
  // A crash can land between a chunk claim and any covering record; with
  // magazines the fast path writes no ThreadLog, so the stale-log sweep
  // cannot be relied on to run — sweep dead-epoch PENDING chunks here.
  sweep_pending_chunks(epoch - 1);
}

void BlockAllocator::recover_magazine(int tid) {
  MagazineDesc& d = mags_[tid];
  if (trace_on()) {
    std::fprintf(stderr, "[mag_recover tid=%d d.epoch=%llu now=%llu alloc:",
                 tid, (unsigned long long)pm_load(d.epoch),
                 (unsigned long long)current_epoch());
    for (std::uint32_t i = 0; i < kMagazineSlots; ++i)
      std::fprintf(stderr, " %llu", (unsigned long long)pm_load(d.alloc_rivs[i]));
    std::fprintf(stderr, " ret:");
    for (std::uint32_t i = 0; i < kMagazineSlots; ++i)
      std::fprintf(stderr, " %llu", (unsigned long long)pm_load(d.ret_rivs[i]));
    std::fprintf(stderr, "]\n");
  }
  // Verify the alloc-side integrity stamp before trusting any riv in the
  // descriptor. A mismatch means the medium damaged the descriptor after its
  // persist (refill and retire both write it whole under one fence, and the
  // crash-mode analysis in docs/integrity.md shows every legal crash leaves
  // a stamp-consistent or fully-rolled-back image under kDiscardUnflushed);
  // dereferencing a damaged riv could corrupt live data, so the descriptor
  // is quarantined instead: reclamation is skipped, the named blocks are
  // deliberately leaked (bounded at 2 * kMagazineSlots), and the loss is
  // counted for the integrity report.
  {
    std::uint64_t rivs[kMagazineSlots];
    for (std::uint32_t i = 0; i < kMagazineSlots; ++i)
      rivs[i] = pm_load(d.alloc_rivs[i]);
    const std::uint64_t packed = pm_load(d.alloc_count);
    std::uint64_t words[2 + kMagazineSlots];
    words[0] = pm_load(d.epoch);
    words[1] = mag_count_of(packed);
    for (std::uint32_t i = 0; i < kMagazineSlots; ++i) words[2 + i] = rivs[i];
    if (!checksum_verify(words, sizeof(words), mag_stamp_of(packed))) {
      std::uint64_t lost = 0;
      for (std::uint32_t i = 0; i < kMagazineSlots; ++i) {
        if (rivs[i] != 0) ++lost;
        if (pm_load(d.ret_rivs[i]) != 0) ++lost;
      }
      ATRACE("[mag_recover tid=%d QUARANTINED, %llu blocks leaked]\n", tid,
             (unsigned long long)lost);
      counters_.quarantined_magazines.fetch_add(1, std::memory_order_relaxed);
      counters_.quarantined_blocks.fetch_add(lost, std::memory_order_relaxed);
      pmem::Stats::instance().checksum_failures.fetch_add(
          1, std::memory_order_relaxed);
      retire_magazine(d);
      return;
    }
  }
  // Alloc entries first: a block can be named by both a stale alloc slot
  // and a stale return slot (popped, handed out, freed again); reclaiming
  // the alloc side first parks it in the free list, where the return-side
  // scan's in_my_free_list guard skips it.
  for (std::uint32_t i = 0; i < kMagazineSlots; ++i)
    reclaim_magazine_block(pm_load(d.alloc_rivs[i]));
  UPSL_CRASH_POINT("alloc.mag_recover_mid");
  for (std::uint32_t i = 0; i < kMagazineSlots; ++i)
    reclaim_magazine_block(pm_load(d.ret_rivs[i]));
  // Retire the descriptor for the new epoch. A crash before this persist
  // re-runs both scans — every reclaim guard tolerates re-execution.
  retire_magazine(d);
  counters_.magazine_recoveries.fetch_add(1, std::memory_order_relaxed);
}

void BlockAllocator::retire_magazine(MagazineDesc& d) {
  for (std::uint32_t i = 0; i < kMagazineSlots; ++i) {
    pm_store(d.alloc_rivs[i], std::uint64_t{0});
    pm_store(d.ret_rivs[i], std::uint64_t{0});
  }
  const std::uint64_t epoch = current_epoch();
  static constexpr std::uint64_t kZeroRivs[kMagazineSlots] = {};
  pm_store(d.alloc_count, mag_pack(0, mag_alloc_stamp(epoch, 0, kZeroRivs)));
  pm_store(d.epoch, epoch);
  // Dying here (before the persist) rolls the zeroed slots back to the old
  // rivs under kDiscardUnflushed, or leaves a mix under random eviction;
  // either way the epoch stamp is not durable yet, so the next epoch
  // re-enters recover_magazine and the reclaim guards see each surviving
  // riv at most once more (a mixed image can also fail the stamp and be
  // quarantined — harmless, since this pass already reclaimed every riv).
  UPSL_CRASH_POINT("alloc.mag_recover_retiring");
  persist(&d, sizeof(d));
}

void BlockAllocator::reclaim_magazine_block(std::uint64_t riv) {
  if (riv == 0) return;
  UPSL_CRASH_POINT("alloc.mag_reclaim_block");
  // Same classification as recover_node_alloc, minus the log context:
  //  * already on our free list (pop never became durable, or a pending
  //    return that did get linked): nothing to do;
  //  * durable free-looking contents off-list: a conversion that never got
  //    linked, or a lost initialization — re-arm and link;
  //  * durable object contents: keep iff the structure still reaches it
  //    (it may be a live node from this or an earlier batch), otherwise it
  //    is an orphaned allocation — reclaim it.
  if (in_my_free_list(riv)) {
    ATRACE("[reclaim %llu: in-list]\n", (unsigned long long)riv);
    return;
  }
  MemBlock* b = block_at(riv);
  if (!b->looks_free()) {
    if (block_reach_fn_ == nullptr) return;  // no structure knowledge: leak-safe skip
    if (block_reach_fn_(riv)) {
      ATRACE("[reclaim %llu: reachable]\n", (unsigned long long)riv);
      return;
    }
  }
  ATRACE("[reclaim %llu: convert state=%llx]\n", (unsigned long long)riv,
         (unsigned long long)pm_load(b->state));
  convert_and_link(riv);
}

std::uint64_t BlockAllocator::riv_of(const void* p) const {
  for (ChunkAllocator* ca : pools_)
    if (ca->pool().contains(p)) return ca->riv_of(p);
  throw std::logic_error("riv_of: pointer not in any pool");
}

std::size_t BlockAllocator::count_free_blocks(std::uint32_t pool_idx,
                                              std::uint32_t arena_idx) const {
  std::size_t n = 0;
  std::uint64_t cur = pm_load(arena(pool_idx, arena_idx).head);
  while (cur != 0) {
    ++n;
    cur = pm_load(block_at(cur)->next);
  }
  return n;
}

std::size_t BlockAllocator::magazine_cached(int thread) const {
  if (dram_ == nullptr) return 0;
  const DramMagazine& m = dram_[thread];
  return (m.count - m.cursor) + m.ret_count;
}

std::size_t BlockAllocator::count_all_free_blocks() const {
  std::size_t n = 0;
  for (std::uint32_t p = 0; p < num_pools(); ++p)
    for (std::uint32_t a = 0; a < cfg_.arenas_per_pool; ++a)
      n += count_free_blocks(p, a);
  // Blocks parked in thread-local magazines are free too — they are just
  // cached off-list. Without this the conservation checks would "lose" up to
  // one magazine's worth of blocks per active thread.
  for (int t = 0; t < ThreadRegistry::high_water(); ++t) n += magazine_cached(t);
  return n;
}

void BlockAllocator::collect_free_rivs(std::vector<std::uint64_t>* out) const {
  for (std::uint32_t p = 0; p < num_pools(); ++p) {
    for (std::uint32_t a = 0; a < cfg_.arenas_per_pool; ++a) {
      std::uint64_t cur = pm_load(arena(p, a).head);
      while (cur != 0) {
        out->push_back(cur);
        cur = pm_load(block_at(cur)->next);
      }
    }
  }
  if (dram_ == nullptr) return;
  for (int t = 0; t < ThreadRegistry::high_water(); ++t) {
    const DramMagazine& m = dram_[t];
    for (std::uint32_t i = m.cursor; i < m.count; ++i) out->push_back(m.rivs[i]);
    std::uint64_t cur = m.ret_head;
    for (std::uint32_t i = 0; i < m.ret_count && cur != 0; ++i) {
      out->push_back(cur);
      cur = pm_load(block_at(cur)->next);
    }
  }
}

}  // namespace upsl::alloc
