#include "alloc/layout.hpp"

#include <cstring>

namespace upsl::alloc {

using pmem::pm_cas_value;
using pmem::pm_load;
using pmem::pm_store;

void ChunkAllocator::format(pmem::Pool& pool, const ChunkAllocatorConfig& cfg) {
  if (cfg.chunk_size % kCacheLineSize != 0 || cfg.max_chunks == 0)
    throw std::invalid_argument("bad chunk allocator config");

  const std::uint64_t dir_offset = align_up(sizeof(PoolHeader), kCacheLineSize);
  const std::uint64_t dir_bytes = cfg.max_chunks * sizeof(std::uint64_t);
  const std::uint64_t root_offset = align_up(dir_offset + dir_bytes, 4096);
  const std::uint64_t chunks_offset = align_up(root_offset + cfg.root_size, 4096);
  const std::uint64_t need = chunks_offset + cfg.max_chunks * cfg.chunk_size;
  if (need > pool.size())
    throw std::invalid_argument("pool too small for chunk allocator config");

  std::memset(pool.base(), 0, chunks_offset);  // header, dir, root zeroed

  auto* h = reinterpret_cast<PoolHeader*>(pool.base());
  h->version = 1;
  h->pool_id = pool.id();
  h->chunk_size = cfg.chunk_size;
  h->max_chunks = cfg.max_chunks;
  h->dir_offset = dir_offset;
  h->root_offset = root_offset;
  h->root_size = cfg.root_size;
  h->chunks_offset = chunks_offset;
  pmem::persist(h, sizeof(PoolHeader));
  pmem::persist(pool.base() + dir_offset, dir_bytes);
  pmem::persist(pool.base() + root_offset, cfg.root_size);
  // Magic last: a crash mid-format leaves an unformatted pool, never a
  // half-formatted one that attach would accept.
  pm_store(h->magic, kPoolMagic);
  pmem::persist(&h->magic, sizeof(h->magic));
}

ChunkAllocator::ChunkAllocator(pmem::Pool& pool)
    : pool_(pool), header_(reinterpret_cast<PoolHeader*>(pool.base())) {
  if (pm_load(header_->magic) != kPoolMagic)
    throw std::runtime_error("pool is not formatted");
  install_resolver();
}

void ChunkAllocator::install_resolver() {
  const auto chunks_offset = header_->chunks_offset;
  const auto chunk_size = header_->chunk_size;
  const auto dir_offset = header_->dir_offset;
  char* base = pool_.base();
  riv::Runtime::instance().configure_pool(
      pool_.id(), static_cast<std::uint32_t>(header_->max_chunks),
      [base, chunks_offset, chunk_size, dir_offset](std::uint32_t chunk) -> std::int64_t {
        const auto* dir = reinterpret_cast<const std::uint64_t*>(base + dir_offset);
        const DirEntry e = dir_unpack(pm_load(dir[chunk]));
        if (e.state == ChunkState::kFree) return -1;
        return static_cast<std::int64_t>(chunks_offset + chunk * chunk_size);
      });
}

std::int64_t ChunkAllocator::claim_chunk(std::uint64_t epoch, std::uint16_t thread) {
  const auto n = static_cast<std::uint32_t>(header_->max_chunks);
  for (std::uint32_t c = 0; c < n; ++c) {
    std::uint64_t* w = dir_word(c);
    const std::uint64_t cur = pm_load(*w);
    if (dir_unpack(cur).state != ChunkState::kFree) continue;
    if (pm_cas_value(*w, cur, dir_pack(ChunkState::kPending, epoch, thread))) {
      pmem::persist(w, sizeof(*w));
      return static_cast<std::int64_t>(c);
    }
  }
  return -1;
}

void ChunkAllocator::commit_chunk(std::uint32_t chunk) {
  std::uint64_t* w = dir_word(chunk);
  const DirEntry e = dir_unpack(pm_load(*w));
  pm_store(*w, dir_pack(ChunkState::kAllocated, e.epoch, e.thread));
  pmem::persist(w, sizeof(*w));
}

void ChunkAllocator::release_chunk(std::uint32_t chunk) {
  std::uint64_t* w = dir_word(chunk);
  pm_store(*w, dir_pack(ChunkState::kFree, 0, 0));
  pmem::persist(w, sizeof(*w));
}

DirEntry ChunkAllocator::dir_entry(std::uint32_t chunk) const {
  return dir_unpack(pm_load(*dir_word(chunk)));
}

std::uint64_t ChunkAllocator::riv_of(const void* p) const {
  const char* c = static_cast<const char*>(p);
  const auto off = static_cast<std::uint64_t>(c - pool_.base());
  if (off < header_->chunks_offset || off >= pool_.size())
    throw std::logic_error("riv_of: pointer outside chunk space");
  const std::uint64_t rel = off - header_->chunks_offset;
  const auto chunk = static_cast<std::uint32_t>(rel / header_->chunk_size);
  const auto in_chunk = static_cast<std::uint32_t>(rel % header_->chunk_size);
  return riv::encode(pool_.id(), chunk, in_chunk);
}

void ChunkAllocator::reattach() {
  header_ = reinterpret_cast<PoolHeader*>(pool_.base());
  if (pm_load(header_->magic) != kPoolMagic)
    throw std::runtime_error("pool is not formatted");
  // Re-install so the resolver captures the new base, then drop stale
  // chunk-base cache entries.
  install_resolver();
  riv::Runtime::instance().invalidate_pool(pool_.id());
}

}  // namespace upsl::alloc
