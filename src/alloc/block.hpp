// Memory block structure (thesis §4.3.4).
//
// Every block is the same size as a skip list node (blocks and nodes are the
// same size, large enough for a max-height node). While free, a block's
// first words carry the free-list link, its own RIV identity, and the epoch
// in which it last changed state, so interrupted allocations/deallocations
// can be recovered.
//
// Objects that overlay a block (skip list nodes) must preserve the meaning
// of three words so that allocation recovery can classify a block's durable
// state after a crash (BlockAllocator::recover_node_alloc):
//
//   offset 16  epoch_id   failure-free epoch of creation/last state change
//   offset 24  state      kFreeState while free; anything else when live
//                         (live objects must never store the magic here)
//   offset 32  owner_tag  0 while free; allocating thread id + 1 once the
//                         object's initialization has been persisted
#pragma once

#include <cstdint>

#include "pmem/persist.hpp"

namespace upsl::alloc {

struct MemBlock {
  std::uint64_t next;       // RIV of next free block; 0 = end of list
  std::uint64_t self;       // this block's own RIV
  std::uint64_t epoch_id;   // failure-free epoch of last state change
  std::uint64_t state;      // kFreeState while on a free list
  std::uint64_t owner_tag;  // 0 while free; tid + 1 when owned by a node

  static constexpr std::uint64_t kFreeState = 0xf2eef2eef2eef2eeULL;

  bool looks_free() const { return pmem::pm_load(state) == kFreeState; }
};

/// Offsets shared with overlaying objects (static_asserted in core).
inline constexpr std::size_t kObjEpochOffset = 16;
inline constexpr std::size_t kObjStateOffset = 24;
inline constexpr std::size_t kObjOwnerOffset = 32;

static_assert(offsetof(MemBlock, epoch_id) == kObjEpochOffset);
static_assert(offsetof(MemBlock, state) == kObjStateOffset);
static_assert(offsetof(MemBlock, owner_tag) == kObjOwnerOffset);

}  // namespace upsl::alloc
