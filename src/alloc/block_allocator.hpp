// Fine-grained recoverable block allocator (thesis §4.3.3, Functions 4–6).
//
// Memory inside chunks is divided into node-sized blocks linked into
// per-arena FIFO free lists (pop at head, push at tail). Following the
// thesis' thread-to-arena mapping, arenas are sized so that every thread id
// owns exactly one arena per virtual NUMA node:
//
//   pool  = threadID % num_pools          (round-robin NUMA placement)
//   arena = threadID / num_pools          (must be < arenas_per_pool)
//
// This makes each arena single-consumer: only its owning thread id pops from
// it or provisions chunks into it, while *pushes* (deallocations, which a
// thread always directs at its own arena) are the only concurrent writers at
// the tail. Single-consumer pops are what make deferred crash recovery of
// allocations race-free: a stale allocation log can be resolved by its
// owning thread id without any other thread being able to pop the same block
// concurrently. The FIFO shape is also the ABA mitigation for the tail-push
// CAS.
//
// Recoverability:
//  * every allocation is preceded by a persisted single-line ThreadLog entry
//    (LogChangeAttempt, Function 3); stale entries from earlier epochs are
//    resolved on the owning thread id's next allocation,
//  * allocated objects are stamped with (epoch, owner_tag) that become
//    durable with the object's initialization, letting recovery distinguish
//    "my pop became durable" from "my pop was lost in the crash",
//  * chunk provisioning follows claim -> log -> format -> link -> commit,
//    with the directory entry and the chunk header's `committed` flag
//    bracketing the durable link CAS so every crash point is recoverable,
//  * deallocation is idempotent so a failed recovery can be re-run.
//
// Magazine fast path (optional, see MagazineDesc in layout.hpp): when the
// store hands the allocator per-thread persistent magazine descriptors,
// pops are batched — one refill moves up to kMagazineSlots blocks from the
// arena head into the thread's magazine under a single persisted descriptor
// write (one fence per batch instead of one log persist + head persist per
// block), and frees accumulate in a return magazine that is converted
// per-block without fences and linked into the arena tail as one chain.
// Crash recovery extends the deferred per-thread walk with a magazine scan:
// a stale descriptor's alloc and return entries are classified exactly like
// stale kNodeAlloc logs (free-list membership, durable object state,
// structure reachability) and reclaimed, bounding the post-crash leak to
// one magazine's worth of blocks per thread — all recovered.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "alloc/alloc_log.hpp"
#include "alloc/block.hpp"
#include "alloc/layout.hpp"
#include "common/thread_registry.hpp"

namespace upsl::alloc {

class BlockAllocator {
 public:
  struct Config {
    std::uint64_t block_size = 512;
    /// Max supported thread ids = arenas_per_pool * num_pools.
    std::uint32_t arenas_per_pool = 64;
    /// Blocks per thread-local magazine batch (clamped to kMagazineSlots).
    /// Only meaningful when the allocator is given magazine descriptors.
    std::uint32_t magazine_capacity = kMagazineSlots;
  };

  /// Decides whether the block named by a stale kNodeAlloc log entry is
  /// reachable in the data structure (UPSkipList walks its bottom level from
  /// the logged predecessor). Installed by the owning store.
  using ReachabilityFn = std::function<bool(const ThreadLog&)>;

  /// Decides whether an arbitrary block named by a stale magazine descriptor
  /// entry is reachable in the data structure. Unlike ReachabilityFn there
  /// is no log record to consult — the magazine fast path writes none — so
  /// the store must classify the block from its (possibly garbage) contents.
  using BlockReachabilityFn = std::function<bool(std::uint64_t block_riv)>;

  /// `arenas` must point at pools.size() * cfg.arenas_per_pool persistent
  /// ArenaHeaders and `logs` at kMaxThreads persistent ThreadLogs, both
  /// inside one of the pools (the store root area). `epoch_word` is the
  /// PMEM-resident failure-free epoch id. `magazines`, when non-null, must
  /// point at kMaxThreads persistent MagazineDescs and enables the
  /// thread-local magazine fast path (unless UPSL_DISABLE_MAGAZINES is set
  /// in the environment, which keeps the descriptors recoverable but routes
  /// every operation through the legacy per-block protocol).
  BlockAllocator(std::vector<ChunkAllocator*> pools, ArenaHeader* arenas,
                 ThreadLog* logs, const std::uint64_t* epoch_word, Config cfg,
                 MagazineDesc* magazines = nullptr);

  void set_reachability_fn(ReachabilityFn fn) { reach_fn_ = std::move(fn); }
  void set_block_reachability_fn(BlockReachabilityFn fn) {
    block_reach_fn_ = std::move(fn);
  }

  /// Create-path initialization: provisions one chunk per pool and seeds
  /// every arena's free list (round-robin). Single-threaded.
  void bootstrap();

  /// Crash repair for every arena's FIFO tail hint. A crash inside
  /// LinkInTail can leave the chain CAS durable while the tail advance
  /// never ran (under partial-eviction crashes the unflushed CAS line may
  /// survive on its own), so ah.tail points mid-list. Pops never consult
  /// the tail, so the lagging tail block can be popped — after which every
  /// future link appends to an orphan chain unreachable from the head.
  /// Walking each list to its real anchor and re-pointing the tail restores
  /// the "tail is in-list" invariant LinkInTail relies on. With magazine
  /// descriptors present this runs lazily per-arena from the owning
  /// thread's epoch sync (keeping open O(1)); stores without descriptors
  /// never sync, so the open path calls this eagerly instead. Idempotent.
  void repair_tails();

  /// MakeLinkedObject's allocation steps (Function 4 lines 29–41): logs the
  /// attempt, pops a block from the calling thread's arena (provisioning a
  /// new chunk when the list runs dry) and returns it zeroed except for the
  /// (epoch_id, owner_tag) stamps. The caller initializes the object and
  /// persists it before linking it into the structure.
  void* allocate(std::uint64_t pred_riv, std::uint64_t key,
                 std::uint64_t* out_riv);

  /// DeleteLinkedObject (Function 5): returns an object to the calling
  /// thread's free list. Idempotent.
  void deallocate(std::uint64_t obj_riv);

  std::uint64_t riv_of(const void* p) const;
  std::uint64_t current_epoch() const { return pmem::pm_load(*epoch_word_); }
  std::uint64_t block_size() const { return cfg_.block_size; }
  std::uint32_t arenas_per_pool() const { return cfg_.arenas_per_pool; }
  std::uint32_t num_pools() const {
    return static_cast<std::uint32_t>(pools_.size());
  }

  /// Virtual NUMA node of the calling thread (round-robin by id, §5.1.2).
  std::uint32_t node_of_current_thread() const {
    return static_cast<std::uint32_t>(ThreadRegistry::id()) % num_pools();
  }

  /// True when the magazine fast path is active for allocate()/deallocate().
  bool magazines_enabled() const { return magazines_on_; }
  std::uint32_t magazine_capacity() const { return cfg_.magazine_capacity; }

  /// DRAM fast-path counters (relaxed; for benches and tests).
  struct Counters {
    std::atomic<std::uint64_t> magazine_allocs{0};
    std::atomic<std::uint64_t> legacy_allocs{0};
    std::atomic<std::uint64_t> magazine_frees{0};
    std::atomic<std::uint64_t> legacy_frees{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> return_flushes{0};
    std::atomic<std::uint64_t> magazine_recoveries{0};
    /// Descriptors whose integrity stamp failed at recovery: reclamation is
    /// skipped (a garbage riv must not be dereferenced) and the named blocks
    /// are deliberately leaked, bounded at 2 * kMagazineSlots per descriptor.
    std::atomic<std::uint64_t> quarantined_magazines{0};
    std::atomic<std::uint64_t> quarantined_blocks{0};
  };
  const Counters& counters() const { return counters_; }

  /// Test/diagnostic helpers.
  std::size_t count_free_blocks(std::uint32_t pool_idx, std::uint32_t arena) const;
  std::size_t blocks_per_chunk(std::uint32_t pool_idx) const;
  const ThreadLog& log_of(int thread) const { return logs_[thread]; }
  const MagazineDesc& magazine_of(int thread) const { return mags_[thread]; }
  /// Blocks a thread id currently holds in DRAM magazines: unconsumed alloc
  /// batch slots plus converted-but-unlinked pending returns.
  std::size_t magazine_cached(int thread) const;
  /// Total blocks across all free lists plus blocks cached in thread-local
  /// magazines — used by leak-detection tests.
  std::size_t count_all_free_blocks() const;
  /// Diagnostic flavor of the same accounting: appends every riv counted as
  /// free (free-list members, unconsumed DRAM magazine slots, pending
  /// returns) so leak reports can name the blocks that are *not* there.
  void collect_free_rivs(std::vector<std::uint64_t>* out) const;

 private:
  /// DRAM mirror of one thread's magazines. Lives inside the allocator (not
  /// thread_local) so a simulated in-process crash discards it with the
  /// allocator object, exactly like real DRAM loss.
  struct alignas(kCacheLineSize) DramMagazine {
    std::uint64_t synced_epoch = 0;  // epoch the descriptor was last synced at
    std::uint32_t cursor = 0;        // next unconsumed alloc slot
    std::uint32_t count = 0;         // valid alloc slots
    std::uint64_t rivs[kMagazineSlots] = {};
    std::uint32_t ret_count = 0;     // pending converted returns
    std::uint64_t ret_head = 0;      // newest pending return (chain head)
    std::uint64_t ret_tail = 0;      // oldest pending return (chain tail)
  };
  ArenaHeader& arena(std::uint32_t pool_idx, std::uint32_t arena_idx) const {
    return arenas_[pool_idx * cfg_.arenas_per_pool + arena_idx];
  }
  MemBlock* block_at(std::uint64_t riv) const {
    return riv::Runtime::instance().as<MemBlock>(riv);
  }
  std::uint32_t my_pool() const { return node_of_current_thread(); }
  std::uint32_t my_arena() const;
  static std::uint64_t owner_tag_of(int tid) {
    return static_cast<std::uint64_t>(tid) + 1;
  }

  void* allocate_legacy(std::uint64_t pred_riv, std::uint64_t key,
                        std::uint64_t* out_riv);
  void* allocate_from_magazine(std::uint32_t pool_idx, std::uint32_t arena_idx,
                               std::uint64_t* out_riv);
  void refill_magazine(std::uint32_t pool_idx, std::uint32_t arena_idx);
  void deallocate_to_magazine(std::uint64_t obj_riv);
  void flush_returns(std::uint32_t pool_idx, std::uint32_t arena_idx);
  bool in_my_return_chain(std::uint64_t riv) const;
  /// First allocator call by this thread id in a new epoch: resolves the
  /// stale ThreadLog, the stale magazine descriptor and orphaned chunk
  /// claims, then resets the DRAM magazine mirror.
  void sync_thread_epoch();
  void repair_tail(std::uint32_t pool_idx, std::uint32_t arena_idx);
  void recover_magazine(int tid);
  void retire_magazine(MagazineDesc& d);
  void reclaim_magazine_block(std::uint64_t riv);

  void log_attempt(LogKind kind, std::uint64_t block, std::uint64_t pred,
                   std::uint64_t key, std::uint64_t aux0, std::uint64_t aux1);
  void handle_stale_log(ThreadLog& log);
  void recover_node_alloc(const ThreadLog& log);
  void recover_provision(const ThreadLog& log);
  void sweep_pending_chunks(std::uint64_t stale_epoch);
  bool in_my_free_list(std::uint64_t riv) const;
  /// Re-arm an out-of-list block as free and push it (recovery path).
  void convert_and_link(std::uint64_t obj_riv);

  std::pair<std::uint64_t, std::uint64_t> format_chunk(std::uint32_t pool_idx,
                                                       std::uint32_t c);
  void provision_new_chunk(std::uint32_t pool_idx, std::uint32_t arena_idx);
  void link_in_tail(std::uint32_t pool_idx, std::uint32_t arena_idx,
                    std::uint64_t chain_head, std::uint64_t chain_tail,
                    ThreadLog* provision_log);

  std::vector<ChunkAllocator*> pools_;
  ArenaHeader* arenas_;
  ThreadLog* logs_;
  const std::uint64_t* epoch_word_;
  Config cfg_;
  ReachabilityFn reach_fn_;
  BlockReachabilityFn block_reach_fn_;
  MagazineDesc* mags_ = nullptr;
  bool magazines_on_ = false;
  std::unique_ptr<DramMagazine[]> dram_;
  Counters counters_;
};

}  // namespace upsl::alloc
