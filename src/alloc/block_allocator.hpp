// Fine-grained recoverable block allocator (thesis §4.3.3, Functions 4–6).
//
// Memory inside chunks is divided into node-sized blocks linked into
// per-arena FIFO free lists (pop at head, push at tail). Following the
// thesis' thread-to-arena mapping, arenas are sized so that every thread id
// owns exactly one arena per virtual NUMA node:
//
//   pool  = threadID % num_pools          (round-robin NUMA placement)
//   arena = threadID / num_pools          (must be < arenas_per_pool)
//
// This makes each arena single-consumer: only its owning thread id pops from
// it or provisions chunks into it, while *pushes* (deallocations, which a
// thread always directs at its own arena) are the only concurrent writers at
// the tail. Single-consumer pops are what make deferred crash recovery of
// allocations race-free: a stale allocation log can be resolved by its
// owning thread id without any other thread being able to pop the same block
// concurrently. The FIFO shape is also the ABA mitigation for the tail-push
// CAS.
//
// Recoverability:
//  * every allocation is preceded by a persisted single-line ThreadLog entry
//    (LogChangeAttempt, Function 3); stale entries from earlier epochs are
//    resolved on the owning thread id's next allocation,
//  * allocated objects are stamped with (epoch, owner_tag) that become
//    durable with the object's initialization, letting recovery distinguish
//    "my pop became durable" from "my pop was lost in the crash",
//  * chunk provisioning follows claim -> log -> format -> link -> commit,
//    with the directory entry and the chunk header's `committed` flag
//    bracketing the durable link CAS so every crash point is recoverable,
//  * deallocation is idempotent so a failed recovery can be re-run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "alloc/alloc_log.hpp"
#include "alloc/block.hpp"
#include "alloc/layout.hpp"
#include "common/thread_registry.hpp"

namespace upsl::alloc {

/// Persistent per-arena free-list anchors (live in the store root area).
struct ArenaHeader {
  std::uint64_t head;  // RIV of first free block
  std::uint64_t tail;  // RIV of last free block (push target)
};

class BlockAllocator {
 public:
  struct Config {
    std::uint64_t block_size = 512;
    /// Max supported thread ids = arenas_per_pool * num_pools.
    std::uint32_t arenas_per_pool = 64;
  };

  /// Decides whether the block named by a stale kNodeAlloc log entry is
  /// reachable in the data structure (UPSkipList walks its bottom level from
  /// the logged predecessor). Installed by the owning store.
  using ReachabilityFn = std::function<bool(const ThreadLog&)>;

  /// `arenas` must point at pools.size() * cfg.arenas_per_pool persistent
  /// ArenaHeaders and `logs` at kMaxThreads persistent ThreadLogs, both
  /// inside one of the pools (the store root area). `epoch_word` is the
  /// PMEM-resident failure-free epoch id.
  BlockAllocator(std::vector<ChunkAllocator*> pools, ArenaHeader* arenas,
                 ThreadLog* logs, const std::uint64_t* epoch_word, Config cfg);

  void set_reachability_fn(ReachabilityFn fn) { reach_fn_ = std::move(fn); }

  /// Create-path initialization: provisions one chunk per pool and seeds
  /// every arena's free list (round-robin). Single-threaded.
  void bootstrap();

  /// MakeLinkedObject's allocation steps (Function 4 lines 29–41): logs the
  /// attempt, pops a block from the calling thread's arena (provisioning a
  /// new chunk when the list runs dry) and returns it zeroed except for the
  /// (epoch_id, owner_tag) stamps. The caller initializes the object and
  /// persists it before linking it into the structure.
  void* allocate(std::uint64_t pred_riv, std::uint64_t key,
                 std::uint64_t* out_riv);

  /// DeleteLinkedObject (Function 5): returns an object to the calling
  /// thread's free list. Idempotent.
  void deallocate(std::uint64_t obj_riv);

  std::uint64_t riv_of(const void* p) const;
  std::uint64_t current_epoch() const { return pmem::pm_load(*epoch_word_); }
  std::uint64_t block_size() const { return cfg_.block_size; }
  std::uint32_t arenas_per_pool() const { return cfg_.arenas_per_pool; }
  std::uint32_t num_pools() const {
    return static_cast<std::uint32_t>(pools_.size());
  }

  /// Virtual NUMA node of the calling thread (round-robin by id, §5.1.2).
  std::uint32_t node_of_current_thread() const {
    return static_cast<std::uint32_t>(ThreadRegistry::id()) % num_pools();
  }

  /// Test/diagnostic helpers.
  std::size_t count_free_blocks(std::uint32_t pool_idx, std::uint32_t arena) const;
  std::size_t blocks_per_chunk(std::uint32_t pool_idx) const;
  const ThreadLog& log_of(int thread) const { return logs_[thread]; }
  /// Total blocks across all free lists plus blocks of unprovisioned chunks
  /// — used by leak-detection tests.
  std::size_t count_all_free_blocks() const;

 private:
  ArenaHeader& arena(std::uint32_t pool_idx, std::uint32_t arena_idx) const {
    return arenas_[pool_idx * cfg_.arenas_per_pool + arena_idx];
  }
  MemBlock* block_at(std::uint64_t riv) const {
    return riv::Runtime::instance().as<MemBlock>(riv);
  }
  std::uint32_t my_pool() const { return node_of_current_thread(); }
  std::uint32_t my_arena() const;
  static std::uint64_t owner_tag_of(int tid) {
    return static_cast<std::uint64_t>(tid) + 1;
  }

  void log_attempt(LogKind kind, std::uint64_t block, std::uint64_t pred,
                   std::uint64_t key, std::uint64_t aux0, std::uint64_t aux1);
  void handle_stale_log(ThreadLog& log);
  void recover_node_alloc(const ThreadLog& log);
  void recover_provision(const ThreadLog& log);
  void sweep_pending_chunks(std::uint64_t stale_epoch);
  bool in_my_free_list(std::uint64_t riv) const;
  /// Re-arm an out-of-list block as free and push it (recovery path).
  void convert_and_link(std::uint64_t obj_riv);

  std::pair<std::uint64_t, std::uint64_t> format_chunk(std::uint32_t pool_idx,
                                                       std::uint32_t c);
  void provision_new_chunk(std::uint32_t pool_idx, std::uint32_t arena_idx);
  void link_in_tail(std::uint32_t pool_idx, std::uint32_t arena_idx,
                    std::uint64_t chain_head, std::uint64_t chain_tail,
                    ThreadLog* provision_log);

  std::vector<ChunkAllocator*> pools_;
  ArenaHeader* arenas_;
  ThreadLog* logs_;
  const std::uint64_t* epoch_word_;
  Config cfg_;
  ReachabilityFn reach_fn_;
};

}  // namespace upsl::alloc
