// Per-thread allocation-attempt logs (thesis §4.1.4, Function 3).
//
// Before removing a block from a free list (or provisioning a new chunk), a
// thread persists a single-cache-line log entry describing the attempt. On
// its next allocation, if the entry's epoch differs from the current
// failure-free epoch, the thread checks whether the logged operation took
// effect — for node allocations by navigating the bottom level of the
// structure from the logged predecessor (done via a callback supplied by the
// data structure), for chunk provisioning via the protocol in
// BlockAllocator. Unreachable memory is then reclaimed, deferring crash
// recovery of allocations out of restart time and into run time (O(k) total
// work for k threads).
#pragma once

#include <cstdint>

#include "common/compiler.hpp"

namespace upsl::alloc {

enum class LogKind : std::uint64_t {
  kNone = 0,
  kNodeAlloc = 1,       // popped `block` to become a node after `pred`
  kChunkProvision = 2,  // provisioning chunk `aux0` on pool `aux1`
};

/// Exactly one cache line so a log write is persisted with a single flush.
struct alignas(kCacheLineSize) ThreadLog {
  std::uint64_t epoch;
  std::uint64_t kind;
  std::uint64_t block;  // RIV of block being allocated (kNodeAlloc)
  std::uint64_t pred;   // RIV of bottom-level predecessor (kNodeAlloc)
  std::uint64_t key;    // first key that will identify the new node
  std::uint64_t aux0;   // chunk id (kChunkProvision) / chain head RIV
  std::uint64_t aux1;   // pool id (kChunkProvision) / arena index
  std::uint64_t aux2;   // logged predecessor-tail RIV for chunk linking
};
static_assert(sizeof(ThreadLog) == kCacheLineSize);

}  // namespace upsl::alloc
