// On-pool layout and the coarse-grained chunk allocator (thesis §4.3.2).
//
// Each pool file is laid out as:
//
//   [ PoolHeader | chunk directory | root area | chunk 0 | chunk 1 | ... ]
//
// The chunk directory is the persistent truth about which MiB-scale chunks
// are allocated (the analogue of the thesis' persistent array of libpmemobj
// fat pointers per chunk); the RIV runtime's DRAM chunk-base cache is
// rebuilt lazily from it after a restart. Chunk placement is deterministic
// (chunk i lives at chunks_start + i * chunk_size), so the reverse mapping
// pointer -> (pool, chunk, offset) needed when returning nodes to free lists
// is pure arithmetic.
//
// Directory entries are a single word so claim/commit/free transitions are
// one CAS + one persist:
//
//   [ state : 2 ][ epoch : 46 ][ thread : 16 ]
//
// kPending entries carry the claiming thread's id and the failure-free epoch
// of the claim; recovery of interrupted provisioning is deferred to the next
// allocation by a thread sharing that id (§4.1.4).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/compiler.hpp"
#include "pmem/pool.hpp"
#include "riv/riv.hpp"

namespace upsl::alloc {

inline constexpr std::uint64_t kPoolMagic = 0x5550534c504f4f4cULL;   // "UPSLPOOL"
inline constexpr std::uint64_t kChunkMagic = 0x5550534c43484e4bULL;  // "UPSLCHNK"

struct PoolHeader {
  std::uint64_t magic;
  std::uint64_t version;
  std::uint64_t pool_id;
  std::uint64_t chunk_size;
  std::uint64_t max_chunks;
  std::uint64_t dir_offset;
  std::uint64_t root_offset;
  std::uint64_t root_size;
  std::uint64_t chunks_offset;
};

/// First cache lines of every chunk; the rest of the chunk is block space.
struct ChunkHeader {
  std::uint64_t magic;
  std::uint64_t chunk_id;
  /// Set (and persisted) once the chunk's block chain has been durably
  /// linked into its arena free list — the provisioning commit marker used
  /// by recovery (see ChunkAllocator::provisioning notes in DESIGN.md).
  std::uint64_t committed;
  std::uint64_t owner_arena;
};

/// Directory entry states.
enum class ChunkState : std::uint64_t { kFree = 0, kPending = 1, kAllocated = 2 };

struct DirEntry {
  ChunkState state;
  std::uint64_t epoch;
  std::uint16_t thread;
};

constexpr std::uint64_t dir_pack(ChunkState s, std::uint64_t epoch,
                                 std::uint16_t thread) {
  return (static_cast<std::uint64_t>(s) << 62) | ((epoch & ((1ULL << 46) - 1)) << 16) |
         thread;
}

constexpr DirEntry dir_unpack(std::uint64_t word) {
  return DirEntry{static_cast<ChunkState>(word >> 62),
                  (word >> 16) & ((1ULL << 46) - 1),
                  static_cast<std::uint16_t>(word & 0xffff)};
}

/// Persistent per-arena free-list anchors (live in the store root area).
/// Padded to a full cache line: adjacent arenas belong to different thread
/// ids, and with the packed 16-byte layout four arenas' head/tail words
/// shared one line, so every pop or tail push invalidated the line under
/// three unrelated threads (classic false sharing).
struct alignas(kCacheLineSize) ArenaHeader {
  std::uint64_t head;  // RIV of first free block
  std::uint64_t tail;  // RIV of last free block (push target)
  char padding_[kCacheLineSize - 2 * sizeof(std::uint64_t)];
};
static_assert(sizeof(ArenaHeader) == kCacheLineSize,
              "arena anchors must each own a full cache line");
static_assert(alignof(ArenaHeader) == kCacheLineSize);

/// Capacity of one thread-local allocation/return magazine. 15 rivs + the
/// two header words pack the descriptor into exactly four cache lines.
inline constexpr std::uint32_t kMagazineSlots = 15;

/// Persistent per-thread magazine descriptor (one per ThreadRegistry slot,
/// in the store root area after the arena headers).
///
/// Line 0 holds the epoch stamp, the alloc-batch length and the first alloc
/// slots; the remaining lines hold the rest of the alloc batch and the
/// return-entry slots. The alloc side is (re)written as a whole and
/// persisted with a single fence per refill; return entries are written one
/// slot at a time (slot != 0 means "this riv is covered"), flushed without
/// a fence, and lazily zeroed after their chain is durably linked.
/// A descriptor whose epoch differs from the store's failure-free epoch is
/// stale; BlockAllocator::recover_magazine scans it on the owning thread
/// id's next allocator call, so a crash leaks at most kMagazineSlots alloc
/// blocks + kMagazineSlots pending returns per thread, all reclaimed.
struct alignas(kCacheLineSize) MagazineDesc {
  std::uint64_t epoch;
  std::uint64_t alloc_count;
  std::uint64_t alloc_rivs[kMagazineSlots];
  std::uint64_t ret_rivs[kMagazineSlots];
};
static_assert(sizeof(MagazineDesc) == 4 * kCacheLineSize,
              "magazine descriptors are sized as whole cache lines");
static_assert(alignof(MagazineDesc) == kCacheLineSize);

/// MagazineDesc has no spare word, so the integrity stamp shares
/// `alloc_count`: count in the low 32 bits (<= kMagazineSlots), CRC32C stamp
/// in the high 32. The stamp covers the alloc side only — (epoch, count,
/// alloc_rivs) — because return entries are written slot-at-a-time without a
/// fence and are individually re-classified by recovery anyway.
inline std::uint32_t mag_count_of(std::uint64_t word) {
  return static_cast<std::uint32_t>(word);
}
inline std::uint32_t mag_stamp_of(std::uint64_t word) {
  return static_cast<std::uint32_t>(word >> 32);
}
inline std::uint64_t mag_pack(std::uint32_t count, std::uint32_t stamp) {
  return (static_cast<std::uint64_t>(stamp) << 32) | count;
}

struct ChunkAllocatorConfig {
  std::uint64_t chunk_size = 4ull << 20;  // 4 MiB, the thesis' default
  std::uint32_t max_chunks = 64;
  std::uint64_t root_size = 1ull << 20;  // store-root scratch area
};

/// Coarse-grained allocator for one pool. Thread-safe; all state persistent.
class ChunkAllocator {
 public:
  /// Formats a freshly created pool.
  static void format(pmem::Pool& pool, const ChunkAllocatorConfig& cfg);

  /// Attaches to a formatted pool (create or restart path) and installs the
  /// pool's chunk resolver with the RIV runtime.
  explicit ChunkAllocator(pmem::Pool& pool);

  pmem::Pool& pool() const { return pool_; }
  const PoolHeader& header() const { return *header_; }

  /// Claims a free chunk: FREE -> PENDING(epoch, thread). Returns chunk id
  /// or a negative value if the pool is exhausted.
  std::int64_t claim_chunk(std::uint64_t epoch, std::uint16_t thread);

  /// PENDING -> ALLOCATED (provisioning finished).
  void commit_chunk(std::uint32_t chunk);

  /// -> FREE. Used both for normal frees and for reclaiming chunks whose
  /// provisioning was interrupted by a crash.
  void release_chunk(std::uint32_t chunk);

  DirEntry dir_entry(std::uint32_t chunk) const;

  char* chunk_base(std::uint32_t chunk) const {
    return pool_.base() + header_->chunks_offset + chunk * header_->chunk_size;
  }
  ChunkHeader* chunk_header(std::uint32_t chunk) const {
    return reinterpret_cast<ChunkHeader*>(chunk_base(chunk));
  }
  /// Usable block space inside a chunk (after the chunk header line(s)).
  char* chunk_data(std::uint32_t chunk) const {
    return chunk_base(chunk) + kChunkHeaderSize;
  }
  std::uint64_t chunk_data_size() const {
    return header_->chunk_size - kChunkHeaderSize;
  }

  char* root_area() const { return pool_.base() + header_->root_offset; }
  std::uint64_t root_size() const { return header_->root_size; }

  /// Reverse map: pointer inside this pool's chunk space -> RIV value.
  std::uint64_t riv_of(const void* p) const;

  /// Called after the pool was re-mapped (restart): refresh cached header
  /// pointer and invalidate the RIV chunk-base cache.
  void reattach();

  static constexpr std::uint64_t kChunkHeaderSize = 2 * kCacheLineSize;

 private:
  std::uint64_t* dir_word(std::uint32_t chunk) const {
    return reinterpret_cast<std::uint64_t*>(pool_.base() + header_->dir_offset) +
           chunk;
  }
  void install_resolver();

  pmem::Pool& pool_;
  PoolHeader* header_;
};

}  // namespace upsl::alloc
