#include "riv/riv.hpp"

namespace upsl::riv {

void Runtime::configure_pool(std::uint16_t pool_id, std::uint32_t max_chunks,
                             ChunkResolver resolver) {
  if (max_chunks == 0 || max_chunks > (1u << kChunkBits))
    throw std::invalid_argument("riv: bad max_chunks");
  auto table = std::make_unique<PoolTable>();
  pmem::Pool* pool = pmem::PoolRegistry::instance().by_id(pool_id);
  if (pool == nullptr) throw std::logic_error("riv: pool not registered");
  table->pool_base = pool->base();
  table->max_chunks = max_chunks;
  table->resolver = std::move(resolver);
  table->chunk_base = std::make_unique<std::atomic<char*>[]>(max_chunks);
  for (std::uint32_t i = 0; i < max_chunks; ++i)
    table->chunk_base[i].store(nullptr, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(setup_mu_);
  tables_[pool_id] = std::move(table);
  if (single_pool_mode_.load(std::memory_order_relaxed) &&
      single_table_ == nullptr)
    single_table_ = tables_[pool_id].get();
  rebuild_dispatch();
}

void Runtime::invalidate_pool(std::uint16_t pool_id) {
  std::lock_guard<std::mutex> lock(setup_mu_);
  PoolTable* table = tables_[pool_id].get();
  if (table == nullptr) return;
  pmem::Pool* pool = pmem::PoolRegistry::instance().by_id(pool_id);
  if (pool == nullptr) throw std::logic_error("riv: pool not registered");
  table->pool_base = pool->base();
  for (std::uint32_t i = 0; i < table->max_chunks; ++i)
    table->chunk_base[i].store(nullptr, std::memory_order_release);
}

void Runtime::reset() {
  std::lock_guard<std::mutex> lock(setup_mu_);
  single_table_ = nullptr;
  single_pool_mode_.store(false, std::memory_order_relaxed);
  // Unhook the dispatch slots before destroying the tables they point at.
  for (auto& slot : dispatch_) slot.store(nullptr, std::memory_order_release);
  for (auto& t : tables_) t.reset();
}

void Runtime::set_single_pool_mode(bool on, std::uint16_t pool_id) {
  std::lock_guard<std::mutex> lock(setup_mu_);
  single_pool_mode_.store(on, std::memory_order_relaxed);
  single_table_ = on ? tables_[pool_id].get() : nullptr;
  rebuild_dispatch();
}

void Runtime::rebuild_dispatch() {
  if (single_pool_mode_.load(std::memory_order_relaxed) &&
      single_table_ != nullptr) {
    // Single-pool stores never look at the pool field, so aliasing every
    // slot to the one table removes the mode branch from to_ptr.
    for (auto& slot : dispatch_) slot.store(single_table_, std::memory_order_release);
  } else {
    for (int i = 0; i < pmem::PoolRegistry::kMaxPools; ++i)
      dispatch_[i].store(tables_[i].get(), std::memory_order_release);
  }
}

void* Runtime::try_to_ptr(std::uint64_t riv) noexcept {
  if (riv == kNull) return nullptr;
  const Decoded d = decode(riv);
  PoolTable* table = dispatch_[d.pool].load(std::memory_order_relaxed);
  if (table == nullptr || d.chunk >= table->max_chunks) return nullptr;
  char* chunk_base = table->chunk_base[d.chunk].load(std::memory_order_acquire);
  if (chunk_base == nullptr) {
    const std::int64_t off = table->resolver(d.chunk);
    if (off < 0) return nullptr;
    chunk_base = table->pool_base + off;
    table->chunk_base[d.chunk].store(chunk_base, std::memory_order_release);
  }
  return chunk_base + d.offset;
}

void Runtime::throw_chunk_out_of_range() {
  throw std::out_of_range("riv: chunk id out of range");
}

void Runtime::throw_pool_not_configured() {
  throw std::logic_error("riv: dereference through unconfigured pool");
}

char* Runtime::resolve_slow(PoolTable& table, Decoded d) {
  const std::int64_t off = table.resolver(d.chunk);
  if (off < 0) throw std::logic_error("riv: dereference of unallocated chunk");
  char* base = table.pool_base + off;
  table.chunk_base[d.chunk].store(base, std::memory_order_release);
  return base;
}

}  // namespace upsl::riv
