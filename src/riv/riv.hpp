// Extended Region-ID-in-Value (RIV) persistent pointers (thesis §4.3.1).
//
// A persistent pointer is a single 64-bit word:
//
//   [ pool id : 16 ][ chunk id : 20 ][ offset in chunk : 28 ]
//
// The pool id selects the (virtual NUMA node's) memory pool, the chunk id
// selects a dynamically allocated MiB-scale chunk inside that pool, and the
// offset addresses the object inside the chunk — the two-stage lookup of
// Figure 4.3. Unlike libpmemobj's two-word fat pointers this keeps pointers
// one word wide, so twice as many next-pointers fit per cache line (the
// effect measured in Figure 5.3).
//
// Dereferencing goes through a DRAM-side chunk-base cache that is rebuilt
// lazily after a restart (§4.3.2): a cache miss asks the owning pool's chunk
// resolver (installed by the coarse-grained allocator) for the chunk's
// pool-relative offset. In single-pool mode ("striped device") the pool
// lookup stage is omitted, as prescribed by the thesis.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/compiler.hpp"
#include "pmem/pool.hpp"

namespace upsl::riv {

inline constexpr int kPoolBits = 16;
inline constexpr int kChunkBits = 20;
inline constexpr int kOffsetBits = 28;
static_assert(kPoolBits + kChunkBits + kOffsetBits == 64);

inline constexpr std::uint64_t kNull = 0;
inline constexpr std::uint32_t kMaxOffset = (1u << kOffsetBits) - 1;

struct Decoded {
  std::uint16_t pool;
  std::uint32_t chunk;
  std::uint32_t offset;
};

constexpr std::uint64_t encode(std::uint16_t pool, std::uint32_t chunk,
                               std::uint32_t offset) {
  return (static_cast<std::uint64_t>(pool) << (kChunkBits + kOffsetBits)) |
         (static_cast<std::uint64_t>(chunk) << kOffsetBits) |
         static_cast<std::uint64_t>(offset);
}

constexpr Decoded decode(std::uint64_t riv) {
  return Decoded{
      static_cast<std::uint16_t>(riv >> (kChunkBits + kOffsetBits)),
      static_cast<std::uint32_t>((riv >> kOffsetBits) & ((1u << kChunkBits) - 1)),
      static_cast<std::uint32_t>(riv & kMaxOffset)};
}

/// Resolves a chunk id to its pool-relative byte offset (from the persistent
/// chunk directory), or returns a negative value if the chunk is not
/// allocated. Installed per pool by the coarse-grained allocator.
using ChunkResolver = std::function<std::int64_t(std::uint32_t chunk)>;

/// A resolved data-level reference: the persistent RIV paired with its
/// current virtual address, so volatile structures (e.g. the DRAM search
/// layer) can cache the translation and skip `to_ptr` dispatch entirely.
///
/// Address stability: `ptr` is valid for as long as the owning pool's
/// mapping is — pools are only remapped or invalidated while the store is
/// closed (Pool::remap / Runtime::invalidate_pool run between sessions),
/// so a handle captured from an open store never dangles during that
/// session and must be re-resolved (rebuilt) after any reopen.
struct DataHandle {
  std::uint64_t riv = kNull;
  void* ptr = nullptr;

  bool is_null() const { return riv == kNull; }
};

class Runtime {
 public:
  static Runtime& instance() {
    static Runtime rt;
    return rt;
  }

  /// Prepare the DRAM-side lookup state for a pool. Must be called once per
  /// pool before any dereference through it. Setup calls (configure /
  /// invalidate / reset / mode) serialize on an internal mutex so parallel
  /// shard recovery can configure disjoint pools concurrently; dereferences
  /// through already-configured pools stay lock-free throughout.
  void configure_pool(std::uint16_t pool_id, std::uint32_t max_chunks,
                      ChunkResolver resolver);

  /// Drop a pool's cached chunk bases and re-read its mapping base — called
  /// after restart/remap. Lookups then lazily re-resolve (deferred cache
  /// rebuild of §4.3.2).
  void invalidate_pool(std::uint16_t pool_id);

  /// Forget all pools (test teardown).
  void reset();

  /// Enable the single-pool fast path: all RIV values are assumed to carry
  /// this pool id and the pool-lookup stage is skipped.
  void set_single_pool_mode(bool on, std::uint16_t pool_id = 0);
  bool single_pool_mode() const {
    return single_pool_mode_.load(std::memory_order_relaxed);
  }

  /// Hot path: RIV value -> virtual address. riv must be non-null and refer
  /// to an allocated chunk.
  ///
  /// The pool stage is a single indexed load from a pre-selected dispatch
  /// table: in single-pool mode every entry aliases the one pool's table, so
  /// the per-call mode branch the thesis' "striped device" configuration
  /// used to pay (§4.3.1) is gone from the dereference entirely.
  UPSL_ALWAYS_INLINE void* to_ptr(std::uint64_t riv) {
    const Decoded d = decode(riv);
    PoolTable* table = dispatch_[d.pool].load(std::memory_order_relaxed);
    if (UPSL_UNLIKELY(table == nullptr)) throw_pool_not_configured();
    if (UPSL_UNLIKELY(d.chunk >= table->max_chunks))
      throw_chunk_out_of_range();
    char* chunk_base = table->chunk_base[d.chunk].load(std::memory_order_acquire);
    if (UPSL_UNLIKELY(chunk_base == nullptr))
      chunk_base = resolve_slow(*table, d);
    return chunk_base + d.offset;
  }

  template <typename T>
  UPSL_ALWAYS_INLINE T* as(std::uint64_t riv) {
    return static_cast<T*>(to_ptr(riv));
  }

  /// Resolve a RIV into a (riv, address) pair for volatile caching. See
  /// DataHandle for the address-stability contract.
  UPSL_ALWAYS_INLINE DataHandle resolve(std::uint64_t riv) {
    return DataHandle{riv, to_ptr(riv)};
  }

  /// Non-throwing to_ptr: nullptr for null/unconfigured/out-of-range RIVs.
  /// For diagnostic walks over possibly-stale pointer words; the hot path
  /// keeps the branch-free throwing variant.
  void* try_to_ptr(std::uint64_t riv) noexcept;

  /// Reverse mapping used by allocators when initializing free lists: the
  /// caller supplies the (pool, chunk) coordinates it already knows.
  static std::uint64_t make(std::uint16_t pool, std::uint32_t chunk,
                            std::uint32_t offset) {
    return encode(pool, chunk, offset);
  }

 private:
  struct PoolTable {
    char* pool_base = nullptr;
    std::uint32_t max_chunks = 0;
    ChunkResolver resolver;
    std::unique_ptr<std::atomic<char*>[]> chunk_base;
  };

  Runtime() = default;
  char* resolve_slow(PoolTable& table, Decoded d);
  void rebuild_dispatch();
  [[noreturn]] static void throw_chunk_out_of_range();
  [[noreturn]] static void throw_pool_not_configured();

  std::unique_ptr<PoolTable> tables_[pmem::PoolRegistry::kMaxPools];
  /// What to_ptr consults: tables_[i].get() per pool, or the single pool's
  /// table in every slot when single-pool mode is on. Rebuilt under
  /// setup_mu_ on any configuration change; slots are atomic (relaxed loads
  /// — a plain mov on x86) so parallel shard recovery can configure its
  /// pools while sibling shards are already dereferencing theirs.
  std::atomic<PoolTable*> dispatch_[pmem::PoolRegistry::kMaxPools] = {};
  PoolTable* single_table_ = nullptr;
  std::atomic<bool> single_pool_mode_{false};
  std::mutex setup_mu_;
};

/// Typed one-word persistent pointer. Trivially copyable so it can live in
/// PMEM and be CASed as a raw uint64_t.
template <typename T>
struct RivPtr {
  std::uint64_t raw = kNull;

  RivPtr() = default;
  explicit constexpr RivPtr(std::uint64_t r) : raw(r) {}

  bool is_null() const { return raw == kNull; }
  T* get() const { return Runtime::instance().as<T>(raw); }
  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }
  friend bool operator==(RivPtr a, RivPtr b) { return a.raw == b.raw; }
};

}  // namespace upsl::riv
