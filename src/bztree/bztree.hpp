// BzTree baseline (Arulraj et al., thesis §3.1/§5.1.2): a latch-free B+tree
// for persistent memory whose every multi-word state change goes through
// PMwCAS. Reproduced from the published design, specialized to fixed 8-byte
// keys and values:
//
//  * leaves hold a binary-searchable sorted region plus an append-only
//    unsorted overflow region — the lookup advantage behind BzTree's
//    read-only win over UPSkipList (Fig 5.2),
//  * every insert/update is one or more PMwCAS operations — the descriptor
//    helping traffic that collapses under update-heavy contention (Fig 5.1),
//  * structure modifications (consolidate/split) freeze a node, rebuild it
//    copy-on-write and swap parent pointers with PMwCAS; any thread finding
//    a frozen node completes or retries the SMO,
//  * recovery = descriptor-pool scan (Table 5.4: proportional to the
//    descriptor count, not the tree size).
//
// Deviations, documented in DESIGN.md: old node versions are reclaimed by
// an epoch GC in the original and are simply retired here (bounded leak per
// consolidation), and duplicate-key races resolve by "highest slot wins"
// until consolidation deduplicates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "pmwcas/pmwcas.hpp"

namespace upsl::bztree {

/// Values live in PMwCAS-managed words, whose top two bits are reserved for
/// descriptor pointers — so user values (and the tombstone) must stay below
/// 2^62. insert() validates this.
inline constexpr std::uint64_t kTombstone = (1ULL << 62) - 1;

class BzTree {
 public:
  struct Config {
    std::uint32_t leaf_capacity = 64;
    std::uint32_t internal_capacity = 64;
    std::uint32_t descriptor_count = 4096;
  };

  static std::unique_ptr<BzTree> create(pmem::Pool& pool, const Config& cfg);
  /// Reconnect after a crash: runs PMwCAS descriptor-pool recovery (the
  /// measured recovery cost) and returns ready to serve.
  static std::unique_ptr<BzTree> open(pmem::Pool& pool);

  std::optional<std::uint64_t> insert(std::uint64_t key, std::uint64_t value);
  std::optional<std::uint64_t> search(std::uint64_t key);
  std::optional<std::uint64_t> remove(std::uint64_t key);
  bool contains(std::uint64_t key) { return search(key).has_value(); }

  std::size_t count_keys();
  void check_invariants();

  pmwcas::DescriptorPool& descriptors() { return *descs_; }
  std::uint32_t tree_height();

 private:
  struct Node;
  struct PathEntry {
    std::uint64_t node_off;
    std::uint32_t child_idx;  // index of the traversed child entry
  };

  BzTree(pmem::Pool& pool, bool creating, const Config* cfg);

  Node* node_at(std::uint64_t off) const;
  std::uint64_t alloc_node(std::uint32_t capacity, bool leaf);
  std::uint64_t* root_word() const;

  std::uint64_t find_leaf(std::uint64_t key, std::vector<PathEntry>& path);
  /// Index of the newest visible entry for key, or -1.
  std::int32_t find_in_leaf(Node* leaf, std::uint64_t key);

  bool try_append(Node* leaf, std::uint64_t leaf_off, std::uint64_t key,
                  std::uint64_t value);
  /// Consolidate (and split if necessary) a full or frozen leaf.
  void smo(std::uint64_t leaf_off, const std::vector<PathEntry>& path);
  bool replace_child(const std::vector<PathEntry>& path,
                     std::uint64_t old_child,
                     const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                         replacements);
  /// Complete a frozen internal node's replacement (split when large,
  /// copy-on-write otherwise). Any thread can drive this to completion.
  void smo_internal(std::uint64_t node_off, const std::vector<PathEntry>& path);

  pmem::Pool& pool_;
  std::unique_ptr<pmwcas::DescriptorPool> descs_;
  Config cfg_;
};

}  // namespace upsl::bztree
