#include "bztree/bztree.hpp"

#include <algorithm>
#include <cstring>

#include "common/crashpoint.hpp"
#include <map>
#include <stdexcept>

namespace upsl::bztree {

using pmem::persist;
using pmem::pm_fetch_add;
using pmem::pm_load;
using pmem::pm_store;

namespace {
constexpr std::uint64_t kMagic = 0x425a545245453231ULL;  // "BZTREE21"
constexpr std::uint64_t kFrozenBit = 1ULL << 48;
constexpr std::uint64_t kCountMask = 0xffffffffULL;
constexpr std::uint64_t kVisible = 1;
}  // namespace

/// Pool header for a BzTree store.
struct BzHeader {
  std::uint64_t magic;
  std::uint64_t root;  // pool offset of root node (PMwCAS target)
  std::uint64_t desc_off;
  std::uint64_t desc_count;
  std::uint64_t heap_next;
  std::uint64_t heap_end;
  std::uint64_t leaf_capacity;
  std::uint64_t internal_capacity;
};

/// Node: header + three parallel arrays (keys, values, meta). Internal
/// nodes keep all entries sorted and immutable; leaves have a sorted prefix
/// [0, sorted_count) and an append-only unsorted suffix.
struct BzTree::Node {
  std::uint64_t status;  // frozen bit | record count (PMwCAS target)
  std::uint32_t capacity;
  std::uint32_t sorted_count;
  std::uint32_t is_leaf;
  std::uint32_t pad;

  std::uint64_t* keys() { return reinterpret_cast<std::uint64_t*>(this + 1); }
  std::uint64_t* values() { return keys() + capacity; }
  std::uint64_t* metas() { return values() + capacity; }

  static std::uint64_t bytes(std::uint32_t capacity) {
    return align_up(sizeof(Node) + 24ull * capacity, kCacheLineSize);
  }
  std::uint32_t count(std::uint64_t status_word) const {
    return static_cast<std::uint32_t>(status_word & kCountMask);
  }
  static bool frozen(std::uint64_t status_word) {
    return (status_word & kFrozenBit) != 0;
  }
};

BzTree::Node* BzTree::node_at(std::uint64_t off) const {
  return reinterpret_cast<Node*>(pool_.base() + off);
}

std::uint64_t* BzTree::root_word() const {
  return &reinterpret_cast<BzHeader*>(pool_.base())->root;
}

std::uint64_t BzTree::alloc_node(std::uint32_t capacity, bool leaf) {
  auto* h = reinterpret_cast<BzHeader*>(pool_.base());
  const std::uint64_t size = Node::bytes(capacity);
  const std::uint64_t off = pm_fetch_add(h->heap_next, size);
  if (off + size > h->heap_end) throw std::bad_alloc();
  persist(&h->heap_next, sizeof(h->heap_next));
  Node* n = node_at(off);
  std::memset(n, 0, size);
  n->capacity = capacity;
  n->is_leaf = leaf ? 1 : 0;
  return off;
}

BzTree::BzTree(pmem::Pool& pool, bool creating, const Config* cfg)
    : pool_(pool) {
  auto* h = reinterpret_cast<BzHeader*>(pool.base());
  if (creating) {
    const std::uint64_t desc_off = align_up(sizeof(BzHeader), kCacheLineSize);
    const std::uint64_t heap_start = align_up(
        desc_off + sizeof(pmwcas::Descriptor) * cfg->descriptor_count, 4096);
    if (heap_start + (64 << 10) > pool.size())
      throw std::invalid_argument("pool too small for BzTree");
    std::memset(h, 0, sizeof(BzHeader));
    h->desc_off = desc_off;
    h->desc_count = cfg->descriptor_count;
    h->heap_next = heap_start;
    h->heap_end = pool.size();
    h->leaf_capacity = cfg->leaf_capacity;
    h->internal_capacity = cfg->internal_capacity;
    pmwcas::DescriptorPool::format(pool, desc_off, cfg->descriptor_count);
    persist(h, sizeof(BzHeader));
    cfg_ = *cfg;
    descs_ = std::make_unique<pmwcas::DescriptorPool>(
        pool, desc_off, cfg->descriptor_count);
    h->root = alloc_node(cfg->leaf_capacity, /*leaf=*/true);
    persist(node_at(h->root), Node::bytes(cfg->leaf_capacity));
    persist(&h->root, sizeof(h->root));
    pm_store(h->magic, kMagic);
    persist(&h->magic, sizeof(h->magic));
  } else {
    if (pm_load(h->magic) != kMagic)
      throw std::runtime_error("pool is not a BzTree");
    cfg_.leaf_capacity = static_cast<std::uint32_t>(h->leaf_capacity);
    cfg_.internal_capacity = static_cast<std::uint32_t>(h->internal_capacity);
    cfg_.descriptor_count = static_cast<std::uint32_t>(h->desc_count);
    descs_ = std::make_unique<pmwcas::DescriptorPool>(
        pool, h->desc_off, cfg_.descriptor_count);
    // The whole of BzTree recovery: descriptor-pool scan (Table 5.4).
    descs_->recover();
  }
}

std::unique_ptr<BzTree> BzTree::create(pmem::Pool& pool, const Config& cfg) {
  return std::unique_ptr<BzTree>(new BzTree(pool, true, &cfg));
}

std::unique_ptr<BzTree> BzTree::open(pmem::Pool& pool) {
  return std::unique_ptr<BzTree>(new BzTree(pool, false, nullptr));
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

std::uint64_t BzTree::find_leaf(std::uint64_t key,
                                std::vector<PathEntry>& path) {
  path.clear();
  std::uint64_t off = descs_->read(root_word());
  while (true) {
    Node* n = node_at(off);
    if (n->is_leaf != 0) return off;
    // Internal nodes are immutable and fully sorted: binary search for the
    // first separator >= key; its child covers the key.
    const auto cnt = n->count(pm_load(n->status));
    std::uint32_t lo = 0;
    std::uint32_t hi = cnt - 1;  // last separator is always UINT64_MAX
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (n->keys()[mid] >= key) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    path.push_back({off, lo});
    off = descs_->read(&n->values()[lo]);
  }
}

std::int32_t BzTree::find_in_leaf(Node* leaf, std::uint64_t key) {
  const std::uint64_t status = descs_->read(&leaf->status);
  const auto cnt = leaf->count(status);
  // Newest-wins: scan the unsorted overflow region backwards first.
  for (std::int32_t i = static_cast<std::int32_t>(cnt) - 1;
       i >= static_cast<std::int32_t>(leaf->sorted_count); --i) {
    if ((descs_->read(&leaf->metas()[i]) & kVisible) == 0) continue;
    if (pm_load(leaf->keys()[i]) == key) return i;
  }
  if (leaf->sorted_count == 0) return -1;
  // Binary search in the sorted region.
  std::int32_t lo = 0;
  std::int32_t hi = static_cast<std::int32_t>(leaf->sorted_count) - 1;
  while (lo <= hi) {
    const std::int32_t mid = (lo + hi) / 2;
    const std::uint64_t k = pm_load(leaf->keys()[mid]);
    if (k == key) {
      if ((descs_->read(&leaf->metas()[mid]) & kVisible) == 0) return -1;
      return mid;
    }
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> BzTree::search(std::uint64_t key) {
  while (true) {
    std::vector<PathEntry> path;
    const std::uint64_t leaf_off = find_leaf(key, path);
    Node* leaf = node_at(leaf_off);
    const std::int32_t idx = find_in_leaf(leaf, key);
    if (idx < 0) {
      // A frozen leaf still contains every record it ever had (SMOs copy,
      // never erase) and no insert becomes visible elsewhere until the
      // parent pointer is swapped — a miss here is a genuine miss.
      return std::nullopt;
    }
    const std::uint64_t v = descs_->read(&leaf->values()[idx]);
    if (v == kTombstone) return std::nullopt;
    persist(&leaf->values()[idx], sizeof(std::uint64_t));
    return v;
  }
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

bool BzTree::try_append(Node* leaf, std::uint64_t /*leaf_off*/,
                        std::uint64_t key, std::uint64_t value) {
  // Reserve a slot: PMwCAS bump of the record count in the status word.
  const std::uint64_t status = descs_->read(&leaf->status);
  if (Node::frozen(status)) return false;
  const std::uint32_t cnt = leaf->count(status);
  if (cnt >= leaf->capacity) return false;
  if (!descs_->mwcas({{&leaf->status, status, status + 1}})) return false;

  // Write the record payload, persist, then flip it visible with a PMwCAS
  // that also re-verifies the node was not frozen meanwhile.
  UPSL_CRASH_POINT("bztree.slot_reserved");
  pm_store(leaf->keys()[cnt], key);
  pm_store(leaf->values()[cnt], value);
  persist(&leaf->keys()[cnt], sizeof(std::uint64_t));
  persist(&leaf->values()[cnt], sizeof(std::uint64_t));
  UPSL_CRASH_POINT("bztree.payload_written");
  while (true) {
    const std::uint64_t s2 = descs_->read(&leaf->status);
    if (Node::frozen(s2)) {
      // The consolidator will not copy this invisible record; retry whole op.
      return false;
    }
    if (descs_->mwcas({{&leaf->status, s2, s2},
                       {&leaf->metas()[cnt], 0, kVisible}})) {
      UPSL_CRASH_POINT("bztree.visible");
      return true;
    }
  }
}

std::optional<std::uint64_t> BzTree::insert(std::uint64_t key,
                                            std::uint64_t value) {
  if (value >= kTombstone)
    throw std::invalid_argument("BzTree values must be below 2^62 - 1");
  while (true) {
    std::vector<PathEntry> path;
    const std::uint64_t leaf_off = find_leaf(key, path);
    Node* leaf = node_at(leaf_off);
    const std::uint64_t status = descs_->read(&leaf->status);
    if (Node::frozen(status)) {
      smo(leaf_off, path);  // complete/renew the SMO, then retry
      continue;
    }
    const std::int32_t idx = find_in_leaf(leaf, key);
    if (idx >= 0) {
      // In-place update through PMwCAS (the thesis: "a BzTree thread needs
      // to use PMwCAS to change the key value ... safely", §5.2.1).
      while (true) {
        const std::uint64_t old = descs_->read(&leaf->values()[idx]);
        const std::uint64_t s2 = descs_->read(&leaf->status);
        if (Node::frozen(s2)) break;  // retry from the top
        if (descs_->mwcas({{&leaf->status, s2, s2},
                           {&leaf->values()[idx], old, value}})) {
          return old == kTombstone ? std::nullopt
                                   : std::optional<std::uint64_t>(old);
        }
      }
      continue;
    }
    if (try_append(leaf, leaf_off, key, value)) return std::nullopt;
    if (leaf->count(descs_->read(&leaf->status)) >= leaf->capacity)
      smo(leaf_off, path);
  }
}

std::optional<std::uint64_t> BzTree::remove(std::uint64_t key) {
  while (true) {
    std::vector<PathEntry> path;
    const std::uint64_t leaf_off = find_leaf(key, path);
    Node* leaf = node_at(leaf_off);
    const std::int32_t idx = find_in_leaf(leaf, key);
    if (idx < 0) return std::nullopt;
    const std::uint64_t old = descs_->read(&leaf->values()[idx]);
    if (old == kTombstone) return std::nullopt;
    const std::uint64_t s2 = descs_->read(&leaf->status);
    if (Node::frozen(s2)) {
      smo(leaf_off, path);
      continue;
    }
    if (descs_->mwcas({{&leaf->status, s2, s2},
                       {&leaf->values()[idx], old, kTombstone}})) {
      return old;
    }
  }
}

// ---------------------------------------------------------------------------
// Structure modification: consolidate / split
// ---------------------------------------------------------------------------

void BzTree::smo(std::uint64_t leaf_off, const std::vector<PathEntry>& path) {
  Node* leaf = node_at(leaf_off);
  // Freeze the node (idempotent: fails harmlessly if already frozen).
  while (true) {
    const std::uint64_t status = descs_->read(&leaf->status);
    if (Node::frozen(status)) break;
    if (descs_->mwcas({{&leaf->status, status, status | kFrozenBit}})) break;
  }

  // Collect live records (visible, newest slot wins, tombstones dropped).
  std::map<std::uint64_t, std::uint64_t> live;
  const std::uint32_t cnt = leaf->count(descs_->read(&leaf->status));
  for (std::uint32_t i = 0; i < cnt; ++i) {
    if ((descs_->read(&leaf->metas()[i]) & kVisible) == 0) continue;
    live[pm_load(leaf->keys()[i])] = descs_->read(&leaf->values()[i]);
  }
  for (auto it = live.begin(); it != live.end();) {
    if (it->second == kTombstone) {
      it = live.erase(it);
    } else {
      ++it;
    }
  }

  auto fill = [&](std::uint64_t off, auto begin, auto end) {
    Node* n = node_at(off);
    std::uint32_t i = 0;
    for (auto it = begin; it != end; ++it, ++i) {
      n->keys()[i] = it->first;
      n->values()[i] = it->second;
      n->metas()[i] = kVisible;
    }
    n->sorted_count = i;
    n->status = i;  // count, not frozen
    persist(n, Node::bytes(n->capacity));
  };

  std::vector<std::pair<std::uint64_t, std::uint64_t>> repl;  // (sep, child)
  if (live.size() <= cfg_.leaf_capacity / 2 + 1) {
    // Consolidate into a single fresh leaf.
    const std::uint64_t fresh = alloc_node(cfg_.leaf_capacity, true);
    fill(fresh, live.begin(), live.end());
    repl.push_back({0 /*keep old separator*/, fresh});
  } else {
    // Split into two leaves around the median.
    auto mid = live.begin();
    std::advance(mid, static_cast<std::ptrdiff_t>(live.size() / 2));
    const std::uint64_t left = alloc_node(cfg_.leaf_capacity, true);
    const std::uint64_t right = alloc_node(cfg_.leaf_capacity, true);
    fill(left, live.begin(), mid);
    fill(right, mid, live.end());
    const std::uint64_t sep = std::prev(mid)->first;
    repl.push_back({sep, left});
    repl.push_back({0 /*keep old separator*/, right});
  }
  UPSL_CRASH_POINT("bztree.smo_built");
  // Publish; on failure another SMO won the race — the retry loop in the
  // caller re-traverses. Our fresh nodes are retired (bounded leak; the
  // original reclaims them with epoch GC).
  replace_child(path, leaf_off, repl);
  UPSL_CRASH_POINT("bztree.smo_published");
}

bool BzTree::replace_child(
    const std::vector<PathEntry>& path, std::uint64_t old_child,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& replacements) {
  if (path.empty()) {
    // old_child is the root.
    if (replacements.size() == 1) {
      return descs_->mwcas(
          {{root_word(), old_child, replacements[0].second}});
    }
    // Root split: new internal root with two children.
    const std::uint64_t new_root = alloc_node(cfg_.internal_capacity, false);
    Node* r = node_at(new_root);
    r->keys()[0] = replacements[0].first;
    r->values()[0] = replacements[0].second;
    r->metas()[0] = kVisible;
    r->keys()[1] = ~0ULL;
    r->values()[1] = replacements[1].second;
    r->metas()[1] = kVisible;
    r->sorted_count = 2;
    r->status = 2;
    persist(r, Node::bytes(r->capacity));
    return descs_->mwcas({{root_word(), old_child, new_root}});
  }

  const PathEntry tail = path.back();
  Node* parent = node_at(tail.node_off);
  const std::uint64_t pstatus = descs_->read(&parent->status);
  if (Node::frozen(pstatus)) {
    // The parent is mid-replacement; help it along so a crashed or slow
    // SMO owner cannot wedge the subtree, then have the caller retraverse.
    std::vector<PathEntry> ppath(path.begin(), std::prev(path.end()));
    smo_internal(tail.node_off, ppath);
    return false;
  }
  const std::uint32_t pcnt = parent->count(pstatus);
  if (descs_->read(&parent->values()[tail.child_idx]) != old_child)
    return false;  // someone already replaced it

  if (replacements.size() == 1) {
    // In-place child pointer swap (separator unchanged) — 2-word PMwCAS.
    return descs_->mwcas(
        {{&parent->status, pstatus, pstatus},
         {&parent->values()[tail.child_idx], old_child,
          replacements[0].second}});
  }

  // Child split: copy-on-write the parent with one extra entry.
  if (pcnt + 1 > parent->capacity) {
    // Parent itself is full: freeze and split it recursively, then retry
    // from the caller.
    std::vector<PathEntry> ppath(path.begin(), std::prev(path.end()));
    smo_internal(tail.node_off, ppath);
    return false;
  }
  const std::uint64_t fresh = alloc_node(cfg_.internal_capacity, false);
  Node* f = node_at(fresh);
  std::uint32_t w = 0;
  for (std::uint32_t i = 0; i < pcnt; ++i) {
    if (i == tail.child_idx) {
      f->keys()[w] = replacements[0].first;
      f->values()[w] = replacements[0].second;
      f->metas()[w] = kVisible;
      ++w;
      f->keys()[w] = pm_load(parent->keys()[i]);  // old separator
      f->values()[w] = replacements[1].second;
      f->metas()[w] = kVisible;
      ++w;
    } else {
      f->keys()[w] = pm_load(parent->keys()[i]);
      f->values()[w] = descs_->read(&parent->values()[i]);
      f->metas()[w] = kVisible;
      ++w;
    }
  }
  f->sorted_count = w;
  f->status = w;
  persist(f, Node::bytes(f->capacity));

  // Freeze the old parent and swap it in the grandparent.
  if (!descs_->mwcas({{&parent->status, pstatus, pstatus | kFrozenBit}}))
    return false;
  std::vector<PathEntry> ppath(path.begin(), std::prev(path.end()));
  return replace_child(ppath, tail.node_off, {{0, fresh}});
}

void BzTree::smo_internal(std::uint64_t node_off,
                          const std::vector<PathEntry>& path) {
  // Split a full internal node copy-on-write into two halves.
  Node* n = node_at(node_off);
  while (true) {
    const std::uint64_t status = descs_->read(&n->status);
    if (Node::frozen(status)) break;
    if (descs_->mwcas({{&n->status, status, status | kFrozenBit}})) break;
  }
  const std::uint32_t cnt = n->count(descs_->read(&n->status));
  if (cnt < 4) {
    // Too small to split (frozen during a failed copy-on-write, not by
    // fullness): replace with a plain unfrozen copy so progress resumes.
    const std::uint64_t fresh = alloc_node(cfg_.internal_capacity, false);
    Node* f = node_at(fresh);
    for (std::uint32_t i = 0; i < cnt; ++i) {
      f->keys()[i] = pm_load(n->keys()[i]);
      f->values()[i] = descs_->read(&n->values()[i]);
      f->metas()[i] = kVisible;
    }
    f->sorted_count = cnt;
    f->status = cnt;
    persist(f, Node::bytes(f->capacity));
    replace_child(path, node_off, {{0, fresh}});
    return;
  }
  const std::uint32_t half = cnt / 2;
  const std::uint64_t left = alloc_node(cfg_.internal_capacity, false);
  const std::uint64_t right = alloc_node(cfg_.internal_capacity, false);
  Node* l = node_at(left);
  Node* r = node_at(right);
  for (std::uint32_t i = 0; i < half; ++i) {
    l->keys()[i] = pm_load(n->keys()[i]);
    l->values()[i] = descs_->read(&n->values()[i]);
    l->metas()[i] = kVisible;
  }
  l->sorted_count = half;
  l->status = half;
  for (std::uint32_t i = half; i < cnt; ++i) {
    r->keys()[i - half] = pm_load(n->keys()[i]);
    r->values()[i - half] = descs_->read(&n->values()[i]);
    r->metas()[i - half] = kVisible;
  }
  r->sorted_count = cnt - half;
  r->status = cnt - half;
  persist(l, Node::bytes(l->capacity));
  persist(r, Node::bytes(r->capacity));
  replace_child(path, node_off,
                {{l->keys()[half - 1], left}, {0, right}});
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

std::size_t BzTree::count_keys() {
  std::size_t total = 0;
  std::vector<std::uint64_t> stack{descs_->read(root_word())};
  while (!stack.empty()) {
    Node* n = node_at(stack.back());
    stack.pop_back();
    const std::uint32_t cnt = n->count(descs_->read(&n->status));
    if (n->is_leaf != 0) {
      std::map<std::uint64_t, std::uint64_t> live;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        if ((descs_->read(&n->metas()[i]) & kVisible) == 0) continue;
        live[pm_load(n->keys()[i])] = descs_->read(&n->values()[i]);
      }
      for (const auto& [k, v] : live)
        if (v != kTombstone) ++total;
    } else {
      for (std::uint32_t i = 0; i < cnt; ++i)
        stack.push_back(descs_->read(&n->values()[i]));
    }
  }
  return total;
}

std::uint32_t BzTree::tree_height() {
  std::uint32_t h = 1;
  std::uint64_t off = descs_->read(root_word());
  while (node_at(off)->is_leaf == 0) {
    ++h;
    off = descs_->read(&node_at(off)->values()[0]);
  }
  return h;
}

void BzTree::check_invariants() {
  // Every leaf's sorted region is sorted; internal separators are sorted and
  // children partition the key space.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stack{
      {descs_->read(root_word()), ~0ULL}};
  while (!stack.empty()) {
    auto [off, upper] = stack.back();
    stack.pop_back();
    Node* n = node_at(off);
    const std::uint32_t cnt = n->count(descs_->read(&n->status));
    if (n->is_leaf != 0) {
      for (std::uint32_t i = 1; i < n->sorted_count; ++i)
        if (pm_load(n->keys()[i - 1]) >= pm_load(n->keys()[i]))
          throw std::logic_error("leaf sorted region not sorted");
      for (std::uint32_t i = 0; i < cnt; ++i)
        if ((descs_->read(&n->metas()[i]) & kVisible) != 0 &&
            pm_load(n->keys()[i]) > upper)
          throw std::logic_error("leaf key above separator bound");
    } else {
      std::uint64_t prev = 0;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        const std::uint64_t sep = pm_load(n->keys()[i]);
        if (i > 0 && sep <= prev)
          throw std::logic_error("internal separators not sorted");
        prev = sep;
        stack.push_back({descs_->read(&n->values()[i]), sep});
      }
      // The last separator is the node's upper bound (it is +inf only on
      // the rightmost spine of the tree).
      if (prev != upper)
        throw std::logic_error("last separator must equal the node bound");
    }
  }
}

}  // namespace upsl::bztree
