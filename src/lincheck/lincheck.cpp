#include "lincheck/lincheck.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace upsl::lincheck {

namespace {

/// Global order across crashes: epoch first, then the logical timestamp.
std::uint64_t order_key(std::uint64_t epoch, std::uint64_t ts) {
  return (epoch << 40) | (ts & ((1ULL << 40) - 1));
}

struct KeyHistory {
  std::vector<const Operation*> writes;
  std::vector<const Operation*> reads;
};

CheckResult violation(std::uint64_t key, const std::string& what) {
  CheckResult r;
  r.linearizable = false;
  std::ostringstream os;
  os << "key " << key << ": " << what;
  r.reason = os.str();
  return r;
}

}  // namespace

CheckResult check_strict(const std::vector<Operation>& history) {
  std::unordered_map<std::uint64_t, KeyHistory> keys;
  for (const Operation& op : history) {
    if (op.kind == OpKind::kWrite) {
      keys[op.key].writes.push_back(&op);
    } else if (op.completed) {
      keys[op.key].reads.push_back(&op);
    }
  }

  CheckResult result;
  for (auto& [key, kh] : keys) {
    result.keys_checked += 1;
    result.ops_checked += kh.writes.size() + kh.reads.size();

    // Written values must be unique (methodology requirement, §6.1.1).
    {
      std::map<std::uint64_t, int> seen;
      for (const Operation* w : kh.writes)
        if (++seen[w->arg] > 1)
          return violation(key, "duplicate written value (bad test harness)");
    }

    // Build the swap chain from completed writes: prev value -> write.
    // Pending writes may join the chain (they were allowed to take effect
    // before the crash) but are not required to.
    std::unordered_map<std::uint64_t, const Operation*> by_prev;
    for (const Operation* w : kh.writes) {
      if (!w->completed) continue;
      auto [it, inserted] = by_prev.emplace(w->ret, w);
      if (!inserted)
        return violation(key, "two completed swaps observed the same "
                              "previous value");
    }
    std::unordered_map<std::uint64_t, const Operation*> pending_by_arg;
    for (const Operation* w : kh.writes) {
      if (w->completed) continue;
      // Pending writes have no recorded ret; they may slot anywhere their
      // value is observed (the analyzer "inserts responses with inferred
      // values" for operations that appear to have taken effect, §6.2).
      pending_by_arg.emplace(w->arg, w);
    }

    // Follow the chain from the initial value. When no completed swap
    // continues the chain, a pending write may bridge the gap — it took
    // effect before the crash and its observed-previous value is inferred.
    std::vector<const Operation*> chain;
    std::unordered_map<std::uint64_t, std::size_t> pos_of_value;
    std::unordered_map<std::uint64_t, const Operation*> spliced;
    pos_of_value[kInitialValue] = 0;
    std::uint64_t cur = kInitialValue;
    std::size_t placed = 0;
    while (true) {
      auto it = by_prev.find(cur);
      if (it != by_prev.end()) {
        chain.push_back(it->second);
        ++placed;
        cur = it->second->arg;
        pos_of_value[cur] = chain.size();
        if (chain.size() > kh.writes.size())
          return violation(key, "swap chain contains a cycle");
        continue;
      }
      // Bridge with a pending write whose value some completed swap
      // observed (prefer one that reconnects the chain).
      const Operation* bridge = nullptr;
      for (auto& [arg, p] : pending_by_arg) {
        if (spliced.count(arg) != 0) continue;
        if (by_prev.count(arg) != 0) {
          bridge = p;
          break;
        }
      }
      if (bridge == nullptr) break;
      spliced.emplace(bridge->arg, bridge);
      chain.push_back(bridge);
      cur = bridge->arg;
      pos_of_value[cur] = chain.size();
      if (chain.size() > kh.writes.size())
        return violation(key, "swap chain contains a cycle");
    }
    if (placed != by_prev.size())
      return violation(key,
                       "completed swap not reachable in the chain (its "
                       "observed previous value never existed)");

    // Real-time and epoch order along the chain.
    for (std::size_t i = 0; i < chain.size(); ++i) {
      for (std::size_t j = i + 1; j < chain.size(); ++j) {
        if (!chain[j]->completed || !chain[i]->completed) continue;
        const std::uint64_t j_resp =
            order_key(chain[j]->epoch, chain[j]->resp_ts);
        const std::uint64_t i_inv = order_key(chain[i]->epoch, chain[i]->inv_ts);
        if (j_resp < i_inv)
          return violation(key, "chain order contradicts real-time order");
      }
      if (i > 0 && chain[i]->epoch < chain[i - 1]->epoch)
        return violation(key, "chain order contradicts epoch order");
    }

    // Strict linearizability: an operation may not take effect after the
    // crash that interrupted it. A pending write of epoch e whose value was
    // observed must therefore linearize within epoch e — i.e. everything
    // before it in the chain must also be from epoch <= e. A pending write
    // in the chain appears as: some completed op observed its value.
    for (const Operation* w : chain) {
      if (w->completed) continue;
      for (const Operation* prior : chain) {
        if (prior == w) break;
        if (prior->epoch > w->epoch)
          return violation(key,
                           "in-flight operation took effect after the crash "
                           "(strict linearizability violation)");
      }
    }

    // Reads: value must exist in the chain (or be the initial value), the
    // read's interval must intersect the value's validity window, and a
    // read cannot observe a pending write from a *later* epoch than the
    // read itself (it would have observed the future).
    for (const Operation* r : kh.reads) {
      auto pit = pos_of_value.find(r->ret);
      if (pit == pos_of_value.end()) {
        // Possibly a pending write's value that no completed swap follows.
        auto pw = pending_by_arg.find(r->ret);
        if (pw == pending_by_arg.end())
          return violation(key, "read returned a value that was never written");
        const Operation* w = pw->second;
        if (order_key(w->epoch, w->inv_ts) > order_key(r->epoch, r->resp_ts))
          return violation(key, "read observed a write before it was invoked");
        if (w->epoch > r->epoch)
          return violation(key, "read observed a write from a later epoch");
        continue;
      }
      const std::size_t pos = pit->second;
      if (pos > 0) {
        const Operation* writer = chain[pos - 1];
        if (order_key(r->epoch, r->resp_ts) <
            order_key(writer->epoch, writer->inv_ts))
          return violation(key, "read completed before its value was written");
      }
      if (pos < chain.size()) {
        const Operation* replacer = chain[pos];
        if (replacer->completed &&
            order_key(r->epoch, r->inv_ts) >
                order_key(replacer->epoch, replacer->resp_ts))
          return violation(key,
                           "read returned a stale value after its replacement "
                           "completed");
      }
    }
  }
  return result;
}

std::vector<Operation> assemble(
    const std::vector<std::vector<LogRecord>>& per_thread_records) {
  std::vector<Operation> ops;
  for (const auto& records : per_thread_records) {
    // Pair invoke/response records by per-thread sequence number; records
    // are appended in order, so a simple map suffices.
    std::unordered_map<std::uint32_t, Operation> open;
    for (const LogRecord& rec : records) {
      if (rec.kind_invoke == 1) {
        Operation op{};
        op.kind = static_cast<OpKind>(rec.op);
        op.completed = false;
        op.tid = rec.tid;
        op.key = rec.key;
        op.arg = rec.value;
        op.epoch = rec.epoch;
        op.inv_ts = rec.ts;
        open[rec.seq] = op;
      } else {
        auto it = open.find(rec.seq);
        if (it == open.end()) continue;  // response without invoke: skip
        it->second.completed = true;
        it->second.ret = rec.value;
        it->second.resp_ts = rec.ts;
        ops.push_back(it->second);
        open.erase(it);
      }
    }
    for (auto& [seq, op] : open) ops.push_back(op);  // pending at crash
  }
  return ops;
}

}  // namespace upsl::lincheck
