#include "lincheck/oracle.hpp"

#include <map>
#include <sstream>
#include <unordered_map>

namespace upsl::lincheck {

namespace {

/// Global order across crashes: generation first, then the logical
/// timestamp (same packing as the strict checker's epoch order).
std::uint64_t okey(std::uint64_t gen, std::uint64_t ts) {
  return (gen << 40) | (ts & ((1ULL << 40) - 1));
}

using Event = DurableOracle::Event;
using EvKind = DurableOracle::EvKind;

/// True when `later` was invoked strictly after `earlier` completed — in
/// every legal linearization `later` takes effect after `earlier`.
bool definitely_after(const Event& later, const Event& earlier) {
  if (!earlier.completed) {
    // An in-flight op may only linearize before the crash that killed it,
    // so anything acked in a later generation definitely follows it.
    return later.completed && later.gen > earlier.gen;
  }
  return okey(later.gen, later.inv_ts) > okey(earlier.gen, earlier.resp_ts);
}

/// An op whose effect some *acked* op definitely overwrote cannot be the
/// source of the final observed state.
bool superseded(const Event& ev, const std::vector<const Event*>& key_ops) {
  for (const Event* other : key_ops) {
    if (other == &ev) continue;
    if (other->kind == EvKind::kRead) continue;
    if (!other->completed) continue;
    if (definitely_after(*other, ev)) return true;
  }
  return false;
}

DurableOracle::Verdict fail(std::uint64_t key, const std::string& what) {
  DurableOracle::Verdict v;
  v.ok = false;
  std::ostringstream os;
  os << "key " << key << ": " << what;
  v.reason = os.str();
  return v;
}

}  // namespace

DurableOracle::Verdict DurableOracle::verify(
    const std::function<std::optional<std::uint64_t>(std::uint64_t)>& lookup,
    const std::function<bool(std::uint64_t)>& reported_lost) const {
  // Group every event by key, preserving nothing about thread interleaving
  // beyond the logical timestamps (the checks are key-local).
  std::map<std::uint64_t, std::vector<const Event*>> by_key;
  for (const auto& events : per_thread_)
    for (const Event& ev : events) by_key[ev.key].push_back(&ev);

  Verdict verdict;
  const std::uint64_t now_gen = gen_.load(std::memory_order_relaxed);
  std::uint64_t readback_ts = clock_.load(std::memory_order_relaxed);

  for (const auto& [key, ops] : by_key) {
    verdict.keys_checked += 1;
    verdict.ops_checked += ops.size();
    const std::optional<std::uint64_t> observed = lookup(key);
    // Quarantined loss is explicit, not silent: an absent key inside a
    // reported lost range skips the readback-dependent durability checks
    // but keeps its pre-crash history checks. An observed *value* is never
    // excused.
    const bool lost_ok =
        !observed.has_value() && reported_lost && reported_lost(key);
    if (lost_ok) verdict.keys_reported_lost += 1;

    bool any_remove = false;
    for (const Event* ev : ops)
      if (ev->kind == EvKind::kRemove) any_remove = true;

    if (!any_remove) {
      // Exact path: the key's history is a pure swap history, so hand it to
      // the strict checker with the post-recovery readback appended as the
      // history's final completed read.
      std::vector<Operation> history;
      history.reserve(ops.size() + 1);
      for (const Event* ev : ops) {
        if (ev->kind == EvKind::kRead && !ev->completed)
          continue;  // an in-flight read has no durable effect
        Operation op{};
        op.kind = ev->kind == EvKind::kWrite ? OpKind::kWrite : OpKind::kRead;
        op.completed = ev->completed;
        op.key = key;
        op.arg = ev->arg;
        op.ret = ev->ret;
        op.epoch = ev->gen;
        op.inv_ts = ev->inv_ts;
        op.resp_ts = ev->resp_ts;
        history.push_back(op);
      }
      if (!lost_ok) {
        Operation rb{};
        rb.kind = OpKind::kRead;
        rb.completed = true;
        rb.key = key;
        rb.ret = observed.value_or(kInitialValue);
        rb.epoch = now_gen;
        rb.inv_ts = ++readback_ts;
        rb.resp_ts = ++readback_ts;
        history.push_back(rb);
      }
      const CheckResult res = check_strict(history);
      if (!res.linearizable) {
        Verdict v;
        v.ok = false;
        v.reason = res.reason + " (observed " +
                   (observed ? std::to_string(*observed) : "absent") + ")";
        return v;
      }
      continue;
    }

    // State-based durable check for keys with removals: the observed state
    // must be installed by some non-superseded op.
    if (observed.has_value()) {
      const Event* writer = nullptr;
      for (const Event* ev : ops)
        if (ev->kind == EvKind::kWrite && ev->arg == *observed) writer = ev;
      if (writer == nullptr)
        return fail(key, "recovered value " + std::to_string(*observed) +
                             " was never written");
      if (superseded(*writer, ops))
        return fail(key, "recovered value " + std::to_string(*observed) +
                             " survived although a later acked op overwrote "
                             "or removed it");
    } else if (!lost_ok) {
      // Absence is explainable by a non-superseded remove, or trivially if
      // no insert was ever acknowledged (in-flight inserts may vanish).
      bool acked_insert = false;
      for (const Event* ev : ops)
        if (ev->kind == EvKind::kWrite && ev->completed) acked_insert = true;
      if (acked_insert) {
        bool explained = false;
        for (const Event* ev : ops) {
          if (ev->kind != EvKind::kRemove) continue;
          if (!superseded(*ev, ops)) {
            explained = true;
            break;
          }
        }
        if (!explained)
          return fail(key,
                      "key absent after recovery but an acked insert was "
                      "never removed (lost acked write)");
      }
    }

    // Sanity over the run's completed reads (conservative: only flags
    // impossibilities, never a legal overlap).
    for (const Event* r : ops) {
      if (r->kind != EvKind::kRead || !r->completed) continue;
      if (r->ret != kInitialValue) {
        const Event* w = nullptr;
        for (const Event* ev : ops)
          if (ev->kind == EvKind::kWrite && ev->arg == r->ret) w = ev;
        if (w == nullptr)
          return fail(key, "read returned a value that was never written");
        if (definitely_after(*w, *r))
          return fail(key, "read observed a write before it was invoked");
        if (w->gen > r->gen)
          return fail(key, "read observed a write from a later generation");
      } else {
        // Read said "absent": impossible if some acked insert definitely
        // preceded it and no remove was even invoked by the time it
        // responded.
        for (const Event* w : ops) {
          if (w->kind != EvKind::kWrite || !w->completed) continue;
          if (!definitely_after(*r, *w)) continue;
          bool removable = false;
          for (const Event* rm : ops) {
            if (rm->kind != EvKind::kRemove) continue;
            if (okey(rm->gen, rm->inv_ts) < okey(r->gen, r->resp_ts)) {
              removable = true;
              break;
            }
          }
          if (!removable)
            return fail(key,
                        "read missed an acked insert with no remove in "
                        "flight (lost acked write)");
        }
      }
    }
  }
  return verdict;
}

}  // namespace upsl::lincheck
