// Durable-linearizability oracle for concurrent crash-recovery torture.
//
// The strict checker in lincheck.hpp analyzes swap histories with unique
// written values — exact, but it cannot model removals (a remove "writes"
// the not-present state, which is not unique). The torture harness mixes
// inserts, reads and removes across repeated crashes, so the oracle layers
// a two-tier check on top:
//
//  * DRAM event log: each worker records an invoke event before calling the
//    store and an ack event after it returns. A worker that dies at a crash
//    point simply never writes the ack — exactly the information an
//    outside observer (the thesis' client, §6.1.1) would have. Per-thread
//    vectors, one shared logical clock; nothing here is persistent by
//    design: the oracle must survive *in the harness*, not in the pool.
//
//  * After every recovery the harness replays: each touched key is read
//    back from the reopened store. Keys never removed go through
//    check_strict() verbatim (the readback becomes the history's final
//    completed read). Keys with removals get a state-based durable check:
//    the observed state must be installed by some operation that is not
//    definitely superseded, where "definitely superseded" means an acked
//    operation on the same key was *invoked* after the candidate completed
//    (or, for in-flight candidates, was acked in a later crash generation —
//    an in-flight op may only take effect before the crash that killed it,
//    §2.2 strict/durable linearizability). This catches lost acked writes,
//    resurrected removes, and torn in-flight ops, while never flagging a
//    legal overlap.
//
// Written values must be unique per key and non-zero (use a global
// sequence); value 0 is reserved for "not present" (lincheck::kInitialValue).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lincheck/lincheck.hpp"

namespace upsl::lincheck {

class DurableOracle {
 public:
  enum class EvKind : std::uint8_t { kRead = 1, kWrite = 2, kRemove = 3 };

  struct Event {
    EvKind kind;
    bool completed = false;
    std::uint64_t key = 0;
    std::uint64_t arg = 0;  // written value (writes)
    std::uint64_t ret = 0;  // value read / previous value (0 = not present)
    std::uint64_t gen = 0;  // crash generation of the invocation
    std::uint64_t inv_ts = 0;
    std::uint64_t resp_ts = 0;
  };

  struct Verdict {
    bool ok = true;
    std::string reason;
    std::size_t keys_checked = 0;
    std::size_t ops_checked = 0;
    /// Keys whose absence was excused by the `reported_lost` predicate
    /// (explicitly quarantined by corruption recovery, docs/integrity.md).
    std::size_t keys_reported_lost = 0;
  };

  explicit DurableOracle(std::uint32_t threads) : per_thread_(threads) {
    for (auto& v : per_thread_) v.reserve(4096);
  }

  /// Worker side (thread `tid` only). Record the invoke, call the store,
  /// record the ack; dying between the two leaves the op pending, which is
  /// precisely its durability status. Returns the per-thread event index so
  /// pipelining harnesses (several ops in flight per thread) can ack or
  /// resolve each op individually via ack_at/resolve_*.
  std::size_t invoke(std::uint32_t tid, EvKind kind, std::uint64_t key,
                     std::uint64_t arg = 0) {
    Event ev;
    ev.kind = kind;
    ev.key = key;
    ev.arg = arg;
    ev.gen = gen_.load(std::memory_order_relaxed);
    ev.inv_ts = clock_.fetch_add(1, std::memory_order_relaxed);
    per_thread_[tid].push_back(ev);
    return per_thread_[tid].size() - 1;
  }

  /// Ack the open op of `tid` with the store's return (previous value for
  /// writes/removes, read value for reads; absent -> leave 0). Legacy
  /// one-op-per-thread form: completes the most recent invoke.
  void ack(std::uint32_t tid, std::optional<std::uint64_t> ret) {
    ack_at(tid, per_thread_[tid].size() - 1, ret);
  }

  /// Ack a specific in-flight op by its invoke() index.
  void ack_at(std::uint32_t tid, std::size_t idx,
              std::optional<std::uint64_t> ret) {
    Event& ev = per_thread_[tid][idx];
    ev.ret = ret.value_or(kInitialValue);
    ev.resp_ts = clock_.fetch_add(1, std::memory_order_relaxed);
    ev.completed = true;
  }

  /// Exactly-once resolution (docs/detectability.md): a post-crash RESOLVE
  /// answered "applied" with the op's durable result. Completes the pending
  /// event with that result. The generation stays the invocation's — the op
  /// took effect before the crash that interrupted its ack — while resp_ts
  /// advances the shared clock, keeping the global order monotonic.
  void resolve_applied(std::uint32_t tid, std::size_t idx,
                       std::optional<std::uint64_t> ret) {
    ack_at(tid, idx, ret);
  }

  /// Exactly-once resolution: RESOLVE answered "not applied". The event
  /// deliberately stays in the history as in-flight: "not applied" promises
  /// no *durable* effect (replaying is safe), but the op did execute in
  /// DRAM before the crash, so concurrently committed ops may have legally
  /// observed its value — exactly what an uncompleted event models (it may
  /// linearize before the crash that killed it, §2.2). The harness replays
  /// the op over the same key as a fresh completed event, so the recovered
  /// state can never end on the unresolved value; if the store lied and the
  /// replay was silently deduplicated, the replay's acked write goes
  /// missing and verify() flags it.
  void resolve_not_applied(std::uint32_t tid, std::size_t idx) {
    (void)tid;
    (void)idx;
  }

  /// Call after joining the workers of a crashed phase, before driving the
  /// recovered store: later events belong to the next crash generation.
  void on_crash() { gen_.fetch_add(1, std::memory_order_relaxed); }

  std::uint64_t generation() const {
    return gen_.load(std::memory_order_relaxed);
  }

  /// Post-recovery check. `lookup` reads a key from the recovered store
  /// (typically [&](k){ return store.search(k); }). Single-threaded.
  ///
  /// `reported_lost` upgrades the contract from "every acked write survives"
  /// to the corruption-recovery contract "every acked key is recovered
  /// intact or explicitly reported lost — never silently wrong"
  /// (docs/integrity.md): a key that reads back absent AND falls in a
  /// quarantine-reported lost range is excused from the durability check
  /// (its pre-crash reads are still validated); a key that reads back a
  /// *value* is held to the full check regardless — damage may lose data,
  /// never corrupt it silently.
  Verdict verify(
      const std::function<std::optional<std::uint64_t>(std::uint64_t)>&
          lookup,
      const std::function<bool(std::uint64_t)>& reported_lost = {}) const;

 private:
  std::vector<std::vector<Event>> per_thread_;
  std::atomic<std::uint64_t> clock_{1};
  std::atomic<std::uint64_t> gen_{1};
};

}  // namespace upsl::lincheck
