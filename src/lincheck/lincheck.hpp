// Black-box strict-linearizability analysis for crash histories
// (thesis chapter 6; the Waterloo multi-word-persistent-primitive analyzer
// of Cepeda et al. re-implemented for this reproduction's needs).
//
// The analyzed histories follow the thesis' methodology (§6.2):
//  * every written value is unique per key (the tests use a global sequence
//    number), so a read identifies exactly one write,
//  * upserts are treated as conditional swaps that return the previous
//    value (UPSkipList's Update is internally a CAS loop), with a per-key
//    initial value standing in for "not present",
//  * crashes truncate histories: an operation with an invocation but no
//    response was in flight when the power failed and, under *strict*
//    linearizability, may take effect before the crash or never (§2.2).
//
// With unique values the per-key check is exact and near-linear: completed
// swaps must chain (each op's return value is its predecessor's argument),
// the chain must respect real-time order and epoch order, and every read
// must fall inside the validity window of the value it returned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace upsl::lincheck {

inline constexpr std::uint64_t kInitialValue = 0;  // "key not present"

enum class OpKind : std::uint8_t { kRead = 1, kWrite = 2 };

/// One completed or pending operation, as assembled from invoke/response
/// log records.
struct Operation {
  OpKind kind;
  bool completed;         // false: in flight at a crash
  std::uint32_t tid;
  std::uint64_t key;
  std::uint64_t arg;      // written value (writes)
  std::uint64_t ret;      // read value / previous value (completed ops)
  std::uint64_t epoch;    // failure-free epoch of the invocation
  std::uint64_t inv_ts;   // logical invocation timestamp
  std::uint64_t resp_ts;  // logical response timestamp (completed ops)
};

struct CheckResult {
  bool linearizable = true;
  std::string reason;
  std::size_t keys_checked = 0;
  std::size_t ops_checked = 0;
};

/// Checks a history for strict linearizability. Timestamps need only be
/// monotonic within an epoch; epochs order across crashes.
CheckResult check_strict(const std::vector<Operation>& history);

// ---- persistent history recording (libpmemlog-based, §6.1.1) -------------

/// On-log record layout: one invoke record before the operation executes,
/// one response record after. A crash between the two leaves a pending op.
struct LogRecord {
  std::uint32_t kind_invoke;  // 1 = invoke, 0 = response
  std::uint32_t op;           // OpKind
  std::uint32_t tid;
  std::uint32_t seq;          // per-thread sequence, pairs invoke/response
  std::uint64_t key;
  std::uint64_t value;  // arg on invoke, ret on response
  std::uint64_t ts;
  std::uint64_t epoch;
};

/// Reassembles operations from per-thread log record streams.
std::vector<Operation> assemble(
    const std::vector<std::vector<LogRecord>>& per_thread_records);

}  // namespace upsl::lincheck
