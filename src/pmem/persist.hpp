// Persistence primitives over emulated persistent memory.
//
// Model (DESIGN.md §2, §4): every pool may keep a *shadow* copy representing
// the persistence domain. CPU stores land in the live mapping (the "cache");
// persist() copies the covered 64-byte lines into the shadow (CLWB) and
// issues a release fence (SFENCE). A simulated power failure replaces live
// contents with the shadow, so stores that were never persisted are lost —
// exactly the failure states a real power cut exposes (thesis §2.1.4).
//
// All PMEM-resident words are accessed through std::atomic_ref so that
// concurrent access is well-defined and maps to the plain x86 loads/stores
// and LOCK CMPXCHG the thesis' algorithms assume.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/compiler.hpp"

namespace upsl::pmem {

/// Point-in-time copy of the global persistence counters. Phases that want
/// "persists during *this* section" subtract two snapshots instead of
/// resetting the live (process-global, concurrently bumped) counters — the
/// snapshot-delta idiom composes across nested/concurrent phases where
/// Stats::reset() silently corrupts any other observer.
struct StatsSnapshot {
  /// Histogram bucket upper bounds for group-commit batch sizes (mutations
  /// covered by one fence): <=1, <=2, <=4, <=8, <=16, >16.
  static constexpr std::size_t kGroupCommitBuckets = 6;

  std::uint64_t persist_calls = 0;
  std::uint64_t persisted_lines = 0;
  std::uint64_t fences = 0;
  std::uint64_t coalesced_fences_saved = 0;
  std::uint64_t coalesced_lines_saved = 0;
  std::uint64_t index_hops = 0;
  std::uint64_t pmem_node_visits = 0;
  std::uint64_t dram_node_visits = 0;
  std::uint64_t index_rebuilds = 0;
  std::uint64_t index_rebuild_ns = 0;
  std::uint64_t group_commits = 0;
  std::uint64_t group_commit_mutations = 0;
  std::uint64_t group_commit_hist[kGroupCommitBuckets] = {};
  std::uint64_t checksum_failures = 0;
  std::uint64_t quarantined_nodes = 0;
  std::uint64_t quarantined_blocks = 0;
  std::uint64_t quarantined_sessions = 0;
  std::uint64_t scan_nodes_visited = 0;
  std::uint64_t scan_entries_returned = 0;
  std::uint64_t scan_chunks = 0;
  std::uint64_t simd_scan_filters = 0;

  StatsSnapshot operator-(const StatsSnapshot& t0) const {
    StatsSnapshot d{persist_calls - t0.persist_calls,
                    persisted_lines - t0.persisted_lines,
                    fences - t0.fences,
                    coalesced_fences_saved - t0.coalesced_fences_saved,
                    coalesced_lines_saved - t0.coalesced_lines_saved,
                    index_hops - t0.index_hops,
                    pmem_node_visits - t0.pmem_node_visits,
                    dram_node_visits - t0.dram_node_visits,
                    index_rebuilds - t0.index_rebuilds,
                    index_rebuild_ns - t0.index_rebuild_ns,
                    group_commits - t0.group_commits,
                    group_commit_mutations - t0.group_commit_mutations};
    for (std::size_t i = 0; i < kGroupCommitBuckets; ++i)
      d.group_commit_hist[i] = group_commit_hist[i] - t0.group_commit_hist[i];
    d.checksum_failures = checksum_failures - t0.checksum_failures;
    d.quarantined_nodes = quarantined_nodes - t0.quarantined_nodes;
    d.quarantined_blocks = quarantined_blocks - t0.quarantined_blocks;
    d.quarantined_sessions = quarantined_sessions - t0.quarantined_sessions;
    d.scan_nodes_visited = scan_nodes_visited - t0.scan_nodes_visited;
    d.scan_entries_returned = scan_entries_returned - t0.scan_entries_returned;
    d.scan_chunks = scan_chunks - t0.scan_chunks;
    d.simd_scan_filters = simd_scan_filters - t0.simd_scan_filters;
    return d;
  }

  /// Mean mutations amortized per group-commit fence (0 when unused).
  double fences_per_mutation() const {
    return group_commit_mutations == 0
               ? 0.0
               : static_cast<double>(group_commits) /
                     static_cast<double>(group_commit_mutations);
  }

  /// Flat JSON object, e.g. for the server's STATS command or log lines.
  std::string to_json() const {
    auto field = [](const char* k, std::uint64_t v) {
      return "\"" + std::string(k) + "\": " + std::to_string(v);
    };
    std::string hist = "[";
    for (std::size_t i = 0; i < kGroupCommitBuckets; ++i) {
      if (i > 0) hist += ", ";
      hist += std::to_string(group_commit_hist[i]);
    }
    hist += "]";
    return "{" + field("persist_calls", persist_calls) + ", " +
           field("persisted_lines", persisted_lines) + ", " +
           field("fences", fences) + ", " +
           field("coalesced_fences_saved", coalesced_fences_saved) + ", " +
           field("coalesced_lines_saved", coalesced_lines_saved) + ", " +
           field("index_hops", index_hops) + ", " +
           field("pmem_node_visits", pmem_node_visits) + ", " +
           field("dram_node_visits", dram_node_visits) + ", " +
           field("index_rebuilds", index_rebuilds) + ", " +
           field("index_rebuild_ns", index_rebuild_ns) + ", " +
           field("group_commits", group_commits) + ", " +
           field("group_commit_mutations", group_commit_mutations) + ", " +
           "\"group_commit_batch_hist\": " + hist + ", " +
           field("checksum_failures", checksum_failures) + ", " +
           field("quarantined_nodes", quarantined_nodes) + ", " +
           field("quarantined_blocks", quarantined_blocks) + ", " +
           field("quarantined_sessions", quarantined_sessions) + ", " +
           field("scan_nodes_visited", scan_nodes_visited) + ", " +
           field("scan_entries_returned", scan_entries_returned) + ", " +
           field("scan_chunks", scan_chunks) + ", " +
           field("simd_scan_filters", simd_scan_filters) + "}";
  }
};

/// Global persistence statistics (relaxed counters; cheap and useful for
/// explaining benchmark results in terms of flush counts).
struct Stats {
  std::atomic<std::uint64_t> persist_calls{0};
  std::atomic<std::uint64_t> persisted_lines{0};
  std::atomic<std::uint64_t> fences{0};
  /// Fences elided by FlushSet batching: for a commit covering N add()s the
  /// legacy sequence would have fenced N times, the coalesced one fences
  /// once, saving N-1.
  std::atomic<std::uint64_t> coalesced_fences_saved{0};
  /// Line flushes avoided because an operation touched a line twice (e.g.
  /// adjacent tower levels sharing one 64-byte line).
  std::atomic<std::uint64_t> coalesced_lines_saved{0};
  /// Traversal-path observability (DRAM search layer, docs/dram-index.md):
  /// index_hops counts node visits above level 0 in either index mode;
  /// dram_node_visits counts the subset served from the volatile index, so
  /// `index_hops - dram_node_visits` is the number of PMEM index reads —
  /// zero on the DRAM-index fast path. pmem_node_visits counts every
  /// PMEM-resident node touched (any level).
  std::atomic<std::uint64_t> index_hops{0};
  std::atomic<std::uint64_t> pmem_node_visits{0};
  std::atomic<std::uint64_t> dram_node_visits{0};
  /// DRAM-index reconstructions (one per open in DRAM mode) and their total
  /// wall-clock cost.
  std::atomic<std::uint64_t> index_rebuilds{0};
  std::atomic<std::uint64_t> index_rebuild_ns{0};
  /// Group commit (docs/write-path.md): commits = fences the committer
  /// issued, mutations = operations whose ack rode one of those fences, and
  /// a batch-size histogram so "fences per mutation" is explainable (a fleet
  /// of singleton commits amortizes nothing).
  std::atomic<std::uint64_t> group_commits{0};
  std::atomic<std::uint64_t> group_commit_mutations{0};
  std::atomic<std::uint64_t> group_commit_hist[StatsSnapshot::kGroupCommitBuckets]{};
  /// Integrity layer (docs/integrity.md): CRC32C stamp mismatches observed
  /// on any durable surface, and the damage recovery routed into quarantine
  /// (lost node key-ranges, deliberately leaked allocator blocks, zeroed
  /// client-session slots) instead of trusting.
  std::atomic<std::uint64_t> checksum_failures{0};
  std::atomic<std::uint64_t> quarantined_nodes{0};
  std::atomic<std::uint64_t> quarantined_blocks{0};
  std::atomic<std::uint64_t> quarantined_sessions{0};
  /// Scan path (docs/scan.md): data-level nodes walked by SCAN, entries
  /// emitted to callers, chunks produced by the cursor API, and invocations
  /// of the SIMD range-filter kernel (one per <=1024-key block).
  std::atomic<std::uint64_t> scan_nodes_visited{0};
  std::atomic<std::uint64_t> scan_entries_returned{0};
  std::atomic<std::uint64_t> scan_chunks{0};
  std::atomic<std::uint64_t> simd_scan_filters{0};

  static Stats& instance() {
    static Stats s;
    return s;
  }

  /// Record one group commit covering `mutations` acknowledged operations.
  void note_group_commit(std::uint64_t mutations) {
    group_commits.fetch_add(1, std::memory_order_relaxed);
    group_commit_mutations.fetch_add(mutations, std::memory_order_relaxed);
    std::size_t b = 0;
    for (std::uint64_t bound = 1;
         b + 1 < StatsSnapshot::kGroupCommitBuckets && mutations > bound;
         bound <<= 1)
      ++b;
    group_commit_hist[b].fetch_add(1, std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const {
    StatsSnapshot s{persist_calls.load(std::memory_order_relaxed),
                    persisted_lines.load(std::memory_order_relaxed),
                    fences.load(std::memory_order_relaxed),
                    coalesced_fences_saved.load(std::memory_order_relaxed),
                    coalesced_lines_saved.load(std::memory_order_relaxed),
                    index_hops.load(std::memory_order_relaxed),
                    pmem_node_visits.load(std::memory_order_relaxed),
                    dram_node_visits.load(std::memory_order_relaxed),
                    index_rebuilds.load(std::memory_order_relaxed),
                    index_rebuild_ns.load(std::memory_order_relaxed),
                    group_commits.load(std::memory_order_relaxed),
                    group_commit_mutations.load(std::memory_order_relaxed)};
    for (std::size_t i = 0; i < StatsSnapshot::kGroupCommitBuckets; ++i)
      s.group_commit_hist[i] =
          group_commit_hist[i].load(std::memory_order_relaxed);
    s.checksum_failures = checksum_failures.load(std::memory_order_relaxed);
    s.quarantined_nodes = quarantined_nodes.load(std::memory_order_relaxed);
    s.quarantined_blocks = quarantined_blocks.load(std::memory_order_relaxed);
    s.quarantined_sessions =
        quarantined_sessions.load(std::memory_order_relaxed);
    s.scan_nodes_visited = scan_nodes_visited.load(std::memory_order_relaxed);
    s.scan_entries_returned =
        scan_entries_returned.load(std::memory_order_relaxed);
    s.scan_chunks = scan_chunks.load(std::memory_order_relaxed);
    s.simd_scan_filters = simd_scan_filters.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    persist_calls.store(0, std::memory_order_relaxed);
    persisted_lines.store(0, std::memory_order_relaxed);
    fences.store(0, std::memory_order_relaxed);
    coalesced_fences_saved.store(0, std::memory_order_relaxed);
    coalesced_lines_saved.store(0, std::memory_order_relaxed);
    index_hops.store(0, std::memory_order_relaxed);
    pmem_node_visits.store(0, std::memory_order_relaxed);
    dram_node_visits.store(0, std::memory_order_relaxed);
    index_rebuilds.store(0, std::memory_order_relaxed);
    index_rebuild_ns.store(0, std::memory_order_relaxed);
    group_commits.store(0, std::memory_order_relaxed);
    group_commit_mutations.store(0, std::memory_order_relaxed);
    for (auto& h : group_commit_hist) h.store(0, std::memory_order_relaxed);
    checksum_failures.store(0, std::memory_order_relaxed);
    quarantined_nodes.store(0, std::memory_order_relaxed);
    quarantined_blocks.store(0, std::memory_order_relaxed);
    quarantined_sessions.store(0, std::memory_order_relaxed);
    scan_nodes_visited.store(0, std::memory_order_relaxed);
    scan_entries_returned.store(0, std::memory_order_relaxed);
    scan_chunks.store(0, std::memory_order_relaxed);
    simd_scan_filters.store(0, std::memory_order_relaxed);
  }
};

/// Runtime knobs for the emulation.
struct Config {
  /// Spin-delay added to every persist() to model the PMEM write path
  /// (~94 ns on Optane per Izraelevitz et al.). 0 = off.
  std::uint32_t persist_delay_ns = 0;

  static Config& instance() {
    static Config c;
    return c;
  }
};

/// SFENCE analogue: order prior stores/flushes before subsequent ones.
inline void fence() {
  std::atomic_thread_fence(std::memory_order_release);
  Stats::instance().fences.fetch_add(1, std::memory_order_relaxed);
}

/// CLWB+SFENCE analogue; declared here, defined in pool.cpp (needs the pool
/// registry to locate the owning shadow).
void persist(const void* addr, std::size_t len);

/// Flush without the trailing fence (CLWB only); callers batch several of
/// these and then fence() once — the "link cache" style batching.
void flush(const void* addr, std::size_t len);

// ---- typed PMEM accessors -------------------------------------------------

template <typename T>
concept PmemWord = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

template <PmemWord T>
UPSL_ALWAYS_INLINE T pm_load(const T& word,
                             std::memory_order mo = std::memory_order_acquire) {
  return std::atomic_ref<const T>(word).load(mo);
}

template <PmemWord T>
UPSL_ALWAYS_INLINE void pm_store(T& word, T value,
                                 std::memory_order mo = std::memory_order_release) {
  std::atomic_ref<T>(word).store(value, mo);
}

template <PmemWord T>
UPSL_ALWAYS_INLINE bool pm_cas(T& word, T& expected, T desired) {
  return std::atomic_ref<T>(word).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
}

/// CAS with by-value expected (Function 2 of the thesis): true iff swapped.
template <PmemWord T>
UPSL_ALWAYS_INLINE bool pm_cas_value(T& word, T expected, T desired) {
  return pm_cas(word, expected, desired);
}

template <PmemWord T>
UPSL_ALWAYS_INLINE T pm_fetch_add(T& word, T delta) {
  return std::atomic_ref<T>(word).fetch_add(delta, std::memory_order_acq_rel);
}

/// Store + persist of a single word — the common "write and flush" step.
template <PmemWord T>
inline void pm_store_persist(T& word, T value) {
  pm_store(word, value);
  persist(&word, sizeof(T));
}

}  // namespace upsl::pmem
