// Minimally ordered (MOD-style) write path: deferred ack flushes.
//
// The core mutation path (docs/write-path.md) builds nodes out of place,
// flushes them with unordered CLWBs and publishes with a single ordered
// link + SFENCE. After the publish the only remaining durability work is the
// *ack* rule: the link/slot/value lines an operation dirtied must be durable
// before the operation is acknowledged to a client. Those lines need no
// ordering among themselves, so they can ride one deferred flush + fence per
// *batch* of operations — or, with the server's group commit, one fence per
// commit window across all connections.
//
// AckBatch is that deferral scope. While a thread has an AckBatch open,
// ack_persist() records the covered lines instead of flushing; the scope
// owner later either commit_fenced()s them (one flush set + one fence) or
// take_lines()s them to hand to a GroupCommit ticket. Without an open scope
// ack_persist() is exactly persist(), so the embedded API keeps per-op
// durability-at-return semantics.
//
// UPSL_DISABLE_MOD_WRITES=1 restores the legacy ordered write path: the core
// persists in place at every legacy site and ack_persist() degrades to
// persist() even inside a scope (mirrors UPSL_DISABLE_FLUSH_COALESCING).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <vector>

#include "common/compiler.hpp"
#include "pmem/flush_set.hpp"
#include "pmem/persist.hpp"

namespace upsl::pmem {

namespace detail {
inline std::atomic<int>& mod_writes_flag() {
  static std::atomic<int> flag{-1};  // -1 = env not read yet
  return flag;
}
}  // namespace detail

inline bool mod_writes_enabled() {
  int v = detail::mod_writes_flag().load(std::memory_order_relaxed);
  if (UPSL_UNLIKELY(v < 0)) {
    const char* e = std::getenv("UPSL_DISABLE_MOD_WRITES");
    v = (e != nullptr && e[0] != '\0' && e[0] != '0') ? 0 : 1;
    detail::mod_writes_flag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

/// In-process kill-switch override for A/B benchmarking and tests.
inline void set_mod_writes_for_testing(bool on) {
  detail::mod_writes_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Drop the cached decision so the next use re-reads the environment.
inline void reset_mod_writes_for_testing() {
  detail::mod_writes_flag().store(-1, std::memory_order_relaxed);
}

/// Thread-local deferred-ack scope. Records the unique cache lines covered
/// by every ack_persist() issued on this thread while the scope is open;
/// lines dedupe across *all* operations in the scope (a pipelined batch that
/// updates two values in one node flushes the line once).
class AckBatch {
 public:
  /// Plenty for a server batch (`max_batch` ops x a handful of lines each);
  /// overflow degrades to an immediate unfenced flush, still covered by the
  /// eventual batch/group fence.
  static constexpr std::size_t kMaxLines = 256;

  AckBatch() : prev_(tls()) { tls() = this; }
  AckBatch(const AckBatch&) = delete;
  AckBatch& operator=(const AckBatch&) = delete;

  ~AckBatch() {
    tls() = prev_;
    // Safety net: an abandoned scope still owes its callers durability —
    // unless the lines were handed to a group-commit ticket, or we are
    // unwinding a simulated crash (in which case dropping the un-fenced
    // lines is exactly the power-failure semantics under test).
    if (!taken_ && adds_ > 0 && std::uncaught_exceptions() == 0)
      commit_fenced();
  }

  /// The innermost open scope on this thread, or nullptr.
  static AckBatch* current() { return tls(); }

  /// Record the lines covering [addr, addr+len); no flush, no fence.
  void add(const void* addr, std::size_t len) {
    if (len == 0) return;
    ++adds_;
    const auto p = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t first = p & ~(kCacheLineSize - 1);
    const std::uintptr_t last = (p + len - 1) & ~(kCacheLineSize - 1);
    for (std::uintptr_t line = first; line <= last; line += kCacheLineSize) {
      bool dup = false;
      for (std::size_t i = 0; i < n_; ++i) {
        if (lines_[i] == reinterpret_cast<const void*>(line)) {
          dup = true;
          ++deduped_;
          break;
        }
      }
      if (dup) continue;
      if (UPSL_UNLIKELY(n_ == kMaxLines)) {
        const void* one = reinterpret_cast<const void*>(line);
        flush_lines(&one, 1);
        continue;
      }
      lines_[n_++] = reinterpret_cast<const void*>(line);
    }
  }

  std::size_t adds() const { return adds_; }
  std::size_t lines() const { return n_; }

  /// Hand the recorded lines off (to a GroupCommit ticket); the scope is
  /// done — its destructor will not flush. Dedupe savings are credited here
  /// since the lines skip the FlushSet path.
  std::vector<const void*> take_lines() {
    taken_ = true;
    credit_savings();
    std::vector<const void*> out(lines_, lines_ + n_);
    n_ = adds_ = deduped_ = 0;
    return out;
  }

  /// Flush every recorded unique line and issue the ack fence. Always
  /// fences, even with zero recorded lines: callers use this as the
  /// durability gate for a batch whose ops persisted eagerly (MOD off).
  void commit_fenced() {
    if (n_ > 0) flush_lines(lines_, n_);
    fence();
    credit_savings();
    n_ = adds_ = deduped_ = 0;
    taken_ = true;
  }

 private:
  static AckBatch*& tls() {
    thread_local AckBatch* cur = nullptr;
    return cur;
  }

  void credit_savings() {
    if (adds_ == 0) return;
    Stats& s = Stats::instance();
    s.coalesced_fences_saved.fetch_add(adds_ - 1, std::memory_order_relaxed);
    s.coalesced_lines_saved.fetch_add(deduped_, std::memory_order_relaxed);
  }

  const void* lines_[kMaxLines];
  std::size_t n_ = 0;
  std::size_t adds_ = 0;
  std::size_t deduped_ = 0;
  bool taken_ = false;
  AckBatch* prev_;
};

/// Persist-for-ack: durability required before the operation is acked, with
/// no ordering requirement against other ack lines. Inside an open AckBatch
/// scope (and with MOD writes enabled) the lines are deferred to the batch
/// fence; otherwise this is exactly persist().
inline void ack_persist(const void* addr, std::size_t len) {
  if (mod_writes_enabled()) {
    if (AckBatch* b = AckBatch::current()) {
      b->add(addr, len);
      return;
    }
  }
  persist(addr, len);
}

}  // namespace upsl::pmem
