// Flush-set / fence-coalescing facility (MOD-style fence elision).
//
// A write-path operation that must persist several small words — e.g. the
// next-pointer tower of a freshly populated node, or a link CAS plus the
// split counter it publishes — traditionally issues one persist() (CLWB +
// SFENCE) per word. The fences between those persists order the words
// against *each other*, which the callers here do not need: they only need
// all of them durable before the next dependent store. A FlushSet collects
// the 64-byte lines touched by such an operation, dedupes them (adjacent
// tower levels share lines), flushes each unique line once and issues a
// single fence at commit().
//
// Ordering contract: stores added to a FlushSet may become durable in any
// order relative to each other, but commit() returning guarantees all of
// them are durable before any store the caller issues afterwards (the
// store-after-fence gate). Callers that need durability ordering *between*
// two stores (key before value, level L before level L+1) must NOT batch
// them into one set — see docs/alloc-fastpath.md for the site-by-site
// analysis.
//
// UPSL_DISABLE_FLUSH_COALESCING=1 demotes add() to a plain persist() and
// commit() to a no-op, restoring the exact legacy flush sequence so perf or
// correctness regressions can be bisected at runtime (mirrors
// UPSL_DISABLE_SIMD).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "common/compiler.hpp"
#include "pmem/persist.hpp"

namespace upsl::pmem {

namespace detail {
inline std::atomic<int>& coalescing_flag() {
  static std::atomic<int> flag{-1};  // -1 = env not read yet
  return flag;
}
}  // namespace detail

inline bool flush_coalescing_enabled() {
  int v = detail::coalescing_flag().load(std::memory_order_relaxed);
  if (UPSL_UNLIKELY(v < 0)) {
    const char* e = std::getenv("UPSL_DISABLE_FLUSH_COALESCING");
    v = (e != nullptr && e[0] != '\0' && e[0] != '0') ? 0 : 1;
    detail::coalescing_flag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

/// In-process kill-switch override for A/B benchmarking and tests.
inline void set_flush_coalescing_for_testing(bool on) {
  detail::coalescing_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Drop the cached decision so the next use re-reads the environment.
inline void reset_flush_coalescing_for_testing() {
  detail::coalescing_flag().store(-1, std::memory_order_relaxed);
}

/// Flush `n` distinct cache lines as one persist operation (counted as a
/// single persist_call and a single modelled PMEM-latency hit); no fence.
/// Defined in pool.cpp next to flush().
void flush_lines(const void* const* lines, std::size_t n);

class FlushSet {
 public:
  /// Enough for a max-height next-pointer tower (64 levels x 8 bytes spans
  /// at most 9 lines) with ample slack; overflow degrades gracefully to an
  /// immediate unfenced flush of the excess line.
  static constexpr std::size_t kMaxLines = 24;

  FlushSet() : coalesce_(flush_coalescing_enabled()) {}
  FlushSet(const FlushSet&) = delete;
  FlushSet& operator=(const FlushSet&) = delete;
  ~FlushSet() { commit(); }

  /// Record the lines covering [addr, addr+len) for the commit-time flush.
  /// With coalescing disabled this is exactly persist(addr, len).
  void add(const void* addr, std::size_t len) {
    if (len == 0) return;
    if (UPSL_UNLIKELY(!coalesce_)) {
      persist(addr, len);
      return;
    }
    ++adds_;
    const auto p = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t first = p & ~(kCacheLineSize - 1);
    const std::uintptr_t last = (p + len - 1) & ~(kCacheLineSize - 1);
    for (std::uintptr_t line = first; line <= last; line += kCacheLineSize) {
      bool dup = false;
      for (std::size_t i = 0; i < n_; ++i) {
        if (lines_[i] == reinterpret_cast<const void*>(line)) {
          dup = true;
          ++deduped_;
          break;
        }
      }
      if (dup) continue;
      if (UPSL_UNLIKELY(n_ == kMaxLines)) {
        // Full: flush this line now, unfenced; commit()'s fence still covers
        // it (flushes only complete at the fence).
        const void* one = reinterpret_cast<const void*>(line);
        flush_lines(&one, 1);
        continue;
      }
      lines_[n_++] = reinterpret_cast<const void*>(line);
    }
  }

  /// Flush every recorded unique line and issue one fence. Idempotent; the
  /// destructor calls it as a safety net.
  void commit() {
    if (!coalesce_ || adds_ == 0) {
      n_ = adds_ = deduped_ = 0;
      return;
    }
    if (n_ > 0) flush_lines(lines_, n_);
    fence();
    Stats& s = Stats::instance();
    s.coalesced_fences_saved.fetch_add(adds_ - 1, std::memory_order_relaxed);
    s.coalesced_lines_saved.fetch_add(deduped_, std::memory_order_relaxed);
    n_ = adds_ = deduped_ = 0;
  }

 private:
  const void* lines_[kMaxLines];
  std::size_t n_ = 0;
  std::size_t adds_ = 0;     // add() calls folded into the one fence
  std::size_t deduped_ = 0;  // line flushes avoided by the dedupe
  const bool coalesce_;
};

}  // namespace upsl::pmem
