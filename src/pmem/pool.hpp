// Emulated persistent-memory pools.
//
// A Pool is a file-backed mapping standing in for one PMEM device/pool
// (thesis §2.1.4: pools are files, memory-mapped at non-deterministic base
// addresses). Crash-tracking pools additionally keep a shadow "persistence
// domain" (see persist.hpp). remap() moves the live mapping to a fresh base
// address, exercising position independence of all persistent pointers.
//
// NUMA emulation (DESIGN.md §2): one Pool per virtual NUMA node; striped
// mode is a single Pool. Pools register with the PoolRegistry, which decodes
// RIV pool ids and routes persist() calls to the owning shadow.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/compiler.hpp"
#include "pmem/persist.hpp"

namespace upsl::pmem {

/// What survives a simulated power failure.
enum class CrashMode {
  /// Adversarial: only explicitly persisted lines survive.
  kDiscardUnflushed,
  /// Each unflushed dirty line independently survives with probability
  /// evict_prob, modelling arbitrary cache evictions before the cut.
  kRandomEvict,
};

struct PoolOptions {
  /// Maintain the persistence-domain shadow so simulate_crash() is possible.
  /// Off for pure-throughput benchmarking (persist() is then only a fence).
  bool crash_tracking = false;
};

class Pool {
 public:
  static std::unique_ptr<Pool> create(const std::string& path, std::uint16_t id,
                                      std::size_t size, PoolOptions opts = {});
  static std::unique_ptr<Pool> open(const std::string& path, std::uint16_t id,
                                    PoolOptions opts = {});
  /// Anonymous pool (no backing file) — convenient for tests.
  static std::unique_ptr<Pool> create_anonymous(std::uint16_t id, std::size_t size,
                                                PoolOptions opts = {});

  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  char* base() const { return base_; }
  std::size_t size() const { return size_; }
  std::uint16_t id() const { return id_; }
  bool tracking() const { return shadow_ != nullptr; }

  bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < base_ + size_;
  }

  /// CLWB analogue for [addr, addr+len): copy covered lines to the shadow.
  /// No-op when tracking is off.
  void persist_range(const void* addr, std::size_t len);

  /// Power failure: live contents revert to the persistence domain.
  /// Caller must guarantee no concurrent mutators (all "threads died").
  void simulate_crash(CrashMode mode = CrashMode::kDiscardUnflushed,
                      std::uint64_t seed = 1, double evict_prob = 0.5);

  /// Declare current live contents durable (shadow := live). Used after
  /// preload phases so a later crash only loses in-flight operations.
  void mark_all_persisted();

  /// Unmap and re-map at a different base address — the "restart maps the
  /// pool somewhere else" aspect of recovery. Only valid for file-backed
  /// pools and with no concurrent accessors.
  void remap();

 private:
  Pool() = default;

  char* base_ = nullptr;
  std::size_t size_ = 0;
  std::uint16_t id_ = 0;
  int fd_ = -1;  // -1 for anonymous pools
  std::string path_;
  std::unique_ptr<char[]> shadow_;  // null when tracking is off
};

/// Process-wide table of open pools: pool id -> mapping, plus address-range
/// lookup used by persist(). Registration happens in Pool::create/open.
class PoolRegistry {
 public:
  static constexpr int kMaxPools = 1024;

  static PoolRegistry& instance() {
    static PoolRegistry r;
    return r;
  }

  void register_pool(Pool* pool);
  void unregister_pool(Pool* pool);

  Pool* by_id(std::uint16_t id) const {
    return pools_[id].load(std::memory_order_acquire);
  }

  /// Pool whose mapping contains `p`, or nullptr. Linear scan — pool count
  /// is tiny (<= number of NUMA nodes in any configuration we emulate).
  Pool* find(const void* p) const {
    const int n = high_water_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      Pool* pool = pools_[i].load(std::memory_order_acquire);
      if (pool != nullptr && pool->contains(p)) return pool;
    }
    return nullptr;
  }

  /// Test helper: drop all registrations (pools themselves are owned by
  /// callers).
  void clear();

 private:
  PoolRegistry() = default;
  std::atomic<Pool*> pools_[kMaxPools] = {};
  std::atomic<int> high_water_{0};
};

}  // namespace upsl::pmem
