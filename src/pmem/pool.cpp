#include "pmem/pool.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "common/rng.hpp"
#include "pmem/flush_set.hpp"

namespace upsl::pmem {

namespace {

/// Every syscall failure carries the operation AND the pool path — "mmap
/// pool" alone is useless when a ShardSet opens dozens of files.
[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::system_error(errno, std::generic_category(),
                          what + " '" + path + "'");
}

char* map_fd(int fd, std::size_t size, const std::string& path) {
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) throw_errno("mmap pool", path);
  return static_cast<char*>(p);
}

char* map_anonymous(std::size_t size) {
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw_errno("mmap anonymous pool", "<anon>");
  return static_cast<char*>(p);
}

}  // namespace

std::unique_ptr<Pool> Pool::create(const std::string& path, std::uint16_t id,
                                   std::size_t size, PoolOptions opts) {
  if (size == 0 || size % kCacheLineSize != 0)
    throw std::invalid_argument("pool size must be a positive multiple of 64");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("create pool file", path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    throw_errno("ftruncate pool file", path);
  }
  auto pool = std::unique_ptr<Pool>(new Pool);
  pool->fd_ = fd;
  pool->path_ = path;
  pool->size_ = size;
  pool->id_ = id;
  pool->base_ = map_fd(fd, size, path);
  if (opts.crash_tracking) {
    pool->shadow_ = std::make_unique<char[]>(size);
    std::memset(pool->shadow_.get(), 0, size);
  }
  PoolRegistry::instance().register_pool(pool.get());
  return pool;
}

std::unique_ptr<Pool> Pool::open(const std::string& path, std::uint16_t id,
                                 PoolOptions opts) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) throw_errno("open pool file", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat pool file", path);
  }
  if (st.st_size == 0 ||
      static_cast<std::size_t>(st.st_size) % kCacheLineSize != 0) {
    ::close(fd);
    throw std::runtime_error("pool file '" + path +
                             "' has invalid size " +
                             std::to_string(st.st_size) +
                             " (truncated or not a pool)");
  }
  auto pool = std::unique_ptr<Pool>(new Pool);
  pool->fd_ = fd;
  pool->path_ = path;
  pool->size_ = static_cast<std::size_t>(st.st_size);
  pool->id_ = id;
  pool->base_ = map_fd(fd, pool->size_, path);
  if (opts.crash_tracking) {
    // Everything in the file is durable at open time.
    pool->shadow_ = std::make_unique<char[]>(pool->size_);
    std::memcpy(pool->shadow_.get(), pool->base_, pool->size_);
  }
  PoolRegistry::instance().register_pool(pool.get());
  return pool;
}

std::unique_ptr<Pool> Pool::create_anonymous(std::uint16_t id, std::size_t size,
                                             PoolOptions opts) {
  if (size == 0 || size % kCacheLineSize != 0)
    throw std::invalid_argument("pool size must be a positive multiple of 64");
  auto pool = std::unique_ptr<Pool>(new Pool);
  pool->size_ = size;
  pool->id_ = id;
  pool->base_ = map_anonymous(size);
  if (opts.crash_tracking) {
    pool->shadow_ = std::make_unique<char[]>(size);
    std::memset(pool->shadow_.get(), 0, size);
  }
  PoolRegistry::instance().register_pool(pool.get());
  return pool;
}

Pool::~Pool() {
  PoolRegistry::instance().unregister_pool(this);
  if (base_ != nullptr) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void Pool::persist_range(const void* addr, std::size_t len) {
  if (shadow_ == nullptr || len == 0) return;
  const auto off = static_cast<std::size_t>(static_cast<const char*>(addr) - base_);
  const std::size_t first = align_down(off, kCacheLineSize);
  const std::size_t last = align_up(off + len, kCacheLineSize);
  // Copy line by line with 64-bit atomic loads so racing writers (other
  // "CPUs" with the line in cache) stay well-defined; the shadow itself is
  // only touched by persist_range and crash handling.
  for (std::size_t line = first; line < last; line += kCacheLineSize) {
    const auto* src = reinterpret_cast<const std::uint64_t*>(base_ + line);
    auto* dst = reinterpret_cast<std::uint64_t*>(shadow_.get() + line);
    for (std::size_t w = 0; w < kCacheLineSize / sizeof(std::uint64_t); ++w)
      dst[w] = std::atomic_ref<const std::uint64_t>(src[w]).load(
          std::memory_order_acquire);
  }
  Stats::instance().persisted_lines.fetch_add((last - first) / kCacheLineSize,
                                              std::memory_order_relaxed);
}

void Pool::simulate_crash(CrashMode mode, std::uint64_t seed, double evict_prob) {
  if (shadow_ == nullptr)
    throw std::logic_error("simulate_crash requires crash_tracking");
  if (mode == CrashMode::kDiscardUnflushed) {
    std::memcpy(base_, shadow_.get(), size_);
    return;
  }
  Xoshiro256 rng(seed);
  for (std::size_t line = 0; line < size_; line += kCacheLineSize) {
    const bool evicted_before_cut = rng.next_double() < evict_prob;
    if (evicted_before_cut) {
      // The line made it to the persistence domain on its own; keep live
      // contents and fold them into the shadow (they are now durable).
      std::memcpy(shadow_.get() + line, base_ + line, kCacheLineSize);
    } else {
      std::memcpy(base_ + line, shadow_.get() + line, kCacheLineSize);
    }
  }
}

void Pool::mark_all_persisted() {
  if (shadow_ != nullptr) std::memcpy(shadow_.get(), base_, size_);
}

void Pool::remap() {
  if (fd_ < 0) throw std::logic_error("remap requires a file-backed pool");
  ::munmap(base_, size_);
  base_ = map_fd(fd_, size_, path_);
}

void PoolRegistry::register_pool(Pool* pool) {
  pools_[pool->id()].store(pool, std::memory_order_release);
  int hw = high_water_.load(std::memory_order_relaxed);
  while (hw <= pool->id() &&
         !high_water_.compare_exchange_weak(hw, pool->id() + 1,
                                            std::memory_order_acq_rel)) {
  }
}

void PoolRegistry::unregister_pool(Pool* pool) {
  Pool* expected = pool;
  std::atomic<Pool*>& slot = pools_[pool->id()];
  slot.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

void PoolRegistry::clear() {
  for (auto& slot : pools_) slot.store(nullptr, std::memory_order_relaxed);
  high_water_.store(0, std::memory_order_release);
}

namespace {

void apply_persist_delay() {
  const std::uint32_t delay = Config::instance().persist_delay_ns;
  if (UPSL_UNLIKELY(delay != 0)) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(delay);
    while (std::chrono::steady_clock::now() < until) {
    }
  }
}

}  // namespace

void persist(const void* addr, std::size_t len) {
  flush(addr, len);
  // Counted via fence() so Stats::fences reflects every SFENCE the write
  // path issues, persist()-internal ones included.
  fence();
}

void flush(const void* addr, std::size_t len) {
  Stats::instance().persist_calls.fetch_add(1, std::memory_order_relaxed);
  Pool* pool = PoolRegistry::instance().find(addr);
  if (pool != nullptr) pool->persist_range(addr, len);
  apply_persist_delay();
}

void flush_lines(const void* const* lines, std::size_t n) {
  if (n == 0) return;
  Stats::instance().persist_calls.fetch_add(1, std::memory_order_relaxed);
  PoolRegistry& reg = PoolRegistry::instance();
  for (std::size_t i = 0; i < n; ++i) {
    Pool* pool = reg.find(lines[i]);
    if (pool != nullptr) pool->persist_range(lines[i], kCacheLineSize);
  }
  // One modelled PMEM-latency hit for the batch: the CLWBs drain in
  // parallel, which is exactly the effect the batching is after.
  apply_persist_delay();
}

}  // namespace upsl::pmem
