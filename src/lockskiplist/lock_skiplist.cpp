#include "lockskiplist/lock_skiplist.hpp"

#include <algorithm>
#include <vector>

namespace upsl::lsl {

using pmem::persist;
using pmem::pm_load;
using pmem::pm_store;

LockSkipList::LockSkipList(pmem::Pool& pool, bool creating) {
  if (creating) pmdk::ObjStore::format(pool);
  store_ = std::make_unique<pmdk::ObjStore>(pool);
  if (creating) {
    // Head and tail sentinels, fully linked from the start.
    const pmdk::Oid tail_oid = store_->alloc(sizeof(Node));
    Node* tail = node(tail_oid);
    tail->key = kTailKey;
    tail->height = kMaxHeight;
    tail->flags = Node::kFullyLinked;
    persist(tail, sizeof(Node));

    const pmdk::Oid head_oid = store_->alloc(sizeof(Node));
    Node* head = node(head_oid);
    head->key = 0;
    head->height = kMaxHeight;
    head->flags = Node::kFullyLinked;
    for (std::uint32_t l = 0; l < kMaxHeight; ++l) head->next[l] = tail_oid;
    persist(head, sizeof(Node));
    store_->set_root(head_oid);
  }
  head_ = store_->root();
  if (head_.is_null()) throw std::runtime_error("no skip list in pool");
}

std::unique_ptr<LockSkipList> LockSkipList::create(pmem::Pool& pool) {
  return std::unique_ptr<LockSkipList>(new LockSkipList(pool, true));
}

std::unique_ptr<LockSkipList> LockSkipList::open(pmem::Pool& pool) {
  return std::unique_ptr<LockSkipList>(new LockSkipList(pool, false));
}

std::uint32_t LockSkipList::random_height() {
  static thread_local Xoshiro256 rng(
      0x2545f4914f6cdd1dULL ^
      (static_cast<std::uint64_t>(ThreadRegistry::id()) << 20));
  return static_cast<std::uint32_t>(
      rng.geometric_height(static_cast<int>(kMaxHeight)));
}

int LockSkipList::find(std::uint64_t key, pmdk::Oid* preds, pmdk::Oid* succs) {
  int found = -1;
  pmdk::Oid pred = head_;
  for (int level = static_cast<int>(kMaxHeight) - 1; level >= 0; --level) {
    pmdk::Oid cur = node(pred)->next[level];
    while (true) {
      Node* c = node(cur);
      const std::uint64_t k = pm_load(c->key);
      if (k < key) {
        pred = cur;
        cur = c->next[level];
      } else {
        if (k == key && found == -1) found = level;
        break;
      }
    }
    preds[level] = pred;
    succs[level] = cur;
  }
  return found;
}

std::optional<std::uint64_t> LockSkipList::search(std::uint64_t key) {
  pmdk::Oid preds[kMaxHeight];
  pmdk::Oid succs[kMaxHeight];
  const int lvl = find(key, preds, succs);
  if (lvl < 0) return std::nullopt;
  Node* n = node(succs[lvl]);
  if (!n->fully_linked() || n->marked()) return std::nullopt;
  const std::uint64_t v = pm_load(n->value);
  // Reader-forced persistence, as in UPSkipList's reads.
  persist(&n->value, sizeof(n->value));
  return v;
}

std::optional<std::uint64_t> LockSkipList::insert(std::uint64_t key,
                                                  std::uint64_t value) {
  while (true) {
    pmdk::Oid preds[kMaxHeight];
    pmdk::Oid succs[kMaxHeight];
    const int lfound = find(key, preds, succs);
    if (lfound >= 0) {
      // Update path: lock the node, re-validate, transactional write.
      const pmdk::Oid victim = succs[lfound];
      Node* n = node(victim);
      if (!n->fully_linked()) continue;  // someone mid-insert; retry
      std::scoped_lock guard(shard(victim));
      if (n->marked()) continue;
      if (pm_load(n->key) != key) continue;
      const std::uint64_t old = pm_load(n->value);
      pmdk::ObjStore::Tx tx(*store_);
      store_->tx_add(&n->value, sizeof(n->value));
      pm_store(n->value, value);
      tx.commit();
      return old;
    }

    const std::uint32_t height = random_height();
    // Collect and sort the lock shard set (deadlock-free under sharding).
    std::vector<std::size_t> shard_idx;
    for (std::uint32_t l = 0; l < height; ++l)
      shard_idx.push_back((preds[l].off >> 6) % kShards);
    std::sort(shard_idx.begin(), shard_idx.end());
    shard_idx.erase(std::unique(shard_idx.begin(), shard_idx.end()),
                    shard_idx.end());
    std::vector<std::unique_lock<std::mutex>> guards;
    guards.reserve(shard_idx.size());
    for (std::size_t idx : shard_idx)
      guards.emplace_back(shards_[idx]);

    // Validate: the optimistic neighbourhood must still hold.
    bool valid = true;
    for (std::uint32_t l = 0; l < height && valid; ++l) {
      Node* p = node(preds[l]);
      Node* s = node(succs[l]);
      valid = !p->marked() && !s->marked() && p->next[l] == succs[l];
    }
    if (!valid) continue;  // guards release via RAII

    // One transaction covers the allocation and every link write: a crash
    // rolls the whole insert back (the PMDK conversion recipe).
    pmdk::ObjStore::Tx tx(*store_);
    const pmdk::Oid node_oid = store_->alloc(sizeof(Node));
    Node* n = node(node_oid);
    n->key = key;
    n->value = value;
    n->height = height;
    for (std::uint32_t l = 0; l < height; ++l) n->next[l] = succs[l];
    persist(n, sizeof(Node));
    for (std::uint32_t l = 0; l < height; ++l) {
      Node* p = node(preds[l]);
      store_->tx_add(&p->next[l], sizeof(pmdk::Oid));
      p->next[l] = node_oid;
    }
    // fully_linked last: readers treat the node as present only after all
    // levels are in place.
    pm_store(n->flags, Node::kFullyLinked);
    persist(&n->flags, sizeof(n->flags));
    tx.commit();
    return std::nullopt;
  }
}

std::optional<std::uint64_t> LockSkipList::remove(std::uint64_t key) {
  while (true) {
    pmdk::Oid preds[kMaxHeight];
    pmdk::Oid succs[kMaxHeight];
    const int lfound = find(key, preds, succs);
    if (lfound < 0) return std::nullopt;
    const pmdk::Oid victim = succs[lfound];
    Node* v = node(victim);
    if (!v->fully_linked()) continue;
    if (v->marked()) return std::nullopt;
    const std::uint32_t height = v->height;

    std::vector<std::size_t> shard_idx{(victim.off >> 6) % kShards};
    for (std::uint32_t l = 0; l < height; ++l)
      shard_idx.push_back((preds[l].off >> 6) % kShards);
    std::sort(shard_idx.begin(), shard_idx.end());
    shard_idx.erase(std::unique(shard_idx.begin(), shard_idx.end()),
                    shard_idx.end());
    std::vector<std::unique_lock<std::mutex>> guards;
    for (std::size_t idx : shard_idx) guards.emplace_back(shards_[idx]);

    if (v->marked()) return std::nullopt;
    bool valid = true;
    for (std::uint32_t l = 0; l < height && valid; ++l) {
      Node* p = node(preds[l]);
      valid = !p->marked() && p->next[l] == victim;
    }
    if (!valid) continue;

    const std::uint64_t old = pm_load(v->value);
    pmdk::ObjStore::Tx tx(*store_);
    store_->tx_add(&v->flags, sizeof(v->flags));
    pm_store(v->flags, pm_load(v->flags) | Node::kMarked);  // linearization
    for (std::uint32_t l = 0; l < height; ++l) {
      Node* p = node(preds[l]);
      store_->tx_add(&p->next[l], sizeof(pmdk::Oid));
      p->next[l] = v->next[l];
    }
    tx.commit();
    // Physical memory is reclaimed lazily; the node stays allocated until
    // freed here (safe: removed nodes are unreachable for new finds, and
    // concurrent readers hold no references past their traversal in this
    // blocking design once preds are unlinked under locks).
    store_->free_obj(victim, sizeof(Node));
    return old;
  }
}

std::size_t LockSkipList::count_keys() {
  std::size_t n = 0;
  pmdk::Oid cur = node(head_)->next[0];
  while (pm_load(node(cur)->key) != kTailKey) {
    if (!node(cur)->marked()) ++n;
    cur = node(cur)->next[0];
  }
  return n;
}

void LockSkipList::check_invariants() {
  std::uint64_t prev = 0;
  pmdk::Oid cur = node(head_)->next[0];
  while (pm_load(node(cur)->key) != kTailKey) {
    const std::uint64_t k = pm_load(node(cur)->key);
    if (k <= prev) throw std::logic_error("lock skiplist not sorted");
    prev = k;
    cur = node(cur)->next[0];
  }
  for (std::uint32_t l = 1; l < kMaxHeight; ++l) {
    pmdk::Oid upper = node(head_)->next[l];
    while (pm_load(node(upper)->key) != kTailKey) {
      if (node(upper)->height <= l)
        throw std::logic_error("node above its height");
      upper = node(upper)->next[l];
    }
  }
}

}  // namespace upsl::lsl
