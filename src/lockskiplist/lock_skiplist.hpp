// Lock-based transactional skip list baseline (thesis §5.1.2):
// "a libpmemobj lock-based skip list converted from Herlihy's lazy skip list
// using PMDK's recoverable transactions, on the striped device. ... It does
// not store multiple keys per node."
//
// Every structural mutation is wrapped in an ObjStore undo-log transaction,
// so recovery after a crash is a rollback of at most one in-flight
// transaction per thread (the PMDK programming model). Locks are volatile:
// a sharded DRAM lock table keyed by node offset — they simply vanish at a
// crash, exactly like libpmemobj's PMEMmutex contents are reinitialized.
// To stay deadlock-free under lock sharding, each operation collects the
// shard set it needs, sorts it, and acquires in index order before
// validating optimistically-gathered predecessors (documented deviation from
// per-node hand-built locking; see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>

#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "pmdk/objstore.hpp"

namespace upsl::lsl {

inline constexpr std::uint32_t kMaxHeight = 32;
inline constexpr std::uint64_t kTailKey = ~0ULL;

/// Single-key node with two-word fat next pointers (the layout whose cache
/// cost Figure 5.3 measures).
struct Node {
  std::uint64_t key;
  std::uint64_t value;
  std::uint32_t height;
  std::uint32_t flags;  // bit 0 = fully_linked, bit 1 = marked
  pmdk::Oid next[kMaxHeight];

  static constexpr std::uint32_t kFullyLinked = 1;
  static constexpr std::uint32_t kMarked = 2;

  bool fully_linked() const {
    return (pmem::pm_load(flags) & kFullyLinked) != 0;
  }
  bool marked() const { return (pmem::pm_load(flags) & kMarked) != 0; }
};

class LockSkipList {
 public:
  static std::unique_ptr<LockSkipList> create(pmem::Pool& pool);
  static std::unique_ptr<LockSkipList> open(pmem::Pool& pool);

  /// Upsert; returns the previous value if the key existed.
  std::optional<std::uint64_t> insert(std::uint64_t key, std::uint64_t value);
  std::optional<std::uint64_t> search(std::uint64_t key);
  std::optional<std::uint64_t> remove(std::uint64_t key);
  bool contains(std::uint64_t key) { return search(key).has_value(); }

  std::size_t count_keys();
  void check_invariants();

  pmdk::ObjStore& store() { return *store_; }

 private:
  explicit LockSkipList(pmem::Pool& pool, bool creating);

  Node* node(pmdk::Oid oid) const { return store_->as<Node>(oid); }
  std::uint32_t random_height();

  /// Lazy-skip-list find: fills preds/succs, returns level of exact match
  /// or -1.
  int find(std::uint64_t key, pmdk::Oid* preds, pmdk::Oid* succs);

  /// Volatile sharded lock table (locks vanish at crash).
  static constexpr std::size_t kShards = 1024;
  std::mutex& shard(pmdk::Oid oid) {
    return shards_[(oid.off >> 6) % kShards];
  }

  std::unique_ptr<pmdk::ObjStore> store_;
  pmdk::Oid head_;
  std::array<std::mutex, kShards> shards_;
};

}  // namespace upsl::lsl
