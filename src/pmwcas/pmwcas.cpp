#include "pmwcas/pmwcas.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/crashpoint.hpp"

namespace upsl::pmwcas {

using pmem::persist;
using pmem::pm_cas_value;
using pmem::pm_load;
using pmem::pm_store;

namespace {
std::atomic<std::uint64_t> g_helps{0};
thread_local std::uint32_t tls_ring_pos = 0;
}  // namespace

std::uint64_t DescriptorPool::help_count() {
  return g_helps.load(std::memory_order_relaxed);
}

void DescriptorPool::format(pmem::Pool& pool, std::uint64_t off,
                            std::uint32_t count) {
  if (off % kCacheLineSize != 0) throw std::invalid_argument("unaligned");
  auto* d = reinterpret_cast<Descriptor*>(pool.base() + off);
  std::memset(d, 0, sizeof(Descriptor) * count);
  for (std::uint32_t i = 0; i < count; ++i) d[i].status = kFree;
  persist(d, sizeof(Descriptor) * count);
}

DescriptorPool::DescriptorPool(pmem::Pool& pool, std::uint64_t off,
                               std::uint32_t count)
    : pool_(pool),
      descs_(reinterpret_cast<Descriptor*>(pool.base() + off)),
      count_(count) {}

bool DescriptorPool::mwcas(std::initializer_list<Entry> entries) {
  return mwcas(entries.begin(), static_cast<std::uint32_t>(entries.size()));
}

bool DescriptorPool::mwcas(const Entry* entries, std::uint32_t n) {
  if (n == 0 || n > kMaxWords) throw std::invalid_argument("bad mwcas arity");

  // Per-thread ring slice of the descriptor pool.
  const std::uint32_t per_thread = count_ / kMaxThreads;
  if (per_thread == 0) throw std::logic_error("descriptor pool too small");
  const std::uint32_t base =
      static_cast<std::uint32_t>(ThreadRegistry::id()) * per_thread;
  const std::uint32_t index = base + (tls_ring_pos++ % per_thread);

  Descriptor* d = desc(index);
  d->count = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    d->words[i].off = static_cast<std::uint64_t>(
        reinterpret_cast<char*>(entries[i].addr) - pool_.base());
    d->words[i].old_val = entries[i].old_val;
    d->words[i].new_val = entries[i].new_val;
  }
  // Install in address order so concurrent PMwCASes over overlapping word
  // sets cannot deadlock each other's helping.
  std::sort(d->words, d->words + n,
            [](const WordDescriptor& a, const WordDescriptor& b) {
              return a.off < b.off;
            });
  pm_store(d->status, static_cast<std::uint64_t>(kUndecided));
  persist(d, sizeof(Descriptor));

  return complete(index, 0);
}

bool DescriptorPool::complete(std::uint32_t index, int depth) {
  Descriptor* d = desc(index);
  const std::uint64_t ref = ref_of(index);
  const std::uint32_t n = d->count;

  // Phase 1: install the descriptor pointer into every target word.
  bool install_failed = false;
  for (std::uint32_t i = 0; i < n && !install_failed; ++i) {
    std::uint64_t* addr = word_ptr(d->words[i].off);
    while (true) {
      if (pm_load(d->status) != kUndecided) goto decided;  // helped already
      const std::uint64_t v = pm_load(*addr);
      if (v == ref) break;  // installed (possibly by a helper)
      if ((v & kDescBit) != 0) {
        if (depth < 8) {
          help(v, depth + 1);
          continue;
        }
        install_failed = true;  // give up on deep chains; fail this op
        break;
      }
      if (v != d->words[i].old_val) {
        install_failed = true;
        break;
      }
      if (pm_cas_value(*addr, v, ref)) {
        UPSL_CRASH_POINT("pmwcas.installed");
        persist(addr, sizeof(std::uint64_t));
        break;
      }
    }
  }

  {
    const std::uint64_t decided_status =
        install_failed ? kFailed : kSucceeded;
    std::uint64_t expected = kUndecided;
    pmem::pm_cas(d->status, expected, decided_status);
    UPSL_CRASH_POINT("pmwcas.decided");
    persist(&d->status, sizeof(d->status));
  }

decided:
  // Phase 2: replace descriptor pointers with final values.
  const bool success = pm_load(d->status) == kSucceeded;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t* addr = word_ptr(d->words[i].off);
    const std::uint64_t final_val =
        success ? d->words[i].new_val : d->words[i].old_val;
    if (pm_cas_value(*addr, ref, final_val)) {
      UPSL_CRASH_POINT("pmwcas.propagated");
      persist(addr, sizeof(std::uint64_t));
    }
  }
  return success;
}

void DescriptorPool::help(std::uint64_t ref, int depth) {
  g_helps.fetch_add(1, std::memory_order_relaxed);
  const auto index = static_cast<std::uint32_t>(ref & ~kDescBit);
  if (index >= count_) return;  // stale pointer from a recycled descriptor
  complete(index, depth);
}

std::uint64_t DescriptorPool::read(std::uint64_t* addr) {
  while (true) {
    const std::uint64_t v = pm_load(*addr);
    if (UPSL_LIKELY((v & kDescBit) == 0)) return v;
    help(v, 0);
  }
}

void DescriptorPool::recover() {
  for (std::uint32_t i = 0; i < count_; ++i) {
    Descriptor* d = desc(i);
    const std::uint64_t status = pm_load(d->status);
    if (status == kFree) {
      persist(&d->status, sizeof(d->status));
      continue;
    }
    const std::uint64_t ref = ref_of(i);
    const bool forward = status == kSucceeded;
    // Undecided operations roll back; Succeeded ones roll forward.
    for (std::uint32_t w = 0; w < d->count && w < kMaxWords; ++w) {
      std::uint64_t* addr = word_ptr(d->words[w].off);
      const std::uint64_t final_val =
          forward ? d->words[w].new_val : d->words[w].old_val;
      if (pm_cas_value(*addr, ref, final_val))
        persist(addr, sizeof(std::uint64_t));
    }
    pm_store(d->status, static_cast<std::uint64_t>(kFree));
    persist(&d->status, sizeof(d->status));
  }
}

}  // namespace upsl::pmwcas
