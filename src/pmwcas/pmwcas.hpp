// Persistent multi-word CAS (Wang et al., thesis §3.1) — the substrate
// BzTree builds on.
//
// A PMwCAS atomically (and durably) changes up to kMaxWords 64-bit words if
// they all hold expected values. Descriptor pointers are installed into the
// target words (flagged by bit 62); any reader or writer that encounters a
// descriptor pointer helps the operation to completion, making the whole
// thing lock-free. Two behaviours measured in the thesis evaluation live
// here:
//
//  * helping traffic on the descriptor pool is the contention bottleneck
//    behind BzTree's fall-off in update-heavy workloads (Fig 5.1, 5.5),
//  * recovery scans the *entire* descriptor pool, rolling descriptors
//    forward or back, so recovery time is proportional to pool size —
//    the 500K-descriptor vs 100K-descriptor rows of Table 5.4.
//
// Descriptors live in persistent memory and are recycled per-thread in a
// large ring (the original uses epoch-based reclamation; with the
// thesis-scale pool of 500K descriptors a ring gives each thread thousands
// of operations of grace, and the thesis itself reports the original's GC
// misbehaving at smaller pool sizes, §5.2.5).
#pragma once

#include <cstdint>
#include <initializer_list>

#include "common/thread_registry.hpp"
#include "pmem/pool.hpp"

namespace upsl::pmwcas {

inline constexpr std::uint64_t kDescBit = 1ULL << 62;
inline constexpr std::uint32_t kMaxWords = 6;

enum Status : std::uint64_t {
  kUndecided = 0,
  kSucceeded = 1,
  kFailed = 2,
  kFree = 3,
};

struct WordDescriptor {
  std::uint64_t off;  // pool offset of the target word
  std::uint64_t old_val;
  std::uint64_t new_val;
};

struct alignas(kCacheLineSize) Descriptor {
  std::uint64_t status;
  std::uint32_t count;
  std::uint32_t pad;
  WordDescriptor words[kMaxWords];
};

/// One entry of a PMwCAS specification (pointer-based, converted to offsets
/// internally).
struct Entry {
  std::uint64_t* addr;
  std::uint64_t old_val;
  std::uint64_t new_val;
};

class DescriptorPool {
 public:
  /// Formats `count` descriptors starting at pool offset `off`.
  static void format(pmem::Pool& pool, std::uint64_t off, std::uint32_t count);

  DescriptorPool(pmem::Pool& pool, std::uint64_t off, std::uint32_t count);

  /// Executes a PMwCAS. Entries need not be sorted. Returns true iff all
  /// words matched and were swapped (durably).
  bool mwcas(std::initializer_list<Entry> entries);
  bool mwcas(const Entry* entries, std::uint32_t n);

  /// PMwCAS-aware read: helps and strips descriptor pointers.
  std::uint64_t read(std::uint64_t* addr);

  /// Post-crash recovery: walk every descriptor, roll Undecided back and
  /// Succeeded forward. O(pool size) — the dominant term in BzTree's
  /// recovery time (Table 5.4).
  void recover();

  std::uint32_t capacity() const { return count_; }

  /// Cumulative number of help events (diagnostic; explains the contention
  /// collapse in Fig 5.1).
  static std::uint64_t help_count();

 private:
  Descriptor* desc(std::uint32_t i) const { return descs_ + i; }
  std::uint64_t* word_ptr(std::uint64_t off) const {
    return reinterpret_cast<std::uint64_t*>(pool_.base() + off);
  }
  std::uint64_t ref_of(std::uint32_t i) const {
    return kDescBit | i;
  }
  bool complete(std::uint32_t index, int depth);
  void help(std::uint64_t ref, int depth);

  pmem::Pool& pool_;
  Descriptor* descs_;
  std::uint32_t count_;
};

}  // namespace upsl::pmwcas
