#include "detect/session_table.hpp"

#include <cstring>
#include <limits>
#include <memory>

#include "common/checksum.hpp"
#include "common/crashpoint.hpp"
#include "pmem/ack_batch.hpp"
#include "pmem/persist.hpp"

namespace upsl::detect {

namespace {
constexpr std::uint64_t kTableMagic = 0x5550534c44455443ull;  // "UPSLDETC"

// Integrity stamps (docs/integrity.md). The slot-header stamp lives in
// reserved[0] and covers (client_id, session_epoch, last_seq) — all in the
// header's single 64B line, so every restamp commits atomically with the
// field it covers. The ring-entry stamp lives in the entry's reserved word
// and covers (seq, result, has_previous); a 32B entry never straddles a
// line, so it too is atomic with its payload.
std::uint32_t slot_stamp(std::uint64_t client_id, std::uint64_t epoch,
                         std::uint64_t last_seq) {
  const std::uint64_t w[3] = {client_id, epoch, last_seq};
  return checksum_stamp(w, sizeof(w));
}

std::uint32_t entry_stamp(std::uint64_t seq, std::uint64_t result,
                          std::uint64_t has_previous) {
  const std::uint64_t w[3] = {seq, result, has_previous};
  return checksum_stamp(w, sizeof(w));
}
}  // namespace

struct alignas(64) SessionTable::TableHeader {
  std::uint64_t magic;
  std::uint64_t slot_count;
  std::uint64_t ring_size;
  std::uint64_t reserved[5];
  static_assert(kHeaderBytes == 64);
};

struct alignas(64) SessionTable::SlotHeader {
  std::uint64_t client_id;      // 0 = free slot
  std::uint64_t session_epoch;  // monotonic claim stamp (eviction order)
  std::uint64_t last_seq;       // highest applied seq for this session
  std::uint64_t reserved[5];
};

struct alignas(32) SessionTable::RingEntry {
  std::uint64_t seq;  // published last: seq == entry's identity, 0 = empty
  std::uint64_t result;
  std::uint64_t has_previous;
  std::uint64_t reserved;
};

SessionTable::SlotHeader* SessionTable::slot_header(std::uint32_t slot) const {
  return reinterpret_cast<SlotHeader*>(base_ + kHeaderBytes +
                                       std::size_t{slot} * kSlotBytes);
}

SessionTable::RingEntry* SessionTable::ring_entry(std::uint32_t slot,
                                                  std::uint64_t seq) const {
  auto* ring = reinterpret_cast<RingEntry*>(
      base_ + kHeaderBytes + std::size_t{slot} * kSlotBytes +
      sizeof(SlotHeader));
  return &ring[seq % kRingSize];
}

SessionTable SessionTable::format(char* base, std::size_t bytes,
                                  std::uint32_t max_slots) {
  static_assert(sizeof(TableHeader) == kHeaderBytes);
  static_assert(sizeof(SlotHeader) == 64);
  static_assert(sizeof(RingEntry) == 32);
  static_assert(kSlotBytes == sizeof(SlotHeader) + kRingSize * sizeof(RingEntry));
  if (max_slots == 0) max_slots = kDefaultMaxSlots;
  if (base == nullptr || bytes < kHeaderBytes + kSlotBytes) return {};
  std::uint32_t fit =
      static_cast<std::uint32_t>((bytes - kHeaderBytes) / kSlotBytes);
  std::uint32_t slots = fit < max_slots ? fit : max_slots;

  std::size_t total = kHeaderBytes + std::size_t{slots} * kSlotBytes;
  std::memset(base, 0, total);
  auto* hdr = reinterpret_cast<TableHeader*>(base);
  hdr->slot_count = slots;
  hdr->ring_size = kRingSize;
  pmem::persist(base, total);
  // Magic last: a crash mid-format leaves a region that recover() rejects.
  pmem::pm_store(hdr->magic, kTableMagic);
  pmem::persist(&hdr->magic, sizeof(hdr->magic));

  SessionTable t;
  t.base_ = base;
  t.slot_count_ = slots;
  t.next_stamp_ = std::make_shared<std::uint64_t>(1);
  t.claim_mu_ = std::make_shared<std::mutex>();
  return t;
}

SessionTable SessionTable::recover(char* base, std::size_t bytes) {
  if (base == nullptr || bytes < kHeaderBytes + kSlotBytes) return {};
  auto* hdr = reinterpret_cast<TableHeader*>(base);
  if (pmem::pm_load(hdr->magic) != kTableMagic) return {};  // legacy store
  std::uint64_t slots = hdr->slot_count;
  if (hdr->ring_size != kRingSize || slots == 0 ||
      kHeaderBytes + slots * kSlotBytes > bytes) {
    return {};
  }

  SessionTable t;
  t.base_ = base;
  t.slot_count_ = static_cast<std::uint32_t>(slots);
  t.claim_mu_ = std::make_shared<std::mutex>();

  // Recovery scan: live-session census plus the maximum durable claim stamp,
  // which seeds the in-DRAM claim counter (no durable counter to maintain on
  // the claim path). O(slots) over a few KiB — cheap enough to run alongside
  // the DRAM-index rebuild at open.
  std::uint64_t max_epoch = 0;
  std::uint32_t live = 0;
  for (std::uint32_t s = 0; s < t.slot_count_; ++s) {
    SlotHeader* sh = t.slot_header(s);
    const std::uint64_t cid = pmem::pm_load(sh->client_id);
    const std::uint64_t epoch = pmem::pm_load(sh->session_epoch);
    const std::uint64_t seq = pmem::pm_load(sh->last_seq);
    const std::uint64_t w[3] = {cid, epoch, seq};
    if (!checksum_verify(
            w, sizeof(w),
            static_cast<std::uint32_t>(pmem::pm_load(sh->reserved[0])))) {
      // Quarantine: durably reset the whole slot to free. The session is
      // reported lost — its client re-handshakes as unknown instead of
      // deduplicating against damaged state (never silently wrong).
      char* raw = t.base_ + kHeaderBytes + std::size_t{s} * kSlotBytes;
      std::memset(raw, 0, kSlotBytes);
      pmem::persist(raw, kSlotBytes);
      ++t.quarantined_;
      auto& st = pmem::Stats::instance();
      st.checksum_failures.fetch_add(1, std::memory_order_relaxed);
      st.quarantined_sessions.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (epoch > max_epoch) max_epoch = epoch;
    if (cid != 0) ++live;
  }
  t.recovered_ = live;
  t.next_stamp_ = std::make_shared<std::uint64_t>(max_epoch + 1);
  return t;
}

std::int32_t SessionTable::slot_of(std::uint64_t client_id) const {
  if (!valid() || client_id == 0) return -1;
  for (std::uint32_t s = 0; s < slot_count_; ++s) {
    if (pmem::pm_load(slot_header(s)->client_id) == client_id) {
      return static_cast<std::int32_t>(s);
    }
  }
  return -1;
}

std::int32_t SessionTable::open_session(std::uint64_t client_id) {
  if (!valid() || !detect_enabled() || client_id == 0) return -1;
  std::lock_guard<std::mutex> lk(*claim_mu_);

  // Reconnect: the client's previous slot keeps last_seq and the result
  // ring, so replays from before the drop still deduplicate.
  std::int32_t existing = slot_of(client_id);
  if (existing >= 0) return existing;

  // Claim a free slot, or evict the session with the oldest claim stamp.
  std::int32_t victim = -1;
  std::uint64_t victim_epoch = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t s = 0; s < slot_count_; ++s) {
    SlotHeader* sh = slot_header(s);
    if (pmem::pm_load(sh->client_id) == 0) {
      victim = static_cast<std::int32_t>(s);
      break;
    }
    std::uint64_t epoch = pmem::pm_load(sh->session_epoch);
    if (epoch < victim_epoch) {
      victim_epoch = epoch;
      victim = static_cast<std::int32_t>(s);
    }
  }
  if (victim < 0) return -1;

  SlotHeader* sh = slot_header(static_cast<std::uint32_t>(victim));

  // Crash-safe claim order. (1) retire the old owner so a crash never leaves
  // two slots for one client or a client over stale state; (2) reset the
  // dedup state and stamp the new epoch; (3) publish the new client_id.
  // Each step persists eagerly — session open is a rare path.
  // Each step restamps reserved[0] in the same store set it changes; the
  // header is one line, so the stamp always commits with its covered fields.
  pmem::pm_store(sh->client_id, std::uint64_t{0});
  pmem::pm_store(sh->reserved[0],
                 std::uint64_t{slot_stamp(0, pmem::pm_load(sh->session_epoch),
                                          pmem::pm_load(sh->last_seq))});
  pmem::persist(sh, sizeof(SlotHeader));

  const std::uint64_t new_epoch = (*next_stamp_)++;
  pmem::pm_store(sh->last_seq, std::uint64_t{0});
  pmem::pm_store(sh->session_epoch, new_epoch);
  pmem::pm_store(sh->reserved[0], std::uint64_t{slot_stamp(0, new_epoch, 0)});
  for (std::uint32_t i = 0; i < kRingSize; ++i) {
    RingEntry* e = ring_entry(static_cast<std::uint32_t>(victim), i);
    pmem::pm_store(e->seq, std::uint64_t{0});
    pmem::pm_store(e->reserved, std::uint64_t{0});
  }
  pmem::persist(sh, kSlotBytes);
  UPSL_CRASH_POINT("detect.slot_claimed");

  pmem::pm_store(sh->client_id, client_id);
  pmem::pm_store(sh->reserved[0],
                 std::uint64_t{slot_stamp(client_id, new_epoch, 0)});
  pmem::persist(sh, sizeof(SlotHeader));
  return victim;
}

std::uint64_t SessionTable::client_id(std::uint32_t slot) const {
  return pmem::pm_load(slot_header(slot)->client_id);
}

std::uint64_t SessionTable::session_epoch(std::uint32_t slot) const {
  return pmem::pm_load(slot_header(slot)->session_epoch);
}

std::uint64_t SessionTable::last_seq(std::uint32_t slot) const {
  return pmem::pm_load(slot_header(slot)->last_seq);
}

ResolveResult SessionTable::lookup(std::uint32_t slot,
                                   std::uint64_t seq) const {
  ResolveResult r;
  // seq 0 is the ring's empty sentinel, never issued: on a fresh slot it
  // would alias an all-zero RingEntry and answer kApplied with result 0.
  if (seq == 0) {
    r.state = ResolveResult::State::kNotApplied;
    return r;
  }
  SlotHeader* sh = slot_header(slot);
  if (seq > pmem::pm_load(sh->last_seq)) {
    r.state = ResolveResult::State::kNotApplied;
    return r;
  }
  RingEntry* e = ring_entry(slot, seq);
  if (pmem::pm_load(e->seq) == seq) {
    const std::uint64_t result = pmem::pm_load(e->result);
    const std::uint64_t has_prev = pmem::pm_load(e->has_previous);
    const std::uint64_t w[3] = {seq, result, has_prev};
    if (!checksum_verify(
            w, sizeof(w),
            static_cast<std::uint32_t>(pmem::pm_load(e->reserved)))) {
      // Damaged result payload: seq <= last_seq still proves the op was
      // applied, so dedup stays sound — only the original answer is lost.
      pmem::Stats::instance().checksum_failures.fetch_add(
          1, std::memory_order_relaxed);
      r.state = ResolveResult::State::kAppliedUnknown;
      return r;
    }
    r.state = ResolveResult::State::kApplied;
    r.has_previous = static_cast<std::uint32_t>(has_prev);
    r.result = result;
    return r;
  }
  // seq <= last_seq but the ring moved on: definitely applied (per-session
  // seqs are issued and recorded in order), original result evicted.
  r.state = ResolveResult::State::kAppliedUnknown;
  return r;
}

void SessionTable::record(std::uint32_t slot, std::uint64_t seq,
                          std::uint32_t has_previous, std::uint64_t result) {
  if (seq == 0) return;  // reserved sentinel, nothing durable to say
  RingEntry* e = ring_entry(slot, seq);
  pmem::pm_store(e->result, result);
  pmem::pm_store(e->has_previous, std::uint64_t{has_previous});
  pmem::pm_store(e->reserved, std::uint64_t{entry_stamp(
                                  seq, result, std::uint64_t{has_previous})});
  pmem::pm_store(e->seq, seq);
  pmem::ack_persist(e, sizeof(RingEntry));

  SlotHeader* sh = slot_header(slot);
  if (seq > pmem::pm_load(sh->last_seq)) {
    pmem::pm_store(sh->last_seq, seq);
    pmem::pm_store(
        sh->reserved[0],
        std::uint64_t{slot_stamp(pmem::pm_load(sh->client_id),
                                 pmem::pm_load(sh->session_epoch), seq)});
    // One line: last_seq and its stamp commit atomically under the same ack.
    pmem::ack_persist(sh, sizeof(SlotHeader));
  }
  UPSL_CRASH_POINT("detect.slot_published");
}

ResolveResult SessionTable::resolve(std::uint64_t client_id,
                                    std::uint64_t seq) const {
  ResolveResult r;
  if (!valid() || !detect_enabled()) return r;
  std::int32_t slot = slot_of(client_id);
  if (slot < 0) return r;  // kUnknownSession
  return lookup(static_cast<std::uint32_t>(slot), seq);
}

}  // namespace upsl::detect
