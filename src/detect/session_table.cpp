#include "detect/session_table.hpp"

#include <cstring>
#include <limits>
#include <memory>

#include "common/crashpoint.hpp"
#include "pmem/ack_batch.hpp"
#include "pmem/persist.hpp"

namespace upsl::detect {

namespace {
constexpr std::uint64_t kTableMagic = 0x5550534c44455443ull;  // "UPSLDETC"
}  // namespace

struct alignas(64) SessionTable::TableHeader {
  std::uint64_t magic;
  std::uint64_t slot_count;
  std::uint64_t ring_size;
  std::uint64_t reserved[5];
  static_assert(kHeaderBytes == 64);
};

struct alignas(64) SessionTable::SlotHeader {
  std::uint64_t client_id;      // 0 = free slot
  std::uint64_t session_epoch;  // monotonic claim stamp (eviction order)
  std::uint64_t last_seq;       // highest applied seq for this session
  std::uint64_t reserved[5];
};

struct alignas(32) SessionTable::RingEntry {
  std::uint64_t seq;  // published last: seq == entry's identity, 0 = empty
  std::uint64_t result;
  std::uint64_t has_previous;
  std::uint64_t reserved;
};

SessionTable::SlotHeader* SessionTable::slot_header(std::uint32_t slot) const {
  return reinterpret_cast<SlotHeader*>(base_ + kHeaderBytes +
                                       std::size_t{slot} * kSlotBytes);
}

SessionTable::RingEntry* SessionTable::ring_entry(std::uint32_t slot,
                                                  std::uint64_t seq) const {
  auto* ring = reinterpret_cast<RingEntry*>(
      base_ + kHeaderBytes + std::size_t{slot} * kSlotBytes +
      sizeof(SlotHeader));
  return &ring[seq % kRingSize];
}

SessionTable SessionTable::format(char* base, std::size_t bytes,
                                  std::uint32_t max_slots) {
  static_assert(sizeof(TableHeader) == kHeaderBytes);
  static_assert(sizeof(SlotHeader) == 64);
  static_assert(sizeof(RingEntry) == 32);
  static_assert(kSlotBytes == sizeof(SlotHeader) + kRingSize * sizeof(RingEntry));
  if (max_slots == 0) max_slots = kDefaultMaxSlots;
  if (base == nullptr || bytes < kHeaderBytes + kSlotBytes) return {};
  std::uint32_t fit =
      static_cast<std::uint32_t>((bytes - kHeaderBytes) / kSlotBytes);
  std::uint32_t slots = fit < max_slots ? fit : max_slots;

  std::size_t total = kHeaderBytes + std::size_t{slots} * kSlotBytes;
  std::memset(base, 0, total);
  auto* hdr = reinterpret_cast<TableHeader*>(base);
  hdr->slot_count = slots;
  hdr->ring_size = kRingSize;
  pmem::persist(base, total);
  // Magic last: a crash mid-format leaves a region that recover() rejects.
  pmem::pm_store(hdr->magic, kTableMagic);
  pmem::persist(&hdr->magic, sizeof(hdr->magic));

  SessionTable t;
  t.base_ = base;
  t.slot_count_ = slots;
  t.next_stamp_ = std::make_shared<std::uint64_t>(1);
  t.claim_mu_ = std::make_shared<std::mutex>();
  return t;
}

SessionTable SessionTable::recover(char* base, std::size_t bytes) {
  if (base == nullptr || bytes < kHeaderBytes + kSlotBytes) return {};
  auto* hdr = reinterpret_cast<TableHeader*>(base);
  if (pmem::pm_load(hdr->magic) != kTableMagic) return {};  // legacy store
  std::uint64_t slots = hdr->slot_count;
  if (hdr->ring_size != kRingSize || slots == 0 ||
      kHeaderBytes + slots * kSlotBytes > bytes) {
    return {};
  }

  SessionTable t;
  t.base_ = base;
  t.slot_count_ = static_cast<std::uint32_t>(slots);
  t.claim_mu_ = std::make_shared<std::mutex>();

  // Recovery scan: live-session census plus the maximum durable claim stamp,
  // which seeds the in-DRAM claim counter (no durable counter to maintain on
  // the claim path). O(slots) over a few KiB — cheap enough to run alongside
  // the DRAM-index rebuild at open.
  std::uint64_t max_epoch = 0;
  std::uint32_t live = 0;
  for (std::uint32_t s = 0; s < t.slot_count_; ++s) {
    SlotHeader* sh = t.slot_header(s);
    std::uint64_t epoch = pmem::pm_load(sh->session_epoch);
    if (epoch > max_epoch) max_epoch = epoch;
    if (pmem::pm_load(sh->client_id) != 0) ++live;
  }
  t.recovered_ = live;
  t.next_stamp_ = std::make_shared<std::uint64_t>(max_epoch + 1);
  return t;
}

std::int32_t SessionTable::slot_of(std::uint64_t client_id) const {
  if (!valid() || client_id == 0) return -1;
  for (std::uint32_t s = 0; s < slot_count_; ++s) {
    if (pmem::pm_load(slot_header(s)->client_id) == client_id) {
      return static_cast<std::int32_t>(s);
    }
  }
  return -1;
}

std::int32_t SessionTable::open_session(std::uint64_t client_id) {
  if (!valid() || !detect_enabled() || client_id == 0) return -1;
  std::lock_guard<std::mutex> lk(*claim_mu_);

  // Reconnect: the client's previous slot keeps last_seq and the result
  // ring, so replays from before the drop still deduplicate.
  std::int32_t existing = slot_of(client_id);
  if (existing >= 0) return existing;

  // Claim a free slot, or evict the session with the oldest claim stamp.
  std::int32_t victim = -1;
  std::uint64_t victim_epoch = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t s = 0; s < slot_count_; ++s) {
    SlotHeader* sh = slot_header(s);
    if (pmem::pm_load(sh->client_id) == 0) {
      victim = static_cast<std::int32_t>(s);
      break;
    }
    std::uint64_t epoch = pmem::pm_load(sh->session_epoch);
    if (epoch < victim_epoch) {
      victim_epoch = epoch;
      victim = static_cast<std::int32_t>(s);
    }
  }
  if (victim < 0) return -1;

  SlotHeader* sh = slot_header(static_cast<std::uint32_t>(victim));

  // Crash-safe claim order. (1) retire the old owner so a crash never leaves
  // two slots for one client or a client over stale state; (2) reset the
  // dedup state and stamp the new epoch; (3) publish the new client_id.
  // Each step persists eagerly — session open is a rare path.
  pmem::pm_store(sh->client_id, std::uint64_t{0});
  pmem::persist(&sh->client_id, sizeof(sh->client_id));

  pmem::pm_store(sh->last_seq, std::uint64_t{0});
  pmem::pm_store(sh->session_epoch, (*next_stamp_)++);
  for (std::uint32_t i = 0; i < kRingSize; ++i) {
    RingEntry* e = ring_entry(static_cast<std::uint32_t>(victim), i);
    pmem::pm_store(e->seq, std::uint64_t{0});
  }
  pmem::persist(sh, kSlotBytes);
  UPSL_CRASH_POINT("detect.slot_claimed");

  pmem::pm_store(sh->client_id, client_id);
  pmem::persist(&sh->client_id, sizeof(sh->client_id));
  return victim;
}

std::uint64_t SessionTable::client_id(std::uint32_t slot) const {
  return pmem::pm_load(slot_header(slot)->client_id);
}

std::uint64_t SessionTable::session_epoch(std::uint32_t slot) const {
  return pmem::pm_load(slot_header(slot)->session_epoch);
}

std::uint64_t SessionTable::last_seq(std::uint32_t slot) const {
  return pmem::pm_load(slot_header(slot)->last_seq);
}

ResolveResult SessionTable::lookup(std::uint32_t slot,
                                   std::uint64_t seq) const {
  ResolveResult r;
  // seq 0 is the ring's empty sentinel, never issued: on a fresh slot it
  // would alias an all-zero RingEntry and answer kApplied with result 0.
  if (seq == 0) {
    r.state = ResolveResult::State::kNotApplied;
    return r;
  }
  SlotHeader* sh = slot_header(slot);
  if (seq > pmem::pm_load(sh->last_seq)) {
    r.state = ResolveResult::State::kNotApplied;
    return r;
  }
  RingEntry* e = ring_entry(slot, seq);
  if (pmem::pm_load(e->seq) == seq) {
    r.state = ResolveResult::State::kApplied;
    r.has_previous = static_cast<std::uint32_t>(pmem::pm_load(e->has_previous));
    r.result = pmem::pm_load(e->result);
    return r;
  }
  // seq <= last_seq but the ring moved on: definitely applied (per-session
  // seqs are issued and recorded in order), original result evicted.
  r.state = ResolveResult::State::kAppliedUnknown;
  return r;
}

void SessionTable::record(std::uint32_t slot, std::uint64_t seq,
                          std::uint32_t has_previous, std::uint64_t result) {
  if (seq == 0) return;  // reserved sentinel, nothing durable to say
  RingEntry* e = ring_entry(slot, seq);
  pmem::pm_store(e->result, result);
  pmem::pm_store(e->has_previous, std::uint64_t{has_previous});
  pmem::pm_store(e->seq, seq);
  pmem::ack_persist(e, sizeof(RingEntry));

  SlotHeader* sh = slot_header(slot);
  if (seq > pmem::pm_load(sh->last_seq)) {
    pmem::pm_store(sh->last_seq, seq);
    pmem::ack_persist(&sh->last_seq, sizeof(sh->last_seq));
  }
  UPSL_CRASH_POINT("detect.slot_published");
}

ResolveResult SessionTable::resolve(std::uint64_t client_id,
                                    std::uint64_t seq) const {
  ResolveResult r;
  if (!valid() || !detect_enabled()) return r;
  std::int32_t slot = slot_of(client_id);
  if (slot < 0) return r;  // kUnknownSession
  return lookup(static_cast<std::uint32_t>(slot), seq);
}

}  // namespace upsl::detect
