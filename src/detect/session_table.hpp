// Detectable exactly-once mutations: the durable client-session table.
//
// Construction from *Practical Detectability for Persistent Lock-Free Data
// Structures* (PAPERS.md): every detectable mutation carries a client-chosen
// (client_id, seq) identity, and the store persists the operation's result
// in a per-client durable slot *in the same ack fence* as the mutation's own
// ack lines (pmem::ack_persist into the caller's AckBatch scope). A client
// that crashed or reconnected mid-pipeline can then ask the slot — not the
// data structure — whether an in-flight request landed, and a replayed seq
// is deduplicated instead of applied twice.
//
// Layout (pool 0 root area, after the magazine descriptors; all 64B-aligned):
//
//   TableHeader   1 line   magic, slot_count, ring_size
//   Slot[i]       5 lines  header line: client_id, session_epoch, last_seq
//                          ring: kRingSize x 32B {seq, result, status}
//
// The ring keeps the results of the client's most recent kRingSize sequence
// numbers — the unacked pipeline tail a detectable client may need to
// resolve after a drop. seq <= last_seq with the ring entry evicted still
// answers "applied" (dedup stays sound), just with the result unknown.
//
// Durability contract (docs/detectability.md): record() routes its lines
// through pmem::ack_persist, so inside a server batch the slot update rides
// the exact fence / group-commit ticket that acks the mutation — exactly-once
// costs no extra fences on the hot path. In kDiscardUnflushed crash mode a
// group-commit ticket's lines commit atomically (GroupCommit::commit_batch
// has no interior crash points), so the slot and the mutation's effect are
// always in agreement and resolve() answers are ground truth for the tested
// configuration.
//
// Sessions are single-writer: the server's connection ownership (one worker
// owns a connection for its life) means at most one thread mutates a given
// slot at a time; open_session() is the only cross-thread entry and takes a
// DRAM mutex. Slot reuse is epoch-stamped: a full table evicts the slot with
// the oldest claim stamp, and the claim protocol (free -> reset -> publish
// client_id, each step persisted) can never leave a new client_id over a
// previous session's dedup state.
//
// UPSL_DISABLE_DETECT=1 is the kill switch: the table still formats (layout
// is unconditional) but every runtime entry point reports "no session", so
// detectable opcodes degrade to their plain counterparts end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/compiler.hpp"

namespace upsl::detect {

namespace detail {
inline std::atomic<int>& detect_flag() {
  static std::atomic<int> flag{-1};  // -1 = env not read yet
  return flag;
}
}  // namespace detail

/// Kill switch (same cached-atomic idiom as UPSL_DISABLE_MOD_WRITES).
inline bool detect_enabled() {
  int v = detail::detect_flag().load(std::memory_order_relaxed);
  if (UPSL_UNLIKELY(v < 0)) {
    const char* e = std::getenv("UPSL_DISABLE_DETECT");
    v = (e != nullptr && e[0] != '\0' && e[0] != '0') ? 0 : 1;
    detail::detect_flag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

/// In-process kill-switch override for A/B benchmarking and tests.
inline void set_detect_for_testing(bool on) {
  detail::detect_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Drop the cached decision so the next use re-reads the environment.
inline void reset_detect_for_testing() {
  detail::detect_flag().store(-1, std::memory_order_relaxed);
}

/// Answer of a result-slot query for one (client_id, seq).
struct ResolveResult {
  enum class State : std::uint32_t {
    kUnknownSession = 0,  // no slot holds this client_id
    kNotApplied = 1,      // seq > last_seq: the op never took effect
    kApplied = 2,         // applied; status/result are the original answer
    kAppliedUnknown = 3,  // applied, but the result ring evicted the entry
  };
  State state = State::kUnknownSession;
  std::uint32_t has_previous = 0;  // 1 = `result` holds the op's u64 answer
  std::uint64_t result = 0;
};

/// Durable per-client session slots with a small result ring each. All
/// methods operate on PMEM the caller mapped; the object itself is a
/// volatile view (re-created per open, like the allocators).
class SessionTable {
 public:
  static constexpr std::uint32_t kRingSize = 8;
  static constexpr std::uint32_t kDefaultMaxSlots = 256;
  /// Header line + per-slot stride, both in bytes (64B-aligned).
  static constexpr std::size_t kHeaderBytes = 64;
  static constexpr std::size_t kSlotBytes = 64 + kRingSize * 32ull;

  SessionTable() = default;

  /// Formats `bytes` of `base` as an empty table (create path). Slot count
  /// is what fits, capped at `max_slots` (0 = kDefaultMaxSlots). Returns an
  /// invalid table when even one slot does not fit.
  static SessionTable format(char* base, std::size_t bytes,
                             std::uint32_t max_slots);

  /// Reattaches to a previously formatted table (open path) and runs the
  /// recovery scan: live-session census + next claim stamp. Returns an
  /// invalid table when the region holds no table magic (legacy store).
  static SessionTable recover(char* base, std::size_t bytes);

  bool valid() const { return base_ != nullptr; }
  std::uint32_t slot_count() const { return slot_count_; }
  /// Live sessions found by the recovery scan (diagnostics / startup report).
  std::uint32_t recovered_sessions() const { return recovered_; }
  /// Slots whose header failed its integrity stamp during recover() and were
  /// durably reset to free (docs/integrity.md). Their clients re-handshake as
  /// unknown sessions instead of deduplicating against damaged state.
  std::uint32_t quarantined_sessions() const { return quarantined_; }

  /// Claims (or finds) the slot for `client_id`; reconnecting clients get
  /// their existing slot back with the dedup state intact. A full table
  /// evicts the slot with the oldest claim stamp. Returns -1 when the table
  /// is invalid or detect is disabled.
  std::int32_t open_session(std::uint64_t client_id);

  /// Slot currently owned by `client_id`, or -1.
  std::int32_t slot_of(std::uint64_t client_id) const;

  std::uint64_t client_id(std::uint32_t slot) const;
  std::uint64_t session_epoch(std::uint32_t slot) const;
  std::uint64_t last_seq(std::uint32_t slot) const;

  /// Dedup probe for the executor: what does the slot say about `seq`?
  /// (kUnknownSession is never returned here — the caller holds the slot.)
  /// Valid seqs start at 1; 0 is the ring's empty sentinel and always
  /// answers kNotApplied.
  ResolveResult lookup(std::uint32_t slot, std::uint64_t seq) const;

  /// Persist (seq, status, result) into the slot's ring and advance
  /// last_seq. Lines go through pmem::ack_persist: inside an AckBatch scope
  /// they ride the batch/group-commit ack fence; standalone they persist
  /// immediately. Call only with seq > last_seq(slot) and seq >= 1 (0 is
  /// the reserved empty sentinel — a no-op here), from the single thread
  /// owning the session.
  void record(std::uint32_t slot, std::uint64_t seq, std::uint32_t has_previous,
              std::uint64_t result);

  /// Operator/client-side query by identity (RESOLVE verb, reconnect path).
  ResolveResult resolve(std::uint64_t client_id, std::uint64_t seq) const;

 private:
  struct TableHeader;
  struct SlotHeader;
  struct RingEntry;

  SlotHeader* slot_header(std::uint32_t slot) const;
  RingEntry* ring_entry(std::uint32_t slot, std::uint64_t seq) const;

  char* base_ = nullptr;
  std::uint32_t slot_count_ = 0;
  std::uint32_t recovered_ = 0;
  std::uint32_t quarantined_ = 0;
  /// Next claim stamp (monotonic across the table; recover() seeds it from
  /// the durable maximum). Shared pointer semantics: SessionTable is a view,
  /// copied freely; the mutex/counter live once per store handle.
  std::shared_ptr<std::uint64_t> next_stamp_;
  std::shared_ptr<std::mutex> claim_mu_;
};

}  // namespace upsl::detect
