// Single-operation YCSB op-mix generator, extracted from trace generation so
// the in-process trace builder (ycsb.cpp) and the network load generator
// (bench/bench_server.cpp) draw from exactly one implementation of the
// read/update/insert dice roll and the key-choice distributions — the two
// can never drift apart.
//
// With the defaults (insert_offset 0, insert_stride 1) the op stream is
// bit-identical to what generate() historically produced for a given seed.
// The offset/stride pair lets T concurrent closed-loop generators insert
// into disjoint key-index residue classes (thread t uses offset=t, stride=T)
// so they never collide on "fresh" insert keys without any coordination.
#pragma once

#include "ycsb/ycsb.hpp"

namespace upsl::ycsb {

class OpGenerator {
 public:
  OpGenerator(const WorkloadSpec& spec, std::uint64_t records,
              std::uint64_t seed, std::uint64_t insert_offset = 0,
              std::uint64_t insert_stride = 1)
      : spec_(spec),
        records_(records),
        rng_(seed),
        zipf_(records),
        latest_(records),
        scan_len_(spec.max_scan_len == 0 ? 1 : spec.max_scan_len),
        insert_offset_(insert_offset),
        insert_stride_(insert_stride == 0 ? 1 : insert_stride) {}

  /// Draws the next operation of the mix. Deterministic per (spec, seed).
  Op next() {
    Op op{};
    const double dice = rng_.next_double();
    if (dice < spec_.insert) {
      op.type = OpType::kInsert;
      op.key = key_of(records_ + insert_offset_ + inserts_done_++ *
                                                      insert_stride_);
    } else if (dice < spec_.insert + spec_.scan) {
      // Range scan (workload E): start key from the spec's distribution,
      // length zipfian-skewed over [1, max_scan_len] so most scans are short.
      op.type = OpType::kScan;
      op.key = key_of(pick_index());
      op.scan_len =
          1 + static_cast<std::uint32_t>(scan_len_.next(rng_));
    } else {
      op.type = dice < spec_.insert + spec_.update ? OpType::kUpdate
                                                   : OpType::kRead;
      op.key = key_of(pick_index());
    }
    op.value = value_seq_++;
    return op;
  }

  std::uint64_t record_count() const { return records_; }

 private:
  /// Record index targeted by a read/update, per the spec's distribution.
  std::uint64_t pick_index() {
    switch (spec_.dist) {
      case Distribution::kZipfian:
        return zipf_.next(rng_);
      case Distribution::kLatest: {
        // "Latest" skews toward the most recently inserted record: a zipfian
        // over recency offsets from the moving insert frontier (YCSB's
        // definition). The frontier advances once per insert regardless of
        // stride, mirroring the logical "newest record" position.
        const std::uint64_t frontier = records_ + inserts_done_;
        const std::uint64_t back = latest_.next(rng_);
        const std::uint64_t index = frontier - 1 - (back % frontier);
        if (index < records_) return index;
        // Map a post-preload logical index back onto this generator's own
        // inserted keys so reads target records that actually exist.
        return records_ + insert_offset_ +
               (index - records_) * insert_stride_;
      }
      case Distribution::kUniform:
      default:
        return rng_.next_below(records_);
    }
  }

  WorkloadSpec spec_;
  std::uint64_t records_;
  Xoshiro256 rng_;
  ScrambledZipfian zipf_;
  ZipfianGenerator latest_;
  ZipfianGenerator scan_len_;  // rank 0 hottest -> lengths skew to 1
  std::uint64_t insert_offset_;
  std::uint64_t insert_stride_;
  std::uint64_t inserts_done_ = 0;
  std::uint64_t value_seq_ = 1;
};

}  // namespace upsl::ycsb
