// YCSB workload generation (thesis §5.1.2, Table 5.1).
//
// Reimplements the Yahoo Cloud Serving Benchmark core distributions in C++:
// Gray et al.'s zipfian generator (the YCSB original), the scrambled-zipfian
// variant that spreads hot keys across the key space, and the "latest"
// distribution that skews toward recently inserted records. Workloads:
//
//   A  Update-Heavy  50/50/0  zipfian
//   B  Read-Mostly   95/5/0   zipfian
//   C  Read-Only     100/0/0  zipfian
//   D  Read-Latest   95/0/5   latest
//   E  Scan-Heavy    0/0/5 + 95% scans, zipfian start keys, short
//      zipfian-skewed scan lengths (YCSB workload E analogue; docs/scan.md)
//
// Traces are pre-generated and split across threads before the timed run,
// as in the thesis ("memory-mapped ... and played back to perform the
// operations ... to remove the overhead of workload generation").
//
// The per-operation mix/key drawing itself lives in workload.hpp
// (OpGenerator); generate() below and the closed-loop network load
// generator (bench/bench_server.cpp) both build on it.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace upsl::ycsb {

enum class OpType : std::uint8_t { kRead, kUpdate, kInsert, kScan };

struct Op {
  OpType type;
  std::uint64_t key;
  std::uint64_t value;
  std::uint32_t scan_len = 0;  // kScan only: entries to pull from `key` on
};

enum class Distribution { kZipfian, kLatest, kUniform };

struct WorkloadSpec {
  const char* name;
  double read;
  double update;
  double insert;
  Distribution dist;
  // Appended after the classic fields so the A-D aggregate literals (and any
  // user-written ones) keep meaning what they always did: scan defaults to 0.
  double scan = 0;                 // fraction of ops that are range scans
  std::uint32_t max_scan_len = 0;  // largest scan length drawn (kScan only)
};

inline constexpr WorkloadSpec kWorkloadA{"A(update-heavy)", 0.50, 0.50, 0.0,
                                         Distribution::kZipfian};
inline constexpr WorkloadSpec kWorkloadB{"B(read-mostly)", 0.95, 0.05, 0.0,
                                         Distribution::kZipfian};
inline constexpr WorkloadSpec kWorkloadC{"C(read-only)", 1.0, 0.0, 0.0,
                                         Distribution::kZipfian};
inline constexpr WorkloadSpec kWorkloadD{"D(read-latest)", 0.95, 0.0, 0.05,
                                         Distribution::kLatest};
/// YCSB workload E analogue: 95% short range scans (zipfian start key,
/// zipfian-skewed length in [1, 100] — most scans are short, a few long),
/// 5% inserts.
inline constexpr WorkloadSpec kWorkloadE{"E(scan-heavy)", 0.0, 0.0, 0.05,
                                         Distribution::kZipfian, 0.95, 100};

/// Deterministic record index -> key mapping. Keys stay inside every
/// structure's valid domain (nonzero, < 2^62 - 1).
inline std::uint64_t key_of(std::uint64_t index) {
  return (mix64(index + 0x9e3779b97f4a7c15ULL) >> 3) + 1;
}

/// YCSB's zipfian generator (Gray et al.), theta = 0.99.
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(std::uint64_t items, double theta = 0.99)
      : items_(items), theta_(theta) {
    zetan_ = zeta(items_);
    zeta2_ = zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Rank in [0, items): rank 0 is the hottest item.
  std::uint64_t next(Xoshiro256& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= items_ ? items_ - 1 : rank;
  }

 private:
  double zeta(std::uint64_t n) const {
    // Direct sum for small n; Euler-Maclaurin-ish approximation above.
    if (n <= (1u << 20)) {
      double z = 0;
      for (std::uint64_t i = 1; i <= n; ++i)
        z += 1.0 / std::pow(static_cast<double>(i), theta_);
      return z;
    }
    const double z20 = 18.066242;  // zeta(2^20, 0.99)
    const double a = 1.0 - theta_;
    return z20 + (std::pow(static_cast<double>(n), a) -
                  std::pow(static_cast<double>(1u << 20), a)) /
                     a;
  }

  std::uint64_t items_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

/// Scrambled zipfian: zipfian ranks spread over the record space so hot keys
/// are not neighbours (the YCSB default for workloads A-C).
class ScrambledZipfian {
 public:
  explicit ScrambledZipfian(std::uint64_t items)
      : items_(items), zipf_(items) {}
  std::uint64_t next(Xoshiro256& rng) const {
    return mix64(zipf_.next(rng)) % items_;
  }

 private:
  std::uint64_t items_;
  ZipfianGenerator zipf_;
};

struct Trace {
  std::vector<std::uint64_t> preload_keys;
  /// ops[t] is thread t's private slice.
  std::vector<std::vector<Op>> ops;
  std::uint64_t record_count;
};

/// Generates a full trace: `records` preloaded keys and `total_ops`
/// operations divided round-robin over `threads` slices.
Trace generate(const WorkloadSpec& spec, std::uint64_t records,
               std::uint64_t total_ops, unsigned threads, std::uint64_t seed);

}  // namespace upsl::ycsb
