#include "ycsb/ycsb.hpp"

#include "ycsb/workload.hpp"

namespace upsl::ycsb {

Trace generate(const WorkloadSpec& spec, std::uint64_t records,
               std::uint64_t total_ops, unsigned threads, std::uint64_t seed) {
  Trace trace;
  trace.record_count = records;
  trace.preload_keys.reserve(records);
  for (std::uint64_t i = 0; i < records; ++i)
    trace.preload_keys.push_back(key_of(i));

  trace.ops.resize(threads);
  for (auto& slice : trace.ops) slice.reserve(total_ops / threads + 1);

  // One sequential generator, sliced round-robin — same shared-frontier op
  // stream the trace format always had; only the drawing moved into
  // OpGenerator (shared with the network load generator).
  OpGenerator gen(spec, records, seed);
  for (std::uint64_t i = 0; i < total_ops; ++i)
    trace.ops[i % threads].push_back(gen.next());
  return trace;
}

}  // namespace upsl::ycsb
