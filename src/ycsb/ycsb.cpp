#include "ycsb/ycsb.hpp"

namespace upsl::ycsb {

Trace generate(const WorkloadSpec& spec, std::uint64_t records,
               std::uint64_t total_ops, unsigned threads, std::uint64_t seed) {
  Trace trace;
  trace.record_count = records;
  trace.preload_keys.reserve(records);
  for (std::uint64_t i = 0; i < records; ++i)
    trace.preload_keys.push_back(key_of(i));

  trace.ops.resize(threads);
  for (auto& slice : trace.ops) slice.reserve(total_ops / threads + 1);

  Xoshiro256 rng(seed);
  ScrambledZipfian zipf(records);
  // "Latest" skews toward the most recently inserted record: a zipfian over
  // recency offsets from the moving insert frontier (YCSB's definition).
  ZipfianGenerator latest(records);
  std::uint64_t insert_frontier = records;
  std::uint64_t value_seq = 1;

  for (std::uint64_t i = 0; i < total_ops; ++i) {
    Op op{};
    const double dice = rng.next_double();
    if (dice < spec.insert) {
      op.type = OpType::kInsert;
      op.key = key_of(insert_frontier++);
    } else {
      op.type = dice < spec.insert + spec.update ? OpType::kUpdate
                                                 : OpType::kRead;
      std::uint64_t index;
      switch (spec.dist) {
        case Distribution::kZipfian:
          index = zipf.next(rng);
          break;
        case Distribution::kLatest: {
          const std::uint64_t back = latest.next(rng);
          index = insert_frontier - 1 - (back % insert_frontier);
          break;
        }
        case Distribution::kUniform:
        default:
          index = rng.next_below(records);
          break;
      }
      op.key = key_of(index);
    }
    op.value = value_seq++;
    trace.ops[i % threads].push_back(op);
  }
  return trace;
}

}  // namespace upsl::ycsb
