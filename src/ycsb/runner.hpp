// Multithreaded YCSB driver: plays back pre-generated trace slices against
// any key-value structure and reports throughput plus per-operation-type
// latency histograms (the measurements behind Figures 5.1-5.6 and Tables
// 5.2-5.3).
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "common/histogram.hpp"
#include "common/thread_registry.hpp"
#include "ycsb/ycsb.hpp"

namespace upsl::ycsb {

/// Adapter interface over the three evaluated structures. The virtual call
/// costs the same for every contender.
class KVAdapter {
 public:
  virtual ~KVAdapter() = default;
  virtual std::optional<std::uint64_t> insert(std::uint64_t key,
                                              std::uint64_t value) = 0;
  virtual std::optional<std::uint64_t> search(std::uint64_t key) = 0;
  virtual std::optional<std::uint64_t> remove(std::uint64_t key) = 0;
  /// Range scan (workload E): up to `count` live entries with key >= start,
  /// ascending; returns how many were visited. Structures without ordered
  /// iteration keep the default no-op (scans become free — only compare
  /// workload-E numbers between adapters that implement this).
  virtual std::size_t scan(std::uint64_t start, std::uint32_t count) {
    (void)start;
    (void)count;
    return 0;
  }
};

struct RunStats {
  double seconds = 0;
  std::uint64_t ops = 0;
  double mops() const {
    return seconds == 0 ? 0 : static_cast<double>(ops) / seconds / 1e6;
  }
  LatencyHistogram reads;
  LatencyHistogram updates;
  LatencyHistogram inserts;
  LatencyHistogram scans;
  /// Entries returned by scans (kScan measures per-scan latency above;
  /// throughput in entries/s needs the volume too).
  std::uint64_t scan_entries = 0;
};

/// Preloads the trace's records (single-threaded) — not timed.
inline void preload(KVAdapter& store, const Trace& trace) {
  ThreadRegistry::instance().bind(0);
  std::uint64_t v = 1;
  for (const std::uint64_t key : trace.preload_keys) store.insert(key, v++);
}

/// Plays back every thread slice; returns aggregate stats.
inline RunStats run_trace(KVAdapter& store, const Trace& trace,
                          bool measure_latency) {
  const auto threads = static_cast<unsigned>(trace.ops.size());
  std::vector<RunStats> per_thread(threads);
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadRegistry::instance().bind(static_cast<int>(t));
      RunStats& stats = per_thread[t];
      for (const Op& op : trace.ops[t]) {
        std::chrono::steady_clock::time_point s;
        if (measure_latency) s = std::chrono::steady_clock::now();
        switch (op.type) {
          case OpType::kRead:
            store.search(op.key);
            break;
          case OpType::kUpdate:
          case OpType::kInsert:
            store.insert(op.key, op.value);
            break;
          case OpType::kScan:
            stats.scan_entries += store.scan(op.key, op.scan_len);
            break;
        }
        if (measure_latency) {
          const auto ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - s)
                  .count());
          switch (op.type) {
            case OpType::kRead:
              stats.reads.record(ns);
              break;
            case OpType::kUpdate:
              stats.updates.record(ns);
              break;
            case OpType::kInsert:
              stats.inserts.record(ns);
              break;
            case OpType::kScan:
              stats.scans.record(ns);
              break;
          }
        }
        ++stats.ops;
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  ThreadRegistry::instance().bind(0);

  RunStats total;
  total.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const RunStats& s : per_thread) {
    total.ops += s.ops;
    total.reads.merge(s.reads);
    total.updates.merge(s.updates);
    total.inserts.merge(s.inserts);
    total.scans.merge(s.scans);
    total.scan_entries += s.scan_entries;
  }
  return total;
}

}  // namespace upsl::ycsb
