// Volatile DRAM search layer for UPSkipList (selective persistence).
//
// UPSkipList's recoverability depends only on the bottom (data) level: index
// towers are pure search acceleration and are fully reconstructible from the
// sorted level-0 chain. This class keeps all index levels (level >= 1) in
// DRAM as a concurrent skip list over (first_key -> data node), so the
// traversal hot path walks compact DRAM nodes with plain pointers — no RIV
// `to_ptr` dispatch, no epoch/dirty checks, no PMEM flush traffic — until it
// drops to the durable data level.
//
// Two structural invariants of the data level make the index trivially
// safe:
//   * data nodes are never removed (removals tombstone values), and
//   * a node's first key is immutable after make_node (splits move the
//     *upper* half out; split recovery never nulls key(0)).
// So the index is insert-only — no deletion, no marks — and ANY subset of
// registrations is correct: the index only supplies a starting hint for the
// level-0 walk, which alone completes every operation. A missed or lost
// registration costs hops, never correctness; the next rebuild restores it.
//
// Memory: nodes are carved from append-only slab arenas and freed only when
// the whole index is dropped (close or rebuild). Index memory is never
// flushed and dies with the process — `rebuild()` reconstructs it from a
// sorted snapshot of the data level, in parallel (per-worker stripe build +
// deterministic pointer merge, cf. deterministic skiplist construction).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/compiler.hpp"
#include "riv/riv.hpp"

namespace upsl::core {

class DramIndex {
 public:
  /// One data-level node to (re)register: its immutable first key, its RIV,
  /// its current virtual address and its stored tower height (>= 2, or the
  /// node has no index presence).
  struct Entry {
    std::uint64_t key;
    std::uint64_t riv;
    char* ptr;
    std::uint32_t height;
  };

  explicit DramIndex(std::uint32_t max_height);
  ~DramIndex();
  DramIndex(const DramIndex&) = delete;
  DramIndex& operator=(const DramIndex&) = delete;

  /// Greatest indexed key <= `key`, as a resolved data-level handle
  /// ({kNull, nullptr} if no indexed key qualifies — start at the head).
  /// Adds the number of DRAM nodes visited to *hops. Wait-free.
  riv::DataHandle seek(std::uint64_t key, std::uint64_t* hops) const;

  /// Register a data node (idempotent — concurrent and repeated calls for
  /// the same key collapse to one entry; the slot-0 CAS is the linearization
  /// point). Ordinary volatile CASes, nothing is flushed. No-op for
  /// height < 2.
  void insert(std::uint64_t key, std::uint64_t riv, char* ptr,
              std::uint32_t height);

  /// Drop everything and rebuild from `sorted` (ascending by key, unique —
  /// the data level's natural order). Heights come from the durable node
  /// meta, so the result is identical regardless of `workers`: each worker
  /// builds a contiguous stripe, then the stripes are stitched level by
  /// level. Not thread-safe against concurrent readers/writers (runs during
  /// open/recovery, before the store serves).
  void rebuild(const std::vector<Entry>& sorted, unsigned workers);

  /// Registered entries (indexed data nodes).
  std::size_t entries() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// True iff `key` is registered and linked at slot levels [0, levels)
  /// — the DRAM analogue of a complete persistent tower.
  bool complete(std::uint64_t key, std::uint32_t levels) const;

  /// Structural self-check (test/diagnostic; call quiesced): every slot
  /// level strictly ascending, every level a subsequence of the level
  /// below, slot counts consistent with the registered height. Throws on
  /// violation.
  void check_invariants() const;

  /// Visit every registered entry in ascending key order (quiesced walks
  /// only — used by invariant checks and diagnostics).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const IndexNode* n = slot_load(head_, 0); n != nullptr;
         n = slot_load(n, 0)) {
      fn(Entry{n->key, n->data_riv, n->data_ptr, n->levels + 1});
    }
  }

 private:
  /// A volatile index node: header + `levels` forward pointers. Slot i
  /// carries skip-list level i + 1 (level 0 lives in PMEM), so a data node
  /// of tower height h owns h - 1 slots. Slots are raw pointers accessed
  /// through std::atomic_ref, matching the codebase's PMEM-word idiom.
  struct IndexNode {
    std::uint64_t key;
    std::uint64_t data_riv;
    char* data_ptr;
    std::uint32_t levels;
    IndexNode** slots() {
      return reinterpret_cast<IndexNode**>(this + 1);
    }
    IndexNode* const* slots() const {
      return reinterpret_cast<IndexNode* const*>(this + 1);
    }
  };
  static_assert(sizeof(IndexNode) % alignof(IndexNode*) == 0);

  /// Append-only slab allocator; nodes are trivially destructible and are
  /// reclaimed only when the arena is dropped.
  struct Arena {
    static constexpr std::size_t kSlabBytes = 64 << 10;
    std::vector<std::unique_ptr<char[]>> slabs;
    std::size_t used = 0;
    void* allocate(std::size_t bytes);
    void absorb(Arena&& other);
  };

  static IndexNode* slot_load(const IndexNode* n, std::uint32_t i) {
    return std::atomic_ref<IndexNode* const>(n->slots()[i])
        .load(std::memory_order_acquire);
  }
  static void slot_store(IndexNode* n, std::uint32_t i, IndexNode* v) {
    std::atomic_ref<IndexNode*>(n->slots()[i])
        .store(v, std::memory_order_release);
  }
  static bool slot_cas(IndexNode* n, std::uint32_t i, IndexNode* expected,
                       IndexNode* desired) {
    return std::atomic_ref<IndexNode*>(n->slots()[i])
        .compare_exchange_strong(expected, desired,
                                 std::memory_order_acq_rel,
                                 std::memory_order_acquire);
  }

  static IndexNode* make_node(Arena& arena, std::uint64_t key,
                              std::uint64_t riv, char* ptr,
                              std::uint32_t levels);

  /// Fill preds/succs for `key` at every slot level; true iff an exact
  /// match exists (returned in *match).
  bool find(std::uint64_t key, IndexNode** preds, IndexNode** succs,
            IndexNode** match) const;

  void raise_top(std::uint32_t level);
  void clear_unlocked();

  std::uint32_t max_slots_;       // max_height - 1
  IndexNode* head_ = nullptr;     // key-less sentinel with max_slots_ slots
  std::atomic<std::uint32_t> top_{0};  // highest slot index in use + 1
  std::atomic<std::size_t> count_{0};
  Arena arena_;
  std::mutex arena_mu_;  // guards arena_ on the (rare) insert path
};

}  // namespace upsl::core
