// UPSkipList — the Untitled Persistent Skip List (thesis chapter 4).
//
// A fully PMEM-resident, recoverable, NUMA-aware skip list derived from
// Herlihy et al.'s lock-free skip list, converted with the thesis' extension
// to RECIPE for lock-free algorithms with non-repairing, non-blocking
// writes: a PMEM-resident failure-free epoch id is recorded in every node
// touched by an in-flight operation, so a traversal can tell "inconsistent
// but someone is working on it" (same epoch) from "inconsistent because of a
// crash" (older epoch) and claim + repair the latter (§4.1.3).
//
// Nodes hold up to keys_per_node keys (unsorted after the first, §4.4) and
// are split concurrently and recoverably when full (§4.5.1). Removals write
// tombstones (§4.6). Traversals are wait-free reads; insert/update/remove
// are deadlock-free (the split lock is the only blocking component).
//
// Progress after a failure: open() bumps the epoch and the structure is
// immediately ready to serve; inconsistencies are repaired as encountered,
// throttled to `recovery_budget` incomplete-insert repairs per search
// traversal so post-crash throughput does not collapse (§4.4.1). Incomplete
// node splits are always repaired on sight.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/block_allocator.hpp"
#include "common/rng.hpp"
#include "core/dram_index.hpp"
#include "core/node.hpp"
#include "detect/session_table.hpp"

namespace upsl::core {

struct Options {
  std::uint32_t keys_per_node = 256;  // thesis' tuned value (§5.1.2)
  std::uint32_t max_height = 32;
  /// Highest thread id the store must support; sizes the arenas.
  std::uint32_t max_threads = 64;
  /// Incomplete-insert repairs a single search traversal may perform.
  std::uint32_t recovery_budget = 1;
  /// Sort keys when splitting a node and binary-search the sorted prefix —
  /// the thesis' future-work optimization borrowed from BzTree (§7).
  bool sorted_splits = false;
  /// Keep index levels (level >= 1) in a volatile DRAM search layer and
  /// persist only the data level (docs/dram-index.md). Overridden by the
  /// UPSL_DISABLE_DRAM_INDEX environment kill switch; the effective mode is
  /// recorded durably in the store root so reopens know whether the PMEM
  /// towers are trustworthy.
  bool dram_index = true;
  /// Horizontal sharding topology (common/shardmap.hpp): this store is shard
  /// `shard_index` of a `shard_count`-way key-space partition. Both are
  /// persisted in the store root so a reopen can validate that the pools on
  /// disk form the topology the caller is assembling (core::ShardSet does).
  /// A shard-set member never runs the single-pool RIV fast path even with
  /// one pool, because the process hosts sibling shards with other pool ids.
  /// shard_count <= 1 is the unsharded legacy configuration.
  std::uint32_t shard_count = 1;
  std::uint32_t shard_index = 0;
  /// Cap on durable client-session slots (docs/detectability.md). 0 = the
  /// SessionTable default (256); the table additionally shrinks to whatever
  /// fits in the root area after the allocator metadata. Tests use tiny caps
  /// to exercise slot eviction under client churn.
  std::uint32_t session_slots = 0;
  alloc::ChunkAllocatorConfig chunk;
};

/// Result row of a range scan.
struct ScanEntry {
  std::uint64_t key;
  std::uint64_t value;
};

/// What corruption-aware recovery found and did (docs/integrity.md). Damage
/// is never repaired in place — a node that fails its header stamp is
/// *quarantined*: the level-0 chain is bridged around it, its key coverage
/// is reported as a lost range, and its block is deliberately abandoned.
/// "Every acked key is recovered intact or listed here" is the contract the
/// corruption-torture shard checks.
struct IntegrityReport {
  /// Keys possibly lost to one quarantined node: the *open* interval
  /// (lo, hi) between the surviving neighbours' first keys. Conservative —
  /// the damaged node may have held only a subset.
  struct LostRange {
    std::uint64_t lo;
    std::uint64_t hi;
  };
  std::vector<LostRange> lost;
  /// RIVs of quarantined (bridged-around) data nodes.
  std::vector<std::uint64_t> quarantined_rivs;
  std::uint64_t nodes_checked = 0;
  std::uint64_t nodes_quarantined = 0;
  std::uint64_t sessions_quarantined = 0;
  std::uint64_t magazines_quarantined = 0;
  std::uint64_t blocks_quarantined = 0;
  /// The store-root stamp failed but the damage was confined to index_mode;
  /// the stamped value was restored and the index rebuilt defensively.
  bool root_mode_repaired = false;

  /// True when recovery found any damage at all (degraded-mode startup).
  bool degraded() const {
    return !lost.empty() || nodes_quarantined != 0 ||
           sessions_quarantined != 0 || magazines_quarantined != 0 ||
           blocks_quarantined != 0 || root_mode_repaired;
  }

  /// True iff `key` falls inside a reported lost range — i.e. the store is
  /// allowed to have forgotten it.
  bool covers(std::uint64_t key) const {
    for (const LostRange& r : lost)
      if (key > r.lo && key < r.hi) return true;
    return false;
  }

  void merge(const IntegrityReport& o) {
    lost.insert(lost.end(), o.lost.begin(), o.lost.end());
    quarantined_rivs.insert(quarantined_rivs.end(), o.quarantined_rivs.begin(),
                            o.quarantined_rivs.end());
    nodes_checked += o.nodes_checked;
    nodes_quarantined += o.nodes_quarantined;
    sessions_quarantined += o.sessions_quarantined;
    magazines_quarantined += o.magazines_quarantined;
    blocks_quarantined += o.blocks_quarantined;
    root_mode_repaired = root_mode_repaired || o.root_mode_repaired;
  }

  /// Flat JSON object (server STATS "integrity" section, fsck output).
  std::string to_json() const;
};

class UPSkipList {
 public:
  /// Formats `pools` and creates an empty store. Pool 0 holds the root.
  static std::unique_ptr<UPSkipList> create(std::vector<pmem::Pool*> pools,
                                            const Options& opts);

  /// Reconnects to an existing store after a restart/crash: bumps the
  /// failure-free epoch and returns immediately — recovery of in-flight
  /// operations is deferred into run time (§4.1.5). This is the whole of
  /// the "recovery time" measured in Table 5.4.
  static std::unique_ptr<UPSkipList> open(std::vector<pmem::Pool*> pools);

  UPSkipList(const UPSkipList&) = delete;
  UPSkipList& operator=(const UPSkipList&) = delete;

  /// Upsert (Function 13): inserts key->value, or updates and returns the
  /// previous value if the key is present. nullopt = key was newly inserted.
  std::optional<std::uint64_t> insert(std::uint64_t key, std::uint64_t value);

  /// Search (Function 9): wait-free read.
  std::optional<std::uint64_t> search(std::uint64_t key);

  bool contains(std::uint64_t key) { return search(key).has_value(); }

  /// Remove (§4.6): tombstones the value. Returns the removed value.
  std::optional<std::uint64_t> remove(std::uint64_t key);

  /// Outcome of a detectable mutation (docs/detectability.md).
  struct DetectOutcome {
    /// True: `seq` was already applied for this session — the mutation did
    /// NOT run again; `previous` replays the original durable answer.
    bool duplicate = false;
    /// False only for a duplicate whose entry aged out of the result ring:
    /// the op is known applied but its original answer is gone.
    bool result_known = true;
    std::optional<std::uint64_t> previous;
  };

  /// Detectable upsert: dedups (slot, seq) against the session table, runs
  /// insert() when new, and records the durable result through the ambient
  /// pmem::AckBatch — the slot update rides the same ack fence/group-commit
  /// ticket as the mutation itself. With an invalid slot or the
  /// UPSL_DISABLE_DETECT kill switch set, degrades to plain insert().
  DetectOutcome insert_detect(std::uint64_t key, std::uint64_t value,
                              std::int32_t slot, std::uint64_t seq);

  /// Detectable remove; same contract as insert_detect.
  DetectOutcome remove_detect(std::uint64_t key, std::int32_t slot,
                              std::uint64_t seq);

  /// Durable client-session table (invalid on legacy stores whose root area
  /// predates it, or when the root area is too small for even one slot).
  detect::SessionTable& sessions() { return sessions_; }

  /// Range scan over [lo, hi] in key order (extension; §7 future work).
  /// Per-node atomic (validated by split counters), not globally atomic.
  /// Filters whole nodes with the SIMD range-mask kernel (docs/scan.md) and
  /// appends to `out` without any internal heap allocation.
  std::size_t scan(std::uint64_t lo, std::uint64_t hi,
                   std::vector<ScanEntry>& out);

  /// Cursor-style bounded scan: like scan(), but stops at the first node
  /// boundary once at least `limit` entries have been appended (so a chunk
  /// may exceed `limit` by up to keys_per_node - 1 entries; size request
  /// frames accordingly). On return *resume_key is the smallest key the
  /// walk has NOT covered — pass it back as `lo` to continue — or 0 when
  /// [lo, hi] is exhausted. Chunks from successive calls cover disjoint,
  /// ascending key ranges, so concatenating them needs no re-sort/dedup.
  /// limit == 0 means unbounded (identical to scan()).
  std::size_t scan_chunk(std::uint64_t lo, std::uint64_t hi,
                         std::size_t limit, std::vector<ScanEntry>& out,
                         std::uint64_t* resume_key);

  /// Number of live (non-tombstoned) keys — O(n) diagnostic walk.
  std::size_t count_keys();

  /// Structural invariant checks for tests: every node's tower is a prefix
  /// of the levels below, bottom level is sorted by first key, internal
  /// keys lie within (first_key, next.first_key). Throws on violation.
  void check_invariants();

  /// Nodes on the bottom level, excluding sentinels (diagnostic walk).
  std::size_t count_nodes();

  /// True iff the node holding `key` is linked on every level up to its
  /// stored height — i.e. its insert (or its recovery) fully completed.
  bool tower_complete(std::uint64_t key);

  /// Leak detector for tests: every block carved out of an allocated chunk
  /// must be on a free list or reachable as a node/sentinel. Call from a
  /// quiesced store after each thread id has performed at least one
  /// allocation in the current epoch (deferred log recovery, §4.1.4).
  void check_no_leaks();

  /// Diagnostic companion to check_no_leaks: names every carved block that
  /// is neither free (list or magazine-cached) nor a live node, with its
  /// durable state/owner/epoch stamps and any magazine-descriptor or
  /// thread-log slot still referencing it. Also reports double-accounted
  /// rivs (free AND live, or free-listed twice).
  std::string leak_report();

  std::uint64_t epoch() const { return pmem::pm_load(*epoch_word_); }
  const NodeLayout& layout() const { return layout_; }
  alloc::BlockAllocator& allocator() { return *block_alloc_; }
  std::uint32_t num_pools() const {
    return static_cast<std::uint32_t>(pools_.size());
  }

  /// Durable shard topology recorded in the store root (>= 1 / index within
  /// it). Legacy stores created before sharding read back as 1 / 0.
  std::uint32_t shard_count() const { return opts_.shard_count; }
  std::uint32_t shard_index() const { return opts_.shard_index; }

  /// True iff this handle runs with the volatile DRAM search layer (index
  /// levels in DRAM, data level as sole durable ground truth).
  bool dram_index_enabled() const { return index_ != nullptr; }

  /// Data nodes currently registered in the DRAM index (0 when disabled).
  std::size_t index_entries() const {
    return index_ != nullptr ? index_->entries() : 0;
  }

  /// Wall-clock cost of the most recent DRAM-index rebuild on this handle
  /// (0 if none ran — e.g. freshly created store or index disabled).
  std::uint64_t last_index_rebuild_ns() const { return last_rebuild_ns_; }

  /// What corruption-aware recovery found and repaired around at open time
  /// (empty on a clean open, and always empty with UPSL_DISABLE_CHECKSUMS).
  const IntegrityReport& integrity() const { return integrity_; }

  /// Read-only deep integrity check (fsck / VERIFY): re-verifies every
  /// level-0 node header stamp plus the allocator quarantine counters, and
  /// merges the open-time report (whose repairs already happened). Requires
  /// a quiesced store; never mutates durable state.
  IntegrityReport verify_deep();

  /// fsck/test support: byte offsets of pool 0's durable metadata surfaces
  /// (from the pool base), so corruption tooling can target strikes exactly.
  struct DurableMap {
    std::size_t root_off;       // StoreRoot (two cache lines)
    std::size_t magazines_off;  // first MagazineDesc (kMaxThreads of them)
    std::size_t sessions_off;   // session table region
    std::size_t sessions_bytes; // 0 = store runs without a session table
  };
  DurableMap debug_durable_map() const;

  /// fsck/test support: riv of the level-0 data node whose key range covers
  /// `key` (0 when the store is empty or `key` precedes every node).
  /// Requires a quiesced store.
  std::uint64_t debug_node_riv_for(std::uint64_t key) const;

  /// Rebuild the DRAM index from the data level with `workers` parallel
  /// stripe builders (0 = UPSL_INDEX_REBUILD_WORKERS or a hardware-sized
  /// default). Requires a quiesced store. Returns the rebuild time in ns;
  /// no-op returning 0 when the index is disabled. open() runs this
  /// automatically — the explicit entry point exists for rebuild-scaling
  /// measurements and tests.
  std::uint64_t rebuild_dram_index(unsigned workers = 0);

 private:
  UPSkipList() = default;

  struct TraverseResult {
    std::uint64_t split_count = 0;
    std::int32_t key_index = -1;
    bool found = false;
  };

  enum class InsertStatus { kRestart, kNeedSplit, kDone };

  NodeView view(std::uint64_t riv) const {
    return NodeView(static_cast<char*>(riv::Runtime::instance().to_ptr(riv)),
                    &layout_);
  }

  /// Issue software prefetches for the two cache lines a traversal hop will
  /// touch in the node behind `riv`: the first line (epoch, lock, meta,
  /// first key) and the line holding its next-pointer for `level`. Called as
  /// soon as a successor RIV is known, so the fetches overlap the work still
  /// being done on the current node (§4.4's pointer-chase cost).
  void prefetch_node(std::uint64_t riv, std::uint32_t level) const {
    const char* p = static_cast<const char*>(riv::Runtime::instance().to_ptr(riv));
    UPSL_PREFETCH(p);
    UPSL_PREFETCH(p + layout_.next_offset() + 8ull * level);
  }

  /// Prefetch the leading lines of a node's key array ahead of
  /// scan_internal_keys (up to 4 lines; the scan kernels stream the rest).
  void prefetch_keys(NodeView node) const {
    const char* base = reinterpret_cast<const char*>(node.keys());
    const std::size_t bytes = 8ull * layout_.keys_per_node;
    UPSL_PREFETCH(base);
    if (bytes > 64) UPSL_PREFETCH(base + 64);
    if (bytes > 128) UPSL_PREFETCH(base + 128);
    if (bytes > 192) UPSL_PREFETCH(base + 192);
  }

  void attach(std::vector<pmem::Pool*> pools, bool creating,
              const Options* opts);
  void init_sentinels();
  std::uint64_t make_node(std::uint64_t pred_riv, std::uint64_t key,
                          std::uint64_t value, std::uint32_t height,
                          const std::uint64_t* succs);

  TraverseResult traverse(std::uint64_t key, std::uint64_t* preds,
                          std::uint64_t* succs, std::uint32_t recovery_budget);
  TraverseResult traverse_pmem(std::uint64_t key, std::uint64_t* preds,
                               std::uint64_t* succs,
                               std::uint32_t recovery_budget);
  TraverseResult traverse_dram(std::uint64_t key, std::uint64_t* preds,
                               std::uint64_t* succs,
                               std::uint32_t recovery_budget);
  std::int32_t scan_internal_keys(NodeView node, std::uint64_t key) const;

  void register_in_index(std::uint64_t node_riv);
  void rebuild_persistent_towers();

  bool check_for_recovery(std::uint32_t level, std::uint64_t node_riv,
                          NodeView node, std::uint32_t* recoveries_done,
                          std::uint32_t budget);
  /// MOD write-path repair (docs/write-path.md): restore the free-slot
  /// representation on slots whose deferred key flush was lost while the
  /// value flush survived. Runs on the epoch-claim transition.
  void scrub_torn_slots(NodeView node);
  void check_node_split_recovery(NodeView node);
  void check_insert_recovery(std::uint32_t level, std::uint64_t node_riv,
                             NodeView node);

  std::optional<std::uint64_t> update_value(NodeView node, std::int32_t idx,
                                            std::uint64_t value);
  /// MOD publish step: one SFENCE retiring the out-of-place node's unordered
  /// writebacks, then the data-level link CAS. Returns false if the CAS
  /// lost. With defer_link the link flush rides the ack batch; without it
  /// (persistent towers, height > 1) the link persists eagerly to keep the
  /// level-prefix durability invariant.
  bool publish_data_link(NodeView pred, std::uint64_t expected,
                         std::uint64_t node_riv, bool defer_link);
  bool create_head_successor(std::uint64_t key, std::uint64_t value,
                             std::uint64_t* preds, std::uint64_t* succs);
  InsertStatus insert_into_existing(std::uint64_t key, std::uint64_t value,
                                    std::uint64_t* preds,
                                    std::uint64_t split_count,
                                    std::optional<std::uint64_t>* old_out);
  InsertStatus split_node(std::uint64_t key, std::uint64_t value,
                          std::uint64_t* preds, std::uint64_t* succs,
                          std::optional<std::uint64_t>* old_out);
  void link_higher_levels(std::uint64_t* preds, std::uint64_t* succs,
                          std::uint64_t node_riv, std::uint32_t start_level,
                          std::uint32_t height);
  void populate_levels(const std::uint64_t* succs, NodeView node,
                       std::uint32_t start_level, std::uint32_t end_level);

  bool log_block_reachable(const alloc::ThreadLog& log);
  /// Stale-magazine-entry classifier: true iff the block is linked on the
  /// bottom level (or is a sentinel). See BlockAllocator::BlockReachabilityFn.
  bool block_reachable(std::uint64_t riv);

  /// Structural validation of a riv before dereferencing it: names a pool
  /// this store mapped, an ALLOCATED chunk, and a block-aligned offset
  /// inside it. A corrupted link can encode anything; to_ptr would resolve
  /// garbage offsets inside a mapped chunk without complaint.
  bool valid_node_riv(std::uint64_t riv) const;
  /// Header integrity of the node at `riv` (already riv-validated): sane
  /// height, self_riv match, plausible epoch, and the CRC32C stamp packed in
  /// meta's high 32 bits over the immutable (self_riv, key0, height) triple.
  bool node_header_ok(NodeView v, std::uint64_t riv) const;
  /// Open-time quarantine walk (docs/integrity.md): verifies every level-0
  /// node header, bridges the chain around damaged nodes, records lost key
  /// ranges in integrity_. Runs before any index rebuild can trust key0s.
  void quarantine_scan();

  Xoshiro256& thread_rng();

  std::vector<pmem::Pool*> pools_;
  std::vector<std::unique_ptr<alloc::ChunkAllocator>> chunk_allocs_;
  std::unique_ptr<alloc::BlockAllocator> block_alloc_;
  NodeLayout layout_{};
  Options opts_{};
  std::uint64_t* epoch_word_ = nullptr;  // PMEM-resident
  std::uint64_t* index_mode_word_ = nullptr;  // PMEM-resident (store root)
  std::uint64_t head_riv_ = 0;
  std::uint64_t tail_riv_ = 0;
  std::unique_ptr<DramIndex> index_;  // volatile; null in persistent mode
  std::uint64_t last_rebuild_ns_ = 0;
  detect::SessionTable sessions_;  // view over pool 0's root area
  IntegrityReport integrity_;  // open-time corruption findings/repairs
};

}  // namespace upsl::core
