#include "core/dram_index.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace upsl::core {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

void* DramIndex::Arena::allocate(std::size_t bytes) {
  bytes = (bytes + 7) & ~std::size_t{7};
  const std::size_t cap = slabs.empty() ? 0 : kSlabBytes;
  if (slabs.empty() || used + bytes > cap) {
    slabs.push_back(std::make_unique<char[]>(std::max(kSlabBytes, bytes)));
    used = 0;
  }
  void* p = slabs.back().get() + used;
  used += bytes;
  return p;
}

void DramIndex::Arena::absorb(Arena&& other) {
  // Keep the current bump slab last so allocate() keeps appending to it.
  if (other.slabs.empty()) return;
  if (slabs.empty()) {
    slabs = std::move(other.slabs);
    used = other.used;
  } else {
    slabs.insert(slabs.end() - 1,
                 std::make_move_iterator(other.slabs.begin()),
                 std::make_move_iterator(other.slabs.end()));
  }
  other.slabs.clear();
  other.used = 0;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

DramIndex::IndexNode* DramIndex::make_node(Arena& arena, std::uint64_t key,
                                           std::uint64_t riv, char* ptr,
                                           std::uint32_t levels) {
  auto* n = static_cast<IndexNode*>(
      arena.allocate(sizeof(IndexNode) + sizeof(IndexNode*) * levels));
  n->key = key;
  n->data_riv = riv;
  n->data_ptr = ptr;
  n->levels = levels;
  std::memset(static_cast<void*>(n->slots()), 0, sizeof(IndexNode*) * levels);
  return n;
}

DramIndex::DramIndex(std::uint32_t max_height)
    : max_slots_(max_height > 1 ? max_height - 1 : 1) {
  head_ = make_node(arena_, 0, 0, nullptr, max_slots_);
}

DramIndex::~DramIndex() = default;

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

riv::DataHandle DramIndex::seek(std::uint64_t key, std::uint64_t* hops) const {
  const IndexNode* pred = head_;
  std::uint64_t h = 0;
  for (std::int32_t level =
           static_cast<std::int32_t>(top_.load(std::memory_order_acquire)) - 1;
       level >= 0; --level) {
    while (true) {
      const IndexNode* cur = slot_load(pred, static_cast<std::uint32_t>(level));
      if (cur == nullptr) break;
      ++h;
      if (cur->key > key) break;
      UPSL_PREFETCH(cur->slots());
      pred = cur;
    }
  }
  *hops += h;
  if (pred == head_) return {};
  return {pred->data_riv, pred->data_ptr};
}

bool DramIndex::find(std::uint64_t key, IndexNode** preds, IndexNode** succs,
                     IndexNode** match) const {
  // Cover every slot level (not just [0, top_)): an inserter taller than the
  // current top needs valid head/null brackets above it.
  IndexNode* pred = head_;
  for (std::int32_t level = static_cast<std::int32_t>(max_slots_) - 1;
       level >= 0; --level) {
    IndexNode* cur = slot_load(pred, static_cast<std::uint32_t>(level));
    while (cur != nullptr && cur->key < key) {
      pred = cur;
      cur = slot_load(pred, static_cast<std::uint32_t>(level));
    }
    preds[level] = pred;
    succs[level] = cur;
  }
  *match = (succs[0] != nullptr && succs[0]->key == key) ? succs[0] : nullptr;
  return *match != nullptr;
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

void DramIndex::raise_top(std::uint32_t levels) {
  std::uint32_t cur = top_.load(std::memory_order_relaxed);
  while (cur < levels &&
         !top_.compare_exchange_weak(cur, levels, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
  }
}

void DramIndex::insert(std::uint64_t key, std::uint64_t riv, char* ptr,
                       std::uint32_t height) {
  if (height < 2) return;
  const std::uint32_t levels = std::min(height - 1, max_slots_);
  IndexNode* preds[64];
  IndexNode* succs[64];
  IndexNode* match = nullptr;
  if (find(key, preds, succs, &match)) return;  // already registered

  IndexNode* node;
  {
    std::lock_guard<std::mutex> lk(arena_mu_);
    node = make_node(arena_, key, riv, ptr, levels);
  }
  for (std::uint32_t i = 0; i < levels; ++i) slot_store(node, i, succs[i]);

  // Slot-0 CAS is the linearization point. Keys are unique (one data node
  // per first key, nodes never removed), so the loser that finds the key
  // present simply abandons its node — the arena reclaims it at the next
  // rebuild. The list is insert-only, so the CAS is ABA-free.
  while (!slot_cas(preds[0], 0, succs[0], node)) {
    if (find(key, preds, succs, &match)) return;
    for (std::uint32_t i = 0; i < levels; ++i) slot_store(node, i, succs[i]);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  raise_top(levels);

  for (std::uint32_t i = 1; i < levels; ++i) {
    while (true) {
      if (succs[i] == node) break;  // a helper re-find saw us linked here
      if (slot_load(preds[i], i) == node) break;
      slot_store(node, i, succs[i]);
      if (slot_cas(preds[i], i, succs[i], node)) break;
      find(key, preds, succs, &match);
    }
  }
}

// ---------------------------------------------------------------------------
// Rebuild (open/recovery path; store not yet serving)
// ---------------------------------------------------------------------------

void DramIndex::rebuild(const std::vector<Entry>& sorted, unsigned workers) {
  arena_ = Arena{};
  head_ = make_node(arena_, 0, 0, nullptr, max_slots_);
  top_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);

  std::vector<Entry> indexed;
  indexed.reserve(sorted.size());
  for (const Entry& e : sorted)
    if (e.height >= 2) indexed.push_back(e);
  if (indexed.empty()) return;

  // Per-worker contiguous stripe: a private arena and a spine of last-seen
  // nodes per level gives an O(n) single-pass build with plain stores. The
  // deterministic merge threads stripe boundary pointers together level by
  // level, so the final structure depends only on the entries (heights come
  // from durable node meta), never on the worker count or interleaving.
  struct Stripe {
    Arena arena;
    std::vector<IndexNode*> first, last;
    std::uint32_t top = 0;
  };
  const unsigned W = static_cast<unsigned>(std::clamp<std::size_t>(
      workers == 0 ? 1 : workers, 1, indexed.size()));
  std::vector<Stripe> stripes(W);

  auto build_stripe = [&](unsigned w) {
    Stripe& s = stripes[w];
    s.first.assign(max_slots_, nullptr);
    s.last.assign(max_slots_, nullptr);
    const std::size_t begin = indexed.size() * w / W;
    const std::size_t end = indexed.size() * (w + 1) / W;
    for (std::size_t i = begin; i < end; ++i) {
      const Entry& e = indexed[i];
      const std::uint32_t levels = std::min(e.height - 1, max_slots_);
      IndexNode* n = make_node(s.arena, e.key, e.riv, e.ptr, levels);
      for (std::uint32_t l = 0; l < levels; ++l) {
        if (s.last[l] != nullptr)
          s.last[l]->slots()[l] = n;
        else
          s.first[l] = n;
        s.last[l] = n;
      }
      s.top = std::max(s.top, levels);
    }
  };

  if (W == 1) {
    build_stripe(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(W);
    for (unsigned w = 0; w < W; ++w) threads.emplace_back(build_stripe, w);
    for (auto& t : threads) t.join();
  }

  std::vector<IndexNode*> tail_at(max_slots_, head_);
  std::uint32_t top = 0;
  for (Stripe& s : stripes) {
    for (std::uint32_t l = 0; l < max_slots_; ++l) {
      if (s.first[l] == nullptr) continue;
      tail_at[l]->slots()[l] = s.first[l];
      tail_at[l] = s.last[l];
    }
    top = std::max(top, s.top);
    arena_.absorb(std::move(s.arena));
  }
  top_.store(top, std::memory_order_release);
  count_.store(indexed.size(), std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

bool DramIndex::complete(std::uint64_t key, std::uint32_t levels) const {
  for (std::uint32_t l = 0; l < std::min(levels, max_slots_); ++l) {
    const IndexNode* cur = slot_load(head_, l);
    bool found = false;
    while (cur != nullptr && cur->key <= key) {
      if (cur->key == key) {
        found = true;
        break;
      }
      cur = slot_load(cur, l);
    }
    if (!found) return false;
  }
  return true;
}

void DramIndex::check_invariants() const {
  std::size_t at_slot0 = 0;
  for (std::uint32_t l = 0; l < max_slots_; ++l) {
    std::uint64_t prev = 0;
    bool have_prev = false;
    for (const IndexNode* n = slot_load(head_, l); n != nullptr;
         n = slot_load(n, l)) {
      if (have_prev && n->key <= prev)
        throw std::logic_error("dram index level not strictly ascending");
      prev = n->key;
      have_prev = true;
      if (n->levels <= l)
        throw std::logic_error("dram index node linked above its height");
      if (l == 0) ++at_slot0;
      if (l > 0) {
        // Subsequence check: the node must appear on the level below.
        const IndexNode* below = slot_load(head_, l - 1);
        while (below != nullptr && below != n && below->key <= n->key)
          below = slot_load(below, l - 1);
        if (below != n)
          throw std::logic_error("dram index node missing from lower level");
      }
    }
  }
  if (at_slot0 != entries())
    throw std::logic_error("dram index entry count mismatch");
}

}  // namespace upsl::core
