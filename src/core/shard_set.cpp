#include "core/shard_set.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

namespace upsl::core {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::unique_ptr<ShardSet> ShardSet::create(
    std::vector<std::vector<pmem::Pool*>> pools, const Options& opts) {
  if (pools.empty()) throw std::invalid_argument("shard set needs >= 1 shard");
  auto set = std::unique_ptr<ShardSet>(new ShardSet);
  const auto n = static_cast<std::uint32_t>(pools.size());
  set->shards_.resize(n);
  set->open_ns_.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    Options o = opts;
    o.shard_count = n;
    o.shard_index = i;
    set->shards_[i] = UPSkipList::create(std::move(pools[i]), o);
  }
  return set;
}

std::unique_ptr<ShardSet> ShardSet::open(
    std::vector<std::vector<pmem::Pool*>> pools) {
  if (pools.empty()) throw std::invalid_argument("shard set needs >= 1 shard");
  auto set = std::unique_ptr<ShardSet>(new ShardSet);
  const auto n = static_cast<std::uint32_t>(pools.size());
  set->shards_.resize(n);
  set->open_ns_.assign(n, 0);

  // Parallel recovery: each shard's open touches only its own pools and
  // allocator state; the RIV runtime's setup calls serialize internally.
  // Exceptions (bad root, topology mismatch) are captured per shard and the
  // first one rethrown after every thread has joined.
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> openers;
  openers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    openers.emplace_back([&, i] {
      try {
        const std::uint64_t t0 = now_ns();
        set->shards_[i] = UPSkipList::open(std::move(pools[i]));
        set->open_ns_[i] = now_ns() - t0;
        // The durable topology is authoritative: refuse a pool set that is
        // not the exact member this position claims, so a swapped or
        // re-counted shard file can never serve the wrong key partition.
        const UPSkipList& s = *set->shards_[i];
        if (s.shard_count() != n || s.shard_index() != i)
          throw std::runtime_error(
              "shard topology mismatch: store at position " +
              std::to_string(i) + " of " + std::to_string(n) +
              " recorded shard " + std::to_string(s.shard_index()) + " of " +
              std::to_string(s.shard_count()));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : openers) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return set;
}

std::size_t scan_merged(UPSkipList* const* shards, std::uint32_t n,
                        std::uint64_t lo, std::uint64_t hi, std::size_t limit,
                        std::vector<ScanEntry>& out) {
  if (n == 1) {
    std::vector<ScanEntry> run;
    shards[0]->scan(lo, hi, run);
    const std::size_t take =
        limit == 0 ? run.size() : std::min(limit, run.size());
    out.insert(out.end(), run.begin(), run.begin() + take);
    return take;
  }

  // Every shard holds a slice of any key range (hash partition), so all of
  // them are scanned; each run comes back sorted, and the merge below picks
  // the globally smallest head until the limit is met. Shard counts are
  // small, so a linear head scan beats a heap.
  std::vector<std::vector<ScanEntry>> runs(n);
  for (std::uint32_t i = 0; i < n; ++i) shards[i]->scan(lo, hi, runs[i]);

  std::vector<std::size_t> heads(n, 0);
  std::size_t produced = 0;
  while (limit == 0 || produced < limit) {
    std::uint32_t best = n;
    std::uint64_t best_key = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (heads[i] >= runs[i].size()) continue;
      const std::uint64_t k = runs[i][heads[i]].key;
      if (best == n || k < best_key) {
        best = i;
        best_key = k;
      }
    }
    if (best == n) break;  // all runs exhausted
    out.push_back(runs[best][heads[best]++]);
    ++produced;
  }
  return produced;
}

std::size_t ShardSet::scan(std::uint64_t lo, std::uint64_t hi,
                           std::size_t limit, std::vector<ScanEntry>& out) {
  std::vector<UPSkipList*> ptrs;
  ptrs.reserve(shards_.size());
  for (auto& s : shards_) ptrs.push_back(s.get());
  return scan_merged(ptrs.data(), shard_count(), lo, hi, limit, out);
}

std::size_t ShardSet::count_keys() {
  std::size_t total = 0;
  for (auto& s : shards_) total += s->count_keys();
  return total;
}

void ShardSet::check_invariants() {
  for (auto& s : shards_) s->check_invariants();
}

IntegrityReport ShardSet::integrity() const {
  IntegrityReport r;
  for (const auto& s : shards_) r.merge(s->integrity());
  return r;
}

IntegrityReport ShardSet::verify_deep() {
  IntegrityReport r;
  for (auto& s : shards_) r.merge(s->verify_deep());
  return r;
}

}  // namespace upsl::core
