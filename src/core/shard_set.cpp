#include "core/shard_set.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

namespace upsl::core {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::unique_ptr<ShardSet> ShardSet::create(
    std::vector<std::vector<pmem::Pool*>> pools, const Options& opts) {
  if (pools.empty()) throw std::invalid_argument("shard set needs >= 1 shard");
  auto set = std::unique_ptr<ShardSet>(new ShardSet);
  const auto n = static_cast<std::uint32_t>(pools.size());
  set->shards_.resize(n);
  set->open_ns_.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    Options o = opts;
    o.shard_count = n;
    o.shard_index = i;
    set->shards_[i] = UPSkipList::create(std::move(pools[i]), o);
  }
  return set;
}

std::unique_ptr<ShardSet> ShardSet::open(
    std::vector<std::vector<pmem::Pool*>> pools) {
  if (pools.empty()) throw std::invalid_argument("shard set needs >= 1 shard");
  auto set = std::unique_ptr<ShardSet>(new ShardSet);
  const auto n = static_cast<std::uint32_t>(pools.size());
  set->shards_.resize(n);
  set->open_ns_.assign(n, 0);

  // Parallel recovery: each shard's open touches only its own pools and
  // allocator state; the RIV runtime's setup calls serialize internally.
  // Exceptions (bad root, topology mismatch) are captured per shard and the
  // first one rethrown after every thread has joined.
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> openers;
  openers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    openers.emplace_back([&, i] {
      try {
        const std::uint64_t t0 = now_ns();
        set->shards_[i] = UPSkipList::open(std::move(pools[i]));
        set->open_ns_[i] = now_ns() - t0;
        // The durable topology is authoritative: refuse a pool set that is
        // not the exact member this position claims, so a swapped or
        // re-counted shard file can never serve the wrong key partition.
        const UPSkipList& s = *set->shards_[i];
        if (s.shard_count() != n || s.shard_index() != i)
          throw std::runtime_error(
              "shard topology mismatch: store at position " +
              std::to_string(i) + " of " + std::to_string(n) +
              " recorded shard " + std::to_string(s.shard_index()) + " of " +
              std::to_string(s.shard_count()));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : openers) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return set;
}

namespace {
// Default per-shard chunk pulled by the incremental merge: large enough to
// amortize the head re-walk scan_chunk pays per refill, small enough that a
// limited scan never does much more per-shard work than it emits.
constexpr std::size_t kDefaultRefill = 2048;
}  // namespace

MergedScanCursor::MergedScanCursor(UPSkipList* const* shards, std::uint32_t n,
                                   std::uint64_t lo, std::uint64_t hi,
                                   std::size_t refill)
    : shards_(shards),
      n_(n),
      hi_(hi),
      refill_(refill == 0 ? kDefaultRefill : refill),
      runs_(n) {
  for (auto& r : runs_) r.resume = lo == 0 ? 1 : lo;
  if (lo > hi) for (auto& r : runs_) r.drained = true;
}

void MergedScanCursor::refill(std::uint32_t i) {
  Run& r = runs_[i];
  r.buf.clear();
  r.head = 0;
  std::uint64_t resume = 0;
  shards_[i]->scan_chunk(r.resume, hi_, refill_, r.buf, &resume);
  r.resume = resume;
  if (resume == 0) r.drained = true;
  // scan_chunk can legitimately return 0 entries with a nonzero resume key
  // only if every key in the walked nodes was tombstoned; loop until the
  // shard either yields entries or drains so the merge invariant (non-empty
  // buffer unless drained) holds.
  while (!r.drained && r.buf.empty()) {
    shards_[i]->scan_chunk(r.resume, hi_, refill_, r.buf, &resume);
    r.resume = resume;
    if (resume == 0) r.drained = true;
  }
}

std::size_t MergedScanCursor::next(std::size_t max_entries,
                                   std::vector<ScanEntry>& out) {
  std::size_t produced = 0;
  while (produced < max_entries) {
    // Keep every live shard's buffer non-empty so the head pick is safe.
    std::uint32_t best = n_;
    std::uint64_t best_key = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      Run& r = runs_[i];
      if (r.head >= r.buf.size()) {
        if (r.drained) continue;
        refill(i);
        if (r.head >= r.buf.size()) continue;  // drained with nothing left
      }
      const std::uint64_t k = r.buf[r.head].key;
      if (best == n_ || k < best_key) {
        best = i;
        best_key = k;
      }
    }
    if (best == n_) break;  // all shards exhausted
    out.push_back(runs_[best].buf[runs_[best].head++]);
    ++produced;
  }
  return produced;
}

bool MergedScanCursor::exhausted() const {
  for (const auto& r : runs_)
    if (!r.drained || r.head < r.buf.size()) return false;
  return true;
}

std::uint64_t MergedScanCursor::resume_key() const {
  std::uint64_t best = 0;
  for (const auto& r : runs_) {
    std::uint64_t candidate = 0;
    if (r.head < r.buf.size())
      candidate = r.buf[r.head].key;
    else if (!r.drained)
      candidate = r.resume;
    if (candidate != 0 && (best == 0 || candidate < best)) best = candidate;
  }
  return best;
}

std::size_t scan_merged(UPSkipList* const* shards, std::uint32_t n,
                        std::uint64_t lo, std::uint64_t hi, std::size_t limit,
                        std::vector<ScanEntry>& out) {
  // Every shard holds a slice of any key range (hash partition), so all of
  // them participate; the cursor pulls bounded per-shard chunks and merges
  // incrementally, so a limited scan stops pulling once the limit is met.
  MergedScanCursor cursor(shards, n, lo, hi,
                          limit == 0 ? 0 : std::min(limit, kDefaultRefill));
  std::size_t produced = 0;
  while (limit == 0 || produced < limit) {
    const std::size_t want =
        limit == 0 ? kDefaultRefill : std::min(kDefaultRefill, limit - produced);
    const std::size_t got = cursor.next(want, out);
    if (got == 0) break;
    produced += got;
  }
  return produced;
}

std::size_t ShardSet::scan(std::uint64_t lo, std::uint64_t hi,
                           std::size_t limit, std::vector<ScanEntry>& out) {
  std::vector<UPSkipList*> ptrs;
  ptrs.reserve(shards_.size());
  for (auto& s : shards_) ptrs.push_back(s.get());
  return scan_merged(ptrs.data(), shard_count(), lo, hi, limit, out);
}

std::size_t ShardSet::count_keys() {
  std::size_t total = 0;
  for (auto& s : shards_) total += s->count_keys();
  return total;
}

void ShardSet::check_invariants() {
  for (auto& s : shards_) s->check_invariants();
}

IntegrityReport ShardSet::integrity() const {
  IntegrityReport r;
  for (const auto& s : shards_) r.merge(s->integrity());
  return r;
}

IntegrityReport ShardSet::verify_deep() {
  IntegrityReport r;
  for (auto& s : shards_) r.merge(s->verify_deep());
  return r;
}

}  // namespace upsl::core
